file(REMOVE_RECURSE
  "CMakeFiles/fig4a_rw_overhead.dir/fig4a_rw_overhead.cpp.o"
  "CMakeFiles/fig4a_rw_overhead.dir/fig4a_rw_overhead.cpp.o.d"
  "fig4a_rw_overhead"
  "fig4a_rw_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_rw_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
