# Empty compiler generated dependencies file for fig4a_rw_overhead.
# This may be replaced when dependencies are built.
