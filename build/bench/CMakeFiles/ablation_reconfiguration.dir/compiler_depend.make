# Empty compiler generated dependencies file for ablation_reconfiguration.
# This may be replaced when dependencies are built.
