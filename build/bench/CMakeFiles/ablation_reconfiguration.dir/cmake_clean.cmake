file(REMOVE_RECURSE
  "CMakeFiles/ablation_reconfiguration.dir/ablation_reconfiguration.cpp.o"
  "CMakeFiles/ablation_reconfiguration.dir/ablation_reconfiguration.cpp.o.d"
  "ablation_reconfiguration"
  "ablation_reconfiguration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reconfiguration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
