# Empty dependencies file for ablation_task_granularity.
# This may be replaced when dependencies are built.
