file(REMOVE_RECURSE
  "CMakeFiles/ablation_task_granularity.dir/ablation_task_granularity.cpp.o"
  "CMakeFiles/ablation_task_granularity.dir/ablation_task_granularity.cpp.o.d"
  "ablation_task_granularity"
  "ablation_task_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_task_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
