file(REMOVE_RECURSE
  "CMakeFiles/ablation_spacesharing.dir/ablation_spacesharing.cpp.o"
  "CMakeFiles/ablation_spacesharing.dir/ablation_spacesharing.cpp.o.d"
  "ablation_spacesharing"
  "ablation_spacesharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spacesharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
