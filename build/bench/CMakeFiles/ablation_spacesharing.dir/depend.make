# Empty dependencies file for ablation_spacesharing.
# This may be replaced when dependencies are built.
