file(REMOVE_RECURSE
  "CMakeFiles/ablation_allocation_policy.dir/ablation_allocation_policy.cpp.o"
  "CMakeFiles/ablation_allocation_policy.dir/ablation_allocation_policy.cpp.o.d"
  "ablation_allocation_policy"
  "ablation_allocation_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_allocation_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
