# Empty dependencies file for ablation_allocation_policy.
# This may be replaced when dependencies are built.
