# Empty compiler generated dependencies file for table4_alexnet_sharing.
# This may be replaced when dependencies are built.
