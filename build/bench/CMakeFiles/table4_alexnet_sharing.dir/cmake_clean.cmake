file(REMOVE_RECURSE
  "CMakeFiles/table4_alexnet_sharing.dir/table4_alexnet_sharing.cpp.o"
  "CMakeFiles/table4_alexnet_sharing.dir/table4_alexnet_sharing.cpp.o.d"
  "table4_alexnet_sharing"
  "table4_alexnet_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_alexnet_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
