# Empty compiler generated dependencies file for table1_load_configurations.
# This may be replaced when dependencies are built.
