file(REMOVE_RECURSE
  "CMakeFiles/table1_load_configurations.dir/table1_load_configurations.cpp.o"
  "CMakeFiles/table1_load_configurations.dir/table1_load_configurations.cpp.o.d"
  "table1_load_configurations"
  "table1_load_configurations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_load_configurations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
