file(REMOVE_RECURSE
  "CMakeFiles/fig4b_sobel_overhead.dir/fig4b_sobel_overhead.cpp.o"
  "CMakeFiles/fig4b_sobel_overhead.dir/fig4b_sobel_overhead.cpp.o.d"
  "fig4b_sobel_overhead"
  "fig4b_sobel_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_sobel_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
