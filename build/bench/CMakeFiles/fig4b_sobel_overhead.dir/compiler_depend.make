# Empty compiler generated dependencies file for fig4b_sobel_overhead.
# This may be replaced when dependencies are built.
