# Empty dependencies file for table2_sobel_sharing.
# This may be replaced when dependencies are built.
