file(REMOVE_RECURSE
  "CMakeFiles/table2_sobel_sharing.dir/table2_sobel_sharing.cpp.o"
  "CMakeFiles/table2_sobel_sharing.dir/table2_sobel_sharing.cpp.o.d"
  "table2_sobel_sharing"
  "table2_sobel_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_sobel_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
