file(REMOVE_RECURSE
  "CMakeFiles/ablation_datapath.dir/ablation_datapath.cpp.o"
  "CMakeFiles/ablation_datapath.dir/ablation_datapath.cpp.o.d"
  "ablation_datapath"
  "ablation_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
