# Empty dependencies file for ablation_datapath.
# This may be replaced when dependencies are built.
