file(REMOVE_RECURSE
  "CMakeFiles/ablation_dataplane_load.dir/ablation_dataplane_load.cpp.o"
  "CMakeFiles/ablation_dataplane_load.dir/ablation_dataplane_load.cpp.o.d"
  "ablation_dataplane_load"
  "ablation_dataplane_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dataplane_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
