# Empty dependencies file for ablation_dataplane_load.
# This may be replaced when dependencies are built.
