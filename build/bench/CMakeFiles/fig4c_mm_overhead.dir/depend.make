# Empty dependencies file for fig4c_mm_overhead.
# This may be replaced when dependencies are built.
