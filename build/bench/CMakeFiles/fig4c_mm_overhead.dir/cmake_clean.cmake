file(REMOVE_RECURSE
  "CMakeFiles/fig4c_mm_overhead.dir/fig4c_mm_overhead.cpp.o"
  "CMakeFiles/fig4c_mm_overhead.dir/fig4c_mm_overhead.cpp.o.d"
  "fig4c_mm_overhead"
  "fig4c_mm_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4c_mm_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
