file(REMOVE_RECURSE
  "CMakeFiles/table3_mm_sharing.dir/table3_mm_sharing.cpp.o"
  "CMakeFiles/table3_mm_sharing.dir/table3_mm_sharing.cpp.o.d"
  "table3_mm_sharing"
  "table3_mm_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_mm_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
