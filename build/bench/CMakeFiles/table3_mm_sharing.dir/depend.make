# Empty dependencies file for table3_mm_sharing.
# This may be replaced when dependencies are built.
