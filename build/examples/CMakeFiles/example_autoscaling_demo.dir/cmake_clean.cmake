file(REMOVE_RECURSE
  "CMakeFiles/example_autoscaling_demo.dir/autoscaling_demo.cpp.o"
  "CMakeFiles/example_autoscaling_demo.dir/autoscaling_demo.cpp.o.d"
  "example_autoscaling_demo"
  "example_autoscaling_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_autoscaling_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
