# Empty dependencies file for example_autoscaling_demo.
# This may be replaced when dependencies are built.
