file(REMOVE_RECURSE
  "CMakeFiles/example_trace_timeline.dir/trace_timeline.cpp.o"
  "CMakeFiles/example_trace_timeline.dir/trace_timeline.cpp.o.d"
  "example_trace_timeline"
  "example_trace_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_trace_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
