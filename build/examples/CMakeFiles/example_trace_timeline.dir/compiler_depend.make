# Empty compiler generated dependencies file for example_trace_timeline.
# This may be replaced when dependencies are built.
