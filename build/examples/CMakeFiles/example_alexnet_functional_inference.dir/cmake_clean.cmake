file(REMOVE_RECURSE
  "CMakeFiles/example_alexnet_functional_inference.dir/alexnet_functional_inference.cpp.o"
  "CMakeFiles/example_alexnet_functional_inference.dir/alexnet_functional_inference.cpp.o.d"
  "example_alexnet_functional_inference"
  "example_alexnet_functional_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_alexnet_functional_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
