# Empty dependencies file for example_alexnet_functional_inference.
# This may be replaced when dependencies are built.
