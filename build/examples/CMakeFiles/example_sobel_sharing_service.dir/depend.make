# Empty dependencies file for example_sobel_sharing_service.
# This may be replaced when dependencies are built.
