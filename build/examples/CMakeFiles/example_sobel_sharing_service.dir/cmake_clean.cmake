file(REMOVE_RECURSE
  "CMakeFiles/example_sobel_sharing_service.dir/sobel_sharing_service.cpp.o"
  "CMakeFiles/example_sobel_sharing_service.dir/sobel_sharing_service.cpp.o.d"
  "example_sobel_sharing_service"
  "example_sobel_sharing_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sobel_sharing_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
