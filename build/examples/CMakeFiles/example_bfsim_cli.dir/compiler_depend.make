# Empty compiler generated dependencies file for example_bfsim_cli.
# This may be replaced when dependencies are built.
