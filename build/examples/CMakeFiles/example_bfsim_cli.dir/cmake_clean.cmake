file(REMOVE_RECURSE
  "CMakeFiles/example_bfsim_cli.dir/bfsim_cli.cpp.o"
  "CMakeFiles/example_bfsim_cli.dir/bfsim_cli.cpp.o.d"
  "example_bfsim_cli"
  "example_bfsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bfsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
