# Empty compiler generated dependencies file for example_reconfiguration_migration.
# This may be replaced when dependencies are built.
