file(REMOVE_RECURSE
  "CMakeFiles/example_reconfiguration_migration.dir/reconfiguration_migration.cpp.o"
  "CMakeFiles/example_reconfiguration_migration.dir/reconfiguration_migration.cpp.o.d"
  "example_reconfiguration_migration"
  "example_reconfiguration_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_reconfiguration_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
