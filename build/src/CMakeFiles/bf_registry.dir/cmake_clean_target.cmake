file(REMOVE_RECURSE
  "libbf_registry.a"
)
