file(REMOVE_RECURSE
  "CMakeFiles/bf_registry.dir/registry/autoscaler.cpp.o"
  "CMakeFiles/bf_registry.dir/registry/autoscaler.cpp.o.d"
  "CMakeFiles/bf_registry.dir/registry/placeholder.cpp.o"
  "CMakeFiles/bf_registry.dir/registry/placeholder.cpp.o.d"
  "CMakeFiles/bf_registry.dir/registry/registry.cpp.o"
  "CMakeFiles/bf_registry.dir/registry/registry.cpp.o.d"
  "libbf_registry.a"
  "libbf_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
