# Empty compiler generated dependencies file for bf_registry.
# This may be replaced when dependencies are built.
