src/CMakeFiles/bf_registry.dir/registry/placeholder.cpp.o: \
 /root/repo/src/registry/placeholder.cpp /usr/include/stdc-predef.h
