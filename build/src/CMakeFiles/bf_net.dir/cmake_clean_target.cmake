file(REMOVE_RECURSE
  "libbf_net.a"
)
