file(REMOVE_RECURSE
  "CMakeFiles/bf_net.dir/net/endpoint.cpp.o"
  "CMakeFiles/bf_net.dir/net/endpoint.cpp.o.d"
  "CMakeFiles/bf_net.dir/net/transport.cpp.o"
  "CMakeFiles/bf_net.dir/net/transport.cpp.o.d"
  "libbf_net.a"
  "libbf_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
