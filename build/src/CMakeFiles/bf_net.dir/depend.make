# Empty dependencies file for bf_net.
# This may be replaced when dependencies are built.
