# Empty dependencies file for bf_common.
# This may be replaced when dependencies are built.
