file(REMOVE_RECURSE
  "libbf_common.a"
)
