file(REMOVE_RECURSE
  "CMakeFiles/bf_common.dir/common/log.cpp.o"
  "CMakeFiles/bf_common.dir/common/log.cpp.o.d"
  "CMakeFiles/bf_common.dir/common/stats.cpp.o"
  "CMakeFiles/bf_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/bf_common.dir/common/status.cpp.o"
  "CMakeFiles/bf_common.dir/common/status.cpp.o.d"
  "libbf_common.a"
  "libbf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
