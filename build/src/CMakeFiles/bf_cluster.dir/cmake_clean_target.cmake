file(REMOVE_RECURSE
  "libbf_cluster.a"
)
