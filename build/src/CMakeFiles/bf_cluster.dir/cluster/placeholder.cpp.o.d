src/CMakeFiles/bf_cluster.dir/cluster/placeholder.cpp.o: \
 /root/repo/src/cluster/placeholder.cpp /usr/include/stdc-predef.h
