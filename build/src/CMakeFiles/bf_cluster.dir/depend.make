# Empty dependencies file for bf_cluster.
# This may be replaced when dependencies are built.
