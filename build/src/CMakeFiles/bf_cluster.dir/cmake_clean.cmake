file(REMOVE_RECURSE
  "CMakeFiles/bf_cluster.dir/cluster/cluster.cpp.o"
  "CMakeFiles/bf_cluster.dir/cluster/cluster.cpp.o.d"
  "CMakeFiles/bf_cluster.dir/cluster/placeholder.cpp.o"
  "CMakeFiles/bf_cluster.dir/cluster/placeholder.cpp.o.d"
  "libbf_cluster.a"
  "libbf_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
