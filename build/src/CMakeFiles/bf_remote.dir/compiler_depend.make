# Empty compiler generated dependencies file for bf_remote.
# This may be replaced when dependencies are built.
