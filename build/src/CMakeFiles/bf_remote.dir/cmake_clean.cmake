file(REMOVE_RECURSE
  "CMakeFiles/bf_remote.dir/remote/remote_runtime.cpp.o"
  "CMakeFiles/bf_remote.dir/remote/remote_runtime.cpp.o.d"
  "libbf_remote.a"
  "libbf_remote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_remote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
