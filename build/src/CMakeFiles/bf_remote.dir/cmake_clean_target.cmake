file(REMOVE_RECURSE
  "libbf_remote.a"
)
