file(REMOVE_RECURSE
  "CMakeFiles/bf_shm.dir/shm/namespace.cpp.o"
  "CMakeFiles/bf_shm.dir/shm/namespace.cpp.o.d"
  "CMakeFiles/bf_shm.dir/shm/segment.cpp.o"
  "CMakeFiles/bf_shm.dir/shm/segment.cpp.o.d"
  "libbf_shm.a"
  "libbf_shm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_shm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
