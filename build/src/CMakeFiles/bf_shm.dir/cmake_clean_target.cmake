file(REMOVE_RECURSE
  "libbf_shm.a"
)
