# Empty dependencies file for bf_shm.
# This may be replaced when dependencies are built.
