file(REMOVE_RECURSE
  "libbf_metrics.a"
)
