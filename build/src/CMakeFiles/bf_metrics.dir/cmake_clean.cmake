file(REMOVE_RECURSE
  "CMakeFiles/bf_metrics.dir/metrics/metrics.cpp.o"
  "CMakeFiles/bf_metrics.dir/metrics/metrics.cpp.o.d"
  "libbf_metrics.a"
  "libbf_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
