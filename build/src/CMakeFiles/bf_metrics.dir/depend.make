# Empty dependencies file for bf_metrics.
# This may be replaced when dependencies are built.
