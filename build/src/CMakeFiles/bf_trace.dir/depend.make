# Empty dependencies file for bf_trace.
# This may be replaced when dependencies are built.
