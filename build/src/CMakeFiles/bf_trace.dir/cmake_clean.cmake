file(REMOVE_RECURSE
  "CMakeFiles/bf_trace.dir/trace/chrome_trace.cpp.o"
  "CMakeFiles/bf_trace.dir/trace/chrome_trace.cpp.o.d"
  "libbf_trace.a"
  "libbf_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
