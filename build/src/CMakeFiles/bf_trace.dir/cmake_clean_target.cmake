file(REMOVE_RECURSE
  "libbf_trace.a"
)
