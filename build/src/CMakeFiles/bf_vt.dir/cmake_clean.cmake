file(REMOVE_RECURSE
  "CMakeFiles/bf_vt.dir/vt/gate.cpp.o"
  "CMakeFiles/bf_vt.dir/vt/gate.cpp.o.d"
  "CMakeFiles/bf_vt.dir/vt/time.cpp.o"
  "CMakeFiles/bf_vt.dir/vt/time.cpp.o.d"
  "libbf_vt.a"
  "libbf_vt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_vt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
