file(REMOVE_RECURSE
  "libbf_vt.a"
)
