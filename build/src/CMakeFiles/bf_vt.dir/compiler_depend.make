# Empty compiler generated dependencies file for bf_vt.
# This may be replaced when dependencies are built.
