file(REMOVE_RECURSE
  "libbf_proto.a"
)
