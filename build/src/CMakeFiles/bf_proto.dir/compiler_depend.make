# Empty compiler generated dependencies file for bf_proto.
# This may be replaced when dependencies are built.
