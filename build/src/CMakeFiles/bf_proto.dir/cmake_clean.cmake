file(REMOVE_RECURSE
  "CMakeFiles/bf_proto.dir/proto/messages.cpp.o"
  "CMakeFiles/bf_proto.dir/proto/messages.cpp.o.d"
  "CMakeFiles/bf_proto.dir/proto/wire.cpp.o"
  "CMakeFiles/bf_proto.dir/proto/wire.cpp.o.d"
  "libbf_proto.a"
  "libbf_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
