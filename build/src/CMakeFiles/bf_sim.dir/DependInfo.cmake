
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bitstream.cpp" "src/CMakeFiles/bf_sim.dir/sim/bitstream.cpp.o" "gcc" "src/CMakeFiles/bf_sim.dir/sim/bitstream.cpp.o.d"
  "/root/repo/src/sim/board.cpp" "src/CMakeFiles/bf_sim.dir/sim/board.cpp.o" "gcc" "src/CMakeFiles/bf_sim.dir/sim/board.cpp.o.d"
  "/root/repo/src/sim/costmodel.cpp" "src/CMakeFiles/bf_sim.dir/sim/costmodel.cpp.o" "gcc" "src/CMakeFiles/bf_sim.dir/sim/costmodel.cpp.o.d"
  "/root/repo/src/sim/kernels.cpp" "src/CMakeFiles/bf_sim.dir/sim/kernels.cpp.o" "gcc" "src/CMakeFiles/bf_sim.dir/sim/kernels.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/CMakeFiles/bf_sim.dir/sim/memory.cpp.o" "gcc" "src/CMakeFiles/bf_sim.dir/sim/memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bf_vt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
