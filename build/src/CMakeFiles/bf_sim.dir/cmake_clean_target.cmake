file(REMOVE_RECURSE
  "libbf_sim.a"
)
