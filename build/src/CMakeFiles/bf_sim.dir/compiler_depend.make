# Empty compiler generated dependencies file for bf_sim.
# This may be replaced when dependencies are built.
