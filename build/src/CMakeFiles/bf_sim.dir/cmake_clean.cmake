file(REMOVE_RECURSE
  "CMakeFiles/bf_sim.dir/sim/bitstream.cpp.o"
  "CMakeFiles/bf_sim.dir/sim/bitstream.cpp.o.d"
  "CMakeFiles/bf_sim.dir/sim/board.cpp.o"
  "CMakeFiles/bf_sim.dir/sim/board.cpp.o.d"
  "CMakeFiles/bf_sim.dir/sim/costmodel.cpp.o"
  "CMakeFiles/bf_sim.dir/sim/costmodel.cpp.o.d"
  "CMakeFiles/bf_sim.dir/sim/kernels.cpp.o"
  "CMakeFiles/bf_sim.dir/sim/kernels.cpp.o.d"
  "CMakeFiles/bf_sim.dir/sim/memory.cpp.o"
  "CMakeFiles/bf_sim.dir/sim/memory.cpp.o.d"
  "libbf_sim.a"
  "libbf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
