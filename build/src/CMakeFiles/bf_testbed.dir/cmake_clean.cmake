file(REMOVE_RECURSE
  "CMakeFiles/bf_testbed.dir/testbed/testbed.cpp.o"
  "CMakeFiles/bf_testbed.dir/testbed/testbed.cpp.o.d"
  "libbf_testbed.a"
  "libbf_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
