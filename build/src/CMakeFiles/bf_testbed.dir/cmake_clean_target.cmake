file(REMOVE_RECURSE
  "libbf_testbed.a"
)
