# Empty compiler generated dependencies file for bf_testbed.
# This may be replaced when dependencies are built.
