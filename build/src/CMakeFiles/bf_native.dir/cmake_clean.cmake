file(REMOVE_RECURSE
  "CMakeFiles/bf_native.dir/native/native_runtime.cpp.o"
  "CMakeFiles/bf_native.dir/native/native_runtime.cpp.o.d"
  "libbf_native.a"
  "libbf_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
