# Empty dependencies file for bf_native.
# This may be replaced when dependencies are built.
