file(REMOVE_RECURSE
  "libbf_native.a"
)
