file(REMOVE_RECURSE
  "CMakeFiles/bf_loadgen.dir/loadgen/loadgen.cpp.o"
  "CMakeFiles/bf_loadgen.dir/loadgen/loadgen.cpp.o.d"
  "libbf_loadgen.a"
  "libbf_loadgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_loadgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
