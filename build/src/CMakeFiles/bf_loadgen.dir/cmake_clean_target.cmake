file(REMOVE_RECURSE
  "libbf_loadgen.a"
)
