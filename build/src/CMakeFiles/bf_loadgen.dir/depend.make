# Empty dependencies file for bf_loadgen.
# This may be replaced when dependencies are built.
