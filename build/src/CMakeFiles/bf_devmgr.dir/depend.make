# Empty dependencies file for bf_devmgr.
# This may be replaced when dependencies are built.
