file(REMOVE_RECURSE
  "CMakeFiles/bf_devmgr.dir/devmgr/device_manager.cpp.o"
  "CMakeFiles/bf_devmgr.dir/devmgr/device_manager.cpp.o.d"
  "CMakeFiles/bf_devmgr.dir/devmgr/task_queue.cpp.o"
  "CMakeFiles/bf_devmgr.dir/devmgr/task_queue.cpp.o.d"
  "libbf_devmgr.a"
  "libbf_devmgr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_devmgr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
