file(REMOVE_RECURSE
  "libbf_devmgr.a"
)
