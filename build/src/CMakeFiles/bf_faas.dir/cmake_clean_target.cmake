file(REMOVE_RECURSE
  "libbf_faas.a"
)
