
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faas/function.cpp" "src/CMakeFiles/bf_faas.dir/faas/function.cpp.o" "gcc" "src/CMakeFiles/bf_faas.dir/faas/function.cpp.o.d"
  "/root/repo/src/faas/gateway.cpp" "src/CMakeFiles/bf_faas.dir/faas/gateway.cpp.o" "gcc" "src/CMakeFiles/bf_faas.dir/faas/gateway.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bf_vt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
