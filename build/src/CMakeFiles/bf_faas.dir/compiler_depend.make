# Empty compiler generated dependencies file for bf_faas.
# This may be replaced when dependencies are built.
