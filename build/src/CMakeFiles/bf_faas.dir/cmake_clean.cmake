file(REMOVE_RECURSE
  "CMakeFiles/bf_faas.dir/faas/function.cpp.o"
  "CMakeFiles/bf_faas.dir/faas/function.cpp.o.d"
  "CMakeFiles/bf_faas.dir/faas/gateway.cpp.o"
  "CMakeFiles/bf_faas.dir/faas/gateway.cpp.o.d"
  "libbf_faas.a"
  "libbf_faas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_faas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
