# Empty compiler generated dependencies file for bf_ocl.
# This may be replaced when dependencies are built.
