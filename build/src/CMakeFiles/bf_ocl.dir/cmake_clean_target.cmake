file(REMOVE_RECURSE
  "libbf_ocl.a"
)
