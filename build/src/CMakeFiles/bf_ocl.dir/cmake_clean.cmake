file(REMOVE_RECURSE
  "CMakeFiles/bf_ocl.dir/ocl/capi.cpp.o"
  "CMakeFiles/bf_ocl.dir/ocl/capi.cpp.o.d"
  "CMakeFiles/bf_ocl.dir/ocl/runtime.cpp.o"
  "CMakeFiles/bf_ocl.dir/ocl/runtime.cpp.o.d"
  "libbf_ocl.a"
  "libbf_ocl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_ocl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
