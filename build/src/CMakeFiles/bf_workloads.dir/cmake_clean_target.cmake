file(REMOVE_RECURSE
  "libbf_workloads.a"
)
