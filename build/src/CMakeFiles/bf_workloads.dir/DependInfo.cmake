
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/alexnet.cpp" "src/CMakeFiles/bf_workloads.dir/workloads/alexnet.cpp.o" "gcc" "src/CMakeFiles/bf_workloads.dir/workloads/alexnet.cpp.o.d"
  "/root/repo/src/workloads/matmul.cpp" "src/CMakeFiles/bf_workloads.dir/workloads/matmul.cpp.o" "gcc" "src/CMakeFiles/bf_workloads.dir/workloads/matmul.cpp.o.d"
  "/root/repo/src/workloads/placeholder.cpp" "src/CMakeFiles/bf_workloads.dir/workloads/placeholder.cpp.o" "gcc" "src/CMakeFiles/bf_workloads.dir/workloads/placeholder.cpp.o.d"
  "/root/repo/src/workloads/sobel.cpp" "src/CMakeFiles/bf_workloads.dir/workloads/sobel.cpp.o" "gcc" "src/CMakeFiles/bf_workloads.dir/workloads/sobel.cpp.o.d"
  "/root/repo/src/workloads/spector_extra.cpp" "src/CMakeFiles/bf_workloads.dir/workloads/spector_extra.cpp.o" "gcc" "src/CMakeFiles/bf_workloads.dir/workloads/spector_extra.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bf_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bf_vt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
