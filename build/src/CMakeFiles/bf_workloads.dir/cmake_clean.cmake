file(REMOVE_RECURSE
  "CMakeFiles/bf_workloads.dir/workloads/alexnet.cpp.o"
  "CMakeFiles/bf_workloads.dir/workloads/alexnet.cpp.o.d"
  "CMakeFiles/bf_workloads.dir/workloads/matmul.cpp.o"
  "CMakeFiles/bf_workloads.dir/workloads/matmul.cpp.o.d"
  "CMakeFiles/bf_workloads.dir/workloads/placeholder.cpp.o"
  "CMakeFiles/bf_workloads.dir/workloads/placeholder.cpp.o.d"
  "CMakeFiles/bf_workloads.dir/workloads/sobel.cpp.o"
  "CMakeFiles/bf_workloads.dir/workloads/sobel.cpp.o.d"
  "CMakeFiles/bf_workloads.dir/workloads/spector_extra.cpp.o"
  "CMakeFiles/bf_workloads.dir/workloads/spector_extra.cpp.o.d"
  "libbf_workloads.a"
  "libbf_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
