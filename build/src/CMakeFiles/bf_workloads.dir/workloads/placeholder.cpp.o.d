src/CMakeFiles/bf_workloads.dir/workloads/placeholder.cpp.o: \
 /root/repo/src/workloads/placeholder.cpp /usr/include/stdc-predef.h
