# Empty compiler generated dependencies file for bf_workloads.
# This may be replaced when dependencies are built.
