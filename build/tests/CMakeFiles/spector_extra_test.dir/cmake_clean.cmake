file(REMOVE_RECURSE
  "CMakeFiles/spector_extra_test.dir/spector_extra_test.cpp.o"
  "CMakeFiles/spector_extra_test.dir/spector_extra_test.cpp.o.d"
  "spector_extra_test"
  "spector_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spector_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
