# Empty compiler generated dependencies file for spector_extra_test.
# This may be replaced when dependencies are built.
