# Empty compiler generated dependencies file for spaceshare_test.
# This may be replaced when dependencies are built.
