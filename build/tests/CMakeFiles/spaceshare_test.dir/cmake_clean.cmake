file(REMOVE_RECURSE
  "CMakeFiles/spaceshare_test.dir/spaceshare_test.cpp.o"
  "CMakeFiles/spaceshare_test.dir/spaceshare_test.cpp.o.d"
  "spaceshare_test"
  "spaceshare_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spaceshare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
