file(REMOVE_RECURSE
  "CMakeFiles/remote_runtime_test.dir/remote_runtime_test.cpp.o"
  "CMakeFiles/remote_runtime_test.dir/remote_runtime_test.cpp.o.d"
  "remote_runtime_test"
  "remote_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
