# Empty dependencies file for remote_runtime_test.
# This may be replaced when dependencies are built.
