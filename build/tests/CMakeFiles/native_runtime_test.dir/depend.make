# Empty dependencies file for native_runtime_test.
# This may be replaced when dependencies are built.
