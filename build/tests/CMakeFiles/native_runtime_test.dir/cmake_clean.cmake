file(REMOVE_RECURSE
  "CMakeFiles/native_runtime_test.dir/native_runtime_test.cpp.o"
  "CMakeFiles/native_runtime_test.dir/native_runtime_test.cpp.o.d"
  "native_runtime_test"
  "native_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
