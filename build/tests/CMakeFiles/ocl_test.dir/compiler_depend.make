# Empty compiler generated dependencies file for ocl_test.
# This may be replaced when dependencies are built.
