file(REMOVE_RECURSE
  "CMakeFiles/ocl_test.dir/ocl_test.cpp.o"
  "CMakeFiles/ocl_test.dir/ocl_test.cpp.o.d"
  "ocl_test"
  "ocl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
