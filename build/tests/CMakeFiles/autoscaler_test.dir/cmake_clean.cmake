file(REMOVE_RECURSE
  "CMakeFiles/autoscaler_test.dir/autoscaler_test.cpp.o"
  "CMakeFiles/autoscaler_test.dir/autoscaler_test.cpp.o.d"
  "autoscaler_test"
  "autoscaler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscaler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
