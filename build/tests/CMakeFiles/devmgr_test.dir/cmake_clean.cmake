file(REMOVE_RECURSE
  "CMakeFiles/devmgr_test.dir/devmgr_test.cpp.o"
  "CMakeFiles/devmgr_test.dir/devmgr_test.cpp.o.d"
  "devmgr_test"
  "devmgr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/devmgr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
