# Empty dependencies file for devmgr_test.
# This may be replaced when dependencies are built.
