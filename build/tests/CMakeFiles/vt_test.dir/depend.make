# Empty dependencies file for vt_test.
# This may be replaced when dependencies are built.
