file(REMOVE_RECURSE
  "CMakeFiles/vt_test.dir/vt_test.cpp.o"
  "CMakeFiles/vt_test.dir/vt_test.cpp.o.d"
  "vt_test"
  "vt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
