# Empty dependencies file for waitlist_test.
# This may be replaced when dependencies are built.
