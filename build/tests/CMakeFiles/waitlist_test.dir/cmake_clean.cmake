file(REMOVE_RECURSE
  "CMakeFiles/waitlist_test.dir/waitlist_test.cpp.o"
  "CMakeFiles/waitlist_test.dir/waitlist_test.cpp.o.d"
  "waitlist_test"
  "waitlist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waitlist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
