
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_memory_test.cpp" "tests/CMakeFiles/sim_memory_test.dir/sim_memory_test.cpp.o" "gcc" "tests/CMakeFiles/sim_memory_test.dir/sim_memory_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bf_vt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bf_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bf_native.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bf_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bf_shm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bf_devmgr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bf_remote.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bf_registry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bf_faas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bf_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bf_loadgen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bf_testbed.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
