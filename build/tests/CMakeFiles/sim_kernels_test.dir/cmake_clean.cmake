file(REMOVE_RECURSE
  "CMakeFiles/sim_kernels_test.dir/sim_kernels_test.cpp.o"
  "CMakeFiles/sim_kernels_test.dir/sim_kernels_test.cpp.o.d"
  "sim_kernels_test"
  "sim_kernels_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
