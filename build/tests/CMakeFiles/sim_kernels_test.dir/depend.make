# Empty dependencies file for sim_kernels_test.
# This may be replaced when dependencies are built.
