file(REMOVE_RECURSE
  "CMakeFiles/sim_board_test.dir/sim_board_test.cpp.o"
  "CMakeFiles/sim_board_test.dir/sim_board_test.cpp.o.d"
  "sim_board_test"
  "sim_board_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_board_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
