#!/usr/bin/env bash
# Run-to-run repeatability check (wired into ctest as `check_repeatability`).
#
# The Table III/IV high-load cells were historically flaky: tenants sharing
# a board emit equal-ready-stamp tasks, and before every session was
# registered with the conservative gate the pop order followed the real
# connect order of the driver threads. The fix is the sequential pre-warm
# (SharingOptions.prewarm, docs/SCHEDULING.md); this script is the
# regression tripwire — each benchmark passed as an argument must produce
# byte-identical stdout across three consecutive runs.
#
# Usage: tools/check_repeatability.sh <benchmark-binary> [<more> ...]
set -euo pipefail

if [ "$#" -lt 1 ]; then
  echo "usage: $0 <benchmark-binary> [<more> ...]" >&2
  exit 2
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

status=0
for bench in "$@"; do
  name="$(basename "$bench")"
  for run in 1 2 3; do
    "$bench" > "$tmpdir/$name.$run" 2>&1 || {
      echo "check_repeatability: $name: run $run exited non-zero" >&2
      status=1
      continue 2
    }
  done
  if diff -q "$tmpdir/$name.1" "$tmpdir/$name.2" > /dev/null \
     && diff -q "$tmpdir/$name.1" "$tmpdir/$name.3" > /dev/null; then
    echo "check_repeatability: $name: 3/3 runs byte-identical"
  else
    echo "check_repeatability: $name: output differs across runs" >&2
    diff "$tmpdir/$name.1" "$tmpdir/$name.2" >&2 || true
    diff "$tmpdir/$name.1" "$tmpdir/$name.3" >&2 || true
    status=1
  fi
done
exit "$status"
