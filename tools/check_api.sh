#!/usr/bin/env bash
# API-convention lint (wired into ctest as `check_api`).
#
# Cross-module service methods must report failure through bf::Status /
# bf::Result<T> (one ErrorCode vocabulary, docs/RESILIENCE.md), never
# through a raw bool — a bool can't carry *why* and silently flattens
# retryable vs terminal failures. Bool is fine for predicates, so any
# method matching a predicate-naming pattern (is_*/has_*/should_*/can_*)
# is allowed, plus a grandfathered allowlist of established predicate
# names that don't carry a prefix.
#
# Exit 0 = clean; exit 1 = a new bool-returning non-predicate method
# declaration appeared in a src/ header. Either rename it as a predicate
# (is_.../has_...) or return Status.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"

# Predicate-style names allowed to return bool.
allow_prefixes='is_|has_|should_|can_'
allow_names='ok|empty|closed|valid|cold|functional|complete|terminal|enabled|armed|triggered|at_end|push|try_push|push_batch|apply|wait_safe|accepting|dirty|operator|compatible_accelerator|compatible_hardware|redistributable_locked'

status=0
while IFS=: read -r file line decl; do
  # Extract the method name from "... bool name(".
  name="$(printf '%s' "$decl" | sed -E 's/.*\bbool[[:space:]]+([A-Za-z_][A-Za-z0-9_]*)\(.*/\1/')"
  if printf '%s' "$name" | grep -qE "^(${allow_prefixes})"; then
    continue
  fi
  if printf '%s' "$name" | grep -qE "^(${allow_names})$"; then
    continue
  fi
  echo "check_api: $file:$line: method '$name' returns raw bool —" \
       "return bf::Status (or rename it as a predicate: is_$name)" >&2
  status=1
done < <(grep -rnE '\bbool[[:space:]]+[a-z_][A-Za-z0-9_]*\(' \
           "$repo/src" --include='*.h' || true)

if [ "$status" -eq 0 ]; then
  echo "check_api: all bool-returning methods in src/ headers are predicates."
fi

# Assignment-map encapsulation: the registry's instance->device map and its
# inverse index (instance_device_ / device_instances_) may only be mutated
# by bind_instance_locked / unbind_instance_locked, fenced by the
# "BEGIN/END instance_device_ accessors" markers in registry.cpp. A mutation
# anywhere else can update one side without the other, and the churn
# harness's I4 invariant (map <-> index agreement) only holds because every
# writer goes through the pair.
registry_cpp="$repo/src/registry/registry.cpp"
begin_line="$(grep -n 'BEGIN instance_device_ accessors' "$registry_cpp" | cut -d: -f1 | head -1)"
end_line="$(grep -n 'END instance_device_ accessors' "$registry_cpp" | cut -d: -f1 | head -1)"
if [ -z "$begin_line" ] || [ -z "$end_line" ]; then
  echo "check_api: accessor markers missing from src/registry/registry.cpp" >&2
  status=1
fi

mutation_re='(instance_device_|device_instances_)[[:space:]]*(\[|\.[[:space:]]*(erase|insert|emplace|clear|swap)\b|=[^=])'
while IFS=: read -r file line text; do
  if [ "$file" = "$registry_cpp" ] && [ -n "$begin_line" ] && [ -n "$end_line" ] \
     && [ "$line" -gt "$begin_line" ] && [ "$line" -lt "$end_line" ]; then
    continue
  fi
  echo "check_api: $file:$line: direct mutation of the assignment map/index —" \
       "go through bind_instance_locked / unbind_instance_locked" >&2
  status=1
done < <(grep -rnE "$mutation_re" "$repo/src" --include='*.cpp' --include='*.h' || true)

if [ "$status" -eq 0 ]; then
  echo "check_api: assignment map mutations are confined to the accessor block."
fi

# Scheduler encapsulation: only the Device Manager constructs or pops a
# concrete scheduler. Everything else selects a policy through
# SchedulerConfig and lets the manager own the queue — a second popper
# would break the single-consumer contract (docs/SCHEDULING.md), and a
# directly constructed policy object would bypass the manager's
# close/cancel lifecycle. The concrete classes live in scheduler.cpp's
# anonymous namespace, so this lint is the tripwire for anyone tempted to
# hoist them out.
scheduler_re='\b(FifoScheduler|WfqScheduler|EdfScheduler|BatchingScheduler|make_scheduler|pop_next_safe)\b'
while IFS=: read -r file line text; do
  case "$file" in
    "$repo/src/devmgr/"*) continue ;;
  esac
  echo "check_api: $file:$line: scheduler construction/pop outside" \
       "src/devmgr/ — select a policy via SchedulerConfig instead" >&2
  status=1
done < <(grep -rnE "$scheduler_re" "$repo/src" \
           --include='*.cpp' --include='*.h' || true)

if [ "$status" -eq 0 ]; then
  echo "check_api: scheduler construction/pops are confined to src/devmgr/."
fi

# Hot-path memory discipline (docs/PERFORMANCE.md): payload bytes on the
# per-request data plane live in bf::Bytes — small-buffer-optimized and
# recyclable through bf::arena's size-class free lists — never in raw byte
# containers or raw heap blocks. A std::vector<std::byte> (or malloc'd
# block) can't be handed back to the arena, so every frame/op that touches
# it pays a fresh allocation; the hotpath_test zero-alloc assertions only
# hold because nothing on the path spells its own buffer. Only
# common/bytes.h and common/arena.h may.
hot_alloc_re='std::vector<[[:space:]]*(std::byte|char|unsigned char|std::uint8_t|uint8_t)[[:space:]]*>|new[[:space:]]+(std::byte|char|unsigned[[:space:]]+char)[[:space:]]*\[|\b(malloc|calloc|realloc)[[:space:]]*\('
while IFS=: read -r file line text; do
  case "$file" in
    "$repo/src/common/bytes.h"|"$repo/src/common/arena.h") continue ;;
  esac
  echo "check_api: $file:$line: raw byte-buffer allocation on a data-plane" \
       "module — stage payloads in bf::Bytes via bf::arena::acquire" >&2
  status=1
done < <(grep -rnE "$hot_alloc_re" "$repo/src" \
           --include='*.cpp' --include='*.h' || true)

if [ "$status" -eq 0 ]; then
  echo "check_api: payload buffers are bf::Bytes everywhere in src/."
fi

# The two stream queues with exactly one consumer (the manager's inbox
# dispatcher, the client's notification pump) must stay on SpscQueue.
# Reintroducing BlockingQueue<Frame> there silently restores the
# mutex+deque hot path and per-item wakeups that the batched-notify work
# removed. BlockingQueue remains the right tool for genuinely MPMC queues.
while IFS=: read -r file line text; do
  echo "check_api: $file:$line: BlockingQueue<Frame> on a single-consumer" \
       "stream — use SpscQueue (common/spsc_ring.h)" >&2
  status=1
done < <(grep -rnE 'BlockingQueue<[[:space:]]*(net::)?Frame\b' "$repo/src" \
           --include='*.cpp' --include='*.h' || true)

if [ "$status" -eq 0 ]; then
  echo "check_api: single-consumer frame streams are on SpscQueue."
fi
exit "$status"
