#!/usr/bin/env bash
# Trace-determinism lint (wired into ctest as `check_trace_hygiene`).
#
# The tracing subsystem's whole contract is that a fixed scenario seed
# yields byte-identical trace JSON across runs and machines (pinned by the
# golden-trace tests). That only holds if span ids and timestamps derive
# exclusively from modeled virtual time (bf::vt) and the builder seed —
# never from wall clocks. This lint rejects any wall-clock source (the
# C++ equivalents of Date.now()) appearing in src/trace/.
#
# Exit 0 = clean; exit 1 = a wall-clock call crept into src/trace/. Thread
# the time in as a vt::Time argument instead.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"

banned='std::chrono::(system_clock|steady_clock|high_resolution_clock)'
banned+='|\bgettimeofday\b|\bclock_gettime\b|\bstd::time\b'
banned+='|\btime\(NULL\)|\btime\(nullptr\)'
banned+='|\blocaltime\b|\bgmtime\b|\bstrftime\b|\bstd::clock\b'

if hits="$(grep -rnE "$banned" "$repo/src/trace" \
             --include='*.h' --include='*.cpp')"; then
  echo "check_trace_hygiene: wall-clock source in src/trace/ —" \
       "trace determinism requires modeled (vt::) time only:" >&2
  echo "$hits" >&2
  exit 1
fi

echo "check_trace_hygiene: src/trace/ is wall-clock free."
exit 0
