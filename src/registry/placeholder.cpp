// placeholder to keep bf_registry non-empty during scaffolding
