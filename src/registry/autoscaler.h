// Node autoscaling (paper §V future work: "integration with AWS F1 for
// nodes autoscaling").
//
// A control loop over the Registry's device metrics: when mean FPGA time
// utilization across the fleet exceeds the scale-up threshold, a new FPGA
// node is provisioned through the NodeProvisioner (the AWS-F1 / cloud-API
// stand-in); when the fleet runs mostly idle, an unused device is
// decommissioned. The Registry's allocation then naturally spreads new
// function instances onto the added capacity.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "registry/registry.h"

namespace bf::registry {

// The cloud-provider surface: provisioning returns the new device id.
class NodeProvisioner {
 public:
  virtual ~NodeProvisioner() = default;
  virtual Result<std::string> provision() = 0;
  virtual Status decommission(const std::string& device_id) = 0;
};

struct AutoscalerPolicy {
  double scale_up_utilization = 0.75;   // mean across devices
  double scale_down_utilization = 0.15;
  std::size_t min_devices = 3;
  std::size_t max_devices = 8;
  // Consecutive evaluations a threshold must hold before acting (debounce).
  unsigned hysteresis = 2;
};

class Autoscaler {
 public:
  enum class Action { kNone, kScaleUp, kScaleDown };

  Autoscaler(Registry* registry, NodeProvisioner* provisioner,
             AutoscalerPolicy policy);

  Autoscaler(const Autoscaler&) = delete;
  Autoscaler& operator=(const Autoscaler&) = delete;

  // One control-loop tick: samples every registered device, applies the
  // thresholds with hysteresis, acts at most once.
  Action evaluate();

  [[nodiscard]] double last_mean_utilization() const {
    return last_mean_utilization_;
  }
  [[nodiscard]] std::uint64_t scale_ups() const { return scale_ups_; }
  [[nodiscard]] std::uint64_t scale_downs() const { return scale_downs_; }

 private:
  Registry* registry_;
  NodeProvisioner* provisioner_;
  AutoscalerPolicy policy_;

  double last_mean_utilization_ = 0.0;
  unsigned above_streak_ = 0;
  unsigned below_streak_ = 0;
  std::uint64_t scale_ups_ = 0;
  std::uint64_t scale_downs_ = 0;
};

}  // namespace bf::registry
