#include "registry/registry.h"

#include <algorithm>

#include "common/log.h"

namespace bf::registry {

Registry::Registry(cluster::Cluster* cluster, AllocationPolicy policy,
                   std::function<vt::Time()> clock)
    : cluster_(cluster), policy_(std::move(policy)), clock_(std::move(clock)) {
  BF_CHECK(cluster_ != nullptr);
  BF_CHECK(clock_ != nullptr);
}

// --- Devices Service ------------------------------------------------------------

Status Registry::register_device(DeviceRecord record) {
  if (record.manager == nullptr) {
    return InvalidArgument("device record needs a manager handle");
  }
  std::lock_guard lock(mutex_);
  if (devices_.contains(record.id)) {
    return AlreadyExists("device '" + record.id + "' already registered");
  }
  DeviceState state;
  state.record = std::move(record);
  devices_.emplace(state.record.id, std::move(state));
  return Status::Ok();
}

Status Registry::deregister_device(const std::string& device_id) {
  std::lock_guard lock(mutex_);
  auto it = devices_.find(device_id);
  if (it == devices_.end()) {
    return NotFound("device '" + device_id + "' not registered");
  }
  if (auto idx = device_instances_.find(device_id);
      idx != device_instances_.end() && !idx->second.empty()) {
    return FailedPrecondition("device '" + device_id +
                              "' still serves instance '" +
                              *idx->second.begin() + "'");
  }
  // No index entry to clean up: unbind_instance_locked erases a device's
  // entry the moment its last instance leaves, so a deregisterable device
  // has none.
  devices_.erase(it);
  return Status::Ok();
}

std::vector<DeviceRecord> Registry::devices() const {
  std::lock_guard lock(mutex_);
  std::vector<DeviceRecord> out;
  out.reserve(devices_.size());
  for (const auto& [id, state] : devices_) out.push_back(state.record);
  return out;
}

Result<DeviceSample> Registry::sample_device(
    const std::string& device_id) const {
  std::lock_guard lock(mutex_);
  auto it = devices_.find(device_id);
  if (it == devices_.end()) {
    return NotFound("device '" + device_id + "' not registered");
  }
  return sample_locked(it->second);
}

DeviceSample Registry::sample_locked(const DeviceState& device) const {
  DeviceSample sample;
  auto bitstream = device.record.manager->board().bitstream();
  sample.configured_accelerator =
      bitstream.has_value() ? bitstream->accelerator : "";
  sample.resident_accelerators =
      device.record.manager->board().resident_accelerators();
  sample.expected_accelerator = device.expected_accelerator.empty()
                                    ? sample.configured_accelerator
                                    : device.expected_accelerator;
  // A reservation is outstanding until its image is observed resident; each
  // outstanding one withholds a region from the advertised free count.
  for (const std::string& accelerator : device.pending_regions) {
    if (std::find(sample.resident_accelerators.begin(),
                  sample.resident_accelerators.end(),
                  accelerator) == sample.resident_accelerators.end()) {
      sample.pending_accelerators.push_back(accelerator);
    }
  }
  const unsigned raw_free =
      device.record.manager->board().free_region_count();
  const auto outstanding =
      static_cast<unsigned>(sample.pending_accelerators.size());
  sample.free_regions = raw_free > outstanding ? raw_free - outstanding : 0;
  const vt::Time now = clock_();
  const vt::Time from =
      now.ns() > policy_.utilization_window.ns()
          ? vt::Time::nanos(now.ns() - policy_.utilization_window.ns())
          : vt::Time::zero();
  sample.utilization = device.record.manager->utilization(from, now);
  auto idx = device_instances_.find(device.record.id);
  sample.connected_instances =
      idx == device_instances_.end() ? 0 : idx->second.size();
  return sample;
}

void Registry::probe_devices() {
  std::lock_guard lock(mutex_);

  // Reconcile pass 1: garbage-collect assignments whose pod is gone (deleted
  // while the registry was detached, so the watcher never fired). Two-strike:
  // a binding is reaped only when it was already pod-less on the previous
  // sweep, so an admission-hook binding whose pod has not been inserted into
  // the cluster yet survives the sweep it races with.
  std::vector<std::string> stale_now;
  for (const auto& [instance, dev] : instance_device_) {
    auto pod = cluster_->get_pod(instance);
    if (!pod.has_value() || pod->phase != cluster::PodPhase::kRunning) {
      stale_now.push_back(instance);
    }
  }
  std::set<std::string> first_strike;
  for (const std::string& instance : stale_now) {
    if (stale_candidates_.contains(instance)) {
      BF_LOG_WARN("registry")
          << "reaping stale assignment '" << instance
          << "' (pod gone for two consecutive sweeps)";
      unbind_instance_locked(instance);
      instance_accelerator_.erase(instance);
    } else {
      first_strike.insert(instance);
    }
  }
  stale_candidates_ = std::move(first_strike);

  // Reconcile pass 2: release fulfilled / abandoned region reservations.
  for (auto& [id, state] : devices_) reconcile_reservations_locked(state);

  // Health sweep.
  for (auto& [id, state] : devices_) {
    bool alive = false;
    if (state.record.manager != nullptr) {
      auto health = state.record.manager->health();
      alive = health.ok() && health.value().accepting;
    }
    if (alive) {
      state.probe_misses = 0;
      if (!state.healthy) {
        state.healthy = true;
        BF_LOG_INFO("registry") << "device " << id
                                << " healthy again after successful probe";
      }
      continue;
    }
    ++state.probe_misses;
    if (state.healthy &&
        state.probe_misses >= policy_.health.miss_threshold) {
      state.healthy = false;
      BF_LOG_WARN("registry")
          << "device " << id << " unhealthy after " << state.probe_misses
          << " missed probe(s)"
          << (policy_.health.migrate_on_unhealthy ? ", migrating tenants"
                                                  : "");
      if (policy_.health.migrate_on_unhealthy) {
        // Create-before-delete, same as a reconfiguration-driven migration.
        // Replacement pods re-enter the admission hook, whose allocate()
        // now skips this board. Best effort: instances whose replacement
        // fails stay bound to this board (rolled back) and are retried on
        // the next sweep.
        Status migrated = migrate_instances_away(id, "");
        if (!migrated.ok()) {
          BF_LOG_WARN("registry")
              << "evacuation of unhealthy device " << id
              << " incomplete: " << migrated.to_string();
        }
      }
    }
  }
}

std::size_t Registry::reap_stale_assignments() {
  std::lock_guard lock(mutex_);
  std::vector<std::string> stale;
  for (const auto& [instance, dev] : instance_device_) {
    auto pod = cluster_->get_pod(instance);
    if (!pod.has_value() || pod->phase != cluster::PodPhase::kRunning) {
      stale.push_back(instance);
    }
  }
  for (const std::string& instance : stale) {
    unbind_instance_locked(instance);
    instance_accelerator_.erase(instance);
  }
  for (auto& [id, state] : devices_) reconcile_reservations_locked(state);
  return stale.size();
}

bool Registry::is_device_healthy(const std::string& device_id) const {
  std::lock_guard lock(mutex_);
  auto it = devices_.find(device_id);
  return it != devices_.end() && it->second.healthy;
}

// --- Functions Service ----------------------------------------------------------

Status Registry::register_function(const std::string& name,
                                   DeviceQuery query) {
  std::lock_guard lock(mutex_);
  if (functions_.contains(name)) {
    return AlreadyExists("function '" + name + "' already registered");
  }
  functions_.emplace(name, std::move(query));
  return Status::Ok();
}

Status Registry::deregister_function(const std::string& name) {
  std::lock_guard lock(mutex_);
  if (functions_.erase(name) == 0) {
    return NotFound("function '" + name + "' not registered");
  }
  return Status::Ok();
}

std::optional<DeviceQuery> Registry::function_query(
    const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = functions_.find(name);
  if (it == functions_.end()) return std::nullopt;
  return it->second;
}

void Registry::attach_to_cluster() {
  cluster_->set_admission_hook([this](cluster::PodSpec& spec) -> Status {
    std::optional<DeviceQuery> query;
    {
      std::lock_guard lock(mutex_);
      auto it = functions_.find(spec.function);
      if (it != functions_.end()) query = it->second;
    }
    if (!query.has_value()) return Status::Ok();  // not ours: pass through

    auto allocation = allocate(spec.name, *query);
    if (!allocation.ok()) return allocation.status();
    // Patch the pod: device env vars, shm volume, forced host allocation
    // (paper: "the allocation algorithm patches the notified operation").
    spec.env[kEnvManager] = allocation.value().manager_address;
    spec.env[kEnvDevice] = allocation.value().device_id;
    spec.env[kEnvBitstream] = query->bitstream;
    if (std::find(spec.volumes.begin(), spec.volumes.end(), kShmVolume) ==
        spec.volumes.end()) {
      spec.volumes.push_back(kShmVolume);
    }
    if (spec.node.empty()) spec.node = allocation.value().node;
    return Status::Ok();
  });

  cluster_->add_watcher([this](const cluster::WatchEvent& event) {
    if (event.type == cluster::WatchEvent::Type::kDeleted) {
      std::lock_guard lock(mutex_);
      unbind_instance_locked(event.pod.spec.name);
      instance_accelerator_.erase(event.pod.spec.name);
    }
  });
}

// --- Allocation (paper Algorithm 1) ------------------------------------------------

bool Registry::compatible_hardware(const DeviceState& device,
                                   const DeviceQuery& query) const {
  if (!query.vendor.empty() && device.record.vendor != query.vendor) {
    return false;
  }
  if (!query.platform.empty() && device.record.platform != query.platform) {
    return false;
  }
  return true;
}

bool Registry::compatible_accelerator(const DeviceSample& sample,
                                      const DeviceQuery& query) const {
  if (query.accelerator.empty()) return false;
  const auto contains = [](const std::vector<std::string>& haystack,
                           const std::string& needle) {
    return std::find(haystack.begin(), haystack.end(), needle) !=
           haystack.end();
  };
  if (sample.expected_accelerator == query.accelerator) return true;
  // A region already reserved for this image will host it once it lands.
  if (contains(sample.pending_accelerators, query.accelerator)) return true;
  // Space-sharing: a resident region with the accelerator is compatible —
  // unless the device expects a different image that can only materialize
  // through a full reprogram (no free region to host it, no reservation,
  // not already resident). Everything resident is then about to be wiped,
  // so binding a new tenant to a doomed image would strand it.
  if (contains(sample.resident_accelerators, query.accelerator)) {
    const bool full_reprogram_imminent =
        !sample.expected_accelerator.empty() && sample.free_regions == 0 &&
        !contains(sample.resident_accelerators,
                  sample.expected_accelerator) &&
        !contains(sample.pending_accelerators, sample.expected_accelerator);
    return !full_reprogram_imminent;
  }
  return false;
}

Result<Allocation> Registry::allocate(
    const std::string& instance, const DeviceQuery& query,
    const std::vector<std::string>& excluded) {
  std::lock_guard lock(mutex_);

  struct Candidate {
    DeviceState* state;
    DeviceSample sample;
  };
  std::vector<Candidate> candidates;

  // Line 2: filterby_compatibility (vendor / platform).
  for (auto& [id, state] : devices_) {
    if (std::find(excluded.begin(), excluded.end(), id) != excluded.end()) {
      continue;
    }
    if (!state.healthy) continue;  // missed its probes: not a candidate
    if (!compatible_hardware(state, query)) continue;
    // A device mid-migration is not a candidate — even for the image it is
    // being reprogrammed to. If the in-flight migration fails, its expected
    // image rolls back and a tenant admitted against it would be stranded;
    // matching tenants can bind as soon as the migration completes.
    if (state.flagged_for_reconfiguration) continue;
    candidates.push_back(Candidate{&state, sample_locked(state)});
  }

  // Line 3: filterby_metrics (drop overloaded devices).
  std::erase_if(candidates, [&](const Candidate& candidate) {
    return candidate.sample.utilization > policy_.max_utilization;
  });
  if (candidates.empty()) {
    return NotFound("device not found for instance '" + instance +
                    "' (accelerator '" + query.accelerator + "')");
  }

  // Line 4: orderby_metrics_and_acc. Metrics-major order (policy-chosen
  // priority), accelerator compatibility and id as deterministic tiebreaks.
  auto metric_of = [](const Candidate& candidate, MetricKey key) -> double {
    switch (key) {
      case MetricKey::kUtilization:
        return candidate.sample.utilization;
      case MetricKey::kConnectedInstances:
        return static_cast<double>(candidate.sample.connected_instances);
    }
    return 0.0;
  };
  std::sort(candidates.begin(), candidates.end(),
            [&](const Candidate& a, const Candidate& b) {
              for (MetricKey key : policy_.metrics_order) {
                const double va = metric_of(a, key);
                const double vb = metric_of(b, key);
                if (va != vb) {
                  return policy_.pack_tenants ? va > vb : va < vb;
                }
              }
              const bool ca = compatible_accelerator(a.sample, query);
              const bool cb = compatible_accelerator(b.sample, query);
              if (ca != cb) return ca;  // compatible first
              return a.state->record.id < b.state->record.id;
            });

  // Lines 5-12: walk to the first device that is accelerator-compatible,
  // has a free PR region (space-sharing: no one has to move), or whose
  // tenants can all be redistributed elsewhere.
  Candidate* chosen = nullptr;
  for (Candidate& candidate : candidates) {
    if (compatible_accelerator(candidate.sample, query) ||
        candidate.sample.free_regions > 0 ||
        redistributable_locked(candidate.state->record.id)) {
      chosen = &candidate;
      break;
    }
  }
  if (chosen == nullptr) {
    return NotFound("device not found: no compatible or redistributable "
                    "device for '" + instance + "'");
  }

  Allocation allocation;
  allocation.device_id = chosen->state->record.id;
  allocation.manager_address = chosen->state->record.manager_address;
  allocation.node = chosen->state->record.node;
  allocation.reconfigure =
      !compatible_accelerator(chosen->sample, query);

  if (allocation.reconfigure) {
    DeviceState& device = *chosen->state;
    if (chosen->sample.free_regions > 0) {
      // Space-sharing: reserve a free partial-reconfiguration region for the
      // new image; resident tenants keep running, no migration needed. The
      // reservation withholds the region from later allocations until the
      // image is observed resident (released by the reconcile pass), so two
      // reconfigure-allocations cannot both claim the last free region.
      device.pending_regions.insert(query.accelerator);
      device.expected_accelerator = query.accelerator;
    } else {
      const std::string prior_expected = device.expected_accelerator;
      std::set<std::string> prior_pending = device.pending_regions;
      device.flagged_for_reconfiguration = true;
      device.expected_accelerator = query.accelerator;
      // A full reprogram voids earlier reservations: their tenants are
      // migrated away with everyone else.
      device.pending_regions.clear();
      Status migrated =
          migrate_instances_away(device.record.id, instance);
      device.flagged_for_reconfiguration = false;
      if (!migrated.ok()) {
        // Live tenants remain on the board (rolled-back create-before-delete
        // replacements); admitting the new instance anyway would double-book
        // it. Restore the pre-flag state and fail the allocation.
        device.expected_accelerator = prior_expected;
        device.pending_regions = std::move(prior_pending);
        return Status(migrated.code(),
                      "allocation of '" + instance +
                          "' aborted: migration incomplete for device '" +
                          allocation.device_id +
                          "': " + migrated.to_string());
      }
      // The new image claims a free PR region when realized (a full
      // reprogram when there is none): reserve it so later allocations
      // cannot double-book that region.
      if (device.record.manager->board().free_region_count() > 0) {
        device.pending_regions.insert(query.accelerator);
      }
    }
  }

  bind_instance_locked(instance, allocation.device_id);
  return allocation;
}

std::optional<std::string> Registry::required_accelerator_locked(
    const std::string& instance) const {
  if (auto it = instance_accelerator_.find(instance);
      it != instance_accelerator_.end()) {
    return it->second;
  }
  auto pod = cluster_->get_pod(instance);
  if (!pod.has_value()) return std::nullopt;
  auto fn = functions_.find(pod->spec.function);
  if (fn == functions_.end()) return std::nullopt;
  return fn->second.accelerator;
}

bool Registry::redistributable_locked(const std::string& device_id) {
  // Every instance currently on the device must have another device that is
  // hardware compatible, accelerator compatible and under the utilization
  // threshold.
  auto idx = device_instances_.find(device_id);
  if (idx == device_instances_.end()) return true;
  for (const std::string& instance : idx->second) {
    // Find this instance's function query via its pod.
    auto pod = cluster_->get_pod(instance);
    if (!pod.has_value()) continue;  // stale: reaped by the reconcile pass
    auto fn = functions_.find(pod->spec.function);
    if (fn == functions_.end()) continue;
    // What the instance actually needs now (a reconfiguration request may
    // have overridden the function's image).
    DeviceQuery query = fn->second;
    if (auto required = required_accelerator_locked(instance)) {
      query.accelerator = *required;
    }
    bool movable = false;
    for (auto& [other_id, other] : devices_) {
      if (other_id == device_id) continue;
      if (!other.healthy) continue;
      // Mid-migration devices refuse new tenants (see allocate()).
      if (other.flagged_for_reconfiguration) continue;
      if (!compatible_hardware(other, query)) continue;
      DeviceSample sample = sample_locked(other);
      if (sample.utilization > policy_.max_utilization) continue;
      auto other_idx = device_instances_.find(other_id);
      const bool other_empty = other_idx == device_instances_.end() ||
                               other_idx->second.empty();
      if (compatible_accelerator(sample, query) ||
          sample.free_regions > 0 ||
          (sample.expected_accelerator.empty() && other_empty)) {
        movable = true;
        break;
      }
    }
    if (!movable) return false;
  }
  return true;
}

Status Registry::migrate_instances_away(const std::string& device_id,
                                        const std::string& except_instance) {
  std::vector<std::string> to_move;
  if (auto idx = device_instances_.find(device_id);
      idx != device_instances_.end()) {
    for (const std::string& instance : idx->second) {
      if (instance != except_instance) to_move.push_back(instance);
    }
  }
  Status first_error;
  for (const std::string& instance : to_move) {
    // A binding with no running pod is stale — the pod was deleted while
    // the registry was detached, so there is nothing serving and nothing
    // to migrate. Leave it for the probe-sweep GC instead of letting
    // replace_pod's NotFound poison every migration off this device.
    auto pod = cluster_->get_pod(instance);
    if (!pod.has_value() || pod->phase != cluster::PodPhase::kRunning) {
      continue;
    }
    // Create-before-delete: the replacement is admitted (and re-allocated by
    // our hook, which now sees this device as flagged) before the old pod
    // dies. Unbind first so the replacement's admission does not count the
    // departing tenant against this device.
    unbind_instance_locked(instance);
    auto replaced = cluster_->replace_pod(instance);
    if (!replaced.ok()) {
      // The old pod never stopped serving (create-before-delete), so its
      // assignment must survive: restore it, or the instance becomes
      // invisible to device_of_instance / connected-instance metrics and
      // deregister_device's still-serving safety check.
      bind_instance_locked(instance, device_id);
      if (first_error.ok()) first_error = replaced.status();
    }
  }
  return first_error;
}

void Registry::reconcile_reservations_locked(DeviceState& device) {
  if (device.pending_regions.empty()) return;
  const std::vector<std::string> resident =
      device.record.manager->board().resident_accelerators();
  auto wanted_by_tenant = [&](const std::string& accelerator) {
    auto idx = device_instances_.find(device.record.id);
    if (idx == device_instances_.end()) return false;
    for (const std::string& instance : idx->second) {
      auto required = required_accelerator_locked(instance);
      if (required.has_value() && *required == accelerator) return true;
    }
    return false;
  };
  for (auto it = device.pending_regions.begin();
       it != device.pending_regions.end();) {
    const bool fulfilled =
        std::find(resident.begin(), resident.end(), *it) != resident.end();
    if (fulfilled || !wanted_by_tenant(*it)) {
      if (!fulfilled && device.expected_accelerator == *it) {
        // The reservation was abandoned (its tenants are gone); stop
        // advertising an image nobody is waiting for.
        device.expected_accelerator.clear();
      }
      it = device.pending_regions.erase(it);
    } else {
      ++it;
    }
  }
}

// --- Reconfiguration validation ------------------------------------------------------

Status Registry::request_reconfiguration(const std::string& instance,
                                         const std::string& bitstream_id) {
  std::lock_guard lock(mutex_);
  auto assigned = instance_device_.find(instance);
  if (assigned == instance_device_.end()) {
    return FailedPrecondition("instance '" + instance +
                              "' has no allocated device");
  }
  auto device_it = devices_.find(assigned->second);
  if (device_it == devices_.end()) {
    return Internal("instance '" + instance + "' assigned to unknown device");
  }
  DeviceState& device = device_it->second;
  const sim::Bitstream* bitstream =
      sim::BitstreamLibrary::standard().find(bitstream_id);
  if (bitstream == nullptr) {
    return NotFound("unknown bitstream '" + bitstream_id + "'");
  }
  DeviceSample sample = sample_locked(device);
  if (sample.expected_accelerator == bitstream->accelerator) {
    instance_accelerator_[instance] = bitstream->accelerator;
    return Status::Ok();  // no reconfiguration needed
  }
  if (sample.free_regions > 0) {
    // Space-sharing: a free region hosts the new image; co-tenants keep
    // running where they are.
    device.pending_regions.insert(bitstream->accelerator);
    device.expected_accelerator = bitstream->accelerator;
    instance_accelerator_[instance] = bitstream->accelerator;
    return Status::Ok();
  }
  const std::string prior_expected = device.expected_accelerator;
  std::set<std::string> prior_pending = device.pending_regions;
  device.flagged_for_reconfiguration = true;
  device.expected_accelerator = bitstream->accelerator;
  device.pending_regions.clear();
  Status migrated = migrate_instances_away(device.record.id, instance);
  device.flagged_for_reconfiguration = false;
  if (!migrated.ok()) {
    // Co-tenants are still on the board: restore the advertised image so
    // their functions keep matching the device they actually run on.
    device.expected_accelerator = prior_expected;
    device.pending_regions = std::move(prior_pending);
    return migrated;
  }
  // The board is now the requester's alone. The new image claims a free PR
  // region when realized (a full reprogram when there is none): reserve it
  // so later allocations cannot double-book that region. Remember the
  // requester's new image — its function's registered query no longer
  // describes what it runs.
  if (device.record.manager->board().free_region_count() > 0) {
    device.pending_regions.insert(bitstream->accelerator);
  }
  instance_accelerator_[instance] = bitstream->accelerator;
  return Status::Ok();
}

// --- Introspection ---------------------------------------------------------------------

std::optional<std::string> Registry::device_of_instance(
    const std::string& instance) const {
  std::lock_guard lock(mutex_);
  auto it = instance_device_.find(instance);
  if (it == instance_device_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> Registry::instances_on_device(
    const std::string& device_id) const {
  std::lock_guard lock(mutex_);
  auto idx = device_instances_.find(device_id);
  if (idx == device_instances_.end()) return {};
  return {idx->second.begin(), idx->second.end()};
}

std::size_t Registry::assignment_count() const {
  std::lock_guard lock(mutex_);
  return instance_device_.size();
}

std::map<std::string, std::string> Registry::assignments() const {
  std::lock_guard lock(mutex_);
  return instance_device_;
}

// BEGIN instance_device_ accessors — the only code allowed to mutate
// instance_device_ / device_instances_; everything else goes through these
// so the map and its inverse index cannot drift (tools/check_api.sh lints
// for mutations outside this block).

void Registry::bind_instance_locked(const std::string& instance,
                                    const std::string& device_id) {
  auto existing = instance_device_.find(instance);
  if (existing != instance_device_.end()) {
    if (existing->second == device_id) {
      stale_candidates_.erase(instance);
      return;
    }
    auto idx = device_instances_.find(existing->second);
    if (idx != device_instances_.end()) {
      idx->second.erase(instance);
      if (idx->second.empty()) device_instances_.erase(idx);
    }
  }
  instance_device_[instance] = device_id;
  device_instances_[device_id].insert(instance);
  stale_candidates_.erase(instance);
}

void Registry::unbind_instance_locked(const std::string& instance) {
  auto it = instance_device_.find(instance);
  if (it == instance_device_.end()) return;
  auto idx = device_instances_.find(it->second);
  if (idx != device_instances_.end()) {
    idx->second.erase(instance);
    if (idx->second.empty()) device_instances_.erase(idx);
  }
  instance_device_.erase(it);
  stale_candidates_.erase(instance);
}

// END instance_device_ accessors.

}  // namespace bf::registry
