#include "registry/registry.h"

#include <algorithm>

#include "common/log.h"

namespace bf::registry {

Registry::Registry(cluster::Cluster* cluster, AllocationPolicy policy,
                   std::function<vt::Time()> clock)
    : cluster_(cluster), policy_(std::move(policy)), clock_(std::move(clock)) {
  BF_CHECK(cluster_ != nullptr);
  BF_CHECK(clock_ != nullptr);
}

// --- Devices Service ------------------------------------------------------------

Status Registry::register_device(DeviceRecord record) {
  if (record.manager == nullptr) {
    return InvalidArgument("device record needs a manager handle");
  }
  std::lock_guard lock(mutex_);
  if (devices_.contains(record.id)) {
    return AlreadyExists("device '" + record.id + "' already registered");
  }
  DeviceState state;
  state.record = std::move(record);
  devices_.emplace(state.record.id, std::move(state));
  return Status::Ok();
}

Status Registry::deregister_device(const std::string& device_id) {
  std::lock_guard lock(mutex_);
  auto it = devices_.find(device_id);
  if (it == devices_.end()) {
    return NotFound("device '" + device_id + "' not registered");
  }
  for (const auto& [instance, dev] : instance_device_) {
    if (dev == device_id) {
      return FailedPrecondition("device '" + device_id +
                                "' still serves instance '" + instance + "'");
    }
  }
  devices_.erase(it);
  return Status::Ok();
}

std::vector<DeviceRecord> Registry::devices() const {
  std::lock_guard lock(mutex_);
  std::vector<DeviceRecord> out;
  out.reserve(devices_.size());
  for (const auto& [id, state] : devices_) out.push_back(state.record);
  return out;
}

Result<DeviceSample> Registry::sample_device(
    const std::string& device_id) const {
  std::lock_guard lock(mutex_);
  auto it = devices_.find(device_id);
  if (it == devices_.end()) {
    return NotFound("device '" + device_id + "' not registered");
  }
  return sample_locked(it->second);
}

DeviceSample Registry::sample_locked(const DeviceState& device) const {
  DeviceSample sample;
  auto bitstream = device.record.manager->board().bitstream();
  sample.configured_accelerator =
      bitstream.has_value() ? bitstream->accelerator : "";
  sample.resident_accelerators =
      device.record.manager->board().resident_accelerators();
  sample.free_regions = device.record.manager->board().free_region_count();
  sample.expected_accelerator = device.expected_accelerator.empty()
                                    ? sample.configured_accelerator
                                    : device.expected_accelerator;
  const vt::Time now = clock_();
  const vt::Time from =
      now.ns() > policy_.utilization_window.ns()
          ? vt::Time::nanos(now.ns() - policy_.utilization_window.ns())
          : vt::Time::zero();
  sample.utilization = device.record.manager->utilization(from, now);
  std::size_t connected = 0;
  for (const auto& [instance, dev] : instance_device_) {
    if (dev == device.record.id) ++connected;
  }
  sample.connected_instances = connected;
  return sample;
}

void Registry::probe_devices() {
  std::lock_guard lock(mutex_);
  for (auto& [id, state] : devices_) {
    bool alive = false;
    if (state.record.manager != nullptr) {
      auto health = state.record.manager->health();
      alive = health.ok() && health.value().accepting;
    }
    if (alive) {
      state.probe_misses = 0;
      if (!state.healthy) {
        state.healthy = true;
        BF_LOG_INFO("registry") << "device " << id
                                << " healthy again after successful probe";
      }
      continue;
    }
    ++state.probe_misses;
    if (state.healthy &&
        state.probe_misses >= policy_.health.miss_threshold) {
      state.healthy = false;
      BF_LOG_WARN("registry")
          << "device " << id << " unhealthy after " << state.probe_misses
          << " missed probe(s)"
          << (policy_.health.migrate_on_unhealthy ? ", migrating tenants"
                                                  : "");
      if (policy_.health.migrate_on_unhealthy) {
        // Create-before-delete, same as a reconfiguration-driven migration.
        // Replacement pods re-enter the admission hook, whose allocate()
        // now skips this board.
        Status migrated = migrate_instances_away(id, "");
        if (!migrated.ok()) {
          BF_LOG_WARN("registry")
              << "evacuation of unhealthy device " << id
              << " incomplete: " << migrated.to_string();
        }
      }
    }
  }
}

bool Registry::is_device_healthy(const std::string& device_id) const {
  std::lock_guard lock(mutex_);
  auto it = devices_.find(device_id);
  return it != devices_.end() && it->second.healthy;
}

// --- Functions Service ----------------------------------------------------------

Status Registry::register_function(const std::string& name,
                                   DeviceQuery query) {
  std::lock_guard lock(mutex_);
  if (functions_.contains(name)) {
    return AlreadyExists("function '" + name + "' already registered");
  }
  functions_.emplace(name, std::move(query));
  return Status::Ok();
}

Status Registry::deregister_function(const std::string& name) {
  std::lock_guard lock(mutex_);
  if (functions_.erase(name) == 0) {
    return NotFound("function '" + name + "' not registered");
  }
  return Status::Ok();
}

std::optional<DeviceQuery> Registry::function_query(
    const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = functions_.find(name);
  if (it == functions_.end()) return std::nullopt;
  return it->second;
}

void Registry::attach_to_cluster() {
  cluster_->set_admission_hook([this](cluster::PodSpec& spec) -> Status {
    std::optional<DeviceQuery> query;
    {
      std::lock_guard lock(mutex_);
      auto it = functions_.find(spec.function);
      if (it != functions_.end()) query = it->second;
    }
    if (!query.has_value()) return Status::Ok();  // not ours: pass through

    auto allocation = allocate(spec.name, *query);
    if (!allocation.ok()) return allocation.status();
    // Patch the pod: device env vars, shm volume, forced host allocation
    // (paper: "the allocation algorithm patches the notified operation").
    spec.env[kEnvManager] = allocation.value().manager_address;
    spec.env[kEnvDevice] = allocation.value().device_id;
    spec.env[kEnvBitstream] = query->bitstream;
    if (std::find(spec.volumes.begin(), spec.volumes.end(), kShmVolume) ==
        spec.volumes.end()) {
      spec.volumes.push_back(kShmVolume);
    }
    if (spec.node.empty()) spec.node = allocation.value().node;
    return Status::Ok();
  });

  cluster_->add_watcher([this](const cluster::WatchEvent& event) {
    if (event.type == cluster::WatchEvent::Type::kDeleted) {
      std::lock_guard lock(mutex_);
      instance_device_.erase(event.pod.spec.name);
    }
  });
}

// --- Allocation (paper Algorithm 1) ------------------------------------------------

bool Registry::compatible_hardware(const DeviceState& device,
                                   const DeviceQuery& query) const {
  if (!query.vendor.empty() && device.record.vendor != query.vendor) {
    return false;
  }
  if (!query.platform.empty() && device.record.platform != query.platform) {
    return false;
  }
  return true;
}

bool Registry::compatible_accelerator(const DeviceSample& sample,
                                      const DeviceQuery& query) const {
  if (query.accelerator.empty()) return false;
  if (sample.expected_accelerator == query.accelerator) return true;
  // Space-sharing: any resident region with the accelerator is compatible.
  return std::find(sample.resident_accelerators.begin(),
                   sample.resident_accelerators.end(),
                   query.accelerator) != sample.resident_accelerators.end();
}

Result<Allocation> Registry::allocate(
    const std::string& instance, const DeviceQuery& query,
    const std::vector<std::string>& excluded) {
  std::lock_guard lock(mutex_);

  struct Candidate {
    DeviceState* state;
    DeviceSample sample;
  };
  std::vector<Candidate> candidates;

  // Line 2: filterby_compatibility (vendor / platform).
  for (auto& [id, state] : devices_) {
    if (std::find(excluded.begin(), excluded.end(), id) != excluded.end()) {
      continue;
    }
    if (!state.healthy) continue;  // missed its probes: not a candidate
    if (!compatible_hardware(state, query)) continue;
    DeviceSample sample = sample_locked(state);
    // A device flagged for (or expecting) a different accelerator is not a
    // candidate: it is mid-reconfiguration for another tenant group.
    if (state.flagged_for_reconfiguration &&
        sample.expected_accelerator != query.accelerator) {
      continue;
    }
    candidates.push_back(Candidate{&state, std::move(sample)});
  }

  // Line 3: filterby_metrics (drop overloaded devices).
  std::erase_if(candidates, [&](const Candidate& candidate) {
    return candidate.sample.utilization > policy_.max_utilization;
  });
  if (candidates.empty()) {
    return NotFound("device not found for instance '" + instance +
                    "' (accelerator '" + query.accelerator + "')");
  }

  // Line 4: orderby_metrics_and_acc. Metrics-major order (policy-chosen
  // priority), accelerator compatibility and id as deterministic tiebreaks.
  auto metric_of = [](const Candidate& candidate, MetricKey key) -> double {
    switch (key) {
      case MetricKey::kUtilization:
        return candidate.sample.utilization;
      case MetricKey::kConnectedInstances:
        return static_cast<double>(candidate.sample.connected_instances);
    }
    return 0.0;
  };
  std::sort(candidates.begin(), candidates.end(),
            [&](const Candidate& a, const Candidate& b) {
              for (MetricKey key : policy_.metrics_order) {
                const double va = metric_of(a, key);
                const double vb = metric_of(b, key);
                if (va != vb) {
                  return policy_.pack_tenants ? va > vb : va < vb;
                }
              }
              const bool ca = compatible_accelerator(a.sample, query);
              const bool cb = compatible_accelerator(b.sample, query);
              if (ca != cb) return ca;  // compatible first
              return a.state->record.id < b.state->record.id;
            });

  // Lines 5-12: walk to the first device that is accelerator-compatible,
  // has a free PR region (space-sharing: no one has to move), or whose
  // tenants can all be redistributed elsewhere.
  Candidate* chosen = nullptr;
  for (Candidate& candidate : candidates) {
    if (compatible_accelerator(candidate.sample, query) ||
        candidate.sample.free_regions > 0 ||
        redistributable_locked(candidate.state->record.id)) {
      chosen = &candidate;
      break;
    }
  }
  if (chosen == nullptr) {
    return NotFound("device not found: no compatible or redistributable "
                    "device for '" + instance + "'");
  }

  Allocation allocation;
  allocation.device_id = chosen->state->record.id;
  allocation.manager_address = chosen->state->record.manager_address;
  allocation.node = chosen->state->record.node;
  allocation.reconfigure =
      !compatible_accelerator(chosen->sample, query);

  if (allocation.reconfigure) {
    if (chosen->sample.free_regions > 0) {
      // Space-sharing: a free partial-reconfiguration region hosts the new
      // accelerator; resident tenants keep running, no migration needed.
      // (expected_accelerator tracks only the newest pending image; the
      // resident list carries the rest.)
      chosen->state->expected_accelerator = query.accelerator;
    } else {
      chosen->state->flagged_for_reconfiguration = true;
      chosen->state->expected_accelerator = query.accelerator;
      Status migrated =
          migrate_instances_away(chosen->state->record.id, instance);
      chosen->state->flagged_for_reconfiguration = false;
      if (!migrated.ok()) {
        BF_LOG_WARN("registry") << "migration incomplete for device "
                                << allocation.device_id << ": "
                                << migrated.to_string();
      }
    }
  }

  instance_device_[instance] = allocation.device_id;
  return allocation;
}

bool Registry::redistributable_locked(const std::string& device_id) {
  // Every instance currently on the device must have another device that is
  // hardware compatible, accelerator compatible and under the utilization
  // threshold.
  for (const auto& [instance, dev] : instance_device_) {
    if (dev != device_id) continue;
    // Find this instance's function query via its pod.
    auto pod = cluster_->get_pod(instance);
    if (!pod.has_value()) continue;  // stale assignment
    auto fn = functions_.find(pod->spec.function);
    if (fn == functions_.end()) continue;
    bool movable = false;
    for (auto& [other_id, other] : devices_) {
      if (other_id == device_id) continue;
      if (!other.healthy) continue;
      if (!compatible_hardware(other, fn->second)) continue;
      DeviceSample sample = sample_locked(other);
      if (sample.utilization > policy_.max_utilization) continue;
      if (compatible_accelerator(sample, fn->second) ||
          sample.free_regions > 0 ||
          (sample.expected_accelerator.empty() &&
           instances_on_device(other_id).empty())) {
        movable = true;
        break;
      }
    }
    if (!movable) return false;
  }
  return true;
}

Status Registry::migrate_instances_away(const std::string& device_id,
                                        const std::string& except_instance) {
  std::vector<std::string> to_move;
  for (const auto& [instance, dev] : instance_device_) {
    if (dev == device_id && instance != except_instance) {
      to_move.push_back(instance);
    }
  }
  Status first_error;
  for (const std::string& instance : to_move) {
    // Create-before-delete: the replacement is admitted (and re-allocated by
    // our hook, which now sees this device as flagged) before the old pod
    // dies.
    instance_device_.erase(instance);
    auto replaced = cluster_->replace_pod(instance);
    if (!replaced.ok() && first_error.ok()) {
      first_error = replaced.status();
    }
  }
  return first_error;
}

// --- Reconfiguration validation ------------------------------------------------------

Status Registry::request_reconfiguration(const std::string& instance,
                                         const std::string& bitstream_id) {
  std::lock_guard lock(mutex_);
  auto assigned = instance_device_.find(instance);
  if (assigned == instance_device_.end()) {
    return FailedPrecondition("instance '" + instance +
                              "' has no allocated device");
  }
  auto device_it = devices_.find(assigned->second);
  if (device_it == devices_.end()) {
    return Internal("instance '" + instance + "' assigned to unknown device");
  }
  DeviceState& device = device_it->second;
  const sim::Bitstream* bitstream =
      sim::BitstreamLibrary::standard().find(bitstream_id);
  if (bitstream == nullptr) {
    return NotFound("unknown bitstream '" + bitstream_id + "'");
  }
  DeviceSample sample = sample_locked(device);
  if (sample.expected_accelerator == bitstream->accelerator) {
    return Status::Ok();  // no reconfiguration needed
  }
  device.flagged_for_reconfiguration = true;
  device.expected_accelerator = bitstream->accelerator;
  Status migrated = migrate_instances_away(device.record.id, instance);
  device.flagged_for_reconfiguration = false;
  return migrated;
}

// --- Introspection ---------------------------------------------------------------------

std::optional<std::string> Registry::device_of_instance(
    const std::string& instance) const {
  std::lock_guard lock(mutex_);
  auto it = instance_device_.find(instance);
  if (it == instance_device_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> Registry::instances_on_device(
    const std::string& device_id) const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [instance, dev] : instance_device_) {
    if (dev == device_id) out.push_back(instance);
  }
  return out;
}

std::size_t Registry::assignment_count() const {
  std::lock_guard lock(mutex_);
  return instance_device_.size();
}

}  // namespace bf::registry
