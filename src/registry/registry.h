// Accelerators Registry: the master component (paper §III-C).
//
//  * Devices Service  — registers boards/managers, tracks configured and
//    expected accelerators, flags reconfigurations.
//  * Functions Service — registers serverless functions with their device
//    queries, tracks instance->device assignments.
//  * Metrics Gatherer — samples per-device runtime metrics (FPGA time
//    utilization, connected instances) from the Device Managers; this is the
//    Prometheus-scrape stand-in.
//  * Allocation        — paper Algorithm 1, run at function-instance
//    admission: filter by compatibility, filter by metrics, order by metrics
//    and accelerator compatibility, fall through to redistributable devices,
//    flag reconfiguration, force host allocation.
//  * Migration         — create-before-delete via the cluster when a device
//    must be reconfigured under live tenants.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "devmgr/device_manager.h"
#include "vt/time.h"

namespace bf::registry {

// What a function requires from a device (paper: vendor, platform,
// accelerator compatibility).
struct DeviceQuery {
  std::string vendor;       // "" = any
  std::string platform;     // "" = any
  std::string accelerator;  // required accelerator name
  std::string bitstream;    // bitstream id that provides it
};

struct DeviceRecord {
  std::string id;
  std::string vendor;
  std::string platform;
  std::string node;
  std::string manager_address;
  // Direct handle used by the Metrics Gatherer (Prometheus stand-in) and
  // for configured-bitstream introspection.
  devmgr::DeviceManager* manager = nullptr;
};

struct DeviceSample {
  std::string configured_accelerator;  // region 0 (classic mode)
  std::string expected_accelerator;    // after pending reconfigurations
  // All accelerators resident on the board (> 1 in space-sharing mode).
  std::vector<std::string> resident_accelerators;
  // Accelerator images an allocation has reserved a free PR region for but
  // that are not yet resident on the board. Each outstanding reservation
  // withholds one region from `free_regions` so two reconfigure-allocations
  // cannot both claim the last free region.
  std::vector<std::string> pending_accelerators;
  // Free partial-reconfiguration regions net of outstanding reservations
  // (0 in classic mode when configured): a free region admits a new
  // accelerator without migration.
  unsigned free_regions = 0;
  double utilization = 0.0;            // over the gatherer window
  std::size_t connected_instances = 0;
};

enum class MetricKey { kUtilization, kConnectedInstances };

// Unhealthy-board detection (driven by probe_devices(), which the testbed's
// gatherer calls on its sampling cadence). A probe "miss" is a health check
// that fails or reports the manager no longer accepting work; K consecutive
// misses mark the board unhealthy. Unhealthy boards are excluded from
// allocation and (optionally) evacuated create-before-delete, exactly like a
// reconfiguration-driven migration. A later successful probe restores the
// board.
struct HealthPolicy {
  unsigned miss_threshold = 3;
  bool migrate_on_unhealthy = true;
};

struct AllocationPolicy {
  // filterby_metrics: drop devices above this utilization.
  double max_utilization = 0.95;
  // orderby_metrics: sort priority (paper: "chosen depending on the system
  // and applications SLA").
  std::vector<MetricKey> metrics_order = {MetricKey::kUtilization,
                                          MetricKey::kConnectedInstances};
  // Metrics-gathering window for utilization.
  vt::Duration utilization_window = vt::Duration::seconds(10);
  // Spread (ascending metrics, the default) or pack (descending) tenants.
  // Packing is the ablation baseline showing why least-loaded-first matters.
  bool pack_tenants = false;
  HealthPolicy health;
};

struct Allocation {
  std::string device_id;
  std::string manager_address;
  std::string node;
  bool reconfigure = false;  // device flagged for reconfiguration
};

class Registry {
 public:
  // `clock` supplies the current modeled time for metric windows (the
  // experiment fabric wires it to the load clock).
  Registry(cluster::Cluster* cluster, AllocationPolicy policy,
           std::function<vt::Time()> clock);

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // --- Devices Service --------------------------------------------------------
  Status register_device(DeviceRecord record);
  // Refused while instances are still assigned to the device.
  Status deregister_device(const std::string& device_id);
  [[nodiscard]] std::vector<DeviceRecord> devices() const;
  [[nodiscard]] Result<DeviceSample> sample_device(
      const std::string& device_id) const;

  // One liveness sweep over every registered Device Manager (call it from
  // the gatherer's sampling loop). Applies HealthPolicy: K consecutive
  // failed probes mark a board unhealthy, exclude it from allocation and —
  // when migrate_on_unhealthy — move its instances create-before-delete to
  // healthy boards. A succeeding probe resets the miss count and restores
  // the board.
  //
  // Each sweep also runs a reconcile pass: reservations whose image became
  // resident (or lost every tenant) are released, and assignments whose pod
  // is gone — deleted while the registry was detached from the cluster, so
  // the watcher never saw the event — are garbage-collected. Assignment GC
  // is two-strike: a binding must be pod-less across two consecutive sweeps
  // before it is reaped, so a binding made by an admission hook whose pod
  // has not landed in the cluster yet is never collected mid-flight.
  void probe_devices();
  // Immediately unbinds every assignment whose pod is not running and
  // returns how many were reaped. Single-strike: only call at known quiesce
  // points (no admission in flight), e.g. before decommissioning a node.
  std::size_t reap_stale_assignments();
  [[nodiscard]] bool is_device_healthy(const std::string& device_id) const;

  // --- Functions Service ------------------------------------------------------
  Status register_function(const std::string& name, DeviceQuery query);
  Status deregister_function(const std::string& name);
  [[nodiscard]] std::optional<DeviceQuery> function_query(
      const std::string& name) const;

  // Installs the admission hook + watcher on the cluster. Pods belonging to
  // registered functions get allocated, patched (env/volumes) and pinned to
  // the chosen device's node; others pass through untouched.
  void attach_to_cluster();

  // --- Allocation (Algorithm 1) -------------------------------------------------
  Result<Allocation> allocate(const std::string& instance,
                              const DeviceQuery& query,
                              const std::vector<std::string>& excluded = {});

  // --- Reconfiguration validation + migration -----------------------------------
  // A running instance asks to load a different bitstream on its device.
  // The Registry verifies the caller's allocation, migrates every other
  // connected instance away (create-before-delete) and approves.
  Status request_reconfiguration(const std::string& instance,
                                 const std::string& bitstream_id);

  // --- Introspection --------------------------------------------------------------
  [[nodiscard]] std::optional<std::string> device_of_instance(
      const std::string& instance) const;
  [[nodiscard]] std::vector<std::string> instances_on_device(
      const std::string& device_id) const;
  [[nodiscard]] std::size_t assignment_count() const;
  // Snapshot of the full instance -> device assignment map (invariant
  // checkers; see tests/registry_churn_test.cpp and docs/ALLOCATION.md).
  [[nodiscard]] std::map<std::string, std::string> assignments() const;

  // Env keys written into pod specs by the admission patch.
  static constexpr const char* kEnvManager = "BF_MANAGER";
  static constexpr const char* kEnvDevice = "BF_DEVICE";
  static constexpr const char* kEnvBitstream = "BF_BITSTREAM";
  static constexpr const char* kShmVolume = "bf-shm";

 private:
  struct DeviceState {
    DeviceRecord record;
    // Accelerator images that claimed a free PR region at allocation time
    // and have not been observed resident yet (reservation accounting).
    // Entries are released by the reconcile pass once the image lands on
    // the board or its last tenant leaves.
    std::set<std::string> pending_regions;
    std::string expected_accelerator;  // set by allocations that reconfigure
    bool flagged_for_reconfiguration = false;
    unsigned probe_misses = 0;  // consecutive failed health probes
    bool healthy = true;        // cleared at HealthPolicy::miss_threshold
  };

  [[nodiscard]] DeviceSample sample_locked(const DeviceState& device) const;
  [[nodiscard]] bool compatible_hardware(const DeviceState& device,
                                         const DeviceQuery& query) const;
  [[nodiscard]] bool compatible_accelerator(const DeviceSample& sample,
                                            const DeviceQuery& query) const;
  // Can every instance on `device` move to some other device?
  [[nodiscard]] bool redistributable_locked(const std::string& device_id);
  Status migrate_instances_away(const std::string& device_id,
                                const std::string& except_instance);
  // Releases fulfilled (image resident) and abandoned (no tenant's function
  // still wants the image) reservations on one device.
  void reconcile_reservations_locked(DeviceState& device);
  // The accelerator an instance currently needs: its reconfiguration
  // override if one exists, else its function's registered query.
  [[nodiscard]] std::optional<std::string> required_accelerator_locked(
      const std::string& instance) const;
  // The only mutators of instance_device_ / device_instances_ (lint-enforced
  // by tools/check_api.sh): keeps the map and its inverse index in lockstep.
  void bind_instance_locked(const std::string& instance,
                            const std::string& device_id);
  void unbind_instance_locked(const std::string& instance);

  cluster::Cluster* cluster_;
  AllocationPolicy policy_;
  std::function<vt::Time()> clock_;

  mutable std::recursive_mutex mutex_;
  std::map<std::string, DeviceState> devices_;
  std::map<std::string, DeviceQuery> functions_;
  std::map<std::string, std::string> instance_device_;  // instance -> device
  // Accelerator an instance explicitly reconfigured to via
  // request_reconfiguration, overriding its function's registered query.
  // Consulted by reservation reconcile and redistribution checks; erased
  // when the instance's pod is deleted or its stale binding reaped.
  std::map<std::string, std::string> instance_accelerator_;
  // Inverse index (device -> instances) so admission-path sampling,
  // deregistration safety checks and migration sweeps never scan the whole
  // assignment map.
  std::map<std::string, std::set<std::string>> device_instances_;
  // Two-strike stale-assignment GC bookkeeping (see probe_devices()).
  std::set<std::string> stale_candidates_;
};

}  // namespace bf::registry
