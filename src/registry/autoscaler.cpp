#include "registry/autoscaler.h"

#include "common/log.h"

namespace bf::registry {

Autoscaler::Autoscaler(Registry* registry, NodeProvisioner* provisioner,
                       AutoscalerPolicy policy)
    : registry_(registry), provisioner_(provisioner), policy_(policy) {
  BF_CHECK(registry_ != nullptr);
  BF_CHECK(provisioner_ != nullptr);
  BF_CHECK(policy_.min_devices >= 1);
  BF_CHECK(policy_.max_devices >= policy_.min_devices);
}

Autoscaler::Action Autoscaler::evaluate() {
  const std::vector<DeviceRecord> devices = registry_->devices();
  if (devices.empty()) return Action::kNone;

  double total = 0.0;
  std::string idle_device;  // candidate for decommissioning
  for (const DeviceRecord& device : devices) {
    auto sample = registry_->sample_device(device.id);
    if (!sample.ok()) continue;
    total += sample.value().utilization;
    if (sample.value().connected_instances == 0 && idle_device.empty()) {
      idle_device = device.id;
    }
  }
  last_mean_utilization_ = total / static_cast<double>(devices.size());

  if (last_mean_utilization_ > policy_.scale_up_utilization) {
    ++above_streak_;
    below_streak_ = 0;
  } else if (last_mean_utilization_ < policy_.scale_down_utilization) {
    ++below_streak_;
    above_streak_ = 0;
  } else {
    above_streak_ = 0;
    below_streak_ = 0;
  }

  if (above_streak_ >= policy_.hysteresis &&
      devices.size() < policy_.max_devices) {
    above_streak_ = 0;
    auto provisioned = provisioner_->provision();
    if (!provisioned.ok()) {
      BF_LOG_WARN("autoscaler") << "provision failed: "
                                << provisioned.status().to_string();
      return Action::kNone;
    }
    ++scale_ups_;
    BF_LOG_INFO("autoscaler") << "scaled up: " << provisioned.value()
                              << " (mean util "
                              << last_mean_utilization_ << ")";
    return Action::kScaleUp;
  }

  if (below_streak_ >= policy_.hysteresis &&
      devices.size() > policy_.min_devices && !idle_device.empty()) {
    below_streak_ = 0;
    Status removed = provisioner_->decommission(idle_device);
    if (!removed.ok()) {
      BF_LOG_WARN("autoscaler") << "decommission failed: "
                                << removed.to_string();
      return Action::kNone;
    }
    ++scale_downs_;
    BF_LOG_INFO("autoscaler") << "scaled down: " << idle_device;
    return Action::kScaleDown;
  }
  return Action::kNone;
}

}  // namespace bf::registry
