// Byte containers and views shared by the OpenCL buffer layer, the wire
// format, and the shared-memory transport.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace bf {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;
using MutableByteSpan = std::span<std::uint8_t>;

inline ByteSpan as_bytes(const void* data, std::size_t size) {
  return {static_cast<const std::uint8_t*>(data), size};
}

inline MutableByteSpan as_writable_bytes(void* data, std::size_t size) {
  return {static_cast<std::uint8_t*>(data), size};
}

// Deterministic, fast content fingerprint (FNV-1a 64) used by tests and the
// data-integrity checks in the shared-memory path.
inline std::uint64_t fingerprint(ByteSpan data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::uint8_t byte : data) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

constexpr std::size_t kKiB = 1024;
constexpr std::size_t kMiB = 1024 * kKiB;
constexpr std::size_t kGiB = 1024 * kMiB;

}  // namespace bf
