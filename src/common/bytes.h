// Byte containers and views shared by the OpenCL buffer layer, the wire
// format, and the shared-memory transport.
//
// bf::Bytes is a small-buffer-optimized byte vector: payloads up to
// kInlineCapacity (64 B — varint headers, scalar kernel args, control-plane
// acks) live inside the object and never touch the heap; larger payloads
// fall back to a heap buffer with vector-style amortized growth. The class
// is API-compatible with the std::vector<std::uint8_t> it replaced for
// every operation the tree uses (spans, iteration, resize/reserve/insert,
// move semantics through stage(Bytes&&)/fetch_take), and additionally
// exposes process-wide deep-copy and heap-allocation counters that the
// hot-path discipline tests assert against (docs/PERFORMANCE.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <iterator>
#include <span>
#include <type_traits>
#include <utility>

namespace bf {

namespace detail {
// Relaxed process-wide instrumentation: totals only, never ordering.
inline std::atomic<std::uint64_t> g_bytes_deep_copies{0};
inline std::atomic<std::uint64_t> g_bytes_heap_allocs{0};
}  // namespace detail

class Bytes {
 public:
  using value_type = std::uint8_t;
  using size_type = std::size_t;
  using iterator = std::uint8_t*;
  using const_iterator = const std::uint8_t*;
  using reference = std::uint8_t&;
  using const_reference = const std::uint8_t&;

  // Small-buffer threshold. 64 B covers the control-plane frames that
  // dominate the hot path (encoded acks/completions, varint headers, scalar
  // kernel args) while keeping the object two cache lines; measured larger
  // payloads (pixel/matrix data) go to the heap anyway, so raising it only
  // bloats every Frame/Operation. See docs/PERFORMANCE.md.
  static constexpr std::size_t kInlineCapacity = 64;

  Bytes() noexcept : data_(inline_) {}

  explicit Bytes(std::size_t count) : data_(inline_) {
    resize(count);  // zero-filled, matching std::vector value-init
  }

  Bytes(std::size_t count, std::uint8_t fill) : data_(inline_) {
    resize(count, fill);
  }

  // Excluding integral It keeps Bytes(n, value) with two ints on the
  // count/fill constructor, exactly as std::vector's constrained overload
  // set resolves it.
  template <typename It, typename = std::enable_if_t<!std::is_integral_v<It>>>
  Bytes(It first, It last) : data_(inline_) {
    assign(first, last);
  }

  Bytes(std::initializer_list<std::uint8_t> init) : data_(inline_) {
    assign(init.begin(), init.end());
  }

  Bytes(const Bytes& other) : data_(inline_) {
    ensure_capacity(other.size_);
    std::memcpy(data_, other.data_, other.size_);
    size_ = other.size_;
    if (size_ > 0)
      detail::g_bytes_deep_copies.fetch_add(1, std::memory_order_relaxed);
  }

  Bytes(Bytes&& other) noexcept : data_(inline_) { steal(other); }

  Bytes& operator=(const Bytes& other) {
    if (this == &other) return *this;
    size_ = 0;
    ensure_capacity(other.size_);
    std::memcpy(data_, other.data_, other.size_);
    size_ = other.size_;
    if (size_ > 0)
      detail::g_bytes_deep_copies.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }

  Bytes& operator=(Bytes&& other) noexcept {
    if (this == &other) return *this;
    release_heap();
    steal(other);
    return *this;
  }

  Bytes& operator=(std::initializer_list<std::uint8_t> init) {
    assign(init.begin(), init.end());
    return *this;
  }

  ~Bytes() { release_heap(); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  // True when the current buffer is heap-backed (spare-cache recycling only
  // keeps heap buffers: recycling an inline one saves nothing).
  [[nodiscard]] bool is_heap() const noexcept { return data_ != inline_; }

  [[nodiscard]] std::uint8_t* data() noexcept { return data_; }
  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }
  [[nodiscard]] iterator begin() noexcept { return data_; }
  [[nodiscard]] const_iterator begin() const noexcept { return data_; }
  [[nodiscard]] const_iterator cbegin() const noexcept { return data_; }
  [[nodiscard]] iterator end() noexcept { return data_ + size_; }
  [[nodiscard]] const_iterator end() const noexcept { return data_ + size_; }
  [[nodiscard]] const_iterator cend() const noexcept { return data_ + size_; }

  std::uint8_t& operator[](std::size_t index) noexcept { return data_[index]; }
  const std::uint8_t& operator[](std::size_t index) const noexcept {
    return data_[index];
  }
  [[nodiscard]] std::uint8_t& front() noexcept { return data_[0]; }
  [[nodiscard]] const std::uint8_t& front() const noexcept { return data_[0]; }
  [[nodiscard]] std::uint8_t& back() noexcept { return data_[size_ - 1]; }
  [[nodiscard]] const std::uint8_t& back() const noexcept {
    return data_[size_ - 1];
  }

  void reserve(std::size_t capacity) { ensure_capacity(capacity); }

  void resize(std::size_t count) {
    if (count > size_) {
      ensure_capacity(count);
      std::memset(data_ + size_, 0, count - size_);
    }
    size_ = count;
  }

  void resize(std::size_t count, std::uint8_t fill) {
    if (count > size_) {
      ensure_capacity(count);
      std::memset(data_ + size_, fill, count - size_);
    }
    size_ = count;
  }

  // Grows without zero-filling the new tail. Only for staging buffers whose
  // full range is overwritten immediately (wire decode, device reads into
  // scratch) — reading the uninitialized tail is undefined.
  void resize_for_overwrite(std::size_t count) {
    ensure_capacity(count);
    size_ = count;
  }

  void clear() noexcept { size_ = 0; }

  void push_back(std::uint8_t value) {
    if (size_ == cap_) grow_to(size_ + 1);
    data_[size_++] = value;
  }

  void pop_back() noexcept { --size_; }

  template <typename It>
  void assign(It first, It last) {
    size_ = 0;
    const auto count =
        static_cast<std::size_t>(std::distance(first, last));
    ensure_capacity(count);
    std::copy(first, last, data_);
    size_ = count;
  }

  void assign(std::size_t count, std::uint8_t fill) {
    size_ = 0;
    resize(count, fill);
  }

  // Range insert (the wire Writer appends at end(); arbitrary positions are
  // supported for completeness).
  template <typename It>
  iterator insert(const_iterator pos, It first, It last) {
    const std::size_t index = static_cast<std::size_t>(pos - data_);
    const auto count =
        static_cast<std::size_t>(std::distance(first, last));
    ensure_capacity(size_ + count);
    std::memmove(data_ + index + count, data_ + index, size_ - index);
    std::copy(first, last, data_ + index);
    size_ += count;
    return data_ + index;
  }

  void swap(Bytes& other) noexcept {
    Bytes tmp(std::move(other));
    other = std::move(*this);
    *this = std::move(tmp);
  }

  friend bool operator==(const Bytes& a, const Bytes& b) noexcept {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }

  // ---- hot-path instrumentation (monotonic; tests diff snapshots) ----------
  [[nodiscard]] static std::uint64_t deep_copy_count() {
    return detail::g_bytes_deep_copies.load(std::memory_order_relaxed);
  }
  [[nodiscard]] static std::uint64_t heap_alloc_count() {
    return detail::g_bytes_heap_allocs.load(std::memory_order_relaxed);
  }

 private:
  void ensure_capacity(std::size_t need) {
    if (need > cap_) grow_to(need);
  }

  void grow_to(std::size_t need) {
    std::size_t next = cap_ * 2;
    if (next < need) next = need;
    auto* heap = new std::uint8_t[next];
    detail::g_bytes_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    std::memcpy(heap, data_, size_);
    release_heap();
    data_ = heap;
    cap_ = next;
  }

  void release_heap() noexcept {
    if (data_ != inline_) delete[] data_;
  }

  // Takes other's contents; other is left valid and empty (inline storage).
  void steal(Bytes& other) noexcept {
    if (other.data_ != other.inline_) {
      data_ = other.data_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.data_ = other.inline_;
      other.cap_ = kInlineCapacity;
      other.size_ = 0;
    } else {
      std::memcpy(inline_, other.inline_, other.size_);
      data_ = inline_;
      cap_ = kInlineCapacity;
      size_ = other.size_;
      other.size_ = 0;
    }
  }

  std::size_t size_ = 0;
  std::size_t cap_ = kInlineCapacity;
  std::uint8_t* data_;
  alignas(16) std::uint8_t inline_[kInlineCapacity];
};

inline void swap(Bytes& a, Bytes& b) noexcept { a.swap(b); }

using ByteSpan = std::span<const std::uint8_t>;
using MutableByteSpan = std::span<std::uint8_t>;

inline ByteSpan as_bytes(const void* data, std::size_t size) {
  return {static_cast<const std::uint8_t*>(data), size};
}

inline MutableByteSpan as_writable_bytes(void* data, std::size_t size) {
  return {static_cast<std::uint8_t*>(data), size};
}

// Deterministic, fast content fingerprint used by tests and the
// data-integrity checks in the shared-memory path. FNV-1a folded 8 bytes at
// a time (one xor/multiply per word instead of per byte) with the classic
// byte-at-a-time tail — callers rely only on equality of fingerprints, not
// on matching any external FNV vector, so the wider fold is free speedup.
inline std::uint64_t fingerprint(ByteSpan data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const std::uint8_t* ptr = data.data();
  std::size_t size = data.size();
  while (size >= 8) {
    std::uint64_t word = 0;
    std::memcpy(&word, ptr, 8);
    hash = (hash ^ word) * 0x100000001b3ULL;
    ptr += 8;
    size -= 8;
  }
  while (size > 0) {
    hash = (hash ^ *ptr) * 0x100000001b3ULL;
    ++ptr;
    --size;
  }
  return hash;
}

constexpr std::size_t kKiB = 1024;
constexpr std::size_t kMiB = 1024 * kKiB;
constexpr std::size_t kGiB = 1024 * kMiB;

}  // namespace bf
