// Byte containers and views shared by the OpenCL buffer layer, the wire
// format, and the shared-memory transport.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace bf {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;
using MutableByteSpan = std::span<std::uint8_t>;

inline ByteSpan as_bytes(const void* data, std::size_t size) {
  return {static_cast<const std::uint8_t*>(data), size};
}

inline MutableByteSpan as_writable_bytes(void* data, std::size_t size) {
  return {static_cast<std::uint8_t*>(data), size};
}

// Deterministic, fast content fingerprint used by tests and the
// data-integrity checks in the shared-memory path. FNV-1a folded 8 bytes at
// a time (one xor/multiply per word instead of per byte) with the classic
// byte-at-a-time tail — callers rely only on equality of fingerprints, not
// on matching any external FNV vector, so the wider fold is free speedup.
inline std::uint64_t fingerprint(ByteSpan data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const std::uint8_t* ptr = data.data();
  std::size_t size = data.size();
  while (size >= 8) {
    std::uint64_t word = 0;
    std::memcpy(&word, ptr, 8);
    hash = (hash ^ word) * 0x100000001b3ULL;
    ptr += 8;
    size -= 8;
  }
  while (size > 0) {
    hash = (hash ^ *ptr) * 0x100000001b3ULL;
    ++ptr;
    --size;
  }
  return hash;
}

constexpr std::size_t kKiB = 1024;
constexpr std::size_t kMiB = 1024 * kKiB;
constexpr std::size_t kGiB = 1024 * kMiB;

}  // namespace bf
