#include "common/parallel.h"

namespace bf {

WorkerPool::WorkerPool(unsigned threads)
    : worker_count_(threads == 0 ? 0 : threads - 1) {
  threads_.reserve(worker_count_);
  for (unsigned i = 0; i < worker_count_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void WorkerPool::parallel_for(std::size_t tasks,
                              const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  if (worker_count_ == 0 || tasks == 1) {
    for (std::size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  std::lock_guard job_lock(job_mutex_);
  std::uint64_t gen = 0;
  {
    std::lock_guard lock(mutex_);
    job_ = &fn;
    job_tasks_ = tasks;
    next_task_ = 0;
    pending_ = tasks;
    gen = ++generation_;
  }
  work_cv_.notify_all();
  std::unique_lock lock(mutex_);
  run_tasks(lock, gen);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
  job_ = nullptr;
}

void WorkerPool::run_tasks(std::unique_lock<std::mutex>& lock,
                           std::uint64_t gen) {
  while (generation_ == gen && job_ != nullptr && next_task_ < job_tasks_) {
    const std::size_t index = next_task_++;
    const auto* job = job_;
    lock.unlock();
    (*job)(index);
    lock.lock();
    // This task was part of pending_, so the owning parallel_for is still
    // waiting and the generation cannot have moved on: the decrement always
    // belongs to `gen`.
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

void WorkerPool::worker_loop() {
  std::unique_lock lock(mutex_);
  std::uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || (job_ != nullptr && generation_ != seen);
    });
    if (shutdown_) return;
    seen = generation_;
    run_tasks(lock, seen);
  }
}

WorkerPool& WorkerPool::shared() {
  // Leaked on purpose: boards may launch kernels during static teardown.
  static auto* pool = new WorkerPool(std::thread::hardware_concurrency());
  return *pool;
}

}  // namespace bf
