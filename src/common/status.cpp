#include "common/status.h"

namespace bf {

std::string_view to_string(ErrorCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out{bf::to_string(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

bool is_retryable(ErrorCode code) {
  return code == ErrorCode::kUnavailable || code == ErrorCode::kDeadlineExceeded;
}

Status Cancelled(std::string msg) {
  return {StatusCode::kCancelled, std::move(msg)};
}
Status InvalidArgument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
Status PermissionDenied(std::string msg) {
  return {StatusCode::kPermissionDenied, std::move(msg)};
}
Status OutOfRange(std::string msg) {
  return {StatusCode::kOutOfRange, std::move(msg)};
}
Status NotFound(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
Status AlreadyExists(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
Status FailedPrecondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
Status Internal(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}
Status Unavailable(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
Status ResourceExhausted(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}
Status Unimplemented(std::string msg) {
  return {StatusCode::kUnimplemented, std::move(msg)};
}
Status Aborted(std::string msg) {
  return {StatusCode::kAborted, std::move(msg)};
}
Status DeadlineExceeded(std::string msg) {
  return {StatusCode::kDeadlineExceeded, std::move(msg)};
}

void contract_failure(const char* expr, const char* file, int line) {
  throw ContractViolation(std::string("BF_CHECK failed: ") + expr + " at " +
                          file + ":" + std::to_string(line));
}

}  // namespace bf
