// Status: error propagation across service boundaries.
//
// BlastFunction mirrors gRPC's model: control-plane and data-plane RPCs
// return a Status (code + message) rather than throwing, because the failure
// of a remote call is an expected outcome, not a programming error.
// Programming/contract errors inside a process still throw (see BF_CHECK).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace bf {

// The single error-code vocabulary used at every cross-module service
// boundary (net, remote, devmgr, registry, faas). The values follow gRPC's
// canonical code set so the in-process fabric, the StatusMsg wire form and
// the bfcl C API (see ocl/capi.h to_bfcl) all speak the same language.
enum class ErrorCode {
  kOk = 0,
  kCancelled,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kResourceExhausted,
  kFailedPrecondition,
  kAborted,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
};

// Historical name, kept as an alias so pre-ErrorCode code compiles
// unchanged. New code should spell it ErrorCode.
using StatusCode = ErrorCode;

std::string_view to_string(ErrorCode code);

// True for codes that indicate a transient condition where retrying an
// *idempotent* call may succeed (connection torn down, reply lost past its
// deadline). Permanent errors (InvalidArgument, NotFound, ...) never are.
[[nodiscard]] bool is_retryable(ErrorCode code);

class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  // Human readable "CODE: message" form used in logs and test failures.
  [[nodiscard]] std::string to_string() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

Status Cancelled(std::string msg);
Status InvalidArgument(std::string msg);
Status NotFound(std::string msg);
Status PermissionDenied(std::string msg);
Status OutOfRange(std::string msg);
Status AlreadyExists(std::string msg);
Status FailedPrecondition(std::string msg);
Status Internal(std::string msg);
Status Unavailable(std::string msg);
Status ResourceExhausted(std::string msg);
Status Unimplemented(std::string msg);
Status Aborted(std::string msg);
Status DeadlineExceeded(std::string msg);

// Thrown by BF_CHECK on contract violations and by Result::value() on
// access-without-check. Indicates a bug in the caller, not an expected error.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error(what) {}
};

[[noreturn]] void contract_failure(const char* expr, const char* file,
                                   int line);

#define BF_CHECK(expr)                                   \
  do {                                                   \
    if (!(expr)) {                                       \
      ::bf::contract_failure(#expr, __FILE__, __LINE__); \
    }                                                    \
  } while (false)

// Result<T>: a value or a Status. Used on service-boundary functions that
// produce a value.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status(StatusCode::kInternal,
                       "Result constructed from OK status without a value");
    }
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  T& value() & {
    require_ok();
    return value_;
  }
  const T& value() const& {
    require_ok();
    return value_;
  }
  T&& value() && {
    require_ok();
    return std::move(value_);
  }

  T value_or(T fallback) const {
    return ok() ? value_ : std::move(fallback);
  }

 private:
  void require_ok() const {
    if (!status_.ok()) {
      throw ContractViolation("Result::value() on error: " +
                              status_.to_string());
    }
  }

  T value_{};
  Status status_;
};

}  // namespace bf
