// A small shared worker pool for data-parallel host work (the functional
// kernels in sim/). This parallelism is *wall-clock only*: it never touches
// virtual time, and callers are required to partition work so that every
// output element is computed by exactly one task with a fixed per-element
// operation order — results must be byte-exact no matter how many workers
// the pool has (see docs/PERFORMANCE.md for the determinism contract).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bf {

class WorkerPool {
 public:
  // A pool of `threads` total lanes: the calling thread participates in
  // every parallel_for, so `threads == 1` means no extra threads and fully
  // inline execution. `threads == 0` is treated as 1.
  explicit WorkerPool(unsigned threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Total lanes (workers + the participating caller).
  [[nodiscard]] unsigned size() const { return worker_count_ + 1; }

  // Runs fn(0) .. fn(tasks - 1), each exactly once, and returns when all
  // have finished. Task-to-thread assignment is dynamic (first come, first
  // served) and NOT deterministic — fn must write only task-private output.
  // Concurrent parallel_for calls from different threads are serialized.
  void parallel_for(std::size_t tasks,
                    const std::function<void(std::size_t)>& fn);

  // Process-wide pool sized to the hardware, created on first use and never
  // destroyed (kernel launches may still run during static teardown).
  static WorkerPool& shared();

 private:
  void worker_loop();
  // Claims and runs tasks of generation `gen` until none remain. `lock`
  // must hold mutex_ on entry; it is released around each fn call. The
  // generation check keeps a straggler from claiming into a later job
  // whose counter was reset while it was finishing its last task.
  void run_tasks(std::unique_lock<std::mutex>& lock, std::uint64_t gen);

  unsigned worker_count_;
  std::vector<std::thread> threads_;

  // Serializes whole parallel_for invocations (e.g. two boards sharing the
  // pool); mutex_ protects the per-job fields below. Tasks are claimed
  // under mutex_ — callers pass at most a handful of coarse chunks, so the
  // per-claim lock is noise next to the chunk work.
  std::mutex job_mutex_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_tasks_ = 0;
  std::size_t next_task_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace bf
