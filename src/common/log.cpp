#include "common/log.h"

#include <cstdio>

namespace bf {
namespace {

std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view msg) {
  if (!enabled(level)) return;
  std::lock_guard lock(mutex_);
  std::fprintf(stderr, "[%.*s] %-12.*s %.*s\n",
               static_cast<int>(level_name(level).size()),
               level_name(level).data(), static_cast<int>(component.size()),
               component.data(), static_cast<int>(msg.size()), msg.data());
}

}  // namespace bf
