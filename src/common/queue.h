// Thread-safe queues used throughout the stack: the Device Manager's central
// task queue, the remote library's completion queue, and the network fabric's
// delivery queues.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace bf {

// Non-blocking pop outcome, shared by BlockingQueue and SpscQueue
// (common/spsc_ring.h). `closed` distinguishes "momentarily empty" from
// "closed and drained" so pollers can stop instead of spinning forever on
// a dead queue.
template <typename T>
struct TryPopResult {
  std::optional<T> item;
  bool closed = false;  // true only when the queue is closed AND drained

  [[nodiscard]] bool has_item() const { return item.has_value(); }
};

// Unbounded MPMC blocking queue with shutdown semantics: after close(),
// pop() drains remaining items then returns nullopt.
template <typename T>
class BlockingQueue {
 public:
  // Returns false if the queue is closed (item is dropped).
  bool push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking pop; closed-aware (see TryPopResult).
  TryPopResult<T> try_pop() {
    std::lock_guard lock(mutex_);
    if (items_.empty()) return {std::nullopt, closed_};
    TryPopResult<T> result{std::move(items_.front()), false};
    items_.pop_front();
    return result;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] bool empty() const {
    std::lock_guard lock(mutex_);
    return items_.empty();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace bf
