// Lock-free single-producer / single-consumer ring plus the blocking,
// close-aware queue built on it that the data plane's two single-consumer
// hot queues use (the remote library's completion pump and the dispatcher→
// client delivery path). Replaces BlockingQueue there: no mutex, no deque
// node allocation per item, and a futex wake only when the consumer is
// actually asleep. BlockingQueue (common/queue.h) remains the tool for
// genuinely multi-consumer queues.
//
// Contracts (docs/PERFORMANCE.md "hot-path memory discipline"):
//   SpscRing      — exactly one pushing thread and one popping thread, ever.
//   SpscQueue     — exactly one popping thread; multiple producers are
//                   tolerated via an internal producer spinlock (the hot
//                   case is a single producer, so the lock is uncontended
//                   and never syscalls). Unbounded: when the ring is full,
//                   items overflow into a mutex-guarded deque; FIFO order
//                   is preserved because producers route through the
//                   overflow until the consumer has drained it.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/queue.h"

namespace bf {

// Fixed-capacity lock-free SPSC ring. Capacity must be a power of two.
// Indices are monotonically increasing; head_ is owned by the consumer,
// tail_ by the producer, each side caching the other's index to avoid
// cache-line ping-pong on every operation.
template <typename T, std::size_t Capacity = 256>
class SpscRing {
  static_assert(Capacity >= 2 && (Capacity & (Capacity - 1)) == 0,
                "Capacity must be a power of two");

 public:
  // Producer side. Returns false when the ring is full.
  bool try_push(T&& item) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= Capacity) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= Capacity) return false;
    }
    slots_[tail & (Capacity - 1)] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns nullopt when the ring is empty.
  std::optional<T> try_pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return std::nullopt;
    }
    std::optional<T> item(std::move(slots_[head & (Capacity - 1)]));
    head_.store(head + 1, std::memory_order_release);
    return item;
  }

  // Approximate when racing the other side; exact when quiescent.
  [[nodiscard]] std::size_t size() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

 private:
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer-owned
  alignas(64) std::size_t cached_tail_ = 0;       // consumer-local
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer-owned
  alignas(64) std::size_t cached_head_ = 0;       // producer-local
  alignas(64) T slots_[Capacity];
};

// Unbounded blocking queue with shutdown semantics, specialized for a
// single consumer: same interface shape as BlockingQueue (push / pop /
// try_pop / close) but the common path is a lock-free ring push + a
// sequence bump, and pop spins through the ring without ever taking a
// mutex. The consumer blocks on a C++20 atomic wait; producers only
// notify when `waiting_` says the consumer is actually parked.
template <typename T, std::size_t RingCapacity = 256>
class SpscQueue {
 public:
  // Returns false if the queue is closed (item is dropped).
  bool push(T item) {
    ProducerLock lock(producer_lock_);
    if (closed_.load(std::memory_order_acquire)) return false;
    push_locked(std::move(item));
    bump_and_wake();
    return true;
  }

  // Pushes a batch with a single consumer wake at the end — the Device
  // Manager's batched completion notify. Returns false (dropping the
  // remainder) if the queue is closed.
  template <typename It>
  bool push_batch(It first, It last) {
    ProducerLock lock(producer_lock_);
    if (closed_.load(std::memory_order_acquire)) return false;
    for (; first != last; ++first) push_locked(std::move(*first));
    bump_and_wake();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    for (;;) {
      const std::uint32_t seq = seq_.load(std::memory_order_acquire);
      if (auto item = consume()) return item;
      if (closed_.load(std::memory_order_acquire)) {
        // Drain race: a producer may have pushed between consume() and the
        // closed check.
        if (auto item = consume()) return item;
        return std::nullopt;
      }
      waiting_.store(true, std::memory_order_seq_cst);
      // Recheck after publishing waiting_: a push that missed the flag
      // bumped seq_ first, so wait() returns immediately.
      if (auto item = consume()) {
        waiting_.store(false, std::memory_order_relaxed);
        return item;
      }
      seq_.wait(seq, std::memory_order_acquire);
      waiting_.store(false, std::memory_order_relaxed);
    }
  }

  // Non-blocking pop; closed-aware so pollers can stop when the queue is
  // closed and drained instead of spinning forever.
  TryPopResult<T> try_pop() {
    if (auto item = consume()) return {std::move(item), false};
    if (closed_.load(std::memory_order_acquire)) {
      if (auto item = consume()) return {std::move(item), false};
      return {std::nullopt, true};
    }
    return {std::nullopt, false};
  }

  void close() {
    {
      ProducerLock lock(producer_lock_);
      closed_.store(true, std::memory_order_release);
    }
    seq_.fetch_add(1, std::memory_order_seq_cst);
    seq_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }

  // Approximate while producers race; exact when quiescent.
  [[nodiscard]] std::size_t size() const {
    std::size_t overflowed = 0;
    if (overflow_active_.load(std::memory_order_acquire)) {
      std::lock_guard lock(overflow_mutex_);
      overflowed = overflow_.size();
    }
    return ring_.size() + overflowed;
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  struct ProducerLock {
    explicit ProducerLock(std::atomic_flag& flag) : flag_(flag) {
      while (flag_.test_and_set(std::memory_order_acquire)) {
        flag_.wait(true, std::memory_order_relaxed);
      }
    }
    ~ProducerLock() {
      flag_.clear(std::memory_order_release);
      flag_.notify_one();
    }
    std::atomic_flag& flag_;
  };

  // Producer-lock held. Routes through the overflow deque while it is
  // non-empty so FIFO order survives ring-full episodes.
  void push_locked(T&& item) {
    if (overflow_active_.load(std::memory_order_acquire)) {
      std::lock_guard lock(overflow_mutex_);
      if (!overflow_.empty()) {
        overflow_.push_back(std::move(item));
        return;
      }
      // Consumer drained the overflow since we checked; fall through to the
      // ring (which it also drained, so this cannot fail... unless other
      // pushes refilled it — handle that too).
      if (ring_.try_push(std::move(item))) return;
      overflow_.push_back(std::move(item));
      overflow_active_.store(true, std::memory_order_release);
      return;
    }
    if (ring_.try_push(std::move(item))) return;
    std::lock_guard lock(overflow_mutex_);
    overflow_.push_back(std::move(item));
    overflow_active_.store(true, std::memory_order_release);
  }

  void bump_and_wake() {
    seq_.fetch_add(1, std::memory_order_seq_cst);
    if (waiting_.load(std::memory_order_seq_cst)) seq_.notify_one();
  }

  // Consumer side: ring first (older items), then the overflow.
  std::optional<T> consume() {
    if (auto item = ring_.try_pop()) return item;
    if (overflow_active_.load(std::memory_order_acquire)) {
      std::lock_guard lock(overflow_mutex_);
      if (!overflow_.empty()) {
        std::optional<T> item(std::move(overflow_.front()));
        overflow_.pop_front();
        if (overflow_.empty()) {
          overflow_active_.store(false, std::memory_order_release);
        }
        return item;
      }
      overflow_active_.store(false, std::memory_order_release);
    }
    return std::nullopt;
  }

  SpscRing<T, RingCapacity> ring_;
  std::atomic_flag producer_lock_ = ATOMIC_FLAG_INIT;
  std::atomic<bool> closed_{false};
  std::atomic<std::uint32_t> seq_{0};
  std::atomic<bool> waiting_{false};
  mutable std::mutex overflow_mutex_;
  std::deque<T> overflow_;
  std::atomic<bool> overflow_active_{false};
};

}  // namespace bf
