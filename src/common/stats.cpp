#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace bf {

void SampleStats::record(double value) {
  samples_.push_back(value);
  sum_ += value;
  sorted_valid_ = false;
}

double SampleStats::mean() const {
  BF_CHECK(!samples_.empty());
  return sum_ / static_cast<double>(samples_.size());
}

double SampleStats::min() const {
  BF_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::max() const {
  BF_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleStats::percentile(double q) const {
  BF_CHECK(!samples_.empty());
  BF_CHECK(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_.front();
  const double rank = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double SampleStats::stddev() const {
  BF_CHECK(!samples_.empty());
  const double m = mean();
  double acc = 0.0;
  for (double sample : samples_) {
    acc += (sample - m) * (sample - m);
  }
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

void SampleStats::merge(const SampleStats& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
  sorted_valid_ = false;
}

void SampleStats::clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
  sum_ = 0.0;
}

void SampleStats::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

}  // namespace bf
