// Slab/arena allocation for the per-request hot path (ROADMAP item 4).
//
// Three tools, all recycling storage instead of round-tripping through the
// global heap on every request (docs/PERFORMANCE.md "hot-path memory
// discipline"):
//
//   bf::arena::acquire / recycle
//     Process-wide pooled free lists of heap-backed Bytes buffers keyed by
//     power-of-two size class. Producers acquire an empty buffer with at
//     least the requested capacity (wire Writers, frame payload staging);
//     the consumer that retires a frame recycles its payload. Buffers that
//     fit in the Bytes inline storage are never pooled — recycling them
//     saves nothing.
//
//   bf::arena::Pool<T>
//     A typed free list for containers whose *capacity* is the expensive
//     part (e.g. std::vector<devmgr::Operation>): acquire() hands back an
//     empty container that keeps its previous heap capacity, recycle()
//     clears and stores it. Spinlocked: acquire/recycle are a few
//     instructions and never syscall.
//
//   bf::arena::Slab<T, ChunkSize>
//     Append-only chunked storage (trace span records): push() allocates a
//     fixed-size chunk every ChunkSize elements and never moves existing
//     elements, so recording N spans costs N/ChunkSize allocations instead
//     of log2(N) reallocations that move every string in the vector.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/bytes.h"

namespace bf::arena {

namespace detail {

// Size classes: pow2 buckets from 128 B (first heap-worthy size above the
// Bytes inline capacity) to 8 MiB (a 1920x1080 RGBA frame). Larger buffers
// bypass the pool.
inline constexpr std::size_t kMinClassBytes = 128;
inline constexpr std::size_t kMaxClassBytes = 8 * kMiB;
inline constexpr std::size_t kClassCount = 17;  // 2^7 .. 2^23
inline constexpr std::size_t kBuffersPerClass = 8;

inline constexpr std::size_t class_index(std::size_t bytes) {
  const std::size_t rounded =
      bytes < kMinClassBytes ? kMinClassBytes : std::bit_ceil(bytes);
  return static_cast<std::size_t>(std::countr_zero(rounded)) - 7;
}

struct SpinLock {
  void lock() {
    while (flag.test_and_set(std::memory_order_acquire)) {
      flag.wait(true, std::memory_order_relaxed);
    }
  }
  void unlock() {
    flag.clear(std::memory_order_release);
    flag.notify_one();
  }
  std::atomic_flag flag = ATOMIC_FLAG_INIT;
};

struct SpinGuard {
  explicit SpinGuard(SpinLock& lock) : lock_(lock) { lock_.lock(); }
  ~SpinGuard() { lock_.unlock(); }
  SpinLock& lock_;
};

struct SizeClass {
  SpinLock lock;
  std::vector<Bytes> buffers;  // all heap-backed, capacity in class range
};

struct ByteArena {
  std::array<SizeClass, kClassCount> classes;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> recycled{0};
  std::atomic<std::uint64_t> dropped{0};
};

inline ByteArena& byte_arena() {
  static ByteArena arena;
  return arena;
}

}  // namespace detail

struct Stats {
  std::uint64_t hits = 0;      // acquire served from a free list
  std::uint64_t misses = 0;    // acquire fell through to the heap
  std::uint64_t recycled = 0;  // buffers returned to a free list
  std::uint64_t dropped = 0;   // buffers freed (class full / too small)
};

[[nodiscard]] inline Stats stats() {
  auto& arena = detail::byte_arena();
  return {arena.hits.load(std::memory_order_relaxed),
          arena.misses.load(std::memory_order_relaxed),
          arena.recycled.load(std::memory_order_relaxed),
          arena.dropped.load(std::memory_order_relaxed)};
}

// Returns an *empty* Bytes with capacity() >= `capacity`, reusing a pooled
// buffer of the matching size class when one is available. Callers append /
// resize as usual; pairing every retired payload with recycle() keeps the
// steady state allocation-free.
[[nodiscard]] inline Bytes acquire(std::size_t capacity) {
  auto& arena = detail::byte_arena();
  if (capacity > Bytes::kInlineCapacity && capacity <= detail::kMaxClassBytes) {
    const std::size_t index = detail::class_index(capacity);
    auto& size_class = arena.classes[index];
    detail::SpinGuard guard(size_class.lock);
    if (!size_class.buffers.empty()) {
      Bytes buffer = std::move(size_class.buffers.back());
      size_class.buffers.pop_back();
      arena.hits.fetch_add(1, std::memory_order_relaxed);
      return buffer;
    }
  }
  arena.misses.fetch_add(1, std::memory_order_relaxed);
  Bytes buffer;
  if (capacity > Bytes::kInlineCapacity && capacity <= detail::kMaxClassBytes) {
    // Reserve the full class size so the capacity is a power of two:
    // recycle() then files this buffer under the same class acquire() will
    // search for a same-sized request. An exact-size reservation would
    // recycle into the class *below* (capacity guarantee) and miss forever.
    buffer.reserve(std::size_t{1} << (detail::class_index(capacity) + 7));
  } else {
    buffer.reserve(capacity);
  }
  return buffer;
}

// Returns a retired buffer's heap storage to its size-class free list.
// Inline-storage buffers, oversized buffers and full classes drop to the
// heap as before — recycle is always safe to call.
inline void recycle(Bytes&& buffer) {
  auto& arena = detail::byte_arena();
  const std::size_t capacity = buffer.capacity();
  if (!buffer.is_heap() || capacity < detail::kMinClassBytes ||
      capacity > detail::kMaxClassBytes) {
    arena.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // File under the largest class the buffer fully covers, so acquire()'s
  // capacity guarantee holds.
  const std::size_t index = detail::class_index(capacity) -
                            (std::has_single_bit(capacity) ? 0 : 1);
  buffer.clear();
  auto& size_class = arena.classes[index];
  detail::SpinGuard guard(size_class.lock);
  if (size_class.buffers.size() >= detail::kBuffersPerClass) {
    arena.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  size_class.buffers.push_back(std::move(buffer));
  arena.recycled.fetch_add(1, std::memory_order_relaxed);
}

// Typed container free list (see file comment). T must be default
// constructible and have clear()/capacity-preserving semantics
// (std::vector, Bytes).
template <typename T>
class Pool {
 public:
  explicit Pool(std::size_t max_entries = 16) : max_entries_(max_entries) {}

  [[nodiscard]] T acquire() {
    detail::SpinGuard guard(lock_);
    if (entries_.empty()) return T{};
    T entry = std::move(entries_.back());
    entries_.pop_back();
    return entry;
  }

  void recycle(T&& entry) {
    entry.clear();
    detail::SpinGuard guard(lock_);
    if (entries_.size() >= max_entries_) return;  // drop to the heap
    entries_.push_back(std::move(entry));
  }

  [[nodiscard]] std::size_t size() const {
    detail::SpinGuard guard(lock_);
    return entries_.size();
  }

 private:
  mutable detail::SpinLock lock_;
  std::vector<T> entries_;
  std::size_t max_entries_;
};

// Append-only chunked storage: stable addresses, O(1) amortized push with
// one allocation per ChunkSize elements, forward iteration + operator[].
template <typename T, std::size_t ChunkSize = 256>
class Slab {
 public:
  T& push(T value) {
    if (size_ == chunks_.size() * ChunkSize) {
      chunks_.push_back(std::make_unique<Chunk>());
    }
    T& slot = (*chunks_[size_ / ChunkSize])[size_ % ChunkSize];
    slot = std::move(value);
    ++size_;
    return slot;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  T& operator[](std::size_t index) {
    return (*chunks_[index / ChunkSize])[index % ChunkSize];
  }
  const T& operator[](std::size_t index) const {
    return (*chunks_[index / ChunkSize])[index % ChunkSize];
  }

  void clear() {
    chunks_.clear();
    size_ = 0;
  }

 private:
  using Chunk = std::array<T, ChunkSize>;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t size_ = 0;
};

}  // namespace bf::arena
