// Per-call failure-handling options for control-plane calls.
//
// BlastFunction's control plane is an in-process gRPC analogue running on
// virtual time; like gRPC, every unary call can carry a deadline and a retry
// policy. Both are expressed in *modeled* time so recovery behaviour is
// deterministic: a timed-out call completes with DEADLINE_EXCEEDED at a
// VT stamp that is a pure function of the modeled state, and backoff between
// retry attempts is charged to the caller's virtual clock with seeded jitter.
//
// Defaults are zero-cost: no deadline, a single attempt, no extra VT charged
// anywhere — a fabric with default CallOptions behaves bit-identically to
// one that predates this header.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "vt/time.h"

namespace bf {

// Capped exponential backoff with seeded jitter for idempotent retries.
// attempt N (0-based) sleeps base = initial_backoff * multiplier^N, capped
// at max_backoff, then scaled by a jitter factor drawn uniformly from
// [1 - jitter, 1 + jitter) out of a deterministic per-policy RNG stream.
struct RetryPolicy {
  unsigned max_attempts = 1;  // total tries, including the first (1 = none)
  vt::Duration initial_backoff = vt::Duration::millis(1);
  double multiplier = 2.0;
  vt::Duration max_backoff = vt::Duration::millis(50);
  double jitter = 0.25;          // +/- fraction of the base delay
  std::uint64_t jitter_seed = 0;  // RNG stream id; same seed => same delays
};

struct CallOptions {
  // Relative deadline: each call (each *attempt*, at the net layer) must
  // complete within `timeout` of modeled time from when it starts. Zero
  // means no deadline (the pre-CallOptions blocking behaviour).
  vt::Duration timeout{};

  RetryPolicy retry;

  // Real-time escape hatch for a genuinely wedged server (crashed worker,
  // reply dropped on the wire): a call with a finite deadline that has seen
  // no reply for this much *wall* time abandons the wait and completes with
  // DEADLINE_EXCEEDED at the modeled deadline. Mirrors vt::Gate's
  // stall_grace philosophy — the modeled outcome stays deterministic; only
  // how long we physically wait for it is wall-clock. Keep it generous: a
  // slow-but-alive server that exceeds the grace would surface a timeout a
  // deterministic replay might not.
  std::chrono::milliseconds wedge_grace{1000};

  [[nodiscard]] bool has_timeout() const { return timeout.ns() > 0; }

  // The absolute modeled deadline for a call starting at `now`.
  [[nodiscard]] vt::Time deadline_from(vt::Time now) const {
    return has_timeout() ? now + timeout : vt::Time::infinite();
  }
};

// Stateful delay sequence for one call's retry loop. Deterministic: the
// delays depend only on the policy (including jitter_seed), never on wall
// time or cross-thread interleaving.
class Backoff {
 public:
  explicit Backoff(const RetryPolicy& policy)
      : policy_(policy), rng_(policy.jitter_seed) {}

  // Delay to charge before the next attempt; advances the sequence.
  [[nodiscard]] vt::Duration next() {
    double base = static_cast<double>(policy_.initial_backoff.ns());
    for (unsigned i = 0; i < attempt_; ++i) {
      base *= policy_.multiplier;
    }
    base = std::min(base, static_cast<double>(policy_.max_backoff.ns()));
    ++attempt_;
    if (policy_.jitter > 0.0) {
      base *= rng_.next_double(1.0 - policy_.jitter, 1.0 + policy_.jitter);
    }
    return vt::Duration::nanos(
        std::max<std::int64_t>(0, static_cast<std::int64_t>(base)));
  }

 private:
  RetryPolicy policy_;
  Rng rng_;
  unsigned attempt_ = 0;
};

}  // namespace bf
