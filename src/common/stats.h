// Latency/throughput summary statistics used by the load generator and the
// benchmark harnesses (mean, percentiles, min/max over recorded samples).
#pragma once

#include <cstddef>
#include <vector>

namespace bf {

class SampleStats {
 public:
  void record(double value);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  // q in [0,1]; nearest-rank on the sorted samples.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double stddev() const;

  void merge(const SampleStats& other);
  void clear();

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
};

}  // namespace bf
