// Minimal leveled logger. Thread safe; level settable per process.
// Benchmarks and tests set kWarn to keep output clean.
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace bf {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void write(LogLevel level, std::string_view component, std::string_view msg);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mutex_;
};

namespace internal {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().write(level_, component_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace internal

#define BF_LOG(level, component)                       \
  if (!::bf::Logger::instance().enabled(level)) {      \
  } else                                               \
    ::bf::internal::LogLine(level, component)

#define BF_LOG_TRACE(component) BF_LOG(::bf::LogLevel::kTrace, component)
#define BF_LOG_DEBUG(component) BF_LOG(::bf::LogLevel::kDebug, component)
#define BF_LOG_INFO(component) BF_LOG(::bf::LogLevel::kInfo, component)
#define BF_LOG_WARN(component) BF_LOG(::bf::LogLevel::kWarn, component)
#define BF_LOG_ERROR(component) BF_LOG(::bf::LogLevel::kError, component)

}  // namespace bf
