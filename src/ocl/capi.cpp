#include "ocl/capi.h"

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace bf::ocl::capi {
namespace {

// Per-thread object tables (the ICD dispatch state). Thread-local keeps
// independent tenants in one test process from seeing each other's handles,
// mirroring per-process state in a real deployment.
struct ObjectTable {
  Binding binding;
  std::vector<std::unique_ptr<PlatformHandle>> platforms;
  std::vector<std::unique_ptr<DeviceHandle>> devices;
  std::vector<std::unique_ptr<ContextHandle>> contexts;
  std::vector<std::unique_ptr<QueueHandle>> queues;
  std::vector<std::unique_ptr<MemHandleC>> mems;
  std::vector<std::unique_ptr<KernelHandle>> kernels;
  std::vector<std::unique_ptr<EventHandle>> events;
};

thread_local ObjectTable g_table;

bfcl_int map_status(const Status& status) { return to_bfcl(status.code()); }

template <typename T, typename Vec>
bool known(const Vec& vec, const T* handle) {
  for (const auto& owned : vec) {
    if (owned.get() == handle) return true;
  }
  return false;
}

}  // namespace

bfcl_int to_bfcl(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return BFCL_SUCCESS;
    case ErrorCode::kCancelled: return BFCL_CANCELLED;
    case ErrorCode::kInvalidArgument: return BFCL_INVALID_VALUE;
    case ErrorCode::kNotFound: return BFCL_INVALID_KERNEL_NAME;  // legacy
    case ErrorCode::kAlreadyExists: return BFCL_INVALID_VALUE;
    case ErrorCode::kPermissionDenied: return BFCL_INVALID_OPERATION;
    case ErrorCode::kResourceExhausted:
      return BFCL_MEM_OBJECT_ALLOCATION_FAILURE;
    case ErrorCode::kFailedPrecondition: return BFCL_INVALID_OPERATION;
    case ErrorCode::kAborted: return BFCL_INVALID_OPERATION;
    case ErrorCode::kOutOfRange: return BFCL_INVALID_VALUE;
    case ErrorCode::kUnimplemented: return BFCL_INVALID_OPERATION;
    case ErrorCode::kInternal: return BFCL_OUT_OF_RESOURCES;
    case ErrorCode::kUnavailable: return BFCL_DEVICE_NOT_AVAILABLE;
    case ErrorCode::kDeadlineExceeded: return BFCL_DEADLINE_EXCEEDED;
  }
  return BFCL_OUT_OF_RESOURCES;
}

struct PlatformHandle {
  PlatformInfo info;
};

struct DeviceHandle {
  DeviceInfo info;
};

struct ContextHandle {
  std::unique_ptr<Context> context;
};

struct QueueHandle {
  ContextHandle* owner = nullptr;
  std::unique_ptr<CommandQueue> queue;
};

struct MemHandleC {
  ContextHandle* owner = nullptr;
  Buffer buffer;
};

struct KernelHandle {
  ContextHandle* owner = nullptr;
  Kernel kernel;
};

struct EventHandle {
  EventPtr event;
  int refcount = 1;
};

Binding bind(Runtime* runtime, Session* session) {
  Binding previous = g_table.binding;
  g_table.binding = Binding{runtime, session};
  return previous;
}

Binding current_binding() { return g_table.binding; }

void reset_binding_objects() {
  g_table.events.clear();
  g_table.kernels.clear();
  g_table.mems.clear();
  g_table.queues.clear();
  g_table.contexts.clear();
  g_table.devices.clear();
  g_table.platforms.clear();
}

bfcl_int bfclGetPlatformIDs(bfcl_uint num_entries,
                            bfcl_platform_id* platforms,
                            bfcl_uint* num_platforms) {
  if (g_table.binding.runtime == nullptr) return BFCL_INVALID_PLATFORM;
  if (platforms == nullptr && num_platforms == nullptr) {
    return BFCL_INVALID_VALUE;
  }
  auto list = g_table.binding.runtime->platforms();
  if (!list.ok()) return map_status(list.status());
  if (num_platforms != nullptr) {
    *num_platforms = static_cast<bfcl_uint>(list.value().size());
  }
  if (platforms != nullptr) {
    if (num_entries == 0) return BFCL_INVALID_VALUE;
    const bfcl_uint n =
        std::min<bfcl_uint>(num_entries,
                            static_cast<bfcl_uint>(list.value().size()));
    for (bfcl_uint i = 0; i < n; ++i) {
      auto handle = std::make_unique<PlatformHandle>();
      handle->info = list.value()[i];
      platforms[i] = handle.get();
      g_table.platforms.push_back(std::move(handle));
    }
  }
  return BFCL_SUCCESS;
}

bfcl_int bfclGetDeviceIDs(bfcl_platform_id platform, bfcl_uint num_entries,
                          bfcl_device_id* devices, bfcl_uint* num_devices) {
  if (g_table.binding.runtime == nullptr) return BFCL_INVALID_PLATFORM;
  if (platform == nullptr || !known(g_table.platforms, platform)) {
    return BFCL_INVALID_PLATFORM;
  }
  if (devices == nullptr && num_devices == nullptr) return BFCL_INVALID_VALUE;
  auto all = g_table.binding.runtime->devices();
  if (!all.ok()) return map_status(all.status());
  // Restrict to the platform's device list.
  std::vector<DeviceInfo> matching;
  for (const DeviceInfo& info : all.value()) {
    for (const std::string& id : platform->info.device_ids) {
      if (id == info.id) matching.push_back(info);
    }
  }
  if (matching.empty()) return BFCL_DEVICE_NOT_FOUND;
  if (num_devices != nullptr) {
    *num_devices = static_cast<bfcl_uint>(matching.size());
  }
  if (devices != nullptr) {
    if (num_entries == 0) return BFCL_INVALID_VALUE;
    const bfcl_uint n = std::min<bfcl_uint>(
        num_entries, static_cast<bfcl_uint>(matching.size()));
    for (bfcl_uint i = 0; i < n; ++i) {
      auto handle = std::make_unique<DeviceHandle>();
      handle->info = matching[i];
      devices[i] = handle.get();
      g_table.devices.push_back(std::move(handle));
    }
  }
  return BFCL_SUCCESS;
}

bfcl_int bfclGetDeviceInfo(bfcl_device_id device, bfcl_uint param_name,
                           std::size_t param_value_size, void* param_value,
                           std::size_t* param_value_size_ret) {
  if (device == nullptr || !known(g_table.devices, device)) {
    return BFCL_INVALID_DEVICE;
  }
  auto write_string = [&](const std::string& value) -> bfcl_int {
    const std::size_t needed = value.size() + 1;
    if (param_value_size_ret != nullptr) *param_value_size_ret = needed;
    if (param_value != nullptr) {
      if (param_value_size < needed) return BFCL_INVALID_VALUE;
      std::memcpy(param_value, value.c_str(), needed);
    }
    return BFCL_SUCCESS;
  };
  switch (param_name) {
    case BFCL_DEVICE_NAME: return write_string(device->info.name);
    case BFCL_DEVICE_VENDOR: return write_string(device->info.vendor);
    case BFCL_DEVICE_GLOBAL_MEM_SIZE: {
      if (param_value_size_ret != nullptr) {
        *param_value_size_ret = sizeof(std::uint64_t);
      }
      if (param_value != nullptr) {
        if (param_value_size < sizeof(std::uint64_t)) {
          return BFCL_INVALID_VALUE;
        }
        std::memcpy(param_value, &device->info.global_memory_bytes,
                    sizeof(std::uint64_t));
      }
      return BFCL_SUCCESS;
    }
    default:
      return BFCL_INVALID_VALUE;
  }
}

bfcl_context bfclCreateContext(const bfcl_device_id* devices,
                               bfcl_uint num_devices, bfcl_int* errcode_ret) {
  auto fail = [&](bfcl_int code) -> bfcl_context {
    if (errcode_ret != nullptr) *errcode_ret = code;
    return nullptr;
  };
  if (g_table.binding.runtime == nullptr ||
      g_table.binding.session == nullptr) {
    return fail(BFCL_INVALID_PLATFORM);
  }
  if (devices == nullptr || num_devices != 1) {
    return fail(BFCL_INVALID_VALUE);
  }
  if (devices[0] == nullptr || !known(g_table.devices, devices[0])) {
    return fail(BFCL_INVALID_DEVICE);
  }
  auto context = g_table.binding.runtime->create_context(
      devices[0]->info.id, *g_table.binding.session);
  if (!context.ok()) return fail(map_status(context.status()));
  auto handle = std::make_unique<ContextHandle>();
  handle->context = std::move(context.value());
  bfcl_context out = handle.get();
  g_table.contexts.push_back(std::move(handle));
  if (errcode_ret != nullptr) *errcode_ret = BFCL_SUCCESS;
  return out;
}

bfcl_int bfclReleaseContext(bfcl_context context) {
  for (auto it = g_table.contexts.begin(); it != g_table.contexts.end();
       ++it) {
    if (it->get() == context) {
      g_table.contexts.erase(it);
      return BFCL_SUCCESS;
    }
  }
  return BFCL_INVALID_CONTEXT;
}

bfcl_int bfclProgramWithBitstream(bfcl_context context,
                                  const char* bitstream_id) {
  if (context == nullptr || !known(g_table.contexts, context)) {
    return BFCL_INVALID_CONTEXT;
  }
  if (bitstream_id == nullptr) return BFCL_INVALID_VALUE;
  Status programmed = context->context->program(bitstream_id);
  if (!programmed.ok()) {
    return programmed.code() == StatusCode::kNotFound
               ? BFCL_INVALID_PROGRAM
               : map_status(programmed);
  }
  return BFCL_SUCCESS;
}

bfcl_command_queue bfclCreateCommandQueue(bfcl_context context,
                                          bfcl_device_id device,
                                          bfcl_int* errcode_ret) {
  auto fail = [&](bfcl_int code) -> bfcl_command_queue {
    if (errcode_ret != nullptr) *errcode_ret = code;
    return nullptr;
  };
  if (context == nullptr || !known(g_table.contexts, context)) {
    return fail(BFCL_INVALID_CONTEXT);
  }
  if (device != nullptr && !known(g_table.devices, device)) {
    return fail(BFCL_INVALID_DEVICE);
  }
  auto queue = context->context->create_queue();
  if (!queue.ok()) return fail(map_status(queue.status()));
  auto handle = std::make_unique<QueueHandle>();
  handle->owner = context;
  handle->queue = std::move(queue.value());
  bfcl_command_queue out = handle.get();
  g_table.queues.push_back(std::move(handle));
  if (errcode_ret != nullptr) *errcode_ret = BFCL_SUCCESS;
  return out;
}

bfcl_int bfclReleaseCommandQueue(bfcl_command_queue queue) {
  for (auto it = g_table.queues.begin(); it != g_table.queues.end(); ++it) {
    if (it->get() == queue) {
      g_table.queues.erase(it);
      return BFCL_SUCCESS;
    }
  }
  return BFCL_INVALID_COMMAND_QUEUE;
}

bfcl_mem bfclCreateBuffer(bfcl_context context, std::size_t size,
                          bfcl_int* errcode_ret) {
  auto fail = [&](bfcl_int code) -> bfcl_mem {
    if (errcode_ret != nullptr) *errcode_ret = code;
    return nullptr;
  };
  if (context == nullptr || !known(g_table.contexts, context)) {
    return fail(BFCL_INVALID_CONTEXT);
  }
  if (size == 0) return fail(BFCL_INVALID_VALUE);
  auto buffer = context->context->create_buffer(size);
  if (!buffer.ok()) return fail(map_status(buffer.status()));
  auto handle = std::make_unique<MemHandleC>();
  handle->owner = context;
  handle->buffer = buffer.value();
  bfcl_mem out = handle.get();
  g_table.mems.push_back(std::move(handle));
  if (errcode_ret != nullptr) *errcode_ret = BFCL_SUCCESS;
  return out;
}

bfcl_int bfclReleaseMemObject(bfcl_mem mem) {
  for (auto it = g_table.mems.begin(); it != g_table.mems.end(); ++it) {
    if (it->get() == mem) {
      (void)(*it)->owner->context->release_buffer((*it)->buffer);
      g_table.mems.erase(it);
      return BFCL_SUCCESS;
    }
  }
  return BFCL_INVALID_MEM_OBJECT;
}

bfcl_kernel bfclCreateKernel(bfcl_context context, const char* kernel_name,
                             bfcl_int* errcode_ret) {
  auto fail = [&](bfcl_int code) -> bfcl_kernel {
    if (errcode_ret != nullptr) *errcode_ret = code;
    return nullptr;
  };
  if (context == nullptr || !known(g_table.contexts, context)) {
    return fail(BFCL_INVALID_CONTEXT);
  }
  if (kernel_name == nullptr) return fail(BFCL_INVALID_VALUE);
  auto kernel = context->context->create_kernel(kernel_name);
  if (!kernel.ok()) return fail(BFCL_INVALID_KERNEL_NAME);
  auto handle = std::make_unique<KernelHandle>();
  handle->owner = context;
  handle->kernel = std::move(kernel.value());
  bfcl_kernel out = handle.get();
  g_table.kernels.push_back(std::move(handle));
  if (errcode_ret != nullptr) *errcode_ret = BFCL_SUCCESS;
  return out;
}

bfcl_int bfclReleaseKernel(bfcl_kernel kernel) {
  for (auto it = g_table.kernels.begin(); it != g_table.kernels.end(); ++it) {
    if (it->get() == kernel) {
      g_table.kernels.erase(it);
      return BFCL_SUCCESS;
    }
  }
  return BFCL_INVALID_KERNEL;
}

bfcl_int bfclSetKernelArg(bfcl_kernel kernel, bfcl_uint arg_index,
                          std::size_t arg_size, const void* arg_value) {
  if (kernel == nullptr || !known(g_table.kernels, kernel)) {
    return BFCL_INVALID_KERNEL;
  }
  if (arg_value == nullptr) return BFCL_INVALID_VALUE;
  if (arg_size == sizeof(bfcl_mem)) {
    // Could be a buffer handle — check against the table first (the spec
    // passes cl_mem by pointer-to-handle).
    bfcl_mem mem = nullptr;
    std::memcpy(&mem, arg_value, sizeof(mem));
    if (mem != nullptr && known(g_table.mems, mem)) {
      kernel->kernel.set_arg(arg_index, mem->buffer);
      return BFCL_SUCCESS;
    }
  }
  switch (arg_size) {
    case 4: {
      std::int32_t value = 0;
      std::memcpy(&value, arg_value, sizeof(value));
      kernel->kernel.set_arg(arg_index, static_cast<std::int64_t>(value));
      return BFCL_SUCCESS;
    }
    case 8: {
      std::int64_t value = 0;
      std::memcpy(&value, arg_value, sizeof(value));
      kernel->kernel.set_arg(arg_index, value);
      return BFCL_SUCCESS;
    }
    default:
      return BFCL_INVALID_ARG_INDEX;
  }
}

namespace {

bfcl_int finish_enqueue(Result<EventPtr> result, bfcl_event* event_out) {
  if (!result.ok()) return map_status(result.status());
  if (event_out != nullptr) {
    auto handle = std::make_unique<EventHandle>();
    handle->event = result.value();
    *event_out = handle.get();
    g_table.events.push_back(std::move(handle));
  }
  return BFCL_SUCCESS;
}

}  // namespace

bfcl_int bfclEnqueueWriteBuffer(bfcl_command_queue queue, bfcl_mem buffer,
                                bfcl_bool blocking_write, std::size_t offset,
                                std::size_t size, const void* ptr,
                                bfcl_event* event) {
  if (queue == nullptr || !known(g_table.queues, queue)) {
    return BFCL_INVALID_COMMAND_QUEUE;
  }
  if (buffer == nullptr || !known(g_table.mems, buffer)) {
    return BFCL_INVALID_MEM_OBJECT;
  }
  if (ptr == nullptr) return BFCL_INVALID_VALUE;
  return finish_enqueue(
      queue->queue->enqueue_write(buffer->buffer, offset,
                                  as_bytes(ptr, size),
                                  blocking_write == BFCL_TRUE),
      event);
}

bfcl_int bfclEnqueueReadBuffer(bfcl_command_queue queue, bfcl_mem buffer,
                               bfcl_bool blocking_read, std::size_t offset,
                               std::size_t size, void* ptr,
                               bfcl_event* event) {
  if (queue == nullptr || !known(g_table.queues, queue)) {
    return BFCL_INVALID_COMMAND_QUEUE;
  }
  if (buffer == nullptr || !known(g_table.mems, buffer)) {
    return BFCL_INVALID_MEM_OBJECT;
  }
  if (ptr == nullptr) return BFCL_INVALID_VALUE;
  return finish_enqueue(
      queue->queue->enqueue_read(buffer->buffer, offset,
                                 as_writable_bytes(ptr, size),
                                 blocking_read == BFCL_TRUE),
      event);
}

bfcl_int bfclEnqueueNDRangeKernel(bfcl_command_queue queue,
                                  bfcl_kernel kernel, bfcl_uint work_dim,
                                  const std::size_t* global_work_size,
                                  bfcl_event* event) {
  if (queue == nullptr || !known(g_table.queues, queue)) {
    return BFCL_INVALID_COMMAND_QUEUE;
  }
  if (kernel == nullptr || !known(g_table.kernels, kernel)) {
    return BFCL_INVALID_KERNEL;
  }
  if (work_dim < 1 || work_dim > 3 || global_work_size == nullptr) {
    return BFCL_INVALID_VALUE;
  }
  NdRange range;
  range.x = global_work_size[0];
  range.y = work_dim > 1 ? global_work_size[1] : 1;
  range.z = work_dim > 2 ? global_work_size[2] : 1;
  return finish_enqueue(queue->queue->enqueue_kernel(kernel->kernel, range),
                        event);
}

bfcl_int bfclFlush(bfcl_command_queue queue) {
  if (queue == nullptr || !known(g_table.queues, queue)) {
    return BFCL_INVALID_COMMAND_QUEUE;
  }
  return queue->queue->flush().ok() ? BFCL_SUCCESS : BFCL_OUT_OF_RESOURCES;
}

bfcl_int bfclFinish(bfcl_command_queue queue) {
  if (queue == nullptr || !known(g_table.queues, queue)) {
    return BFCL_INVALID_COMMAND_QUEUE;
  }
  return queue->queue->finish().ok() ? BFCL_SUCCESS : BFCL_OUT_OF_RESOURCES;
}

bfcl_int bfclWaitForEvents(bfcl_uint num_events, const bfcl_event* events) {
  if (num_events == 0 || events == nullptr) return BFCL_INVALID_VALUE;
  for (bfcl_uint i = 0; i < num_events; ++i) {
    if (events[i] == nullptr || !known(g_table.events, events[i])) {
      return BFCL_INVALID_EVENT;
    }
    if (!events[i]->event->wait().ok()) return BFCL_OUT_OF_RESOURCES;
  }
  return BFCL_SUCCESS;
}

bfcl_int bfclGetEventInfo(bfcl_event event, bfcl_uint param_name,
                          std::size_t param_value_size, void* param_value,
                          std::size_t* param_value_size_ret) {
  if (event == nullptr || !known(g_table.events, event)) {
    return BFCL_INVALID_EVENT;
  }
  if (param_name != BFCL_EVENT_COMMAND_EXECUTION_STATUS) {
    return BFCL_INVALID_VALUE;
  }
  bfcl_int status = BFCL_QUEUED;
  switch (event->event->status()) {
    case EventStatus::kQueued: status = BFCL_QUEUED; break;
    case EventStatus::kSubmitted: status = BFCL_SUBMITTED; break;
    case EventStatus::kRunning: status = BFCL_RUNNING; break;
    case EventStatus::kComplete: status = BFCL_COMPLETE; break;
    case EventStatus::kError: status = -1; break;
  }
  if (param_value_size_ret != nullptr) {
    *param_value_size_ret = sizeof(bfcl_int);
  }
  if (param_value != nullptr) {
    if (param_value_size < sizeof(bfcl_int)) return BFCL_INVALID_VALUE;
    std::memcpy(param_value, &status, sizeof(status));
  }
  return BFCL_SUCCESS;
}

bfcl_int bfclRetainEvent(bfcl_event event) {
  if (event == nullptr || !known(g_table.events, event)) {
    return BFCL_INVALID_EVENT;
  }
  ++event->refcount;
  return BFCL_SUCCESS;
}

bfcl_int bfclReleaseEvent(bfcl_event event) {
  for (auto it = g_table.events.begin(); it != g_table.events.end(); ++it) {
    if (it->get() == event) {
      if (--(*it)->refcount == 0) g_table.events.erase(it);
      return BFCL_SUCCESS;
    }
  }
  return BFCL_INVALID_EVENT;
}

}  // namespace bf::ocl::capi
