// Core value types of the OpenCL-style host API.
//
// BlastFunction's transparency claim (paper §I, §III-A) is that application
// host code written against the OpenCL host API runs unchanged on a local
// device or through the remote library. We express that API as a small C++
// object model: bf::native::NativeRuntime and bf::remote::RemoteRuntime both
// implement bf::ocl::Runtime, and every workload in src/workloads is written
// once against this header.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace bf::ocl {

// Matches the cl_event execution-status ladder.
enum class EventStatus {
  kQueued,     // CL_QUEUED: in the client-side command queue
  kSubmitted,  // CL_SUBMITTED: handed to the device (manager)
  kRunning,    // CL_RUNNING: executing on the device
  kComplete,   // CL_COMPLETE
  kError,      // negative status in OpenCL terms
};

std::string_view to_string(EventStatus status);

struct PlatformInfo {
  std::string name;    // e.g. "Intel(R) FPGA SDK for OpenCL" / "BlastFunction"
  std::string vendor;
  std::vector<std::string> device_ids;
};

struct DeviceInfo {
  std::string id;           // stable device identifier
  std::string name;         // marketing name
  std::string vendor;       // "Intel"
  std::string platform;     // board platform, e.g. "a10gx_de5a_net"
  std::string node;         // hosting cluster node
  std::string accelerator;  // currently configured accelerator ("" if none)
  std::uint64_t global_memory_bytes = 0;
};

// Client-side buffer handle (cl_mem analogue). Value type; identity lives in
// the owning Context.
struct Buffer {
  std::uint64_t id = 0;
  std::uint64_t size = 0;
  [[nodiscard]] bool valid() const { return id != 0; }
};

// A kernel argument as captured at enqueue time.
struct BufferRef {
  std::uint64_t id = 0;
};
using KernelArgValue = std::variant<std::monostate, BufferRef, std::int64_t,
                                    double>;

// Client-side kernel object (cl_kernel analogue). Stateful set_arg followed
// by enqueue, as in the OpenCL specification.
class Kernel {
 public:
  Kernel() = default;
  Kernel(std::uint64_t id, std::string name, std::size_t arity)
      : id_(id), name_(std::move(name)), args_(arity) {}

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool valid() const { return id_ != 0; }

  void set_arg(std::size_t index, const Buffer& buffer) {
    ensure(index);
    args_[index] = BufferRef{buffer.id};
  }
  void set_arg(std::size_t index, std::int64_t value) {
    ensure(index);
    args_[index] = value;
  }
  void set_arg(std::size_t index, double value) {
    ensure(index);
    args_[index] = value;
  }

  [[nodiscard]] const std::vector<KernelArgValue>& args() const {
    return args_;
  }

 private:
  void ensure(std::size_t index) {
    if (index >= args_.size()) args_.resize(index + 1);
  }

  std::uint64_t id_ = 0;
  std::string name_;
  std::vector<KernelArgValue> args_;
};

struct NdRange {
  std::uint64_t x = 1;
  std::uint64_t y = 1;
  std::uint64_t z = 1;
};

}  // namespace bf::ocl
