// C-style OpenCL API shim (the `bfcl` API).
//
// The paper's transparency claim is that existing OpenCL host code links
// against BlastFunction's library "without code rewriting" (§I, §III-A).
// This header provides the classic C API surface — bfclGetPlatformIDs,
// bfclCreateBuffer, bfclEnqueueNDRangeKernel, ... — implemented on top of
// bf::ocl::Runtime, so host code written in the familiar style compiles and
// runs against either the Native runtime or the Remote OpenCL Library.
//
// Names carry a `bfcl` prefix instead of `cl` so the shim can coexist with a
// real OpenCL installation in the same process; the signatures mirror the
// OpenCL 1.2 entry points this reproduction uses.
//
// Handle model: opaque pointers backed by a per-binding object table, as in
// a real ICD. Every object created through the shim must be released with
// the matching bfclRelease* call (retain/release reference counting is
// supported like the spec requires).
#pragma once

#include <cstddef>
#include <cstdint>

#include "ocl/runtime.h"

namespace bf::ocl::capi {

// ---- types mirroring the OpenCL C API ----------------------------------------

using bfcl_int = std::int32_t;
using bfcl_uint = std::uint32_t;
using bfcl_bool = std::uint32_t;

struct PlatformHandle;
struct DeviceHandle;
struct ContextHandle;
struct QueueHandle;
struct MemHandleC;
struct KernelHandle;
struct EventHandle;

using bfcl_platform_id = PlatformHandle*;
using bfcl_device_id = DeviceHandle*;
using bfcl_context = ContextHandle*;
using bfcl_command_queue = QueueHandle*;
using bfcl_mem = MemHandleC*;
using bfcl_kernel = KernelHandle*;
using bfcl_event = EventHandle*;

// Error codes (subset, values as in CL/cl.h).
inline constexpr bfcl_int BFCL_SUCCESS = 0;
inline constexpr bfcl_int BFCL_DEVICE_NOT_FOUND = -1;
inline constexpr bfcl_int BFCL_OUT_OF_RESOURCES = -5;
inline constexpr bfcl_int BFCL_MEM_OBJECT_ALLOCATION_FAILURE = -4;
inline constexpr bfcl_int BFCL_INVALID_VALUE = -30;
inline constexpr bfcl_int BFCL_INVALID_PLATFORM = -32;
inline constexpr bfcl_int BFCL_INVALID_DEVICE = -33;
inline constexpr bfcl_int BFCL_INVALID_CONTEXT = -34;
inline constexpr bfcl_int BFCL_INVALID_COMMAND_QUEUE = -36;
inline constexpr bfcl_int BFCL_INVALID_MEM_OBJECT = -38;
inline constexpr bfcl_int BFCL_INVALID_PROGRAM = -44;
inline constexpr bfcl_int BFCL_INVALID_KERNEL_NAME = -46;
inline constexpr bfcl_int BFCL_INVALID_KERNEL = -48;
inline constexpr bfcl_int BFCL_INVALID_ARG_INDEX = -49;
inline constexpr bfcl_int BFCL_INVALID_EVENT = -58;
inline constexpr bfcl_int BFCL_INVALID_OPERATION = -59;
inline constexpr bfcl_int BFCL_DEVICE_NOT_AVAILABLE = -2;
// Extension codes for failure handling the CL 1.2 table has no slot for
// (vendor ranges start below -1000, like CL_PLATFORM_NOT_FOUND_KHR).
inline constexpr bfcl_int BFCL_DEADLINE_EXCEEDED = -1060;
inline constexpr bfcl_int BFCL_CANCELLED = -1061;

// The single authoritative ErrorCode -> cl_int mapping used by every shim
// entry point (the transparency layer's one place where bf::Status surfaces
// to host code). kNotFound keeps its legacy INVALID_KERNEL_NAME mapping —
// lookups through the shim overwhelmingly name kernels.
[[nodiscard]] bfcl_int to_bfcl(ErrorCode code);

inline constexpr bfcl_bool BFCL_TRUE = 1;
inline constexpr bfcl_bool BFCL_FALSE = 0;

// clGetDeviceInfo / clGetEventInfo param names (subset).
inline constexpr bfcl_uint BFCL_DEVICE_NAME = 0x102B;
inline constexpr bfcl_uint BFCL_DEVICE_VENDOR = 0x102C;
inline constexpr bfcl_uint BFCL_DEVICE_GLOBAL_MEM_SIZE = 0x101F;
inline constexpr bfcl_uint BFCL_EVENT_COMMAND_EXECUTION_STATUS = 0x11D3;
inline constexpr bfcl_int BFCL_COMPLETE = 0x0;
inline constexpr bfcl_int BFCL_RUNNING = 0x1;
inline constexpr bfcl_int BFCL_SUBMITTED = 0x2;
inline constexpr bfcl_int BFCL_QUEUED = 0x3;

// ---- binding -------------------------------------------------------------------

// Installs the runtime behind the C API for the calling thread (the ICD
// dispatch analogue). The runtime and session must outlive the binding.
// Returns the previous binding so scoped use can restore it.
struct Binding {
  Runtime* runtime = nullptr;
  Session* session = nullptr;
};
Binding bind(Runtime* runtime, Session* session);
Binding current_binding();

// Releases every object table entry of the current thread's binding (test
// hygiene; a process would just exit).
void reset_binding_objects();

// ---- the API --------------------------------------------------------------------

bfcl_int bfclGetPlatformIDs(bfcl_uint num_entries,
                            bfcl_platform_id* platforms,
                            bfcl_uint* num_platforms);

bfcl_int bfclGetDeviceIDs(bfcl_platform_id platform, bfcl_uint num_entries,
                          bfcl_device_id* devices, bfcl_uint* num_devices);

bfcl_int bfclGetDeviceInfo(bfcl_device_id device, bfcl_uint param_name,
                           std::size_t param_value_size, void* param_value,
                           std::size_t* param_value_size_ret);

bfcl_context bfclCreateContext(const bfcl_device_id* devices,
                               bfcl_uint num_devices, bfcl_int* errcode_ret);
bfcl_int bfclReleaseContext(bfcl_context context);

// clCreateProgramWithBinary + clBuildProgram collapsed: the "binary" is the
// bitstream id, as with Intel's offline-compiled .aocx flow.
bfcl_int bfclProgramWithBitstream(bfcl_context context,
                                  const char* bitstream_id);

bfcl_command_queue bfclCreateCommandQueue(bfcl_context context,
                                          bfcl_device_id device,
                                          bfcl_int* errcode_ret);
bfcl_int bfclReleaseCommandQueue(bfcl_command_queue queue);

bfcl_mem bfclCreateBuffer(bfcl_context context, std::size_t size,
                          bfcl_int* errcode_ret);
bfcl_int bfclReleaseMemObject(bfcl_mem mem);

bfcl_kernel bfclCreateKernel(bfcl_context context, const char* kernel_name,
                             bfcl_int* errcode_ret);
bfcl_int bfclReleaseKernel(bfcl_kernel kernel);

// Buffer args are set with arg_size == sizeof(bfcl_mem) and arg_value
// pointing at the bfcl_mem; scalars with their native size (4 or 8 bytes,
// integers; 8 bytes for double).
bfcl_int bfclSetKernelArg(bfcl_kernel kernel, bfcl_uint arg_index,
                          std::size_t arg_size, const void* arg_value);

bfcl_int bfclEnqueueWriteBuffer(bfcl_command_queue queue, bfcl_mem buffer,
                                bfcl_bool blocking_write, std::size_t offset,
                                std::size_t size, const void* ptr,
                                bfcl_event* event);

bfcl_int bfclEnqueueReadBuffer(bfcl_command_queue queue, bfcl_mem buffer,
                               bfcl_bool blocking_read, std::size_t offset,
                               std::size_t size, void* ptr,
                               bfcl_event* event);

bfcl_int bfclEnqueueNDRangeKernel(bfcl_command_queue queue,
                                  bfcl_kernel kernel, bfcl_uint work_dim,
                                  const std::size_t* global_work_size,
                                  bfcl_event* event);

bfcl_int bfclFlush(bfcl_command_queue queue);
bfcl_int bfclFinish(bfcl_command_queue queue);

bfcl_int bfclWaitForEvents(bfcl_uint num_events, const bfcl_event* events);
bfcl_int bfclGetEventInfo(bfcl_event event, bfcl_uint param_name,
                          std::size_t param_value_size, void* param_value,
                          std::size_t* param_value_size_ret);
bfcl_int bfclRetainEvent(bfcl_event event);
bfcl_int bfclReleaseEvent(bfcl_event event);

}  // namespace bf::ocl::capi
