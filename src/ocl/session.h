// Session: one application instance's connection to an OpenCL runtime.
//
// Owns the application's virtual clock. All blocking OpenCL calls made under
// a session advance this cursor; the application's own modeled CPU work is
// charged with Session::compute(). Thread ownership follows the OpenCL
// host-thread model: a session is driven by one application thread.
#pragma once

#include <string>

#include "trace/span.h"
#include "vt/cursor.h"
#include "vt/time.h"

namespace bf::ocl {

class Session {
 public:
  Session() = default;
  explicit Session(std::string client_id) : client_id_(std::move(client_id)) {}

  [[nodiscard]] const std::string& client_id() const { return client_id_; }

  [[nodiscard]] vt::Time now() const { return cursor_.now(); }
  [[nodiscard]] vt::Cursor& clock() { return cursor_; }

  // Models application CPU work of duration d.
  void compute(vt::Duration d) { cursor_.advance(d); }

  // Request trace context carried by the session for the duration of one
  // invocation (set by the FaaS layer, read by the remote library when it
  // stamps outgoing calls). Invalid (zeroed) outside traced requests.
  void set_trace_context(trace::SpanContext ctx) { trace_ = ctx; }
  [[nodiscard]] const trace::SpanContext& trace_context() const {
    return trace_;
  }

 private:
  std::string client_id_ = "anonymous";
  vt::Cursor cursor_;
  trace::SpanContext trace_;
};

}  // namespace bf::ocl
