#include "ocl/runtime.h"

namespace bf::ocl {

std::string_view to_string(EventStatus status) {
  switch (status) {
    case EventStatus::kQueued: return "QUEUED";
    case EventStatus::kSubmitted: return "SUBMITTED";
    case EventStatus::kRunning: return "RUNNING";
    case EventStatus::kComplete: return "COMPLETE";
    case EventStatus::kError: return "ERROR";
  }
  return "UNKNOWN";
}

Status wait_all(std::span<const EventPtr> events) {
  Status first_error;
  for (const EventPtr& event : events) {
    if (event == nullptr) continue;
    Status s = event->wait();
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

}  // namespace bf::ocl
