// Runtime / Context / CommandQueue / Event interfaces.
//
// Blocking semantics follow OpenCL: a blocking enqueue returns after the
// operation completes (and advances the session's virtual clock to the
// completion time); a non-blocking enqueue returns an Event that can be
// polled (clGetEventInfo) or waited on (clWaitForEvents).
#pragma once

#include <memory>
#include <span>

#include "common/bytes.h"
#include "common/status.h"
#include "ocl/session.h"
#include "ocl/types.h"
#include "vt/time.h"

namespace bf::ocl {

class Event {
 public:
  virtual ~Event() = default;

  // Non-blocking status poll. Never advances the session clock.
  [[nodiscard]] virtual EventStatus status() const = 0;

  // Blocks until complete (or failed); advances the session clock to the
  // completion timestamp. Returns the operation's status.
  virtual Status wait() = 0;

  // Modeled completion time; only meaningful once status() == kComplete.
  [[nodiscard]] virtual vt::Time completion_time() const = 0;
};

using EventPtr = std::shared_ptr<Event>;

// clWaitForEvents analogue: waits on all, returns first error (if any).
Status wait_all(std::span<const EventPtr> events);

using EventWaitList = std::span<const EventPtr>;

class CommandQueue {
 public:
  virtual ~CommandQueue() = default;

  // clEnqueueWriteBuffer. `data` must stay alive until the event completes
  // when non-blocking. The operation may not start before every event in
  // `wait_list` has completed (cross-queue dependencies; the wait-list
  // events must come from the same context and their commands must already
  // be flushed).
  virtual Result<EventPtr> enqueue_write(const Buffer& buffer,
                                         std::uint64_t offset, ByteSpan data,
                                         bool blocking,
                                         EventWaitList wait_list = {}) = 0;

  // Ownership-transfer variant: the queue may move `data` into its
  // transport instead of copying (modeled transfer costs are charged
  // identically). Default implementation copies via the span overload;
  // transports that can take ownership override it. On failure the buffer
  // may or may not have been consumed.
  virtual Result<EventPtr> enqueue_write(const Buffer& buffer,
                                         std::uint64_t offset, Bytes&& data,
                                         bool blocking,
                                         EventWaitList wait_list = {}) {
    return enqueue_write(buffer, offset, ByteSpan{data}, blocking, wait_list);
  }

  // clEnqueueReadBuffer. `out` must stay alive until the event completes
  // when non-blocking.
  virtual Result<EventPtr> enqueue_read(const Buffer& buffer,
                                        std::uint64_t offset,
                                        MutableByteSpan out, bool blocking,
                                        EventWaitList wait_list = {}) = 0;

  // clEnqueueNDRangeKernel. Snapshots the kernel's current args.
  virtual Result<EventPtr> enqueue_kernel(const Kernel& kernel, NdRange range,
                                          EventWaitList wait_list = {}) = 0;

  // clFlush: submits all queued commands (seals the current task in
  // BlastFunction terms). Non-blocking.
  virtual Status flush() = 0;

  // clFinish: flush + wait for everything previously enqueued.
  virtual Status finish() = 0;
};

class Context {
 public:
  virtual ~Context() = default;

  [[nodiscard]] virtual const DeviceInfo& device() const = 0;
  [[nodiscard]] virtual Session& session() = 0;

  // clCreateProgramWithBinary + clBuildProgram: requests the named bitstream
  // on the device. May trigger (or request) board reconfiguration.
  virtual Status program(const std::string& bitstream_id) = 0;

  // clCreateBuffer / clReleaseMemObject.
  virtual Result<Buffer> create_buffer(std::uint64_t size) = 0;
  virtual Status release_buffer(const Buffer& buffer) = 0;

  // clCreateKernel. The kernel must exist in the programmed bitstream.
  virtual Result<Kernel> create_kernel(const std::string& name) = 0;

  // clCreateCommandQueue (in-order).
  virtual Result<std::unique_ptr<CommandQueue>> create_queue() = 0;
};

class Runtime {
 public:
  virtual ~Runtime() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  // clGetPlatformIDs / clGetDeviceIDs.
  virtual Result<std::vector<PlatformInfo>> platforms() = 0;
  virtual Result<std::vector<DeviceInfo>> devices() = 0;

  // clCreateContext for one device. The session provides the application's
  // virtual clock; it must outlive the context.
  virtual Result<std::unique_ptr<Context>> create_context(
      const std::string& device_id, Session& session) = 0;
};

}  // namespace bf::ocl
