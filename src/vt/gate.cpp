#include "vt/gate.h"

namespace bf::vt {

Gate::Source Gate::register_source(Time initial_bound) {
  std::uint64_t id = 0;
  {
    std::lock_guard lock(mutex_);
    id = next_id_++;
    bounds_[id] = Bound{initial_bound, /*owned=*/true};
    ++version_;
  }
  cv_.notify_all();
  return Source(this, id);
}

bool Gate::wait_safe(Time t, bool* fallback) {
  if (fallback != nullptr) *fallback = false;
  std::unique_lock lock(mutex_);
  for (;;) {
    if (shutdown_) return false;
    if (min_bound_locked() >= t) return true;
    const std::uint64_t version = version_;
    cv_.wait_for(lock, stall_grace_, [&] {
      return shutdown_ || version_ != version || min_bound_locked() >= t;
    });
    if (shutdown_) return false;
    if (min_bound_locked() >= t) return true;
    if (version_ == version) {
      // No producer moved for the whole grace period: a blocked or idle
      // producer thread. Proceed in arrival order (liveness over strict
      // virtual-time fidelity).
      if (fallback != nullptr) *fallback = true;
      return true;
    }
  }
}

Time Gate::min_bound() const {
  std::lock_guard lock(mutex_);
  return min_bound_locked();
}

std::size_t Gate::source_count() const {
  std::lock_guard lock(mutex_);
  return bounds_.size();
}

void Gate::shutdown() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

bool Gate::is_shutdown() const {
  std::lock_guard lock(mutex_);
  return shutdown_;
}

void Gate::announce(std::uint64_t id, Time bound, bool owned) {
  {
    std::lock_guard lock(mutex_);
    auto it = bounds_.find(id);
    if (it == bounds_.end()) return;
    it->second = Bound{bound, owned};
    ++version_;
  }
  cv_.notify_all();
}

void Gate::nudge(std::uint64_t id, Time bound) {
  {
    std::lock_guard lock(mutex_);
    auto it = bounds_.find(id);
    if (it == bounds_.end()) return;
    if (it->second.owned) return;  // producer announce wins over nudges
    it->second.time = bound;
    ++version_;
  }
  cv_.notify_all();
}

void Gate::unregister(std::uint64_t id) {
  {
    std::lock_guard lock(mutex_);
    bounds_.erase(id);
    ++version_;
  }
  cv_.notify_all();
}

Time Gate::min_bound_locked() const {
  Time min = Time::infinite();
  for (const auto& [id, bound] : bounds_) {
    if (bound.time < min) min = bound.time;
  }
  return min;
}

}  // namespace bf::vt
