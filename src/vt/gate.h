// Conservative virtual-time gate.
//
// The Device Manager's worker thread must execute tasks in modeled-arrival
// order even though producer threads race in real time. Each producer
// (client connection) registers as a Source and continuously *announces* a
// lower bound: "I will never again emit a message stamped earlier than B".
// The worker calls wait_safe(t) before executing a task stamped t; it blocks
// until every source's bound has reached t. A source that is blocked waiting
// for a reply announces Time::infinite() (it cannot emit until woken).
//
// This is classic conservative parallel discrete-event synchronization
// (Chandy–Misra null messages, collapsed into shared-memory bounds).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "vt/time.h"

namespace bf::vt {

class Gate {
 public:
  Gate() = default;
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  // RAII registration. Move-only; unregisters on destruction.
  class Source {
   public:
    Source() = default;
    Source(Gate* gate, std::uint64_t id) : gate_(gate), id_(id) {}
    Source(Source&& other) noexcept { *this = std::move(other); }
    Source& operator=(Source&& other) noexcept {
      release();
      gate_ = other.gate_;
      id_ = other.id_;
      other.gate_ = nullptr;
      return *this;
    }
    ~Source() { release(); }

    // "I will not emit anything stamped earlier than `bound`."
    // Must be called before pushing a message stamped >= bound.
    void announce(Time bound) {
      if (gate_ != nullptr) gate_->announce(id_, bound, /*owned=*/true);
    }
    // Blocked waiting on a reply; cannot emit until woken. The bound becomes
    // infinite and *unowned*: the server may nudge it (see nudge) until the
    // producer announces again.
    void block() {
      if (gate_ != nullptr) {
        gate_->announce(id_, Time::infinite(), /*owned=*/false);
      }
    }
    // Server-side lookahead: when the consumer sends this producer a frame
    // that may wake it, the producer's next emission cannot be stamped
    // earlier than the frame's arrival. Applies only while the bound is
    // unowned (producer blocked); a concurrent producer announce wins.
    void nudge(Time bound) {
      if (gate_ != nullptr) gate_->nudge(id_, bound);
    }

    [[nodiscard]] bool valid() const { return gate_ != nullptr; }

   private:
    void release() {
      if (gate_ != nullptr) gate_->unregister(id_);
      gate_ = nullptr;
    }
    Gate* gate_ = nullptr;
    std::uint64_t id_ = 0;
  };

  // Registers a new source with the given initial bound. The producer must
  // announce before each send; see Source::announce.
  Source register_source(Time initial_bound);

  // Blocks until no registered source could still emit a message stamped
  // earlier than t. Returns false if the gate was shut down.
  //
  // Liveness stall-breaker: if no source's bound changes for `stall_grace`
  // of real time, the wait proceeds optimistically. A producer thread that
  // is genuinely idle (e.g. two sessions driven by one application thread)
  // would otherwise deadlock the consumer; a real (non-virtual-time) system
  // simply executes in arrival order in that situation, which is what the
  // fallback reproduces. Active closed-loop producers never trip it.
  //
  // When `fallback` is non-null it is set to true iff the wait proceeded
  // via the stall-breaker rather than a genuinely safe bound — consumers
  // that audit ordering (the fault matrix) use it to mark best-effort pops.
  bool wait_safe(Time t, bool* fallback = nullptr);

  void set_stall_grace(std::chrono::milliseconds grace) {
    std::lock_guard lock(mutex_);
    stall_grace_ = grace;
  }

  // Earliest bound across sources; infinite() if none are registered.
  [[nodiscard]] Time min_bound() const;

  [[nodiscard]] std::size_t source_count() const;

  // Wakes all waiters and makes every current/future wait_safe return false.
  void shutdown();

  [[nodiscard]] bool is_shutdown() const;

 private:
  friend class Source;

  struct Bound {
    Time time = Time::zero();
    bool owned = true;  // true: producer-announced; false: nudgeable
  };

  void announce(std::uint64_t id, Time bound, bool owned);
  void nudge(std::uint64_t id, Time bound);
  void unregister(std::uint64_t id);
  [[nodiscard]] Time min_bound_locked() const;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<std::uint64_t, Bound> bounds_;
  std::uint64_t next_id_ = 1;
  std::uint64_t version_ = 0;  // bumped on any bound change
  std::chrono::milliseconds stall_grace_{200};
  bool shutdown_ = false;
};

}  // namespace bf::vt
