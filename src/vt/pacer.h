// Pacer: optional mapping from virtual time to wall time, used by the
// runnable examples so a demo unfolds at human speed. Benchmarks run unpaced
// (scale <= 0) and finish in milliseconds.
#pragma once

#include <chrono>
#include <thread>

#include "vt/time.h"

namespace bf::vt {

class Pacer {
 public:
  // scale: virtual seconds per real second. scale <= 0 disables pacing.
  // scale = 10 plays a 60 s virtual experiment in 6 s of wall time.
  explicit Pacer(double scale = 0.0)
      : scale_(scale), start_(std::chrono::steady_clock::now()) {}

  // Sleeps until wall time catches up with virtual time t.
  void pace(Time t) const {
    if (scale_ <= 0.0 || t.is_infinite()) return;
    const auto target =
        start_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(t.sec() / scale_));
    std::this_thread::sleep_until(target);
  }

  [[nodiscard]] bool enabled() const { return scale_ > 0.0; }

 private:
  double scale_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bf::vt
