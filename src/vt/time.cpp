#include "vt/time.h"

#include <cstdio>

namespace bf::vt {

std::string to_string(Time t) {
  if (t.is_infinite()) return "+inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3fms", t.ms());
  return buf;
}

std::string to_string(Duration d) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3fms", d.ms());
  return buf;
}

}  // namespace bf::vt
