// A Cursor is a thread's private modeled clock. Client application threads,
// the remote library's connection thread and the device-manager worker each
// own one. Interactions (RPC replies, event completions) pull a cursor
// forward via advance_to; local modeled work pushes it with advance.
#pragma once

#include "vt/time.h"

namespace bf::vt {

class Cursor {
 public:
  Cursor() = default;
  explicit Cursor(Time start) : now_(start) {}

  [[nodiscard]] Time now() const { return now_; }

  // Local modeled work of duration d.
  Time advance(Duration d) {
    now_ += d;
    return now_;
  }

  // Synchronize with an externally produced timestamp (e.g. an RPC reply
  // stamped by the server). Never moves backwards.
  Time advance_to(Time t) {
    now_ = max(now_, t);
    return now_;
  }

 private:
  Time now_ = Time::zero();
};

}  // namespace bf::vt
