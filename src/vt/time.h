// Virtual (modeled) time.
//
// BlastFunction-the-paper measures wall-clock behaviour of a three-node
// cluster over minutes. This reproduction keeps the real thread structure of
// the system but replaces wall time with *virtual time*: every message, task
// and event carries a modeled timestamp; cost models (PCIe, memcpy, protobuf,
// kernels) advance those timestamps. Experiments are therefore deterministic
// and run orders of magnitude faster than real time.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace bf::vt {

// Duration in modeled nanoseconds. Value type; arithmetic is saturating-free
// (plain int64) because modeled experiments stay far below the 292-year range.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration nanos(std::int64_t ns) { return Duration(ns); }
  static constexpr Duration micros(std::int64_t us) {
    return Duration(us * 1000);
  }
  static constexpr Duration millis(std::int64_t ms) {
    return Duration(ms * 1'000'000);
  }
  static constexpr Duration seconds(std::int64_t s) {
    return Duration(s * 1'000'000'000);
  }
  static constexpr Duration from_seconds_f(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e9));
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr Duration operator+(Duration other) const {
    return Duration(ns_ + other.ns_);
  }
  constexpr Duration operator-(Duration other) const {
    return Duration(ns_ - other.ns_);
  }
  constexpr Duration operator*(std::int64_t k) const {
    return Duration(ns_ * k);
  }
  constexpr Duration& operator+=(Duration other) {
    ns_ += other.ns_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

// A point in modeled time (ns since experiment start).
class Time {
 public:
  constexpr Time() = default;
  static constexpr Time zero() { return Time(0); }
  static constexpr Time nanos(std::int64_t ns) { return Time(ns); }
  static constexpr Time millis(std::int64_t ms) { return Time(ms * 1'000'000); }
  static constexpr Time seconds(std::int64_t s) {
    return Time(s * 1'000'000'000);
  }
  // "Will never emit again (until re-announced)" bound used by vt::Gate.
  static constexpr Time infinite() {
    return Time(std::numeric_limits<std::int64_t>::max());
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }
  [[nodiscard]] constexpr bool is_infinite() const {
    return ns_ == std::numeric_limits<std::int64_t>::max();
  }

  constexpr Time operator+(Duration d) const { return Time(ns_ + d.ns()); }
  constexpr Duration operator-(Time other) const {
    return Duration::nanos(ns_ - other.ns_);
  }
  constexpr Time& operator+=(Duration d) {
    ns_ += d.ns();
    return *this;
  }
  constexpr auto operator<=>(const Time&) const = default;

 private:
  constexpr explicit Time(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

constexpr Time max(Time a, Time b) { return a < b ? b : a; }
constexpr Duration max(Duration a, Duration b) { return a < b ? b : a; }

std::string to_string(Time t);
std::string to_string(Duration d);

}  // namespace bf::vt
