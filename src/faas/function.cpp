#include "faas/function.h"

#include "common/log.h"

namespace bf::faas {

FunctionInstance::FunctionInstance(cluster::Pod pod,
                                   const FunctionConfig& config,
                                   BindingResolver resolver,
                                   sim::NodeProfile node)
    : pod_(std::move(pod)),
      config_(config),
      resolver_(std::move(resolver)),
      node_(std::move(node)),
      session_(pod_.spec.name),
      workload_(config_.make_workload()) {
  BF_CHECK(workload_ != nullptr);
}

FunctionInstance::~FunctionInstance() { shutdown(); }

Status FunctionInstance::cold_start_locked() {
  auto binding = resolver_(pod_);
  if (!binding.ok()) return binding.status();
  runtime_ = binding.value().runtime;
  auto context = runtime_->create_context(binding.value().device_id,
                                          session_);
  if (!context.ok()) return context.status();
  context_ = std::move(context.value());
  return workload_->setup(*context_);
}

Result<InvokeResult> FunctionInstance::invoke() {
  std::lock_guard lock(mutex_);
  const vt::Time accepted = session_.now();
  trace::SpanContext root;
  if (trace::enabled()) {
    // Mint the request's root context at the gateway (paper's FaaS front
    // door) and park it on the session so the remote library stamps every
    // downstream call with it.
    root = trace::mint_trace(pod_.spec.name, ++trace_seq_, accepted);
    session_.set_trace_context(root);
  }
  auto result = invoke_locked(root, accepted);
  if (root.is_valid()) {
    session_.set_trace_context({});
    // The root "request" span is recorded for failures too — a trace whose
    // request span has no task children is how aborted work shows up.
    trace::record(trace::Span{pod_.spec.name, "request", accepted,
                              session_.now(), root.trace_id, root.span_id,
                              0});
  }
  return result;
}

Result<InvokeResult> FunctionInstance::invoke_locked(
    const trace::SpanContext& root, vt::Time accepted) {
  // Gateway hop + HTTP handling on the function side.
  session_.compute(config_.gateway_overhead);
  const vt::Time gateway_done = session_.now();
  session_.compute(config_.handler_overhead);
  if (root.is_valid()) {
    const trace::SpanContext gw = root.child(trace::salt::kGateway);
    trace::record(trace::Span{pod_.spec.name, "gateway", accepted,
                              gateway_done, gw.trace_id, gw.span_id,
                              root.span_id});
    const trace::SpanContext hd = root.child(trace::salt::kHandler);
    trace::record(trace::Span{pod_.spec.name, "handler", gateway_done,
                              session_.now(), hd.trace_id, hd.span_id,
                              root.span_id});
  }
  const vt::Time start = session_.now();

  Status handled;
  if (config_.mode == ExecutionMode::kForkPerRequest) {
    // Classic watchdog: fork a handler, attach a fresh OpenCL context, set
    // up, serve, tear down.
    session_.compute(node_.fork_request_overhead);
    if (root.is_valid()) {
      const trace::SpanContext fk = root.child(trace::salt::kFork);
      trace::record(trace::Span{pod_.spec.name, "fork", start,
                                session_.now(), fk.trace_id, fk.span_id,
                                root.span_id});
    }
    auto binding = resolver_(pod_);
    if (!binding.ok()) {
      ++errors_;
      return binding.status();
    }
    auto context = binding.value().runtime->create_context(
        binding.value().device_id, session_);
    if (!context.ok()) {
      ++errors_;
      return context.status();
    }
    handled = workload_->setup(*context.value());
    if (handled.ok()) handled = workload_->handle_request(*context.value());
    workload_->teardown();
  } else {
    if (context_ == nullptr) {
      if (Status s = cold_start_locked(); !s.ok()) {
        ++errors_;
        return s;
      }
    }
    handled = workload_->handle_request(*context_);
  }

  if (!handled.ok()) {
    ++errors_;
    return handled;
  }
  ++served_;
  InvokeResult out;
  out.latency = session_.now() - start;
  out.completed_at = session_.now();
  out.e2e_latency = session_.now() - accepted;
  out.trace_id = root.trace_id;
  return out;
}

Status FunctionInstance::warm() {
  std::lock_guard lock(mutex_);
  if (config_.mode != ExecutionMode::kPersistent || context_ != nullptr) {
    return Status::Ok();
  }
  return cold_start_locked();
}

void FunctionInstance::advance_clock_to(vt::Time t) {
  std::lock_guard lock(mutex_);
  session_.clock().advance_to(t);
}

vt::Time FunctionInstance::now() {
  std::lock_guard lock(mutex_);
  return session_.now();
}

std::uint64_t FunctionInstance::requests_served() const { return served_; }

std::uint64_t FunctionInstance::errors() const { return errors_; }

bool FunctionInstance::cold() const { return context_ == nullptr; }

void FunctionInstance::shutdown() {
  std::lock_guard lock(mutex_);
  if (context_ != nullptr || workload_ != nullptr) {
    if (workload_ != nullptr) workload_->teardown();
    context_.reset();
  }
}

}  // namespace bf::faas
