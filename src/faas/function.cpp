#include "faas/function.h"

#include "common/log.h"

namespace bf::faas {

FunctionInstance::FunctionInstance(cluster::Pod pod,
                                   const FunctionConfig& config,
                                   BindingResolver resolver,
                                   sim::NodeProfile node)
    : pod_(std::move(pod)),
      config_(config),
      resolver_(std::move(resolver)),
      node_(std::move(node)),
      session_(pod_.spec.name),
      workload_(config_.make_workload()) {
  BF_CHECK(workload_ != nullptr);
}

FunctionInstance::~FunctionInstance() { shutdown(); }

Status FunctionInstance::cold_start_locked() {
  auto binding = resolver_(pod_);
  if (!binding.ok()) return binding.status();
  runtime_ = binding.value().runtime;
  auto context = runtime_->create_context(binding.value().device_id,
                                          session_);
  if (!context.ok()) return context.status();
  context_ = std::move(context.value());
  return workload_->setup(*context_);
}

Result<InvokeResult> FunctionInstance::invoke() {
  std::lock_guard lock(mutex_);
  // Gateway hop + HTTP handling on the function side.
  session_.compute(config_.gateway_overhead);
  session_.compute(config_.handler_overhead);
  const vt::Time start = session_.now();

  Status handled;
  if (config_.mode == ExecutionMode::kForkPerRequest) {
    // Classic watchdog: fork a handler, attach a fresh OpenCL context, set
    // up, serve, tear down.
    session_.compute(node_.fork_request_overhead);
    auto binding = resolver_(pod_);
    if (!binding.ok()) {
      ++errors_;
      return binding.status();
    }
    auto context = binding.value().runtime->create_context(
        binding.value().device_id, session_);
    if (!context.ok()) {
      ++errors_;
      return context.status();
    }
    handled = workload_->setup(*context.value());
    if (handled.ok()) handled = workload_->handle_request(*context.value());
    workload_->teardown();
  } else {
    if (context_ == nullptr) {
      if (Status s = cold_start_locked(); !s.ok()) {
        ++errors_;
        return s;
      }
    }
    handled = workload_->handle_request(*context_);
  }

  if (!handled.ok()) {
    ++errors_;
    return handled;
  }
  ++served_;
  return InvokeResult{session_.now() - start, session_.now()};
}

void FunctionInstance::advance_clock_to(vt::Time t) {
  std::lock_guard lock(mutex_);
  session_.clock().advance_to(t);
}

vt::Time FunctionInstance::now() {
  std::lock_guard lock(mutex_);
  return session_.now();
}

std::uint64_t FunctionInstance::requests_served() const { return served_; }

std::uint64_t FunctionInstance::errors() const { return errors_; }

bool FunctionInstance::cold() const { return context_ == nullptr; }

void FunctionInstance::shutdown() {
  std::lock_guard lock(mutex_);
  if (context_ != nullptr || workload_ != nullptr) {
    if (workload_ != nullptr) workload_->teardown();
    context_.reset();
  }
}

}  // namespace bf::faas
