#include "faas/gateway.h"

#include <algorithm>

#include "common/log.h"

namespace bf::faas {
namespace {

// The gateway offers at-least-once semantics, so its retryable set is wider
// than the net layer's transport-transient pair: resource exhaustion (a shm
// slot denied under pressure) and mid-task aborts are also worth another
// attempt — the request itself is re-submittable even when the underlying
// RPC was not. Genuine caller errors (invalid argument, not found) and
// terminal states still fail immediately.
bool is_invoke_retryable(ErrorCode code) {
  return is_retryable(code) || code == ErrorCode::kResourceExhausted ||
         code == ErrorCode::kAborted;
}

}  // namespace

Gateway::Gateway(cluster::Cluster* cluster, BindingResolver resolver,
                 GatewayPolicy policy)
    : cluster_(cluster), resolver_(std::move(resolver)), policy_(policy) {
  BF_CHECK(cluster_ != nullptr);
  BF_CHECK(resolver_ != nullptr);
  cluster_->add_watcher(
      [this](const cluster::WatchEvent& event) { on_event(event); });
}

Status Gateway::deploy(FunctionConfig config, unsigned replicas,
                       const std::string& node_pin) {
  if (replicas == 0) return InvalidArgument("need at least one replica");
  const std::string function = config.name;
  {
    std::lock_guard lock(mutex_);
    if (configs_.contains(function)) {
      return AlreadyExists("function '" + function + "' already deployed");
    }
    configs_.emplace(function, std::move(config));
  }
  for (unsigned i = 0; i < replicas; ++i) {
    cluster::PodSpec spec;
    spec.name = function + "-" + std::to_string(i);
    spec.function = function;
    spec.labels["faas_function"] = function;
    spec.node = node_pin;
    auto pod = cluster_->create_pod(std::move(spec));
    if (!pod.ok()) {
      return Status(pod.status().code(),
                    "deploying '" + function + "': " +
                        pod.status().message());
    }
  }
  return Status::Ok();
}

Status Gateway::remove(const std::string& function) {
  {
    std::lock_guard lock(mutex_);
    if (configs_.erase(function) == 0) {
      return NotFound("function '" + function + "' not deployed");
    }
  }
  for (const cluster::Pod& pod : cluster_->pods_of_function(function)) {
    (void)cluster_->delete_pod(pod.spec.name);
  }
  return Status::Ok();
}

Status Gateway::scale(const std::string& function, unsigned replicas) {
  std::vector<cluster::Pod> pods = cluster_->pods_of_function(function);
  {
    std::lock_guard lock(mutex_);
    if (!configs_.contains(function)) {
      return NotFound("function '" + function + "' not deployed");
    }
  }
  if (pods.size() < replicas) {
    // Find unused indices for the new pods.
    unsigned index = 0;
    while (pods.size() < replicas) {
      cluster::PodSpec spec;
      spec.name = function + "-" + std::to_string(index++);
      if (cluster_->get_pod(spec.name).has_value()) continue;
      spec.function = function;
      spec.labels["faas_function"] = function;
      auto pod = cluster_->create_pod(std::move(spec));
      if (!pod.ok()) return pod.status();
      pods.push_back(pod.value());
    }
  } else {
    while (pods.size() > replicas) {
      (void)cluster_->delete_pod(pods.back().spec.name);
      pods.pop_back();
    }
  }
  return Status::Ok();
}

Result<InvokeResult> Gateway::invoke(const std::string& function) {
  std::vector<std::shared_ptr<FunctionInstance>> candidates;
  std::size_t start = 0;
  {
    std::lock_guard lock(mutex_);
    for (const auto& [pod_name, instance] : pods_) {
      if (instance->function() == function) candidates.push_back(instance);
    }
    if (candidates.empty()) {
      return NotFound("no running instance of '" + function + "'");
    }
    start = round_robin_[function]++;
  }

  // Circuit breaker: shed the request without touching a replica while the
  // circuit is open, except for one half-open trial after the cooldown.
  // now() is read outside mutex_ (instances take their own lock).
  if (policy_.breaker_threshold > 0) {
    vt::Time now = vt::Time::zero();
    for (const auto& candidate : candidates) {
      now = vt::max(now, candidate->now());
    }
    std::lock_guard lock(mutex_);
    Breaker& breaker = breakers_[function];
    if (breaker.open &&
        now < breaker.opened_at + policy_.breaker_cooldown) {
      return Unavailable("circuit open for function '" + function +
                         "', request shed (HTTP 503)");
    }
  }

  const unsigned attempts = std::max(1u, policy_.max_invoke_attempts);
  Status last_error;
  std::shared_ptr<FunctionInstance> target;
  for (unsigned attempt = 0; attempt < attempts; ++attempt) {
    target = candidates[(start + attempt) % candidates.size()];
    if (attempt > 0 && policy_.retry_backoff.ns() > 0) {
      target->advance_clock_to(target->now() + policy_.retry_backoff);
    }
    auto result = target->invoke();
    if (result.ok()) {
      if (policy_.breaker_threshold > 0) {
        std::lock_guard lock(mutex_);
        breakers_[function] = Breaker{};  // close + reset on any success
      }
      return result;
    }
    last_error = result.status();
    if (!is_invoke_retryable(last_error.code())) break;
    if (attempt + 1 < attempts) {
      BF_LOG_WARN("faas") << "invoke of '" << function << "' failed ("
                          << last_error.to_string() << "), retrying on next "
                          << "replica (attempt " << attempt + 2 << "/"
                          << attempts << ")";
    }
  }

  if (policy_.breaker_threshold > 0) {
    const vt::Time now = target->now();
    std::lock_guard lock(mutex_);
    Breaker& breaker = breakers_[function];
    ++breaker.consecutive_failures;
    if (breaker.open) {
      breaker.opened_at = now;  // failed half-open trial: re-arm cooldown
    } else if (breaker.consecutive_failures >= policy_.breaker_threshold) {
      breaker.open = true;
      breaker.opened_at = now;
      BF_LOG_WARN("faas") << "circuit opened for function '" << function
                          << "' after " << breaker.consecutive_failures
                          << " consecutive failures";
    }
  }
  return last_error;
}

bool Gateway::is_circuit_open(const std::string& function) const {
  std::lock_guard lock(mutex_);
  auto it = breakers_.find(function);
  return it != breakers_.end() && it->second.open;
}

std::shared_ptr<FunctionInstance> Gateway::instance(
    const std::string& function, std::size_t replica) const {
  std::lock_guard lock(mutex_);
  std::vector<std::shared_ptr<FunctionInstance>> candidates;
  for (const auto& [pod_name, instance] : pods_) {
    if (instance->function() == function) candidates.push_back(instance);
  }
  if (replica >= candidates.size()) return nullptr;
  return candidates[replica];
}

std::vector<std::shared_ptr<FunctionInstance>> Gateway::instances(
    const std::string& function) const {
  std::lock_guard lock(mutex_);
  std::vector<std::shared_ptr<FunctionInstance>> out;
  for (const auto& [pod_name, instance] : pods_) {
    if (instance->function() == function) out.push_back(instance);
  }
  return out;
}

std::size_t Gateway::instance_count() const {
  std::lock_guard lock(mutex_);
  return pods_.size();
}

Status Gateway::warm(const std::string& function) {
  for (const auto& instance : instances(function)) {
    if (Status s = instance->warm(); !s.ok()) return s;
  }
  return Status::Ok();
}

void Gateway::shutdown_instances() {
  std::map<std::string, std::shared_ptr<FunctionInstance>> pods;
  {
    std::lock_guard lock(mutex_);
    pods = pods_;
  }
  for (auto& [name, instance] : pods) instance->shutdown();
}

void Gateway::on_event(const cluster::WatchEvent& event) {
  std::lock_guard lock(mutex_);
  const std::string& pod_name = event.pod.spec.name;
  if (event.type == cluster::WatchEvent::Type::kDeleted) {
    auto it = pods_.find(pod_name);
    if (it != pods_.end()) {
      it->second->shutdown();
      pods_.erase(it);
    }
    return;
  }
  auto config = configs_.find(event.pod.spec.function);
  if (config == configs_.end()) return;  // not a faas pod
  const cluster::NodeSpec* node = cluster_->find_node(event.pod.spec.node);
  if (node == nullptr) {
    BF_LOG_WARN("faas") << "pod " << pod_name << " on unknown node '"
                        << event.pod.spec.node << "'";
    return;
  }
  pods_[pod_name] = std::make_shared<FunctionInstance>(
      event.pod, config->second, resolver_, node->profile);
}

}  // namespace bf::faas
