// Serverless function instances (the OpenFaaS substrate).
//
// Two execution modes, matching how the paper's two deployments behave:
//  * kPersistent — of-watchdog style: the function process stays warm, the
//    OpenCL context is created once at cold start. All BlastFunction
//    deployments (and the PipeCNN native deployment, whose 233 MB of weights
//    make per-request setup impossible) run this way.
//  * kForkPerRequest — classic-watchdog style: each request forks a fresh
//    handler process which attaches its own OpenCL context (fork cost +
//    device attach). The paper's native Sobel/MM latencies carry this
//    per-request runtime overhead.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "cluster/cluster.h"
#include "common/status.h"
#include "ocl/runtime.h"
#include "trace/span.h"
#include "workloads/workload.h"

namespace bf::faas {

enum class ExecutionMode { kPersistent, kForkPerRequest };

// How a pod reaches its OpenCL runtime. The experiment fabric resolves this
// from the pod's env (BlastFunction: the Registry-patched manager address)
// or from the pod's node (native: local boards).
struct RuntimeBinding {
  std::shared_ptr<ocl::Runtime> runtime;
  std::string device_id;
};
using BindingResolver =
    std::function<Result<RuntimeBinding>(const cluster::Pod&)>;

struct FunctionConfig {
  std::string name;  // e.g. "sobel-1"
  ExecutionMode mode = ExecutionMode::kPersistent;
  workloads::WorkloadFactory make_workload;
  // Fixed modeled per-request path costs (gateway hop + HTTP handling).
  vt::Duration gateway_overhead = vt::Duration::micros(600);
  vt::Duration handler_overhead = vt::Duration::micros(400);
};

struct InvokeResult {
  vt::Duration latency;
  vt::Time completed_at;
  // End-to-end latency as the gateway reports it: from request acceptance
  // (before the gateway/handler overheads) to completion — exactly the
  // request's root trace span, so critical_path() totals match it.
  vt::Duration e2e_latency;
  // Root trace id of this request (0 when tracing is disabled).
  std::uint64_t trace_id = 0;
};

class FunctionInstance {
 public:
  FunctionInstance(cluster::Pod pod, const FunctionConfig& config,
                   BindingResolver resolver, sim::NodeProfile node);
  ~FunctionInstance();

  FunctionInstance(const FunctionInstance&) = delete;
  FunctionInstance& operator=(const FunctionInstance&) = delete;

  [[nodiscard]] const cluster::Pod& pod() const { return pod_; }
  [[nodiscard]] const std::string& function() const {
    return pod_.spec.function;
  }

  // Serves one request on the caller's thread (the paper's 1-connection-per-
  // function closed loop). Thread safe; concurrent invokes serialize.
  Result<InvokeResult> invoke();

  // Idle time between requests (open/rate-limited load): moves the virtual
  // clock forward without doing work.
  void advance_clock_to(vt::Time t);
  [[nodiscard]] vt::Time now();

  [[nodiscard]] std::uint64_t requests_served() const;
  [[nodiscard]] std::uint64_t errors() const;
  [[nodiscard]] bool cold() const;

  // Eagerly performs the persistent-mode cold start (context creation +
  // workload setup) that invoke() would otherwise do lazily on the first
  // request. No-op when already warm or in fork-per-request mode. Warming
  // sequentially before driving load makes every tenant's device-manager
  // session (and gate registration) exist up front, so cross-tenant task
  // order never depends on which driver thread connected first.
  Status warm();

  // Tears down the OpenCL context (end of experiment / pod deletion) so the
  // device manager's gate no longer waits on this tenant.
  void shutdown();

 private:
  Status cold_start_locked();
  Result<InvokeResult> invoke_locked(const trace::SpanContext& root,
                                     vt::Time accepted);

  cluster::Pod pod_;
  FunctionConfig config_;
  BindingResolver resolver_;
  sim::NodeProfile node_;

  std::mutex mutex_;
  ocl::Session session_;
  workloads::WorkloadPtr workload_;
  std::shared_ptr<ocl::Runtime> runtime_;
  std::unique_ptr<ocl::Context> context_;  // persistent mode
  std::uint64_t served_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t trace_seq_ = 0;  // per-pod request counter for trace minting
};

}  // namespace bf::faas
