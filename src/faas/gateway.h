// OpenFaaS-style gateway: deploys functions as pods, tracks their running
// instances through cluster watch events (so Registry-driven migrations
// transparently rebind instances to new devices), routes invocations and
// offers simple replica scaling.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "faas/function.h"

namespace bf::faas {

class Gateway {
 public:
  Gateway(cluster::Cluster* cluster, BindingResolver resolver);

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  // Deploys `replicas` pods named "<function>-<i>". Instances appear via the
  // cluster watch. `node_pin` forces the node (used by the native baseline,
  // which binds each function to the node holding its board); empty lets the
  // Registry/scheduler decide.
  Status deploy(FunctionConfig config, unsigned replicas = 1,
                const std::string& node_pin = "");
  Status remove(const std::string& function);
  Status scale(const std::string& function, unsigned replicas);

  // Routes one request to an instance of the function (round robin across
  // replicas). Runs on the caller's thread.
  Result<InvokeResult> invoke(const std::string& function);

  // Stable handle for load drivers that pin one connection per function.
  [[nodiscard]] std::shared_ptr<FunctionInstance> instance(
      const std::string& function, std::size_t replica = 0) const;

  [[nodiscard]] std::vector<std::shared_ptr<FunctionInstance>> instances(
      const std::string& function) const;
  [[nodiscard]] std::size_t instance_count() const;

  // Destroys every instance's OpenCL context (end of experiment).
  void shutdown_instances();

 private:
  void on_event(const cluster::WatchEvent& event);

  cluster::Cluster* cluster_;
  BindingResolver resolver_;

  mutable std::mutex mutex_;
  std::map<std::string, FunctionConfig> configs_;
  // pod name -> instance
  std::map<std::string, std::shared_ptr<FunctionInstance>> pods_;
  std::map<std::string, std::size_t> round_robin_;
};

}  // namespace bf::faas
