// OpenFaaS-style gateway: deploys functions as pods, tracks their running
// instances through cluster watch events (so Registry-driven migrations
// transparently rebind instances to new devices), routes invocations and
// offers simple replica scaling.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "faas/function.h"

namespace bf::faas {

// Graceful degradation knobs. Defaults are zero-cost: one attempt, breaker
// disabled — modeled timelines are bit-identical to the pre-policy gateway.
struct GatewayPolicy {
  // Bounded retry: total invoke attempts per request, round-robined across
  // replicas. 1 = fail on the first error (no retry). Only transient
  // failures (kUnavailable, kDeadlineExceeded, kResourceExhausted,
  // kAborted — at-least-once request semantics) consume extra attempts.
  unsigned max_invoke_attempts = 1;
  // Modeled pause charged to the retrying replica's clock between attempts.
  vt::Duration retry_backoff = vt::Duration::millis(2);
  // Per-function circuit breaker: after this many *consecutive* failed
  // requests the gateway fast-fails with kUnavailable ("HTTP 503") instead
  // of touching a replica. 0 disables the breaker.
  unsigned breaker_threshold = 0;
  // An open circuit admits one half-open trial request after this long; a
  // success closes the circuit, a failure re-arms the cooldown.
  vt::Duration breaker_cooldown = vt::Duration::seconds(1);
};

class Gateway {
 public:
  Gateway(cluster::Cluster* cluster, BindingResolver resolver,
          GatewayPolicy policy = {});

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  // Deploys `replicas` pods named "<function>-<i>". Instances appear via the
  // cluster watch. `node_pin` forces the node (used by the native baseline,
  // which binds each function to the node holding its board); empty lets the
  // Registry/scheduler decide.
  Status deploy(FunctionConfig config, unsigned replicas = 1,
                const std::string& node_pin = "");
  Status remove(const std::string& function);
  Status scale(const std::string& function, unsigned replicas);

  // Routes one request to an instance of the function (round robin across
  // replicas). Runs on the caller's thread. Applies GatewayPolicy: retryable
  // failures are retried on the next replica up to max_invoke_attempts, and
  // once the function's circuit is open requests fast-fail kUnavailable
  // without reaching any replica.
  Result<InvokeResult> invoke(const std::string& function);

  // True while the function's breaker is open (requests are being shed).
  [[nodiscard]] bool is_circuit_open(const std::string& function) const;

  // Stable handle for load drivers that pin one connection per function.
  [[nodiscard]] std::shared_ptr<FunctionInstance> instance(
      const std::string& function, std::size_t replica = 0) const;

  [[nodiscard]] std::vector<std::shared_ptr<FunctionInstance>> instances(
      const std::string& function) const;
  [[nodiscard]] std::size_t instance_count() const;

  // Eagerly cold-starts every replica of the function, in replica order
  // (FunctionInstance::warm). Called sequentially before driving load it
  // makes session/gate registration order deterministic instead of a race
  // between driver threads. Returns the first failure.
  Status warm(const std::string& function);

  // Destroys every instance's OpenCL context (end of experiment).
  void shutdown_instances();

 private:
  struct Breaker {
    unsigned consecutive_failures = 0;
    bool open = false;
    vt::Time opened_at;  // cooldown anchor (modeled time)
  };

  void on_event(const cluster::WatchEvent& event);

  cluster::Cluster* cluster_;
  BindingResolver resolver_;
  GatewayPolicy policy_;

  mutable std::mutex mutex_;
  std::map<std::string, FunctionConfig> configs_;
  // pod name -> instance
  std::map<std::string, std::shared_ptr<FunctionInstance>> pods_;
  std::map<std::string, std::size_t> round_robin_;
  std::map<std::string, Breaker> breakers_;
};

}  // namespace bf::faas
