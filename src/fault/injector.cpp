#include "fault/injector.h"

namespace bf::fault {

namespace {

// Registry of the named Site constants (built during static init, before
// any threads exist; the mutex guards against hypothetical dynamic sites).
struct SiteRegistry {
  std::mutex mutex;
  std::vector<site::Site*> sites;
};

SiteRegistry& site_registry() {
  static auto* registry = new SiteRegistry();  // never destroyed
  return *registry;
}

}  // namespace

namespace internal {

std::atomic<bool> g_armed{false};

void register_site(site::Site* site) {
  SiteRegistry& registry = site_registry();
  std::lock_guard lock(registry.mutex);
  registry.sites.push_back(site);
}

}  // namespace internal

namespace site {

Site::Site(const char* name) : name_(name) { internal::register_site(this); }

}  // namespace site

void Injector::update_site_flag(const std::string& name, bool value) {
  SiteRegistry& registry = site_registry();
  std::lock_guard lock(registry.mutex);
  for (site::Site* site : registry.sites) {
    if (name == site->name_) {
      site->armed_.store(value, std::memory_order_relaxed);
    }
  }
}

void Injector::clear_site_flags() {
  SiteRegistry& registry = site_registry();
  std::lock_guard lock(registry.mutex);
  for (site::Site* site : registry.sites) {
    site->armed_.store(false, std::memory_order_relaxed);
  }
}

namespace {

// FNV-1a, folded with the seed through splitmix64 inside Rng's constructor.
// Each site gets an independent, reproducible decision stream.
std::uint64_t site_stream_seed(std::uint64_t seed, const std::string& site) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return seed ^ h;
}

}  // namespace

Injector& Injector::instance() {
  static Injector* injector = new Injector();  // never destroyed
  return *injector;
}

void Injector::arm(std::uint64_t seed) {
  {
    std::lock_guard lock(mutex_);
    seed_ = seed;
    global_budget_ = kUnlimited;
    total_fires_ = 0;
    sites_.clear();
    fire_log_.clear();
  }
  clear_site_flags();  // a fresh plan starts with no triggers installed
  internal::g_armed.store(true, std::memory_order_relaxed);
}

void Injector::disarm() {
  internal::g_armed.store(false, std::memory_order_relaxed);
  clear_site_flags();
  std::lock_guard lock(mutex_);
  sites_.clear();
  fire_log_.clear();
  total_fires_ = 0;
  global_budget_ = kUnlimited;
}

void Injector::set_trigger(const std::string& site, Trigger trigger) {
  {
    std::lock_guard lock(mutex_);
    SiteState& state = state_locked(site);
    state.trigger = trigger;
    state.triggered = true;
  }
  update_site_flag(site, true);
}

void Injector::clear_trigger(const std::string& site) {
  {
    std::lock_guard lock(mutex_);
    auto it = sites_.find(site);
    if (it != sites_.end()) it->second.triggered = false;
  }
  update_site_flag(site, false);
}

void Injector::set_global_budget(std::uint64_t fires) {
  std::lock_guard lock(mutex_);
  global_budget_ = fires;
}

Injector::SiteState& Injector::state_locked(const std::string& site) {
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    it = sites_.emplace(site, SiteState{}).first;
    it->second.rng = Rng(site_stream_seed(seed_, site));
  }
  return it->second;
}

bool Injector::should_fire_slow(const char* site_name) {
  std::lock_guard lock(mutex_);
  SiteState& state = state_locked(site_name);
  const std::uint64_t ordinal = state.hits++;
  if (!state.triggered) return false;
  // The RNG draw happens on every triggered hit — including budget-capped
  // and warm-up ones — so a decision depends only on (seed, site, ordinal),
  // never on how many earlier hits actually fired.
  const double draw = state.rng.next_double();
  if (ordinal < state.trigger.after_hits) return false;
  if (state.fires >= state.trigger.budget) return false;
  if (total_fires_ >= global_budget_) return false;
  if (draw >= state.trigger.probability) return false;
  ++state.fires;
  ++total_fires_;
  fire_log_.push_back(std::string(site_name) + ":" +
                      std::to_string(ordinal));
  return true;
}

std::uint64_t Injector::hits(const std::string& site) const {
  std::lock_guard lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

std::uint64_t Injector::fires(const std::string& site) const {
  std::lock_guard lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

std::uint64_t Injector::total_fires() const {
  std::lock_guard lock(mutex_);
  return total_fires_;
}

std::vector<std::string> Injector::fire_log() const {
  std::lock_guard lock(mutex_);
  return fire_log_;
}

}  // namespace bf::fault
