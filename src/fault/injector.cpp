#include "fault/injector.h"

namespace bf::fault {

namespace internal {
std::atomic<bool> g_armed{false};
}  // namespace internal

namespace {

// FNV-1a, folded with the seed through splitmix64 inside Rng's constructor.
// Each site gets an independent, reproducible decision stream.
std::uint64_t site_stream_seed(std::uint64_t seed, const std::string& site) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return seed ^ h;
}

}  // namespace

Injector& Injector::instance() {
  static Injector* injector = new Injector();  // never destroyed
  return *injector;
}

void Injector::arm(std::uint64_t seed) {
  {
    std::lock_guard lock(mutex_);
    seed_ = seed;
    global_budget_ = kUnlimited;
    total_fires_ = 0;
    sites_.clear();
    fire_log_.clear();
  }
  internal::g_armed.store(true, std::memory_order_relaxed);
}

void Injector::disarm() {
  internal::g_armed.store(false, std::memory_order_relaxed);
  std::lock_guard lock(mutex_);
  sites_.clear();
  fire_log_.clear();
  total_fires_ = 0;
  global_budget_ = kUnlimited;
}

void Injector::set_trigger(const std::string& site, Trigger trigger) {
  std::lock_guard lock(mutex_);
  SiteState& state = state_locked(site);
  state.trigger = trigger;
  state.triggered = true;
}

void Injector::clear_trigger(const std::string& site) {
  std::lock_guard lock(mutex_);
  auto it = sites_.find(site);
  if (it != sites_.end()) it->second.triggered = false;
}

void Injector::set_global_budget(std::uint64_t fires) {
  std::lock_guard lock(mutex_);
  global_budget_ = fires;
}

Injector::SiteState& Injector::state_locked(const std::string& site) {
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    it = sites_.emplace(site, SiteState{}).first;
    it->second.rng = Rng(site_stream_seed(seed_, site));
  }
  return it->second;
}

bool Injector::should_fire_slow(const char* site_name) {
  std::lock_guard lock(mutex_);
  SiteState& state = state_locked(site_name);
  const std::uint64_t ordinal = state.hits++;
  if (!state.triggered) return false;
  // The RNG draw happens on every triggered hit — including budget-capped
  // and warm-up ones — so a decision depends only on (seed, site, ordinal),
  // never on how many earlier hits actually fired.
  const double draw = state.rng.next_double();
  if (ordinal < state.trigger.after_hits) return false;
  if (state.fires >= state.trigger.budget) return false;
  if (total_fires_ >= global_budget_) return false;
  if (draw >= state.trigger.probability) return false;
  ++state.fires;
  ++total_fires_;
  fire_log_.push_back(std::string(site_name) + ":" +
                      std::to_string(ordinal));
  return true;
}

std::uint64_t Injector::hits(const std::string& site) const {
  std::lock_guard lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

std::uint64_t Injector::fires(const std::string& site) const {
  std::lock_guard lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

std::uint64_t Injector::total_fires() const {
  std::lock_guard lock(mutex_);
  return total_fires_;
}

std::vector<std::string> Injector::fire_log() const {
  std::lock_guard lock(mutex_);
  return fire_log_;
}

}  // namespace bf::fault
