// Deterministic fault injection for the control and data planes.
//
// The paper's correctness claims — per-call event state machines (§III-A),
// the atomic task FIFO gated by virtual time (§III-B), create-before-delete
// migration (§III-C) — are only meaningful if they hold when components
// fail. This subsystem lets tests inject failures at *named sites* threaded
// through the layers where those guarantees are load-bearing, with three
// properties:
//
//   * Deterministic: every decision is a pure function of (seed, site,
//     hit ordinal). Each site keeps its own RNG stream, so two runs with the
//     same seed and the same per-site hit sequences make identical
//     decisions regardless of cross-site thread interleaving.
//   * Budgeted: triggers carry per-site fire budgets plus an optional
//     process-wide cap, so a fault storm cannot starve a scenario forever.
//   * Zero-cost when disarmed: the hot-path check is a single relaxed
//     atomic load of a process-wide flag (see bf::fault::should_fire); no
//     lock, no map lookup, no RNG draw. Production binaries never pay for
//     the instrumentation.
//
// Typical use (tests):
//
//   fault::ScopedInjection inject(seed);
//   inject.site(fault::site::kShmStageFail, {.probability = 0.2});
//   ... drive the workload; sites fire deterministically ...
//
// The injector is process-wide (like the real failure surface it models);
// ScopedInjection arms it on construction and disarms on destruction so
// tests cannot leak armed state into each other.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"

namespace bf::fault {

class Injector;

// Named injection sites. Using constants (rather than ad-hoc strings at the
// call sites) keeps tests and instrumentation in agreement; the name encodes
// subsystem.operation.fault-kind.
namespace site {

// A named site with its own arm flag. The flag is flipped by the Injector
// when a trigger is (un)installed for the name, so an armed run pays the
// locked slow path only at sites the active plan actually names — every
// other site stays at two relaxed loads (global + per-site). Converts to
// its name so string-keyed APIs (set_trigger, logs, tests) are unchanged.
// Note the per-site fast path means armed-but-untriggered sites do not
// record hits; hit ordinals only ever count at triggered sites.
class Site {
 public:
  explicit Site(const char* name);

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  [[nodiscard]] const char* name() const { return name_; }
  // Implicit conversions keep string-keyed APIs (set_trigger, hits, logs,
  // tests) source-compatible with the former const char* constants.
  // NOLINTNEXTLINE(google-explicit-constructor)
  operator const char*() const { return name_; }
  // NOLINTNEXTLINE(google-explicit-constructor)
  operator std::string() const { return name_; }
  [[nodiscard]] bool triggered() const {
    return armed_.load(std::memory_order_relaxed);
  }

 private:
  friend class bf::fault::Injector;
  const char* name_;
  std::atomic<bool> armed_{false};
};

// net: the gRPC-analogue fabric. The two *drop-toward-client* sites
// (drop_complete, reply.drop) wedge a caller that has no deadline armed —
// only use them in recovery tests that pass CallOptions with a timeout.
inline Site kNetSendConnLoss{"net.send.conn_loss"};
inline Site kNetSendDelay{"net.send.delay"};
inline Site kNetNotifyDropEnqueued{"net.notify.drop_enqueued"};
inline Site kNetNotifyDropComplete{"net.notify.drop_complete"};
inline Site kNetNotifyDupComplete{"net.notify.dup_complete"};
inline Site kNetReplyDrop{"net.reply.drop"};
// shm: the shared-memory data plane.
inline Site kShmGrantDeny{"shm.grant.deny"};
inline Site kShmAttachFail{"shm.attach.fail"};
inline Site kShmStageFail{"shm.stage.fail"};
// devmgr: the Device Manager's worker and central queue.
inline Site kDevmgrWorkerStall{"devmgr.worker.stall"};
inline Site kDevmgrTaskAbort{"devmgr.task.abort"};
inline Site kDevmgrReconfigAbort{"devmgr.reconfig.abort"};
// remote: the Remote OpenCL Library's completion pump.
inline Site kClusterReplaceFail{"cluster.replace.fail"};

inline Site kRemotePumpReorder{"remote.pump.reorder"};
inline Site kRemotePumpDupComplete{"remote.pump.dup_complete"};
inline Site kRemotePumpDupEnqueued{"remote.pump.dup_enqueued"};
}  // namespace site

inline constexpr std::uint64_t kUnlimited =
    std::numeric_limits<std::uint64_t>::max();

// When and how often a site fires once armed.
struct Trigger {
  double probability = 1.0;        // per-hit fire chance past after_hits
  std::uint64_t after_hits = 0;    // skip the first N hits entirely
  std::uint64_t budget = kUnlimited;  // max fires at this site
};

// Process-wide armed flag. Kept outside the Injector so the inline fast
// path touches exactly one cache line and nothing else.
namespace internal {
extern std::atomic<bool> g_armed;
// Site self-registration (called from site::Site's constructor) so the
// Injector can flip per-site arm flags by name.
void register_site(site::Site* site);
}  // namespace internal

[[nodiscard]] inline bool armed() {
  return internal::g_armed.load(std::memory_order_relaxed);
}

class Injector {
 public:
  static Injector& instance();

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  // Arms the injector with a deterministic seed. Resets all site state,
  // counters and the global budget. Triggers must be (re)installed after
  // arming.
  void arm(std::uint64_t seed);

  // Disarms and clears every trigger and counter. Sites degrade back to the
  // single-atomic-load fast path.
  void disarm();

  // Installs / replaces the trigger for a site. A site without a trigger
  // never fires.
  void set_trigger(const std::string& site, Trigger trigger);
  void clear_trigger(const std::string& site);

  // Caps total fires across all sites (fault-storm bound). kUnlimited by
  // default.
  void set_global_budget(std::uint64_t fires);

  // Slow path behind bf::fault::should_fire(); do not call directly from
  // instrumented code.
  [[nodiscard]] bool should_fire_slow(const char* site_name);

  // --- introspection (tests) ------------------------------------------------
  [[nodiscard]] std::uint64_t hits(const std::string& site) const;
  [[nodiscard]] std::uint64_t fires(const std::string& site) const;
  [[nodiscard]] std::uint64_t total_fires() const;
  // "site:hit_ordinal" for every fire, in per-site deterministic order
  // (cross-site order follows real scheduling; sort before comparing).
  [[nodiscard]] std::vector<std::string> fire_log() const;

 private:
  Injector() = default;

  struct SiteState {
    Trigger trigger;
    Rng rng{0};
    bool triggered = false;  // has an installed trigger
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  // Returns the site's state, creating it (with an RNG stream derived from
  // the seed and the site name) on first touch. Requires mutex_ held.
  SiteState& state_locked(const std::string& site);

  // Flip the per-site arm flag of the registered site::Site constant with
  // this name (no-op for dynamic string names). Takes the registry lock,
  // never mutex_ — call outside the state lock.
  static void update_site_flag(const std::string& name, bool value);
  static void clear_site_flags();

  mutable std::mutex mutex_;
  std::uint64_t seed_ = 0;
  std::uint64_t global_budget_ = kUnlimited;
  std::uint64_t total_fires_ = 0;
  std::map<std::string, SiteState> sites_;
  std::vector<std::string> fire_log_;
};

// The instrumentation entry point. Disarmed cost: one relaxed atomic load;
// armed but untriggered (the active plan does not name this site): two.
[[nodiscard]] inline bool should_fire(const site::Site& site) {
  return armed() && site.triggered() &&
         Injector::instance().should_fire_slow(site.name());
}

// String-keyed fallback for dynamic site names (tests): armed runs pay the
// locked lookup on every hit, and hits are recorded even without a trigger.
[[nodiscard]] inline bool should_fire(const char* site_name) {
  return armed() && Injector::instance().should_fire_slow(site_name);
}

// RAII arm/disarm with fluent trigger installation:
//
//   fault::ScopedInjection inject(42);
//   inject.site(fault::site::kNetSendConnLoss, {.after_hits = 3});
class ScopedInjection {
 public:
  explicit ScopedInjection(std::uint64_t seed) {
    Injector::instance().arm(seed);
  }
  ~ScopedInjection() { Injector::instance().disarm(); }

  ScopedInjection(const ScopedInjection&) = delete;
  ScopedInjection& operator=(const ScopedInjection&) = delete;

  ScopedInjection& site(const std::string& name, Trigger trigger) {
    Injector::instance().set_trigger(name, trigger);
    return *this;
  }

  ScopedInjection& global_budget(std::uint64_t fires) {
    Injector::instance().set_global_budget(fires);
    return *this;
  }
};

}  // namespace bf::fault
