// Spector Matrix Multiply (paper §IV): 1 compute unit, 8 work-items, fully
// unrolled 16x16 block — the suite's best design. One request = upload two
// NxN float matrices, multiply on the device, download the product.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "workloads/workload.h"

namespace bf::workloads {

class MatMulWorkload final : public Workload {
 public:
  // Default size calibrated to the paper's load experiments (Table III):
  // ~5 ms of device time per request.
  explicit MatMulWorkload(std::size_t n = 448);

  [[nodiscard]] std::string name() const override { return "mm"; }
  [[nodiscard]] std::string bitstream() const override;
  [[nodiscard]] std::string accelerator() const override { return "mm"; }

  Status setup(ocl::Context& context) override;
  Status handle_request(ocl::Context& context) override;
  void teardown() override {
    queue_.reset();
    buf_a_ = {};
    buf_b_ = {};
    buf_c_ = {};
    kernel_ = {};
  }

  [[nodiscard]] std::uint64_t request_bytes_in() const override {
    return 2ULL * n_ * n_ * sizeof(float);
  }
  [[nodiscard]] std::uint64_t request_bytes_out() const override {
    return static_cast<std::uint64_t>(n_) * n_ * sizeof(float);
  }

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] const std::vector<float>& lhs() const { return a_; }
  [[nodiscard]] const std::vector<float>& rhs() const { return b_; }
  [[nodiscard]] const std::vector<float>& last_output() const { return c_; }

 private:
  std::size_t n_;
  std::vector<float> a_;
  std::vector<float> b_;
  std::vector<float> c_;

  ocl::Buffer buf_a_;
  ocl::Buffer buf_b_;
  ocl::Buffer buf_c_;
  ocl::Kernel kernel_;
  std::unique_ptr<ocl::CommandQueue> queue_;
};

// CPU reference GEMM for correctness checks.
std::vector<float> matmul_reference(const std::vector<float>& a,
                                    const std::vector<float>& b,
                                    std::size_t n);

}  // namespace bf::workloads
