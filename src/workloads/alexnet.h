// PipeCNN running AlexNet (paper §IV / reference [18]).
//
// The host application mirrors PipeCNN's structure: it "calls several
// kernels iteratively with multiple parallel command queues" — one queue
// carries convolution/fully-connected launches, a second carries the
// pooling/LRN stages, and the host synchronizes after every layer. Under
// BlastFunction this produces one task per layer, which is exactly why the
// paper observes a larger relative overhead for PipeCNN than for the
// single-kernel benchmarks (Table IV).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "workloads/workload.h"

namespace bf::workloads {

struct AlexNetOptions {
  // Divides every channel count (and the FC widths) for fast functional
  // tests; 1 = the real network (~724M MACs with grouping folded in, ~233 MB
  // of weights).
  unsigned channel_scale = 1;
  // Upload real random weights and keep results (functional runs). When
  // false the weight uploads still happen (and are charged) but contents are
  // not generated — used by the timing-only load experiments.
  bool functional = false;
};

class AlexNetWorkload final : public Workload {
 public:
  explicit AlexNetWorkload(AlexNetOptions options = {});

  [[nodiscard]] std::string name() const override { return "alexnet"; }
  [[nodiscard]] std::string bitstream() const override;
  [[nodiscard]] std::string accelerator() const override {
    return "pipecnn_alexnet";
  }

  Status setup(ocl::Context& context) override;
  Status handle_request(ocl::Context& context) override;
  void teardown() override {
    exec_queue_.reset();
    data_queue_.reset();
    input_buffer_ = {};
    act_[0] = {};
    act_[1] = {};
    for (Step& step : steps_) {
      step.weights = {};
      step.bias = {};
    }
  }

  [[nodiscard]] std::uint64_t request_bytes_in() const override;
  [[nodiscard]] std::uint64_t request_bytes_out() const override;

  [[nodiscard]] const std::vector<float>& last_logits() const {
    return logits_;
  }
  [[nodiscard]] std::size_t layer_count() const { return steps_.size(); }
  [[nodiscard]] std::uint64_t total_macs() const;

 private:
  struct Step {
    enum class Kind { kConv, kPool, kLrn, kFc };
    Kind kind = Kind::kConv;
    // Dimensions (post channel scaling).
    std::int64_t in_c = 0, in_h = 0, in_w = 0;
    std::int64_t out_c = 0, out_h = 0, out_w = 0;
    std::int64_t k = 0, stride = 1, pad = 0;
    bool relu = true;
    // Assigned at setup.
    ocl::Buffer weights;
    ocl::Buffer bias;
  };

  void build_steps();
  [[nodiscard]] std::int64_t scaled(std::int64_t channels) const;

  AlexNetOptions options_;
  std::vector<Step> steps_;
  std::vector<float> input_;
  std::vector<float> logits_;

  ocl::Buffer input_buffer_;
  ocl::Buffer act_[2];  // ping-pong activations
  ocl::Kernel conv_kernel_;
  ocl::Kernel fc_kernel_;
  ocl::Kernel pool_kernel_;
  ocl::Kernel lrn_kernel_;
  std::unique_ptr<ocl::CommandQueue> exec_queue_;  // conv / fc
  std::unique_ptr<ocl::CommandQueue> data_queue_;  // pool / lrn / IO
};

}  // namespace bf::workloads
