#include "workloads/matmul.h"

#include "common/rng.h"
#include "sim/bitstream.h"

namespace bf::workloads {

MatMulWorkload::MatMulWorkload(std::size_t n) : n_(n) {
  BF_CHECK(n_ > 0);
  a_.resize(n_ * n_);
  b_.resize(n_ * n_);
  c_.assign(n_ * n_, 0.0F);
  Rng rng(n_ * 1315423911ULL);
  for (float& value : a_) {
    value = static_cast<float>(rng.next_double(-1.0, 1.0));
  }
  for (float& value : b_) {
    value = static_cast<float>(rng.next_double(-1.0, 1.0));
  }
}

std::string MatMulWorkload::bitstream() const {
  return sim::BitstreamLibrary::kMatMul;
}

Status MatMulWorkload::setup(ocl::Context& context) {
  if (Status s = context.program(bitstream()); !s.ok()) return s;
  const std::uint64_t bytes = static_cast<std::uint64_t>(n_) * n_ *
                              sizeof(float);
  auto a = context.create_buffer(bytes);
  if (!a.ok()) return a.status();
  buf_a_ = a.value();
  auto b = context.create_buffer(bytes);
  if (!b.ok()) return b.status();
  buf_b_ = b.value();
  auto c = context.create_buffer(bytes);
  if (!c.ok()) return c.status();
  buf_c_ = c.value();
  auto kernel = context.create_kernel("mm");
  if (!kernel.ok()) return kernel.status();
  kernel_ = kernel.value();
  auto queue = context.create_queue();
  if (!queue.ok()) return queue.status();
  queue_ = std::move(queue.value());
  return Status::Ok();
}

Status MatMulWorkload::handle_request(ocl::Context& context) {
  (void)context;
  BF_CHECK(queue_ != nullptr);
  auto write_a = queue_->enqueue_write(
      buf_a_, 0, as_bytes(a_.data(), a_.size() * sizeof(float)),
      /*blocking=*/false);
  if (!write_a.ok()) return write_a.status();
  auto write_b = queue_->enqueue_write(
      buf_b_, 0, as_bytes(b_.data(), b_.size() * sizeof(float)),
      /*blocking=*/false);
  if (!write_b.ok()) return write_b.status();

  kernel_.set_arg(0, buf_a_);
  kernel_.set_arg(1, buf_b_);
  kernel_.set_arg(2, buf_c_);
  kernel_.set_arg(3, static_cast<std::int64_t>(n_));
  auto launch = queue_->enqueue_kernel(kernel_, {n_, n_, 1});
  if (!launch.ok()) return launch.status();

  auto read = queue_->enqueue_read(
      buf_c_, 0, as_writable_bytes(c_.data(), c_.size() * sizeof(float)),
      /*blocking=*/true);
  if (!read.ok()) return read.status();
  return Status::Ok();
}

std::vector<float> matmul_reference(const std::vector<float>& a,
                                    const std::vector<float>& b,
                                    std::size_t n) {
  std::vector<float> out(n * n, 0.0F);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      const float aik = a[i * n + k];
      for (std::size_t j = 0; j < n; ++j) {
        out[i * n + j] += aik * b[k * n + j];
      }
    }
  }
  return out;
}

}  // namespace bf::workloads
