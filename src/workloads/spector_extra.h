// Additional Spector-suite workloads (beyond the paper's evaluated three):
// FIR filtering and image histogramming. Useful for mixed-fleet experiments
// where more than two accelerator types compete for boards.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "workloads/workload.h"

namespace bf::workloads {

// FIR filter: per request, upload a float signal, convolve with the
// (setup-time) coefficient taps, download the filtered signal.
class FirWorkload final : public Workload {
 public:
  explicit FirWorkload(std::size_t samples = 1 << 20, std::size_t taps = 64);

  [[nodiscard]] std::string name() const override { return "fir"; }
  [[nodiscard]] std::string bitstream() const override;
  [[nodiscard]] std::string accelerator() const override { return "fir"; }

  Status setup(ocl::Context& context) override;
  Status handle_request(ocl::Context& context) override;
  void teardown() override {
    queue_.reset();
    in_buffer_ = {};
    coeff_buffer_ = {};
    out_buffer_ = {};
    kernel_ = {};
  }

  [[nodiscard]] std::uint64_t request_bytes_in() const override {
    return samples_ * sizeof(float);
  }
  [[nodiscard]] std::uint64_t request_bytes_out() const override {
    return samples_ * sizeof(float);
  }

  [[nodiscard]] const std::vector<float>& signal() const { return signal_; }
  [[nodiscard]] const std::vector<float>& taps() const { return taps_; }
  [[nodiscard]] const std::vector<float>& last_output() const {
    return output_;
  }

 private:
  std::size_t samples_;
  std::vector<float> signal_;
  std::vector<float> taps_;
  std::vector<float> output_;

  ocl::Buffer in_buffer_;
  ocl::Buffer coeff_buffer_;
  ocl::Buffer out_buffer_;
  ocl::Kernel kernel_;
  std::unique_ptr<ocl::CommandQueue> queue_;
};

// CPU reference for the FIR kernel semantics (zero-padded history).
std::vector<float> fir_reference(const std::vector<float>& signal,
                                 const std::vector<float>& taps);

// Histogram: per request, upload a u32 image, compute the 256-bin histogram
// of the low byte, download the bins.
class HistogramWorkload final : public Workload {
 public:
  explicit HistogramWorkload(std::size_t pixels = 1 << 21);

  [[nodiscard]] std::string name() const override { return "histogram"; }
  [[nodiscard]] std::string bitstream() const override;
  [[nodiscard]] std::string accelerator() const override {
    return "histogram";
  }

  Status setup(ocl::Context& context) override;
  Status handle_request(ocl::Context& context) override;
  void teardown() override {
    queue_.reset();
    in_buffer_ = {};
    hist_buffer_ = {};
    kernel_ = {};
  }

  [[nodiscard]] std::uint64_t request_bytes_in() const override {
    return pixels_ * sizeof(std::uint32_t);
  }
  [[nodiscard]] std::uint64_t request_bytes_out() const override {
    return 256 * sizeof(std::uint32_t);
  }

  [[nodiscard]] const std::vector<std::uint32_t>& image() const {
    return image_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& last_histogram() const {
    return histogram_;
  }

 private:
  std::size_t pixels_;
  std::vector<std::uint32_t> image_;
  std::vector<std::uint32_t> histogram_;

  ocl::Buffer in_buffer_;
  ocl::Buffer hist_buffer_;
  ocl::Kernel kernel_;
  std::unique_ptr<ocl::CommandQueue> queue_;
};

std::vector<std::uint32_t> histogram_reference(
    const std::vector<std::uint32_t>& image);

}  // namespace bf::workloads
