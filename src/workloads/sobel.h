// Spector Sobel edge detector (paper §IV): 32x8 blocks, 4x1 window, no SIMD,
// one compute unit — the best-latency design point. One request = upload a
// grayscale frame (u32/pixel), run the operator, download the edge map.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "workloads/workload.h"

namespace bf::workloads {

class SobelWorkload final : public Workload {
 public:
  // Default: the paper's largest frame, 1920x1080 (~8 MiB read+write).
  explicit SobelWorkload(std::size_t width = 1920, std::size_t height = 1080);

  [[nodiscard]] std::string name() const override { return "sobel"; }
  [[nodiscard]] std::string bitstream() const override;
  [[nodiscard]] std::string accelerator() const override { return "sobel"; }

  Status setup(ocl::Context& context) override;
  Status handle_request(ocl::Context& context) override;
  void teardown() override {
    queue_.reset();
    in_buffer_ = {};
    out_buffer_ = {};
    kernel_ = {};
  }

  [[nodiscard]] std::uint64_t request_bytes_in() const override {
    return width_ * height_ * sizeof(std::uint32_t);
  }
  [[nodiscard]] std::uint64_t request_bytes_out() const override {
    return request_bytes_in();
  }

  // Test access: last downloaded edge map.
  [[nodiscard]] const std::vector<std::uint32_t>& last_output() const {
    return output_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& input_frame() const {
    return input_;
  }

 private:
  std::size_t width_;
  std::size_t height_;
  std::vector<std::uint32_t> input_;
  std::vector<std::uint32_t> output_;

  ocl::Buffer in_buffer_;
  ocl::Buffer out_buffer_;
  ocl::Kernel kernel_;
  std::unique_ptr<ocl::CommandQueue> queue_;
};

// CPU reference implementation (for correctness checks in tests).
std::vector<std::uint32_t> sobel_reference(
    const std::vector<std::uint32_t>& input, std::size_t width,
    std::size_t height);

}  // namespace bf::workloads
