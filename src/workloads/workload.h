// Workload interface: the accelerated cloud functions of the paper's
// evaluation (§IV) — Spector Sobel, Spector MM and PipeCNN/AlexNet — written
// once against the bf::ocl host API. The same host code runs on the Native
// runtime (direct FPGA) and through BlastFunction's Remote OpenCL Library;
// that is the transparency property the paper claims.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "ocl/runtime.h"

namespace bf::workloads {

class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  // Bitstream id this workload needs on the device.
  [[nodiscard]] virtual std::string bitstream() const = 0;
  // Accelerator name (for Registry device queries).
  [[nodiscard]] virtual std::string accelerator() const = 0;

  // One-time cold-start work on a fresh context: program the device, create
  // queues/buffers/kernels, upload constant data (e.g. CNN weights).
  virtual Status setup(ocl::Context& context) = 0;

  // Serve one request end-to-end (blocking; returns once results are in
  // host memory).
  virtual Status handle_request(ocl::Context& context) = 0;

  // Releases context-bound state (queues, buffer handles) BEFORE the context
  // is destroyed. Fork-per-request execution calls setup/teardown around
  // every request.
  virtual void teardown() = 0;

  // Approximate request payload sizes (for reporting).
  [[nodiscard]] virtual std::uint64_t request_bytes_in() const = 0;
  [[nodiscard]] virtual std::uint64_t request_bytes_out() const = 0;
};

using WorkloadPtr = std::unique_ptr<Workload>;

// Factory for the paper's three benchmarks by name ("sobel", "mm",
// "alexnet"); the experiment fabric instantiates per function instance.
using WorkloadFactory = std::function<WorkloadPtr()>;

}  // namespace bf::workloads
