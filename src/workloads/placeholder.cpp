// placeholder to keep bf_workloads non-empty during scaffolding
