#include "workloads/sobel.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "sim/bitstream.h"

namespace bf::workloads {

SobelWorkload::SobelWorkload(std::size_t width, std::size_t height)
    : width_(width), height_(height) {
  BF_CHECK(width_ >= 3 && height_ >= 3);
  // Deterministic synthetic frame: smooth gradient plus texture, so edges
  // are non-trivial and reference comparisons are meaningful.
  input_.resize(width_ * height_);
  Rng rng(width_ * 31 + height_);
  for (std::size_t y = 0; y < height_; ++y) {
    for (std::size_t x = 0; x < width_; ++x) {
      const auto base = static_cast<std::uint32_t>((x * 255) / width_);
      const auto noise = static_cast<std::uint32_t>(rng.next_below(32));
      input_[y * width_ + x] = std::min<std::uint32_t>(255, base + noise);
    }
  }
  output_.assign(width_ * height_, 0);
}

std::string SobelWorkload::bitstream() const {
  return sim::BitstreamLibrary::kSobel;
}

Status SobelWorkload::setup(ocl::Context& context) {
  if (Status s = context.program(bitstream()); !s.ok()) return s;
  auto in = context.create_buffer(request_bytes_in());
  if (!in.ok()) return in.status();
  in_buffer_ = in.value();
  auto out = context.create_buffer(request_bytes_out());
  if (!out.ok()) return out.status();
  out_buffer_ = out.value();
  auto kernel = context.create_kernel("sobel");
  if (!kernel.ok()) return kernel.status();
  kernel_ = kernel.value();
  auto queue = context.create_queue();
  if (!queue.ok()) return queue.status();
  queue_ = std::move(queue.value());
  return Status::Ok();
}

Status SobelWorkload::handle_request(ocl::Context& context) {
  (void)context;
  BF_CHECK(queue_ != nullptr);
  auto write = queue_->enqueue_write(
      in_buffer_, 0,
      as_bytes(input_.data(), input_.size() * sizeof(input_[0])),
      /*blocking=*/false);
  if (!write.ok()) return write.status();

  kernel_.set_arg(0, in_buffer_);
  kernel_.set_arg(1, out_buffer_);
  kernel_.set_arg(2, static_cast<std::int64_t>(width_));
  kernel_.set_arg(3, static_cast<std::int64_t>(height_));
  auto launch = queue_->enqueue_kernel(kernel_, {width_, height_, 1});
  if (!launch.ok()) return launch.status();

  auto read = queue_->enqueue_read(
      out_buffer_, 0,
      as_writable_bytes(output_.data(), output_.size() * sizeof(output_[0])),
      /*blocking=*/true);
  if (!read.ok()) return read.status();
  return Status::Ok();
}

std::vector<std::uint32_t> sobel_reference(
    const std::vector<std::uint32_t>& input, std::size_t width,
    std::size_t height) {
  std::vector<std::uint32_t> out(width * height, 0);
  constexpr int gx[3][3] = {{-1, 0, 1}, {-2, 0, 2}, {-1, 0, 1}};
  constexpr int gy[3][3] = {{-1, -2, -1}, {0, 0, 0}, {1, 2, 1}};
  for (std::size_t y = 1; y + 1 < height; ++y) {
    for (std::size_t x = 1; x + 1 < width; ++x) {
      int sx = 0;
      int sy = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int value = static_cast<int>(
              input[(y + dy) * width + (x + dx)] & 0xFFU);
          sx += gx[dy + 1][dx + 1] * value;
          sy += gy[dy + 1][dx + 1] * value;
        }
      }
      out[y * width + x] = static_cast<std::uint32_t>(std::min(
          255, static_cast<int>(
                   std::sqrt(static_cast<double>(sx * sx + sy * sy)))));
    }
  }
  return out;
}

}  // namespace bf::workloads
