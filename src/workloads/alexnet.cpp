#include "workloads/alexnet.h"

#include <algorithm>

#include "common/rng.h"
#include "sim/bitstream.h"

namespace bf::workloads {
namespace {

constexpr std::int64_t kInputC = 3;
constexpr std::int64_t kInputHW = 227;

// Host-side per-layer work (activation reordering, event bookkeeping) that
// PipeCNN's host performs between kernel invocations — paid identically in
// the native and BlastFunction deployments.
constexpr vt::Duration kHostPerLayer = vt::Duration::micros(1300);

}  // namespace

AlexNetWorkload::AlexNetWorkload(AlexNetOptions options) : options_(options) {
  BF_CHECK(options_.channel_scale >= 1);
  build_steps();
  input_.resize(static_cast<std::size_t>(kInputC) * kInputHW * kInputHW);
  if (options_.functional) {
    Rng rng(2020);
    for (float& v : input_) v = static_cast<float>(rng.next_double(0.0, 1.0));
  }
  logits_.assign(static_cast<std::size_t>(scaled(1000)), 0.0F);
}

std::int64_t AlexNetWorkload::scaled(std::int64_t channels) const {
  return std::max<std::int64_t>(1, channels / options_.channel_scale);
}

void AlexNetWorkload::build_steps() {
  using Kind = Step::Kind;
  auto conv = [&](std::int64_t in_c, std::int64_t in_hw, std::int64_t out_c,
                  std::int64_t out_hw, std::int64_t k, std::int64_t s,
                  std::int64_t p) {
    Step step;
    step.kind = Kind::kConv;
    step.in_c = in_c;
    step.in_h = step.in_w = in_hw;
    step.out_c = out_c;
    step.out_h = step.out_w = out_hw;
    step.k = k;
    step.stride = s;
    step.pad = p;
    steps_.push_back(step);
  };
  auto pool = [&](std::int64_t c, std::int64_t in_hw, std::int64_t out_hw) {
    Step step;
    step.kind = Kind::kPool;
    step.in_c = step.out_c = c;
    step.in_h = step.in_w = in_hw;
    step.out_h = step.out_w = out_hw;
    step.k = 3;
    step.stride = 2;
    steps_.push_back(step);
  };
  auto lrn = [&](std::int64_t c, std::int64_t hw) {
    Step step;
    step.kind = Kind::kLrn;
    step.in_c = step.out_c = c;
    step.in_h = step.in_w = step.out_h = step.out_w = hw;
    steps_.push_back(step);
  };
  auto fc = [&](std::int64_t in_features, std::int64_t out_features,
                bool relu) {
    Step step;
    step.kind = Kind::kFc;
    step.in_c = in_features;
    step.in_h = step.in_w = 1;
    step.out_c = out_features;
    step.out_h = step.out_w = 1;
    step.k = 1;
    step.relu = relu;
    steps_.push_back(step);
  };

  // AlexNet (grouping folded into the MAC rate calibration; DESIGN.md §3).
  conv(kInputC, 227, scaled(96), 55, 11, 4, 0);
  lrn(scaled(96), 55);
  pool(scaled(96), 55, 27);
  conv(scaled(96), 27, scaled(256), 27, 5, 1, 2);
  lrn(scaled(256), 27);
  pool(scaled(256), 27, 13);
  conv(scaled(256), 13, scaled(384), 13, 3, 1, 1);
  conv(scaled(384), 13, scaled(384), 13, 3, 1, 1);
  conv(scaled(384), 13, scaled(256), 13, 3, 1, 1);
  pool(scaled(256), 13, 6);
  fc(scaled(256) * 6 * 6, scaled(4096), true);
  fc(scaled(4096), scaled(4096), true);
  fc(scaled(4096), scaled(1000), false);
}

std::string AlexNetWorkload::bitstream() const {
  return sim::BitstreamLibrary::kAlexNet;
}

std::uint64_t AlexNetWorkload::request_bytes_in() const {
  return input_.size() * sizeof(float);
}

std::uint64_t AlexNetWorkload::request_bytes_out() const {
  return logits_.size() * sizeof(float);
}

std::uint64_t AlexNetWorkload::total_macs() const {
  std::uint64_t macs = 0;
  for (const Step& step : steps_) {
    if (step.kind == Step::Kind::kConv || step.kind == Step::Kind::kFc) {
      macs += static_cast<std::uint64_t>(step.out_c) * step.out_h *
              step.out_w * step.in_c * step.k * step.k;
    }
  }
  return macs;
}

Status AlexNetWorkload::setup(ocl::Context& context) {
  if (Status s = context.program(bitstream()); !s.ok()) return s;

  // Activation ping-pong buffers sized for the largest intermediate tensor.
  std::uint64_t max_activation = input_.size();
  for (const Step& step : steps_) {
    max_activation = std::max<std::uint64_t>(
        max_activation,
        static_cast<std::uint64_t>(step.out_c) * step.out_h * step.out_w);
  }
  auto input = context.create_buffer(request_bytes_in());
  if (!input.ok()) return input.status();
  input_buffer_ = input.value();
  for (auto& act : act_) {
    auto buffer = context.create_buffer(max_activation * sizeof(float));
    if (!buffer.ok()) return buffer.status();
    act = buffer.value();
  }

  auto exec_queue = context.create_queue();
  if (!exec_queue.ok()) return exec_queue.status();
  exec_queue_ = std::move(exec_queue.value());
  auto data_queue = context.create_queue();
  if (!data_queue.ok()) return data_queue.status();
  data_queue_ = std::move(data_queue.value());

  auto conv_kernel = context.create_kernel("conv");
  if (!conv_kernel.ok()) return conv_kernel.status();
  conv_kernel_ = conv_kernel.value();
  auto fc_kernel = context.create_kernel("fc");
  if (!fc_kernel.ok()) return fc_kernel.status();
  fc_kernel_ = fc_kernel.value();
  auto pool_kernel = context.create_kernel("pool");
  if (!pool_kernel.ok()) return pool_kernel.status();
  pool_kernel_ = pool_kernel.value();
  auto lrn_kernel = context.create_kernel("lrn");
  if (!lrn_kernel.ok()) return lrn_kernel.status();
  lrn_kernel_ = lrn_kernel.value();

  // Upload weights once at cold start (~233 MB for the full network).
  Rng rng(42);
  for (Step& step : steps_) {
    if (step.kind != Step::Kind::kConv && step.kind != Step::Kind::kFc) {
      continue;
    }
    const std::uint64_t weight_count =
        static_cast<std::uint64_t>(step.out_c) * step.in_c * step.k * step.k;
    auto weights = context.create_buffer(weight_count * sizeof(float));
    if (!weights.ok()) return weights.status();
    step.weights = weights.value();
    auto bias = context.create_buffer(
        static_cast<std::uint64_t>(step.out_c) * sizeof(float));
    if (!bias.ok()) return bias.status();
    step.bias = bias.value();

    std::vector<float> weight_data(weight_count, 0.0F);
    std::vector<float> bias_data(static_cast<std::size_t>(step.out_c), 0.0F);
    if (options_.functional) {
      // Small magnitudes keep activations bounded through 13 layers.
      const double scale = 1.0 / std::max<std::int64_t>(
                               1, step.in_c * step.k * step.k);
      for (float& v : weight_data) {
        v = static_cast<float>(rng.next_double(-scale, scale));
      }
      for (float& v : bias_data) {
        v = static_cast<float>(rng.next_double(-0.01, 0.01));
      }
    }
    auto w = data_queue_->enqueue_write(
        step.weights, 0,
        as_bytes(weight_data.data(), weight_data.size() * sizeof(float)),
        /*blocking=*/false);
    if (!w.ok()) return w.status();
    auto b = data_queue_->enqueue_write(
        step.bias, 0,
        as_bytes(bias_data.data(), bias_data.size() * sizeof(float)),
        /*blocking=*/true);
    if (!b.ok()) return b.status();
  }
  return Status::Ok();
}

Status AlexNetWorkload::handle_request(ocl::Context& context) {
  BF_CHECK(exec_queue_ != nullptr && data_queue_ != nullptr);

  auto write = data_queue_->enqueue_write(
      input_buffer_, 0,
      as_bytes(input_.data(), input_.size() * sizeof(float)),
      /*blocking=*/true);
  if (!write.ok()) return write.status();

  ocl::Buffer current = input_buffer_;
  unsigned pong = 0;
  for (Step& step : steps_) {
    context.session().compute(kHostPerLayer);
    ocl::Buffer out = act_[pong];
    pong ^= 1U;
    // PipeCNN synchronizes per layer: each stage is flushed and awaited
    // before the next is issued (one BlastFunction task per layer).
    switch (step.kind) {
      case Step::Kind::kConv:
      case Step::Kind::kFc: {
        ocl::Kernel& kernel =
            step.kind == Step::Kind::kConv ? conv_kernel_ : fc_kernel_;
        kernel.set_arg(0, current);
        kernel.set_arg(1, step.weights);
        kernel.set_arg(2, step.bias);
        kernel.set_arg(3, out);
        kernel.set_arg(4, step.in_c);
        kernel.set_arg(5, step.in_h);
        kernel.set_arg(6, step.in_w);
        kernel.set_arg(7, step.out_c);
        kernel.set_arg(8, step.out_h);
        kernel.set_arg(9, step.out_w);
        kernel.set_arg(10, step.k);
        kernel.set_arg(11, step.stride);
        kernel.set_arg(12, step.pad);
        kernel.set_arg(13, std::int64_t{step.relu ? 1 : 0});
        auto launch = exec_queue_->enqueue_kernel(
            kernel, {static_cast<std::uint64_t>(step.out_c),
                     static_cast<std::uint64_t>(step.out_h),
                     static_cast<std::uint64_t>(step.out_w)});
        if (!launch.ok()) return launch.status();
        if (Status s = exec_queue_->finish(); !s.ok()) return s;
        break;
      }
      case Step::Kind::kPool: {
        pool_kernel_.set_arg(0, current);
        pool_kernel_.set_arg(1, out);
        pool_kernel_.set_arg(2, step.in_c);
        pool_kernel_.set_arg(3, step.in_h);
        pool_kernel_.set_arg(4, step.in_w);
        pool_kernel_.set_arg(5, step.out_h);
        pool_kernel_.set_arg(6, step.out_w);
        pool_kernel_.set_arg(7, step.k);
        pool_kernel_.set_arg(8, step.stride);
        auto launch = data_queue_->enqueue_kernel(
            pool_kernel_, {static_cast<std::uint64_t>(step.out_c),
                           static_cast<std::uint64_t>(step.out_h),
                           static_cast<std::uint64_t>(step.out_w)});
        if (!launch.ok()) return launch.status();
        if (Status s = data_queue_->finish(); !s.ok()) return s;
        break;
      }
      case Step::Kind::kLrn: {
        lrn_kernel_.set_arg(0, current);
        lrn_kernel_.set_arg(1, out);
        lrn_kernel_.set_arg(2, step.in_c);
        lrn_kernel_.set_arg(3, step.in_h);
        lrn_kernel_.set_arg(4, step.in_w);
        auto launch = data_queue_->enqueue_kernel(
            lrn_kernel_, {static_cast<std::uint64_t>(step.in_c),
                          static_cast<std::uint64_t>(step.in_h),
                          static_cast<std::uint64_t>(step.in_w)});
        if (!launch.ok()) return launch.status();
        if (Status s = data_queue_->finish(); !s.ok()) return s;
        break;
      }
    }
    current = out;
  }

  auto read = data_queue_->enqueue_read(
      current, 0,
      as_writable_bytes(logits_.data(), logits_.size() * sizeof(float)),
      /*blocking=*/true);
  if (!read.ok()) return read.status();
  return Status::Ok();
}

}  // namespace bf::workloads
