#include "workloads/spector_extra.h"

#include "common/rng.h"
#include "sim/bitstream.h"

namespace bf::workloads {

// --- FIR -----------------------------------------------------------------------

FirWorkload::FirWorkload(std::size_t samples, std::size_t taps)
    : samples_(samples) {
  BF_CHECK(samples > 0 && taps > 0);
  signal_.resize(samples_);
  taps_.resize(taps);
  output_.assign(samples_, 0.0F);
  Rng rng(samples * 7919 + taps);
  for (float& value : signal_) {
    value = static_cast<float>(rng.next_double(-1.0, 1.0));
  }
  // Simple low-pass-ish taps that sum to 1.
  for (std::size_t t = 0; t < taps; ++t) {
    taps_[t] = 1.0F / static_cast<float>(taps);
  }
}

std::string FirWorkload::bitstream() const {
  return sim::BitstreamLibrary::kFir;
}

Status FirWorkload::setup(ocl::Context& context) {
  if (Status s = context.program(bitstream()); !s.ok()) return s;
  auto in = context.create_buffer(samples_ * sizeof(float));
  if (!in.ok()) return in.status();
  in_buffer_ = in.value();
  auto coeffs = context.create_buffer(taps_.size() * sizeof(float));
  if (!coeffs.ok()) return coeffs.status();
  coeff_buffer_ = coeffs.value();
  auto out = context.create_buffer(samples_ * sizeof(float));
  if (!out.ok()) return out.status();
  out_buffer_ = out.value();
  auto kernel = context.create_kernel("fir");
  if (!kernel.ok()) return kernel.status();
  kernel_ = kernel.value();
  auto queue = context.create_queue();
  if (!queue.ok()) return queue.status();
  queue_ = std::move(queue.value());
  // Coefficients are constant: uploaded once at setup.
  auto written = queue_->enqueue_write(
      coeff_buffer_, 0, as_bytes(taps_.data(), taps_.size() * sizeof(float)),
      /*blocking=*/true);
  return written.ok() ? Status::Ok() : written.status();
}

Status FirWorkload::handle_request(ocl::Context& context) {
  (void)context;
  BF_CHECK(queue_ != nullptr);
  auto write = queue_->enqueue_write(
      in_buffer_, 0,
      as_bytes(signal_.data(), signal_.size() * sizeof(float)),
      /*blocking=*/false);
  if (!write.ok()) return write.status();
  kernel_.set_arg(0, in_buffer_);
  kernel_.set_arg(1, coeff_buffer_);
  kernel_.set_arg(2, out_buffer_);
  kernel_.set_arg(3, static_cast<std::int64_t>(samples_));
  kernel_.set_arg(4, static_cast<std::int64_t>(taps_.size()));
  auto launch = queue_->enqueue_kernel(kernel_, {samples_, 1, 1});
  if (!launch.ok()) return launch.status();
  auto read = queue_->enqueue_read(
      out_buffer_, 0,
      as_writable_bytes(output_.data(), output_.size() * sizeof(float)),
      /*blocking=*/true);
  return read.ok() ? Status::Ok() : read.status();
}

std::vector<float> fir_reference(const std::vector<float>& signal,
                                 const std::vector<float>& taps) {
  std::vector<float> out(signal.size(), 0.0F);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    float acc = 0.0F;
    for (std::size_t t = 0; t < taps.size() && t <= i; ++t) {
      acc += taps[t] * signal[i - t];
    }
    out[i] = acc;
  }
  return out;
}

// --- Histogram ------------------------------------------------------------------

HistogramWorkload::HistogramWorkload(std::size_t pixels) : pixels_(pixels) {
  BF_CHECK(pixels > 0);
  image_.resize(pixels_);
  histogram_.assign(256, 0);
  Rng rng(pixels * 31337);
  for (std::uint32_t& px : image_) {
    px = static_cast<std::uint32_t>(rng.next_below(256));
  }
}

std::string HistogramWorkload::bitstream() const {
  return sim::BitstreamLibrary::kHistogram;
}

Status HistogramWorkload::setup(ocl::Context& context) {
  if (Status s = context.program(bitstream()); !s.ok()) return s;
  auto in = context.create_buffer(request_bytes_in());
  if (!in.ok()) return in.status();
  in_buffer_ = in.value();
  auto hist = context.create_buffer(request_bytes_out());
  if (!hist.ok()) return hist.status();
  hist_buffer_ = hist.value();
  auto kernel = context.create_kernel("histogram");
  if (!kernel.ok()) return kernel.status();
  kernel_ = kernel.value();
  auto queue = context.create_queue();
  if (!queue.ok()) return queue.status();
  queue_ = std::move(queue.value());
  return Status::Ok();
}

Status HistogramWorkload::handle_request(ocl::Context& context) {
  (void)context;
  BF_CHECK(queue_ != nullptr);
  auto write = queue_->enqueue_write(
      in_buffer_, 0,
      as_bytes(image_.data(), image_.size() * sizeof(image_[0])),
      /*blocking=*/false);
  if (!write.ok()) return write.status();
  kernel_.set_arg(0, in_buffer_);
  kernel_.set_arg(1, hist_buffer_);
  kernel_.set_arg(2, static_cast<std::int64_t>(pixels_));
  auto launch = queue_->enqueue_kernel(kernel_, {pixels_, 1, 1});
  if (!launch.ok()) return launch.status();
  auto read = queue_->enqueue_read(
      hist_buffer_, 0,
      as_writable_bytes(histogram_.data(),
                        histogram_.size() * sizeof(histogram_[0])),
      /*blocking=*/true);
  return read.ok() ? Status::Ok() : read.status();
}

std::vector<std::uint32_t> histogram_reference(
    const std::vector<std::uint32_t>& image) {
  std::vector<std::uint32_t> bins(256, 0);
  for (std::uint32_t px : image) ++bins[px & 0xFFU];
  return bins;
}

}  // namespace bf::workloads
