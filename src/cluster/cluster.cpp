#include "cluster/cluster.h"

#include <algorithm>

#include "fault/injector.h"

namespace bf::cluster {

std::string base_pod_name(const std::string& pod_name) {
  const std::size_t tilde = pod_name.rfind('~');
  if (tilde == std::string::npos || tilde == 0 ||
      tilde + 1 == pod_name.size()) {
    return pod_name;
  }
  const std::string suffix = pod_name.substr(tilde + 1);
  if (suffix.find_first_not_of("0123456789") != std::string::npos) {
    return pod_name;
  }
  return pod_name.substr(0, tilde);
}

unsigned migration_generation(const std::string& pod_name) {
  const std::string base = base_pod_name(pod_name);
  if (base.size() == pod_name.size()) return 1;
  return static_cast<unsigned>(
      std::stoul(pod_name.substr(base.size() + 1)));
}

Cluster::Cluster(std::vector<NodeSpec> nodes) : nodes_(std::move(nodes)) {
  BF_CHECK(!nodes_.empty());
}

std::vector<NodeSpec> Cluster::nodes() const {
  std::lock_guard lock(mutex_);
  return nodes_;
}

const NodeSpec* Cluster::find_node(const std::string& name) const {
  std::lock_guard lock(mutex_);
  return find_node_locked(name);
}

const NodeSpec* Cluster::find_node_locked(const std::string& name) const {
  auto it = std::find_if(nodes_.begin(), nodes_.end(),
                         [&](const NodeSpec& n) { return n.name == name; });
  return it == nodes_.end() ? nullptr : &*it;
}

Status Cluster::add_node(NodeSpec node) {
  std::lock_guard lock(mutex_);
  for (const NodeSpec& existing : nodes_) {
    if (existing.name == node.name) {
      return AlreadyExists("node '" + node.name + "' already joined");
    }
  }
  nodes_.push_back(std::move(node));
  return Status::Ok();
}

Status Cluster::remove_node(const std::string& name) {
  std::lock_guard lock(mutex_);
  for (const auto& [pod_name, pod] : pods_) {
    if (pod.spec.node == name) {
      return FailedPrecondition("node '" + name + "' still runs pod '" +
                                pod_name + "'");
    }
  }
  auto it = std::find_if(nodes_.begin(), nodes_.end(),
                         [&](const NodeSpec& n) { return n.name == name; });
  if (it == nodes_.end()) return NotFound("node '" + name + "' not joined");
  nodes_.erase(it);
  return Status::Ok();
}

void Cluster::set_admission_hook(AdmissionHook hook) {
  std::lock_guard lock(mutex_);
  admission_ = std::move(hook);
}

void Cluster::add_watcher(Watcher watcher) {
  std::lock_guard lock(mutex_);
  watchers_.push_back(std::move(watcher));
}

Result<Pod> Cluster::create_pod(PodSpec spec) {
  if (spec.name.empty()) return InvalidArgument("pod needs a name");
  AdmissionHook admission;
  {
    std::lock_guard lock(mutex_);
    if (pods_.contains(spec.name) &&
        pods_.at(spec.name).phase == PodPhase::kRunning) {
      return AlreadyExists("pod '" + spec.name + "' already running");
    }
    admission = admission_;
  }
  if (admission) {
    if (Status s = admission(spec); !s.ok()) {
      return Status(StatusCode::kFailedPrecondition,
                    "admission rejected pod '" + spec.name +
                        "': " + s.to_string());
    }
  }
  Pod pod;
  {
    std::lock_guard lock(mutex_);
    if (!spec.node.empty() && find_node_locked(spec.node) == nullptr) {
      return NotFound("pod '" + spec.name + "' bound to unknown node '" +
                      spec.node + "'");
    }
    if (spec.node.empty()) spec.node = default_schedule();
    pod.spec = std::move(spec);
    pod.phase = PodPhase::kRunning;
    pod.uid = next_uid_++;
    pods_[pod.spec.name] = pod;
  }
  emit(WatchEvent{WatchEvent::Type::kAdded, pod});
  return pod;
}

Status Cluster::delete_pod(const std::string& name) {
  Pod pod;
  {
    std::lock_guard lock(mutex_);
    auto it = pods_.find(name);
    if (it == pods_.end() || it->second.phase != PodPhase::kRunning) {
      return NotFound("pod '" + name + "' not running");
    }
    it->second.phase = PodPhase::kDeleted;
    pod = it->second;
    pods_.erase(it);
  }
  emit(WatchEvent{WatchEvent::Type::kDeleted, pod});
  return Status::Ok();
}

Result<Pod> Cluster::replace_pod(const std::string& name) {
  PodSpec fresh;
  {
    std::lock_guard lock(mutex_);
    auto it = pods_.find(name);
    if (it == pods_.end() || it->second.phase != PodPhase::kRunning) {
      return NotFound("pod '" + name + "' not running");
    }
    if (replacing_.contains(name)) {
      // The replacement's own admission recursed into replacing this pod
      // (a nested migration picked a device this pod lives on). Refuse:
      // letting it through would delete the old pod while the outer
      // replacement can still fail, leaving the function with no pod.
      return FailedPrecondition("pod '" + name +
                                "' already has a replacement in flight");
    }
    fresh = it->second.spec;
    // Generation-counter naming: strip the prior suffix and bump, so
    // repeated migrations give "fn-0~2", "fn-0~3", ... instead of unbounded
    // "fn-0-r-r-..." growth. Skip generations whose name is already taken
    // (the base name may have been reused after an earlier migration) or
    // reserved by a replacement still in flight.
    const std::string base = base_pod_name(fresh.name);
    unsigned generation = migration_generation(fresh.name);
    do {
      fresh.name = base + "~" + std::to_string(++generation);
    } while (pods_.contains(fresh.name) || replacing_.contains(fresh.name));
    replacing_.insert(name);
    replacing_.insert(fresh.name);
  }
  // The replacement is re-admitted from a clean slate: prior patches
  // (device env, volumes, node pin) are stripped so the hook re-decides.
  fresh.env.clear();
  fresh.volumes.clear();
  fresh.node.clear();
  const std::string old_name = name;
  const std::string new_name = fresh.name;
  auto release = [&] {
    std::lock_guard lock(mutex_);
    replacing_.erase(old_name);
    replacing_.erase(new_name);
  };
  if (fault::should_fire(fault::site::kClusterReplaceFail)) {
    release();
    return Unavailable("cluster.replace.fail: injected replacement failure "
                       "for pod '" + old_name + "'");
  }
  auto created = create_pod(std::move(fresh));
  if (!created.ok()) {
    release();
    return created.status();
  }
  if (Status s = delete_pod(old_name); !s.ok()) {
    release();
    return s;  // replacement stays; caller sees the inconsistency
  }
  release();
  return created;
}

std::optional<Pod> Cluster::get_pod(const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = pods_.find(name);
  if (it == pods_.end()) return std::nullopt;
  return it->second;
}

std::vector<Pod> Cluster::list_pods() const {
  std::lock_guard lock(mutex_);
  std::vector<Pod> out;
  out.reserve(pods_.size());
  for (const auto& [name, pod] : pods_) out.push_back(pod);
  return out;
}

std::vector<Pod> Cluster::pods_of_function(const std::string& function) const {
  std::lock_guard lock(mutex_);
  std::vector<Pod> out;
  for (const auto& [name, pod] : pods_) {
    if (pod.spec.function == function) out.push_back(pod);
  }
  return out;
}

std::size_t Cluster::pod_count() const {
  std::lock_guard lock(mutex_);
  return pods_.size();
}

void Cluster::emit(const WatchEvent& event) {
  std::vector<Watcher> watchers;
  {
    std::lock_guard lock(mutex_);
    watchers = watchers_;
  }
  for (const Watcher& watcher : watchers) watcher(event);
}

std::string Cluster::default_schedule() {
  // Plain round-robin spread; the Registry normally forces the node before
  // this runs (paper: the allocation "forces the host allocation").
  const std::string& node = nodes_[round_robin_ % nodes_.size()].name;
  ++round_robin_;
  return node;
}

}  // namespace bf::cluster
