#include "cluster/cluster.h"

#include <algorithm>

namespace bf::cluster {

Cluster::Cluster(std::vector<NodeSpec> nodes) : nodes_(std::move(nodes)) {
  BF_CHECK(!nodes_.empty());
}

std::vector<NodeSpec> Cluster::nodes() const {
  std::lock_guard lock(mutex_);
  return nodes_;
}

const NodeSpec* Cluster::find_node(const std::string& name) const {
  std::lock_guard lock(mutex_);
  return find_node_locked(name);
}

const NodeSpec* Cluster::find_node_locked(const std::string& name) const {
  auto it = std::find_if(nodes_.begin(), nodes_.end(),
                         [&](const NodeSpec& n) { return n.name == name; });
  return it == nodes_.end() ? nullptr : &*it;
}

Status Cluster::add_node(NodeSpec node) {
  std::lock_guard lock(mutex_);
  for (const NodeSpec& existing : nodes_) {
    if (existing.name == node.name) {
      return AlreadyExists("node '" + node.name + "' already joined");
    }
  }
  nodes_.push_back(std::move(node));
  return Status::Ok();
}

Status Cluster::remove_node(const std::string& name) {
  std::lock_guard lock(mutex_);
  for (const auto& [pod_name, pod] : pods_) {
    if (pod.spec.node == name) {
      return FailedPrecondition("node '" + name + "' still runs pod '" +
                                pod_name + "'");
    }
  }
  auto it = std::find_if(nodes_.begin(), nodes_.end(),
                         [&](const NodeSpec& n) { return n.name == name; });
  if (it == nodes_.end()) return NotFound("node '" + name + "' not joined");
  nodes_.erase(it);
  return Status::Ok();
}

void Cluster::set_admission_hook(AdmissionHook hook) {
  std::lock_guard lock(mutex_);
  admission_ = std::move(hook);
}

void Cluster::add_watcher(Watcher watcher) {
  std::lock_guard lock(mutex_);
  watchers_.push_back(std::move(watcher));
}

Result<Pod> Cluster::create_pod(PodSpec spec) {
  if (spec.name.empty()) return InvalidArgument("pod needs a name");
  AdmissionHook admission;
  {
    std::lock_guard lock(mutex_);
    if (pods_.contains(spec.name) &&
        pods_.at(spec.name).phase == PodPhase::kRunning) {
      return AlreadyExists("pod '" + spec.name + "' already running");
    }
    admission = admission_;
  }
  if (admission) {
    if (Status s = admission(spec); !s.ok()) {
      return Status(StatusCode::kFailedPrecondition,
                    "admission rejected pod '" + spec.name +
                        "': " + s.to_string());
    }
  }
  Pod pod;
  {
    std::lock_guard lock(mutex_);
    if (!spec.node.empty() && find_node_locked(spec.node) == nullptr) {
      return NotFound("pod '" + spec.name + "' bound to unknown node '" +
                      spec.node + "'");
    }
    if (spec.node.empty()) spec.node = default_schedule();
    pod.spec = std::move(spec);
    pod.phase = PodPhase::kRunning;
    pod.uid = next_uid_++;
    pods_[pod.spec.name] = pod;
  }
  emit(WatchEvent{WatchEvent::Type::kAdded, pod});
  return pod;
}

Status Cluster::delete_pod(const std::string& name) {
  Pod pod;
  {
    std::lock_guard lock(mutex_);
    auto it = pods_.find(name);
    if (it == pods_.end() || it->second.phase != PodPhase::kRunning) {
      return NotFound("pod '" + name + "' not running");
    }
    it->second.phase = PodPhase::kDeleted;
    pod = it->second;
    pods_.erase(it);
  }
  emit(WatchEvent{WatchEvent::Type::kDeleted, pod});
  return Status::Ok();
}

Result<Pod> Cluster::replace_pod(const std::string& name) {
  PodSpec fresh;
  {
    std::lock_guard lock(mutex_);
    auto it = pods_.find(name);
    if (it == pods_.end() || it->second.phase != PodPhase::kRunning) {
      return NotFound("pod '" + name + "' not running");
    }
    fresh = it->second.spec;
  }
  // The replacement is re-admitted from a clean slate: prior patches
  // (device env, volumes, node pin) are stripped so the hook re-decides.
  fresh.env.clear();
  fresh.volumes.clear();
  fresh.node.clear();
  const std::string old_name = fresh.name;
  fresh.name = old_name + "-r";
  auto created = create_pod(std::move(fresh));
  if (!created.ok()) return created.status();
  if (Status s = delete_pod(old_name); !s.ok()) {
    return s;  // replacement stays; caller sees the inconsistency
  }
  return created;
}

std::optional<Pod> Cluster::get_pod(const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = pods_.find(name);
  if (it == pods_.end()) return std::nullopt;
  return it->second;
}

std::vector<Pod> Cluster::list_pods() const {
  std::lock_guard lock(mutex_);
  std::vector<Pod> out;
  out.reserve(pods_.size());
  for (const auto& [name, pod] : pods_) out.push_back(pod);
  return out;
}

std::vector<Pod> Cluster::pods_of_function(const std::string& function) const {
  std::lock_guard lock(mutex_);
  std::vector<Pod> out;
  for (const auto& [name, pod] : pods_) {
    if (pod.spec.function == function) out.push_back(pod);
  }
  return out;
}

std::size_t Cluster::pod_count() const {
  std::lock_guard lock(mutex_);
  return pods_.size();
}

void Cluster::emit(const WatchEvent& event) {
  std::vector<Watcher> watchers;
  {
    std::lock_guard lock(mutex_);
    watchers = watchers_;
  }
  for (const Watcher& watcher : watchers) watcher(event);
}

std::string Cluster::default_schedule() {
  // Plain round-robin spread; the Registry normally forces the node before
  // this runs (paper: the allocation "forces the host allocation").
  const std::string& node = nodes_[round_robin_ % nodes_.size()].name;
  ++round_robin_;
  return node;
}

}  // namespace bf::cluster
