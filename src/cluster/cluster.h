// Simulated Kubernetes control plane.
//
// The Accelerators Registry only uses a narrow API-server surface (paper
// §III-C): watching function-instance creation/deletion, patching pods at
// admission (env vars, shm volumes, forced host allocation) and
// create-before-delete migration. This module implements exactly that
// surface: nodes, pods, a mutating admission hook, watch events and
// replace_pod().
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/costmodel.h"

namespace bf::cluster {

struct NodeSpec {
  std::string name;  // "A", "B", "C"
  sim::NodeProfile profile;
};

struct PodSpec {
  std::string name;      // instance name, e.g. "sobel-1-0"
  std::string function;  // owning function, e.g. "sobel-1"
  std::map<std::string, std::string> labels;
  std::map<std::string, std::string> env;      // patched by the Registry
  std::vector<std::string> volumes;            // shm volume mounts
  std::string node;  // "" = let the scheduler (or an admission patch) choose
};

enum class PodPhase { kRunning, kDeleted };

struct Pod {
  PodSpec spec;
  PodPhase phase = PodPhase::kRunning;
  std::uint64_t uid = 0;
};

struct WatchEvent {
  enum class Type { kAdded, kDeleted };
  Type type = Type::kAdded;
  Pod pod;
};

// Migration-generation naming helpers (replace_pod): "fn-0" is generation 1,
// its replacement "fn-0~2" generation 2, and so on. Use these instead of
// suffix sniffing to tell replacements from original pods.
[[nodiscard]] std::string base_pod_name(const std::string& pod_name);
[[nodiscard]] unsigned migration_generation(const std::string& pod_name);

class Cluster {
 public:
  explicit Cluster(std::vector<NodeSpec> nodes);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] std::vector<NodeSpec> nodes() const;
  [[nodiscard]] const NodeSpec* find_node(const std::string& name) const;

  // Joins a new node to the cluster (the autoscaling extension provisions
  // FPGA nodes at runtime, paper §V future work).
  Status add_node(NodeSpec node);
  // Removes an empty node (no running pods).
  Status remove_node(const std::string& name);

  // Mutating admission: invoked before a pod is admitted; may patch env,
  // volumes and force the node. Returning an error rejects the pod.
  using AdmissionHook = std::function<Status(PodSpec&)>;
  void set_admission_hook(AdmissionHook hook);

  // Informer-style watch; fired after admission (Added) and on deletion.
  using Watcher = std::function<void(const WatchEvent&)>;
  void add_watcher(Watcher watcher);

  Result<Pod> create_pod(PodSpec spec);
  Status delete_pod(const std::string& name);
  // Create-before-delete migration (paper: "Kubernetes creates new instances
  // before deleting the previous ones"): admits a fresh replacement running
  // through the admission hook again, then deletes the original. Env,
  // volumes and node binding from the original admission are discarded so
  // the hook can re-decide. The replacement is named with a generation
  // counter that strips the prior suffix ("fn-0" -> "fn-0~2" -> "fn-0~3",
  // never "fn-0-r-r..."); spec.function stays authoritative for
  // function-level lookups.
  Result<Pod> replace_pod(const std::string& name);

  [[nodiscard]] std::optional<Pod> get_pod(const std::string& name) const;
  [[nodiscard]] std::vector<Pod> list_pods() const;
  [[nodiscard]] std::vector<Pod> pods_of_function(
      const std::string& function) const;
  [[nodiscard]] std::size_t pod_count() const;

 private:
  void emit(const WatchEvent& event);
  std::string default_schedule();
  [[nodiscard]] const NodeSpec* find_node_locked(
      const std::string& name) const;

  std::vector<NodeSpec> nodes_;
  mutable std::mutex mutex_;
  AdmissionHook admission_;
  std::vector<Watcher> watchers_;
  std::map<std::string, Pod> pods_;
  // Pods with a replacement in flight, plus the generation names those
  // replacements reserved. A replacement's admission can trigger nested
  // migrations; without this guard one of them could replace the same pod
  // again (or claim the in-flight generation name), deleting the old pod
  // out from under a replacement that then fails — breaking the
  // create-before-delete guarantee that a failed replace keeps the old
  // pod serving.
  std::set<std::string> replacing_;
  std::uint64_t next_uid_ = 1;
  std::size_t round_robin_ = 0;
};

}  // namespace bf::cluster
