// placeholder to keep bf_cluster non-empty during scaffolding
