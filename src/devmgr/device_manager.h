// Device Manager: controls and shares one FPGA board (paper §III-B).
//
// Exposes the gRPC-analogue service over a net::ServerEndpoint. A dispatcher
// thread per client connection handles
//   * context & information methods synchronously (session, device info,
//     buffers, kernels, queues), and
//   * command-queue methods by accumulating them into per-(client, queue)
//     tasks; a flush seals the task into the central queue.
// A single worker thread pulls tasks in scheduler-policy order (modeled FIFO
// by default; see devmgr/scheduler.h for the weighted-fair, deadline, and
// batching alternatives) and executes them exclusively on the board,
// notifying each operation's event on completion.
// Board reconfiguration is the one synchronous method that rides the central
// queue, blocking all other operations while the board is programmed.
//
// Per-client resource pools (buffers, kernels, queues) provide isolation:
// a client can only ever name its own resources.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "devmgr/scheduler.h"
#include "devmgr/task.h"
#include "metrics/metrics.h"
#include "net/endpoint.h"
#include "shm/namespace.h"
#include "sim/board.h"

namespace bf::devmgr {

// Worker-side staging of one task's OpComplete notifications: the worker
// resolves the session's connection once, appends encoded completions as ops
// retire, and delivers them through Connection::notify_batch with a single
// consumer wake per task (defined in device_manager.cpp).
struct CompletionBatch;

struct DeviceManagerConfig {
  std::string id;  // e.g. "devmgr-b"
  bool allow_shared_memory = true;
  std::uint64_t shm_segment_bytes = 4ULL * 1024 * 1024 * 1024;
  // Dispatcher handling cost per synchronous method / per command-queue op.
  vt::Duration sync_handling = vt::Duration::micros(60);
  vt::Duration op_handling = vt::Duration::micros(20);
  // Real-time grace before the conservative gate falls back to arrival
  // order (docs/VIRTUAL_TIME.md). Large enough that OS scheduling hiccups
  // on loaded machines never degrade ordering; lower it in tests that
  // intentionally exercise idle-producer liveness.
  std::chrono::milliseconds gate_stall_grace{1000};
  // Record every executed task's (ready, seq, client, ordered) in an
  // in-memory journal. Unbounded — test/audit use only (the fault matrix
  // asserts modeled-FIFO order against it); leave off in load experiments.
  bool record_execution_journal = false;
  // Central-queue scheduling policy (devmgr/scheduler.h). The default kFifo
  // reproduces the paper's modeled-FIFO behavior exactly.
  SchedulerConfig scheduler;
};

class DeviceManager {
 public:
  // `board` must outlive the manager. `node_shm` is the hosting node's
  // shared-memory namespace (nullptr => shm unavailable, gRPC data path).
  DeviceManager(DeviceManagerConfig config, sim::Board* board,
                shm::Namespace* node_shm);
  ~DeviceManager();

  DeviceManager(const DeviceManager&) = delete;
  DeviceManager& operator=(const DeviceManager&) = delete;

  [[nodiscard]] const std::string& id() const { return config_.id; }
  [[nodiscard]] net::ServerEndpoint& endpoint() { return endpoint_; }
  [[nodiscard]] sim::Board& board() { return *board_; }
  [[nodiscard]] metrics::Registry& metrics() { return metrics_; }

  // FPGA time utilization over a modeled window: busy / (to - from).
  // This is the metric the Accelerators Registry's gatherer consumes.
  [[nodiscard]] double utilization(vt::Time from, vt::Time to) const;

  // Device busy time attributable to one client within a window (the
  // per-function utilization of paper Table II).
  [[nodiscard]] vt::Duration client_busy_between(const std::string& client_id,
                                                 vt::Time from,
                                                 vt::Time to) const;

  // Raw per-client occupancy intervals overlapping [from, to] (consumed by
  // the trace exporter).
  struct ClientBusy {
    std::string client_id;
    vt::Time start;
    vt::Time end;
  };
  [[nodiscard]] std::vector<ClientBusy> busy_snapshot(vt::Time from,
                                                      vt::Time to) const;

  [[nodiscard]] std::size_t session_count() const;
  [[nodiscard]] std::uint64_t tasks_executed() const;
  [[nodiscard]] std::uint64_t ops_executed() const;

  // One entry per task handed to the worker, in real execution order
  // (populated only when config.record_execution_journal is set). `ordered`
  // is false for pops that bypassed the conservative gate (shutdown drain /
  // stall fallback) and therefore carry no FIFO guarantee.
  struct ExecutionRecord {
    vt::Time ready;
    std::uint64_t seq = 0;
    std::string client_id;
    bool ordered = true;
  };
  [[nodiscard]] std::vector<ExecutionRecord> execution_journal() const;

  // Point-in-time liveness/load snapshot — the in-process twin of the
  // kHealthCheck RPC (the registry's prober uses whichever channel it has).
  // Unavailable once shutdown has begun; a probing registry treats that the
  // same as an unreachable manager.
  struct HealthSnapshot {
    std::size_t queue_depth = 0;   // sealed tasks waiting in the scheduler
    std::size_t sessions = 0;      // open client sessions
    std::uint64_t ops_executed = 0;
    bool accepting = true;
  };
  [[nodiscard]] Result<HealthSnapshot> health();

  // Queued-but-unexecuted tasks discarded because their client vanished.
  [[nodiscard]] std::uint64_t tasks_cancelled() const;

  // Derives the shared segment name for a session (same formula the remote
  // library uses to open it).
  [[nodiscard]] std::string segment_name(std::uint64_t session_id) const;

  void shutdown();

 private:
  struct Session {
    std::uint64_t id = 0;
    std::string client_id;
    std::shared_ptr<net::Connection> connection;
    std::shared_ptr<shm::Segment> segment;  // null => gRPC data path
    std::map<std::uint64_t, sim::MemHandle> buffers;
    std::map<std::uint64_t, std::string> kernels;  // id -> kernel name
    std::map<std::uint64_t, bool> queues;          // id -> exists
    std::uint64_t next_buffer_id = 1;
    std::uint64_t next_kernel_id = 1;
    std::uint64_t next_queue_id = 1;
    // Tasks under construction, one per command queue.
    std::map<std::uint64_t, Task> building;
    // Completion stamps of executed ops (event wait-list resolution).
    std::map<std::uint64_t, vt::Time> completed_ops;
  };

  void serve_connection(const std::shared_ptr<net::Connection>& connection);
  void worker_loop();

  // Dispatcher-side handlers; they lock state_mutex_ internally.
  void handle_sync(std::uint64_t session_id, const net::Frame& frame);
  void handle_command(std::uint64_t session_id, const net::Frame& frame);
  // Requires state_mutex_ held.
  void seal_task(Session& session, std::uint64_t queue_id, vt::Time ready,
                 vt::Time deadline);

  // Worker-side execution.
  void execute_task(const Task& task);
  // Executes a batchable lead task plus its coalesced companions as one
  // board pass (kBatching policy; devmgr/scheduler.h).
  void execute_batch(const Task& lead, const std::vector<Task>& companions);
  // Returns the op's exclusive board occupancy interval.
  Result<sim::Board::Interval> execute_operation(
      std::uint64_t session_id, const Operation& op, vt::Time ready,
      proto::OpComplete& completion);
  // Encodes the completion into `batch` (consuming completion.data into the
  // arena); flush_completions delivers the whole task's worth in one wake.
  void stage_completion(CompletionBatch& batch, std::uint64_t session_id,
                        std::uint64_t op_id, proto::OpComplete& completion,
                        vt::Time at);
  void flush_completions(CompletionBatch& batch);

  Result<sim::KernelLaunch> resolve_kernel(std::uint64_t session_id,
                                           const Operation& op);

  void cleanup_session(std::uint64_t session_id);

  DeviceManagerConfig config_;
  sim::Board* board_;
  shm::Namespace* node_shm_;
  net::ServerEndpoint endpoint_;
  std::unique_ptr<Scheduler> scheduler_;
  metrics::Registry metrics_;

  mutable std::mutex state_mutex_;
  std::map<std::uint64_t, Session> sessions_;
  std::uint64_t next_session_id_ = 1;
  std::uint64_t next_task_seq_ = 1;
  std::uint64_t tasks_executed_ = 0;
  std::uint64_t ops_executed_ = 0;
  std::uint64_t tasks_cancelled_ = 0;
  struct BusyRecord {
    std::string client_id;
    sim::Board::Interval interval;
  };
  std::vector<BusyRecord> busy_records_;
  std::vector<ExecutionRecord> journal_;  // see record_execution_journal

  std::mutex threads_mutex_;
  std::vector<std::thread> dispatchers_;
  std::thread worker_;
  std::atomic<bool> shutdown_{false};

  // Metric handles (created once, updated by the worker).
  std::shared_ptr<metrics::Counter> tasks_counter_;
  std::shared_ptr<metrics::Counter> ops_counter_;
  std::shared_ptr<metrics::Counter> reconfig_counter_;
  std::shared_ptr<metrics::Gauge> busy_ms_gauge_;
  std::shared_ptr<metrics::Gauge> sessions_gauge_;
  std::shared_ptr<metrics::Histogram> task_span_ms_;
  std::shared_ptr<metrics::Gauge> queue_depth_gauge_;
  std::shared_ptr<metrics::Counter> health_probes_counter_;
  std::shared_ptr<metrics::Counter> tasks_cancelled_counter_;
};

}  // namespace bf::devmgr
