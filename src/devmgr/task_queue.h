// Central task queue of a Device Manager.
//
// Tasks execute in First-In-First-Out order of *modeled* arrival: the queue
// orders by (ready stamp, sequence) and the pop is gated conservatively —
// a task is handed to the worker only once no connected client can still
// produce an earlier-stamped task (vt::Gate::wait_safe).
#pragma once

#include <condition_variable>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "devmgr/task.h"
#include "vt/gate.h"

namespace bf::devmgr {

class TaskQueue {
 public:
  TaskQueue() = default;
  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  // Enqueues a task. After close() every push is rejected deterministically
  // with kUnavailable — the task is NOT silently queued or dropped, and the
  // caller must fail the task's events so clients observe a terminal status.
  // push and close serialize on the queue mutex, so a push racing a
  // concurrent close either fully succeeds (the task will be drained) or is
  // fully rejected; there is no in-between.
  [[nodiscard]] Status push(Task task);

  // Blocks until the earliest task is safe to execute (or the queue/gate is
  // shut down, returning nullopt). Single-consumer. When `ordered` is
  // non-null it is set to true iff the pop was conservatively gated (strict
  // modeled-FIFO); false for gate-shutdown drains and stall-grace
  // fallbacks, whose ordering is best-effort.
  std::optional<Task> pop(vt::Gate& gate, bool* ordered = nullptr);

  // Removes every still-queued task of `session_id` and returns them so the
  // caller can fail their waiters (program waiters, per-op events). Tasks
  // already handed to the worker are not recalled — the worker completes
  // them and the completion notification is dropped at the closed stream.
  [[nodiscard]] std::vector<Task> cancel_session(std::uint64_t session_id);

  void close();

  [[nodiscard]] std::size_t size() const;

 private:
  struct Order {
    bool operator()(const Task& a, const Task& b) const {
      if (a.ready != b.ready) return a.ready < b.ready;
      // Equal modeled stamps: break the tie deterministically by client
      // (pod name), never by real arrival order — run-to-run
      // reproducibility depends on it. seq keeps one client's equal-stamp
      // tasks in submission order.
      if (a.client_id != b.client_id) return a.client_id < b.client_id;
      return a.seq < b.seq;
    }
  };

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::multiset<Task, Order> tasks_;
  bool closed_ = false;
};

}  // namespace bf::devmgr
