// Pluggable central scheduler of a Device Manager.
//
// The paper's Device Manager serializes every task through one modeled-FIFO
// queue (§III-B) — the known bottleneck behind the Table III/IV degradation
// at high load. This interface makes the ordering decision a policy:
//
//  * kFifo         — the paper's modeled-FIFO (ready stamp, client, seq),
//                    conservatively gated (vt::Gate). The default; behaves
//                    byte-identically to the historical TaskQueue.
//  * kWeightedFair — per-tenant weighted fair queueing: tasks are ordered by
//                    client-keyed virtual finish times, so a tenant's share
//                    of board passes tracks its configured weight under
//                    contention instead of its raw submission rate.
//  * kDeadline     — earliest-deadline-first on the task deadline the client
//                    derived from its CallOptions timeout; tasks without a
//                    deadline sort by ready stamp behind any deadlined work
//                    due at the same instant.
//  * kBatching     — FIFO order plus coalescing: compatible same-kernel
//                    small launches from the head of the queue are handed to
//                    the worker as one batch, which the board executes as a
//                    single pass (one launch overhead instead of N).
//
// Only the Device Manager constructs or pops a concrete scheduler; every
// other layer selects a policy through SchedulerConfig
// (tools/check_api.sh enforces interface-only access outside src/devmgr/).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "devmgr/task.h"
#include "vt/gate.h"
#include "vt/time.h"

namespace bf::devmgr {

enum class SchedulerPolicy { kFifo, kWeightedFair, kDeadline, kBatching };

[[nodiscard]] std::string_view to_string(SchedulerPolicy policy);

struct SchedulerConfig {
  SchedulerPolicy policy = SchedulerPolicy::kFifo;

  // kWeightedFair: client_id (pod name) -> weight. Missing clients get
  // default_weight; a tenant with twice the weight gets twice the board
  // passes when both are backlogged.
  std::map<std::string, double> weights;
  double default_weight = 1.0;

  // kBatching: at most max_batch tasks per board pass; a companion joins the
  // head's batch only if it runs the same kernel, its ready stamp is within
  // batch_window of the head's, and it moves no more than batch_small_bytes
  // over PCIe (batching exists to amortize the fixed launch overhead of
  // *small* launches — a huge transfer would just delay the whole pass).
  std::size_t max_batch = 4;
  vt::Duration batch_window = vt::Duration::millis(10);
  std::uint64_t batch_small_bytes = 4ULL * 1024 * 1024;
};

// Why a pop returned the way it did.
enum class PopReason {
  kSafe,          // conservatively gated: no client can still emit earlier
  kStallFallback, // gate stall-grace expired; best-effort (arrival) order
  kShutdownDrain, // gate shut down: draining so waiters are not stranded
  kClosedDrained, // scheduler closed and empty: the worker should exit
};

// Typed result of Scheduler::pop_next_safe (replaces the historical
// TaskQueue::pop(vt::Gate&, bool* ordered) out-param API).
struct PopResult {
  // The task to execute; nullopt iff the scheduler is closed and drained.
  std::optional<Task> task;
  // True iff the pop was conservatively gated — strict policy order over the
  // complete set of tasks stamped up to the popped task's ready time. False
  // for shutdown drains and stall-grace fallbacks (best-effort order).
  bool strict_order = true;
  PopReason reason = PopReason::kSafe;
  // kBatching only: further tasks coalesced with *task into one board pass,
  // in FIFO order. Empty under every other policy.
  std::vector<Task> batch;
};

// Single-consumer scheduling queue between dispatcher threads (push) and the
// Device Manager's worker (pop_next_safe). Thread safe; push/close/cancel
// serialize on an internal mutex, so a push racing close() either fully
// succeeds (the task will be drained) or is rejected with kUnavailable.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Enqueues a task. After close() every push is rejected deterministically
  // with kUnavailable — the task is NOT silently queued or dropped, and the
  // caller must fail the task's events so clients observe a terminal status.
  [[nodiscard]] virtual Status push(Task task) = 0;

  // Blocks until the policy's next task is safe to execute (or the
  // scheduler/gate is shut down). Single-consumer.
  [[nodiscard]] virtual PopResult pop_next_safe(vt::Gate& gate) = 0;

  // Removes every still-queued task of `session_id` and returns them so the
  // caller can fail their waiters (program waiters, per-op events). Tasks
  // already handed to the worker are not recalled.
  [[nodiscard]] virtual std::vector<Task> cancel_session(
      std::uint64_t session_id) = 0;

  virtual void close() = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    const SchedulerConfig& config);

}  // namespace bf::devmgr
