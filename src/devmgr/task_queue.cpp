#include "devmgr/task_queue.h"

namespace bf::devmgr {

Status TaskQueue::push(Task task) {
  {
    std::lock_guard lock(mutex_);
    if (closed_) {
      return Unavailable("task queue closed");
    }
    tasks_.insert(std::move(task));
  }
  cv_.notify_all();
  return Status::Ok();
}

std::optional<Task> TaskQueue::pop(vt::Gate& gate, bool* ordered) {
  if (ordered != nullptr) *ordered = true;
  for (;;) {
    vt::Time ready;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return closed_ || !tasks_.empty(); });
      if (tasks_.empty()) return std::nullopt;  // closed and drained
      ready = tasks_.begin()->ready;
    }
    // Conservative gate: no client can still emit anything earlier. While we
    // wait, only later-stamped tasks can be added, so the head is stable.
    bool fallback = false;
    if (!gate.wait_safe(ready, &fallback)) {
      // Gate shutdown: drain remaining tasks without ordering guarantees so
      // pending waiters (e.g. ProgramWaiter) are not stranded.
      if (ordered != nullptr) *ordered = false;
      std::lock_guard lock(mutex_);
      if (tasks_.empty()) return std::nullopt;
      Task task = *tasks_.begin();
      tasks_.erase(tasks_.begin());
      return task;
    }
    if (fallback && ordered != nullptr) *ordered = false;
    std::lock_guard lock(mutex_);
    if (tasks_.empty()) continue;
    Task task = *tasks_.begin();
    tasks_.erase(tasks_.begin());
    return task;
  }
}

std::vector<Task> TaskQueue::cancel_session(std::uint64_t session_id) {
  std::vector<Task> cancelled;
  std::lock_guard lock(mutex_);
  for (auto it = tasks_.begin(); it != tasks_.end();) {
    if (it->session_id == session_id) {
      cancelled.push_back(*it);
      it = tasks_.erase(it);
    } else {
      ++it;
    }
  }
  return cancelled;
}

void TaskQueue::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t TaskQueue::size() const {
  std::lock_guard lock(mutex_);
  return tasks_.size();
}

}  // namespace bf::devmgr
