#include "devmgr/device_manager.h"

#include <algorithm>

#include "common/arena.h"
#include "common/log.h"
#include "fault/injector.h"
#include "native/native_runtime.h"
#include "proto/wire.h"
#include "sim/bitstream.h"
#include "sim/kernels.h"
#include "trace/span.h"

namespace bf::devmgr {
namespace {

proto::DeviceDescriptor describe(const sim::Board& board) {
  const ocl::DeviceInfo info = native::describe_board(board);
  proto::DeviceDescriptor descriptor;
  descriptor.id = info.id;
  descriptor.name = info.name;
  descriptor.vendor = info.vendor;
  descriptor.platform = info.platform;
  descriptor.node = info.node;
  descriptor.accelerator = info.accelerator;
  descriptor.global_memory_bytes = info.global_memory_bytes;
  return descriptor;
}

template <typename T>
Bytes encode(const T& message) {
  proto::Writer writer;
  message.encode(writer);
  return writer.take();
}

template <typename T>
Result<T> decode(const net::Frame& frame) {
  proto::Reader reader(ByteSpan{frame.payload});
  return T::decode(reader);
}

// Free list for per-task op vectors: sealing hands the vector (and each op's
// staged write payload) to the worker, which retires both back to the pools
// after execution, so steady-state request streams reuse the same storage.
arena::Pool<std::vector<Operation>>& op_vector_pool() {
  static arena::Pool<std::vector<Operation>> pool;
  return pool;
}

// Routes a freshly decoded command-queue op into its building task,
// reviving a pooled op vector on the task's first op. state_mutex_ held.
void append_op(std::map<std::uint64_t, Task>& building, Operation op) {
  Task& task = building[op.queue_id];
  if (task.ops.capacity() == 0) task.ops = op_vector_pool().acquire();
  task.ops.push_back(std::move(op));
}

// Returns an executed (or cancelled) task's per-request storage to the
// pools. The ops vector keeps its capacity; staged write payloads keep
// their heap blocks.
void retire_task_storage(Task& task) {
  for (Operation& op : task.ops) {
    if (op.inline_data.is_heap()) {
      arena::recycle(std::move(op.inline_data));
    }
  }
  if (task.ops.capacity() != 0) {
    op_vector_pool().recycle(std::move(task.ops));
  }
}

}  // namespace

// See device_manager.h: one instance per task on the worker's stack.
struct CompletionBatch {
  std::shared_ptr<net::Connection> connection;
  bool resolved = false;  // connection lookup done (session may be gone)
  std::vector<net::Completion> staged;
};

DeviceManager::DeviceManager(DeviceManagerConfig config, sim::Board* board,
                             shm::Namespace* node_shm)
    : config_(std::move(config)),
      board_(board),
      node_shm_(node_shm),
      endpoint_(config_.id),
      scheduler_(make_scheduler(config_.scheduler)) {
  BF_CHECK(board_ != nullptr);
  const metrics::Labels labels{{"device", board_->id()},
                               {"manager", config_.id}};
  tasks_counter_ = metrics_.counter("bf_devmgr_tasks_total", labels);
  ops_counter_ = metrics_.counter("bf_devmgr_ops_total", labels);
  reconfig_counter_ = metrics_.counter("bf_devmgr_reconfigurations_total",
                                       labels);
  busy_ms_gauge_ = metrics_.gauge("bf_devmgr_busy_ms", labels);
  sessions_gauge_ = metrics_.gauge("bf_devmgr_sessions", labels);
  task_span_ms_ = metrics_.histogram("bf_devmgr_task_span_ms", labels);
  queue_depth_gauge_ = metrics_.gauge("bf_devmgr_queue_depth", labels);
  health_probes_counter_ =
      metrics_.counter("bf_devmgr_health_probes_total", labels);
  tasks_cancelled_counter_ =
      metrics_.counter("bf_devmgr_tasks_cancelled_total", labels);

  endpoint_.gate().set_stall_grace(config_.gate_stall_grace);
  endpoint_.set_handler([this](std::shared_ptr<net::Connection> connection) {
    std::lock_guard lock(threads_mutex_);
    if (shutdown_.load()) {
      connection->close();
      return;
    }
    dispatchers_.emplace_back([this, connection = std::move(connection)] {
      serve_connection(connection);
    });
  });
  worker_ = std::thread([this] { worker_loop(); });
}

DeviceManager::~DeviceManager() { shutdown(); }

void DeviceManager::shutdown() {
  if (shutdown_.exchange(true)) return;
  endpoint_.shutdown();  // closes connections and the gate
  scheduler_->close();
  if (worker_.joinable()) worker_.join();
  std::vector<std::thread> dispatchers;
  {
    std::lock_guard lock(threads_mutex_);
    dispatchers.swap(dispatchers_);
  }
  for (std::thread& thread : dispatchers) {
    if (thread.joinable()) thread.join();
  }
}

double DeviceManager::utilization(vt::Time from, vt::Time to) const {
  if (to <= from) return 0.0;
  const vt::Duration busy = board_->busy_between(from, to);
  return busy.sec() / (to - from).sec();
}

std::size_t DeviceManager::session_count() const {
  std::lock_guard lock(state_mutex_);
  return sessions_.size();
}

std::uint64_t DeviceManager::tasks_executed() const {
  std::lock_guard lock(state_mutex_);
  return tasks_executed_;
}

std::uint64_t DeviceManager::ops_executed() const {
  std::lock_guard lock(state_mutex_);
  return ops_executed_;
}

std::vector<DeviceManager::ExecutionRecord> DeviceManager::execution_journal()
    const {
  std::lock_guard lock(state_mutex_);
  return journal_;
}

vt::Duration DeviceManager::client_busy_between(const std::string& client_id,
                                                vt::Time from,
                                                vt::Time to) const {
  std::lock_guard lock(state_mutex_);
  vt::Duration total = vt::Duration::nanos(0);
  for (const BusyRecord& record : busy_records_) {
    if (record.client_id != client_id) continue;
    const vt::Time lo = vt::max(record.interval.start, from);
    const vt::Time hi = record.interval.end < to ? record.interval.end : to;
    if (lo < hi) total += hi - lo;
  }
  return total;
}

std::vector<DeviceManager::ClientBusy> DeviceManager::busy_snapshot(
    vt::Time from, vt::Time to) const {
  std::lock_guard lock(state_mutex_);
  std::vector<ClientBusy> out;
  for (const BusyRecord& record : busy_records_) {
    if (record.interval.end <= from || record.interval.start >= to) continue;
    out.push_back(ClientBusy{record.client_id, record.interval.start,
                             record.interval.end});
  }
  return out;
}

Result<DeviceManager::HealthSnapshot> DeviceManager::health() {
  if (shutdown_.load()) {
    return Unavailable("device manager " + config_.id + " is shut down");
  }
  HealthSnapshot snapshot;
  snapshot.queue_depth = scheduler_->size();
  snapshot.accepting = true;
  {
    std::lock_guard lock(state_mutex_);
    snapshot.sessions = sessions_.size();
    snapshot.ops_executed = ops_executed_;
  }
  health_probes_counter_->increment();
  queue_depth_gauge_->set(static_cast<double>(snapshot.queue_depth));
  return snapshot;
}

std::uint64_t DeviceManager::tasks_cancelled() const {
  std::lock_guard lock(state_mutex_);
  return tasks_cancelled_;
}

std::string DeviceManager::segment_name(std::uint64_t session_id) const {
  return config_.id + ":sess:" + std::to_string(session_id);
}

// --- Dispatcher ----------------------------------------------------------------

void DeviceManager::serve_connection(
    const std::shared_ptr<net::Connection>& connection) {
  std::uint64_t session_id = 0;

  while (auto frame = connection->next_request()) {
    // Session must be opened first.
    if (session_id == 0) {
      if (frame->method != proto::Method::kOpenSession) {
        proto::AckResp resp;
        resp.status = proto::StatusMsg::from(
            FailedPrecondition("session not opened"));
        connection->reply(*frame, encode(resp),
                          frame->arrival_time + config_.sync_handling);
        continue;
      }
      auto request = decode<proto::OpenSessionReq>(*frame);
      proto::OpenSessionResp resp;
      if (!request.ok()) {
        resp.status = proto::StatusMsg::from(request.status());
        connection->reply(*frame, encode(resp),
                          frame->arrival_time + config_.sync_handling);
        continue;
      }
      Session session;
      session.client_id = request.value().client_id;
      session.connection = connection;
      {
        std::lock_guard lock(state_mutex_);
        session.id = next_session_id_++;
        session_id = session.id;
      }
      bool shm_granted = false;
      if (request.value().use_shared_memory && config_.allow_shared_memory &&
          node_shm_ != nullptr) {
        auto segment =
            node_shm_->create(segment_name(session_id),
                              board_->host().memcpy_model,
                              config_.shm_segment_bytes);
        if (segment.ok()) {
          session.segment = segment.value();
          shm_granted = true;
        } else {
          BF_LOG_WARN("devmgr") << config_.id << ": shm denied for "
                                << session.client_id << ": "
                                << segment.status().to_string();
        }
      }
      {
        std::lock_guard lock(state_mutex_);
        sessions_.emplace(session_id, std::move(session));
        sessions_gauge_->set(static_cast<double>(sessions_.size()));
      }
      resp.session_id = session_id;
      resp.shared_memory_granted = shm_granted;
      resp.device = describe(*board_);
      connection->reply(*frame, encode(resp),
                        frame->arrival_time + config_.sync_handling);
      continue;
    }

    if (frame->method == proto::Method::kOpenSession) {
      // Duplicate open on an established connection: the first reply was
      // lost (or dropped by fault injection) and the client retried. Re-ack
      // the existing session instead of opening a second one — this is what
      // makes OpenSession idempotent (proto::is_idempotent).
      proto::OpenSessionResp resp;
      {
        std::lock_guard lock(state_mutex_);
        auto it = sessions_.find(session_id);
        if (it != sessions_.end()) {
          resp.session_id = session_id;
          resp.shared_memory_granted = it->second.segment != nullptr;
        } else {
          resp.status = proto::StatusMsg::from(
              Unavailable("session torn down during open retry"));
        }
      }
      resp.device = describe(*board_);
      connection->reply(*frame, encode(resp),
                        frame->arrival_time + config_.sync_handling);
      continue;
    }

    if (proto::is_command_queue_method(frame->method)) {
      handle_command(session_id, *frame);
    } else {
      handle_sync(session_id, *frame);
    }
    // The handlers decoded everything they need out of the payload
    // (WriteData bodies are copied into the op's staging buffer); the
    // frame's heap block goes back to the pool the client's encoder drew
    // it from.
    arena::recycle(std::move(frame->payload));
  }

  if (session_id != 0) cleanup_session(session_id);
}

void DeviceManager::handle_sync(std::uint64_t session_id,
                                const net::Frame& frame) {
  const vt::Time at = frame.arrival_time + config_.sync_handling;
  std::unique_lock lock(state_mutex_);
  auto session_it = sessions_.find(session_id);
  if (session_it == sessions_.end()) return;
  Session& session = session_it->second;
  auto connection = session.connection;
  if (frame.trace.is_valid() && trace::enabled()) {
    // Server-side handling span, child of the client's rpc span. Salted
    // with the arrival stamp so retried attempts get distinct span ids.
    const trace::SpanContext ctx = frame.trace.child(
        trace::salt::kHandle ^
        static_cast<std::uint64_t>(frame.arrival_time.ns()));
    trace::record(trace::Span{
        config_.id,
        std::string("handle:") + std::string(proto::to_string(frame.method)),
        frame.arrival_time, at, ctx.trace_id, ctx.span_id,
        frame.trace.span_id});
  }
  switch (frame.method) {
    case proto::Method::kGetDeviceInfo: {
      proto::OpenSessionResp resp;
      resp.session_id = session.id;
      resp.shared_memory_granted = session.segment != nullptr;
      resp.device = describe(*board_);
      connection->reply(frame, encode(resp), at);
      return;
    }
    case proto::Method::kProgram: {
      auto request = decode<proto::ProgramReq>(frame);
      proto::ProgramResp resp;
      if (!request.ok()) {
        resp.status = proto::StatusMsg::from(request.status());
        connection->reply(frame, encode(resp), at);
        return;
      }
      const sim::Bitstream* bitstream =
          sim::BitstreamLibrary::standard().find(request.value().bitstream_id);
      if (bitstream == nullptr) {
        resp.status = proto::StatusMsg::from(NotFound(
            "unknown bitstream '" + request.value().bitstream_id + "'"));
        connection->reply(frame, encode(resp), at);
        return;
      }
      const auto resident = board_->resident_accelerators();
      if (std::find(resident.begin(), resident.end(),
                    bitstream->accelerator) != resident.end()) {
        resp.reconfigured = false;  // already resident (region or full image)
        connection->reply(frame, encode(resp), at);
        return;
      }
      Task task;
      task.is_program = true;
      task.bitstream_id = bitstream->id;
      task.session_id = session.id;
      task.client_id = session.client_id;
      task.ready = at;
      task.program_waiter = std::make_shared<ProgramWaiter>();
      task.seq = next_task_seq_++;
      auto waiter = task.program_waiter;
      if (Status pushed = scheduler_->push(std::move(task)); !pushed.ok()) {
        // Shutdown race: the queue rejected the task; complete the waiter
        // ourselves so the dispatcher below unblocks with a status.
        waiter->complete(pushed, at);
      }
      // Hand the frame's gate hold over to the queued task before blocking,
      // otherwise the worker could never reach the task's stamp.
      connection->done_processing();
      lock.unlock();  // the worker needs state_mutex_ to wipe buffers
      auto [status, end] = waiter->wait();
      resp.status = proto::StatusMsg::from(status);
      resp.reconfigured = status.ok();
      connection->reply(frame, encode(resp), vt::max(end, at));
      return;
    }
    case proto::Method::kCreateBuffer: {
      auto request = decode<proto::CreateBufferReq>(frame);
      proto::CreateBufferResp resp;
      if (!request.ok()) {
        resp.status = proto::StatusMsg::from(request.status());
      } else {
        auto handle = board_->allocate(request.value().size);
        if (!handle.ok()) {
          resp.status = proto::StatusMsg::from(handle.status());
        } else {
          const std::uint64_t id = session.next_buffer_id++;
          session.buffers[id] = handle.value();
          resp.buffer_id = id;
        }
      }
      connection->reply(frame, encode(resp), at);
      return;
    }
    case proto::Method::kReleaseBuffer: {
      auto request = decode<proto::ReleaseBufferReq>(frame);
      proto::AckResp resp;
      if (!request.ok()) {
        resp.status = proto::StatusMsg::from(request.status());
      } else {
        auto it = session.buffers.find(request.value().buffer_id);
        if (it == session.buffers.end()) {
          resp.status = proto::StatusMsg::from(
              NotFound("unknown buffer " +
                       std::to_string(request.value().buffer_id)));
        } else {
          Status released = board_->release(it->second);
          session.buffers.erase(it);
          resp.status = proto::StatusMsg::from(released);
        }
      }
      connection->reply(frame, encode(resp), at);
      return;
    }
    case proto::Method::kCreateKernel: {
      auto request = decode<proto::CreateKernelReq>(frame);
      proto::CreateKernelResp resp;
      if (!request.ok()) {
        resp.status = proto::StatusMsg::from(request.status());
      } else if (!board_->has_kernel(request.value().name)) {
        resp.status = proto::StatusMsg::from(NotFound(
            "kernel '" + request.value().name + "' not in bitstream"));
      } else {
        const sim::KernelModel* model =
            sim::KernelRegistry::standard().find(request.value().name);
        BF_CHECK(model != nullptr);
        const std::uint64_t id = session.next_kernel_id++;
        session.kernels[id] = request.value().name;
        resp.kernel_id = id;
        resp.arity = model->arity();
      }
      connection->reply(frame, encode(resp), at);
      return;
    }
    case proto::Method::kCreateQueue: {
      proto::CreateQueueResp resp;
      const std::uint64_t id = session.next_queue_id++;
      session.queues[id] = true;
      resp.queue_id = id;
      connection->reply(frame, encode(resp), at);
      return;
    }
    case proto::Method::kReleaseQueue: {
      proto::AckResp resp;
      connection->reply(frame, encode(resp), at);
      return;
    }
    case proto::Method::kHealthCheck: {
      proto::HealthResp resp;
      resp.queue_depth = scheduler_->size();
      resp.sessions = sessions_.size();
      resp.ops_executed = ops_executed_;
      resp.accepting = !shutdown_.load();
      health_probes_counter_->increment();
      queue_depth_gauge_->set(static_cast<double>(resp.queue_depth));
      connection->reply(frame, encode(resp), at);
      return;
    }
    default: {
      proto::AckResp resp;
      resp.status = proto::StatusMsg::from(
          Unimplemented(std::string("method ") +
                        std::string(proto::to_string(frame.method))));
      connection->reply(frame, encode(resp), at);
      return;
    }
  }
}

void DeviceManager::handle_command(std::uint64_t session_id,
                                   const net::Frame& frame) {
  const vt::Time at = frame.arrival_time + config_.op_handling;
  std::lock_guard lock(state_mutex_);
  auto session_it = sessions_.find(session_id);
  if (session_it == sessions_.end()) return;
  Session& session = session_it->second;
  auto connection = session.connection;
  auto ack_enqueued = [&](std::uint64_t op_id) {
    proto::OpEnqueued ack;
    ack.op_id = op_id;
    if (Status sent = connection->notify(proto::Method::kOpEnqueued, op_id,
                                         encode(ack), at);
        !sent.ok()) {
      // Client already gone: its events will be poisoned by the connection
      // loss, not by this ack, so the drop is benign but worth a trace.
      BF_LOG_WARN("devmgr") << config_.id << ": OpEnqueued for op " << op_id
                            << " undeliverable: " << sent.to_string();
    }
  };

  switch (frame.method) {
    case proto::Method::kEnqueueWrite: {
      auto request = decode<proto::EnqueueWriteReq>(frame);
      if (!request.ok()) return;
      Operation op;
      op.kind = Operation::Kind::kWrite;
      op.op_id = request.value().op_id;
      op.queue_id = request.value().queue_id;
      op.buffer_id = request.value().buffer_id;
      op.offset = request.value().offset;
      op.size = request.value().size;
      op.wait_op_ids = std::move(request.value().wait_op_ids);
      op.trace = trace::SpanContext{request.value().trace_id,
                                    request.value().parent_span};
      append_op(session.building, std::move(op));
      ack_enqueued(request.value().op_id);
      return;
    }
    case proto::Method::kWriteData: {
      auto request = decode<proto::WriteData>(frame);
      if (!request.ok()) return;
      // Find the pending write op (BUFFER phase of its state machine).
      for (auto& [queue_id, task] : session.building) {
        for (Operation& op : task.ops) {
          if (op.op_id == request.value().op_id &&
              op.kind == Operation::Kind::kWrite && !op.data_ready) {
            op.shm_slot = request.value().shm_slot;
            op.inline_data = std::move(request.value().data);
            op.use_shm = request.value().shm_slot >= 0;
            op.data_ready = true;
            return;
          }
        }
      }
      BF_LOG_WARN("devmgr") << config_.id << ": WriteData for unknown op "
                            << request.value().op_id;
      return;
    }
    case proto::Method::kEnqueueRead: {
      auto request = decode<proto::EnqueueReadReq>(frame);
      if (!request.ok()) return;
      Operation op;
      op.kind = Operation::Kind::kRead;
      op.op_id = request.value().op_id;
      op.queue_id = request.value().queue_id;
      op.buffer_id = request.value().buffer_id;
      op.offset = request.value().offset;
      op.size = request.value().size;
      op.use_shm = request.value().use_shared_memory;
      op.wait_op_ids = std::move(request.value().wait_op_ids);
      op.trace = trace::SpanContext{request.value().trace_id,
                                    request.value().parent_span};
      append_op(session.building, std::move(op));
      ack_enqueued(request.value().op_id);
      return;
    }
    case proto::Method::kEnqueueKernel: {
      auto request = decode<proto::EnqueueKernelReq>(frame);
      if (!request.ok()) return;
      Operation op;
      op.kind = Operation::Kind::kKernel;
      op.op_id = request.value().op_id;
      op.queue_id = request.value().queue_id;
      op.kernel_id = request.value().kernel_id;
      op.args = std::move(request.value().args);
      op.global_size = request.value().global_size;
      op.wait_op_ids = std::move(request.value().wait_op_ids);
      op.trace = trace::SpanContext{request.value().trace_id,
                                    request.value().parent_span};
      append_op(session.building, std::move(op));
      ack_enqueued(request.value().op_id);
      return;
    }
    case proto::Method::kFlush: {
      auto request = decode<proto::FlushReq>(frame);
      if (!request.ok()) return;
      const vt::Time deadline = request.value().deadline_ns != 0
                                    ? vt::Time::nanos(static_cast<std::int64_t>(
                                          request.value().deadline_ns))
                                    : vt::Time::infinite();
      seal_task(session, request.value().queue_id, at, deadline);
      return;
    }
    case proto::Method::kFinish: {
      auto request = decode<proto::FinishReq>(frame);
      if (!request.ok()) return;
      Operation marker;
      marker.kind = Operation::Kind::kFinish;
      marker.op_id = request.value().op_id;
      marker.queue_id = request.value().queue_id;
      append_op(session.building, std::move(marker));
      const vt::Time deadline = request.value().deadline_ns != 0
                                    ? vt::Time::nanos(static_cast<std::int64_t>(
                                          request.value().deadline_ns))
                                    : vt::Time::infinite();
      seal_task(session, request.value().queue_id, at, deadline);
      return;
    }
    default:
      return;
  }
}

// Called with state_mutex_ held.
void DeviceManager::seal_task(Session& session, std::uint64_t queue_id,
                              vt::Time ready, vt::Time deadline) {
  auto it = session.building.find(queue_id);
  if (it == session.building.end() || it->second.empty()) return;
  Task task = std::move(it->second);
  session.building.erase(it);
  task.session_id = session.id;
  task.client_id = session.client_id;
  task.queue_id = queue_id;
  task.ready = ready;
  task.deadline = deadline;
  task.seq = next_task_seq_++;
  // kBatching metadata: a task qualifies iff it is one dependency-free
  // kernel launch (plus its transfers) moving a small number of bytes. The
  // kernel id resolves to a name here, where the session map is at hand.
  std::size_t kernel_ops = 0;
  bool dependency_free = true;
  std::uint64_t transfer_bytes = 0;
  std::string kernel_name;
  for (const Operation& op : task.ops) {
    if (!op.wait_op_ids.empty()) dependency_free = false;
    if (op.kind == Operation::Kind::kKernel) {
      ++kernel_ops;
      auto kernel_it = session.kernels.find(op.kernel_id);
      if (kernel_it != session.kernels.end()) kernel_name = kernel_it->second;
    } else if (op.kind == Operation::Kind::kWrite ||
               op.kind == Operation::Kind::kRead) {
      transfer_bytes += op.size;
    }
  }
  if (kernel_ops == 1 && dependency_free && !kernel_name.empty() &&
      transfer_bytes <= config_.scheduler.batch_small_bytes) {
    task.batchable = true;
    task.batch_key = kernel_name;
  }
  std::vector<std::uint64_t> op_ids;
  op_ids.reserve(task.ops.size());
  for (const Operation& op : task.ops) op_ids.push_back(op.op_id);
  if (Status pushed = scheduler_->push(std::move(task)); !pushed.ok()) {
    // Shutdown race: the central queue already closed. Fail every op's
    // event with the rejection status so no client event is left hanging
    // in FIRST/BUFFER (push-after-close must reject, never silently queue).
    for (const std::uint64_t op_id : op_ids) {
      proto::OpComplete completion;
      completion.op_id = op_id;
      completion.status = proto::StatusMsg::from(pushed);
      if (session.connection != nullptr && !session.connection->closed()) {
        if (Status sent = session.connection->notify(
                proto::Method::kOpComplete, op_id, encode(completion), ready);
            !sent.ok()) {
          BF_LOG_WARN("devmgr")
              << config_.id << ": rejection notice for op " << op_id
              << " undeliverable: " << sent.to_string();
        }
      }
    }
  }
}

// --- Worker ---------------------------------------------------------------------

void DeviceManager::worker_loop() {
  for (;;) {
    PopResult next = scheduler_->pop_next_safe(endpoint_.gate());
    if (!next.task.has_value()) break;  // closed and drained
    if (config_.record_execution_journal) {
      std::lock_guard lock(state_mutex_);
      journal_.push_back(ExecutionRecord{next.task->ready, next.task->seq,
                                         next.task->client_id,
                                         next.strict_order});
      for (const Task& companion : next.batch) {
        journal_.push_back(ExecutionRecord{companion.ready, companion.seq,
                                           companion.client_id,
                                           next.strict_order});
      }
    }
    if (fault::should_fire(fault::site::kDevmgrWorkerStall)) {
      // Real-time stall only: virtual stamps are untouched, so the modeled
      // trace must come out identical while thread interleavings get
      // shaken (the sanitizers' favorite food).
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (next.batch.empty()) {
      execute_task(*next.task);
    } else {
      execute_batch(*next.task, next.batch);
    }
    retire_task_storage(*next.task);
    for (Task& companion : next.batch) {
      retire_task_storage(companion);
    }
  }
}

void DeviceManager::execute_task(const Task& task) {
  if (task.is_program) {
    if (fault::should_fire(fault::site::kDevmgrReconfigAbort)) {
      // Aborted before the board was touched: resident image and every
      // client buffer stay intact, the requester sees a terminal status.
      task.program_waiter->complete(
          Aborted("injected fault: reconfiguration aborted"), task.ready);
      return;
    }
    const sim::Bitstream* bitstream =
        sim::BitstreamLibrary::standard().find(task.bitstream_id);
    if (bitstream == nullptr) {
      task.program_waiter->complete(
          NotFound("unknown bitstream '" + task.bitstream_id + "'"),
          task.ready);
      return;
    }
    // ensure_accelerator dedupes racing program requests (no-op when the
    // image is already resident), uses a partial-reconfiguration region in
    // space-sharing mode, and falls back to a full reprogram otherwise.
    bool wiped_memory = false;
    auto interval =
        board_->ensure_accelerator(*bitstream, task.ready, &wiped_memory);
    if (!interval.ok()) {
      task.program_waiter->complete(interval.status(), task.ready);
      return;
    }
    if (wiped_memory) {
      // Full reconfiguration wiped DDR: every client's buffers are gone.
      std::lock_guard lock(state_mutex_);
      for (auto& [id, session] : sessions_) {
        session.buffers.clear();
      }
    }
    if (interval.value().end > interval.value().start) {
      reconfig_counter_->increment();
    }
    task.program_waiter->complete(Status::Ok(), interval.value().end);
    return;
  }

  std::string client_id;
  {
    std::lock_guard lock(state_mutex_);
    auto session_it = sessions_.find(task.session_id);
    if (session_it != sessions_.end()) {
      client_id = session_it->second.client_id;
    }
  }
  // Completions are staged per op and delivered once at the end of the
  // task: one consumer wake instead of one per op. Safe because the worker
  // never depends on the client observing an earlier op mid-task, and the
  // frame stamps (and the gate wake bounds anchored inside notify_batch)
  // are identical to per-op delivery.
  CompletionBatch batch;
  // Request context for the task's spans: ops of one task come from one
  // request in practice (each invocation seals its own flush), so the first
  // traced op carries it. Only *successful* ops earn spans — aborted,
  // poisoned or cancelled ops leave no trace (a tested invariant).
  trace::SpanContext request_ctx;
  for (const Operation& op : task.ops) {
    if (op.trace.is_valid()) {
      request_ctx = op.trace;
      break;
    }
  }
  const bool traced = request_ctx.is_valid() && trace::enabled();
  struct ExecutedOp {
    const Operation* op;
    sim::Board::Interval interval;
  };
  std::vector<ExecutedOp> executed;
  vt::Time cursor = task.ready;
  // Task-level spans: "task" = FIFO admission to last op completion, split
  // into "queue-wait" (admission to first device activity — the paper's
  // central-queue delay) and "execute", with one "op:<kind>" span per
  // successful operation. By construction queue-wait + execute == task.
  // Emitted *before* the final op's completion is notified: the client
  // woken by that completion may immediately tear the scenario down (and
  // uninstall the trace sink), so every span must reach the builder first.
  auto record_task_spans = [&] {
    if (!traced || executed.empty()) return;
    vt::Time exec_start = executed.front().interval.start;
    vt::Time task_end = exec_start;
    for (const ExecutedOp& rec : executed) {
      if (rec.interval.start < exec_start) exec_start = rec.interval.start;
      if (rec.interval.end > task_end) task_end = rec.interval.end;
    }
    // Salt from the queue's *deterministic* ordering key (ready stamp +
    // client), never task.seq: the admission counter is assigned under real
    // thread races, and golden traces must be byte-identical across runs.
    const trace::SpanContext task_ctx = request_ctx.child(
        trace::salt::kTask ^
        trace::mix64(static_cast<std::uint64_t>(task.ready.ns())) ^
        trace::fnv1a(task.client_id));
    const trace::SpanContext wait_ctx =
        task_ctx.child(trace::salt::kQueueWait);
    const trace::SpanContext exec_ctx = task_ctx.child(trace::salt::kExecute);
    trace::record(trace::Span{config_.id, "task", task.ready, task_end,
                              task_ctx.trace_id, task_ctx.span_id,
                              request_ctx.span_id});
    trace::record(trace::Span{config_.id, "queue-wait", task.ready,
                              exec_start, wait_ctx.trace_id, wait_ctx.span_id,
                              task_ctx.span_id});
    trace::record(trace::Span{config_.id, "execute", exec_start, task_end,
                              exec_ctx.trace_id, exec_ctx.span_id,
                              task_ctx.span_id});
    for (const ExecutedOp& rec : executed) {
      const Operation& op = *rec.op;
      if (op.kind == Operation::Kind::kFinish) continue;  // zero-width marker
      const char* kind = op.kind == Operation::Kind::kWrite  ? "op:write"
                         : op.kind == Operation::Kind::kRead ? "op:read"
                                                             : "op:kernel";
      const trace::SpanContext op_ctx =
          op.trace.child(trace::salt::kOp ^ op.op_id);
      trace::record(trace::Span{config_.id, kind, rec.interval.start,
                                rec.interval.end, op_ctx.trace_id,
                                op_ctx.span_id, exec_ctx.span_id});
    }
  };
  bool abort_rest = false;
  for (const Operation& op : task.ops) {
    proto::OpComplete completion;
    completion.op_id = op.op_id;
    if (!abort_rest && fault::should_fire(fault::site::kDevmgrTaskAbort)) {
      abort_rest = true;
    }
    if (abort_rest) {
      // Mid-task shutdown: this op and everything after it in the task is
      // failed with a terminal status (earlier ops' effects stand) — no
      // event may be left dangling in FIRST/BUFFER.
      completion.status = proto::StatusMsg::from(
          Aborted("injected fault: mid-task shutdown"));
      {
        std::lock_guard lock(state_mutex_);
        ++ops_executed_;
        if (&op == &task.ops.back()) ++tasks_executed_;
      }
      ops_counter_->increment();
      if (&op == &task.ops.back()) {
        tasks_counter_->increment();
        record_task_spans();  // spans for the successful prefix, if any
      }
      stage_completion(batch, task.session_id, op.op_id, completion,
                       cursor);
      continue;
    }
    // Event wait list: delay the op's readiness to its dependencies'
    // completions. A dependency whose command was never flushed is a
    // client-side ordering error (OpenCL would deadlock; we fail fast).
    Status wait_status;
    vt::Time op_ready = cursor;
    if (!op.wait_op_ids.empty()) {
      std::lock_guard lock(state_mutex_);
      auto session_it = sessions_.find(task.session_id);
      for (std::uint64_t wait_id : op.wait_op_ids) {
        if (session_it == sessions_.end()) break;
        auto done = session_it->second.completed_ops.find(wait_id);
        if (done == session_it->second.completed_ops.end()) {
          wait_status = FailedPrecondition(
              "wait-list op " + std::to_string(wait_id) +
              " has not completed (flush its queue first)");
          break;
        }
        op_ready = vt::max(op_ready, done->second);
      }
    }
    if (!wait_status.ok()) {
      completion.status = proto::StatusMsg::from(wait_status);
      if (&op == &task.ops.back()) record_task_spans();
      stage_completion(batch, task.session_id, op.op_id, completion,
                       cursor);
      {
        std::lock_guard lock(state_mutex_);
        ++ops_executed_;
        if (&op == &task.ops.back()) ++tasks_executed_;
      }
      ops_counter_->increment();
      if (&op == &task.ops.back()) tasks_counter_->increment();
      continue;
    }
    auto interval =
        execute_operation(task.session_id, op, op_ready, completion);
    if (interval.ok()) {
      cursor = interval.value().end;
      if (traced) executed.push_back(ExecutedOp{&op, interval.value()});
      completion.status = proto::StatusMsg::from(Status::Ok());
      std::lock_guard lock(state_mutex_);
      if (interval.value().end > interval.value().start) {
        busy_records_.push_back(BusyRecord{client_id, interval.value()});
      }
      auto session_it = sessions_.find(task.session_id);
      if (session_it != sessions_.end()) {
        session_it->second.completed_ops[op.op_id] = interval.value().end;
      }
    } else {
      completion.status = proto::StatusMsg::from(interval.status());
    }
    // Account before notifying: a client woken by the completion must
    // observe the op as executed.
    {
      std::lock_guard lock(state_mutex_);
      ++ops_executed_;
      if (&op == &task.ops.back()) ++tasks_executed_;
    }
    ops_counter_->increment();
    if (&op == &task.ops.back()) {
      tasks_counter_->increment();
      // The exemplar lets an operator jump from a slow histogram bucket to
      // the exact trace that landed in it.
      task_span_ms_->observe((cursor - task.ready).ms(),
                             request_ctx.trace_id);
      busy_ms_gauge_->set(board_->busy_total().ms());
      record_task_spans();
    }
    stage_completion(batch, task.session_id, op.op_id, completion,
                     cursor);
  }
  flush_completions(batch);
}

void DeviceManager::execute_batch(const Task& lead,
                                  const std::vector<Task>& companions) {
  // The scheduler only coalesces batchable tasks: one dependency-free kernel
  // launch each (devmgr/scheduler.h), so the wait-list and program paths of
  // execute_task cannot occur here. Phase A runs every task's pre-kernel
  // transfers in batch order, the kernel launches execute as one board pass,
  // and phase C runs the post-kernel ops — preserving each client's op order
  // and the per-op completion/metrics/span semantics of execute_task.
  struct ExecutedOp {
    const Operation* op;
    sim::Board::Interval interval;
  };
  struct Item {
    const Task* task = nullptr;
    std::string client_id;
    trace::SpanContext request_ctx;
    bool traced = false;
    std::vector<ExecutedOp> executed;
    vt::Time cursor;
    bool abort_rest = false;
    std::size_t kernel_index = 0;
    CompletionBatch net_batch;  // per-task staging, one wake per client
  };
  std::vector<Item> items;
  items.reserve(1 + companions.size());
  auto add_item = [&](const Task& task) {
    Item item;
    item.task = &task;
    item.cursor = task.ready;
    {
      std::lock_guard lock(state_mutex_);
      auto session_it = sessions_.find(task.session_id);
      if (session_it != sessions_.end()) {
        item.client_id = session_it->second.client_id;
      }
    }
    for (std::size_t i = 0; i < task.ops.size(); ++i) {
      const Operation& op = task.ops[i];
      if (op.kind == Operation::Kind::kKernel) item.kernel_index = i;
      if (!item.request_ctx.is_valid() && op.trace.is_valid()) {
        item.request_ctx = op.trace;
      }
    }
    item.traced = item.request_ctx.is_valid() && trace::enabled();
    items.push_back(std::move(item));
  };
  add_item(lead);
  for (const Task& companion : companions) add_item(companion);

  auto record_task_spans = [&](Item& item) {
    if (!item.traced || item.executed.empty()) return;
    const Task& task = *item.task;
    vt::Time exec_start = item.executed.front().interval.start;
    vt::Time task_end = exec_start;
    for (const ExecutedOp& rec : item.executed) {
      if (rec.interval.start < exec_start) exec_start = rec.interval.start;
      if (rec.interval.end > task_end) task_end = rec.interval.end;
    }
    const trace::SpanContext task_ctx = item.request_ctx.child(
        trace::salt::kTask ^
        trace::mix64(static_cast<std::uint64_t>(task.ready.ns())) ^
        trace::fnv1a(task.client_id));
    const trace::SpanContext wait_ctx =
        task_ctx.child(trace::salt::kQueueWait);
    const trace::SpanContext exec_ctx = task_ctx.child(trace::salt::kExecute);
    trace::record(trace::Span{config_.id, "task", task.ready, task_end,
                              task_ctx.trace_id, task_ctx.span_id,
                              item.request_ctx.span_id});
    trace::record(trace::Span{config_.id, "queue-wait", task.ready,
                              exec_start, wait_ctx.trace_id, wait_ctx.span_id,
                              task_ctx.span_id});
    trace::record(trace::Span{config_.id, "execute", exec_start, task_end,
                              exec_ctx.trace_id, exec_ctx.span_id,
                              task_ctx.span_id});
    for (const ExecutedOp& rec : item.executed) {
      const Operation& op = *rec.op;
      if (op.kind == Operation::Kind::kFinish) continue;  // zero-width marker
      const char* kind = op.kind == Operation::Kind::kWrite  ? "op:write"
                         : op.kind == Operation::Kind::kRead ? "op:read"
                                                             : "op:kernel";
      const trace::SpanContext op_ctx =
          op.trace.child(trace::salt::kOp ^ op.op_id);
      trace::record(trace::Span{config_.id, kind, rec.interval.start,
                                rec.interval.end, op_ctx.trace_id,
                                op_ctx.span_id, exec_ctx.span_id});
    }
  };

  auto fail_op_aborted = [&](Item& item, const Operation& op) {
    proto::OpComplete completion;
    completion.op_id = op.op_id;
    completion.status =
        proto::StatusMsg::from(Aborted("injected fault: mid-task shutdown"));
    {
      std::lock_guard lock(state_mutex_);
      ++ops_executed_;
      if (&op == &item.task->ops.back()) ++tasks_executed_;
    }
    ops_counter_->increment();
    if (&op == &item.task->ops.back()) {
      tasks_counter_->increment();
      record_task_spans(item);  // spans for the successful prefix, if any
    }
    stage_completion(item.net_batch, item.task->session_id, op.op_id,
                     completion, item.cursor);
  };

  auto complete_op = [&](Item& item, const Operation& op,
                         const Result<sim::Board::Interval>& interval,
                         proto::OpComplete& completion) {
    const Task& task = *item.task;
    if (interval.ok()) {
      item.cursor = interval.value().end;
      if (item.traced) {
        item.executed.push_back(ExecutedOp{&op, interval.value()});
      }
      completion.status = proto::StatusMsg::from(Status::Ok());
      std::lock_guard lock(state_mutex_);
      if (interval.value().end > interval.value().start) {
        busy_records_.push_back(BusyRecord{item.client_id, interval.value()});
      }
      auto session_it = sessions_.find(task.session_id);
      if (session_it != sessions_.end()) {
        session_it->second.completed_ops[op.op_id] = interval.value().end;
      }
    } else {
      completion.status = proto::StatusMsg::from(interval.status());
    }
    {
      std::lock_guard lock(state_mutex_);
      ++ops_executed_;
      if (&op == &task.ops.back()) ++tasks_executed_;
    }
    ops_counter_->increment();
    if (&op == &task.ops.back()) {
      tasks_counter_->increment();
      task_span_ms_->observe((item.cursor - task.ready).ms(),
                             item.request_ctx.trace_id);
      busy_ms_gauge_->set(board_->busy_total().ms());
      record_task_spans(item);
    }
    stage_completion(item.net_batch, task.session_id, op.op_id, completion,
                     item.cursor);
  };

  auto run_op = [&](Item& item, const Operation& op) {
    if (!item.abort_rest &&
        fault::should_fire(fault::site::kDevmgrTaskAbort)) {
      item.abort_rest = true;
    }
    if (item.abort_rest) {
      fail_op_aborted(item, op);
      return;
    }
    proto::OpComplete completion;
    completion.op_id = op.op_id;
    auto interval =
        execute_operation(item.task->session_id, op, item.cursor, completion);
    complete_op(item, op, interval, completion);
  };

  // Phase A: pre-kernel transfers, batch order.
  for (Item& item : items) {
    for (std::size_t i = 0; i < item.kernel_index; ++i) {
      run_op(item, item.task->ops[i]);
    }
  }

  // The coalesced kernel pass: one launch overhead for the whole batch. A
  // task aborted or failed during phase A drops out; its kernel op fails.
  std::vector<Item*> live;
  std::vector<sim::KernelLaunch> launches;
  vt::Time pass_ready = vt::Time::zero();
  for (Item& item : items) {
    const Operation& op = item.task->ops[item.kernel_index];
    if (!item.abort_rest &&
        fault::should_fire(fault::site::kDevmgrTaskAbort)) {
      item.abort_rest = true;
    }
    if (item.abort_rest) {
      fail_op_aborted(item, op);
      continue;
    }
    auto launch = resolve_kernel(item.task->session_id, op);
    if (!launch.ok()) {
      proto::OpComplete completion;
      completion.op_id = op.op_id;
      complete_op(item, op, launch.status(), completion);
      continue;
    }
    if (op.trace.is_valid()) {
      launch.value().trace = op.trace.child(trace::salt::kOp ^ op.op_id);
    }
    live.push_back(&item);
    launches.push_back(std::move(launch.value()));
    pass_ready = vt::max(pass_ready, item.cursor);
  }
  if (!live.empty()) {
    auto intervals = board_->run_kernel_batch(launches, pass_ready);
    for (std::size_t i = 0; i < live.size(); ++i) {
      Item& item = *live[i];
      const Operation& op = item.task->ops[item.kernel_index];
      proto::OpComplete completion;
      completion.op_id = op.op_id;
      if (intervals.ok()) {
        complete_op(item, op, intervals.value()[i], completion);
      } else {
        complete_op(item, op, intervals.status(), completion);
      }
    }
  }

  // Phase C: post-kernel ops (reads, finish markers), batch order.
  for (Item& item : items) {
    for (std::size_t i = item.kernel_index + 1; i < item.task->ops.size();
         ++i) {
      run_op(item, item.task->ops[i]);
    }
  }

  for (Item& item : items) {
    flush_completions(item.net_batch);
  }
}

Result<sim::Board::Interval> DeviceManager::execute_operation(
    std::uint64_t session_id, const Operation& op, vt::Time ready,
    proto::OpComplete& completion) {
  // Snapshot the session resources we need under the lock.
  sim::MemHandle buffer;
  std::shared_ptr<shm::Segment> segment;
  {
    std::lock_guard lock(state_mutex_);
    auto session_it = sessions_.find(session_id);
    if (session_it == sessions_.end()) {
      return NotFound("session " + std::to_string(session_id) + " is gone");
    }
    segment = session_it->second.segment;
    if (op.kind == Operation::Kind::kWrite ||
        op.kind == Operation::Kind::kRead) {
      auto buffer_it = session_it->second.buffers.find(op.buffer_id);
      if (buffer_it == session_it->second.buffers.end()) {
        return NotFound("unknown buffer " + std::to_string(op.buffer_id));
      }
      buffer = buffer_it->second;
    }
  }

  switch (op.kind) {
    case Operation::Kind::kWrite: {
      if (!op.data_ready) {
        return FailedPrecondition("write op " + std::to_string(op.op_id) +
                                  " flushed before its data arrived");
      }
      if (op.use_shm) {
        if (segment == nullptr) {
          return FailedPrecondition("shm write without segment");
        }
        auto view = segment->view(op.shm_slot);
        if (!view.ok()) return view.status();
        auto written = board_->write(buffer, op.offset, view.value(), ready);
        (void)segment->release(op.shm_slot);
        return written;
      }
      return board_->write(buffer, op.offset, ByteSpan{op.inline_data},
                           ready);
    }
    case Operation::Kind::kRead: {
      if (op.use_shm) {
        if (segment == nullptr) {
          return FailedPrecondition("shm read without segment");
        }
        auto slot = segment->allocate(op.size);
        if (!slot.ok()) return slot.status();
        auto view = segment->writable_view(slot.value());
        if (!view.ok()) return view.status();
        auto interval = board_->read(buffer, op.offset, view.value(), ready);
        if (!interval.ok()) {
          (void)segment->release(slot.value());
          return interval.status();
        }
        completion.shm_slot = slot.value();
        completion.size = op.size;
        return interval;
      }
      // Pooled read staging; no zero-fill needed because Board::read fully
      // defines the span on success (zero-fill + copy-out; never-written
      // device memory reads as zeros) and failures never ship `out`.
      Bytes out = arena::acquire(op.size);
      out.resize_for_overwrite(op.size);
      auto interval = board_->read(
          buffer, op.offset, MutableByteSpan{out}, ready);
      if (!interval.ok()) return interval;
      completion.data = std::move(out);
      completion.size = op.size;
      return interval;
    }
    case Operation::Kind::kKernel: {
      auto launch = resolve_kernel(session_id, op);
      if (!launch.ok()) return launch.status();
      if (op.trace.is_valid()) {
        // Same derivation as the "op:kernel" span in execute_task, so the
        // board's kernel span nests under it.
        launch.value().trace = op.trace.child(trace::salt::kOp ^ op.op_id);
      }
      return board_->run_kernel(launch.value(), ready);
    }
    case Operation::Kind::kFinish:
      return sim::Board::Interval{ready, ready};
  }
  return Internal("unhandled operation kind");
}

Result<sim::KernelLaunch> DeviceManager::resolve_kernel(
    std::uint64_t session_id, const Operation& op) {
  std::lock_guard lock(state_mutex_);
  auto session_it = sessions_.find(session_id);
  if (session_it == sessions_.end()) {
    return NotFound("session " + std::to_string(session_id) + " is gone");
  }
  Session& session = session_it->second;
  auto kernel_it = session.kernels.find(op.kernel_id);
  if (kernel_it == session.kernels.end()) {
    return NotFound("unknown kernel " + std::to_string(op.kernel_id));
  }
  sim::KernelLaunch launch;
  launch.kernel = kernel_it->second;
  launch.global_size = op.global_size;
  launch.args.reserve(op.args.size());
  for (std::size_t i = 0; i < op.args.size(); ++i) {
    const proto::KernelArgMsg& arg = op.args[i];
    switch (arg.kind) {
      case proto::KernelArgMsg::Kind::kBuffer: {
        auto buffer_it = session.buffers.find(arg.buffer_id);
        if (buffer_it == session.buffers.end()) {
          return NotFound("kernel arg " + std::to_string(i) +
                          " references unknown buffer " +
                          std::to_string(arg.buffer_id));
        }
        launch.args.emplace_back(buffer_it->second);
        break;
      }
      case proto::KernelArgMsg::Kind::kInt:
        launch.args.emplace_back(arg.int_value);
        break;
      case proto::KernelArgMsg::Kind::kDouble:
        launch.args.emplace_back(arg.double_value);
        break;
      case proto::KernelArgMsg::Kind::kUnset:
        return InvalidArgument("kernel arg " + std::to_string(i) +
                               " is unset");
    }
  }
  return launch;
}

void DeviceManager::stage_completion(CompletionBatch& batch,
                                     std::uint64_t session_id,
                                     std::uint64_t op_id,
                                     proto::OpComplete& completion,
                                     vt::Time at) {
  if (!batch.resolved) {
    std::lock_guard lock(state_mutex_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) return;  // session already torn down
    batch.connection = it->second.connection;
    batch.resolved = true;
  }
  if (batch.connection == nullptr) return;
  net::Completion staged;
  staged.correlation = op_id;
  staged.payload = encode(completion);
  staged.server_time = at;
  // encode() copied the read payload into the frame; its buffer goes back
  // to the pool instead of the heap.
  if (completion.data.is_heap()) {
    arena::recycle(std::move(completion.data));
  }
  batch.staged.push_back(std::move(staged));
}

void DeviceManager::flush_completions(CompletionBatch& batch) {
  if (batch.staged.empty()) return;
  if (batch.connection == nullptr || batch.connection->closed()) {
    // The stream closed while the task executed. The client's events are
    // resolved by connection-loss poisoning instead.
    for (const net::Completion& staged : batch.staged) {
      BF_LOG_WARN("devmgr") << config_.id << ": OpComplete for op "
                            << staged.correlation
                            << " undeliverable: stream closed";
    }
    batch.staged.clear();
    return;
  }
  const std::size_t count = batch.staged.size();
  if (Status sent = batch.connection->notify_batch(batch.staged);
      !sent.ok()) {
    // Close raced the delivery (or fault injection dropped the batch push).
    BF_LOG_WARN("devmgr") << config_.id << ": " << count
                          << " OpComplete notification(s) undeliverable: "
                          << sent.to_string();
  }
}

void DeviceManager::cleanup_session(std::uint64_t session_id) {
  // The client is gone: recall its still-queued tasks so the worker never
  // spends board time on work nobody can observe. Program waiters are
  // completed with kCancelled (the dispatcher blocked on them belongs to
  // this very connection, but a shutdown drain may also reach here).
  std::vector<Task> cancelled = scheduler_->cancel_session(session_id);
  for (Task& task : cancelled) {
    if (task.program_waiter != nullptr) {
      task.program_waiter->complete(
          Cancelled("client disconnected before reconfiguration ran"),
          task.ready);
    }
    retire_task_storage(task);
  }
  if (!cancelled.empty()) {
    BF_LOG_INFO("devmgr") << config_.id << ": cancelled " << cancelled.size()
                          << " queued task(s) of dead session " << session_id;
    tasks_cancelled_counter_->increment(
        static_cast<double>(cancelled.size()));
    std::lock_guard lock(state_mutex_);
    tasks_cancelled_ += cancelled.size();
  }
  std::shared_ptr<shm::Segment> segment;
  {
    std::lock_guard lock(state_mutex_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) return;
    for (const auto& [id, handle] : it->second.buffers) {
      (void)board_->release(handle);
    }
    segment = it->second.segment;
    sessions_.erase(it);
    sessions_gauge_->set(static_cast<double>(sessions_.size()));
  }
  if (segment != nullptr && node_shm_ != nullptr) {
    (void)node_shm_->unlink(segment_name(session_id));
  }
}

}  // namespace bf::devmgr
