// Tasks: the atomic unit of execution of BlastFunction (paper §III-B).
//
// Command-queue calls accumulate per (client, queue) into a Task; a flush
// (explicit clFlush/clFinish or any blocking call) seals the task and sends
// it to the Device Manager's central queue, where a worker thread executes
// tasks one at a time on the FPGA. Each operation carries the client event
// tag (op_id) so completions are notified punctually even though operations
// execute in groups.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "proto/messages.h"
#include "trace/span.h"
#include "vt/time.h"

namespace bf::devmgr {

struct Operation {
  enum class Kind { kWrite, kRead, kKernel, kFinish };
  Kind kind = Kind::kFinish;
  std::uint64_t op_id = 0;
  std::uint64_t queue_id = 0;

  // Buffer ops.
  std::uint64_t buffer_id = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  bool use_shm = false;
  std::int64_t shm_slot = -1;  // staged write payload (shm path)
  Bytes inline_data;           // staged write payload (gRPC path)
  bool data_ready = false;     // BUFFER phase arrived

  // Kernel ops.
  std::uint64_t kernel_id = 0;
  std::vector<proto::KernelArgMsg> args;
  std::array<std::uint64_t, 3> global_size = {1, 1, 1};

  // Event wait list: this op may not start before these ops completed.
  std::vector<std::uint64_t> wait_op_ids;

  // Request trace context propagated from the enqueueing client (invalid
  // when the request is untraced); the span id is the client's rpc span.
  trace::SpanContext trace;
};

// Blocks a dispatcher thread until the worker has executed a board
// reconfiguration (the one synchronous method that must serialize with the
// command stream).
class ProgramWaiter {
 public:
  void complete(Status status, vt::Time end) {
    {
      std::lock_guard lock(mutex_);
      status_ = std::move(status);
      end_ = end;
      done_ = true;
    }
    // Exactly one dispatcher ever waits on a ProgramWaiter (the one that
    // accepted the kProgram call), and complete() fires once.
    cv_.notify_one();
  }

  // Returns (status, completion time).
  std::pair<Status, vt::Time> wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return done_; });
    return {status_, end_};
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  Status status_;
  vt::Time end_;
};

struct Task {
  std::uint64_t seq = 0;  // per-manager admission counter
  std::uint64_t session_id = 0;
  std::string client_id;  // deterministic tiebreaker for equal ready stamps
  std::uint64_t queue_id = 0;
  vt::Time ready;  // modeled arrival of the sealing flush
  // Client-requested completion deadline (from its CallOptions timeout);
  // infinite when the client set none. Only the kDeadline policy orders by
  // it — no task is dropped for missing a deadline.
  vt::Time deadline = vt::Time::infinite();
  std::vector<Operation> ops;

  // kBatching metadata, derived at seal time: a task is batchable iff it is
  // exactly one dependency-free kernel launch moving a small number of bytes;
  // batch_key is the kernel name (only same-kernel launches coalesce).
  bool batchable = false;
  std::string batch_key;

  // Board reconfiguration rides the central queue as a special task so it
  // blocks every other operation (paper §III-B).
  bool is_program = false;
  std::string bitstream_id;
  std::shared_ptr<ProgramWaiter> program_waiter;

  [[nodiscard]] bool empty() const { return ops.empty() && !is_program; }
};

}  // namespace bf::devmgr
