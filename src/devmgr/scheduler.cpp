#include "devmgr/scheduler.h"

#include <condition_variable>
#include <mutex>
#include <set>
#include <utility>

namespace bf::devmgr {

std::string_view to_string(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kFifo: return "fifo";
    case SchedulerPolicy::kWeightedFair: return "wfq";
    case SchedulerPolicy::kDeadline: return "edf";
    case SchedulerPolicy::kBatching: return "batch";
  }
  return "?";
}

namespace {

// A queued task plus policy metadata (the WFQ virtual finish tag).
struct Entry {
  Task task;
  double finish_tag = 0.0;
};

// The paper's modeled-FIFO order. Equal modeled stamps break ties
// deterministically by client (pod name), never by real arrival order —
// run-to-run reproducibility depends on it. seq keeps one client's
// equal-stamp tasks in submission order.
struct ByReady {
  bool operator()(const Entry& a, const Entry& b) const {
    if (a.task.ready != b.task.ready) return a.task.ready < b.task.ready;
    if (a.task.client_id != b.task.client_id) {
      return a.task.client_id < b.task.client_id;
    }
    return a.task.seq < b.task.seq;
  }
};

struct ByFinishTag {
  bool operator()(const Entry& a, const Entry& b) const {
    if (a.finish_tag != b.finish_tag) return a.finish_tag < b.finish_tag;
    return ByReady{}(a, b);
  }
};

struct ByDeadline {
  bool operator()(const Entry& a, const Entry& b) const {
    if (a.task.deadline != b.task.deadline) {
      return a.task.deadline < b.task.deadline;
    }
    return ByReady{}(a, b);
  }
};

// Shared machinery: the mutex/cv queue with close/cancel semantics and the
// conservatively gated pop loop. Policies customize the container order
// (Compare), entry annotation at push, the gate wait stamp, and how the head
// (plus batch companions) is taken.
template <typename Compare>
class QueueBase : public Scheduler {
 public:
  Status push(Task task) override {
    {
      std::lock_guard lock(mutex_);
      if (closed_) {
        return Unavailable("scheduler closed");
      }
      Entry entry{std::move(task), 0.0};
      annotate_locked(entry);
      entries_.insert(std::move(entry));
    }
    // Exactly one consumer (the manager's worker thread) ever blocks in
    // pop_next_safe, so one wake suffices; close() keeps notify_all for the
    // shutdown broadcast.
    cv_.notify_one();
    return Status::Ok();
  }

  PopResult pop_next_safe(vt::Gate& gate) override {
    for (;;) {
      vt::Time stamp;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [&] { return closed_ || !entries_.empty(); });
        if (entries_.empty()) {  // closed and drained
          PopResult out;
          out.reason = PopReason::kClosedDrained;
          return out;
        }
        stamp = wait_stamp_locked();
      }
      // Conservative gate: no client can still emit anything stamped earlier
      // than the wait stamp. While we wait, only later-stamped tasks can be
      // added, so the stamp is stable.
      bool fallback = false;
      if (!gate.wait_safe(stamp, &fallback)) {
        // Gate shutdown: drain remaining tasks without ordering guarantees
        // so pending waiters (e.g. ProgramWaiter) are not stranded.
        std::lock_guard lock(mutex_);
        PopResult out;
        out.strict_order = false;
        out.reason = PopReason::kShutdownDrain;
        if (entries_.empty()) return out;
        take_locked(out);
        return out;
      }
      std::lock_guard lock(mutex_);
      if (entries_.empty()) continue;
      PopResult out;
      out.strict_order = !fallback;
      out.reason = fallback ? PopReason::kStallFallback : PopReason::kSafe;
      take_locked(out);
      return out;
    }
  }

  std::vector<Task> cancel_session(std::uint64_t session_id) override {
    std::vector<Task> cancelled;
    std::lock_guard lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->task.session_id == session_id) {
        auto node = entries_.extract(it++);
        cancelled.push_back(std::move(node.value().task));
      } else {
        ++it;
      }
    }
    return cancelled;
  }

  void close() override {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t size() const override {
    std::lock_guard lock(mutex_);
    return entries_.size();
  }

 protected:
  // Push-time policy metadata (WFQ finish tags). Requires mutex_ held.
  virtual void annotate_locked(Entry& entry) { (void)entry; }

  // The stamp the gate must clear before the next pop. FIFO pops its head,
  // so head ready == min ready; reordering policies still gate on the
  // earliest queued stamp (the strongest guarantee a conservative gate can
  // give once the policy deviates from modeled-arrival order).
  [[nodiscard]] virtual vt::Time wait_stamp_locked() const {
    return entries_.begin()->task.ready;
  }

  // Removes the policy head into `out`. Requires mutex_ held and a
  // non-empty queue.
  virtual void take_locked(PopResult& out) {
    auto node = entries_.extract(entries_.begin());
    taken_locked(node.value());
    out.task = std::move(node.value().task);
  }

  // Observation hook after the head is chosen (WFQ virtual-time advance).
  virtual void taken_locked(const Entry& entry) { (void)entry; }

  [[nodiscard]] vt::Time min_ready_locked() const {
    vt::Time min = vt::Time::infinite();
    for (const Entry& entry : entries_) {
      if (entry.task.ready < min) min = entry.task.ready;
    }
    return min;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::multiset<Entry, Compare> entries_;
  bool closed_ = false;
};

// --- kFifo: the historical TaskQueue, re-homed --------------------------------

class FifoScheduler final : public QueueBase<ByReady> {
 public:
  [[nodiscard]] std::string_view name() const override { return "fifo"; }
};

// --- kWeightedFair: client-keyed virtual finish times --------------------------

class WfqScheduler final : public QueueBase<ByFinishTag> {
 public:
  explicit WfqScheduler(SchedulerConfig config) : config_(std::move(config)) {}

  [[nodiscard]] std::string_view name() const override { return "wfq"; }

 protected:
  void annotate_locked(Entry& entry) override {
    // Classic start-time fair queueing with unit task cost: a task's finish
    // tag advances its client's virtual stream by 1/weight, anchored at the
    // global virtual time so an idle client re-enters at "now" instead of
    // burning accumulated credit.
    const double weight = weight_for(entry.task.client_id);
    double& last = last_finish_[entry.task.client_id];
    const double start = last > virtual_now_ ? last : virtual_now_;
    last = start + 1.0 / weight;
    entry.finish_tag = last;
  }

  [[nodiscard]] vt::Time wait_stamp_locked() const override {
    return min_ready_locked();
  }

  void taken_locked(const Entry& entry) override {
    if (entry.finish_tag > virtual_now_) virtual_now_ = entry.finish_tag;
  }

 private:
  [[nodiscard]] double weight_for(const std::string& client_id) const {
    auto it = config_.weights.find(client_id);
    const double weight =
        it != config_.weights.end() ? it->second : config_.default_weight;
    return weight > 0.0 ? weight : 1.0;
  }

  SchedulerConfig config_;
  double virtual_now_ = 0.0;
  std::map<std::string, double> last_finish_;  // client -> last finish tag
};

// --- kDeadline: EDF with ready-stamp fallback ----------------------------------

class EdfScheduler final : public QueueBase<ByDeadline> {
 public:
  [[nodiscard]] std::string_view name() const override { return "edf"; }

 protected:
  [[nodiscard]] vt::Time wait_stamp_locked() const override {
    return min_ready_locked();
  }
};

// --- kBatching: FIFO plus same-kernel coalescing -------------------------------

class BatchingScheduler final : public QueueBase<ByReady> {
 public:
  explicit BatchingScheduler(SchedulerConfig config)
      : config_(std::move(config)) {}

  [[nodiscard]] std::string_view name() const override { return "batch"; }

 protected:
  void take_locked(PopResult& out) override {
    auto lead = entries_.extract(entries_.begin());
    const Task& head = lead.value().task;
    if (head.batchable && config_.max_batch > 1) {
      // Scan in FIFO order for compatible companions. A client whose next
      // task is skipped is blocked for the rest of the scan: pulling a later
      // task of that client past the skipped one would invert its completion
      // order. A program task is a barrier — nothing batches across a
      // reconfiguration.
      std::set<std::string> blocked;
      const vt::Time horizon = head.ready + config_.batch_window;
      for (auto it = entries_.begin();
           it != entries_.end() && out.batch.size() + 1 < config_.max_batch;) {
        const Task& candidate = it->task;
        if (candidate.is_program) break;
        if (candidate.ready > horizon) break;  // FIFO order: no later match
        if (candidate.batchable && candidate.batch_key == head.batch_key &&
            blocked.count(candidate.client_id) == 0) {
          auto node = entries_.extract(it++);
          out.batch.push_back(std::move(node.value().task));
        } else {
          blocked.insert(candidate.client_id);
          ++it;
        }
      }
    }
    out.task = std::move(lead.value().task);
  }

 private:
  SchedulerConfig config_;
};

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(const SchedulerConfig& config) {
  switch (config.policy) {
    case SchedulerPolicy::kFifo:
      return std::make_unique<FifoScheduler>();
    case SchedulerPolicy::kWeightedFair:
      return std::make_unique<WfqScheduler>(config);
    case SchedulerPolicy::kDeadline:
      return std::make_unique<EdfScheduler>();
    case SchedulerPolicy::kBatching:
      return std::make_unique<BatchingScheduler>(config);
  }
  return std::make_unique<FifoScheduler>();
}

}  // namespace bf::devmgr
