#include "loadgen/loadgen.h"

#include <thread>

#include "common/log.h"

namespace bf::loadgen {

DriveResult drive(faas::FunctionInstance& instance, const DriveSpec& spec) {
  BF_CHECK(spec.target_rps > 0.0);
  DriveResult result;
  result.function = spec.function;
  result.node = instance.pod().spec.node;
  result.target_rps = spec.target_rps;

  const vt::Duration period = vt::Duration::from_seconds_f(
      1.0 / spec.target_rps);
  const vt::Time t0 = instance.now();
  result.measure_start = t0 + spec.warmup;
  result.horizon = result.measure_start + spec.duration;

  vt::Time next_send = t0;
  while (next_send < result.horizon) {
    instance.advance_clock_to(next_send);
    const bool measured = next_send >= result.measure_start;
    auto invoked = instance.invoke();
    ++result.sent;
    if (invoked.ok()) {
      if (measured) {
        ++result.ok;
        result.latency_ms.record(invoked.value().latency.ms());
      }
    } else {
      ++result.errors;
      BF_LOG_DEBUG("loadgen") << spec.function << ": "
                              << invoked.status().to_string();
    }
    next_send = vt::max(instance.now(), next_send + period);
  }
  result.processed_rps =
      static_cast<double>(result.ok) / spec.duration.sec();
  // Release the device so other tenants' later-stamped work can proceed.
  instance.shutdown();
  return result;
}

std::vector<DriveResult> drive_all(faas::Gateway& gateway,
                                   const std::vector<DriveSpec>& specs) {
  std::vector<DriveResult> results(specs.size());
  std::vector<std::thread> threads;
  threads.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    threads.emplace_back([&gateway, &specs, &results, i] {
      auto instance = gateway.instance(specs[i].function);
      if (instance == nullptr) {
        results[i].function = specs[i].function;
        results[i].errors = 1;
        BF_LOG_ERROR("loadgen") << "no instance for " << specs[i].function;
        return;
      }
      results[i] = drive(*instance, specs[i]);
    });
  }
  for (std::thread& thread : threads) thread.join();
  return results;
}

}  // namespace bf::loadgen
