// Closed-loop load generation, modeled after the paper's methodology
// (§IV-B): Hey with one connection per function and a target request rate.
// A driver sends the next request at max(now, previous_send + 1/rate) and
// never has more than one request outstanding — which is exactly why the
// paper's "Processed" column saturates at 1/latency under overload.
#pragma once

#include <string>
#include <vector>

#include "common/stats.h"
#include "faas/gateway.h"
#include "vt/time.h"

namespace bf::loadgen {

struct DriveSpec {
  std::string function;
  double target_rps = 1.0;
  vt::Duration duration = vt::Duration::seconds(60);
  // Requests sent before the warmup elapses are excluded from the stats
  // (cold start, queue fill).
  vt::Duration warmup = vt::Duration::seconds(2);
};

struct DriveResult {
  std::string function;
  std::string node;  // where the instance ran
  double target_rps = 0.0;
  double processed_rps = 0.0;
  SampleStats latency_ms;
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  vt::Time measure_start;
  vt::Time horizon;
};

// Drives one function instance closed-loop until the virtual horizon.
// Shuts the instance down afterwards so its gate source stops holding the
// Device Manager's worker.
DriveResult drive(faas::FunctionInstance& instance, const DriveSpec& spec);

// Runs all specs concurrently (one thread per function, as Hey runs one
// connection per function) and collects the results in spec order.
std::vector<DriveResult> drive_all(faas::Gateway& gateway,
                                   const std::vector<DriveSpec>& specs);

}  // namespace bf::loadgen
