// Turnkey reproduction of the paper's experimental platform (§IV): three
// nodes — master A (Xeon W3530, PCIe gen2) and workers B, C (i7-6700, PCIe
// gen3) — each hosting one Terasic DE5a-Net board with its Device Manager,
// a simulated Kubernetes cluster, the Accelerators Registry, an OpenFaaS
// gateway and per-node shared-memory namespaces.
//
// Functions deploy in one of two ways:
//  * deploy_blastfunction: registered with the Registry, allocated by
//    Algorithm 1 (patched env, forced host allocation), bound to the Remote
//    OpenCL Library with the shared-memory data plane;
//  * deploy_native: pinned to a node, bound directly to that node's board
//    via the Native runtime (the paper's baseline), optionally
//    fork-per-request (classic watchdog).
#pragma once

#include <array>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/call_options.h"
#include "devmgr/device_manager.h"
#include "faas/gateway.h"
#include "registry/registry.h"
#include "shm/namespace.h"
#include "sim/board.h"
#include "workloads/workload.h"

namespace bf::trace {
class TraceBuilder;
}  // namespace bf::trace

namespace bf::testbed {

struct TestbedOptions {
  // Kernels compute real results (slow; tests/examples) or timing only
  // (load experiments).
  bool functional_boards = false;
  // Data plane for BlastFunction functions: shared memory (paper's load
  // experiments) or pure gRPC.
  bool use_shared_memory = true;
  // Partial-reconfiguration regions per board (1 = the paper's evaluated
  // full-device time sharing; >1 enables the space-sharing extension).
  unsigned pr_regions = 1;
  registry::AllocationPolicy policy;
  // Gateway graceful degradation (retry, circuit breaker). Defaults keep
  // modeled timelines identical to a policy-free gateway.
  faas::GatewayPolicy gateway;
  // Failure handling for every remote control-plane channel the resolver
  // hands out (deadline, retry-with-backoff). Defaults are zero-cost.
  CallOptions call_options;
  // Device Managers' conservative-gate stall grace (docs/VIRTUAL_TIME.md);
  // recovery tests lower it so wedged producers fall back quickly.
  std::chrono::milliseconds gate_stall_grace{1000};
  // Central-queue scheduling policy for every Device Manager
  // (docs/SCHEDULING.md). The default kFifo is the paper's modeled FIFO.
  devmgr::SchedulerConfig scheduler;
  // When set, installed as the process-wide request-trace sink for the
  // testbed's lifetime (docs/TRACING.md): every request minted through the
  // gateway collects parent-linked spans here. Must outlive the Testbed.
  // nullptr (default) keeps tracing disabled and strictly zero-cost.
  trace::TraceBuilder* trace = nullptr;
};

class Testbed {
 public:
  explicit Testbed(TestbedOptions options = {});
  ~Testbed();

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  static constexpr std::size_t kNodeCount = 3;  // initial nodes
  static constexpr std::array<const char*, kNodeCount> kNodeNames = {
      "A", "B", "C"};

  // All current node names (initial three plus provisioned ones).
  [[nodiscard]] std::vector<std::string> node_names() const;

  [[nodiscard]] cluster::Cluster& cluster() { return *cluster_; }
  [[nodiscard]] registry::Registry& registry() { return *registry_; }
  [[nodiscard]] faas::Gateway& gateway() { return *gateway_; }
  [[nodiscard]] sim::Board& board(const std::string& node);
  [[nodiscard]] devmgr::DeviceManager& manager(const std::string& node);
  [[nodiscard]] shm::Namespace& node_shm(const std::string& node);

  // Provisions a new worker node with a fresh board + Device Manager and
  // registers it with the cluster and Registry (the AWS-F1 autoscaling
  // stand-in, paper §V future work). Returns the new device id.
  Result<std::string> provision_node(const std::string& name);
  // Tears a node down (must have no pods / assigned instances).
  Status decommission_node(const std::string& name);

  // Deploys a BlastFunction function (registered + allocated by the
  // Registry).
  Status deploy_blastfunction(const std::string& name,
                              workloads::WorkloadFactory factory,
                              unsigned replicas = 1);

  // Deploys a native-baseline function pinned to `node`, using that node's
  // board directly.
  Status deploy_native(const std::string& name,
                       workloads::WorkloadFactory factory,
                       const std::string& node,
                       faas::ExecutionMode mode =
                           faas::ExecutionMode::kForkPerRequest);

  // Aggregate FPGA time utilization over [from, to] summed across boards,
  // as a percentage with a 300% maximum (paper Tables II-IV).
  [[nodiscard]] double aggregate_utilization_pct(vt::Time from,
                                                 vt::Time to) const;
  [[nodiscard]] double node_utilization_pct(const std::string& node,
                                            vt::Time from, vt::Time to) const;

  // Latest modeled time across boards (used as the Registry's clock).
  [[nodiscard]] vt::Time clock() const;

 private:
  std::size_t node_index(const std::string& node) const;

  // Builds the per-node stack (shm namespace, board, manager). Requires the
  // slot vectors to be appended in lockstep.
  void add_node_stack(const std::string& name,
                      const sim::NodeProfile& profile);

  TestbedOptions options_;
  std::vector<std::string> node_names_;
  std::vector<sim::NodeProfile> profiles_;
  std::vector<std::unique_ptr<shm::Namespace>> shm_;
  std::vector<std::unique_ptr<sim::Board>> boards_;
  std::vector<std::unique_ptr<devmgr::DeviceManager>> managers_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<registry::Registry> registry_;
  std::unique_ptr<faas::Gateway> gateway_;
};

}  // namespace bf::testbed
