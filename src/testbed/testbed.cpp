#include "testbed/testbed.h"

#include <algorithm>

#include "native/native_runtime.h"
#include "remote/remote_runtime.h"
#include "trace/span.h"

namespace bf::testbed {

Testbed::Testbed(TestbedOptions options) : options_(std::move(options)) {
  if (options_.trace != nullptr) trace::install(options_.trace);
  const std::array<sim::NodeProfile, kNodeCount> initial = {
      sim::make_node_a(), sim::make_node_b(), sim::make_node_c()};

  std::vector<cluster::NodeSpec> node_specs;
  for (std::size_t i = 0; i < kNodeCount; ++i) {
    add_node_stack(kNodeNames[i], initial[i]);
    node_specs.push_back(cluster::NodeSpec{kNodeNames[i], initial[i]});
  }

  cluster_ = std::make_unique<cluster::Cluster>(std::move(node_specs));
  registry_ = std::make_unique<registry::Registry>(
      cluster_.get(), options_.policy, [this] { return clock(); });
  registry_->attach_to_cluster();
  for (std::size_t i = 0; i < kNodeCount; ++i) {
    registry::DeviceRecord record;
    record.id = boards_[i]->id();
    record.vendor = "Intel";
    record.platform = "a10gx_de5a_net";
    record.node = node_names_[i];
    record.manager_address = managers_[i]->endpoint().address();
    record.manager = managers_[i].get();
    BF_CHECK(registry_->register_device(std::move(record)).ok());
  }

  // The binding resolver: BlastFunction pods carry the Registry-patched
  // manager address; everything else binds natively to its node's board.
  auto resolver =
      [this](const cluster::Pod& pod) -> Result<faas::RuntimeBinding> {
    auto env = pod.spec.env.find(registry::Registry::kEnvManager);
    const std::size_t node = node_index(pod.spec.node);
    if (env != pod.spec.env.end()) {
      // Find the manager by its service address.
      devmgr::DeviceManager* manager = nullptr;
      std::size_t manager_node = 0;
      for (std::size_t i = 0; i < managers_.size(); ++i) {
        if (managers_[i]->endpoint().address() == env->second) {
          manager = managers_[i].get();
          manager_node = i;
        }
      }
      if (manager == nullptr) {
        return NotFound("pod '" + pod.spec.name +
                        "' references unknown manager '" + env->second + "'");
      }
      remote::ManagerAddress address;
      address.endpoint = &manager->endpoint();
      const bool colocated = manager_node == node;
      const sim::NodeProfile& profile = profiles_[node];
      if (colocated && options_.use_shared_memory) {
        address.transport = net::local_control(profile);
        address.node_shm = shm_[node].get();
        address.prefer_shared_memory = true;
      } else if (colocated) {
        address.transport = net::local_grpc(profile);
        address.prefer_shared_memory = false;
      } else {
        address.transport =
            net::remote_grpc(profile, profiles_[manager_node]);
        address.prefer_shared_memory = false;
      }
      address.call_options = options_.call_options;
      faas::RuntimeBinding binding;
      binding.runtime = std::make_shared<remote::RemoteRuntime>(
          std::vector<remote::ManagerAddress>{address});
      auto device = pod.spec.env.find(registry::Registry::kEnvDevice);
      binding.device_id =
          device != pod.spec.env.end() ? device->second : "";
      return binding;
    }
    // Native: the pod's node's board, accessed directly.
    faas::RuntimeBinding binding;
    binding.runtime = std::make_shared<native::NativeRuntime>(
        std::vector<sim::Board*>{boards_[node].get()});
    binding.device_id = boards_[node]->id();
    return binding;
  };
  gateway_ = std::make_unique<faas::Gateway>(cluster_.get(),
                                             std::move(resolver),
                                             options_.gateway);
}

Testbed::~Testbed() {
  // Uninstall the span sink before tearing anything down so shutdown-path
  // activity cannot reach a builder the caller is about to destroy.
  if (options_.trace != nullptr) trace::install(nullptr);
  gateway_->shutdown_instances();
  for (auto& manager : managers_) manager->shutdown();
}

void Testbed::add_node_stack(const std::string& name,
                             const sim::NodeProfile& profile) {
  node_names_.push_back(name);
  profiles_.push_back(profile);
  shm_.push_back(std::make_unique<shm::Namespace>());

  sim::BoardConfig board_config;
  board_config.id = "fpga-" + name;
  board_config.node = name;
  board_config.host = profile;
  board_config.functional = options_.functional_boards;
  board_config.pr_regions = options_.pr_regions;
  boards_.push_back(std::make_unique<sim::Board>(board_config));

  devmgr::DeviceManagerConfig manager_config;
  manager_config.id = "devmgr-" + name;
  manager_config.allow_shared_memory = options_.use_shared_memory;
  manager_config.gate_stall_grace = options_.gate_stall_grace;
  manager_config.scheduler = options_.scheduler;
  managers_.push_back(std::make_unique<devmgr::DeviceManager>(
      manager_config, boards_.back().get(),
      options_.use_shared_memory ? shm_.back().get() : nullptr));
}

std::vector<std::string> Testbed::node_names() const { return node_names_; }

Result<std::string> Testbed::provision_node(const std::string& name) {
  for (const std::string& existing : node_names_) {
    if (existing == name) {
      return AlreadyExists("node '" + name + "' already provisioned");
    }
  }
  // New capacity nodes use the worker profile (i7 + PCIe gen3), like the
  // paper's nodes B/C.
  sim::NodeProfile profile = sim::make_node_b();
  profile.name = name;
  add_node_stack(name, profile);
  if (Status s = cluster_->add_node(cluster::NodeSpec{name, profile});
      !s.ok()) {
    return s;
  }
  registry::DeviceRecord record;
  record.id = boards_.back()->id();
  record.vendor = "Intel";
  record.platform = "a10gx_de5a_net";
  record.node = name;
  record.manager_address = managers_.back()->endpoint().address();
  record.manager = managers_.back().get();
  if (Status s = registry_->register_device(std::move(record)); !s.ok()) {
    return s;
  }
  return boards_.back()->id();
}

Status Testbed::decommission_node(const std::string& name) {
  const std::size_t index = node_index(name);
  // Reap assignments whose pods are already gone (deleted while the
  // registry's watcher was not attached, e.g. across a testbed restart) so
  // a tenant-free board is not refused deregistration over a stale entry.
  registry_->reap_stale_assignments();
  if (Status s = registry_->deregister_device(boards_[index]->id());
      !s.ok()) {
    return s;
  }
  if (Status s = cluster_->remove_node(name); !s.ok()) return s;
  // The stack objects stay alive (in-flight handles may reference them) but
  // the manager stops accepting work.
  managers_[index]->shutdown();
  return Status::Ok();
}

std::size_t Testbed::node_index(const std::string& node) const {
  for (std::size_t i = 0; i < node_names_.size(); ++i) {
    if (node == node_names_[i]) return i;
  }
  throw ContractViolation("unknown node '" + node + "'");
}

sim::Board& Testbed::board(const std::string& node) {
  return *boards_[node_index(node)];
}

devmgr::DeviceManager& Testbed::manager(const std::string& node) {
  return *managers_[node_index(node)];
}

shm::Namespace& Testbed::node_shm(const std::string& node) {
  return *shm_[node_index(node)];
}

Status Testbed::deploy_blastfunction(const std::string& name,
                                     workloads::WorkloadFactory factory,
                                     unsigned replicas) {
  // Device query derived from a throwaway workload instance.
  auto probe = factory();
  registry::DeviceQuery query;
  query.vendor = "Intel";
  query.platform = "a10gx_de5a_net";
  query.accelerator = probe->accelerator();
  query.bitstream = probe->bitstream();
  if (Status s = registry_->register_function(name, std::move(query));
      !s.ok()) {
    return s;
  }
  faas::FunctionConfig config;
  config.name = name;
  config.mode = faas::ExecutionMode::kPersistent;
  config.make_workload = std::move(factory);
  return gateway_->deploy(std::move(config), replicas);
}

Status Testbed::deploy_native(const std::string& name,
                              workloads::WorkloadFactory factory,
                              const std::string& node,
                              faas::ExecutionMode mode) {
  faas::FunctionConfig config;
  config.name = name;
  config.mode = mode;
  config.make_workload = std::move(factory);
  return gateway_->deploy(std::move(config), /*replicas=*/1, node);
}

double Testbed::aggregate_utilization_pct(vt::Time from, vt::Time to) const {
  double total = 0.0;
  for (const std::string& node : node_names_) {
    total += node_utilization_pct(node, from, to);
  }
  return total;
}

double Testbed::node_utilization_pct(const std::string& node, vt::Time from,
                                     vt::Time to) const {
  if (to <= from) return 0.0;
  const std::size_t i = node_index(node);
  return 100.0 * boards_[i]->busy_between(from, to).sec() /
         (to - from).sec();
}

vt::Time Testbed::clock() const {
  vt::Time latest = vt::Time::zero();
  for (const auto& board : boards_) {
    latest = vt::max(latest, board->busy_until());
  }
  return latest;
}

}  // namespace bf::testbed
