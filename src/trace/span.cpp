#include "trace/span.h"

#include "common/rng.h"
#include "trace/chrome_trace.h"

namespace bf::trace {

namespace internal {
std::atomic<TraceBuilder*> g_builder{nullptr};
}  // namespace internal

void install(TraceBuilder* builder) {
  internal::g_builder.store(builder, std::memory_order_release);
}

TraceBuilder* installed() {
  return internal::g_builder.load(std::memory_order_acquire);
}

void record(Span span) {
  TraceBuilder* builder = installed();
  if (builder == nullptr) return;
  builder->add(std::move(span));
}

SpanContext mint_trace(std::string_view stream, std::uint64_t sequence,
                       vt::Time at) {
  TraceBuilder* builder = installed();
  if (builder == nullptr) return {};
  // Trace ids must be unique across streams and requests yet reproducible
  // for a fixed seed: derive a dedicated generator per (stream, sequence,
  // modeled accept time) and never touch shared RNG state.
  Rng rng(builder->seed() ^ fnv1a(stream) ^ mix64(sequence) ^
          mix64(static_cast<std::uint64_t>(at.ns())));
  SpanContext ctx;
  ctx.trace_id = rng.next_u64();
  ctx.span_id = rng.next_u64();
  if (ctx.trace_id == 0) ctx.trace_id = 1;
  if (ctx.span_id == 0) ctx.span_id = 1;
  return ctx;
}

}  // namespace bf::trace
