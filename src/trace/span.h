// Distributed request tracing: span contexts and the process-wide sink.
//
// A SpanContext is minted at the FaaS gateway for every request (trace id +
// span id, derived from the installed TraceBuilder's seed and the modeled
// clock — never wall time) and propagated down the stack: through the ocl
// Session, the remote library's calls and proto messages, the Device
// Manager's task queue and finally the simulated board. Every layer that
// holds a context records parent-linked spans into the installed
// TraceBuilder; with no builder installed the whole subsystem is a single
// relaxed atomic load per check and zero bytes on the wire.
//
// Determinism contract: span ids are pure functions of (seed, stream,
// sequence, modeled time, structural salts). Two runs of the same seeded
// scenario produce identical span ids and identical spans regardless of
// thread interleaving; TraceBuilder::to_json() sorts on a total order, so
// the exported JSON is byte-identical (the golden-trace tests pin this).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "vt/time.h"

namespace bf::trace {

class TraceBuilder;

// splitmix64 finalizer: cheap, well-distributed 64-bit mixing for deriving
// child span ids.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// FNV-1a over a string (stream / method names as id salts).
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : s) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

// Structural salts for deriving the fixed children of a span. Hop-specific
// values (op ids, method names, timestamps) are XORed on top.
namespace salt {
inline constexpr std::uint64_t kGateway = fnv1a("gateway");
inline constexpr std::uint64_t kHandler = fnv1a("handler");
inline constexpr std::uint64_t kFork = fnv1a("fork");
inline constexpr std::uint64_t kRpc = fnv1a("rpc");
inline constexpr std::uint64_t kHandle = fnv1a("handle");
inline constexpr std::uint64_t kTask = fnv1a("task");
inline constexpr std::uint64_t kQueueWait = fnv1a("queue-wait");
inline constexpr std::uint64_t kExecute = fnv1a("execute");
inline constexpr std::uint64_t kOp = fnv1a("op");
inline constexpr std::uint64_t kKernel = fnv1a("kernel");
}  // namespace salt

// Propagated trace identity. trace_id == 0 means "not traced" — the value
// carried everywhere tracing is disabled, and the reason disabled runs
// serialize zero extra bytes (proto encoders skip zero trace fields).
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  [[nodiscard]] bool is_valid() const { return trace_id != 0; }

  // Deterministically derives a child context: same trace, new span id from
  // (trace, parent span, salt). Invalid contexts stay invalid.
  [[nodiscard]] SpanContext child(std::uint64_t extra_salt) const {
    if (!is_valid()) return {};
    std::uint64_t id = mix64(trace_id ^ mix64(span_id ^ mix64(extra_salt)));
    if (id == 0) id = 1;
    return SpanContext{trace_id, id};
  }
};

// One interval on one track. Plain occupancy spans leave the id fields 0;
// request-traced spans carry their context so the exporter can emit
// parent links, flow arrows and critical paths.
struct Span {
  std::string track;  // rendered as a thread row, e.g. "fpga-A"
  std::string name;   // e.g. the tenant pod name or "op:kernel"
  vt::Time start;
  vt::Time end;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
};

// --- Process-wide sink -------------------------------------------------------
//
// Instrumented layers check enabled() (one relaxed atomic load — the same
// zero-cost pattern as bf::fault) and only then build and record spans.
// Install a TraceBuilder for the duration of a scenario; uninstall (nullptr)
// before destroying it.

namespace internal {
extern std::atomic<TraceBuilder*> g_builder;
}  // namespace internal

[[nodiscard]] inline bool enabled() {
  return internal::g_builder.load(std::memory_order_acquire) != nullptr;
}

// Installs the process-wide span sink (nullptr disables tracing).
void install(TraceBuilder* builder);
[[nodiscard]] TraceBuilder* installed();

// Adds a span to the installed builder; no-op when tracing is disabled.
void record(Span span);

// Mints a fresh root context for request `sequence` of `stream` (the
// per-instance request counter) at modeled time `at`. Seeded by the
// installed builder; returns an invalid context when tracing is disabled.
[[nodiscard]] SpanContext mint_trace(std::string_view stream,
                                     std::uint64_t sequence, vt::Time at);

}  // namespace bf::trace
