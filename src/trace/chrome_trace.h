// Chrome-trace / Perfetto export of board occupancy and request spans.
//
// Converts the Device Managers' per-client busy intervals and the
// distributed request spans (trace/span.h) into the chrome://tracing
// (Perfetto-compatible) JSON event format: one track per board / actor, one
// complete ("X") event per interval, timestamps in microseconds of modeled
// time. Request-traced spans additionally carry their trace/span/parent ids
// as event args and are linked across tracks with flow ("s"/"f") arrows.
// Drop the file into chrome://tracing or ui.perfetto.dev to see how tenants
// interleave on the shared FPGAs and where each request spent its time.
//
// Everything here is deterministic for a fixed scenario seed: spans are
// sorted on a total order before export, so to_json() is byte-identical
// across runs no matter which threads recorded the spans (pinned by the
// golden-trace tests).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/status.h"
#include "trace/span.h"
#include "vt/time.h"

namespace bf::trace {

// One hop of a request's critical path: the span that exclusively owned a
// slice of the end-to-end interval, and how much of it (its self time).
struct CriticalPathHop {
  std::string name;
  std::string track;
  vt::Duration self;
};

// Per-request latency attribution. The hops' self times sum exactly to
// `total` (the root span's duration, i.e. the gateway-reported end-to-end
// latency) by construction.
struct CriticalPath {
  std::uint64_t trace_id = 0;
  vt::Duration total;
  std::vector<CriticalPathHop> hops;
};

class TraceBuilder {
 public:
  explicit TraceBuilder(std::uint64_t seed = 0) : seed_(seed) {}

  // Seed mixed into every trace id minted while this builder is installed.
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  // Thread-safe: spans arrive from app threads, devmgr workers and board
  // completions concurrently.
  void add(Span span);

  // Pulls every client occupancy interval of the manager's board within
  // [from, to] onto a track named after the board. Intervals straddling a
  // window edge are clipped to the window, not dropped. Duck-typed over the
  // manager (needs busy_snapshot() and board().id()) so bf::trace stays
  // below bf::devmgr in the dependency order.
  template <typename Manager>
  void add_board_occupancy(Manager& manager, vt::Time from, vt::Time to) {
    for (const auto& busy : manager.busy_snapshot(from, to)) {
      Span span;
      span.track = manager.board().id();
      span.name = busy.client_id.empty() ? "(unattributed)" : busy.client_id;
      span.start = vt::max(busy.start, from);
      span.end = busy.end < to ? busy.end : to;
      add(std::move(span));
    }
  }

  [[nodiscard]] std::size_t span_count() const;

  // Snapshot of the recorded spans in export order (the deterministic sort
  // used by to_json), regardless of recording interleaving.
  [[nodiscard]] std::vector<Span> spans() const;

  // Exclusive per-hop latency attribution for one traced request: sweeps the
  // root span's interval and charges each elementary segment to the deepest
  // span covering it, then aggregates per hop in order of first appearance.
  // NotFound if no span carries `trace_id`.
  [[nodiscard]] Result<CriticalPath> critical_path(
      std::uint64_t trace_id) const;

  // chrome://tracing JSON ({"traceEvents": [...]}).
  [[nodiscard]] std::string to_json() const;

  Status write_file(const std::string& path) const;

 private:
  [[nodiscard]] std::vector<Span> sorted_locked() const;

  const std::uint64_t seed_;
  mutable std::mutex mutex_;
  // Chunked append-only storage: record() under load never reallocates the
  // whole history (a vector would move every span's strings on growth).
  arena::Slab<Span> spans_;
};

// Escapes a string for embedding in a JSON literal (exposed for tests).
std::string json_escape(const std::string& value);

}  // namespace bf::trace
