// Chrome-trace export of board occupancy.
//
// Converts the Device Managers' per-client busy intervals into the
// chrome://tracing (Perfetto-compatible) JSON event format: one track per
// board, one complete ("X") event per occupancy interval, timestamps in
// microseconds of modeled time. Drop the file into chrome://tracing or
// ui.perfetto.dev to see how tenants interleave on the shared FPGAs.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "devmgr/device_manager.h"
#include "vt/time.h"

namespace bf::trace {

struct Span {
  std::string track;  // rendered as a thread row, e.g. "fpga-A"
  std::string name;   // e.g. the tenant pod name
  vt::Time start;
  vt::Time end;
};

class TraceBuilder {
 public:
  TraceBuilder() = default;

  void add(Span span);

  // Pulls every client occupancy interval of the manager's board within
  // [from, to] onto a track named after the board.
  void add_board_occupancy(devmgr::DeviceManager& manager, vt::Time from,
                           vt::Time to);

  [[nodiscard]] std::size_t span_count() const { return spans_.size(); }
  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }

  // chrome://tracing JSON ({"traceEvents": [...]}).
  [[nodiscard]] std::string to_json() const;

  Status write_file(const std::string& path) const;

 private:
  std::vector<Span> spans_;
};

// Escapes a string for embedding in a JSON literal (exposed for tests).
std::string json_escape(const std::string& value);

}  // namespace bf::trace
