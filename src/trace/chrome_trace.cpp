#include "trace/chrome_trace.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

namespace bf::trace {

void TraceBuilder::add(Span span) {
  BF_CHECK(span.end >= span.start);
  spans_.push_back(std::move(span));
}

void TraceBuilder::add_board_occupancy(devmgr::DeviceManager& manager,
                                       vt::Time from, vt::Time to) {
  for (const devmgr::DeviceManager::ClientBusy& busy :
       manager.busy_snapshot(from, to)) {
    Span span;
    span.track = manager.board().id();
    span.name = busy.client_id.empty() ? "(unattributed)" : busy.client_id;
    span.start = busy.start;
    span.end = busy.end;
    spans_.push_back(std::move(span));
  }
}

std::string TraceBuilder::to_json() const {
  // Stable pid/tid assignment: one process for the cluster, one thread row
  // per track, in first-seen order.
  std::map<std::string, int> track_tid;
  for (const Span& span : spans_) {
    track_tid.emplace(span.track,
                      static_cast<int>(track_tid.size()) + 1);
  }

  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  // Thread name metadata so the UI labels each row with the board id.
  for (const auto& [track, tid] : track_tid) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << json_escape(track) << "\"}}";
  }
  for (const Span& span : spans_) {
    out << ",{\"name\":\"" << json_escape(span.name)
        << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << track_tid.at(span.track)
        << ",\"ts\":" << span.start.ns() / 1000
        << ",\"dur\":" << (span.end - span.start).ns() / 1000 << "}";
  }
  out << "]}";
  return out.str();
}

Status TraceBuilder::write_file(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return Internal("cannot open '" + path + "' for writing");
  }
  file << to_json();
  return file.good() ? Status::Ok()
                     : Internal("short write to '" + path + "'");
}

std::string json_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace bf::trace
