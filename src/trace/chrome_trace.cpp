#include "trace/chrome_trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

namespace bf::trace {
namespace {

std::string hex_id(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

// Total order for export: timeline first, then stable structural tie-breaks
// so the sort result is independent of recording interleaving.
bool span_before(const Span& a, const Span& b) {
  if (a.start != b.start) return a.start < b.start;
  if (a.end != b.end) return a.end < b.end;
  if (a.track != b.track) return a.track < b.track;
  if (a.name != b.name) return a.name < b.name;
  if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
  return a.span_id < b.span_id;
}

}  // namespace

void TraceBuilder::add(Span span) {
  BF_CHECK(span.end >= span.start);
  std::lock_guard lock(mutex_);
  spans_.push(std::move(span));
}

std::size_t TraceBuilder::span_count() const {
  std::lock_guard lock(mutex_);
  return spans_.size();
}

std::vector<Span> TraceBuilder::sorted_locked() const {
  std::vector<Span> out;
  out.reserve(spans_.size());
  for (std::size_t i = 0; i < spans_.size(); ++i) out.push_back(spans_[i]);
  std::sort(out.begin(), out.end(), span_before);
  return out;
}

std::vector<Span> TraceBuilder::spans() const {
  std::lock_guard lock(mutex_);
  return sorted_locked();
}

Result<CriticalPath> TraceBuilder::critical_path(
    std::uint64_t trace_id) const {
  std::vector<Span> all;
  {
    std::lock_guard lock(mutex_);
    all = sorted_locked();
  }
  std::vector<const Span*> spans;
  for (const Span& span : all) {
    if (span.trace_id == trace_id && span.trace_id != 0) {
      spans.push_back(&span);
    }
  }
  if (spans.empty()) {
    return NotFound("no spans recorded for trace " + hex_id(trace_id));
  }

  std::map<std::uint64_t, const Span*> by_id;
  for (const Span* span : spans) by_id.emplace(span->span_id, span);

  // Root = the parentless span (the gateway's "request"); sorted order makes
  // the earliest one win if a trace somehow has several.
  const Span* root = nullptr;
  for (const Span* span : spans) {
    if (span->parent_span_id == 0) {
      root = span;
      break;
    }
  }
  if (root == nullptr) root = spans.front();

  // Depth = distance to the root along parent links; deeper spans are more
  // specific and win attribution of any instant they cover.
  std::vector<int> depth(spans.size(), 0);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    std::uint64_t parent = spans[i]->parent_span_id;
    while (parent != 0 && depth[i] <= 64) {
      auto it = by_id.find(parent);
      if (it == by_id.end()) break;
      ++depth[i];
      parent = it->second->parent_span_id;
    }
  }

  // Elementary segments: every span boundary inside the root interval.
  std::vector<std::int64_t> cuts{root->start.ns(), root->end.ns()};
  for (const Span* span : spans) {
    if (span->start > root->start && span->start < root->end) {
      cuts.push_back(span->start.ns());
    }
    if (span->end > root->start && span->end < root->end) {
      cuts.push_back(span->end.ns());
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  CriticalPath path;
  path.trace_id = trace_id;
  path.total = root->end - root->start;

  // Charge each segment to the deepest covering span (ties: latest start,
  // then largest span id) and aggregate per hop in first-appearance order —
  // the self times partition the root interval, so they sum to `total`.
  std::map<std::pair<std::string, std::string>, std::size_t> hop_index;
  for (std::size_t c = 0; c + 1 < cuts.size(); ++c) {
    const std::int64_t a = cuts[c];
    const std::int64_t b = cuts[c + 1];
    const Span* winner = nullptr;
    int winner_depth = -1;
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const Span* span = spans[i];
      if (span->start.ns() > a || span->end.ns() < b) continue;
      if (winner == nullptr || depth[i] > winner_depth ||
          (depth[i] == winner_depth &&
           (span->start > winner->start ||
            (span->start == winner->start &&
             span->span_id > winner->span_id)))) {
        winner = span;
        winner_depth = depth[i];
      }
    }
    if (winner == nullptr) continue;  // outside every span: cannot happen
    auto key = std::make_pair(winner->name, winner->track);
    auto it = hop_index.find(key);
    if (it == hop_index.end()) {
      it = hop_index.emplace(key, path.hops.size()).first;
      path.hops.push_back(CriticalPathHop{winner->name, winner->track, {}});
    }
    path.hops[it->second].self =
        path.hops[it->second].self + vt::Duration::nanos(b - a);
  }
  return path;
}

std::string TraceBuilder::to_json() const {
  std::vector<Span> spans;
  {
    std::lock_guard lock(mutex_);
    spans = sorted_locked();
  }

  // Stable pid/tid assignment: one process for the cluster, one thread row
  // per track, in first-seen (post-sort) order.
  std::map<std::string, int> track_tid;
  for (const Span& span : spans) {
    track_tid.emplace(span.track, static_cast<int>(track_tid.size()) + 1);
  }
  std::map<std::uint64_t, const Span*> by_id;
  for (const Span& span : spans) {
    if (span.span_id != 0) by_id.emplace(span.span_id, &span);
  }

  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  // Thread name metadata so the UI labels each row with the board id.
  for (const auto& [track, tid] : track_tid) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << json_escape(track) << "\"}}";
  }
  for (const Span& span : spans) {
    out << ",{\"name\":\"" << json_escape(span.name)
        << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << track_tid.at(span.track)
        << ",\"ts\":" << span.start.ns() / 1000
        << ",\"dur\":" << (span.end - span.start).ns() / 1000;
    if (span.trace_id != 0) {
      out << ",\"args\":{\"trace\":\"" << hex_id(span.trace_id)
          << "\",\"span\":\"" << hex_id(span.span_id) << "\"";
      if (span.parent_span_id != 0) {
        out << ",\"parent\":\"" << hex_id(span.parent_span_id) << "\"";
      }
      out << "}";
    }
    out << "}";
  }
  // Flow arrows for cross-track parent -> child links (e.g. the gateway's
  // rpc span to the Device Manager's handle span).
  for (const Span& span : spans) {
    if (span.trace_id == 0 || span.parent_span_id == 0) continue;
    auto parent = by_id.find(span.parent_span_id);
    if (parent == by_id.end()) continue;
    if (parent->second->track == span.track) continue;
    const std::string id = hex_id(span.span_id);
    out << ",{\"name\":\"link\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":\"" << id
        << "\",\"pid\":1,\"tid\":" << track_tid.at(parent->second->track)
        << ",\"ts\":" << span.start.ns() / 1000 << "}"
        << ",{\"name\":\"link\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\","
        << "\"id\":\"" << id
        << "\",\"pid\":1,\"tid\":" << track_tid.at(span.track)
        << ",\"ts\":" << span.start.ns() / 1000 << "}";
  }
  out << "]}";
  return out.str();
}

Status TraceBuilder::write_file(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return Internal("cannot open '" + path + "' for writing");
  }
  file << to_json();
  return file.good() ? Status::Ok()
                     : Internal("short write to '" + path + "'");
}

std::string json_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace bf::trace
