// The per-call event state machine of the Remote OpenCL Library (paper
// §III-A): INIT -> FIRST -> BUFFER -> COMPLETE, states only move forward,
// plus two terminal *failure* states (FAILED, TIMED_OUT) so a lost or
// failed call poisons its dependents instead of wedging the connection
// thread.
//
// Extracted from RemoteEvent so the transition relation is a pure,
// independently testable function. The pump thread applies inputs as acks
// arrive off the completion stream; because the stream can deliver
// duplicate or stale acks under faults (and does, under injection), every
// illegal input must be *ignored* — never regress the state, never crash.
// In particular, once any terminal state is reached every further input
// (including a late OpComplete racing a client-side timeout) is stale.
#pragma once

#include <string_view>

namespace bf::remote {

enum class EventState { kInit, kFirst, kBuffer, kComplete, kFailed, kTimedOut };

enum class EventInput {
  kEnqueuedAck,   // OpEnqueued: the manager admitted the call (INIT->FIRST)
  kBufferStaged,  // payload staged in shm / inline bytes (->BUFFER)
  kCompleted,     // OpComplete with OK status (->COMPLETE, terminal)
  kFailed,        // OpComplete with error / teardown (->FAILED, terminal)
  kTimedOut,      // client-side deadline expiry (->TIMED_OUT, terminal)
};

[[nodiscard]] constexpr std::string_view to_string(EventState state) {
  switch (state) {
    case EventState::kInit: return "INIT";
    case EventState::kFirst: return "FIRST";
    case EventState::kBuffer: return "BUFFER";
    case EventState::kComplete: return "COMPLETE";
    case EventState::kFailed: return "FAILED";
    case EventState::kTimedOut: return "TIMED_OUT";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(EventInput input) {
  switch (input) {
    case EventInput::kEnqueuedAck: return "EnqueuedAck";
    case EventInput::kBufferStaged: return "BufferStaged";
    case EventInput::kCompleted: return "Completed";
    case EventInput::kFailed: return "Failed";
    case EventInput::kTimedOut: return "TimedOut";
  }
  return "?";
}

// Transition relation. Legal transitions:
//   INIT   --EnqueuedAck-->  FIRST
//   INIT   --BufferStaged--> BUFFER   (data staged before the ack arrives)
//   FIRST  --BufferStaged--> BUFFER
//   any non-terminal --Completed--> COMPLETE
//   any non-terminal --Failed-->    FAILED
//   any non-terminal --TimedOut-->  TIMED_OUT
// Everything else (duplicate acks, inputs after any terminal state,
// regressions) is ignored — "first terminal input wins", so a completion
// racing a client-side timeout cannot resurrect the event.
class EventFsm {
 public:
  [[nodiscard]] EventState state() const { return state_; }
  [[nodiscard]] bool complete() const {
    return state_ == EventState::kComplete;
  }
  // Any terminal state: the event's outcome is decided (waiters may wake).
  [[nodiscard]] bool terminal() const {
    return state_ == EventState::kComplete || state_ == EventState::kFailed ||
           state_ == EventState::kTimedOut;
  }

  // Applies `input`; returns true if the state advanced, false if the input
  // was ignored as illegal/stale in the current state.
  bool apply(EventInput input) {
    if (terminal()) return false;  // stale: outcome already decided
    switch (input) {
      case EventInput::kEnqueuedAck:
        if (state_ != EventState::kInit) return false;
        state_ = EventState::kFirst;
        return true;
      case EventInput::kBufferStaged:
        if (state_ != EventState::kInit && state_ != EventState::kFirst) {
          return false;
        }
        state_ = EventState::kBuffer;
        return true;
      case EventInput::kCompleted:
        state_ = EventState::kComplete;
        return true;
      case EventInput::kFailed:
        state_ = EventState::kFailed;
        return true;
      case EventInput::kTimedOut:
        state_ = EventState::kTimedOut;
        return true;
    }
    return false;
  }

 private:
  EventState state_ = EventState::kInit;
};

}  // namespace bf::remote
