// The per-call event state machine of the Remote OpenCL Library (paper
// §III-A): INIT -> FIRST -> BUFFER -> COMPLETE, states only move forward.
//
// Extracted from RemoteEvent so the transition relation is a pure,
// independently testable function. The pump thread applies inputs as acks
// arrive off the completion stream; because the stream can deliver
// duplicate or stale acks under faults (and does, under injection), every
// illegal input must be *ignored* — never regress the state, never crash.
#pragma once

#include <string_view>

namespace bf::remote {

enum class EventState { kInit, kFirst, kBuffer, kComplete };

enum class EventInput {
  kEnqueuedAck,   // OpEnqueued: the manager admitted the call (INIT->FIRST)
  kBufferStaged,  // payload staged in shm / inline bytes (->BUFFER)
  kCompleted,     // OpComplete (or teardown failure) (->COMPLETE, terminal)
};

[[nodiscard]] constexpr std::string_view to_string(EventState state) {
  switch (state) {
    case EventState::kInit: return "INIT";
    case EventState::kFirst: return "FIRST";
    case EventState::kBuffer: return "BUFFER";
    case EventState::kComplete: return "COMPLETE";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(EventInput input) {
  switch (input) {
    case EventInput::kEnqueuedAck: return "EnqueuedAck";
    case EventInput::kBufferStaged: return "BufferStaged";
    case EventInput::kCompleted: return "Completed";
  }
  return "?";
}

// Transition relation. Legal transitions:
//   INIT   --EnqueuedAck-->  FIRST
//   INIT   --BufferStaged--> BUFFER   (data staged before the ack arrives)
//   FIRST  --BufferStaged--> BUFFER
//   any non-terminal --Completed--> COMPLETE
// Everything else (duplicate acks, acks after completion, regressions) is
// ignored.
class EventFsm {
 public:
  [[nodiscard]] EventState state() const { return state_; }
  [[nodiscard]] bool complete() const {
    return state_ == EventState::kComplete;
  }

  // Applies `input`; returns true if the state advanced, false if the input
  // was ignored as illegal/stale in the current state.
  bool apply(EventInput input) {
    switch (input) {
      case EventInput::kEnqueuedAck:
        if (state_ != EventState::kInit) return false;
        state_ = EventState::kFirst;
        return true;
      case EventInput::kBufferStaged:
        if (state_ != EventState::kInit && state_ != EventState::kFirst) {
          return false;
        }
        state_ = EventState::kBuffer;
        return true;
      case EventInput::kCompleted:
        if (state_ == EventState::kComplete) return false;  // stale ack
        state_ = EventState::kComplete;
        return true;
    }
    return false;
  }

 private:
  EventState state_ = EventState::kInit;
};

}  // namespace bf::remote
