// Remote OpenCL Library (paper §III-A, Figure 2).
//
// A drop-in implementation of the bf::ocl host API that forwards every call
// to a Device Manager. Synchronous (context & information) methods are unary
// RPCs; command-queue methods are asynchronous events:
//
//   1. the application calls e.g. enqueue_read;
//   2. the library creates an event (state machine INIT/FIRST/BUFFER/
//      COMPLETE) and sends the call metadata, tagged with the event id;
//   3. the Device Manager acks admission (OpEnqueued -> FIRST) and later
//      completion (OpComplete -> COMPLETE);
//   4. a dedicated *connection thread* drains the completion queue, looks up
//      the tagged event, steps its state machine and updates its OpenCL
//      status; the application observes it via polling or wait().
//
// Data rides shared memory when the Device Manager granted a segment
// (co-located deployment), otherwise inline protobuf bytes over the gRPC
// analogue. Host code is identical either way — and identical to what runs
// against bf::native::NativeRuntime. That is the system's transparency
// claim.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/call_options.h"
#include "net/endpoint.h"
#include "ocl/runtime.h"
#include "shm/namespace.h"

namespace bf::remote {

// One entry in the router's platform list: how to reach a Device Manager.
struct ManagerAddress {
  net::ServerEndpoint* endpoint = nullptr;
  net::TransportCost transport;        // control/data cost model
  shm::Namespace* node_shm = nullptr;  // non-null when co-located
  bool prefer_shared_memory = true;
  // Failure handling for every control-plane call on this channel: deadline
  // for unary calls and event waits, retry-with-backoff for idempotent
  // methods and (re)connects. Defaults are zero-cost (no deadline, one
  // attempt) — modeled timelines are bit-identical to pre-CallOptions runs.
  CallOptions call_options;
};

class RemoteContext;

class RemoteRuntime final : public ocl::Runtime {
 public:
  // The router component: keeps the list of available platforms (one per
  // Device Manager address).
  explicit RemoteRuntime(std::vector<ManagerAddress> managers);

  [[nodiscard]] std::string name() const override { return "blastfunction"; }
  Result<std::vector<ocl::PlatformInfo>> platforms() override;
  Result<std::vector<ocl::DeviceInfo>> devices() override;
  Result<std::unique_ptr<ocl::Context>> create_context(
      const std::string& device_id, ocl::Session& session) override;

 private:
  friend class RemoteContext;

  // Probes a manager for its device descriptor (short-lived session).
  Result<ocl::DeviceInfo> probe(const ManagerAddress& manager,
                                ocl::Session& session);

  std::vector<ManagerAddress> managers_;
  std::mutex cache_mutex_;
  std::map<std::string, std::size_t> device_to_manager_;
};

}  // namespace bf::remote
