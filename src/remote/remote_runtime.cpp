#include "remote/remote_runtime.h"

#include <algorithm>
#include <optional>

#include "common/arena.h"
#include "common/log.h"
#include "fault/injector.h"
#include "proto/wire.h"
#include "remote/event_state.h"
#include "trace/span.h"

namespace bf::remote {
namespace {

template <typename T>
Bytes encode(const T& message) {
  proto::Writer writer;
  message.encode(writer);
  return writer.take();
}

template <typename T>
Result<T> decode_payload(const net::Frame& frame) {
  proto::Reader reader(ByteSpan{frame.payload});
  return T::decode(reader);
}

ocl::DeviceInfo to_device_info(const proto::DeviceDescriptor& descriptor) {
  ocl::DeviceInfo info;
  info.id = descriptor.id;
  info.name = descriptor.name;
  info.vendor = descriptor.vendor;
  info.platform = descriptor.platform;
  info.node = descriptor.node;
  info.accelerator = descriptor.accelerator;
  info.global_memory_bytes = descriptor.global_memory_bytes;
  return info;
}

}  // namespace

// --- RemoteEvent ----------------------------------------------------------------

class RemoteQueue;

// The paper's 4-state event machine (transition relation in
// remote/event_state.h — states only move forward, stale acks are ignored).
// Holds the connection by shared_ptr: an application may legally keep an
// event alive past its context's destruction, and wait() touches the
// connection after waking.
class RemoteEvent final : public ocl::Event {
 public:
  RemoteEvent(std::uint64_t op_id, ocl::Session* session,
              std::shared_ptr<net::Connection> connection, RemoteQueue* queue,
              CallOptions options = {})
      : op_id_(op_id),
        session_(session),
        connection_(std::move(connection)),
        queue_(queue),
        options_(options) {}

  [[nodiscard]] std::uint64_t op_id() const { return op_id_; }

  [[nodiscard]] ocl::EventStatus status() const override {
    std::lock_guard lock(mutex_);
    if (!op_status_.ok()) return ocl::EventStatus::kError;
    switch (fsm_.state()) {
      case EventState::kInit: return ocl::EventStatus::kQueued;
      case EventState::kFirst: return ocl::EventStatus::kSubmitted;
      case EventState::kBuffer: return ocl::EventStatus::kRunning;
      case EventState::kComplete:
        // Completion becomes observable once the application's virtual
        // clock passes the completion stamp (polling costs the app time).
        return completion_ <= session_->now() ? ocl::EventStatus::kComplete
                                              : ocl::EventStatus::kRunning;
      case EventState::kFailed:
      case EventState::kTimedOut:
        return ocl::EventStatus::kError;
    }
    return ocl::EventStatus::kError;
  }

  Status wait() override;

  [[nodiscard]] vt::Time completion_time() const override {
    std::lock_guard lock(mutex_);
    return completion_;
  }

  // --- driven by the connection thread --------------------------------------

  void on_enqueued() {
    std::lock_guard lock(mutex_);
    (void)fsm_.apply(EventInput::kEnqueuedAck);  // stale/dup acks ignored
  }

  void mark_buffer_staged() {
    std::lock_guard lock(mutex_);
    (void)fsm_.apply(EventInput::kBufferStaged);
  }

  void complete(Status status, vt::Time at) {
    {
      std::lock_guard lock(mutex_);
      // First terminal input wins; a stale OpComplete (duplicate delivery,
      // teardown racing a real completion, a late ack after a client-side
      // timeout) must not clobber the recorded status or completion stamp.
      // Error completions land in FAILED so dependents can fast-fail.
      const EventInput input =
          status.ok() ? EventInput::kCompleted : EventInput::kFailed;
      if (!fsm_.apply(input)) return;
      op_status_ = std::move(status);
      completion_ = at;
    }
    cv_.notify_all();
  }

  // Non-OK iff the event reached a terminal failure state (FAILED or
  // TIMED_OUT): dependents waiting on it must fail fast instead of being
  // enqueued behind an outcome that will never arrive.
  [[nodiscard]] Status poison_status() const {
    std::lock_guard lock(mutex_);
    if (fsm_.state() == EventState::kFailed ||
        fsm_.state() == EventState::kTimedOut) {
      return op_status_;
    }
    return Status::Ok();
  }

  // Read destination plumbing (set at enqueue time).
  void set_read_target(MutableByteSpan target,
                       std::shared_ptr<shm::Segment> segment) {
    target_ = target;
    segment_ = std::move(segment);
  }
  [[nodiscard]] MutableByteSpan read_target() const { return target_; }
  [[nodiscard]] const std::shared_ptr<shm::Segment>& segment() const {
    return segment_;
  }

 private:
  std::uint64_t op_id_;
  ocl::Session* session_;
  std::shared_ptr<net::Connection> connection_;
  RemoteQueue* queue_;

  CallOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  EventFsm fsm_;
  Status op_status_;
  vt::Time completion_;

  MutableByteSpan target_;
  std::shared_ptr<shm::Segment> segment_;
};

// --- RemoteContext ----------------------------------------------------------------

class RemoteContext final : public ocl::Context {
 public:
  RemoteContext(std::shared_ptr<net::Connection> connection,
                ocl::Session* session, std::uint64_t session_id,
                ocl::DeviceInfo device,
                std::shared_ptr<shm::Segment> segment,
                CallOptions call_options = {})
      : connection_(std::move(connection)),
        session_(session),
        session_id_(session_id),
        device_(std::move(device)),
        segment_(std::move(segment)),
        call_options_(call_options) {
    pump_ = std::thread([this] { pump_loop(); });
  }

  ~RemoteContext() override {
    connection_->close();
    if (pump_.joinable()) pump_.join();
    fail_pending(Unavailable("context destroyed"));
  }

  RemoteContext(const RemoteContext&) = delete;
  RemoteContext& operator=(const RemoteContext&) = delete;

  [[nodiscard]] const ocl::DeviceInfo& device() const override {
    return device_;
  }
  [[nodiscard]] ocl::Session& session() override { return *session_; }

  Status program(const std::string& bitstream_id) override {
    proto::ProgramReq request;
    request.bitstream_id = bitstream_id;
    auto reply = unary(proto::Method::kProgram, encode(request));
    if (!reply.ok()) return reply.status();
    auto resp = decode_payload<proto::ProgramResp>(reply.value());
    if (!resp.ok()) return resp.status();
    if (resp.value().reconfigured) device_.accelerator = "";  // refreshed lazily
    return resp.value().status.to_status();
  }

  Result<ocl::Buffer> create_buffer(std::uint64_t size) override {
    proto::CreateBufferReq request;
    request.size = size;
    auto reply = unary(proto::Method::kCreateBuffer, encode(request));
    if (!reply.ok()) return reply.status();
    auto resp = decode_payload<proto::CreateBufferResp>(reply.value());
    if (!resp.ok()) return resp.status();
    if (Status s = resp.value().status.to_status(); !s.ok()) return s;
    return ocl::Buffer{resp.value().buffer_id, size};
  }

  Status release_buffer(const ocl::Buffer& buffer) override {
    proto::ReleaseBufferReq request;
    request.buffer_id = buffer.id;
    auto reply = unary(proto::Method::kReleaseBuffer, encode(request));
    if (!reply.ok()) return reply.status();
    auto resp = decode_payload<proto::AckResp>(reply.value());
    if (!resp.ok()) return resp.status();
    return resp.value().status.to_status();
  }

  Result<ocl::Kernel> create_kernel(const std::string& name) override {
    proto::CreateKernelReq request;
    request.name = name;
    auto reply = unary(proto::Method::kCreateKernel, encode(request));
    if (!reply.ok()) return reply.status();
    auto resp = decode_payload<proto::CreateKernelResp>(reply.value());
    if (!resp.ok()) return resp.status();
    if (Status s = resp.value().status.to_status(); !s.ok()) return s;
    return ocl::Kernel(resp.value().kernel_id, name, resp.value().arity);
  }

  Result<std::unique_ptr<ocl::CommandQueue>> create_queue() override;

  // --- used by RemoteQueue ----------------------------------------------------

  [[nodiscard]] net::Connection& connection() { return *connection_; }
  [[nodiscard]] const std::shared_ptr<net::Connection>& connection_ptr()
      const {
    return connection_;
  }
  [[nodiscard]] const std::shared_ptr<shm::Segment>& segment() const {
    return segment_;
  }
  [[nodiscard]] bool shm_enabled() const { return segment_ != nullptr; }
  [[nodiscard]] const CallOptions& call_options() const {
    return call_options_;
  }

  std::uint64_t next_op_id() { return op_counter_.fetch_add(1) + 1; }

  void register_event(std::uint64_t op_id, std::shared_ptr<RemoteEvent> ev) {
    std::lock_guard lock(events_mutex_);
    events_[op_id] = std::move(ev);
  }

 private:
  // Unary call with this channel's CallOptions; the retry policy is only
  // honoured for idempotent methods (a retried CreateBuffer whose first
  // reply was lost would leak the first buffer).
  Result<net::Frame> unary(proto::Method method, Bytes payload) {
    CallOptions options = call_options_;
    if (!proto::is_idempotent(method)) options.retry.max_attempts = 1;
    const trace::SpanContext parent = session_->trace_context();
    if (!parent.is_valid() || !trace::enabled()) {
      return connection_->call(method, std::move(payload), session_->clock(),
                               options);
    }
    // Client-side rpc span (salted with the start stamp so repeated calls
    // of one method inside a request stay distinct); the frame carries the
    // context so the Device Manager parents its handling span under ours.
    const vt::Time started = session_->now();
    const trace::SpanContext ctx = parent.child(
        trace::salt::kRpc ^ trace::fnv1a(proto::to_string(method)) ^
        static_cast<std::uint64_t>(started.ns()));
    auto reply = connection_->call(method, std::move(payload),
                                   session_->clock(), options, ctx);
    trace::record(trace::Span{
        session_->client_id(),
        std::string("rpc:") + std::string(proto::to_string(method)), started,
        session_->now(), ctx.trace_id, ctx.span_id, parent.span_id});
    return reply;
  }

  void pump_loop();
  void process_notification(const net::Frame& frame);
  void fail_pending(const Status& status);
  std::shared_ptr<RemoteEvent> take_event(std::uint64_t op_id);
  std::shared_ptr<RemoteEvent> peek_event(std::uint64_t op_id);

  std::shared_ptr<net::Connection> connection_;
  ocl::Session* session_;
  std::uint64_t session_id_;
  ocl::DeviceInfo device_;
  std::shared_ptr<shm::Segment> segment_;
  CallOptions call_options_;

  std::atomic<std::uint64_t> op_counter_{0};
  std::mutex events_mutex_;
  std::map<std::uint64_t, std::shared_ptr<RemoteEvent>> events_;

  std::thread pump_;
};

// --- RemoteQueue -----------------------------------------------------------------

// Converts an event wait list into the server-side op-id dependency list.
// Only events produced by this runtime carry op ids. A dependency that
// already reached a terminal failure state (FAILED / TIMED_OUT) poisons the
// new op: fail fast client-side with FAILED_PRECONDITION rather than ship a
// call whose prerequisite outcome will never arrive. (The Device Manager
// applies the same rule server-side against its completed-op set.)
Result<std::vector<std::uint64_t>> to_wait_ids(ocl::EventWaitList wait_list) {
  std::vector<std::uint64_t> out;
  out.reserve(wait_list.size());
  for (const ocl::EventPtr& event : wait_list) {
    if (event == nullptr) continue;
    auto* remote_event = dynamic_cast<RemoteEvent*>(event.get());
    if (remote_event == nullptr) {
      return InvalidArgument(
          "wait-list event was not created by this remote runtime");
    }
    if (Status poison = remote_event->poison_status(); !poison.ok()) {
      return FailedPrecondition(
          "wait-list op " + std::to_string(remote_event->op_id()) +
          " reached a terminal failure state: " + poison.to_string());
    }
    out.push_back(remote_event->op_id());
  }
  return out;
}

class RemoteQueue final : public ocl::CommandQueue {
 public:
  RemoteQueue(RemoteContext* context, std::uint64_t queue_id)
      : context_(context), queue_id_(queue_id) {}

  Result<ocl::EventPtr> enqueue_write(const ocl::Buffer& buffer,
                                      std::uint64_t offset, ByteSpan data,
                                      bool blocking,
                                      ocl::EventWaitList wait_list) override {
    return enqueue_write_impl(buffer, offset, data, /*owned=*/nullptr,
                              blocking, wait_list);
  }

  // Ownership transfer: the shm path moves the caller's buffer straight
  // into the slot; the gRPC path moves it into the WriteData message. Either
  // way the modeled copy/transfer charges are unchanged.
  Result<ocl::EventPtr> enqueue_write(const ocl::Buffer& buffer,
                                      std::uint64_t offset, Bytes&& data,
                                      bool blocking,
                                      ocl::EventWaitList wait_list) override {
    return enqueue_write_impl(buffer, offset, ByteSpan{data}, &data, blocking,
                              wait_list);
  }

  Result<ocl::EventPtr> enqueue_write_impl(const ocl::Buffer& buffer,
                                           std::uint64_t offset, ByteSpan data,
                                           Bytes* owned, bool blocking,
                                           ocl::EventWaitList wait_list) {
    auto& session = context_->session();
    const std::uint64_t op_id = context_->next_op_id();
    auto event = std::make_shared<RemoteEvent>(op_id, &session,
                                               context_->connection_ptr(), this,
                                               context_->call_options());
    context_->register_event(op_id, event);

    auto wait_ids = to_wait_ids(wait_list);
    if (!wait_ids.ok()) return wait_ids.status();
    // INIT: call metadata (buffer id, size, offset).
    proto::EnqueueWriteReq request;
    request.op_id = op_id;
    request.queue_id = queue_id_;
    request.buffer_id = buffer.id;
    request.offset = offset;
    request.size = data.size();
    request.wait_op_ids = std::move(wait_ids.value());
    request.trace_id = session.trace_context().trace_id;
    request.parent_span = session.trace_context().span_id;
    Status sent = context_->connection().send(
        proto::Method::kEnqueueWrite, op_id, encode(request), session.clock());
    if (!sent.ok()) return sent;

    // BUFFER: stage the payload. Shared memory when granted (one modeled
    // copy, charged to our clock); otherwise inline protobuf bytes. The
    // payload is either moved (owned) or serialized directly from the
    // caller's span — never duplicated into the message first.
    proto::WriteData payload;
    payload.op_id = op_id;
    payload.size = data.size();
    if (context_->shm_enabled()) {
      auto slot = owned != nullptr
                      ? context_->segment()->stage(std::move(*owned),
                                                   session.clock())
                      : context_->segment()->stage(data, session.clock());
      if (!slot.ok()) return slot.status();
      payload.shm_slot = slot.value();
    } else if (owned != nullptr) {
      payload.data = std::move(*owned);
    } else {
      payload.data_view = data;
    }
    sent = context_->connection().send(proto::Method::kWriteData, op_id,
                                       encode(payload), session.clock());
    // The owned buffer was serialized into the frame (gRPC path) or moved
    // into the shm slot; whatever heap block is still here goes back to
    // the pool for the next request's payload.
    arena::recycle(std::move(payload.data));
    if (!sent.ok()) return sent;
    event->mark_buffer_staged();
    dirty_ = true;

    if (blocking) {
      if (Status s = flush(); !s.ok()) return s;
      if (Status s = event->wait(); !s.ok()) return s;
    }
    return ocl::EventPtr(event);
  }

  Result<ocl::EventPtr> enqueue_read(const ocl::Buffer& buffer,
                                     std::uint64_t offset, MutableByteSpan out,
                                     bool blocking,
                                     ocl::EventWaitList wait_list) override {
    auto& session = context_->session();
    const std::uint64_t op_id = context_->next_op_id();
    auto event = std::make_shared<RemoteEvent>(op_id, &session,
                                               context_->connection_ptr(), this,
                                               context_->call_options());
    event->set_read_target(out, context_->segment());
    context_->register_event(op_id, event);

    auto wait_ids = to_wait_ids(wait_list);
    if (!wait_ids.ok()) return wait_ids.status();
    proto::EnqueueReadReq request;
    request.op_id = op_id;
    request.queue_id = queue_id_;
    request.buffer_id = buffer.id;
    request.offset = offset;
    request.size = out.size();
    request.use_shared_memory = context_->shm_enabled();
    request.wait_op_ids = std::move(wait_ids.value());
    request.trace_id = session.trace_context().trace_id;
    request.parent_span = session.trace_context().span_id;
    Status sent = context_->connection().send(
        proto::Method::kEnqueueRead, op_id, encode(request), session.clock());
    if (!sent.ok()) return sent;
    dirty_ = true;

    if (blocking) {
      if (Status s = flush(); !s.ok()) return s;
      if (Status s = event->wait(); !s.ok()) return s;
    }
    return ocl::EventPtr(event);
  }

  Result<ocl::EventPtr> enqueue_kernel(const ocl::Kernel& kernel,
                                       ocl::NdRange range,
                                       ocl::EventWaitList wait_list) override {
    auto& session = context_->session();
    const std::uint64_t op_id = context_->next_op_id();
    auto event = std::make_shared<RemoteEvent>(op_id, &session,
                                               context_->connection_ptr(), this,
                                               context_->call_options());
    context_->register_event(op_id, event);

    auto wait_ids = to_wait_ids(wait_list);
    if (!wait_ids.ok()) return wait_ids.status();
    proto::EnqueueKernelReq request;
    request.op_id = op_id;
    request.queue_id = queue_id_;
    request.kernel_id = kernel.id();
    request.global_size = {range.x, range.y, range.z};
    request.wait_op_ids = std::move(wait_ids.value());
    request.trace_id = session.trace_context().trace_id;
    request.parent_span = session.trace_context().span_id;
    request.args.reserve(kernel.args().size());
    for (const ocl::KernelArgValue& arg : kernel.args()) {
      proto::KernelArgMsg msg;
      if (const auto* ref = std::get_if<ocl::BufferRef>(&arg)) {
        msg.kind = proto::KernelArgMsg::Kind::kBuffer;
        msg.buffer_id = ref->id;
      } else if (const auto* iv = std::get_if<std::int64_t>(&arg)) {
        msg.kind = proto::KernelArgMsg::Kind::kInt;
        msg.int_value = *iv;
      } else if (const auto* dv = std::get_if<double>(&arg)) {
        msg.kind = proto::KernelArgMsg::Kind::kDouble;
        msg.double_value = *dv;
      } else {
        return InvalidArgument("kernel '" + kernel.name() + "' has unset arg");
      }
      request.args.push_back(msg);
    }
    Status sent = context_->connection().send(
        proto::Method::kEnqueueKernel, op_id, encode(request),
        session.clock());
    if (!sent.ok()) return sent;
    dirty_ = true;
    return ocl::EventPtr(event);
  }

  Status flush() override {
    if (!dirty_) return Status::Ok();
    auto& session = context_->session();
    proto::FlushReq request;
    request.queue_id = queue_id_;
    // Advertise the task's completion deadline so a kDeadline manager can
    // order it; without a timeout the field stays 0 (wire bytes unchanged).
    if (context_->call_options().has_timeout()) {
      request.deadline_ns = static_cast<std::uint64_t>(
          context_->call_options().deadline_from(session.now()).ns());
    }
    Status sent =
        context_->connection().send(proto::Method::kFlush, /*correlation=*/0,
                                    encode(request), session.clock());
    if (sent.ok()) dirty_ = false;
    return sent;
  }

  Status finish() override {
    auto& session = context_->session();
    const std::uint64_t op_id = context_->next_op_id();
    auto event = std::make_shared<RemoteEvent>(op_id, &session,
                                               context_->connection_ptr(), this,
                                               context_->call_options());
    context_->register_event(op_id, event);
    proto::FinishReq request;
    request.op_id = op_id;
    request.queue_id = queue_id_;
    if (context_->call_options().has_timeout()) {
      request.deadline_ns = static_cast<std::uint64_t>(
          context_->call_options().deadline_from(session.now()).ns());
    }
    Status sent = context_->connection().send(
        proto::Method::kFinish, op_id, encode(request), session.clock());
    if (!sent.ok()) return sent;
    dirty_ = false;  // Finish seals the task server-side
    return event->wait();
  }

  // clWaitForEvents implies a flush of the queue that generated the event.
  Status flush_for_wait() { return flush(); }

 private:
  RemoteContext* context_;
  std::uint64_t queue_id_;
  bool dirty_ = false;  // ops enqueued since last flush
};

Status RemoteEvent::wait() {
  bool pending = false;
  {
    std::lock_guard lock(mutex_);
    pending = !fsm_.terminal();
  }
  // Only a still-pending wait needs the implied flush. A terminal event
  // already has its status, and skipping the queue here keeps wait() safe
  // on events the application kept alive past their context (the queue's
  // context pointer dies with the context; teardown completes every
  // registered event via fail_pending first).
  if (pending && queue_ != nullptr) {
    if (Status s = queue_->flush_for_wait(); !s.ok()) return s;
  }
  {
    std::unique_lock lock(mutex_);
    if (!fsm_.terminal()) {
      // Register the wake tag so the connection thread re-anchors our gate
      // bound atomically with the completion that wakes us.
      connection_->prepare_wait(net::Connection::WaitTag::kEvent, op_id_);
      auto done = [&] { return fsm_.terminal(); };
      const vt::Time deadline = options_.deadline_from(session_->now());
      if (deadline.is_infinite()) {
        cv_.wait(lock, done);
      } else if (!cv_.wait_for(lock, options_.wedge_grace, done)) {
        // No completion materialized in wedge_grace of wall time (lost
        // OpComplete, dead worker): the modeled wait ran out at the
        // deadline. TIMED_OUT is terminal — a completion that straggles in
        // later is stale by the FSM's first-terminal-wins rule, and any
        // dependent op fails fast via poison_status().
        (void)fsm_.apply(EventInput::kTimedOut);
        op_status_ = DeadlineExceeded("wait on op " + std::to_string(op_id_) +
                                      " abandoned at deadline");
        completion_ = deadline;
      }
    }
  }
  vt::Time completion;
  Status status;
  {
    std::lock_guard lock(mutex_);
    completion = completion_;
    status = op_status_;
  }
  session_->clock().advance_to(completion);
  connection_->announce(session_->now());
  return status;
}

Result<std::unique_ptr<ocl::CommandQueue>> RemoteContext::create_queue() {
  auto reply = unary(proto::Method::kCreateQueue, Bytes{});
  if (!reply.ok()) return reply.status();
  auto resp = decode_payload<proto::CreateQueueResp>(reply.value());
  if (!resp.ok()) return resp.status();
  if (Status s = resp.value().status.to_status(); !s.ok()) return s;
  return std::unique_ptr<ocl::CommandQueue>(
      std::make_unique<RemoteQueue>(this, resp.value().queue_id));
}

void RemoteContext::pump_loop() {
  while (auto frame = connection_->notifications().pop()) {
    // Completion-queue reordering: swap this frame with the next one when
    // another notification is already queued behind it. Event completion
    // stamps ride in the frames themselves, so the modeled results are
    // unchanged — only the pump's processing order is shaken.
    if (fault::should_fire(fault::site::kRemotePumpReorder)) {
      // Closed-aware try_pop: on a closed-and-drained queue this stops
      // immediately instead of treating "no item" as "try again later".
      if (auto next = connection_->notifications().try_pop();
          next.has_item()) {
        process_notification(*next.item);
        arena::recycle(std::move(next.item->payload));
      }
    }
    process_notification(*frame);
    // The pump retires every notification frame: recycle its payload so the
    // server's next completion of this size class skips the heap.
    arena::recycle(std::move(frame->payload));
  }
  fail_pending(Unavailable("connection to device manager lost"));
}

void RemoteContext::process_notification(const net::Frame& frame) {
  switch (frame.method) {
    case proto::Method::kOpEnqueued: {
      auto note = decode_payload<proto::OpEnqueued>(frame);
      if (!note.ok()) break;
      auto event = peek_event(note.value().op_id);
      if (event != nullptr) {
        event->on_enqueued();
        if (fault::should_fire(fault::site::kRemotePumpDupEnqueued)) {
          // Duplicate admission ack: the FSM must ignore FIRST -> FIRST.
          event->on_enqueued();
        }
      }
      break;
    }
    case proto::Method::kOpComplete: {
      // decode_view: the payload field stays a view into frame.payload
      // (alive for this whole call), so inline read data is copied exactly
      // once — wire buffer straight into the application buffer.
      proto::Reader reader{ByteSpan{frame.payload}};
      auto note = proto::OpComplete::decode_view(reader);
      if (!note.ok()) break;
      auto event = take_event(note.value().op_id);
      if (event == nullptr) break;  // stale/duplicate ack: already retired
      Status status = note.value().status.to_status();
      vt::Time completion = frame.arrival_time;
      if (status.ok() && !event->read_target().empty()) {
        // Deliver read data into the application buffer.
        if (note.value().shm_slot >= 0 && event->segment() != nullptr) {
          vt::Cursor copy_clock(frame.arrival_time);
          status = event->segment()->fetch(note.value().shm_slot,
                                           event->read_target(), copy_clock);
          completion = copy_clock.now();
        } else if (note.value().data_view.size() ==
                   event->read_target().size()) {
          std::copy(note.value().data_view.begin(),
                    note.value().data_view.end(),
                    event->read_target().begin());
        } else {
          status = Internal("read completion size mismatch: got " +
                            std::to_string(note.value().data_view.size()) +
                            "B, want " +
                            std::to_string(event->read_target().size()) +
                            "B");
        }
      }
      event->complete(std::move(status), completion);
      if (fault::should_fire(fault::site::kRemotePumpDupComplete)) {
        // Stale OpComplete for an op that already completed: the first
        // completion's status and stamp must stand.
        event->complete(Internal("injected fault: stale OpComplete"),
                        frame.arrival_time);
      }
      break;
    }
    default:
      BF_LOG_WARN("remote") << "unexpected notification "
                            << proto::to_string(frame.method);
      break;
  }
}

void RemoteContext::fail_pending(const Status& status) {
  std::map<std::uint64_t, std::shared_ptr<RemoteEvent>> pending;
  {
    std::lock_guard lock(events_mutex_);
    pending.swap(events_);
  }
  for (auto& [op_id, event] : pending) {
    event->complete(status, session_->now());
  }
}

std::shared_ptr<RemoteEvent> RemoteContext::take_event(std::uint64_t op_id) {
  std::lock_guard lock(events_mutex_);
  auto it = events_.find(op_id);
  if (it == events_.end()) return nullptr;
  auto event = it->second;
  events_.erase(it);
  return event;
}

std::shared_ptr<RemoteEvent> RemoteContext::peek_event(std::uint64_t op_id) {
  std::lock_guard lock(events_mutex_);
  auto it = events_.find(op_id);
  return it == events_.end() ? nullptr : it->second;
}

// --- RemoteRuntime ----------------------------------------------------------------

namespace {

struct OpenedSession {
  std::shared_ptr<net::Connection> connection;
  proto::OpenSessionResp resp;
};

// Connect + OpenSession with reconnect-level retry driven by the manager's
// CallOptions: a retryable failure (UNAVAILABLE connect/call, a call that
// ran out its deadline) tears the connection down, charges backoff to the
// session clock and dials again. Non-retryable outcomes return immediately.
// The per-call retry policy is stripped — attempt accounting lives here,
// where a fresh connection can actually fix a broken channel.
Result<OpenedSession> open_session_with_retry(const ManagerAddress& manager,
                                              ocl::Session& session,
                                              bool use_shared_memory,
                                              bool keep_connection) {
  CallOptions per_call = manager.call_options;
  per_call.retry.max_attempts = 1;
  const unsigned attempts =
      std::max(1u, manager.call_options.retry.max_attempts);
  Backoff backoff(manager.call_options.retry);
  Status last = Unavailable("session open not attempted");
  for (unsigned attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      session.clock().advance(backoff.next());
      BF_LOG_WARN("remote") << "reconnecting to "
                            << manager.endpoint->address() << " after "
                            << last.to_string() << " (attempt " << attempt
                            << "/" << attempts << ")";
    }
    auto connection = manager.endpoint->connect(
        session.client_id(), manager.transport, session.clock());
    if (!connection.ok()) {
      last = connection.status();
      if (!is_retryable(last.code())) return last;
      continue;
    }
    proto::OpenSessionReq request;
    request.client_id = session.client_id();
    request.use_shared_memory = use_shared_memory;
    auto reply = connection.value()->call(proto::Method::kOpenSession,
                                          encode(request), session.clock(),
                                          per_call);
    if (!reply.ok()) {
      connection.value()->close();
      last = reply.status();
      if (!is_retryable(last.code())) return last;
      continue;
    }
    auto resp = decode_payload<proto::OpenSessionResp>(reply.value());
    if (!resp.ok()) {
      connection.value()->close();
      return resp.status();
    }
    if (Status s = resp.value().status.to_status(); !s.ok()) {
      connection.value()->close();
      return s;
    }
    if (!keep_connection) connection.value()->close();
    return OpenedSession{connection.value(), std::move(resp.value())};
  }
  return last;
}

}  // namespace

RemoteRuntime::RemoteRuntime(std::vector<ManagerAddress> managers)
    : managers_(std::move(managers)) {
  for (const ManagerAddress& manager : managers_) {
    BF_CHECK(manager.endpoint != nullptr);
  }
}

Result<std::vector<ocl::PlatformInfo>> RemoteRuntime::platforms() {
  std::vector<ocl::PlatformInfo> out;
  out.reserve(managers_.size());
  for (std::size_t i = 0; i < managers_.size(); ++i) {
    ocl::PlatformInfo platform;
    platform.name = "BlastFunction Remote OpenCL";
    platform.vendor = "BlastFunction";
    // Resolve the managed device's real id (short probe session, cached).
    ocl::Session probe_session("bf-probe");
    auto info = probe(managers_[i], probe_session);
    if (info.ok()) {
      platform.device_ids = {info.value().id};
      std::lock_guard lock(cache_mutex_);
      device_to_manager_[info.value().id] = i;
    }
    out.push_back(std::move(platform));
  }
  return out;
}

Result<std::vector<ocl::DeviceInfo>> RemoteRuntime::devices() {
  std::vector<ocl::DeviceInfo> out;
  for (std::size_t i = 0; i < managers_.size(); ++i) {
    ocl::Session probe_session("bf-probe");
    auto info = probe(managers_[i], probe_session);
    if (!info.ok()) return info.status();
    {
      std::lock_guard lock(cache_mutex_);
      device_to_manager_[info.value().id] = i;
    }
    out.push_back(std::move(info.value()));
  }
  return out;
}

Result<ocl::DeviceInfo> RemoteRuntime::probe(const ManagerAddress& manager,
                                             ocl::Session& session) {
  auto opened = open_session_with_retry(manager, session,
                                        /*use_shared_memory=*/false,
                                        /*keep_connection=*/false);
  if (!opened.ok()) return opened.status();
  return to_device_info(opened.value().resp.device);
}

Result<std::unique_ptr<ocl::Context>> RemoteRuntime::create_context(
    const std::string& device_id, ocl::Session& session) {
  // The router: find the manager owning this device (cached from devices(),
  // probing on miss).
  std::optional<std::size_t> index;
  {
    std::lock_guard lock(cache_mutex_);
    auto it = device_to_manager_.find(device_id);
    if (it != device_to_manager_.end()) index = it->second;
  }
  if (!index.has_value()) {
    for (std::size_t i = 0; i < managers_.size() && !index.has_value(); ++i) {
      ocl::Session probe_session("bf-probe");
      auto info = probe(managers_[i], probe_session);
      if (info.ok() && info.value().id == device_id) {
        std::lock_guard lock(cache_mutex_);
        device_to_manager_[device_id] = i;
        index = i;
      }
    }
  }
  if (!index.has_value()) {
    return NotFound("no device manager exposes device '" + device_id + "'");
  }
  const ManagerAddress& manager = managers_[*index];

  auto opened = open_session_with_retry(
      manager, session,
      manager.prefer_shared_memory && manager.node_shm != nullptr,
      /*keep_connection=*/true);
  if (!opened.ok()) return opened.status();
  const proto::OpenSessionResp& resp = opened.value().resp;

  std::shared_ptr<shm::Segment> segment;
  if (resp.shared_memory_granted && manager.node_shm != nullptr) {
    const std::string name = manager.endpoint->address() + ":sess:" +
                             std::to_string(resp.session_id);
    auto shm_segment = manager.node_shm->open(name);
    if (shm_segment.ok()) {
      segment = shm_segment.value();
    } else {
      BF_LOG_WARN("remote") << "shm granted but segment missing: "
                            << shm_segment.status().to_string()
                            << " — falling back to gRPC data path";
    }
  }

  return std::unique_ptr<ocl::Context>(std::make_unique<RemoteContext>(
      opened.value().connection, &session, resp.session_id,
      to_device_info(resp.device), std::move(segment),
      manager.call_options));
}

}  // namespace bf::remote
