// Shared-memory data plane.
//
// When a function is co-located with its Device Manager, BlastFunction moves
// buffer payloads through a shared memory area instead of gRPC, cutting the
// data copies from four to one (paper §III-B). The one remaining copy — kept
// for OpenCL compatibility — is the application-buffer <-> shared-slot copy
// on the client side; it is charged to the client's cursor via the node's
// memcpy model. The span-based stage/fetch overloads perform that copy for
// real (so data integrity is testable); the Bytes&&/fetch_take overloads
// transfer ownership instead — zero host work — while still charging the
// same modeled cost and counting the same modeled copy, so virtual-time
// results and copy accounting are identical either way.
//
// The Device Manager side hands slots to the board's DMA engine directly
// (PCIe cost charged by the board, no host copy).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "sim/costmodel.h"
#include "vt/cursor.h"

namespace bf::shm {

// One client<->manager shared memory area (a POSIX shm mapping in the real
// system, mounted into both containers by the Registry's pod patch).
class Segment {
 public:
  Segment(sim::CopyModel copy_model, std::uint64_t capacity_bytes);

  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  // --- client side ----------------------------------------------------------

  // Copies application data into a fresh slot (the single modeled copy).
  // Use this overload only when the caller does NOT own the buffer — the
  // OpenCL write path, where `data` views application memory the host code
  // keeps. If the caller holds a Bytes it will not reuse, prefer the
  // Bytes&& overload: same modeled cost, no real memcpy.
  Result<std::int64_t> stage(ByteSpan data, vt::Cursor& cursor);

  // Ownership-transfer variant: moves the buffer into the slot without
  // touching its bytes. Same modeled charge and copy accounting as the
  // copying overload (virtual-time results are identical either way); the
  // difference is purely real-time — no memcpy of the payload. On error the
  // argument is left untouched, so the caller can fall back or retry.
  Result<std::int64_t> stage(Bytes&& data, vt::Cursor& cursor);

  // Copies a slot's contents out into an application buffer (the single
  // modeled copy on the read path) and releases the slot. Use when the
  // destination is caller-owned memory (OpenCL blocking-read semantics).
  Status fetch(std::int64_t slot, MutableByteSpan out, vt::Cursor& cursor);

  // Ownership-transfer variant of fetch: returns the slot's buffer itself
  // and releases the slot. Prefer this when the caller would otherwise
  // allocate a Bytes just to fetch into it — same modeled charge as fetch,
  // no real memcpy.
  Result<Bytes> fetch_take(std::int64_t slot, vt::Cursor& cursor);

  // --- manager side ---------------------------------------------------------

  // Zero-copy view of a staged slot for board DMA. Valid until release().
  Result<ByteSpan> view(std::int64_t slot) const;

  // Allocates a zero-filled slot the board DMA will fill (read path).
  Result<std::int64_t> allocate(std::uint64_t size);
  Result<MutableByteSpan> writable_view(std::int64_t slot);

  Status release(std::int64_t slot);

  // --- introspection ---------------------------------------------------------

  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t used() const;
  [[nodiscard]] std::uint64_t total_bytes_copied() const;
  [[nodiscard]] std::uint64_t copy_count() const;
  [[nodiscard]] std::size_t slot_count() const;

 private:
  // A slot's logical size may be smaller than its backing capacity when the
  // buffer was recycled from a previously released slot.
  struct Slot {
    Bytes storage;
    std::uint64_t size = 0;
  };

  Result<std::int64_t> allocate_locked(std::uint64_t size, bool zero);
  // Moves from `storage` only on success.
  Result<std::int64_t> insert_locked(Bytes&& storage);
  void recycle_locked(Bytes storage);

  sim::CopyModel copy_model_;
  std::uint64_t capacity_;
  mutable std::mutex mutex_;
  std::map<std::int64_t, Slot> slots_;
  // Bounded cache of released slot buffers, so the steady-state stage/fetch
  // cycle allocates no fresh host memory.
  std::vector<Bytes> spare_;
  std::uint64_t spare_bytes_ = 0;
  std::uint64_t used_ = 0;
  std::int64_t next_slot_ = 1;
  std::uint64_t bytes_copied_ = 0;
  std::uint64_t copies_ = 0;
};

}  // namespace bf::shm
