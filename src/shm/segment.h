// Shared-memory data plane.
//
// When a function is co-located with its Device Manager, BlastFunction moves
// buffer payloads through a shared memory area instead of gRPC, cutting the
// data copies from four to one (paper §III-B). The one remaining copy — kept
// for OpenCL compatibility — is the application-buffer <-> shared-slot copy
// on the client side; it is performed for real (so data integrity is
// testable) and charged to the client's cursor via the node's memcpy model.
//
// The Device Manager side hands slots to the board's DMA engine directly
// (PCIe cost charged by the board, no host copy).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>

#include "common/bytes.h"
#include "common/status.h"
#include "sim/costmodel.h"
#include "vt/cursor.h"

namespace bf::shm {

// One client<->manager shared memory area (a POSIX shm mapping in the real
// system, mounted into both containers by the Registry's pod patch).
class Segment {
 public:
  Segment(sim::CopyModel copy_model, std::uint64_t capacity_bytes);

  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  // --- client side ----------------------------------------------------------

  // Copies application data into a fresh slot (the single modeled copy).
  Result<std::int64_t> stage(ByteSpan data, vt::Cursor& cursor);

  // Copies a slot's contents out into an application buffer (the single
  // modeled copy on the read path) and releases the slot.
  Status fetch(std::int64_t slot, MutableByteSpan out, vt::Cursor& cursor);

  // --- manager side ---------------------------------------------------------

  // Zero-copy view of a staged slot for board DMA. Valid until release().
  Result<ByteSpan> view(std::int64_t slot) const;

  // Allocates an uninitialized slot the board DMA will fill (read path).
  Result<std::int64_t> allocate(std::uint64_t size);
  Result<MutableByteSpan> writable_view(std::int64_t slot);

  Status release(std::int64_t slot);

  // --- introspection ---------------------------------------------------------

  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t used() const;
  [[nodiscard]] std::uint64_t total_bytes_copied() const;
  [[nodiscard]] std::uint64_t copy_count() const;
  [[nodiscard]] std::size_t slot_count() const;

 private:
  Result<std::int64_t> allocate_locked(std::uint64_t size);

  sim::CopyModel copy_model_;
  std::uint64_t capacity_;
  mutable std::mutex mutex_;
  std::map<std::int64_t, Bytes> slots_;
  std::uint64_t used_ = 0;
  std::int64_t next_slot_ = 1;
  std::uint64_t bytes_copied_ = 0;
  std::uint64_t copies_ = 0;
};

}  // namespace bf::shm
