// Node-local shared-memory namespace (the /dev/shm analogue).
//
// A Device Manager creates a named segment per client session; the Remote
// OpenCL Library opens it by name. Both sides must hold the *same* Namespace
// object — i.e. run on the same node — otherwise open() fails and the
// library falls back to the gRPC data path, exactly as in the paper
// ("the Device Manager employs gRPC if the client application is not on the
// same node, or if it is not possible to create a shared memory area").
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "shm/segment.h"

namespace bf::shm {

class Namespace {
 public:
  Namespace() = default;
  Namespace(const Namespace&) = delete;
  Namespace& operator=(const Namespace&) = delete;

  Result<std::shared_ptr<Segment>> create(const std::string& name,
                                          sim::CopyModel copy_model,
                                          std::uint64_t capacity_bytes);

  Result<std::shared_ptr<Segment>> open(const std::string& name) const;

  Status unlink(const std::string& name);

  [[nodiscard]] std::size_t segment_count() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Segment>> segments_;
};

}  // namespace bf::shm
