#include "shm/namespace.h"

#include "fault/injector.h"

namespace bf::shm {

Result<std::shared_ptr<Segment>> Namespace::create(
    const std::string& name, sim::CopyModel copy_model,
    std::uint64_t capacity_bytes) {
  // Grant denial: the Device Manager must fall back to the gRPC data path,
  // exactly as the paper prescribes when no shared area can be created.
  if (fault::should_fire(fault::site::kShmGrantDeny)) {
    return ResourceExhausted("injected fault: shm grant denied");
  }
  std::lock_guard lock(mutex_);
  if (segments_.contains(name)) {
    return AlreadyExists("shm segment '" + name + "' already exists");
  }
  auto segment = std::make_shared<Segment>(copy_model, capacity_bytes);
  segments_[name] = segment;
  return segment;
}

Result<std::shared_ptr<Segment>> Namespace::open(
    const std::string& name) const {
  // Attach failure: the manager granted a segment but the client cannot map
  // it; the remote library falls back to inline gRPC payloads.
  if (fault::should_fire(fault::site::kShmAttachFail)) {
    return NotFound("injected fault: shm attach failed");
  }
  std::lock_guard lock(mutex_);
  auto it = segments_.find(name);
  if (it == segments_.end()) {
    return NotFound("shm segment '" + name + "' does not exist");
  }
  return it->second;
}

Status Namespace::unlink(const std::string& name) {
  std::lock_guard lock(mutex_);
  if (segments_.erase(name) == 0) {
    return NotFound("shm segment '" + name + "' does not exist");
  }
  return Status::Ok();
}

std::size_t Namespace::segment_count() const {
  std::lock_guard lock(mutex_);
  return segments_.size();
}

}  // namespace bf::shm
