#include "shm/namespace.h"

namespace bf::shm {

Result<std::shared_ptr<Segment>> Namespace::create(
    const std::string& name, sim::CopyModel copy_model,
    std::uint64_t capacity_bytes) {
  std::lock_guard lock(mutex_);
  if (segments_.contains(name)) {
    return AlreadyExists("shm segment '" + name + "' already exists");
  }
  auto segment = std::make_shared<Segment>(copy_model, capacity_bytes);
  segments_[name] = segment;
  return segment;
}

Result<std::shared_ptr<Segment>> Namespace::open(
    const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = segments_.find(name);
  if (it == segments_.end()) {
    return NotFound("shm segment '" + name + "' does not exist");
  }
  return it->second;
}

Status Namespace::unlink(const std::string& name) {
  std::lock_guard lock(mutex_);
  if (segments_.erase(name) == 0) {
    return NotFound("shm segment '" + name + "' does not exist");
  }
  return Status::Ok();
}

std::size_t Namespace::segment_count() const {
  std::lock_guard lock(mutex_);
  return segments_.size();
}

}  // namespace bf::shm
