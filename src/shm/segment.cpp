#include "shm/segment.h"

#include <algorithm>

#include "fault/injector.h"

namespace bf::shm {

Segment::Segment(sim::CopyModel copy_model, std::uint64_t capacity_bytes)
    : copy_model_(copy_model), capacity_(capacity_bytes) {
  BF_CHECK(capacity_bytes > 0);
}

Result<std::int64_t> Segment::stage(ByteSpan data, vt::Cursor& cursor) {
  // Mid-stream staging failure: the client already sent the op's metadata,
  // so the manager will see a write with no payload and must fail that op
  // (not hang on it) when the task is flushed.
  if (fault::should_fire(fault::site::kShmStageFail)) {
    return ResourceExhausted("injected fault: shm stage failed");
  }
  std::int64_t slot = 0;
  {
    std::lock_guard lock(mutex_);
    auto allocated = allocate_locked(data.size());
    if (!allocated.ok()) return allocated.status();
    slot = allocated.value();
    Bytes& storage = slots_[slot];
    std::copy(data.begin(), data.end(), storage.begin());
    bytes_copied_ += data.size();
    ++copies_;
  }
  cursor.advance(copy_model_.copy_time(data.size()));
  return slot;
}

Status Segment::fetch(std::int64_t slot, MutableByteSpan out,
                      vt::Cursor& cursor) {
  {
    std::lock_guard lock(mutex_);
    auto it = slots_.find(slot);
    if (it == slots_.end()) {
      return NotFound("unknown shm slot " + std::to_string(slot));
    }
    if (it->second.size() != out.size()) {
      return InvalidArgument("shm fetch size mismatch: slot holds " +
                             std::to_string(it->second.size()) +
                             "B, caller expects " +
                             std::to_string(out.size()) + "B");
    }
    std::copy(it->second.begin(), it->second.end(), out.begin());
    bytes_copied_ += out.size();
    ++copies_;
    used_ -= it->second.size();
    slots_.erase(it);
  }
  cursor.advance(copy_model_.copy_time(out.size()));
  return Status::Ok();
}

Result<ByteSpan> Segment::view(std::int64_t slot) const {
  std::lock_guard lock(mutex_);
  auto it = slots_.find(slot);
  if (it == slots_.end()) {
    return NotFound("unknown shm slot " + std::to_string(slot));
  }
  return ByteSpan{it->second};
}

Result<std::int64_t> Segment::allocate(std::uint64_t size) {
  std::lock_guard lock(mutex_);
  return allocate_locked(size);
}

Result<MutableByteSpan> Segment::writable_view(std::int64_t slot) {
  std::lock_guard lock(mutex_);
  auto it = slots_.find(slot);
  if (it == slots_.end()) {
    return NotFound("unknown shm slot " + std::to_string(slot));
  }
  return MutableByteSpan{it->second};
}

Status Segment::release(std::int64_t slot) {
  std::lock_guard lock(mutex_);
  auto it = slots_.find(slot);
  if (it == slots_.end()) {
    return NotFound("unknown shm slot " + std::to_string(slot));
  }
  used_ -= it->second.size();
  slots_.erase(it);
  return Status::Ok();
}

std::uint64_t Segment::used() const {
  std::lock_guard lock(mutex_);
  return used_;
}

std::uint64_t Segment::total_bytes_copied() const {
  std::lock_guard lock(mutex_);
  return bytes_copied_;
}

std::uint64_t Segment::copy_count() const {
  std::lock_guard lock(mutex_);
  return copies_;
}

std::size_t Segment::slot_count() const {
  std::lock_guard lock(mutex_);
  return slots_.size();
}

Result<std::int64_t> Segment::allocate_locked(std::uint64_t size) {
  if (size == 0) return InvalidArgument("zero-size shm slot");
  if (used_ + size > capacity_) {
    return ResourceExhausted("shm segment full: " + std::to_string(used_) +
                             "B used of " + std::to_string(capacity_) + "B");
  }
  const std::int64_t slot = next_slot_++;
  slots_[slot] = Bytes(size);
  used_ += size;
  return slot;
}

}  // namespace bf::shm
