#include "shm/segment.h"

#include <algorithm>
#include <utility>

#include "common/arena.h"
#include "fault/injector.h"

namespace bf::shm {
namespace {

// Recycled-buffer cache bounds: enough to keep a few in-flight transfer
// buffers warm, small enough that huge one-off sweeps (the 2 GiB Fig 4a
// points) do not pin host memory.
constexpr std::size_t kMaxSpareBuffers = 4;
constexpr std::uint64_t kMaxSpareBytes = 64ULL << 20;

}  // namespace

Segment::Segment(sim::CopyModel copy_model, std::uint64_t capacity_bytes)
    : copy_model_(copy_model), capacity_(capacity_bytes) {
  BF_CHECK(capacity_bytes > 0);
}

Result<std::int64_t> Segment::stage(ByteSpan data, vt::Cursor& cursor) {
  // Mid-stream staging failure: the client already sent the op's metadata,
  // so the manager will see a write with no payload and must fail that op
  // (not hang on it) when the task is flushed.
  if (fault::should_fire(fault::site::kShmStageFail)) {
    return ResourceExhausted("injected fault: shm stage failed");
  }
  std::int64_t slot = 0;
  {
    std::lock_guard lock(mutex_);
    // No zero-fill: the copy below overwrites the slot's full logical size.
    auto allocated = allocate_locked(data.size(), /*zero=*/false);
    if (!allocated.ok()) return allocated.status();
    slot = allocated.value();
    std::copy(data.begin(), data.end(), slots_[slot].storage.begin());
    bytes_copied_ += data.size();
    ++copies_;
  }
  cursor.advance(copy_model_.copy_time(data.size()));
  return slot;
}

Result<std::int64_t> Segment::stage(Bytes&& data, vt::Cursor& cursor) {
  if (fault::should_fire(fault::site::kShmStageFail)) {
    return ResourceExhausted("injected fault: shm stage failed");
  }
  const std::uint64_t size = data.size();
  std::int64_t slot = 0;
  {
    std::lock_guard lock(mutex_);
    auto inserted = insert_locked(std::move(data));
    if (!inserted.ok()) return inserted.status();
    slot = inserted.value();
    // The modeled copy still happens (paper §III-B keeps one client-side
    // copy); only the host-side byte shuffling is elided.
    bytes_copied_ += size;
    ++copies_;
  }
  cursor.advance(copy_model_.copy_time(size));
  return slot;
}

Status Segment::fetch(std::int64_t slot, MutableByteSpan out,
                      vt::Cursor& cursor) {
  {
    std::lock_guard lock(mutex_);
    auto it = slots_.find(slot);
    if (it == slots_.end()) {
      return NotFound("unknown shm slot " + std::to_string(slot));
    }
    if (it->second.size != out.size()) {
      return InvalidArgument("shm fetch size mismatch: slot holds " +
                             std::to_string(it->second.size) +
                             "B, caller expects " +
                             std::to_string(out.size()) + "B");
    }
    std::copy_n(it->second.storage.begin(), it->second.size, out.begin());
    bytes_copied_ += out.size();
    ++copies_;
    used_ -= it->second.size;
    recycle_locked(std::move(it->second.storage));
    slots_.erase(it);
  }
  cursor.advance(copy_model_.copy_time(out.size()));
  return Status::Ok();
}

Result<Bytes> Segment::fetch_take(std::int64_t slot, vt::Cursor& cursor) {
  Bytes out;
  std::uint64_t size = 0;
  {
    std::lock_guard lock(mutex_);
    auto it = slots_.find(slot);
    if (it == slots_.end()) {
      return NotFound("unknown shm slot " + std::to_string(slot));
    }
    size = it->second.size;
    out = std::move(it->second.storage);
    // Recycled backing may be larger than the slot's logical size; shrink
    // (no reallocation, contents preserved) so callers see exact payloads.
    out.resize(size);
    bytes_copied_ += size;
    ++copies_;
    used_ -= size;
    slots_.erase(it);
  }
  cursor.advance(copy_model_.copy_time(size));
  return out;
}

Result<ByteSpan> Segment::view(std::int64_t slot) const {
  std::lock_guard lock(mutex_);
  auto it = slots_.find(slot);
  if (it == slots_.end()) {
    return NotFound("unknown shm slot " + std::to_string(slot));
  }
  return ByteSpan{it->second.storage.data(), it->second.size};
}

Result<std::int64_t> Segment::allocate(std::uint64_t size) {
  std::lock_guard lock(mutex_);
  return allocate_locked(size, /*zero=*/true);
}

Result<MutableByteSpan> Segment::writable_view(std::int64_t slot) {
  std::lock_guard lock(mutex_);
  auto it = slots_.find(slot);
  if (it == slots_.end()) {
    return NotFound("unknown shm slot " + std::to_string(slot));
  }
  return MutableByteSpan{it->second.storage.data(), it->second.size};
}

Status Segment::release(std::int64_t slot) {
  std::lock_guard lock(mutex_);
  auto it = slots_.find(slot);
  if (it == slots_.end()) {
    return NotFound("unknown shm slot " + std::to_string(slot));
  }
  used_ -= it->second.size;
  recycle_locked(std::move(it->second.storage));
  slots_.erase(it);
  return Status::Ok();
}

std::uint64_t Segment::used() const {
  std::lock_guard lock(mutex_);
  return used_;
}

std::uint64_t Segment::total_bytes_copied() const {
  std::lock_guard lock(mutex_);
  return bytes_copied_;
}

std::uint64_t Segment::copy_count() const {
  std::lock_guard lock(mutex_);
  return copies_;
}

std::size_t Segment::slot_count() const {
  std::lock_guard lock(mutex_);
  return slots_.size();
}

Result<std::int64_t> Segment::allocate_locked(std::uint64_t size, bool zero) {
  if (size == 0) return InvalidArgument("zero-size shm slot");
  if (used_ + size > capacity_) {
    return ResourceExhausted("shm segment full: " + std::to_string(used_) +
                             "B used of " + std::to_string(capacity_) + "B");
  }
  Slot slot;
  slot.size = size;
  // Reuse the smallest spare buffer that fits before allocating fresh.
  std::size_t best = spare_.size();
  for (std::size_t i = 0; i < spare_.size(); ++i) {
    if (spare_[i].capacity() < size) continue;
    if (best == spare_.size() ||
        spare_[i].capacity() < spare_[best].capacity()) {
      best = i;
    }
  }
  if (best != spare_.size()) {
    slot.storage = std::move(spare_[best]);
    spare_bytes_ -= slot.storage.capacity();
    spare_.erase(spare_.begin() + static_cast<std::ptrdiff_t>(best));
    if (slot.storage.size() < size) slot.storage.resize(size);
    if (zero) {
      std::fill_n(slot.storage.begin(), size, std::uint8_t{0});
    }
  } else {
    // Spare-cache miss: fall back to the process-wide arena before the
    // heap. Pooled buffers carry stale contents, so the zero=true path
    // (manager-side read slots — sim::DeviceMemory materializes lazily and
    // skips the copy-out for never-written buffers) must zero explicitly;
    // the zero=false path is fully overwritten by the caller's copy.
    slot.storage = arena::acquire(size);
    if (zero) {
      slot.storage.resize(size);  // zero-fills from empty
    } else {
      slot.storage.resize_for_overwrite(size);
    }
  }
  const std::int64_t id = next_slot_++;
  slots_.emplace(id, std::move(slot));
  used_ += size;
  return id;
}

Result<std::int64_t> Segment::insert_locked(Bytes&& storage) {
  const std::uint64_t size = storage.size();
  if (size == 0) return InvalidArgument("zero-size shm slot");
  if (used_ + size > capacity_) {
    return ResourceExhausted("shm segment full: " + std::to_string(used_) +
                             "B used of " + std::to_string(capacity_) + "B");
  }
  Slot slot;
  slot.size = size;
  slot.storage = std::move(storage);
  const std::int64_t id = next_slot_++;
  slots_.emplace(id, std::move(slot));
  used_ += size;
  return id;
}

void Segment::recycle_locked(Bytes storage) {
  const std::uint64_t bytes = storage.capacity();
  if (bytes == 0 || spare_.size() >= kMaxSpareBuffers ||
      spare_bytes_ + bytes > kMaxSpareBytes) {
    // Doesn't fit the per-segment cache: offer it to the process-wide
    // arena (which enforces its own size bounds) instead of freeing.
    arena::recycle(std::move(storage));
    return;
  }
  spare_bytes_ += bytes;
  spare_.push_back(std::move(storage));
}

}  // namespace bf::shm
