// Analytic cost models calibrated against the paper's measurements
// (DESIGN.md §3). All models are pure functions from sizes to modeled
// Durations so they are trivially testable and the calibration is auditable
// in one place.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "vt/time.h"

namespace bf::sim {

// A point-to-point link: fixed per-message latency plus size/bandwidth.
// Used for PCIe (host <-> board) and for the node-local virtual network.
class LinkModel {
 public:
  LinkModel() = default;
  LinkModel(vt::Duration latency, double bytes_per_second)
      : latency_(latency), bytes_per_second_(bytes_per_second) {}

  [[nodiscard]] vt::Duration transfer_time(std::size_t bytes) const {
    const double secs =
        bytes_per_second_ > 0.0
            ? static_cast<double>(bytes) / bytes_per_second_
            : 0.0;
    return latency_ + vt::Duration::from_seconds_f(secs);
  }

  [[nodiscard]] vt::Duration latency() const { return latency_; }
  [[nodiscard]] double bytes_per_second() const { return bytes_per_second_; }

 private:
  vt::Duration latency_ = vt::Duration::nanos(0);
  double bytes_per_second_ = 0.0;
};

// Host memcpy cost (the single data copy the shared-memory path keeps to
// remain OpenCL-compatible; paper §III-B).
class CopyModel {
 public:
  CopyModel() = default;
  explicit CopyModel(double bytes_per_second)
      : bytes_per_second_(bytes_per_second) {}

  [[nodiscard]] vt::Duration copy_time(std::size_t bytes) const {
    if (bytes_per_second_ <= 0.0) return vt::Duration::nanos(0);
    return vt::Duration::from_seconds_f(static_cast<double>(bytes) /
                                        bytes_per_second_);
  }

 private:
  double bytes_per_second_ = 0.0;
};

// Protobuf-style serialization: per-message fixed cost plus per-byte
// encode/decode cost. The gRPC data path pays this twice (encode + decode)
// per hop on top of its extra copies; the shm path pays it only for the tiny
// control messages.
class SerializationModel {
 public:
  SerializationModel() = default;
  SerializationModel(vt::Duration per_message, double bytes_per_second)
      : per_message_(per_message), bytes_per_second_(bytes_per_second) {}

  [[nodiscard]] vt::Duration encode_time(std::size_t bytes) const {
    if (bytes_per_second_ <= 0.0) return per_message_;
    return per_message_ + vt::Duration::from_seconds_f(
                              static_cast<double>(bytes) / bytes_per_second_);
  }

 private:
  vt::Duration per_message_ = vt::Duration::nanos(0);
  double bytes_per_second_ = 0.0;
};

// Everything node-dependent in one place: CPU-speed-driven host overheads,
// the PCIe generation of the board slot, memcpy bandwidth.
struct NodeProfile {
  std::string name;
  // PCIe link between host memory and the FPGA board (effective).
  LinkModel pcie;
  // Host memory copy bandwidth (shm single copy).
  CopyModel memcpy_model;
  // Per-RPC protobuf cost on this host.
  SerializationModel serialization;
  // Fixed host-side overhead added to every serverless request handled by a
  // fork-per-request (OpenFaaS classic watchdog) function: process fork +
  // OpenCL context attach. BlastFunction functions run persistent processes
  // and do not pay this.
  vt::Duration fork_request_overhead = vt::Duration::millis(10);
  // Host-side per-OpenCL-call bookkeeping (driver call, page pinning, ...).
  vt::Duration host_call_overhead = vt::Duration::micros(30);
  // gRPC control round trip cost on the local virtual network (the ~2 ms
  // floor visible across all of Figure 4).
  vt::Duration grpc_control_rtt = vt::Duration::micros(2000);
};

// The paper's testbed (§IV): master node A (Xeon W3530, PCIe gen2) and
// worker nodes B, C (i7-6700, PCIe gen3).
NodeProfile make_node_a();
NodeProfile make_node_b();
NodeProfile make_node_c();

}  // namespace bf::sim
