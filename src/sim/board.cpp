#include "sim/board.h"

#include <algorithm>

#include "trace/span.h"

namespace bf::sim {
namespace {

// Partial-reconfiguration streaming rate (config port) and fixed setup.
constexpr double kPrBytesPerSecond = 100.0 * 1024 * 1024;
constexpr vt::Duration kPrSetup = vt::Duration::millis(250);

}  // namespace

Board::Board(BoardConfig config)
    : config_(std::move(config)), memory_(config_.memory_bytes) {
  BF_CHECK(config_.pr_regions >= 1);
  regions_.resize(config_.pr_regions);
}

Result<Board::Interval> Board::configure(const Bitstream& bitstream,
                                         vt::Time ready) {
  std::lock_guard lock(mutex_);
  memory_.reset();
  for (Region& region : regions_) region.bitstream.reset();
  regions_[0].bitstream = bitstream;
  ++reconfigurations_;
  const Interval interval = schedule_locked(
      ready, bitstream.reconfiguration_time(), /*count_busy=*/false);
  // Full programming stalls every region.
  for (Region& region : regions_) {
    region.busy_until = vt::max(region.busy_until, interval.end);
  }
  return interval;
}

Result<Board::Interval> Board::configure_region(unsigned region_index,
                                                const Bitstream& bitstream,
                                                vt::Time ready) {
  std::lock_guard lock(mutex_);
  if (config_.pr_regions == 1) {
    return FailedPrecondition("board " + config_.id +
                              " is not in space-sharing (shell) mode");
  }
  if (region_index >= regions_.size()) {
    return InvalidArgument("region " + std::to_string(region_index) +
                           " out of range");
  }
  Region& region = regions_[region_index];
  // PR bitstreams cover one region: size scales down with the region count.
  const double bytes =
      static_cast<double>(bitstream.size_bytes) / config_.pr_regions;
  const vt::Duration pr_time =
      kPrSetup + vt::Duration::from_seconds_f(bytes / kPrBytesPerSecond);
  const vt::Time start = vt::max(ready, region.busy_until);
  const vt::Time end = start + pr_time;
  region.busy_until = end;
  region.bitstream = bitstream;
  ++reconfigurations_;
  return Interval{start, end};
}

Result<Board::Interval> Board::ensure_accelerator(const Bitstream& bitstream,
                                                  vt::Time ready,
                                                  bool* wiped_memory) {
  if (wiped_memory != nullptr) *wiped_memory = false;
  bool full_reconfigure = false;
  unsigned target_region = 0;
  {
    std::lock_guard lock(mutex_);
    for (const Region& region : regions_) {
      if (region.bitstream.has_value() &&
          region.bitstream->id == bitstream.id) {
        return Interval{ready, ready};  // already resident
      }
    }
    if (config_.pr_regions == 1) {
      full_reconfigure = true;
    } else {
      // A free region if one exists, otherwise the round-robin victim.
      target_region = next_victim_region_ % config_.pr_regions;
      for (unsigned i = 0; i < regions_.size(); ++i) {
        if (!regions_[i].bitstream.has_value()) {
          target_region = i;
          break;
        }
      }
      next_victim_region_ = (target_region + 1) % config_.pr_regions;
    }
  }
  if (full_reconfigure) {
    if (wiped_memory != nullptr) *wiped_memory = true;
    return configure(bitstream, ready);
  }
  return configure_region(target_region, bitstream, ready);
}

std::optional<Bitstream> Board::bitstream() const {
  std::lock_guard lock(mutex_);
  return regions_[0].bitstream;
}

bool Board::has_kernel(const std::string& name) const {
  std::lock_guard lock(mutex_);
  return region_with_kernel_locked(name) != nullptr;
}

std::vector<std::string> Board::resident_accelerators() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  for (const Region& region : regions_) {
    if (!region.bitstream.has_value()) continue;
    if (std::find(out.begin(), out.end(), region.bitstream->accelerator) ==
        out.end()) {
      out.push_back(region.bitstream->accelerator);
    }
  }
  return out;
}

unsigned Board::free_region_count() const {
  std::lock_guard lock(mutex_);
  unsigned free = 0;
  for (const Region& region : regions_) {
    if (!region.bitstream.has_value()) ++free;
  }
  return free;
}

const Board::Region* Board::region_with_kernel_locked(
    const std::string& name) const {
  for (const Region& region : regions_) {
    if (region.bitstream.has_value() && region.bitstream->has_kernel(name)) {
      return &region;
    }
  }
  return nullptr;
}

Result<MemHandle> Board::allocate(std::uint64_t size) {
  std::lock_guard lock(mutex_);
  return memory_.allocate(size);
}

Status Board::release(MemHandle handle) {
  std::lock_guard lock(mutex_);
  return memory_.release(handle);
}

Result<Board::Interval> Board::write(MemHandle handle, std::uint64_t offset,
                                     ByteSpan data, vt::Time ready) {
  std::lock_guard lock(mutex_);
  if (config_.functional) {
    if (Status s = memory_.write(handle, offset, data); !s.ok()) return s;
  } else {
    // Timing-only mode: charge the transfer without materializing contents
    // (large load experiments would otherwise hold every tenant's weights).
    auto size = memory_.allocation_size(handle);
    if (!size.ok()) return size.status();
    if (offset + data.size() > size.value()) {
      return InvalidArgument("device write out of bounds");
    }
  }
  return schedule_locked(ready, config_.host.pcie.transfer_time(data.size()));
}

Result<Board::Interval> Board::read(MemHandle handle, std::uint64_t offset,
                                    MutableByteSpan out, vt::Time ready) {
  std::lock_guard lock(mutex_);
  if (config_.functional) {
    if (Status s = memory_.read(handle, offset, out); !s.ok()) return s;
  } else {
    auto size = memory_.allocation_size(handle);
    if (!size.ok()) return size.status();
    if (offset + out.size() > size.value()) {
      return InvalidArgument("device read out of bounds");
    }
    std::fill(out.begin(), out.end(), std::uint8_t{0});
  }
  return schedule_locked(ready, config_.host.pcie.transfer_time(out.size()));
}

Result<Board::Interval> Board::run_kernel(const KernelLaunch& launch,
                                          vt::Time ready) {
  std::lock_guard lock(mutex_);
  bool any_configured = false;
  for (const Region& region : regions_) {
    any_configured |= region.bitstream.has_value();
  }
  if (!any_configured) {
    return FailedPrecondition("board " + config_.id + " is not configured");
  }
  const Region* region = region_with_kernel_locked(launch.kernel);
  if (region == nullptr) {
    return NotFound("kernel '" + launch.kernel +
                    "' not resident on board '" + config_.id + "'");
  }
  const KernelModel* model = KernelRegistry::standard().find(launch.kernel);
  if (model == nullptr) {
    return Internal("no model for kernel '" + launch.kernel + "'");
  }
  if (Status s = model->validate(launch); !s.ok()) return s;
  auto exec_time = model->execution_time(launch);
  if (!exec_time.ok()) return exec_time.status();
  if (config_.functional) {
    if (Status s = model->execute(launch, memory_); !s.ok()) return s;
  }
  ++kernel_launches_;
  const auto region_index =
      static_cast<unsigned>(region - regions_.data());
  const Interval interval =
      schedule_kernel_locked(region_index, ready, exec_time.value());
  if (launch.trace.is_valid() && trace::enabled()) {
    trace::Span span;
    span.track = config_.id;
    span.name = "kernel:" + launch.kernel;
    span.start = interval.start;
    span.end = interval.end;
    span.trace_id = launch.trace.trace_id;
    span.span_id = launch.trace.child(trace::salt::kKernel).span_id;
    span.parent_span_id = launch.trace.span_id;
    trace::record(std::move(span));
  }
  return interval;
}

Result<std::vector<Board::Interval>> Board::run_kernel_batch(
    const std::vector<KernelLaunch>& launches, vt::Time ready) {
  if (launches.empty()) {
    return InvalidArgument("empty kernel batch");
  }
  if (launches.size() == 1) {
    auto interval = run_kernel(launches.front(), ready);
    if (!interval.ok()) return interval.status();
    return std::vector<Interval>{interval.value()};
  }
  std::lock_guard lock(mutex_);
  const std::string& kernel = launches.front().kernel;
  for (const KernelLaunch& launch : launches) {
    if (launch.kernel != kernel) {
      return InvalidArgument("kernel batch mixes '" + kernel + "' and '" +
                             launch.kernel + "'");
    }
  }
  bool any_configured = false;
  for (const Region& region : regions_) {
    any_configured |= region.bitstream.has_value();
  }
  if (!any_configured) {
    return FailedPrecondition("board " + config_.id + " is not configured");
  }
  const Region* region = region_with_kernel_locked(kernel);
  if (region == nullptr) {
    return NotFound("kernel '" + kernel + "' not resident on board '" +
                    config_.id + "'");
  }
  const KernelModel* model = KernelRegistry::standard().find(kernel);
  if (model == nullptr) {
    return Internal("no model for kernel '" + kernel + "'");
  }
  // Validate and cost every launch before touching memory, so a bad launch
  // fails the whole batch with no partial functional effects.
  std::vector<vt::Duration> exec_times;
  exec_times.reserve(launches.size());
  for (const KernelLaunch& launch : launches) {
    if (Status s = model->validate(launch); !s.ok()) return s;
    auto exec_time = model->execution_time(launch);
    if (!exec_time.ok()) return exec_time.status();
    exec_times.push_back(exec_time.value());
  }
  if (config_.functional) {
    for (const KernelLaunch& launch : launches) {
      if (Status s = model->execute(launch, memory_); !s.ok()) return s;
    }
  }
  kernel_launches_ += launches.size();
  // Every model's execution_time includes the fixed launch overhead; the
  // followers ride the already-filled pipeline, so the pass pays it once.
  const vt::Duration overhead = kernel_launch_overhead();
  const vt::Duration zero = vt::Duration::nanos(0);
  std::vector<vt::Duration> shares;
  shares.reserve(launches.size());
  vt::Duration total = zero;
  for (std::size_t i = 0; i < exec_times.size(); ++i) {
    const vt::Duration share =
        i == 0 ? exec_times[i] : vt::max(exec_times[i] - overhead, zero);
    shares.push_back(share);
    total += share;
  }
  const auto region_index = static_cast<unsigned>(region - regions_.data());
  const Interval pass = schedule_kernel_locked(region_index, ready, total);
  std::vector<Interval> intervals;
  intervals.reserve(launches.size());
  vt::Time cursor = pass.start;
  for (std::size_t i = 0; i < launches.size(); ++i) {
    const Interval interval{cursor, cursor + shares[i]};
    cursor = interval.end;
    intervals.push_back(interval);
    const KernelLaunch& launch = launches[i];
    if (launch.trace.is_valid() && trace::enabled()) {
      trace::Span span;
      span.track = config_.id;
      span.name = "kernel:" + launch.kernel;
      span.start = interval.start;
      span.end = interval.end;
      span.trace_id = launch.trace.trace_id;
      span.span_id = launch.trace.child(trace::salt::kKernel).span_id;
      span.parent_span_id = launch.trace.span_id;
      trace::record(std::move(span));
    }
  }
  return intervals;
}

std::uint64_t Board::memory_capacity() const {
  std::lock_guard lock(mutex_);
  return memory_.capacity();
}

std::uint64_t Board::memory_used() const {
  std::lock_guard lock(mutex_);
  return memory_.used();
}

vt::Time Board::busy_until() const {
  std::lock_guard lock(mutex_);
  vt::Time latest = busy_until_;
  for (const Region& region : regions_) {
    latest = vt::max(latest, region.busy_until);
  }
  return latest;
}

vt::Duration Board::busy_total() const {
  std::lock_guard lock(mutex_);
  return busy_total_;
}

vt::Duration Board::busy_between(vt::Time from, vt::Time to) const {
  std::lock_guard lock(mutex_);
  vt::Duration total = vt::Duration::nanos(0);
  for (const Interval& interval : busy_log_) {
    const vt::Time lo = vt::max(interval.start, from);
    const vt::Time hi = interval.end < to ? interval.end : to;
    if (lo < hi) total += hi - lo;
  }
  return total;
}

std::uint64_t Board::reconfiguration_count() const {
  std::lock_guard lock(mutex_);
  return reconfigurations_;
}

std::uint64_t Board::kernel_launch_count() const {
  std::lock_guard lock(mutex_);
  return kernel_launches_;
}

Board::Interval Board::schedule_locked(vt::Time ready, vt::Duration exec,
                                       bool count_busy) {
  const vt::Time start = vt::max(ready, busy_until_);
  const vt::Time end = start + exec;
  busy_until_ = end;
  if (count_busy) {
    busy_total_ += exec;
    // Coalesce back-to-back intervals to bound the log size.
    if (!busy_log_.empty() && busy_log_.back().end == start) {
      busy_log_.back().end = end;
    } else {
      busy_log_.push_back(Interval{start, end});
    }
  }
  return Interval{start, end};
}

Board::Interval Board::schedule_kernel_locked(unsigned region_index,
                                              vt::Time ready,
                                              vt::Duration exec) {
  if (config_.pr_regions == 1) {
    // Classic mode: kernels and DMA share the one exclusive timeline.
    return schedule_locked(ready, exec);
  }
  Region& region = regions_[region_index];
  const vt::Time start = vt::max(ready, region.busy_until);
  const vt::Time end = start + exec;
  region.busy_until = end;
  busy_total_ += exec;
  busy_log_.push_back(Interval{start, end});
  return Interval{start, end};
}

}  // namespace bf::sim
