// Kernel models: modeled execution time + functional semantics.
//
// Each accelerator kernel from the paper's evaluation (Spector Sobel,
// Spector MM, PipeCNN conv/pool/lrn/fc) is modeled twice:
//  * a calibrated latency model (DESIGN.md §3) used by every experiment, and
//  * a functional implementation (real arithmetic on board memory) used by
//    correctness tests and functional examples, so results are checkable
//    against CPU references.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "sim/memory.h"
#include "trace/span.h"
#include "vt/time.h"

namespace bf::sim {

// Functional kernels compute directly in borrowed board memory and spread
// row/channel partitions across WorkerPool::shared(). Partitioning never
// changes results: every output element is produced by exactly one task with
// a fixed operation order (see docs/PERFORMANCE.md). This scope swaps in a
// private pool of the given size so tests can pin byte-exactness across
// 1, 2, and N lanes. Not reentrant; do not construct concurrently with
// running kernels.
class ScopedKernelParallelism {
 public:
  explicit ScopedKernelParallelism(unsigned threads);
  ~ScopedKernelParallelism();

  ScopedKernelParallelism(const ScopedKernelParallelism&) = delete;
  ScopedKernelParallelism& operator=(const ScopedKernelParallelism&) = delete;

 private:
  std::unique_ptr<WorkerPool> pool_;
  WorkerPool* previous_;
};

// An OpenCL kernel argument: a device buffer or a scalar.
using KernelArg = std::variant<MemHandle, std::int64_t, double>;

struct KernelLaunch {
  std::string kernel;
  std::vector<KernelArg> args;
  std::array<std::uint64_t, 3> global_size = {1, 1, 1};
  // Request trace context of the enqueue that produced this launch (invalid
  // when untraced); the board records a "kernel:<name>" span under it.
  trace::SpanContext trace;

  [[nodiscard]] std::uint64_t work_items() const {
    return global_size[0] * global_size[1] * global_size[2];
  }
};

// Helpers to read typed args with contract checks.
Result<MemHandle> arg_buffer(const KernelLaunch& launch, std::size_t index);
Result<std::int64_t> arg_scalar(const KernelLaunch& launch, std::size_t index);

// Fixed per-enqueue on-device launch overhead (pipeline fill, DMA descriptor
// setup) baked into every model's execution_time. Exposed so a coalesced
// batch pass (Board::run_kernel_batch) can pay it once instead of per launch.
[[nodiscard]] vt::Duration kernel_launch_overhead();

class KernelModel {
 public:
  virtual ~KernelModel() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::size_t arity() const = 0;

  // Modeled on-device execution latency (excludes host<->board transfers,
  // which the PCIe link model charges separately).
  [[nodiscard]] virtual Result<vt::Duration> execution_time(
      const KernelLaunch& launch) const = 0;

  // Functional execution against board memory.
  virtual Status execute(const KernelLaunch& launch,
                         DeviceMemory& memory) const = 0;

  // Validates arg count/types without executing.
  [[nodiscard]] Status validate(const KernelLaunch& launch) const;
};

// Registry of all kernel models known to the simulator, keyed by name.
class KernelRegistry {
 public:
  static const KernelRegistry& standard();

  [[nodiscard]] const KernelModel* find(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  KernelRegistry();
  std::unordered_map<std::string, std::unique_ptr<KernelModel>> models_;
};

// --- Individual models (exposed for targeted unit tests) -------------------

// Spector Sobel operator: ~1 px/cycle at ~167 MHz => ~6 ns per pixel.
// args: (in u32 pixels, out u32 pixels, width, height)
class SobelKernel final : public KernelModel {
 public:
  [[nodiscard]] std::string_view name() const override { return "sobel"; }
  [[nodiscard]] std::size_t arity() const override { return 4; }
  [[nodiscard]] Result<vt::Duration> execution_time(
      const KernelLaunch& launch) const override;
  Status execute(const KernelLaunch& launch,
                 DeviceMemory& memory) const override;
};

// Spector MM: C = A x B, square N x N float32, ~19.2 GFLOP-pair/s effective.
// args: (A, B, C, N)
class MatMulKernel final : public KernelModel {
 public:
  [[nodiscard]] std::string_view name() const override { return "mm"; }
  [[nodiscard]] std::size_t arity() const override { return 4; }
  [[nodiscard]] Result<vt::Duration> execution_time(
      const KernelLaunch& launch) const override;
  Status execute(const KernelLaunch& launch,
                 DeviceMemory& memory) const override;
};

// PipeCNN convolution (also used for FC with spatial dims 1).
// args: (in, weights, bias, out,
//        in_c, in_h, in_w, out_c, out_h, out_w, ksize, stride, pad, relu)
class ConvKernel : public KernelModel {
 public:
  [[nodiscard]] std::string_view name() const override { return "conv"; }
  [[nodiscard]] std::size_t arity() const override { return 14; }
  [[nodiscard]] Result<vt::Duration> execution_time(
      const KernelLaunch& launch) const override;
  Status execute(const KernelLaunch& launch,
                 DeviceMemory& memory) const override;
};

// FC alias so PipeCNN host code reads naturally; same math as 1x1 conv.
class FcKernel final : public ConvKernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "fc"; }
};

// PipeCNN max-pooling.
// args: (in, out, c, in_h, in_w, out_h, out_w, ksize, stride)
class PoolKernel final : public KernelModel {
 public:
  [[nodiscard]] std::string_view name() const override { return "pool"; }
  [[nodiscard]] std::size_t arity() const override { return 9; }
  [[nodiscard]] Result<vt::Duration> execution_time(
      const KernelLaunch& launch) const override;
  Status execute(const KernelLaunch& launch,
                 DeviceMemory& memory) const override;
};

// PipeCNN local response normalization. args: (in, out, c, h, w)
class LrnKernel final : public KernelModel {
 public:
  [[nodiscard]] std::string_view name() const override { return "lrn"; }
  [[nodiscard]] std::size_t arity() const override { return 5; }
  [[nodiscard]] Result<vt::Duration> execution_time(
      const KernelLaunch& launch) const override;
  Status execute(const KernelLaunch& launch,
                 DeviceMemory& memory) const override;
};

// Spector FIR filter: 1-D convolution of a float signal with T taps.
// args: (in, coeffs, out, n, taps)
class FirKernel final : public KernelModel {
 public:
  [[nodiscard]] std::string_view name() const override { return "fir"; }
  [[nodiscard]] std::size_t arity() const override { return 5; }
  [[nodiscard]] Result<vt::Duration> execution_time(
      const KernelLaunch& launch) const override;
  Status execute(const KernelLaunch& launch,
                 DeviceMemory& memory) const override;
};

// Spector histogram: 256-bin histogram of u32 pixels (low byte).
// args: (in, hist, n)
class HistogramKernel final : public KernelModel {
 public:
  [[nodiscard]] std::string_view name() const override { return "histogram"; }
  [[nodiscard]] std::size_t arity() const override { return 3; }
  [[nodiscard]] Result<vt::Duration> execution_time(
      const KernelLaunch& launch) const override;
  Status execute(const KernelLaunch& launch,
                 DeviceMemory& memory) const override;
};

// Demo vector add: c = a + b (float32). args: (a, b, c, n)
class VaddKernel final : public KernelModel {
 public:
  [[nodiscard]] std::string_view name() const override { return "vadd"; }
  [[nodiscard]] std::size_t arity() const override { return 4; }
  [[nodiscard]] Result<vt::Duration> execution_time(
      const KernelLaunch& launch) const override;
  Status execute(const KernelLaunch& launch,
                 DeviceMemory& memory) const override;
};

}  // namespace bf::sim
