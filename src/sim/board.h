// Simulated FPGA board (Terasic DE5a-Net / Intel Arria-10 GX class).
//
// The board is a passive, thread-safe device: callers (the Native runtime or
// a Device Manager worker) ask it to schedule exclusive work at a given
// virtual-time readiness and it returns the modeled [start, end] interval,
// maintaining a single busy timeline — this is the physical serialization
// point that makes time-sharing meaningful. Busy intervals are recorded for
// the utilization metric (paper §III-C / §IV-B).
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/bitstream.h"
#include "sim/costmodel.h"
#include "sim/kernels.h"
#include "sim/memory.h"
#include "vt/time.h"

namespace bf::sim {

struct BoardConfig {
  std::string id;                 // e.g. "fpga-node-b"
  std::string node;               // hosting node name ("A", "B", "C")
  NodeProfile host;               // node profile (PCIe link, memcpy, ...)
  std::uint64_t memory_bytes = 8ULL * 1024 * 1024 * 1024;
  // When true, kernels perform real arithmetic on board memory; when false
  // only timing is modeled (used by large load experiments).
  bool functional = true;
  // Space-sharing (paper §V future work): number of partial-reconfiguration
  // regions. 1 = classic full-device time sharing (the paper's evaluated
  // mode). With N > 1 the board hosts up to N accelerators concurrently:
  // each region has its own execution timeline; DMA transfers still share
  // one engine.
  unsigned pr_regions = 1;
};

class Board {
 public:
  explicit Board(BoardConfig config);

  Board(const Board&) = delete;
  Board& operator=(const Board&) = delete;

  [[nodiscard]] const std::string& id() const { return config_.id; }
  [[nodiscard]] const std::string& node() const { return config_.node; }
  [[nodiscard]] const NodeProfile& host() const { return config_.host; }
  [[nodiscard]] bool functional() const { return config_.functional; }

  // --- Configuration --------------------------------------------------------

  // Full-device programming. Wipes DDR and every PR region. Returns the
  // modeled reconfiguration interval (the board is exclusively busy for its
  // whole span).
  struct Interval {
    vt::Time start;
    vt::Time end;
    [[nodiscard]] vt::Duration duration() const { return end - start; }
  };
  Result<Interval> configure(const Bitstream& bitstream, vt::Time ready);

  // Partial reconfiguration of one region (space-sharing mode). Faster than
  // a full program and leaves DDR and the other regions untouched.
  Result<Interval> configure_region(unsigned region,
                                    const Bitstream& bitstream,
                                    vt::Time ready);

  // Loads `bitstream` with the board's cheapest mechanism: no-op when
  // already resident; a free (or round-robin victim) PR region in shell
  // mode; a full reprogram otherwise. Sets *wiped_memory when the path
  // taken invalidated DDR contents.
  Result<Interval> ensure_accelerator(const Bitstream& bitstream,
                                      vt::Time ready, bool* wiped_memory);

  [[nodiscard]] std::optional<Bitstream> bitstream() const;  // region 0
  [[nodiscard]] bool has_kernel(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> resident_accelerators() const;
  [[nodiscard]] unsigned region_count() const { return config_.pr_regions; }
  [[nodiscard]] unsigned free_region_count() const;

  // --- Data movement (PCIe) -------------------------------------------------

  Result<MemHandle> allocate(std::uint64_t size);
  Status release(MemHandle handle);

  // Host -> board transfer: performs the write and returns the exclusive
  // occupancy interval starting no earlier than `ready`.
  Result<Interval> write(MemHandle handle, std::uint64_t offset, ByteSpan data,
                         vt::Time ready);
  // Board -> host transfer.
  Result<Interval> read(MemHandle handle, std::uint64_t offset,
                        MutableByteSpan out, vt::Time ready);

  // --- Kernel execution -----------------------------------------------------

  // Validates the launch against the configured bitstream, executes it
  // functionally when enabled, and schedules its modeled time exclusively.
  Result<Interval> run_kernel(const KernelLaunch& launch, vt::Time ready);

  // Coalesced pass: executes several same-kernel launches back to back in
  // one exclusive occupancy, paying the fixed per-launch overhead
  // (kernel_launch_overhead()) once instead of once per launch. Functional
  // effects and per-launch modeled compute are unchanged. Returns one
  // sequential sub-interval per launch, in input order, partitioning the
  // pass. All launches must name the same kernel.
  Result<std::vector<Interval>> run_kernel_batch(
      const std::vector<KernelLaunch>& launches, vt::Time ready);

  // --- Introspection / metrics ----------------------------------------------

  [[nodiscard]] std::uint64_t memory_capacity() const;
  [[nodiscard]] std::uint64_t memory_used() const;
  [[nodiscard]] vt::Time busy_until() const;
  [[nodiscard]] vt::Duration busy_total() const;
  // Busy time overlapping [from, to] — the utilization numerator.
  [[nodiscard]] vt::Duration busy_between(vt::Time from, vt::Time to) const;
  [[nodiscard]] std::uint64_t reconfiguration_count() const;
  [[nodiscard]] std::uint64_t kernel_launch_count() const;

 private:
  // count_busy=false occupies the timeline without contributing to the
  // utilization metric (reconfiguration is not an OpenCL call, §III-C).
  Interval schedule_locked(vt::Time ready, vt::Duration exec,
                           bool count_busy = true);

  struct Region {
    std::optional<Bitstream> bitstream;
    vt::Time busy_until;
  };
  // Kernel scheduling: unified timeline in single-region mode, per-region
  // timeline in shell mode. Requires mutex_ held.
  Interval schedule_kernel_locked(unsigned region, vt::Time ready,
                                  vt::Duration exec);
  [[nodiscard]] const Region* region_with_kernel_locked(
      const std::string& name) const;

  BoardConfig config_;
  mutable std::mutex mutex_;
  DeviceMemory memory_;
  std::vector<Region> regions_;
  unsigned next_victim_region_ = 0;
  vt::Time busy_until_ = vt::Time::zero();
  vt::Duration busy_total_ = vt::Duration::nanos(0);
  std::vector<Interval> busy_log_;
  std::uint64_t reconfigurations_ = 0;
  std::uint64_t kernel_launches_ = 0;
};

}  // namespace bf::sim
