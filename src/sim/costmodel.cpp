#include "sim/costmodel.h"

namespace bf::sim {
namespace {

constexpr double kGiBps = 1024.0 * 1024.0 * 1024.0;

}  // namespace

// Calibration sources (DESIGN.md §3):
//  - Fig 4a: shm overhead 155 ms @ 2 GiB total moved  => memcpy ~13 GiB/s.
//  - Fig 4a: gRPC path ~4x native                     => 3 copies + protobuf.
//  - Fig 4b/4c: ~2 ms control floor                   => grpc_control_rtt.
//  - Table II: node A latencies ~5 ms above B/C       => fork/call overheads.
NodeProfile make_node_a() {
  NodeProfile p;
  p.name = "A";
  // PCIe gen2 x8 effective.
  p.pcie = LinkModel(vt::Duration::micros(180), 3.0 * kGiBps);
  p.memcpy_model = CopyModel(10.0 * kGiBps);
  p.serialization = SerializationModel(vt::Duration::micros(40), 8.0 * kGiBps);
  p.fork_request_overhead = vt::Duration::micros(13500);
  p.host_call_overhead = vt::Duration::micros(90);
  p.grpc_control_rtt = vt::Duration::micros(2600);
  return p;
}

NodeProfile make_node_b() {
  NodeProfile p;
  p.name = "B";
  // PCIe gen3 x8 effective.
  p.pcie = LinkModel(vt::Duration::micros(120), 6.0 * kGiBps);
  p.memcpy_model = CopyModel(13.0 * kGiBps);
  p.serialization = SerializationModel(vt::Duration::micros(25), 10.0 * kGiBps);
  p.fork_request_overhead = vt::Duration::micros(9500);
  p.host_call_overhead = vt::Duration::micros(30);
  p.grpc_control_rtt = vt::Duration::micros(1900);
  return p;
}

NodeProfile make_node_c() {
  NodeProfile p = make_node_b();
  p.name = "C";
  // Same hardware as B; tiny deterministic skew so the two nodes are
  // distinguishable in traces.
  p.grpc_control_rtt = vt::Duration::micros(1950);
  return p;
}

}  // namespace bf::sim
