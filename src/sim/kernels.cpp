#include "sim/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <span>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define BF_GEMM_AVX2 1
#endif

namespace bf::sim {
namespace {

// Calibration constants (DESIGN.md §3).
constexpr double kSobelNsPerPixel = 6.0;
constexpr double kMatMulMacsPerSecond = 19.2e9;
// Grouped AlexNet layers are modeled ungrouped (1.136 GMAC/request instead
// of 0.78), so the effective rate is scaled up to keep the per-request
// device time at the paper's ~70 ms (Table IV utilization / throughput).
constexpr double kConvMacsPerSecond = 17.2e9;
constexpr double kPoolOpsPerSecond = 4.0e9;
constexpr double kLrnOpsPerSecond = 1.2e9;
constexpr double kVaddOpsPerSecond = 25.0e9;
constexpr double kFirMacsPerSecond = 24.0e9;   // deep MAC pipeline
constexpr double kHistogramPixelsPerSecond = 2.0e9;
// Per-enqueue on-device launch overhead (pipeline fill, DMA descriptor
// setup). Visible in Fig 4b/4c as the small-input floor.
constexpr vt::Duration kLaunchOverhead = vt::Duration::micros(150);

// ---- zero-copy typed views over board memory --------------------------------
//
// Kernels compute in place on the allocation's backing store instead of
// round-tripping through temporary vectors. Spans stay valid for the whole
// execute() call (the board holds its mutex across the launch, and handles
// cannot be released mid-kernel).

Result<std::span<const float>> borrow_floats(DeviceMemory& memory,
                                             MemHandle handle,
                                             std::size_t count) {
  auto bytes = memory.borrow(handle, 0, count * sizeof(float));
  if (!bytes.ok()) return bytes.status();
  return std::span<const float>{
      reinterpret_cast<const float*>(bytes.value().data()), count};
}

Result<std::span<float>> borrow_floats_mut(DeviceMemory& memory,
                                           MemHandle handle,
                                           std::size_t count) {
  auto bytes = memory.borrow_mut(handle, 0, count * sizeof(float));
  if (!bytes.ok()) return bytes.status();
  return std::span<float>{reinterpret_cast<float*>(bytes.value().data()),
                          count};
}

Result<std::span<const std::uint32_t>> borrow_pixels(DeviceMemory& memory,
                                                     MemHandle handle,
                                                     std::size_t count) {
  auto bytes = memory.borrow(handle, 0, count * sizeof(std::uint32_t));
  if (!bytes.ok()) return bytes.status();
  return std::span<const std::uint32_t>{
      reinterpret_cast<const std::uint32_t*>(bytes.value().data()), count};
}

Result<std::span<std::uint32_t>> borrow_pixels_mut(DeviceMemory& memory,
                                                   MemHandle handle,
                                                   std::size_t count) {
  auto bytes = memory.borrow_mut(handle, 0, count * sizeof(std::uint32_t));
  if (!bytes.ok()) return bytes.status();
  return std::span<std::uint32_t>{
      reinterpret_cast<std::uint32_t*>(bytes.value().data()), count};
}

// ---- worker-pool plumbing ---------------------------------------------------

std::atomic<WorkerPool*> g_pool_override{nullptr};

WorkerPool& kernel_pool() {
  auto* pool = g_pool_override.load(std::memory_order_acquire);
  return pool != nullptr ? *pool : WorkerPool::shared();
}

// Splits [0, count) into at most pool-size contiguous chunks of at least
// min_grain items and runs body(begin, end) for each. Small launches stay
// inline. Chunk boundaries cannot change results: every element is produced
// by exactly one chunk and the per-element operation order is fixed.
void run_chunked(std::size_t count, std::size_t min_grain,
                 const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  WorkerPool& pool = kernel_pool();
  std::size_t chunks =
      std::min<std::size_t>(pool.size(), min_grain == 0 ? count
                                                        : count / min_grain);
  if (chunks <= 1) {
    body(0, count);
    return;
  }
  const std::size_t per = (count + chunks - 1) / chunks;
  pool.parallel_for(chunks, [&](std::size_t chunk) {
    const std::size_t begin = chunk * per;
    const std::size_t end = std::min(count, begin + per);
    if (begin < end) body(begin, end);
  });
}

// ---- Sobel inner loop -------------------------------------------------------
//
// A named helper with __restrict__ parameters (the alias case snapshots
// before calling, so src and dst never overlap): borrowed spans lack the
// fresh-allocation no-alias guarantee the old temporary vectors carried,
// and inside a type-erased run_chunked closure GCC won't vectorize the
// interior without it (~2x slower).
void sobel_rows(const std::uint32_t* __restrict__ src,
                std::uint32_t* __restrict__ dst, std::size_t width,
                std::size_t row0, std::size_t row1) {
  constexpr int gx[3][3] = {{-1, 0, 1}, {-2, 0, 2}, {-1, 0, 1}};
  constexpr int gy[3][3] = {{-1, -2, -1}, {0, 0, 0}, {1, 2, 1}};
  for (std::size_t y = row0; y < row1; ++y) {
    for (std::size_t x = 1; x + 1 < width; ++x) {
      int sum_x = 0;
      int sum_y = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const auto value = static_cast<int>(
              src[(y + static_cast<std::size_t>(dy + 1) - 1) * width +
                  (x + static_cast<std::size_t>(dx + 1) - 1)] &
              0xFFU);
          sum_x += gx[dy + 1][dx + 1] * value;
          sum_y += gy[dy + 1][dx + 1] * value;
        }
      }
      const int magnitude =
          std::min(255, static_cast<int>(std::sqrt(static_cast<double>(
                            sum_x * sum_x + sum_y * sum_y))));
      dst[y * width + x] = static_cast<std::uint32_t>(magnitude);
    }
  }
}

// ---- GEMM inner loops -------------------------------------------------------
//
// All paths accumulate each output element as: acc = 0; acc += a[i,k]*b[k,j]
// for k ascending; single store. That chain is what the serial reference and
// the CPU references in tests compute, so SIMD width and row partitioning
// never change a bit of the result. No path may use FMA: the references are
// compiled without contraction, and target("avx2") below deliberately leaves
// the FMA ISA off so neither the intrinsics nor the compiler can fuse.

void gemm_scalar_block(const float* a, const float* b, float* c, std::size_t n,
                       std::size_t row0, std::size_t row1, std::size_t col0,
                       std::size_t col1) {
  for (std::size_t i = row0; i < row1; ++i) {
    for (std::size_t j = col0; j < col1; ++j) {
      float acc = 0.0F;
      for (std::size_t k = 0; k < n; ++k) {
        acc += a[i * n + k] * b[k * n + j];
      }
      c[i * n + j] = acc;
    }
  }
}

#if defined(BF_GEMM_AVX2)
// Register-tiled panels: 4 rows x 16 columns held in 8 ymm accumulators, one
// pass over k. Loads two B vectors and four A broadcasts per k step; explicit
// mul-then-add keeps the per-element rounding identical to the scalar chain.
__attribute__((target("avx2"))) void gemm_rows_avx2(const float* a,
                                                    const float* b, float* c,
                                                    std::size_t n,
                                                    std::size_t row0,
                                                    std::size_t row1) {
  constexpr std::size_t kRows = 4;
  constexpr std::size_t kCols = 16;
  std::size_t i = row0;
  for (; i + kRows <= row1; i += kRows) {
    std::size_t j = 0;
    for (; j + kCols <= n; j += kCols) {
      __m256 acc[kRows][2];
      for (std::size_t r = 0; r < kRows; ++r) {
        acc[r][0] = _mm256_setzero_ps();
        acc[r][1] = _mm256_setzero_ps();
      }
      for (std::size_t k = 0; k < n; ++k) {
        const __m256 b0 = _mm256_loadu_ps(b + k * n + j);
        const __m256 b1 = _mm256_loadu_ps(b + k * n + j + 8);
        for (std::size_t r = 0; r < kRows; ++r) {
          const __m256 a_rk = _mm256_set1_ps(a[(i + r) * n + k]);
          acc[r][0] = _mm256_add_ps(acc[r][0], _mm256_mul_ps(a_rk, b0));
          acc[r][1] = _mm256_add_ps(acc[r][1], _mm256_mul_ps(a_rk, b1));
        }
      }
      for (std::size_t r = 0; r < kRows; ++r) {
        _mm256_storeu_ps(c + (i + r) * n + j, acc[r][0]);
        _mm256_storeu_ps(c + (i + r) * n + j + 8, acc[r][1]);
      }
    }
    if (j < n) gemm_scalar_block(a, b, c, n, i, i + kRows, j, n);
  }
  for (; i < row1; ++i) {
    std::size_t j = 0;
    for (; j + kCols <= n; j += kCols) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      for (std::size_t k = 0; k < n; ++k) {
        const __m256 a_ik = _mm256_set1_ps(a[i * n + k]);
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(a_ik, _mm256_loadu_ps(b + k * n + j)));
        acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(a_ik, _mm256_loadu_ps(b + k * n + j + 8)));
      }
      _mm256_storeu_ps(c + i * n + j, acc0);
      _mm256_storeu_ps(c + i * n + j + 8, acc1);
    }
    if (j < n) gemm_scalar_block(a, b, c, n, i, i + 1, j, n);
  }
}

bool gemm_use_avx2() {
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
}
#endif  // BF_GEMM_AVX2

void gemm_rows(const float* a, const float* b, float* c, std::size_t n,
               std::size_t row0, std::size_t row1) {
#if defined(BF_GEMM_AVX2)
  if (gemm_use_avx2()) {
    gemm_rows_avx2(a, b, c, n, row0, row1);
    return;
  }
#endif
  // i-k-j with a zeroed output row: per element this is the same
  // ascending-k mul/add chain as the tiled path.
  for (std::size_t i = row0; i < row1; ++i) {
    float* c_row = c + i * n;
    std::fill(c_row, c_row + n, 0.0F);
    for (std::size_t k = 0; k < n; ++k) {
      const float a_ik = a[i * n + k];
      const float* b_row = b + k * n;
      for (std::size_t j = 0; j < n; ++j) {
        c_row[j] += a_ik * b_row[j];
      }
    }
  }
}

}  // namespace

ScopedKernelParallelism::ScopedKernelParallelism(unsigned threads)
    : pool_(std::make_unique<WorkerPool>(threads)),
      previous_(g_pool_override.exchange(pool_.get(),
                                         std::memory_order_acq_rel)) {}

ScopedKernelParallelism::~ScopedKernelParallelism() {
  g_pool_override.store(previous_, std::memory_order_release);
}

vt::Duration kernel_launch_overhead() { return kLaunchOverhead; }

Result<MemHandle> arg_buffer(const KernelLaunch& launch, std::size_t index) {
  if (index >= launch.args.size()) {
    return InvalidArgument("kernel '" + launch.kernel + "': missing arg " +
                           std::to_string(index));
  }
  const auto* handle = std::get_if<MemHandle>(&launch.args[index]);
  if (handle == nullptr) {
    return InvalidArgument("kernel '" + launch.kernel + "': arg " +
                           std::to_string(index) + " is not a buffer");
  }
  return *handle;
}

Result<std::int64_t> arg_scalar(const KernelLaunch& launch,
                                std::size_t index) {
  if (index >= launch.args.size()) {
    return InvalidArgument("kernel '" + launch.kernel + "': missing arg " +
                           std::to_string(index));
  }
  if (const auto* value = std::get_if<std::int64_t>(&launch.args[index])) {
    return *value;
  }
  return InvalidArgument("kernel '" + launch.kernel + "': arg " +
                         std::to_string(index) + " is not an int scalar");
}

Status KernelModel::validate(const KernelLaunch& launch) const {
  if (launch.kernel != name()) {
    return InvalidArgument("kernel name mismatch: launch targets '" +
                           launch.kernel + "'");
  }
  if (launch.args.size() != arity()) {
    return InvalidArgument("kernel '" + launch.kernel + "' expects " +
                           std::to_string(arity()) + " args, got " +
                           std::to_string(launch.args.size()));
  }
  return Status::Ok();
}

// --- Sobel ------------------------------------------------------------------

Result<vt::Duration> SobelKernel::execution_time(
    const KernelLaunch& launch) const {
  auto width = arg_scalar(launch, 2);
  if (!width.ok()) return width.status();
  auto height = arg_scalar(launch, 3);
  if (!height.ok()) return height.status();
  if (width.value() <= 0 || height.value() <= 0) {
    return InvalidArgument("sobel: non-positive image dimensions");
  }
  const double pixels =
      static_cast<double>(width.value()) * static_cast<double>(height.value());
  return kLaunchOverhead +
         vt::Duration::from_seconds_f(pixels * kSobelNsPerPixel * 1e-9);
}

Status SobelKernel::execute(const KernelLaunch& launch,
                            DeviceMemory& memory) const {
  if (Status s = validate(launch); !s.ok()) return s;
  auto in = arg_buffer(launch, 0);
  auto out = arg_buffer(launch, 1);
  auto width_r = arg_scalar(launch, 2);
  auto height_r = arg_scalar(launch, 3);
  if (!in.ok()) return in.status();
  if (!out.ok()) return out.status();
  if (!width_r.ok()) return width_r.status();
  if (!height_r.ok()) return height_r.status();
  const auto width = static_cast<std::size_t>(width_r.value());
  const auto height = static_cast<std::size_t>(height_r.value());

  auto src_span = borrow_pixels(memory, in.value(), width * height);
  if (!src_span.ok()) return src_span.status();
  auto dst_span = borrow_pixels_mut(memory, out.value(), width * height);
  if (!dst_span.ok()) return dst_span.status();
  // In-place launch (out aliases in): snapshot the source, matching the old
  // read-everything-first semantics.
  std::vector<std::uint32_t> aliased;
  const std::uint32_t* src = src_span.value().data();
  if (in.value() == out.value()) {
    aliased.assign(src_span.value().begin(), src_span.value().end());
    src = aliased.data();
  }
  std::uint32_t* dst = dst_span.value().data();

  // Border pixels have no full 3x3 neighborhood and are defined as zero.
  if (width == 0 || height == 0) return Status::Ok();
  std::fill(dst, dst + width, 0U);
  if (height > 1) {
    std::fill(dst + (height - 1) * width, dst + height * width, 0U);
  }
  for (std::size_t y = 1; y + 1 < height; ++y) {
    dst[y * width] = 0;
    if (width > 1) dst[y * width + width - 1] = 0;
  }

  // 3x3 Sobel gradient magnitude on the low byte (grayscale), clamped to
  // [0,255] — mirrors the Spector sobel reference semantics. Interior rows
  // are partitioned across the pool; each row's pixels touch only that row
  // of dst.
  if (height < 3 || width < 3) return Status::Ok();
  run_chunked(height - 2, 64, [&](std::size_t begin, std::size_t end) {
    sobel_rows(src, dst, width, begin + 1, end + 1);
  });
  return Status::Ok();
}

// --- MatMul -----------------------------------------------------------------

Result<vt::Duration> MatMulKernel::execution_time(
    const KernelLaunch& launch) const {
  auto n = arg_scalar(launch, 3);
  if (!n.ok()) return n.status();
  if (n.value() <= 0) return InvalidArgument("mm: non-positive dimension");
  const double macs = static_cast<double>(n.value()) *
                      static_cast<double>(n.value()) *
                      static_cast<double>(n.value());
  return kLaunchOverhead +
         vt::Duration::from_seconds_f(macs / kMatMulMacsPerSecond);
}

Status MatMulKernel::execute(const KernelLaunch& launch,
                             DeviceMemory& memory) const {
  if (Status s = validate(launch); !s.ok()) return s;
  auto a = arg_buffer(launch, 0);
  auto b = arg_buffer(launch, 1);
  auto c = arg_buffer(launch, 2);
  auto n_r = arg_scalar(launch, 3);
  if (!a.ok()) return a.status();
  if (!b.ok()) return b.status();
  if (!c.ok()) return c.status();
  if (!n_r.ok()) return n_r.status();
  const auto n = static_cast<std::size_t>(n_r.value());

  auto lhs_span = borrow_floats(memory, a.value(), n * n);
  if (!lhs_span.ok()) return lhs_span.status();
  auto rhs_span = borrow_floats(memory, b.value(), n * n);
  if (!rhs_span.ok()) return rhs_span.status();
  auto out_span = borrow_floats_mut(memory, c.value(), n * n);
  if (!out_span.ok()) return out_span.status();

  // In-place launches (C aliasing A and/or B) snapshot the aliased operand.
  std::vector<float> lhs_copy;
  std::vector<float> rhs_copy;
  const float* lhs = lhs_span.value().data();
  const float* rhs = rhs_span.value().data();
  if (c.value() == a.value()) {
    lhs_copy.assign(lhs, lhs + n * n);
    lhs = lhs_copy.data();
  }
  if (c.value() == b.value()) {
    rhs_copy.assign(rhs, rhs + n * n);
    rhs = rhs_copy.data();
  }
  run_chunked(n, 16, [&](std::size_t row0, std::size_t row1) {
    gemm_rows(lhs, rhs, out_span.value().data(), n, row0, row1);
  });
  return Status::Ok();
}

// --- Conv / FC --------------------------------------------------------------

Result<vt::Duration> ConvKernel::execution_time(
    const KernelLaunch& launch) const {
  std::int64_t dims[9];  // in_c,in_h,in_w,out_c,out_h,out_w,k,stride,pad
  for (int i = 0; i < 9; ++i) {
    auto value = arg_scalar(launch, 4 + static_cast<std::size_t>(i));
    if (!value.ok()) return value.status();
    dims[i] = value.value();
  }
  const double macs = static_cast<double>(dims[3]) * dims[4] * dims[5] *
                      dims[0] * dims[6] * dims[6];
  if (macs <= 0) return InvalidArgument("conv: non-positive work");
  return kLaunchOverhead +
         vt::Duration::from_seconds_f(macs / kConvMacsPerSecond);
}

Status ConvKernel::execute(const KernelLaunch& launch,
                           DeviceMemory& memory) const {
  if (Status s = validate(launch); !s.ok()) return s;
  auto in = arg_buffer(launch, 0);
  auto weights = arg_buffer(launch, 1);
  auto bias = arg_buffer(launch, 2);
  auto out = arg_buffer(launch, 3);
  if (!in.ok()) return in.status();
  if (!weights.ok()) return weights.status();
  if (!bias.ok()) return bias.status();
  if (!out.ok()) return out.status();
  std::int64_t d[10];  // in_c,in_h,in_w,out_c,out_h,out_w,k,stride,pad,relu
  for (int i = 0; i < 10; ++i) {
    auto value = arg_scalar(launch, 4 + static_cast<std::size_t>(i));
    if (!value.ok()) return value.status();
    d[i] = value.value();
  }
  const auto in_c = static_cast<std::size_t>(d[0]);
  const auto in_h = static_cast<std::size_t>(d[1]);
  const auto in_w = static_cast<std::size_t>(d[2]);
  const auto out_c = static_cast<std::size_t>(d[3]);
  const auto out_h = static_cast<std::size_t>(d[4]);
  const auto out_w = static_cast<std::size_t>(d[5]);
  const auto ksize = static_cast<std::size_t>(d[6]);
  const auto stride = static_cast<std::size_t>(d[7]);
  const std::int64_t pad = d[8];
  const bool relu = d[9] != 0;

  auto input_span = borrow_floats(memory, in.value(), in_c * in_h * in_w);
  if (!input_span.ok()) return input_span.status();
  auto w_span =
      borrow_floats(memory, weights.value(), out_c * in_c * ksize * ksize);
  if (!w_span.ok()) return w_span.status();
  auto bias_span = borrow_floats(memory, bias.value(), out_c);
  if (!bias_span.ok()) return bias_span.status();
  auto out_span =
      borrow_floats_mut(memory, out.value(), out_c * out_h * out_w);
  if (!out_span.ok()) return out_span.status();

  std::vector<float> input_copy;
  std::vector<float> w_copy;
  std::vector<float> bias_copy;
  const float* input = input_span.value().data();
  const float* w = w_span.value().data();
  const float* bias_values = bias_span.value().data();
  if (out.value() == in.value()) {
    input_copy.assign(input, input + in_c * in_h * in_w);
    input = input_copy.data();
  }
  if (out.value() == weights.value()) {
    w_copy.assign(w, w + out_c * in_c * ksize * ksize);
    w = w_copy.data();
  }
  if (out.value() == bias.value()) {
    bias_copy.assign(bias_values, bias_values + out_c);
    bias_values = bias_copy.data();
  }
  float* result = out_span.value().data();

  // Output channels partition across the pool; each task owns the full
  // spatial plane of its channels.
  run_chunked(out_c, 1, [&](std::size_t oc0, std::size_t oc1) {
    for (std::size_t oc = oc0; oc < oc1; ++oc) {
      for (std::size_t oy = 0; oy < out_h; ++oy) {
        for (std::size_t ox = 0; ox < out_w; ++ox) {
          float acc = bias_values[oc];
          for (std::size_t ic = 0; ic < in_c; ++ic) {
            for (std::size_t ky = 0; ky < ksize; ++ky) {
              for (std::size_t kx = 0; kx < ksize; ++kx) {
                const std::int64_t iy =
                    static_cast<std::int64_t>(oy * stride + ky) - pad;
                const std::int64_t ix =
                    static_cast<std::int64_t>(ox * stride + kx) - pad;
                if (iy < 0 || ix < 0 ||
                    iy >= static_cast<std::int64_t>(in_h) ||
                    ix >= static_cast<std::int64_t>(in_w)) {
                  continue;
                }
                acc += input[(ic * in_h + static_cast<std::size_t>(iy)) *
                                 in_w +
                             static_cast<std::size_t>(ix)] *
                       w[((oc * in_c + ic) * ksize + ky) * ksize + kx];
              }
            }
          }
          if (relu && acc < 0.0F) acc = 0.0F;
          result[(oc * out_h + oy) * out_w + ox] = acc;
        }
      }
    }
  });
  return Status::Ok();
}

// --- Pool -------------------------------------------------------------------

Result<vt::Duration> PoolKernel::execution_time(
    const KernelLaunch& launch) const {
  std::int64_t d[7];  // c,in_h,in_w,out_h,out_w,k,stride
  for (int i = 0; i < 7; ++i) {
    auto value = arg_scalar(launch, 2 + static_cast<std::size_t>(i));
    if (!value.ok()) return value.status();
    d[i] = value.value();
  }
  const double ops =
      static_cast<double>(d[0]) * d[3] * d[4] * d[5] * d[5];
  if (ops <= 0) return InvalidArgument("pool: non-positive work");
  return kLaunchOverhead + vt::Duration::from_seconds_f(ops / kPoolOpsPerSecond);
}

Status PoolKernel::execute(const KernelLaunch& launch,
                           DeviceMemory& memory) const {
  if (Status s = validate(launch); !s.ok()) return s;
  auto in = arg_buffer(launch, 0);
  auto out = arg_buffer(launch, 1);
  if (!in.ok()) return in.status();
  if (!out.ok()) return out.status();
  std::int64_t d[7];
  for (int i = 0; i < 7; ++i) {
    auto value = arg_scalar(launch, 2 + static_cast<std::size_t>(i));
    if (!value.ok()) return value.status();
    d[i] = value.value();
  }
  const auto channels = static_cast<std::size_t>(d[0]);
  const auto in_h = static_cast<std::size_t>(d[1]);
  const auto in_w = static_cast<std::size_t>(d[2]);
  const auto out_h = static_cast<std::size_t>(d[3]);
  const auto out_w = static_cast<std::size_t>(d[4]);
  const auto ksize = static_cast<std::size_t>(d[5]);
  const auto stride = static_cast<std::size_t>(d[6]);

  auto input_span = borrow_floats(memory, in.value(), channels * in_h * in_w);
  if (!input_span.ok()) return input_span.status();
  auto out_span =
      borrow_floats_mut(memory, out.value(), channels * out_h * out_w);
  if (!out_span.ok()) return out_span.status();
  std::vector<float> input_copy;
  const float* input = input_span.value().data();
  if (out.value() == in.value()) {
    input_copy.assign(input, input + channels * in_h * in_w);
    input = input_copy.data();
  }
  float* result = out_span.value().data();

  run_chunked(channels, 1, [&](std::size_t c0, std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c) {
      for (std::size_t oy = 0; oy < out_h; ++oy) {
        for (std::size_t ox = 0; ox < out_w; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          for (std::size_t ky = 0; ky < ksize; ++ky) {
            for (std::size_t kx = 0; kx < ksize; ++kx) {
              const std::size_t iy = oy * stride + ky;
              const std::size_t ix = ox * stride + kx;
              if (iy >= in_h || ix >= in_w) continue;
              best = std::max(best, input[(c * in_h + iy) * in_w + ix]);
            }
          }
          result[(c * out_h + oy) * out_w + ox] = best;
        }
      }
    }
  });
  return Status::Ok();
}

// --- LRN --------------------------------------------------------------------

Result<vt::Duration> LrnKernel::execution_time(
    const KernelLaunch& launch) const {
  std::int64_t d[3];
  for (int i = 0; i < 3; ++i) {
    auto value = arg_scalar(launch, 2 + static_cast<std::size_t>(i));
    if (!value.ok()) return value.status();
    d[i] = value.value();
  }
  const double ops = static_cast<double>(d[0]) * d[1] * d[2] * 5.0;
  if (ops <= 0) return InvalidArgument("lrn: non-positive work");
  return kLaunchOverhead + vt::Duration::from_seconds_f(ops / kLrnOpsPerSecond);
}

Status LrnKernel::execute(const KernelLaunch& launch,
                          DeviceMemory& memory) const {
  if (Status s = validate(launch); !s.ok()) return s;
  auto in = arg_buffer(launch, 0);
  auto out = arg_buffer(launch, 1);
  if (!in.ok()) return in.status();
  if (!out.ok()) return out.status();
  std::int64_t d[3];
  for (int i = 0; i < 3; ++i) {
    auto value = arg_scalar(launch, 2 + static_cast<std::size_t>(i));
    if (!value.ok()) return value.status();
    d[i] = value.value();
  }
  const auto channels = static_cast<std::size_t>(d[0]);
  const auto height = static_cast<std::size_t>(d[1]);
  const auto width = static_cast<std::size_t>(d[2]);
  auto input_span =
      borrow_floats(memory, in.value(), channels * height * width);
  if (!input_span.ok()) return input_span.status();
  auto out_span =
      borrow_floats_mut(memory, out.value(), channels * height * width);
  if (!out_span.ok()) return out_span.status();
  // LRN reads a cross-channel window, so an in-place launch must snapshot
  // the whole input, not just one channel.
  std::vector<float> input_copy;
  const float* input = input_span.value().data();
  if (out.value() == in.value()) {
    input_copy.assign(input, input + channels * height * width);
    input = input_copy.data();
  }
  float* result = out_span.value().data();

  // AlexNet LRN: n=5, alpha=1e-4, beta=0.75, k=2 (across channels).
  constexpr int kWindow = 5;
  constexpr float kAlpha = 1e-4F;
  constexpr float kBeta = 0.75F;
  constexpr float kBias = 2.0F;
  run_chunked(channels, 1, [&](std::size_t c0, std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c) {
      for (std::size_t y = 0; y < height; ++y) {
        for (std::size_t x = 0; x < width; ++x) {
          float sum_sq = 0.0F;
          const int lo = std::max<int>(0, static_cast<int>(c) - kWindow / 2);
          const int hi = std::min<int>(static_cast<int>(channels) - 1,
                                       static_cast<int>(c) + kWindow / 2);
          for (int cc = lo; cc <= hi; ++cc) {
            const float value =
                input[(static_cast<std::size_t>(cc) * height + y) * width + x];
            sum_sq += value * value;
          }
          const float scale =
              std::pow(kBias + kAlpha * sum_sq / kWindow, -kBeta);
          result[(c * height + y) * width + x] =
              input[(c * height + y) * width + x] * scale;
        }
      }
    }
  });
  return Status::Ok();
}

// --- FIR --------------------------------------------------------------------

Result<vt::Duration> FirKernel::execution_time(
    const KernelLaunch& launch) const {
  auto n = arg_scalar(launch, 3);
  if (!n.ok()) return n.status();
  auto taps = arg_scalar(launch, 4);
  if (!taps.ok()) return taps.status();
  if (n.value() <= 0 || taps.value() <= 0) {
    return InvalidArgument("fir: non-positive dimensions");
  }
  const double macs =
      static_cast<double>(n.value()) * static_cast<double>(taps.value());
  return kLaunchOverhead +
         vt::Duration::from_seconds_f(macs / kFirMacsPerSecond);
}

Status FirKernel::execute(const KernelLaunch& launch,
                          DeviceMemory& memory) const {
  if (Status s = validate(launch); !s.ok()) return s;
  auto in = arg_buffer(launch, 0);
  auto coeffs = arg_buffer(launch, 1);
  auto out = arg_buffer(launch, 2);
  auto n_r = arg_scalar(launch, 3);
  auto taps_r = arg_scalar(launch, 4);
  if (!in.ok()) return in.status();
  if (!coeffs.ok()) return coeffs.status();
  if (!out.ok()) return out.status();
  if (!n_r.ok()) return n_r.status();
  if (!taps_r.ok()) return taps_r.status();
  const auto n = static_cast<std::size_t>(n_r.value());
  const auto taps = static_cast<std::size_t>(taps_r.value());

  auto signal_span = borrow_floats(memory, in.value(), n);
  if (!signal_span.ok()) return signal_span.status();
  auto weights_span = borrow_floats(memory, coeffs.value(), taps);
  if (!weights_span.ok()) return weights_span.status();
  auto out_span = borrow_floats_mut(memory, out.value(), n);
  if (!out_span.ok()) return out_span.status();
  // y[i] reads x[i - taps + 1 .. i], so writing into the signal buffer
  // corrupts later outputs: snapshot on alias.
  std::vector<float> signal_copy;
  std::vector<float> weights_copy;
  const float* signal = signal_span.value().data();
  const float* weights = weights_span.value().data();
  if (out.value() == in.value()) {
    signal_copy.assign(signal, signal + n);
    signal = signal_copy.data();
  }
  if (out.value() == coeffs.value()) {
    weights_copy.assign(weights, weights + taps);
    weights = weights_copy.data();
  }
  float* result = out_span.value().data();

  // y[i] = sum_t w[t] * x[i - t], zero-padded history.
  run_chunked(n, 16 * 1024, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      float acc = 0.0F;
      for (std::size_t t = 0; t < taps && t <= i; ++t) {
        acc += weights[t] * signal[i - t];
      }
      result[i] = acc;
    }
  });
  return Status::Ok();
}

// --- Histogram ----------------------------------------------------------------

Result<vt::Duration> HistogramKernel::execution_time(
    const KernelLaunch& launch) const {
  auto n = arg_scalar(launch, 2);
  if (!n.ok()) return n.status();
  if (n.value() <= 0) return InvalidArgument("histogram: non-positive size");
  return kLaunchOverhead +
         vt::Duration::from_seconds_f(static_cast<double>(n.value()) /
                                      kHistogramPixelsPerSecond);
}

Status HistogramKernel::execute(const KernelLaunch& launch,
                                DeviceMemory& memory) const {
  if (Status s = validate(launch); !s.ok()) return s;
  auto in = arg_buffer(launch, 0);
  auto hist = arg_buffer(launch, 1);
  auto n_r = arg_scalar(launch, 2);
  if (!in.ok()) return in.status();
  if (!hist.ok()) return hist.status();
  if (!n_r.ok()) return n_r.status();
  const auto n = static_cast<std::size_t>(n_r.value());

  auto pixels = borrow_pixels(memory, in.value(), n);
  if (!pixels.ok()) return pixels.status();
  auto bins_span = borrow_pixels_mut(memory, hist.value(), 256);
  if (!bins_span.ok()) return bins_span.status();
  // Bins accumulate locally (also keeps an in==hist launch well-defined),
  // then land in board memory with one store pass.
  std::array<std::uint32_t, 256> bins{};
  for (std::uint32_t px : pixels.value()) {
    ++bins[px & 0xFFU];
  }
  std::copy(bins.begin(), bins.end(), bins_span.value().begin());
  return Status::Ok();
}

// --- Vadd -------------------------------------------------------------------

Result<vt::Duration> VaddKernel::execution_time(
    const KernelLaunch& launch) const {
  auto n = arg_scalar(launch, 3);
  if (!n.ok()) return n.status();
  if (n.value() <= 0) return InvalidArgument("vadd: non-positive length");
  return kLaunchOverhead +
         vt::Duration::from_seconds_f(static_cast<double>(n.value()) /
                                      kVaddOpsPerSecond);
}

Status VaddKernel::execute(const KernelLaunch& launch,
                           DeviceMemory& memory) const {
  if (Status s = validate(launch); !s.ok()) return s;
  auto a = arg_buffer(launch, 0);
  auto b = arg_buffer(launch, 1);
  auto c = arg_buffer(launch, 2);
  auto n_r = arg_scalar(launch, 3);
  if (!a.ok()) return a.status();
  if (!b.ok()) return b.status();
  if (!c.ok()) return c.status();
  if (!n_r.ok()) return n_r.status();
  const auto n = static_cast<std::size_t>(n_r.value());
  auto lhs = borrow_floats(memory, a.value(), n);
  if (!lhs.ok()) return lhs.status();
  auto rhs = borrow_floats(memory, b.value(), n);
  if (!rhs.ok()) return rhs.status();
  auto sum = borrow_floats_mut(memory, c.value(), n);
  if (!sum.ok()) return sum.status();
  // Element i depends only on inputs at i, so c aliasing a or b is safe
  // without a snapshot.
  const float* lhs_p = lhs.value().data();
  const float* rhs_p = rhs.value().data();
  float* sum_p = sum.value().data();
  run_chunked(n, 64 * 1024, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      sum_p[i] = lhs_p[i] + rhs_p[i];
    }
  });
  return Status::Ok();
}

// --- Registry ----------------------------------------------------------------

const KernelRegistry& KernelRegistry::standard() {
  static const KernelRegistry registry;
  return registry;
}

KernelRegistry::KernelRegistry() {
  auto add = [this](std::unique_ptr<KernelModel> model) {
    std::string key{model->name()};
    models_.emplace(std::move(key), std::move(model));
  };
  add(std::make_unique<SobelKernel>());
  add(std::make_unique<MatMulKernel>());
  add(std::make_unique<ConvKernel>());
  add(std::make_unique<FcKernel>());
  add(std::make_unique<PoolKernel>());
  add(std::make_unique<LrnKernel>());
  add(std::make_unique<FirKernel>());
  add(std::make_unique<HistogramKernel>());
  add(std::make_unique<VaddKernel>());
}

const KernelModel* KernelRegistry::find(const std::string& name) const {
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second.get();
}

std::vector<std::string> KernelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, model] : models_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bf::sim
