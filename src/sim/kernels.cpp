#include "sim/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace bf::sim {
namespace {

// Calibration constants (DESIGN.md §3).
constexpr double kSobelNsPerPixel = 6.0;
constexpr double kMatMulMacsPerSecond = 19.2e9;
// Grouped AlexNet layers are modeled ungrouped (1.136 GMAC/request instead
// of 0.78), so the effective rate is scaled up to keep the per-request
// device time at the paper's ~70 ms (Table IV utilization / throughput).
constexpr double kConvMacsPerSecond = 17.2e9;
constexpr double kPoolOpsPerSecond = 4.0e9;
constexpr double kLrnOpsPerSecond = 1.2e9;
constexpr double kVaddOpsPerSecond = 25.0e9;
constexpr double kFirMacsPerSecond = 24.0e9;   // deep MAC pipeline
constexpr double kHistogramPixelsPerSecond = 2.0e9;
// Per-enqueue on-device launch overhead (pipeline fill, DMA descriptor
// setup). Visible in Fig 4b/4c as the small-input floor.
constexpr vt::Duration kLaunchOverhead = vt::Duration::micros(150);

Result<std::vector<float>> read_floats(const DeviceMemory& memory,
                                       MemHandle handle, std::size_t count) {
  std::vector<float> values(count);
  Status s = memory.read(handle, 0,
                         as_writable_bytes(values.data(),
                                           values.size() * sizeof(float)));
  if (!s.ok()) return s;
  return values;
}

Status write_floats(DeviceMemory& memory, MemHandle handle,
                    const std::vector<float>& values) {
  return memory.write(
      handle, 0, as_bytes(values.data(), values.size() * sizeof(float)));
}

Result<std::vector<std::uint32_t>> read_pixels(const DeviceMemory& memory,
                                               MemHandle handle,
                                               std::size_t count) {
  std::vector<std::uint32_t> px(count);
  Status s = memory.read(
      handle, 0, as_writable_bytes(px.data(), px.size() * sizeof(px[0])));
  if (!s.ok()) return s;
  return px;
}

}  // namespace

Result<MemHandle> arg_buffer(const KernelLaunch& launch, std::size_t index) {
  if (index >= launch.args.size()) {
    return InvalidArgument("kernel '" + launch.kernel + "': missing arg " +
                           std::to_string(index));
  }
  const auto* handle = std::get_if<MemHandle>(&launch.args[index]);
  if (handle == nullptr) {
    return InvalidArgument("kernel '" + launch.kernel + "': arg " +
                           std::to_string(index) + " is not a buffer");
  }
  return *handle;
}

Result<std::int64_t> arg_scalar(const KernelLaunch& launch,
                                std::size_t index) {
  if (index >= launch.args.size()) {
    return InvalidArgument("kernel '" + launch.kernel + "': missing arg " +
                           std::to_string(index));
  }
  if (const auto* value = std::get_if<std::int64_t>(&launch.args[index])) {
    return *value;
  }
  return InvalidArgument("kernel '" + launch.kernel + "': arg " +
                         std::to_string(index) + " is not an int scalar");
}

Status KernelModel::validate(const KernelLaunch& launch) const {
  if (launch.kernel != name()) {
    return InvalidArgument("kernel name mismatch: launch targets '" +
                           launch.kernel + "'");
  }
  if (launch.args.size() != arity()) {
    return InvalidArgument("kernel '" + launch.kernel + "' expects " +
                           std::to_string(arity()) + " args, got " +
                           std::to_string(launch.args.size()));
  }
  return Status::Ok();
}

// --- Sobel ------------------------------------------------------------------

Result<vt::Duration> SobelKernel::execution_time(
    const KernelLaunch& launch) const {
  auto width = arg_scalar(launch, 2);
  if (!width.ok()) return width.status();
  auto height = arg_scalar(launch, 3);
  if (!height.ok()) return height.status();
  if (width.value() <= 0 || height.value() <= 0) {
    return InvalidArgument("sobel: non-positive image dimensions");
  }
  const double pixels =
      static_cast<double>(width.value()) * static_cast<double>(height.value());
  return kLaunchOverhead +
         vt::Duration::from_seconds_f(pixels * kSobelNsPerPixel * 1e-9);
}

Status SobelKernel::execute(const KernelLaunch& launch,
                            DeviceMemory& memory) const {
  if (Status s = validate(launch); !s.ok()) return s;
  auto in = arg_buffer(launch, 0);
  auto out = arg_buffer(launch, 1);
  auto width_r = arg_scalar(launch, 2);
  auto height_r = arg_scalar(launch, 3);
  if (!in.ok()) return in.status();
  if (!out.ok()) return out.status();
  if (!width_r.ok()) return width_r.status();
  if (!height_r.ok()) return height_r.status();
  const auto width = static_cast<std::size_t>(width_r.value());
  const auto height = static_cast<std::size_t>(height_r.value());

  auto pixels = read_pixels(memory, in.value(), width * height);
  if (!pixels.ok()) return pixels.status();
  const std::vector<std::uint32_t>& src = pixels.value();
  std::vector<std::uint32_t> dst(width * height, 0);

  // 3x3 Sobel gradient magnitude on the low byte (grayscale), clamped to
  // [0,255] — mirrors the Spector sobel reference semantics.
  constexpr int gx[3][3] = {{-1, 0, 1}, {-2, 0, 2}, {-1, 0, 1}};
  constexpr int gy[3][3] = {{-1, -2, -1}, {0, 0, 0}, {1, 2, 1}};
  for (std::size_t y = 1; y + 1 < height; ++y) {
    for (std::size_t x = 1; x + 1 < width; ++x) {
      int sum_x = 0;
      int sum_y = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const auto value = static_cast<int>(
              src[(y + dy) * width + (x + dx)] & 0xFFU);
          sum_x += gx[dy + 1][dx + 1] * value;
          sum_y += gy[dy + 1][dx + 1] * value;
        }
      }
      const int magnitude = std::min(
          255, static_cast<int>(std::sqrt(static_cast<double>(
                   sum_x * sum_x + sum_y * sum_y))));
      dst[y * width + x] = static_cast<std::uint32_t>(magnitude);
    }
  }
  return memory.write(out.value(), 0,
                      as_bytes(dst.data(), dst.size() * sizeof(dst[0])));
}

// --- MatMul -----------------------------------------------------------------

Result<vt::Duration> MatMulKernel::execution_time(
    const KernelLaunch& launch) const {
  auto n = arg_scalar(launch, 3);
  if (!n.ok()) return n.status();
  if (n.value() <= 0) return InvalidArgument("mm: non-positive dimension");
  const double macs = static_cast<double>(n.value()) *
                      static_cast<double>(n.value()) *
                      static_cast<double>(n.value());
  return kLaunchOverhead +
         vt::Duration::from_seconds_f(macs / kMatMulMacsPerSecond);
}

Status MatMulKernel::execute(const KernelLaunch& launch,
                             DeviceMemory& memory) const {
  if (Status s = validate(launch); !s.ok()) return s;
  auto a = arg_buffer(launch, 0);
  auto b = arg_buffer(launch, 1);
  auto c = arg_buffer(launch, 2);
  auto n_r = arg_scalar(launch, 3);
  if (!a.ok()) return a.status();
  if (!b.ok()) return b.status();
  if (!c.ok()) return c.status();
  if (!n_r.ok()) return n_r.status();
  const auto n = static_cast<std::size_t>(n_r.value());

  auto lhs = read_floats(memory, a.value(), n * n);
  if (!lhs.ok()) return lhs.status();
  auto rhs = read_floats(memory, b.value(), n * n);
  if (!rhs.ok()) return rhs.status();

  std::vector<float> out(n * n, 0.0F);
  // i-k-j loop order for cache friendliness; the FPGA block structure is a
  // timing concern only, handled by execution_time().
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      const float lhs_ik = lhs.value()[i * n + k];
      const float* rhs_row = &rhs.value()[k * n];
      float* out_row = &out[i * n];
      for (std::size_t j = 0; j < n; ++j) {
        out_row[j] += lhs_ik * rhs_row[j];
      }
    }
  }
  return write_floats(memory, c.value(), out);
}

// --- Conv / FC --------------------------------------------------------------

Result<vt::Duration> ConvKernel::execution_time(
    const KernelLaunch& launch) const {
  std::int64_t dims[9];  // in_c,in_h,in_w,out_c,out_h,out_w,k,stride,pad
  for (int i = 0; i < 9; ++i) {
    auto value = arg_scalar(launch, 4 + static_cast<std::size_t>(i));
    if (!value.ok()) return value.status();
    dims[i] = value.value();
  }
  const double macs = static_cast<double>(dims[3]) * dims[4] * dims[5] *
                      dims[0] * dims[6] * dims[6];
  if (macs <= 0) return InvalidArgument("conv: non-positive work");
  return kLaunchOverhead +
         vt::Duration::from_seconds_f(macs / kConvMacsPerSecond);
}

Status ConvKernel::execute(const KernelLaunch& launch,
                           DeviceMemory& memory) const {
  if (Status s = validate(launch); !s.ok()) return s;
  auto in = arg_buffer(launch, 0);
  auto weights = arg_buffer(launch, 1);
  auto bias = arg_buffer(launch, 2);
  auto out = arg_buffer(launch, 3);
  if (!in.ok()) return in.status();
  if (!weights.ok()) return weights.status();
  if (!bias.ok()) return bias.status();
  if (!out.ok()) return out.status();
  std::int64_t d[10];  // in_c,in_h,in_w,out_c,out_h,out_w,k,stride,pad,relu
  for (int i = 0; i < 10; ++i) {
    auto value = arg_scalar(launch, 4 + static_cast<std::size_t>(i));
    if (!value.ok()) return value.status();
    d[i] = value.value();
  }
  const auto in_c = static_cast<std::size_t>(d[0]);
  const auto in_h = static_cast<std::size_t>(d[1]);
  const auto in_w = static_cast<std::size_t>(d[2]);
  const auto out_c = static_cast<std::size_t>(d[3]);
  const auto out_h = static_cast<std::size_t>(d[4]);
  const auto out_w = static_cast<std::size_t>(d[5]);
  const auto ksize = static_cast<std::size_t>(d[6]);
  const auto stride = static_cast<std::size_t>(d[7]);
  const std::int64_t pad = d[8];
  const bool relu = d[9] != 0;

  auto input = read_floats(memory, in.value(), in_c * in_h * in_w);
  if (!input.ok()) return input.status();
  auto w = read_floats(memory, weights.value(), out_c * in_c * ksize * ksize);
  if (!w.ok()) return w.status();
  auto bias_values = read_floats(memory, bias.value(), out_c);
  if (!bias_values.ok()) return bias_values.status();

  std::vector<float> result(out_c * out_h * out_w, 0.0F);
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        float acc = bias_values.value()[oc];
        for (std::size_t ic = 0; ic < in_c; ++ic) {
          for (std::size_t ky = 0; ky < ksize; ++ky) {
            for (std::size_t kx = 0; kx < ksize; ++kx) {
              const std::int64_t iy =
                  static_cast<std::int64_t>(oy * stride + ky) - pad;
              const std::int64_t ix =
                  static_cast<std::int64_t>(ox * stride + kx) - pad;
              if (iy < 0 || ix < 0 ||
                  iy >= static_cast<std::int64_t>(in_h) ||
                  ix >= static_cast<std::int64_t>(in_w)) {
                continue;
              }
              acc += input.value()[(ic * in_h + static_cast<std::size_t>(iy)) *
                                       in_w +
                                   static_cast<std::size_t>(ix)] *
                     w.value()[((oc * in_c + ic) * ksize + ky) * ksize + kx];
            }
          }
        }
        if (relu && acc < 0.0F) acc = 0.0F;
        result[(oc * out_h + oy) * out_w + ox] = acc;
      }
    }
  }
  return write_floats(memory, out.value(), result);
}

// --- Pool -------------------------------------------------------------------

Result<vt::Duration> PoolKernel::execution_time(
    const KernelLaunch& launch) const {
  std::int64_t d[7];  // c,in_h,in_w,out_h,out_w,k,stride
  for (int i = 0; i < 7; ++i) {
    auto value = arg_scalar(launch, 2 + static_cast<std::size_t>(i));
    if (!value.ok()) return value.status();
    d[i] = value.value();
  }
  const double ops =
      static_cast<double>(d[0]) * d[3] * d[4] * d[5] * d[5];
  if (ops <= 0) return InvalidArgument("pool: non-positive work");
  return kLaunchOverhead + vt::Duration::from_seconds_f(ops / kPoolOpsPerSecond);
}

Status PoolKernel::execute(const KernelLaunch& launch,
                           DeviceMemory& memory) const {
  if (Status s = validate(launch); !s.ok()) return s;
  auto in = arg_buffer(launch, 0);
  auto out = arg_buffer(launch, 1);
  if (!in.ok()) return in.status();
  if (!out.ok()) return out.status();
  std::int64_t d[7];
  for (int i = 0; i < 7; ++i) {
    auto value = arg_scalar(launch, 2 + static_cast<std::size_t>(i));
    if (!value.ok()) return value.status();
    d[i] = value.value();
  }
  const auto channels = static_cast<std::size_t>(d[0]);
  const auto in_h = static_cast<std::size_t>(d[1]);
  const auto in_w = static_cast<std::size_t>(d[2]);
  const auto out_h = static_cast<std::size_t>(d[3]);
  const auto out_w = static_cast<std::size_t>(d[4]);
  const auto ksize = static_cast<std::size_t>(d[5]);
  const auto stride = static_cast<std::size_t>(d[6]);

  auto input = read_floats(memory, in.value(), channels * in_h * in_w);
  if (!input.ok()) return input.status();
  std::vector<float> result(channels * out_h * out_w,
                            -std::numeric_limits<float>::infinity());
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        float best = -std::numeric_limits<float>::infinity();
        for (std::size_t ky = 0; ky < ksize; ++ky) {
          for (std::size_t kx = 0; kx < ksize; ++kx) {
            const std::size_t iy = oy * stride + ky;
            const std::size_t ix = ox * stride + kx;
            if (iy >= in_h || ix >= in_w) continue;
            best = std::max(best, input.value()[(c * in_h + iy) * in_w + ix]);
          }
        }
        result[(c * out_h + oy) * out_w + ox] = best;
      }
    }
  }
  return write_floats(memory, out.value(), result);
}

// --- LRN --------------------------------------------------------------------

Result<vt::Duration> LrnKernel::execution_time(
    const KernelLaunch& launch) const {
  std::int64_t d[3];
  for (int i = 0; i < 3; ++i) {
    auto value = arg_scalar(launch, 2 + static_cast<std::size_t>(i));
    if (!value.ok()) return value.status();
    d[i] = value.value();
  }
  const double ops = static_cast<double>(d[0]) * d[1] * d[2] * 5.0;
  if (ops <= 0) return InvalidArgument("lrn: non-positive work");
  return kLaunchOverhead + vt::Duration::from_seconds_f(ops / kLrnOpsPerSecond);
}

Status LrnKernel::execute(const KernelLaunch& launch,
                          DeviceMemory& memory) const {
  if (Status s = validate(launch); !s.ok()) return s;
  auto in = arg_buffer(launch, 0);
  auto out = arg_buffer(launch, 1);
  if (!in.ok()) return in.status();
  if (!out.ok()) return out.status();
  std::int64_t d[3];
  for (int i = 0; i < 3; ++i) {
    auto value = arg_scalar(launch, 2 + static_cast<std::size_t>(i));
    if (!value.ok()) return value.status();
    d[i] = value.value();
  }
  const auto channels = static_cast<std::size_t>(d[0]);
  const auto height = static_cast<std::size_t>(d[1]);
  const auto width = static_cast<std::size_t>(d[2]);
  auto input = read_floats(memory, in.value(), channels * height * width);
  if (!input.ok()) return input.status();

  // AlexNet LRN: n=5, alpha=1e-4, beta=0.75, k=2 (across channels).
  constexpr int kWindow = 5;
  constexpr float kAlpha = 1e-4F;
  constexpr float kBeta = 0.75F;
  constexpr float kBias = 2.0F;
  std::vector<float> result(channels * height * width, 0.0F);
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t y = 0; y < height; ++y) {
      for (std::size_t x = 0; x < width; ++x) {
        float sum_sq = 0.0F;
        const int lo = std::max<int>(0, static_cast<int>(c) - kWindow / 2);
        const int hi = std::min<int>(static_cast<int>(channels) - 1,
                                     static_cast<int>(c) + kWindow / 2);
        for (int cc = lo; cc <= hi; ++cc) {
          const float value =
              input.value()[(static_cast<std::size_t>(cc) * height + y) *
                                width +
                            x];
          sum_sq += value * value;
        }
        const float scale =
            std::pow(kBias + kAlpha * sum_sq / kWindow, -kBeta);
        result[(c * height + y) * width + x] =
            input.value()[(c * height + y) * width + x] * scale;
      }
    }
  }
  return write_floats(memory, out.value(), result);
}

// --- FIR --------------------------------------------------------------------

Result<vt::Duration> FirKernel::execution_time(
    const KernelLaunch& launch) const {
  auto n = arg_scalar(launch, 3);
  if (!n.ok()) return n.status();
  auto taps = arg_scalar(launch, 4);
  if (!taps.ok()) return taps.status();
  if (n.value() <= 0 || taps.value() <= 0) {
    return InvalidArgument("fir: non-positive dimensions");
  }
  const double macs =
      static_cast<double>(n.value()) * static_cast<double>(taps.value());
  return kLaunchOverhead +
         vt::Duration::from_seconds_f(macs / kFirMacsPerSecond);
}

Status FirKernel::execute(const KernelLaunch& launch,
                          DeviceMemory& memory) const {
  if (Status s = validate(launch); !s.ok()) return s;
  auto in = arg_buffer(launch, 0);
  auto coeffs = arg_buffer(launch, 1);
  auto out = arg_buffer(launch, 2);
  auto n_r = arg_scalar(launch, 3);
  auto taps_r = arg_scalar(launch, 4);
  if (!in.ok()) return in.status();
  if (!coeffs.ok()) return coeffs.status();
  if (!out.ok()) return out.status();
  if (!n_r.ok()) return n_r.status();
  if (!taps_r.ok()) return taps_r.status();
  const auto n = static_cast<std::size_t>(n_r.value());
  const auto taps = static_cast<std::size_t>(taps_r.value());

  auto signal = read_floats(memory, in.value(), n);
  if (!signal.ok()) return signal.status();
  auto weights = read_floats(memory, coeffs.value(), taps);
  if (!weights.ok()) return weights.status();

  // y[i] = sum_t w[t] * x[i - t], zero-padded history.
  std::vector<float> result(n, 0.0F);
  for (std::size_t i = 0; i < n; ++i) {
    float acc = 0.0F;
    for (std::size_t t = 0; t < taps && t <= i; ++t) {
      acc += weights.value()[t] * signal.value()[i - t];
    }
    result[i] = acc;
  }
  return write_floats(memory, out.value(), result);
}

// --- Histogram ----------------------------------------------------------------

Result<vt::Duration> HistogramKernel::execution_time(
    const KernelLaunch& launch) const {
  auto n = arg_scalar(launch, 2);
  if (!n.ok()) return n.status();
  if (n.value() <= 0) return InvalidArgument("histogram: non-positive size");
  return kLaunchOverhead +
         vt::Duration::from_seconds_f(static_cast<double>(n.value()) /
                                      kHistogramPixelsPerSecond);
}

Status HistogramKernel::execute(const KernelLaunch& launch,
                                DeviceMemory& memory) const {
  if (Status s = validate(launch); !s.ok()) return s;
  auto in = arg_buffer(launch, 0);
  auto hist = arg_buffer(launch, 1);
  auto n_r = arg_scalar(launch, 2);
  if (!in.ok()) return in.status();
  if (!hist.ok()) return hist.status();
  if (!n_r.ok()) return n_r.status();
  const auto n = static_cast<std::size_t>(n_r.value());

  auto pixels = read_pixels(memory, in.value(), n);
  if (!pixels.ok()) return pixels.status();
  std::vector<std::uint32_t> bins(256, 0);
  for (std::uint32_t px : pixels.value()) {
    ++bins[px & 0xFFU];
  }
  return memory.write(hist.value(), 0,
                      as_bytes(bins.data(), bins.size() * sizeof(bins[0])));
}

// --- Vadd -------------------------------------------------------------------

Result<vt::Duration> VaddKernel::execution_time(
    const KernelLaunch& launch) const {
  auto n = arg_scalar(launch, 3);
  if (!n.ok()) return n.status();
  if (n.value() <= 0) return InvalidArgument("vadd: non-positive length");
  return kLaunchOverhead +
         vt::Duration::from_seconds_f(static_cast<double>(n.value()) /
                                      kVaddOpsPerSecond);
}

Status VaddKernel::execute(const KernelLaunch& launch,
                           DeviceMemory& memory) const {
  if (Status s = validate(launch); !s.ok()) return s;
  auto a = arg_buffer(launch, 0);
  auto b = arg_buffer(launch, 1);
  auto c = arg_buffer(launch, 2);
  auto n_r = arg_scalar(launch, 3);
  if (!a.ok()) return a.status();
  if (!b.ok()) return b.status();
  if (!c.ok()) return c.status();
  if (!n_r.ok()) return n_r.status();
  const auto n = static_cast<std::size_t>(n_r.value());
  auto lhs = read_floats(memory, a.value(), n);
  if (!lhs.ok()) return lhs.status();
  auto rhs = read_floats(memory, b.value(), n);
  if (!rhs.ok()) return rhs.status();
  std::vector<float> sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    sum[i] = lhs.value()[i] + rhs.value()[i];
  }
  return write_floats(memory, c.value(), sum);
}

// --- Registry ----------------------------------------------------------------

const KernelRegistry& KernelRegistry::standard() {
  static const KernelRegistry registry;
  return registry;
}

KernelRegistry::KernelRegistry() {
  auto add = [this](std::unique_ptr<KernelModel> model) {
    std::string key{model->name()};
    models_.emplace(std::move(key), std::move(model));
  };
  add(std::make_unique<SobelKernel>());
  add(std::make_unique<MatMulKernel>());
  add(std::make_unique<ConvKernel>());
  add(std::make_unique<FcKernel>());
  add(std::make_unique<PoolKernel>());
  add(std::make_unique<LrnKernel>());
  add(std::make_unique<FirKernel>());
  add(std::make_unique<HistogramKernel>());
  add(std::make_unique<VaddKernel>());
}

const KernelModel* KernelRegistry::find(const std::string& name) const {
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second.get();
}

std::vector<std::string> KernelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, model] : models_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bf::sim
