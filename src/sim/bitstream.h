// Bitstreams: what a board can be configured with.
//
// A bitstream carries identity (vendor / platform / accelerator) used by the
// Registry's compatibility filter (paper Algorithm 1) and the set of kernels
// it exposes. Reconfiguration wipes DDR and takes modeled time proportional
// to the bitstream size (paper §III-B: reconfiguration blocks the device).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "vt/time.h"

namespace bf::sim {

struct Bitstream {
  std::string id;           // e.g. "spector_sobel_v1"
  std::string vendor;       // e.g. "Intel"
  std::string platform;     // e.g. "a10gx_de5a_net"
  std::string accelerator;  // logical accelerator name, e.g. "sobel"
  std::vector<std::string> kernels;
  std::uint64_t size_bytes = 0;

  [[nodiscard]] bool has_kernel(const std::string& name) const;

  // Full-device Arria-10 programming: fixed setup plus size-proportional
  // streaming over PCIe config path (~64 MiB/s effective).
  [[nodiscard]] vt::Duration reconfiguration_time() const;
};

// The accelerators used in the paper's evaluation plus a vadd demo
// bitstream used by the quickstart and tests.
class BitstreamLibrary {
 public:
  static const BitstreamLibrary& standard();

  [[nodiscard]] const Bitstream* find(const std::string& id) const;
  [[nodiscard]] std::optional<Bitstream> get(const std::string& id) const;
  [[nodiscard]] const std::vector<Bitstream>& all() const { return items_; }

  // Paper benchmark bitstream ids.
  static constexpr const char* kSobel = "spector_sobel_v1";
  static constexpr const char* kMatMul = "spector_mm_v1";
  static constexpr const char* kAlexNet = "pipecnn_alexnet_v1";
  static constexpr const char* kVadd = "vadd_demo_v1";
  // Additional Spector-suite accelerators (beyond the paper's three).
  static constexpr const char* kFir = "spector_fir_v1";
  static constexpr const char* kHistogram = "spector_hist_v1";

 private:
  BitstreamLibrary();
  std::vector<Bitstream> items_;
};

}  // namespace bf::sim
