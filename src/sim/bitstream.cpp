#include "sim/bitstream.h"

#include <algorithm>

#include "common/bytes.h"

namespace bf::sim {

bool Bitstream::has_kernel(const std::string& name) const {
  return std::find(kernels.begin(), kernels.end(), name) != kernels.end();
}

vt::Duration Bitstream::reconfiguration_time() const {
  constexpr double kConfigBytesPerSecond = 64.0 * 1024 * 1024;
  return vt::Duration::millis(900) +
         vt::Duration::from_seconds_f(static_cast<double>(size_bytes) /
                                      kConfigBytesPerSecond);
}

const BitstreamLibrary& BitstreamLibrary::standard() {
  static const BitstreamLibrary library;
  return library;
}

BitstreamLibrary::BitstreamLibrary() {
  // Spector Sobel: 32x8 blocks, 4x1 window, no SIMD, 1 CU (paper §IV).
  items_.push_back(Bitstream{
      .id = kSobel,
      .vendor = "Intel",
      .platform = "a10gx_de5a_net",
      .accelerator = "sobel",
      .kernels = {"sobel"},
      .size_bytes = 44 * kMiB,
  });
  // Spector MM: 1 CU, 8 work-items, fully unrolled 16x16 block (paper §IV).
  items_.push_back(Bitstream{
      .id = kMatMul,
      .vendor = "Intel",
      .platform = "a10gx_de5a_net",
      .accelerator = "mm",
      .kernels = {"mm"},
      .size_bytes = 52 * kMiB,
  });
  // PipeCNN synthesized for AlexNet (paper §IV / [18]).
  items_.push_back(Bitstream{
      .id = kAlexNet,
      .vendor = "Intel",
      .platform = "a10gx_de5a_net",
      .accelerator = "pipecnn_alexnet",
      .kernels = {"conv", "pool", "lrn", "fc"},
      .size_bytes = 96 * kMiB,
  });
  // Spector FIR filter and histogram (suite members beyond the paper's
  // evaluation; used by the extended examples/tests).
  items_.push_back(Bitstream{
      .id = kFir,
      .vendor = "Intel",
      .platform = "a10gx_de5a_net",
      .accelerator = "fir",
      .kernels = {"fir"},
      .size_bytes = 36 * kMiB,
  });
  items_.push_back(Bitstream{
      .id = kHistogram,
      .vendor = "Intel",
      .platform = "a10gx_de5a_net",
      .accelerator = "histogram",
      .kernels = {"histogram"},
      .size_bytes = 30 * kMiB,
  });
  items_.push_back(Bitstream{
      .id = kVadd,
      .vendor = "Intel",
      .platform = "a10gx_de5a_net",
      .accelerator = "vadd",
      .kernels = {"vadd"},
      .size_bytes = 24 * kMiB,
  });
}

const Bitstream* BitstreamLibrary::find(const std::string& id) const {
  for (const Bitstream& b : items_) {
    if (b.id == id) return &b;
  }
  return nullptr;
}

std::optional<Bitstream> BitstreamLibrary::get(const std::string& id) const {
  const Bitstream* b = find(id);
  if (b == nullptr) return std::nullopt;
  return *b;
}

}  // namespace bf::sim
