#include "sim/memory.h"

#include <algorithm>

namespace bf::sim {

DeviceMemory::DeviceMemory(std::uint64_t capacity_bytes, unsigned bank_count)
    : capacity_(capacity_bytes) {
  BF_CHECK(capacity_bytes > 0);
  BF_CHECK(bank_count > 0);
  const std::uint64_t per_bank = capacity_bytes / bank_count;
  BF_CHECK(per_bank > 0);
  std::uint64_t base = 0;
  for (unsigned i = 0; i < bank_count; ++i) {
    Bank bank;
    bank.base = base;
    bank.size = (i + 1 == bank_count) ? capacity_bytes - base : per_bank;
    bank.free_list[bank.base] = bank.size;
    base += bank.size;
    banks_.push_back(std::move(bank));
  }
}

Result<MemHandle> DeviceMemory::allocate(std::uint64_t size) {
  if (size == 0) return InvalidArgument("zero-size device allocation");
  // Round-robin starting bank; fall through remaining banks first-fit.
  for (unsigned attempt = 0; attempt < banks_.size(); ++attempt) {
    const unsigned index = (next_bank_ + attempt) % banks_.size();
    auto carved = carve(banks_[index], size);
    if (!carved.ok()) continue;
    next_bank_ = (index + 1) % banks_.size();
    Allocation alloc;
    alloc.base = carved.value();
    alloc.size = size;
    alloc.bank = index;
    const std::uint64_t id = next_id_++;
    allocations_.emplace(id, std::move(alloc));
    used_ += size;
    return MemHandle{id};
  }
  return ResourceExhausted("device memory exhausted: requested " +
                           std::to_string(size) + "B, free " +
                           std::to_string(free_bytes()) + "B");
}

Status DeviceMemory::release(MemHandle handle) {
  auto it = allocations_.find(handle.id);
  if (it == allocations_.end()) {
    return NotFound("unknown device allocation " + std::to_string(handle.id));
  }
  restore(banks_[it->second.bank], it->second.base, it->second.size);
  used_ -= it->second.size;
  allocations_.erase(it);
  return Status::Ok();
}

Status DeviceMemory::write(MemHandle handle, std::uint64_t offset,
                           ByteSpan data) {
  auto it = allocations_.find(handle.id);
  if (it == allocations_.end()) {
    return NotFound("unknown device allocation " + std::to_string(handle.id));
  }
  Allocation& alloc = it->second;
  if (offset + data.size() > alloc.size) {
    return InvalidArgument("device write out of bounds: offset " +
                           std::to_string(offset) + " + " +
                           std::to_string(data.size()) + " > " +
                           std::to_string(alloc.size));
  }
  if (alloc.data.size() < offset + data.size()) {
    alloc.data.resize(alloc.size);  // materialize on first touch
  }
  std::copy(data.begin(), data.end(), alloc.data.begin() + offset);
  return Status::Ok();
}

Status DeviceMemory::read(MemHandle handle, std::uint64_t offset,
                          MutableByteSpan out) const {
  auto it = allocations_.find(handle.id);
  if (it == allocations_.end()) {
    return NotFound("unknown device allocation " + std::to_string(handle.id));
  }
  const Allocation& alloc = it->second;
  if (offset + out.size() > alloc.size) {
    return InvalidArgument("device read out of bounds: offset " +
                           std::to_string(offset) + " + " +
                           std::to_string(out.size()) + " > " +
                           std::to_string(alloc.size));
  }
  // Unmaterialized (never-written) memory reads as zeroes.
  std::fill(out.begin(), out.end(), std::uint8_t{0});
  if (alloc.data.empty()) return Status::Ok();
  const std::uint64_t available =
      alloc.data.size() > offset ? alloc.data.size() - offset : 0;
  const std::uint64_t n = std::min<std::uint64_t>(available, out.size());
  std::copy_n(alloc.data.begin() + offset, n, out.begin());
  return Status::Ok();
}

Result<ByteSpan> DeviceMemory::borrow(MemHandle handle, std::uint64_t offset,
                                      std::uint64_t size) {
  auto span = borrow_mut(handle, offset, size);
  if (!span.ok()) return span.status();
  return ByteSpan{span.value()};
}

Result<MutableByteSpan> DeviceMemory::borrow_mut(MemHandle handle,
                                                 std::uint64_t offset,
                                                 std::uint64_t size) {
  auto it = allocations_.find(handle.id);
  if (it == allocations_.end()) {
    return NotFound("unknown device allocation " + std::to_string(handle.id));
  }
  Allocation& alloc = it->second;
  if (offset + size > alloc.size) {
    return InvalidArgument("device borrow out of bounds: offset " +
                           std::to_string(offset) + " + " +
                           std::to_string(size) + " > " +
                           std::to_string(alloc.size));
  }
  if (alloc.data.size() < alloc.size) {
    alloc.data.resize(alloc.size);  // materialize (zero-filled) on borrow
  }
  return MutableByteSpan{alloc.data.data() + offset, size};
}

Result<std::uint64_t> DeviceMemory::allocation_size(MemHandle handle) const {
  auto it = allocations_.find(handle.id);
  if (it == allocations_.end()) {
    return NotFound("unknown device allocation " + std::to_string(handle.id));
  }
  return it->second.size;
}

void DeviceMemory::reset() {
  allocations_.clear();
  used_ = 0;
  for (Bank& bank : banks_) {
    bank.free_list.clear();
    bank.free_list[bank.base] = bank.size;
  }
  next_bank_ = 0;
}

Result<std::uint64_t> DeviceMemory::carve(Bank& bank, std::uint64_t size) {
  for (auto it = bank.free_list.begin(); it != bank.free_list.end(); ++it) {
    if (it->second < size) continue;
    const std::uint64_t base = it->first;
    const std::uint64_t remaining = it->second - size;
    bank.free_list.erase(it);
    if (remaining > 0) {
      bank.free_list[base + size] = remaining;
    }
    return base;
  }
  return ResourceExhausted("bank full");
}

void DeviceMemory::restore(Bank& bank, std::uint64_t base,
                           std::uint64_t size) {
  auto [it, inserted] = bank.free_list.emplace(base, size);
  BF_CHECK(inserted);
  // Coalesce with successor.
  auto next = std::next(it);
  if (next != bank.free_list.end() && it->first + it->second == next->first) {
    it->second += next->second;
    bank.free_list.erase(next);
  }
  // Coalesce with predecessor.
  if (it != bank.free_list.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      bank.free_list.erase(it);
    }
  }
}

}  // namespace bf::sim
