// Modeled on-board DDR memory.
//
// The DE5a-Net carries 8 GiB over two SODIMM banks. We model the address
// space (so allocation pressure and fragmentation behave realistically) but
// back each allocation with its own host vector, materialized lazily on
// first write, so the simulator does not need 8 GiB of host RAM per board.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace bf::sim {

// Opaque handle to an on-board allocation.
struct MemHandle {
  std::uint64_t id = 0;
  [[nodiscard]] bool valid() const { return id != 0; }
  auto operator<=>(const MemHandle&) const = default;
};

class DeviceMemory {
 public:
  explicit DeviceMemory(std::uint64_t capacity_bytes, unsigned bank_count = 2);

  // First-fit allocation across banks (round-robin starting bank, matching
  // the interleaved SODIMM layout). Returns an error when no contiguous
  // region fits.
  Result<MemHandle> allocate(std::uint64_t size);
  Status release(MemHandle handle);

  // Data access. Offsets are relative to the allocation base. Reads of
  // never-written regions return zeroes (DDR content is modeled as zeroed).
  Status write(MemHandle handle, std::uint64_t offset, ByteSpan data);
  Status read(MemHandle handle, std::uint64_t offset,
              MutableByteSpan out) const;

  // Zero-copy access to the backing store, used by the functional kernels
  // to compute in place. Both overloads materialize the allocation's host
  // vector (zero-filled, which is semantically invisible — unwritten DDR
  // already reads as zeroes), so a borrowed span always observes and
  // persists real data. Spans stay valid until the allocation is
  // release()d or the memory is reset(); they alias read()/write() of the
  // same handle.
  Result<ByteSpan> borrow(MemHandle handle, std::uint64_t offset,
                          std::uint64_t size);
  Result<MutableByteSpan> borrow_mut(MemHandle handle, std::uint64_t offset,
                                     std::uint64_t size);

  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t used() const { return used_; }
  [[nodiscard]] std::uint64_t free_bytes() const { return capacity_ - used_; }
  [[nodiscard]] std::size_t allocation_count() const {
    return allocations_.size();
  }
  Result<std::uint64_t> allocation_size(MemHandle handle) const;

  // Drops every allocation (board reconfiguration wipes DDR contents).
  void reset();

 private:
  struct Allocation {
    std::uint64_t base = 0;   // modeled device address
    std::uint64_t size = 0;
    unsigned bank = 0;
    Bytes data;               // lazily materialized backing store
  };

  struct Bank {
    std::uint64_t base = 0;
    std::uint64_t size = 0;
    // free regions: start -> length
    std::map<std::uint64_t, std::uint64_t> free_list;
  };

  Result<std::uint64_t> carve(Bank& bank, std::uint64_t size);
  void restore(Bank& bank, std::uint64_t base, std::uint64_t size);

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::vector<Bank> banks_;
  unsigned next_bank_ = 0;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Allocation> allocations_;
};

}  // namespace bf::sim
