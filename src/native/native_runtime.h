// Native OpenCL runtime: direct access to local boards over PCIe, no sharing
// layer. This is the paper's "Native" baseline ("maximum theoretical
// performance scenario represented by a native execution that has direct
// access to the FPGAs", §IV).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ocl/runtime.h"
#include "sim/board.h"

namespace bf::native {

class NativeRuntime final : public ocl::Runtime {
 public:
  // Boards are owned by the caller (typically the testbed) and must outlive
  // the runtime and all contexts created from it.
  explicit NativeRuntime(std::vector<sim::Board*> boards);

  [[nodiscard]] std::string name() const override { return "native"; }
  Result<std::vector<ocl::PlatformInfo>> platforms() override;
  Result<std::vector<ocl::DeviceInfo>> devices() override;
  Result<std::unique_ptr<ocl::Context>> create_context(
      const std::string& device_id, ocl::Session& session) override;

  [[nodiscard]] sim::Board* find_board(const std::string& device_id) const;

 private:
  std::vector<sim::Board*> boards_;
};

ocl::DeviceInfo describe_board(const sim::Board& board);

}  // namespace bf::native
