#include "native/native_runtime.h"

#include <algorithm>

#include "common/log.h"
#include "sim/bitstream.h"
#include "sim/kernels.h"

namespace bf::native {
namespace {

// Converts client-side kernel args to simulator args via the context's
// buffer table.
Result<sim::KernelLaunch> to_launch(
    const ocl::Kernel& kernel, ocl::NdRange range,
    const std::map<std::uint64_t, sim::MemHandle>& buffers) {
  sim::KernelLaunch launch;
  launch.kernel = kernel.name();
  launch.global_size = {range.x, range.y, range.z};
  launch.args.reserve(kernel.args().size());
  for (std::size_t i = 0; i < kernel.args().size(); ++i) {
    const ocl::KernelArgValue& arg = kernel.args()[i];
    if (std::holds_alternative<std::monostate>(arg)) {
      return InvalidArgument("kernel '" + kernel.name() + "': arg " +
                             std::to_string(i) + " not set");
    }
    if (const auto* ref = std::get_if<ocl::BufferRef>(&arg)) {
      auto it = buffers.find(ref->id);
      if (it == buffers.end()) {
        return InvalidArgument("kernel '" + kernel.name() + "': arg " +
                               std::to_string(i) + " references unknown buffer");
      }
      launch.args.emplace_back(it->second);
    } else if (const auto* iv = std::get_if<std::int64_t>(&arg)) {
      launch.args.emplace_back(*iv);
    } else {
      launch.args.emplace_back(std::get<double>(arg));
    }
  }
  return launch;
}

class NativeEvent final : public ocl::Event {
 public:
  NativeEvent(ocl::Session* session, vt::Time submitted, vt::Time start,
              vt::Time completion)
      : session_(session),
        submitted_(submitted),
        start_(start),
        completion_(completion) {}

  static std::shared_ptr<NativeEvent> failed(Status status) {
    auto event = std::make_shared<NativeEvent>(nullptr, vt::Time::zero(),
                                               vt::Time::zero(),
                                               vt::Time::zero());
    event->error_ = std::move(status);
    return event;
  }

  [[nodiscard]] ocl::EventStatus status() const override {
    if (!error_.ok()) return ocl::EventStatus::kError;
    // Status is observed relative to the application's virtual clock: the
    // operation appears running until its modeled completion time passes.
    const vt::Time now = session_->now();
    if (now >= completion_) return ocl::EventStatus::kComplete;
    if (now >= start_) return ocl::EventStatus::kRunning;
    if (now >= submitted_) return ocl::EventStatus::kSubmitted;
    return ocl::EventStatus::kQueued;
  }

  Status wait() override {
    if (!error_.ok()) return error_;
    session_->clock().advance_to(completion_);
    return Status::Ok();
  }

  [[nodiscard]] vt::Time completion_time() const override {
    return completion_;
  }

 private:
  ocl::Session* session_;
  vt::Time submitted_;
  vt::Time start_;
  vt::Time completion_;
  Status error_;
};

class NativeContext;

// In-order command queue mapped directly onto the board's busy timeline.
class NativeQueue final : public ocl::CommandQueue {
 public:
  NativeQueue(NativeContext* context, sim::Board* board,
              ocl::Session* session)
      : context_(context), board_(board), session_(session) {}

  Result<ocl::EventPtr> enqueue_write(const ocl::Buffer& buffer,
                                      std::uint64_t offset, ByteSpan data,
                                      bool blocking,
                                      ocl::EventWaitList wait_list) override;
  Result<ocl::EventPtr> enqueue_read(const ocl::Buffer& buffer,
                                     std::uint64_t offset, MutableByteSpan out,
                                     bool blocking,
                                     ocl::EventWaitList wait_list) override;
  Result<ocl::EventPtr> enqueue_kernel(const ocl::Kernel& kernel,
                                       ocl::NdRange range,
                                       ocl::EventWaitList wait_list) override;
  Status flush() override { return Status::Ok(); }  // submits eagerly
  Status finish() override {
    session_->clock().advance_to(last_completion_);
    return Status::Ok();
  }

 private:
  // Ordering point for in-order queue semantics: an op may not start before
  // the previous op on this queue completed, nor before its wait-list
  // events.
  [[nodiscard]] vt::Time ready_time(ocl::EventWaitList wait_list) const;
  ocl::EventPtr make_event(vt::Time submitted, sim::Board::Interval interval,
                           bool blocking);

  NativeContext* context_;
  sim::Board* board_;
  ocl::Session* session_;
  vt::Time last_completion_ = vt::Time::zero();
};

class NativeContext final : public ocl::Context {
 public:
  NativeContext(sim::Board* board, ocl::Session* session)
      : board_(board), session_(session), info_(describe_board(*board)) {}

  ~NativeContext() override {
    for (const auto& [id, handle] : buffers_) {
      (void)board_->release(handle);
    }
  }

  NativeContext(const NativeContext&) = delete;
  NativeContext& operator=(const NativeContext&) = delete;

  [[nodiscard]] const ocl::DeviceInfo& device() const override {
    return info_;
  }
  [[nodiscard]] ocl::Session& session() override { return *session_; }

  Status program(const std::string& bitstream_id) override {
    const sim::Bitstream* bitstream =
        sim::BitstreamLibrary::standard().find(bitstream_id);
    if (bitstream == nullptr) {
      return NotFound("unknown bitstream '" + bitstream_id + "'");
    }
    // Reprogramming only happens when the board carries a different image;
    // rebuilding against the already-loaded image is host-side work only.
    auto current = board_->bitstream();
    session_->clock().advance(board_->host().host_call_overhead);
    if (current.has_value() && current->id == bitstream_id) {
      return Status::Ok();
    }
    auto interval = board_->configure(*bitstream, session_->now());
    if (!interval.ok()) return interval.status();
    buffers_.clear();  // reconfiguration wiped DDR
    session_->clock().advance_to(interval.value().end);
    info_.accelerator = bitstream->accelerator;
    return Status::Ok();
  }

  Result<ocl::Buffer> create_buffer(std::uint64_t size) override {
    session_->clock().advance(board_->host().host_call_overhead);
    auto handle = board_->allocate(size);
    if (!handle.ok()) return handle.status();
    const std::uint64_t id = next_buffer_id_++;
    buffers_[id] = handle.value();
    return ocl::Buffer{id, size};
  }

  Status release_buffer(const ocl::Buffer& buffer) override {
    auto it = buffers_.find(buffer.id);
    if (it == buffers_.end()) {
      return NotFound("unknown buffer " + std::to_string(buffer.id));
    }
    Status s = board_->release(it->second);
    buffers_.erase(it);
    return s;
  }

  Result<ocl::Kernel> create_kernel(const std::string& name) override {
    session_->clock().advance(board_->host().host_call_overhead);
    if (!board_->has_kernel(name)) {
      return NotFound("kernel '" + name + "' not in configured bitstream");
    }
    const sim::KernelModel* model = sim::KernelRegistry::standard().find(name);
    BF_CHECK(model != nullptr);
    return ocl::Kernel(next_kernel_id_++, name, model->arity());
  }

  Result<std::unique_ptr<ocl::CommandQueue>> create_queue() override {
    session_->clock().advance(board_->host().host_call_overhead);
    return std::unique_ptr<ocl::CommandQueue>(
        std::make_unique<NativeQueue>(this, board_, session_));
  }

  [[nodiscard]] const std::map<std::uint64_t, sim::MemHandle>& buffers()
      const {
    return buffers_;
  }

 private:
  sim::Board* board_;
  ocl::Session* session_;
  ocl::DeviceInfo info_;
  std::map<std::uint64_t, sim::MemHandle> buffers_;
  std::uint64_t next_buffer_id_ = 1;
  std::uint64_t next_kernel_id_ = 1;
};

vt::Time NativeQueue::ready_time(ocl::EventWaitList wait_list) const {
  vt::Time ready = vt::max(session_->now(), last_completion_);
  for (const ocl::EventPtr& event : wait_list) {
    if (event != nullptr) {
      ready = vt::max(ready, event->completion_time());
    }
  }
  return ready;
}

ocl::EventPtr NativeQueue::make_event(vt::Time submitted,
                                      sim::Board::Interval interval,
                                      bool blocking) {
  last_completion_ = vt::max(last_completion_, interval.end);
  auto event = std::make_shared<NativeEvent>(session_, submitted,
                                             interval.start, interval.end);
  if (blocking) (void)event->wait();
  return event;
}

Result<ocl::EventPtr> NativeQueue::enqueue_write(const ocl::Buffer& buffer,
                                                 std::uint64_t offset,
                                                 ByteSpan data, bool blocking,
                                                 ocl::EventWaitList wait_list) {
  session_->clock().advance(board_->host().host_call_overhead);
  auto it = context_->buffers().find(buffer.id);
  if (it == context_->buffers().end()) {
    return NotFound("unknown buffer " + std::to_string(buffer.id));
  }
  auto interval =
      board_->write(it->second, offset, data, ready_time(wait_list));
  if (!interval.ok()) return interval.status();
  return make_event(session_->now(), interval.value(), blocking);
}

Result<ocl::EventPtr> NativeQueue::enqueue_read(const ocl::Buffer& buffer,
                                                std::uint64_t offset,
                                                MutableByteSpan out,
                                                bool blocking,
                                                ocl::EventWaitList wait_list) {
  session_->clock().advance(board_->host().host_call_overhead);
  auto it = context_->buffers().find(buffer.id);
  if (it == context_->buffers().end()) {
    return NotFound("unknown buffer " + std::to_string(buffer.id));
  }
  auto interval =
      board_->read(it->second, offset, out, ready_time(wait_list));
  if (!interval.ok()) return interval.status();
  return make_event(session_->now(), interval.value(), blocking);
}

Result<ocl::EventPtr> NativeQueue::enqueue_kernel(const ocl::Kernel& kernel,
                                                  ocl::NdRange range,
                                                  ocl::EventWaitList wait_list) {
  session_->clock().advance(board_->host().host_call_overhead);
  auto launch = to_launch(kernel, range, context_->buffers());
  if (!launch.ok()) return launch.status();
  auto interval =
      board_->run_kernel(launch.value(), ready_time(wait_list));
  if (!interval.ok()) return interval.status();
  return make_event(session_->now(), interval.value(), /*blocking=*/false);
}

}  // namespace

ocl::DeviceInfo describe_board(const sim::Board& board) {
  ocl::DeviceInfo info;
  info.id = board.id();
  info.name = "Terasic DE5a-Net (Arria 10 GX 1150)";
  info.vendor = "Intel";
  info.platform = "a10gx_de5a_net";
  info.node = board.node();
  auto bitstream = board.bitstream();
  info.accelerator = bitstream.has_value() ? bitstream->accelerator : "";
  info.global_memory_bytes = board.memory_capacity();
  return info;
}

NativeRuntime::NativeRuntime(std::vector<sim::Board*> boards)
    : boards_(std::move(boards)) {
  for (sim::Board* board : boards_) BF_CHECK(board != nullptr);
}

Result<std::vector<ocl::PlatformInfo>> NativeRuntime::platforms() {
  ocl::PlatformInfo platform;
  platform.name = "Intel(R) FPGA SDK for OpenCL (simulated)";
  platform.vendor = "Intel";
  for (const sim::Board* board : boards_) {
    platform.device_ids.push_back(board->id());
  }
  return std::vector<ocl::PlatformInfo>{platform};
}

Result<std::vector<ocl::DeviceInfo>> NativeRuntime::devices() {
  std::vector<ocl::DeviceInfo> out;
  out.reserve(boards_.size());
  for (const sim::Board* board : boards_) {
    out.push_back(describe_board(*board));
  }
  return out;
}

Result<std::unique_ptr<ocl::Context>> NativeRuntime::create_context(
    const std::string& device_id, ocl::Session& session) {
  sim::Board* board = find_board(device_id);
  if (board == nullptr) {
    return NotFound("no local board with id '" + device_id + "'");
  }
  return std::unique_ptr<ocl::Context>(
      std::make_unique<NativeContext>(board, &session));
}

sim::Board* NativeRuntime::find_board(const std::string& device_id) const {
  auto it = std::find_if(
      boards_.begin(), boards_.end(),
      [&](const sim::Board* board) { return board->id() == device_id; });
  return it == boards_.end() ? nullptr : *it;
}

}  // namespace bf::native
