// Protobuf-style wire format: varint / zigzag / length-delimited encoding.
//
// BlastFunction's control plane speaks gRPC+protobuf; this module is the
// serialization substrate for our gRPC analogue (bf::net). The format is the
// real protobuf wire format (tag = field<<3 | wiretype) so sizes — and hence
// the serialization cost model — are realistic.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace bf::proto {

enum class WireType : std::uint8_t {
  kVarint = 0,
  kFixed64 = 1,
  kLengthDelimited = 2,
  kFixed32 = 5,
};

class Writer {
 public:
  Writer() = default;

  // Pre-size the output buffer (e.g. before appending a large payload
  // field) so encoding never reallocates mid-message. Growth beyond the
  // inline capacity is served from the arena free lists (wire.cpp), so a
  // steady state of encode -> deliver -> arena::recycle(payload) never
  // touches the heap.
  void reserve(std::size_t capacity);

  void varint(std::uint64_t value);
  void tag(std::uint32_t field, WireType type);

  void field_uint(std::uint32_t field, std::uint64_t value);
  void field_int(std::uint32_t field, std::int64_t value);  // zigzag
  void field_bool(std::uint32_t field, bool value);
  void field_double(std::uint32_t field, double value);
  void field_string(std::uint32_t field, std::string_view value);
  void field_bytes(std::uint32_t field, ByteSpan value);

  [[nodiscard]] const Bytes& bytes() const { return buffer_; }
  Bytes take() { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

 private:
  Bytes buffer_;
};

class Reader {
 public:
  explicit Reader(ByteSpan data) : data_(data) {}

  [[nodiscard]] bool at_end() const { return pos_ >= data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  // Reads the next field header. Returns false at end of input; errors throw
  // are reported via the Status-returning accessors below.
  struct FieldHeader {
    std::uint32_t field = 0;
    WireType type = WireType::kVarint;
  };
  Result<FieldHeader> next_field();

  Result<std::uint64_t> read_varint();
  Result<std::int64_t> read_zigzag();
  Result<double> read_double();
  Result<std::string> read_string();
  Result<Bytes> read_bytes();

  // Zero-copy variant of read_bytes: a view into the reader's underlying
  // buffer, valid only while that buffer outlives the span.
  Result<ByteSpan> read_bytes_view();

  // Skips a field of the given wire type (unknown-field tolerance).
  Status skip(WireType type);

 private:
  ByteSpan data_;
  std::size_t pos_ = 0;
};

// zigzag helpers exposed for tests.
constexpr std::uint64_t zigzag_encode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}
constexpr std::int64_t zigzag_decode(std::uint64_t value) {
  return static_cast<std::int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

}  // namespace bf::proto
