// Device Manager service protocol (the paper's gRPC service, §III-B).
//
// Two method families:
//  * context & information methods — synchronous request/response
//    (session open, device info, program/reconfigure, buffer and kernel and
//    queue management);
//  * command-queue methods — asynchronous, multi-phase. Each op carries a
//    client-chosen op_id (the paper's "tag": a pointer to the client event).
//    Phases mirror the remote library's event state machine:
//      INIT  -> Enqueue*Req (metadata)
//      FIRST <- OpEnqueued
//      BUFFER-> WriteData / <- data inside OpComplete for reads
//      COMPLETE <- OpComplete
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "proto/wire.h"

namespace bf::proto {

enum class Method : std::uint32_t {
  kOpenSession = 1,
  kGetDeviceInfo = 2,
  kProgram = 3,
  kCreateBuffer = 4,
  kReleaseBuffer = 5,
  kCreateKernel = 6,
  kCreateQueue = 7,
  kReleaseQueue = 8,
  kHealthCheck = 9,
  kEnqueueWrite = 16,
  kWriteData = 17,
  kEnqueueRead = 18,
  kEnqueueKernel = 19,
  kFlush = 20,
  kFinish = 21,
  // Server -> client notifications.
  kOpEnqueued = 32,
  kOpComplete = 33,
};

std::string_view to_string(Method method);
[[nodiscard]] bool is_command_queue_method(Method method);

// Methods safe to retry after a lost reply: re-execution (or a duplicate
// server-side execution whose first reply was dropped) does not change
// observable state. Resource *creation* methods are excluded — a retried
// CreateBuffer whose first reply was lost would leak the first buffer.
// OpenSession qualifies because the Device Manager re-acks the existing
// session on a duplicate open over the same connection.
[[nodiscard]] bool is_idempotent(Method method);

// --- Shared submessages -----------------------------------------------------

struct StatusMsg {
  std::uint32_t code = 0;  // StatusCode as integer
  std::string message;

  static StatusMsg from(const Status& status);
  [[nodiscard]] Status to_status() const;
  void encode(Writer& writer) const;
  static Result<StatusMsg> decode(Reader& reader);
};

struct DeviceDescriptor {
  std::string id;
  std::string name;
  std::string vendor;
  std::string platform;
  std::string node;
  std::string accelerator;
  std::uint64_t global_memory_bytes = 0;

  void encode(Writer& writer) const;
  static Result<DeviceDescriptor> decode(Reader& reader);
};

struct KernelArgMsg {
  enum class Kind : std::uint32_t { kUnset = 0, kBuffer = 1, kInt = 2, kDouble = 3 };
  Kind kind = Kind::kUnset;
  std::uint64_t buffer_id = 0;
  std::int64_t int_value = 0;
  double double_value = 0.0;

  void encode(Writer& writer) const;
  static Result<KernelArgMsg> decode(Reader& reader);
};

// --- Context & information methods -------------------------------------------

struct OpenSessionReq {
  std::string client_id;
  bool use_shared_memory = false;

  void encode(Writer& writer) const;
  static Result<OpenSessionReq> decode(Reader& reader);
};

struct OpenSessionResp {
  StatusMsg status;
  std::uint64_t session_id = 0;
  bool shared_memory_granted = false;
  DeviceDescriptor device;

  void encode(Writer& writer) const;
  static Result<OpenSessionResp> decode(Reader& reader);
};

struct ProgramReq {
  std::string bitstream_id;

  void encode(Writer& writer) const;
  static Result<ProgramReq> decode(Reader& reader);
};

struct ProgramResp {
  StatusMsg status;
  bool reconfigured = false;

  void encode(Writer& writer) const;
  static Result<ProgramResp> decode(Reader& reader);
};

struct CreateBufferReq {
  std::uint64_t size = 0;

  void encode(Writer& writer) const;
  static Result<CreateBufferReq> decode(Reader& reader);
};

struct CreateBufferResp {
  StatusMsg status;
  std::uint64_t buffer_id = 0;

  void encode(Writer& writer) const;
  static Result<CreateBufferResp> decode(Reader& reader);
};

struct ReleaseBufferReq {
  std::uint64_t buffer_id = 0;

  void encode(Writer& writer) const;
  static Result<ReleaseBufferReq> decode(Reader& reader);
};

struct CreateKernelReq {
  std::string name;

  void encode(Writer& writer) const;
  static Result<CreateKernelReq> decode(Reader& reader);
};

struct CreateKernelResp {
  StatusMsg status;
  std::uint64_t kernel_id = 0;
  std::uint64_t arity = 0;

  void encode(Writer& writer) const;
  static Result<CreateKernelResp> decode(Reader& reader);
};

struct CreateQueueResp {
  StatusMsg status;
  std::uint64_t queue_id = 0;

  void encode(Writer& writer) const;
  static Result<CreateQueueResp> decode(Reader& reader);
};

// Generic status-only response (release buffer/queue, flush ack, ...).
struct AckResp {
  StatusMsg status;

  void encode(Writer& writer) const;
  static Result<AckResp> decode(Reader& reader);
};

// Liveness + load probe (request body is empty). The registry's gatherer
// polls this to drive unhealthy-board detection and migration; `accepting`
// goes false once the manager has begun shutting down.
struct HealthResp {
  StatusMsg status;
  std::uint64_t queue_depth = 0;    // sealed tasks waiting in the FIFO
  std::uint64_t sessions = 0;       // open client sessions
  std::uint64_t ops_executed = 0;   // lifetime completed operations
  bool accepting = true;

  void encode(Writer& writer) const;
  static Result<HealthResp> decode(Reader& reader);
};

// --- Command-queue methods ----------------------------------------------------

struct EnqueueWriteReq {
  std::uint64_t op_id = 0;
  std::uint64_t queue_id = 0;
  std::uint64_t buffer_id = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  // Event wait list: ops that must complete before this one starts.
  std::vector<std::uint64_t> wait_op_ids;
  // Request trace context (0 = untraced; only encoded when set, so untraced
  // messages are byte-identical to pre-tracing builds).
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;

  void encode(Writer& writer) const;
  static Result<EnqueueWriteReq> decode(Reader& reader);
};

// BUFFER phase of a write. Exactly one of `data` (gRPC path, bytes inline)
// or `shm_slot` (shared-memory path) is used; `size` is always set so the
// manager can charge transfer costs without touching the payload.
struct WriteData {
  std::uint64_t op_id = 0;
  std::uint64_t size = 0;
  std::int64_t shm_slot = -1;
  Bytes data;
  // Encode-only alternative to `data`: when non-empty, encode() serializes
  // this view instead of copying the payload into the message first. The
  // caller must keep the viewed buffer alive across encode(). decode()
  // always fills `data`.
  ByteSpan data_view;

  void encode(Writer& writer) const;
  static Result<WriteData> decode(Reader& reader);
};

struct EnqueueReadReq {
  std::uint64_t op_id = 0;
  std::uint64_t queue_id = 0;
  std::uint64_t buffer_id = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  bool use_shared_memory = false;
  std::vector<std::uint64_t> wait_op_ids;
  std::uint64_t trace_id = 0;     // see EnqueueWriteReq
  std::uint64_t parent_span = 0;

  void encode(Writer& writer) const;
  static Result<EnqueueReadReq> decode(Reader& reader);
};

struct EnqueueKernelReq {
  std::uint64_t op_id = 0;
  std::uint64_t queue_id = 0;
  std::uint64_t kernel_id = 0;
  std::vector<KernelArgMsg> args;
  std::array<std::uint64_t, 3> global_size = {1, 1, 1};
  std::vector<std::uint64_t> wait_op_ids;
  std::uint64_t trace_id = 0;     // see EnqueueWriteReq
  std::uint64_t parent_span = 0;

  void encode(Writer& writer) const;
  static Result<EnqueueKernelReq> decode(Reader& reader);
};

struct FlushReq {
  std::uint64_t queue_id = 0;
  // Modeled completion deadline (ns since experiment start) the client
  // derived from its CallOptions timeout; 0 = none. Only the kDeadline
  // scheduling policy consults it.
  std::uint64_t deadline_ns = 0;

  void encode(Writer& writer) const;
  static Result<FlushReq> decode(Reader& reader);
};

// Finish = flush + completion notification carrying this op_id.
struct FinishReq {
  std::uint64_t op_id = 0;
  std::uint64_t queue_id = 0;
  std::uint64_t deadline_ns = 0;  // as FlushReq::deadline_ns

  void encode(Writer& writer) const;
  static Result<FinishReq> decode(Reader& reader);
};

// --- Server -> client notifications ------------------------------------------

struct OpEnqueued {
  std::uint64_t op_id = 0;

  void encode(Writer& writer) const;
  static Result<OpEnqueued> decode(Reader& reader);
};

struct OpComplete {
  std::uint64_t op_id = 0;
  StatusMsg status;
  // Read results: inline bytes (gRPC) or an shm slot reference.
  std::int64_t shm_slot = -1;
  Bytes data;
  std::uint64_t size = 0;
  // Set by decode_view() instead of `data`; views the decoded frame's
  // payload buffer, so it is valid only while that buffer lives. encode()
  // serializes it when non-empty (same contract as WriteData::data_view).
  ByteSpan data_view;

  void encode(Writer& writer) const;
  static Result<OpComplete> decode(Reader& reader);
  // Zero-copy decode: identical to decode() except the payload field lands
  // in `data_view` rather than being copied into `data`. Do not use with
  // reencode() or any reader whose buffer dies before the message.
  static Result<OpComplete> decode_view(Reader& reader);
};

// Round-trips any message type through its wire encoding (test helper).
template <typename T>
Result<T> reencode(const T& message) {
  Writer writer;
  message.encode(writer);
  Reader reader(ByteSpan{writer.bytes()});
  return T::decode(reader);
}

}  // namespace bf::proto
