#include "proto/messages.h"

namespace bf::proto {
namespace {

// Decode-loop helper: returns error status on malformed input, otherwise
// invokes `on_field` for every field and lets it consume the value.
template <typename F>
Status decode_fields(Reader& reader, F&& on_field) {
  while (!reader.at_end()) {
    auto header = reader.next_field();
    if (!header.ok()) return header.status();
    Status s = on_field(header.value());
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

template <typename T>
Status take_uint(Reader& reader, T& out) {
  auto value = reader.read_varint();
  if (!value.ok()) return value.status();
  out = static_cast<T>(value.value());
  return Status::Ok();
}

Status take_string(Reader& reader, std::string& out) {
  auto value = reader.read_string();
  if (!value.ok()) return value.status();
  out = std::move(value.value());
  return Status::Ok();
}

Status take_bytes(Reader& reader, Bytes& out) {
  auto value = reader.read_bytes();
  if (!value.ok()) return value.status();
  out = std::move(value.value());
  return Status::Ok();
}

Status take_bool(Reader& reader, bool& out) {
  std::uint64_t raw = 0;
  Status s = take_uint(reader, raw);
  if (!s.ok()) return s;
  out = raw != 0;
  return Status::Ok();
}

Status take_zigzag(Reader& reader, std::int64_t& out) {
  auto value = reader.read_zigzag();
  if (!value.ok()) return value.status();
  out = value.value();
  return Status::Ok();
}

}  // namespace

std::string_view to_string(Method method) {
  switch (method) {
    case Method::kOpenSession: return "OpenSession";
    case Method::kGetDeviceInfo: return "GetDeviceInfo";
    case Method::kProgram: return "Program";
    case Method::kCreateBuffer: return "CreateBuffer";
    case Method::kReleaseBuffer: return "ReleaseBuffer";
    case Method::kCreateKernel: return "CreateKernel";
    case Method::kCreateQueue: return "CreateQueue";
    case Method::kReleaseQueue: return "ReleaseQueue";
    case Method::kHealthCheck: return "HealthCheck";
    case Method::kEnqueueWrite: return "EnqueueWrite";
    case Method::kWriteData: return "WriteData";
    case Method::kEnqueueRead: return "EnqueueRead";
    case Method::kEnqueueKernel: return "EnqueueKernel";
    case Method::kFlush: return "Flush";
    case Method::kFinish: return "Finish";
    case Method::kOpEnqueued: return "OpEnqueued";
    case Method::kOpComplete: return "OpComplete";
  }
  return "Unknown";
}

bool is_idempotent(Method method) {
  switch (method) {
    case Method::kOpenSession:   // duplicate open re-acks the live session
    case Method::kGetDeviceInfo:
    case Method::kProgram:       // already-loaded bitstream is a no-op
    case Method::kHealthCheck:
      return true;
    default:
      return false;
  }
}

bool is_command_queue_method(Method method) {
  switch (method) {
    case Method::kEnqueueWrite:
    case Method::kWriteData:
    case Method::kEnqueueRead:
    case Method::kEnqueueKernel:
    case Method::kFlush:
    case Method::kFinish:
      return true;
    default:
      return false;
  }
}

// --- StatusMsg ---------------------------------------------------------------

StatusMsg StatusMsg::from(const Status& status) {
  return StatusMsg{static_cast<std::uint32_t>(status.code()),
                   status.message()};
}

Status StatusMsg::to_status() const {
  return Status(static_cast<StatusCode>(code), message);
}

void StatusMsg::encode(Writer& writer) const {
  writer.field_uint(1, code);
  if (!message.empty()) writer.field_string(2, message);
}

Result<StatusMsg> StatusMsg::decode(Reader& reader) {
  StatusMsg out;
  Status s = decode_fields(reader, [&](Reader::FieldHeader h) -> Status {
    switch (h.field) {
      case 1: return take_uint(reader, out.code);
      case 2: return take_string(reader, out.message);
      default: return reader.skip(h.type);
    }
  });
  if (!s.ok()) return s;
  return out;
}

// --- DeviceDescriptor ----------------------------------------------------------

void DeviceDescriptor::encode(Writer& writer) const {
  writer.field_string(1, id);
  writer.field_string(2, name);
  writer.field_string(3, vendor);
  writer.field_string(4, platform);
  writer.field_string(5, node);
  writer.field_string(6, accelerator);
  writer.field_uint(7, global_memory_bytes);
}

Result<DeviceDescriptor> DeviceDescriptor::decode(Reader& reader) {
  DeviceDescriptor out;
  Status s = decode_fields(reader, [&](Reader::FieldHeader h) -> Status {
    switch (h.field) {
      case 1: return take_string(reader, out.id);
      case 2: return take_string(reader, out.name);
      case 3: return take_string(reader, out.vendor);
      case 4: return take_string(reader, out.platform);
      case 5: return take_string(reader, out.node);
      case 6: return take_string(reader, out.accelerator);
      case 7: return take_uint(reader, out.global_memory_bytes);
      default: return reader.skip(h.type);
    }
  });
  if (!s.ok()) return s;
  return out;
}

// --- KernelArgMsg --------------------------------------------------------------

void KernelArgMsg::encode(Writer& writer) const {
  writer.field_uint(1, static_cast<std::uint64_t>(kind));
  switch (kind) {
    case Kind::kBuffer: writer.field_uint(2, buffer_id); break;
    case Kind::kInt: writer.field_int(3, int_value); break;
    case Kind::kDouble: writer.field_double(4, double_value); break;
    case Kind::kUnset: break;
  }
}

Result<KernelArgMsg> KernelArgMsg::decode(Reader& reader) {
  KernelArgMsg out;
  Status s = decode_fields(reader, [&](Reader::FieldHeader h) -> Status {
    switch (h.field) {
      case 1: {
        std::uint64_t raw = 0;
        Status st = take_uint(reader, raw);
        if (!st.ok()) return st;
        if (raw > 3) return InvalidArgument("bad kernel arg kind");
        out.kind = static_cast<Kind>(raw);
        return Status::Ok();
      }
      case 2: return take_uint(reader, out.buffer_id);
      case 3: return take_zigzag(reader, out.int_value);
      case 4: {
        auto value = reader.read_double();
        if (!value.ok()) return value.status();
        out.double_value = value.value();
        return Status::Ok();
      }
      default: return reader.skip(h.type);
    }
  });
  if (!s.ok()) return s;
  return out;
}

// --- OpenSession -----------------------------------------------------------------

void OpenSessionReq::encode(Writer& writer) const {
  writer.field_string(1, client_id);
  writer.field_bool(2, use_shared_memory);
}

Result<OpenSessionReq> OpenSessionReq::decode(Reader& reader) {
  OpenSessionReq out;
  Status s = decode_fields(reader, [&](Reader::FieldHeader h) -> Status {
    switch (h.field) {
      case 1: return take_string(reader, out.client_id);
      case 2: return take_bool(reader, out.use_shared_memory);
      default: return reader.skip(h.type);
    }
  });
  if (!s.ok()) return s;
  return out;
}

void OpenSessionResp::encode(Writer& writer) const {
  Writer status_writer;
  status.encode(status_writer);
  writer.field_bytes(1, ByteSpan{status_writer.bytes()});
  writer.field_uint(2, session_id);
  writer.field_bool(3, shared_memory_granted);
  Writer device_writer;
  device.encode(device_writer);
  writer.field_bytes(4, ByteSpan{device_writer.bytes()});
}

Result<OpenSessionResp> OpenSessionResp::decode(Reader& reader) {
  OpenSessionResp out;
  Status s = decode_fields(reader, [&](Reader::FieldHeader h) -> Status {
    switch (h.field) {
      case 1: {
        auto raw = reader.read_bytes();
        if (!raw.ok()) return raw.status();
        Reader sub(ByteSpan{raw.value()});
        auto decoded = StatusMsg::decode(sub);
        if (!decoded.ok()) return decoded.status();
        out.status = decoded.value();
        return Status::Ok();
      }
      case 2: return take_uint(reader, out.session_id);
      case 3: return take_bool(reader, out.shared_memory_granted);
      case 4: {
        auto raw = reader.read_bytes();
        if (!raw.ok()) return raw.status();
        Reader sub(ByteSpan{raw.value()});
        auto decoded = DeviceDescriptor::decode(sub);
        if (!decoded.ok()) return decoded.status();
        out.device = decoded.value();
        return Status::Ok();
      }
      default: return reader.skip(h.type);
    }
  });
  if (!s.ok()) return s;
  return out;
}

// --- Program ----------------------------------------------------------------------

void ProgramReq::encode(Writer& writer) const {
  writer.field_string(1, bitstream_id);
}

Result<ProgramReq> ProgramReq::decode(Reader& reader) {
  ProgramReq out;
  Status s = decode_fields(reader, [&](Reader::FieldHeader h) -> Status {
    switch (h.field) {
      case 1: return take_string(reader, out.bitstream_id);
      default: return reader.skip(h.type);
    }
  });
  if (!s.ok()) return s;
  return out;
}

void ProgramResp::encode(Writer& writer) const {
  Writer status_writer;
  status.encode(status_writer);
  writer.field_bytes(1, ByteSpan{status_writer.bytes()});
  writer.field_bool(2, reconfigured);
}

Result<ProgramResp> ProgramResp::decode(Reader& reader) {
  ProgramResp out;
  Status s = decode_fields(reader, [&](Reader::FieldHeader h) -> Status {
    switch (h.field) {
      case 1: {
        auto raw = reader.read_bytes();
        if (!raw.ok()) return raw.status();
        Reader sub(ByteSpan{raw.value()});
        auto decoded = StatusMsg::decode(sub);
        if (!decoded.ok()) return decoded.status();
        out.status = decoded.value();
        return Status::Ok();
      }
      case 2: return take_bool(reader, out.reconfigured);
      default: return reader.skip(h.type);
    }
  });
  if (!s.ok()) return s;
  return out;
}

// --- Buffers / kernels / queues ---------------------------------------------------

void CreateBufferReq::encode(Writer& writer) const {
  writer.field_uint(1, size);
}

Result<CreateBufferReq> CreateBufferReq::decode(Reader& reader) {
  CreateBufferReq out;
  Status s = decode_fields(reader, [&](Reader::FieldHeader h) -> Status {
    switch (h.field) {
      case 1: return take_uint(reader, out.size);
      default: return reader.skip(h.type);
    }
  });
  if (!s.ok()) return s;
  return out;
}

void CreateBufferResp::encode(Writer& writer) const {
  Writer status_writer;
  status.encode(status_writer);
  writer.field_bytes(1, ByteSpan{status_writer.bytes()});
  writer.field_uint(2, buffer_id);
}

Result<CreateBufferResp> CreateBufferResp::decode(Reader& reader) {
  CreateBufferResp out;
  Status s = decode_fields(reader, [&](Reader::FieldHeader h) -> Status {
    switch (h.field) {
      case 1: {
        auto raw = reader.read_bytes();
        if (!raw.ok()) return raw.status();
        Reader sub(ByteSpan{raw.value()});
        auto decoded = StatusMsg::decode(sub);
        if (!decoded.ok()) return decoded.status();
        out.status = decoded.value();
        return Status::Ok();
      }
      case 2: return take_uint(reader, out.buffer_id);
      default: return reader.skip(h.type);
    }
  });
  if (!s.ok()) return s;
  return out;
}

void ReleaseBufferReq::encode(Writer& writer) const {
  writer.field_uint(1, buffer_id);
}

Result<ReleaseBufferReq> ReleaseBufferReq::decode(Reader& reader) {
  ReleaseBufferReq out;
  Status s = decode_fields(reader, [&](Reader::FieldHeader h) -> Status {
    switch (h.field) {
      case 1: return take_uint(reader, out.buffer_id);
      default: return reader.skip(h.type);
    }
  });
  if (!s.ok()) return s;
  return out;
}

void CreateKernelReq::encode(Writer& writer) const {
  writer.field_string(1, name);
}

Result<CreateKernelReq> CreateKernelReq::decode(Reader& reader) {
  CreateKernelReq out;
  Status s = decode_fields(reader, [&](Reader::FieldHeader h) -> Status {
    switch (h.field) {
      case 1: return take_string(reader, out.name);
      default: return reader.skip(h.type);
    }
  });
  if (!s.ok()) return s;
  return out;
}

void CreateKernelResp::encode(Writer& writer) const {
  Writer status_writer;
  status.encode(status_writer);
  writer.field_bytes(1, ByteSpan{status_writer.bytes()});
  writer.field_uint(2, kernel_id);
  writer.field_uint(3, arity);
}

Result<CreateKernelResp> CreateKernelResp::decode(Reader& reader) {
  CreateKernelResp out;
  Status s = decode_fields(reader, [&](Reader::FieldHeader h) -> Status {
    switch (h.field) {
      case 1: {
        auto raw = reader.read_bytes();
        if (!raw.ok()) return raw.status();
        Reader sub(ByteSpan{raw.value()});
        auto decoded = StatusMsg::decode(sub);
        if (!decoded.ok()) return decoded.status();
        out.status = decoded.value();
        return Status::Ok();
      }
      case 2: return take_uint(reader, out.kernel_id);
      case 3: return take_uint(reader, out.arity);
      default: return reader.skip(h.type);
    }
  });
  if (!s.ok()) return s;
  return out;
}

void CreateQueueResp::encode(Writer& writer) const {
  Writer status_writer;
  status.encode(status_writer);
  writer.field_bytes(1, ByteSpan{status_writer.bytes()});
  writer.field_uint(2, queue_id);
}

Result<CreateQueueResp> CreateQueueResp::decode(Reader& reader) {
  CreateQueueResp out;
  Status s = decode_fields(reader, [&](Reader::FieldHeader h) -> Status {
    switch (h.field) {
      case 1: {
        auto raw = reader.read_bytes();
        if (!raw.ok()) return raw.status();
        Reader sub(ByteSpan{raw.value()});
        auto decoded = StatusMsg::decode(sub);
        if (!decoded.ok()) return decoded.status();
        out.status = decoded.value();
        return Status::Ok();
      }
      case 2: return take_uint(reader, out.queue_id);
      default: return reader.skip(h.type);
    }
  });
  if (!s.ok()) return s;
  return out;
}

void AckResp::encode(Writer& writer) const {
  Writer status_writer;
  status.encode(status_writer);
  writer.field_bytes(1, ByteSpan{status_writer.bytes()});
}

Result<AckResp> AckResp::decode(Reader& reader) {
  AckResp out;
  Status s = decode_fields(reader, [&](Reader::FieldHeader h) -> Status {
    switch (h.field) {
      case 1: {
        auto raw = reader.read_bytes();
        if (!raw.ok()) return raw.status();
        Reader sub(ByteSpan{raw.value()});
        auto decoded = StatusMsg::decode(sub);
        if (!decoded.ok()) return decoded.status();
        out.status = decoded.value();
        return Status::Ok();
      }
      default: return reader.skip(h.type);
    }
  });
  if (!s.ok()) return s;
  return out;
}

void HealthResp::encode(Writer& writer) const {
  Writer status_writer;
  status.encode(status_writer);
  writer.field_bytes(1, ByteSpan{status_writer.bytes()});
  writer.field_uint(2, queue_depth);
  writer.field_uint(3, sessions);
  writer.field_uint(4, ops_executed);
  writer.field_uint(5, accepting ? 1 : 0);
}

Result<HealthResp> HealthResp::decode(Reader& reader) {
  HealthResp out;
  Status s = decode_fields(reader, [&](Reader::FieldHeader h) -> Status {
    switch (h.field) {
      case 1: {
        auto raw = reader.read_bytes();
        if (!raw.ok()) return raw.status();
        Reader sub(ByteSpan{raw.value()});
        auto decoded = StatusMsg::decode(sub);
        if (!decoded.ok()) return decoded.status();
        out.status = decoded.value();
        return Status::Ok();
      }
      case 2: return take_uint(reader, out.queue_depth);
      case 3: return take_uint(reader, out.sessions);
      case 4: return take_uint(reader, out.ops_executed);
      case 5: return take_bool(reader, out.accepting);
      default: return reader.skip(h.type);
    }
  });
  if (!s.ok()) return s;
  return out;
}

// --- Command-queue ops --------------------------------------------------------

void EnqueueWriteReq::encode(Writer& writer) const {
  writer.field_uint(1, op_id);
  writer.field_uint(2, queue_id);
  writer.field_uint(3, buffer_id);
  writer.field_uint(4, offset);
  writer.field_uint(5, size);
  for (std::uint64_t wait : wait_op_ids) writer.field_uint(8, wait);
  if (trace_id != 0) {
    writer.field_uint(9, trace_id);
    writer.field_uint(10, parent_span);
  }
}

Result<EnqueueWriteReq> EnqueueWriteReq::decode(Reader& reader) {
  EnqueueWriteReq out;
  Status s = decode_fields(reader, [&](Reader::FieldHeader h) -> Status {
    switch (h.field) {
      case 1: return take_uint(reader, out.op_id);
      case 2: return take_uint(reader, out.queue_id);
      case 3: return take_uint(reader, out.buffer_id);
      case 4: return take_uint(reader, out.offset);
      case 5: return take_uint(reader, out.size);
      case 9: return take_uint(reader, out.trace_id);
      case 10: return take_uint(reader, out.parent_span);
      case 8: {
        std::uint64_t wait = 0;
        Status st = take_uint(reader, wait);
        if (!st.ok()) return st;
        out.wait_op_ids.push_back(wait);
        return Status::Ok();
      }
      default: return reader.skip(h.type);
    }
  });
  if (!s.ok()) return s;
  return out;
}

void WriteData::encode(Writer& writer) const {
  writer.field_uint(1, op_id);
  writer.field_uint(2, size);
  writer.field_int(3, shm_slot);
  const ByteSpan payload = data_view.empty() ? ByteSpan{data} : data_view;
  if (!payload.empty()) writer.field_bytes(4, payload);
}

Result<WriteData> WriteData::decode(Reader& reader) {
  WriteData out;
  Status s = decode_fields(reader, [&](Reader::FieldHeader h) -> Status {
    switch (h.field) {
      case 1: return take_uint(reader, out.op_id);
      case 2: return take_uint(reader, out.size);
      case 3: return take_zigzag(reader, out.shm_slot);
      case 4: return take_bytes(reader, out.data);
      default: return reader.skip(h.type);
    }
  });
  if (!s.ok()) return s;
  return out;
}

void EnqueueReadReq::encode(Writer& writer) const {
  writer.field_uint(1, op_id);
  writer.field_uint(2, queue_id);
  writer.field_uint(3, buffer_id);
  writer.field_uint(4, offset);
  writer.field_uint(5, size);
  writer.field_bool(6, use_shared_memory);
  for (std::uint64_t wait : wait_op_ids) writer.field_uint(8, wait);
  if (trace_id != 0) {
    writer.field_uint(9, trace_id);
    writer.field_uint(10, parent_span);
  }
}

Result<EnqueueReadReq> EnqueueReadReq::decode(Reader& reader) {
  EnqueueReadReq out;
  Status s = decode_fields(reader, [&](Reader::FieldHeader h) -> Status {
    switch (h.field) {
      case 1: return take_uint(reader, out.op_id);
      case 2: return take_uint(reader, out.queue_id);
      case 3: return take_uint(reader, out.buffer_id);
      case 4: return take_uint(reader, out.offset);
      case 5: return take_uint(reader, out.size);
      case 6: return take_bool(reader, out.use_shared_memory);
      case 9: return take_uint(reader, out.trace_id);
      case 10: return take_uint(reader, out.parent_span);
      case 8: {
        std::uint64_t wait = 0;
        Status st = take_uint(reader, wait);
        if (!st.ok()) return st;
        out.wait_op_ids.push_back(wait);
        return Status::Ok();
      }
      default: return reader.skip(h.type);
    }
  });
  if (!s.ok()) return s;
  return out;
}

void EnqueueKernelReq::encode(Writer& writer) const {
  writer.field_uint(1, op_id);
  writer.field_uint(2, queue_id);
  writer.field_uint(3, kernel_id);
  for (const KernelArgMsg& arg : args) {
    Writer arg_writer;
    arg.encode(arg_writer);
    writer.field_bytes(4, ByteSpan{arg_writer.bytes()});
  }
  writer.field_uint(5, global_size[0]);
  writer.field_uint(6, global_size[1]);
  writer.field_uint(7, global_size[2]);
  for (std::uint64_t wait : wait_op_ids) writer.field_uint(8, wait);
  if (trace_id != 0) {
    writer.field_uint(9, trace_id);
    writer.field_uint(10, parent_span);
  }
}

Result<EnqueueKernelReq> EnqueueKernelReq::decode(Reader& reader) {
  EnqueueKernelReq out;
  Status s = decode_fields(reader, [&](Reader::FieldHeader h) -> Status {
    switch (h.field) {
      case 1: return take_uint(reader, out.op_id);
      case 2: return take_uint(reader, out.queue_id);
      case 3: return take_uint(reader, out.kernel_id);
      case 4: {
        auto raw = reader.read_bytes();
        if (!raw.ok()) return raw.status();
        Reader sub(ByteSpan{raw.value()});
        auto decoded = KernelArgMsg::decode(sub);
        if (!decoded.ok()) return decoded.status();
        out.args.push_back(decoded.value());
        return Status::Ok();
      }
      case 5: return take_uint(reader, out.global_size[0]);
      case 6: return take_uint(reader, out.global_size[1]);
      case 7: return take_uint(reader, out.global_size[2]);
      case 9: return take_uint(reader, out.trace_id);
      case 10: return take_uint(reader, out.parent_span);
      case 8: {
        std::uint64_t wait = 0;
        Status st = take_uint(reader, wait);
        if (!st.ok()) return st;
        out.wait_op_ids.push_back(wait);
        return Status::Ok();
      }
      default: return reader.skip(h.type);
    }
  });
  if (!s.ok()) return s;
  return out;
}

void FlushReq::encode(Writer& writer) const {
  writer.field_uint(1, queue_id);
  if (deadline_ns != 0) {
    writer.field_uint(2, deadline_ns);
  }
}

Result<FlushReq> FlushReq::decode(Reader& reader) {
  FlushReq out;
  Status s = decode_fields(reader, [&](Reader::FieldHeader h) -> Status {
    switch (h.field) {
      case 1: return take_uint(reader, out.queue_id);
      case 2: return take_uint(reader, out.deadline_ns);
      default: return reader.skip(h.type);
    }
  });
  if (!s.ok()) return s;
  return out;
}

void FinishReq::encode(Writer& writer) const {
  writer.field_uint(1, op_id);
  writer.field_uint(2, queue_id);
  if (deadline_ns != 0) {
    writer.field_uint(3, deadline_ns);
  }
}

Result<FinishReq> FinishReq::decode(Reader& reader) {
  FinishReq out;
  Status s = decode_fields(reader, [&](Reader::FieldHeader h) -> Status {
    switch (h.field) {
      case 1: return take_uint(reader, out.op_id);
      case 2: return take_uint(reader, out.queue_id);
      case 3: return take_uint(reader, out.deadline_ns);
      default: return reader.skip(h.type);
    }
  });
  if (!s.ok()) return s;
  return out;
}

// --- Notifications -------------------------------------------------------------

void OpEnqueued::encode(Writer& writer) const {
  writer.field_uint(1, op_id);
}

Result<OpEnqueued> OpEnqueued::decode(Reader& reader) {
  OpEnqueued out;
  Status s = decode_fields(reader, [&](Reader::FieldHeader h) -> Status {
    switch (h.field) {
      case 1: return take_uint(reader, out.op_id);
      default: return reader.skip(h.type);
    }
  });
  if (!s.ok()) return s;
  return out;
}

void OpComplete::encode(Writer& writer) const {
  writer.field_uint(1, op_id);
  Writer status_writer;
  status.encode(status_writer);
  writer.field_bytes(2, ByteSpan{status_writer.bytes()});
  writer.field_int(3, shm_slot);
  const ByteSpan payload = data_view.empty() ? ByteSpan{data} : data_view;
  if (!payload.empty()) writer.field_bytes(4, payload);
  writer.field_uint(5, size);
}

namespace {

// Shared field loop for OpComplete::decode / decode_view; `view` selects
// whether the payload field is copied or aliased.
Result<OpComplete> decode_op_complete(Reader& reader, bool view) {
  OpComplete out;
  Status s = decode_fields(reader, [&](Reader::FieldHeader h) -> Status {
    switch (h.field) {
      case 1: return take_uint(reader, out.op_id);
      case 2: {
        auto raw = reader.read_bytes();
        if (!raw.ok()) return raw.status();
        Reader sub(ByteSpan{raw.value()});
        auto decoded = StatusMsg::decode(sub);
        if (!decoded.ok()) return decoded.status();
        out.status = decoded.value();
        return Status::Ok();
      }
      case 3: return take_zigzag(reader, out.shm_slot);
      case 4: {
        if (!view) return take_bytes(reader, out.data);
        auto span = reader.read_bytes_view();
        if (!span.ok()) return span.status();
        out.data_view = span.value();
        return Status::Ok();
      }
      case 5: return take_uint(reader, out.size);
      default: return reader.skip(h.type);
    }
  });
  if (!s.ok()) return s;
  return out;
}

}  // namespace

Result<OpComplete> OpComplete::decode(Reader& reader) {
  return decode_op_complete(reader, /*view=*/false);
}

Result<OpComplete> OpComplete::decode_view(Reader& reader) {
  return decode_op_complete(reader, /*view=*/true);
}

}  // namespace bf::proto
