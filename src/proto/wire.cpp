#include "proto/wire.h"

#include <cstring>

#include "common/arena.h"

namespace bf::proto {

void Writer::reserve(std::size_t capacity) {
  if (capacity <= buffer_.capacity()) return;
  // Arena-backed growth: swap in a pooled buffer instead of letting Bytes
  // round-trip through the heap. The retired storage (typically the inline
  // block early in a message, or a smaller pooled buffer) goes back to its
  // free list.
  Bytes grown = arena::acquire(capacity);
  grown.resize_for_overwrite(buffer_.size());
  std::memcpy(grown.data(), buffer_.data(), buffer_.size());
  Bytes retired = std::move(buffer_);
  buffer_ = std::move(grown);
  arena::recycle(std::move(retired));
}

void Writer::varint(std::uint64_t value) {
  // Single-byte fast path: tags and small lengths dominate real messages.
  if (value < 0x80) {
    buffer_.push_back(static_cast<std::uint8_t>(value));
    return;
  }
  std::uint8_t encoded[10];
  std::size_t length = 0;
  while (value >= 0x80) {
    encoded[length++] = static_cast<std::uint8_t>(value) | 0x80U;
    value >>= 7;
  }
  encoded[length++] = static_cast<std::uint8_t>(value);
  buffer_.insert(buffer_.end(), encoded, encoded + length);
}

void Writer::tag(std::uint32_t field, WireType type) {
  varint((static_cast<std::uint64_t>(field) << 3) |
         static_cast<std::uint64_t>(type));
}

void Writer::field_uint(std::uint32_t field, std::uint64_t value) {
  tag(field, WireType::kVarint);
  varint(value);
}

void Writer::field_int(std::uint32_t field, std::int64_t value) {
  tag(field, WireType::kVarint);
  varint(zigzag_encode(value));
}

void Writer::field_bool(std::uint32_t field, bool value) {
  field_uint(field, value ? 1 : 0);
}

void Writer::field_double(std::uint32_t field, double value) {
  tag(field, WireType::kFixed64);
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

void Writer::field_string(std::uint32_t field, std::string_view value) {
  field_bytes(field, as_bytes(value.data(), value.size()));
}

void Writer::field_bytes(std::uint32_t field, ByteSpan value) {
  // One reservation for tag + length + payload keeps large payload fields
  // from growing the buffer in doubling steps. Writer::reserve (not
  // Bytes::reserve) so the backing store comes from the arena free lists —
  // this is the encode that carries WriteData/OpComplete payloads, the
  // hot path's two biggest buffers.
  reserve(buffer_.size() + value.size() + 16);
  tag(field, WireType::kLengthDelimited);
  varint(value.size());
  buffer_.insert(buffer_.end(), value.begin(), value.end());
}

Result<Reader::FieldHeader> Reader::next_field() {
  auto header = read_varint();
  if (!header.ok()) return header.status();
  FieldHeader out;
  out.field = static_cast<std::uint32_t>(header.value() >> 3);
  const auto type = static_cast<std::uint8_t>(header.value() & 0x7U);
  switch (type) {
    case 0: out.type = WireType::kVarint; break;
    case 1: out.type = WireType::kFixed64; break;
    case 2: out.type = WireType::kLengthDelimited; break;
    case 5: out.type = WireType::kFixed32; break;
    default:
      return InvalidArgument("unsupported wire type " + std::to_string(type));
  }
  if (out.field == 0) return InvalidArgument("field number 0 is invalid");
  return out;
}

Result<std::uint64_t> Reader::read_varint() {
  std::uint64_t value = 0;
  int shift = 0;
  while (pos_ < data_.size()) {
    const std::uint8_t byte = data_[pos_++];
    if (shift >= 64) return InvalidArgument("varint too long");
    value |= static_cast<std::uint64_t>(byte & 0x7FU) << shift;
    if ((byte & 0x80U) == 0) return value;
    shift += 7;
  }
  return InvalidArgument("truncated varint");
}

Result<std::int64_t> Reader::read_zigzag() {
  auto raw = read_varint();
  if (!raw.ok()) return raw.status();
  return zigzag_decode(raw.value());
}

Result<double> Reader::read_double() {
  if (remaining() < 8) return InvalidArgument("truncated fixed64");
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Result<std::string> Reader::read_string() {
  auto raw = read_bytes();
  if (!raw.ok()) return raw.status();
  return std::string(raw.value().begin(), raw.value().end());
}

Result<Bytes> Reader::read_bytes() {
  auto view = read_bytes_view();
  if (!view.ok()) return view.status();
  // Pooled copy-out: large payload fields (WriteData bodies) reuse arena
  // storage; recycling the decoded value after use closes the loop.
  Bytes out = arena::acquire(view.value().size());
  out.resize_for_overwrite(view.value().size());
  if (!view.value().empty()) {
    std::memcpy(out.data(), view.value().data(), view.value().size());
  }
  return out;
}

Result<ByteSpan> Reader::read_bytes_view() {
  auto length = read_varint();
  if (!length.ok()) return length.status();
  if (length.value() > remaining()) {
    return InvalidArgument("truncated length-delimited field");
  }
  ByteSpan out = data_.subspan(pos_, length.value());
  pos_ += length.value();
  return out;
}

Status Reader::skip(WireType type) {
  switch (type) {
    case WireType::kVarint: {
      auto value = read_varint();
      return value.ok() ? Status::Ok() : value.status();
    }
    case WireType::kFixed64: {
      if (remaining() < 8) return InvalidArgument("truncated fixed64");
      pos_ += 8;
      return Status::Ok();
    }
    case WireType::kFixed32: {
      if (remaining() < 4) return InvalidArgument("truncated fixed32");
      pos_ += 4;
      return Status::Ok();
    }
    case WireType::kLengthDelimited: {
      auto value = read_bytes();
      return value.ok() ? Status::Ok() : value.status();
    }
  }
  return InvalidArgument("unknown wire type");
}

}  // namespace bf::proto
