// Prometheus-style metrics: counters, gauges, histograms, a registry and a
// text exposition format.
//
// Device Managers export FPGA time-utilization and request counters through
// this module; the Accelerators Registry's Metrics Gatherer scrapes them
// (paper §III-C: "receives Device Managers performance metrics from a
// Prometheus service").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace bf::metrics {

using Labels = std::map<std::string, std::string>;

// OpenMetrics-style exemplar: one concrete observation kept per histogram
// bucket, linking the aggregate to the request trace that produced it
// (docs/TRACING.md). `has` distinguishes "no traced observation yet".
struct Exemplar {
  double value = 0.0;
  std::uint64_t trace_id = 0;
  bool has = false;
};

class Counter {
 public:
  void increment(double amount = 1.0);
  [[nodiscard]] double value() const;

 private:
  mutable std::mutex mutex_;
  double value_ = 0.0;
};

class Gauge {
 public:
  void set(double value);
  void add(double amount);
  [[nodiscard]] double value() const;

 private:
  mutable std::mutex mutex_;
  double value_ = 0.0;
};

class Histogram {
 public:
  // Bucket upper bounds (ascending); +Inf is implicit.
  explicit Histogram(std::vector<double> upper_bounds);

  // Records an observation; a non-zero exemplar_trace_id additionally
  // remembers (value, trace id) as the bucket's exemplar so the exposition
  // links slow buckets to the traces that landed in them.
  void observe(double value, std::uint64_t exemplar_trace_id = 0);
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  // Cumulative count for bucket i (as exposed by Prometheus).
  [[nodiscard]] std::vector<std::uint64_t> cumulative_buckets() const;
  // Per-bucket exemplars (last = +Inf), parallel to cumulative_buckets().
  [[nodiscard]] std::vector<Exemplar> exemplars() const;
  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return bounds_;
  }
  // Estimated quantile via linear interpolation within buckets.
  [[nodiscard]] double quantile(double q) const;

  // Default latency buckets: 0.5 ms .. 8 s, roughly exponential.
  static std::vector<double> default_latency_buckets_ms();

 private:
  std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> counts_;  // per-bucket, last = +Inf
  std::vector<Exemplar> exemplars_;    // per-bucket, last = +Inf
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

// A named, labelled metric family registry with text exposition.
class Registry {
 public:
  std::shared_ptr<Counter> counter(const std::string& name,
                                   const Labels& labels = {});
  std::shared_ptr<Gauge> gauge(const std::string& name,
                               const Labels& labels = {});
  std::shared_ptr<Histogram> histogram(
      const std::string& name, const Labels& labels = {},
      std::vector<double> upper_bounds = Histogram::default_latency_buckets_ms());

  // Prometheus text format (suitable for a /metrics endpoint).
  [[nodiscard]] std::string expose() const;

  [[nodiscard]] std::size_t series_count() const;

 private:
  struct Series {
    std::string name;
    Labels labels;
    std::shared_ptr<Counter> counter;
    std::shared_ptr<Gauge> gauge;
    std::shared_ptr<Histogram> histogram;
  };

  static std::string series_key(const std::string& name, const Labels& labels);

  mutable std::mutex mutex_;
  std::map<std::string, Series> series_;
};

// Renders labels as `{k="v",...}` with label *values* escaped per the
// Prometheus text format (backslash, double quote, newline).
std::string format_labels(const Labels& labels);

// One parsed line of the text exposition format.
struct Sample {
  std::string name;
  Labels labels;
  double value = 0.0;
  // Exemplar suffix (` # {trace_id="..."} v`), empty trace id when absent.
  std::string exemplar_trace_id;
  double exemplar_value = 0.0;
};

// Parses Registry::expose() output back into samples (label escapes
// undone, exemplar suffixes captured) — the round-trip check a scraper
// like the Registry's Metrics Gatherer relies on.
Result<std::vector<Sample>> parse_exposition(const std::string& text);

}  // namespace bf::metrics
