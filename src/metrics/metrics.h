// Prometheus-style metrics: counters, gauges, histograms, a registry and a
// text exposition format.
//
// Device Managers export FPGA time-utilization and request counters through
// this module; the Accelerators Registry's Metrics Gatherer scrapes them
// (paper §III-C: "receives Device Managers performance metrics from a
// Prometheus service").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bf::metrics {

using Labels = std::map<std::string, std::string>;

class Counter {
 public:
  void increment(double amount = 1.0);
  [[nodiscard]] double value() const;

 private:
  mutable std::mutex mutex_;
  double value_ = 0.0;
};

class Gauge {
 public:
  void set(double value);
  void add(double amount);
  [[nodiscard]] double value() const;

 private:
  mutable std::mutex mutex_;
  double value_ = 0.0;
};

class Histogram {
 public:
  // Bucket upper bounds (ascending); +Inf is implicit.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  // Cumulative count for bucket i (as exposed by Prometheus).
  [[nodiscard]] std::vector<std::uint64_t> cumulative_buckets() const;
  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return bounds_;
  }
  // Estimated quantile via linear interpolation within buckets.
  [[nodiscard]] double quantile(double q) const;

  // Default latency buckets: 0.5 ms .. 8 s, roughly exponential.
  static std::vector<double> default_latency_buckets_ms();

 private:
  std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> counts_;  // per-bucket, last = +Inf
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

// A named, labelled metric family registry with text exposition.
class Registry {
 public:
  std::shared_ptr<Counter> counter(const std::string& name,
                                   const Labels& labels = {});
  std::shared_ptr<Gauge> gauge(const std::string& name,
                               const Labels& labels = {});
  std::shared_ptr<Histogram> histogram(
      const std::string& name, const Labels& labels = {},
      std::vector<double> upper_bounds = Histogram::default_latency_buckets_ms());

  // Prometheus text format (suitable for a /metrics endpoint).
  [[nodiscard]] std::string expose() const;

  [[nodiscard]] std::size_t series_count() const;

 private:
  struct Series {
    std::string name;
    Labels labels;
    std::shared_ptr<Counter> counter;
    std::shared_ptr<Gauge> gauge;
    std::shared_ptr<Histogram> histogram;
  };

  static std::string series_key(const std::string& name, const Labels& labels);

  mutable std::mutex mutex_;
  std::map<std::string, Series> series_;
};

std::string format_labels(const Labels& labels);

}  // namespace bf::metrics
