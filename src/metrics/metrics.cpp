#include "metrics/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/status.h"

namespace bf::metrics {

void Counter::increment(double amount) {
  BF_CHECK(amount >= 0.0);
  std::lock_guard lock(mutex_);
  value_ += amount;
}

double Counter::value() const {
  std::lock_guard lock(mutex_);
  return value_;
}

void Gauge::set(double value) {
  std::lock_guard lock(mutex_);
  value_ = value;
}

void Gauge::add(double amount) {
  std::lock_guard lock(mutex_);
  value_ += amount;
}

double Gauge::value() const {
  std::lock_guard lock(mutex_);
  return value_;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1, 0),
      exemplars_(bounds_.size() + 1) {
  BF_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::observe(double value, std::uint64_t exemplar_trace_id) {
  std::lock_guard lock(mutex_);
  std::size_t bucket = bounds_.size();  // +Inf
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++count_;
  sum_ += value;
  if (exemplar_trace_id != 0) {
    exemplars_[bucket] = Exemplar{value, exemplar_trace_id, true};
  }
}

std::uint64_t Histogram::count() const {
  std::lock_guard lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard lock(mutex_);
  return sum_;
}

std::vector<std::uint64_t> Histogram::cumulative_buckets() const {
  std::lock_guard lock(mutex_);
  std::vector<std::uint64_t> out(counts_.size());
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    running += counts_[i];
    out[i] = running;
  }
  return out;
}

std::vector<Exemplar> Histogram::exemplars() const {
  std::lock_guard lock(mutex_);
  return exemplars_;
}

double Histogram::quantile(double q) const {
  BF_CHECK(q >= 0.0 && q <= 1.0);
  std::lock_guard lock(mutex_);
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t next = running + counts_[i];
    if (static_cast<double>(next) >= target) {
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = i < bounds_.size() ? bounds_[i] : lower * 2.0;
      if (counts_[i] == 0) return upper;
      const double fraction =
          (target - static_cast<double>(running)) /
          static_cast<double>(counts_[i]);
      return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
    }
    running = next;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> Histogram::default_latency_buckets_ms() {
  return {0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192};
}

std::shared_ptr<Counter> Registry::counter(const std::string& name,
                                           const Labels& labels) {
  std::lock_guard lock(mutex_);
  Series& series = series_[series_key(name, labels)];
  if (!series.counter) {
    series.name = name;
    series.labels = labels;
    series.counter = std::make_shared<Counter>();
  }
  return series.counter;
}

std::shared_ptr<Gauge> Registry::gauge(const std::string& name,
                                       const Labels& labels) {
  std::lock_guard lock(mutex_);
  Series& series = series_[series_key(name, labels)];
  if (!series.gauge) {
    series.name = name;
    series.labels = labels;
    series.gauge = std::make_shared<Gauge>();
  }
  return series.gauge;
}

std::shared_ptr<Histogram> Registry::histogram(const std::string& name,
                                               const Labels& labels,
                                               std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  Series& series = series_[series_key(name, labels)];
  if (!series.histogram) {
    series.name = name;
    series.labels = labels;
    series.histogram = std::make_shared<Histogram>(std::move(bounds));
  }
  return series.histogram;
}

std::string Registry::expose() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  char buf[64];
  auto number = [&buf](double value) -> const char* {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return buf;
  };
  for (const auto& [key, series] : series_) {
    const std::string labels = format_labels(series.labels);
    if (series.counter) {
      out << series.name << labels << ' '
          << number(series.counter->value()) << '\n';
    }
    if (series.gauge) {
      out << series.name << labels << ' ' << number(series.gauge->value())
          << '\n';
    }
    if (series.histogram) {
      const auto& bounds = series.histogram->upper_bounds();
      const auto buckets = series.histogram->cumulative_buckets();
      const auto exemplars = series.histogram->exemplars();
      for (std::size_t i = 0; i < buckets.size(); ++i) {
        Labels with_le = series.labels;
        with_le["le"] =
            i < bounds.size() ? std::string(number(bounds[i])) : "+Inf";
        out << series.name << "_bucket" << format_labels(with_le) << ' '
            << buckets[i];
        if (exemplars[i].has) {
          // OpenMetrics exemplar: jump from a bucket to a concrete trace.
          char hex[32];
          std::snprintf(hex, sizeof(hex), "%016llx",
                        static_cast<unsigned long long>(
                            exemplars[i].trace_id));
          out << " # {trace_id=\"" << hex << "\"} "
              << number(exemplars[i].value);
        }
        out << '\n';
      }
      out << series.name << "_sum" << labels << ' '
          << number(series.histogram->sum()) << '\n';
      out << series.name << "_count" << labels << ' '
          << series.histogram->count() << '\n';
    }
  }
  return out.str();
}

std::size_t Registry::series_count() const {
  std::lock_guard lock(mutex_);
  return series_.size();
}

std::string Registry::series_key(const std::string& name,
                                 const Labels& labels) {
  return name + format_labels(labels);
}

namespace {

// Prometheus text-format escaping for label values.
std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string format_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += escape_label_value(value);
    out += '"';
  }
  out += '}';
  return out;
}

Result<std::vector<Sample>> parse_exposition(const std::string& text) {
  std::vector<Sample> samples;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  auto fail = [&line_no](const std::string& what) {
    return InvalidArgument("exposition line " + std::to_string(line_no) +
                           ": " + what);
  };
  // Parses a `{k="v",...}` block starting at `i` (on the '{').
  auto parse_labels = [&](const std::string& line, std::size_t& i,
                          Labels& out) -> Status {
    ++i;  // '{'
    while (i < line.size() && line[i] != '}') {
      const std::size_t eq = line.find('=', i);
      if (eq == std::string::npos || eq + 1 >= line.size() ||
          line[eq + 1] != '"') {
        return fail("malformed label");
      }
      const std::string key = line.substr(i, eq - i);
      std::string value;
      std::size_t j = eq + 2;
      for (; j < line.size() && line[j] != '"'; ++j) {
        if (line[j] == '\\' && j + 1 < line.size()) {
          ++j;
          value += line[j] == 'n' ? '\n' : line[j];
        } else {
          value += line[j];
        }
      }
      if (j >= line.size()) return fail("unterminated label value");
      out[key] = value;
      i = j + 1;  // past closing quote
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size()) return fail("unterminated label block");
    ++i;  // '}'
    return Status::Ok();
  };
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty() || line[0] == '#') continue;  // comment / HELP / TYPE
    Sample sample;
    std::size_t i = line.find_first_of("{ ");
    if (i == std::string::npos) return fail("no value");
    sample.name = line.substr(0, i);
    if (line[i] == '{') {
      if (Status s = parse_labels(line, i, sample.labels); !s.ok()) return s;
    }
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t value_end = line.find(' ', i);
    if (value_end == std::string::npos) value_end = line.size();
    try {
      sample.value = std::stod(line.substr(i, value_end - i));
    } catch (...) {
      return fail("unparseable value '" + line.substr(i, value_end - i) +
                  "'");
    }
    // Optional exemplar suffix: ` # {trace_id="..."} value`.
    std::size_t hash = line.find(" # ", value_end);
    if (hash != std::string::npos) {
      std::size_t e = hash + 3;
      if (e >= line.size() || line[e] != '{') return fail("malformed exemplar");
      Labels exemplar_labels;
      if (Status s = parse_labels(line, e, exemplar_labels); !s.ok()) {
        return s;
      }
      sample.exemplar_trace_id = exemplar_labels["trace_id"];
      while (e < line.size() && line[e] == ' ') ++e;
      try {
        sample.exemplar_value = std::stod(line.substr(e));
      } catch (...) {
        return fail("unparseable exemplar value");
      }
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

}  // namespace bf::metrics
