#include "metrics/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/status.h"

namespace bf::metrics {

void Counter::increment(double amount) {
  BF_CHECK(amount >= 0.0);
  std::lock_guard lock(mutex_);
  value_ += amount;
}

double Counter::value() const {
  std::lock_guard lock(mutex_);
  return value_;
}

void Gauge::set(double value) {
  std::lock_guard lock(mutex_);
  value_ = value;
}

void Gauge::add(double amount) {
  std::lock_guard lock(mutex_);
  value_ += amount;
}

double Gauge::value() const {
  std::lock_guard lock(mutex_);
  return value_;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  BF_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::observe(double value) {
  std::lock_guard lock(mutex_);
  std::size_t bucket = bounds_.size();  // +Inf
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++count_;
  sum_ += value;
}

std::uint64_t Histogram::count() const {
  std::lock_guard lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard lock(mutex_);
  return sum_;
}

std::vector<std::uint64_t> Histogram::cumulative_buckets() const {
  std::lock_guard lock(mutex_);
  std::vector<std::uint64_t> out(counts_.size());
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    running += counts_[i];
    out[i] = running;
  }
  return out;
}

double Histogram::quantile(double q) const {
  BF_CHECK(q >= 0.0 && q <= 1.0);
  std::lock_guard lock(mutex_);
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t next = running + counts_[i];
    if (static_cast<double>(next) >= target) {
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = i < bounds_.size() ? bounds_[i] : lower * 2.0;
      if (counts_[i] == 0) return upper;
      const double fraction =
          (target - static_cast<double>(running)) /
          static_cast<double>(counts_[i]);
      return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
    }
    running = next;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> Histogram::default_latency_buckets_ms() {
  return {0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192};
}

std::shared_ptr<Counter> Registry::counter(const std::string& name,
                                           const Labels& labels) {
  std::lock_guard lock(mutex_);
  Series& series = series_[series_key(name, labels)];
  if (!series.counter) {
    series.name = name;
    series.labels = labels;
    series.counter = std::make_shared<Counter>();
  }
  return series.counter;
}

std::shared_ptr<Gauge> Registry::gauge(const std::string& name,
                                       const Labels& labels) {
  std::lock_guard lock(mutex_);
  Series& series = series_[series_key(name, labels)];
  if (!series.gauge) {
    series.name = name;
    series.labels = labels;
    series.gauge = std::make_shared<Gauge>();
  }
  return series.gauge;
}

std::shared_ptr<Histogram> Registry::histogram(const std::string& name,
                                               const Labels& labels,
                                               std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  Series& series = series_[series_key(name, labels)];
  if (!series.histogram) {
    series.name = name;
    series.labels = labels;
    series.histogram = std::make_shared<Histogram>(std::move(bounds));
  }
  return series.histogram;
}

std::string Registry::expose() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  char buf[64];
  auto number = [&buf](double value) -> const char* {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return buf;
  };
  for (const auto& [key, series] : series_) {
    const std::string labels = format_labels(series.labels);
    if (series.counter) {
      out << series.name << labels << ' '
          << number(series.counter->value()) << '\n';
    }
    if (series.gauge) {
      out << series.name << labels << ' ' << number(series.gauge->value())
          << '\n';
    }
    if (series.histogram) {
      const auto& bounds = series.histogram->upper_bounds();
      const auto buckets = series.histogram->cumulative_buckets();
      for (std::size_t i = 0; i < buckets.size(); ++i) {
        Labels with_le = series.labels;
        with_le["le"] =
            i < bounds.size() ? std::string(number(bounds[i])) : "+Inf";
        out << series.name << "_bucket" << format_labels(with_le) << ' '
            << buckets[i] << '\n';
      }
      out << series.name << "_sum" << labels << ' '
          << number(series.histogram->sum()) << '\n';
      out << series.name << "_count" << labels << ' '
          << series.histogram->count() << '\n';
    }
  }
  return out.str();
}

std::size_t Registry::series_count() const {
  std::lock_guard lock(mutex_);
  return series_.size();
}

std::string Registry::series_key(const std::string& name,
                                 const Labels& labels) {
  return name + format_labels(labels);
}

std::string format_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += value;
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace bf::metrics
