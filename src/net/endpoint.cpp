#include "net/endpoint.h"

#include <algorithm>

#include "common/log.h"
#include "fault/injector.h"

namespace bf::net {
namespace {

// Extra in-flight latency charged when the delay fault fires: on the order
// of the ~2 ms control-message floor, so delayed frames genuinely land in a
// different spot of the modeled timeline.
constexpr vt::Duration kInjectedDelay = vt::Duration::millis(2);

}  // namespace

Connection::Connection(ServerEndpoint* endpoint, std::string peer,
                       TransportCost cost, vt::Gate::Source source,
                       vt::Time connect_time)
    : endpoint_(endpoint),
      peer_(std::move(peer)),
      cost_(cost),
      source_(std::move(source)),
      client_bound_(connect_time),
      last_arrival_(connect_time),
      last_send_(connect_time) {}

Connection::~Connection() { close(); }

Frame Connection::make_request(proto::Method method, std::uint64_t correlation,
                               Bytes payload, vt::Cursor& cursor) {
  Frame frame;
  frame.kind = Frame::Kind::kRequest;
  frame.method = method;
  frame.correlation = correlation;
  frame.payload = std::move(payload);
  cursor.advance(cost_.send_cost(frame.wire_size()));
  frame.send_time = cursor.now();
  frame.arrival_time =
      frame.send_time + cost_.deliver_cost(frame.wire_size());
  return frame;
}

Frame Connection::make_server_frame(Frame::Kind kind, proto::Method method,
                                    std::uint64_t correlation, Bytes payload,
                                    vt::Time server_time) {
  Frame frame;
  frame.kind = kind;
  frame.method = method;
  frame.correlation = correlation;
  frame.payload = std::move(payload);
  frame.send_time = server_time;
  frame.arrival_time = server_time + cost_.deliver_cost(frame.wire_size());
  return frame;
}

Result<Frame> Connection::call(proto::Method method, Bytes payload,
                               vt::Cursor& cursor) {
  return call(method, std::move(payload), cursor, CallOptions{});
}

Result<Frame> Connection::call(proto::Method method, Bytes payload,
                               vt::Cursor& cursor, const CallOptions& options,
                               const trace::SpanContext& trace) {
  const unsigned attempts = std::max(1u, options.retry.max_attempts);
  Backoff backoff(options.retry);
  for (unsigned attempt = 1;; ++attempt) {
    const bool last = attempt >= attempts;
    // Retain the payload for a possible re-send; the final attempt moves it.
    auto result =
        call_attempt(method, last ? std::move(payload) : Bytes(payload),
                     cursor, options, trace);
    if (result.ok() || last || !is_retryable(result.status().code()) ||
        closed_.load()) {
      return result;
    }
    const vt::Duration delay = backoff.next();
    BF_LOG_WARN("net") << "retrying " << proto::to_string(method) << " on "
                       << peer_ << " after " << result.status().to_string()
                       << " (attempt " << attempt << "/" << attempts
                       << ", backoff " << delay.us() << "us)";
    cursor.advance(delay);
  }
}

Result<Frame> Connection::call_attempt(proto::Method method, Bytes payload,
                                       vt::Cursor& cursor,
                                       const CallOptions& options,
                                       const trace::SpanContext& trace) {
  if (closed_.load()) return Unavailable("connection closed");
  if (fault::should_fire(fault::site::kNetSendConnLoss)) {
    close();
    return Unavailable("injected fault: connection lost");
  }
  // The deadline is anchored to the attempt's start, before transport costs
  // accrue — exactly a gRPC per-call deadline.
  const vt::Time deadline = options.deadline_from(cursor.now());
  std::uint64_t call_id = 0;
  {
    std::lock_guard lock(pending_mutex_);
    call_id = next_call_id_++;
    pending_replies_[call_id] = std::nullopt;
  }

  Frame frame = make_request(method, call_id, std::move(payload), cursor);
  frame.trace = trace;
  if (fault::should_fire(fault::site::kNetSendDelay)) {
    frame.arrival_time += kInjectedDelay;
  }
  {
    std::lock_guard lock(bound_mutex_);
    frame.arrival_time = vt::max(frame.arrival_time, last_arrival_);
    last_arrival_ = frame.arrival_time;
    last_send_ = frame.send_time;
    inflight_arrivals_.push_back(frame.arrival_time);
    // Blocked until the reply: infinite bound, re-anchored by wake_announce
    // when the reply lands. In-flight stamps keep the effective bound down
    // until the dispatcher has admitted the request.
    client_bound_ = vt::Time::infinite();
    wait_tag_ = WaitTag::kReply;
    wait_id_ = call_id;
    publish_locked();
  }
  if (!inbox_.push(std::move(frame))) {
    std::lock_guard lock(pending_mutex_);
    pending_replies_.erase(call_id);
    announce(cursor.now());
    return Unavailable("connection closed");
  }

  Frame reply;
  {
    std::unique_lock lock(pending_mutex_);
    auto ready = [&] {
      auto it = pending_replies_.find(call_id);
      return closed_.load() || it == pending_replies_.end() ||
             it->second.has_value();
    };
    if (deadline.is_infinite()) {
      pending_cv_.wait(lock, ready);
    } else if (!pending_cv_.wait_for(lock, options.wedge_grace, ready)) {
      // Wedged server: nothing landed for wedge_grace of wall time, so the
      // modeled wait ran out at the deadline. Abandon the tag — a late reply
      // hits the unknown-call drop path — and complete at the deadline
      // stamp. Announcing the deadline is safe: our bound has been infinite
      // since the send, so the worker cannot have passed it.
      pending_replies_.erase(call_id);
      lock.unlock();
      cursor.advance_to(deadline);
      announce(cursor.now());
      return DeadlineExceeded("call " + std::string(proto::to_string(method)) +
                              " abandoned at deadline (no reply)");
    }
    auto it = pending_replies_.find(call_id);
    if (it == pending_replies_.end() || !it->second.has_value()) {
      pending_replies_.erase(call_id);
      announce(cursor.now());
      return Unavailable("connection closed during call");
    }
    reply = std::move(*it->second);
    pending_replies_.erase(it);
  }
  cursor.advance_to(reply.arrival_time);
  // First action after waking: re-own the bound at our new position.
  announce(cursor.now());
  if (reply.arrival_time > deadline) {
    // The reply landed, but past the deadline. The timeout is observed at
    // the arrival stamp (not the deadline): wake_announce already anchored
    // the gate bound there, and a VT clock never runs backwards.
    return DeadlineExceeded("call " + std::string(proto::to_string(method)) +
                            " reply landed past deadline");
  }
  return reply;
}

Status Connection::send(proto::Method method, std::uint64_t correlation,
                        Bytes payload, vt::Cursor& cursor) {
  if (closed_.load()) return Unavailable("connection closed");
  if (fault::should_fire(fault::site::kNetSendConnLoss)) {
    close();
    return Unavailable("injected fault: connection lost");
  }
  Frame frame = make_request(method, correlation, std::move(payload), cursor);
  if (fault::should_fire(fault::site::kNetSendDelay)) {
    frame.arrival_time += kInjectedDelay;
  }
  {
    std::lock_guard lock(bound_mutex_);
    frame.arrival_time = vt::max(frame.arrival_time, last_arrival_);
    last_arrival_ = frame.arrival_time;
    last_send_ = frame.send_time;
    inflight_arrivals_.push_back(frame.arrival_time);
    client_bound_ = frame.send_time;
    wait_tag_ = WaitTag::kNone;
    publish_locked();
  }
  if (!inbox_.push(std::move(frame))) {
    return Unavailable("connection closed");
  }
  return Status::Ok();
}

void Connection::prepare_wait(WaitTag tag, std::uint64_t id) {
  std::lock_guard lock(bound_mutex_);
  client_bound_ = vt::Time::infinite();
  wait_tag_ = tag;
  wait_id_ = id;
  publish_locked();
}

void Connection::wake_announce(WaitTag tag, std::uint64_t id, vt::Time at) {
  std::lock_guard lock(bound_mutex_);
  if (wait_tag_ != tag || wait_id_ != id) return;
  // The sleeper's next emission follows this wake frame. Anchor the bound
  // before the sleeper can resume.
  client_bound_ = at;
  wait_tag_ = WaitTag::kNone;
  publish_locked();
}

void Connection::announce(vt::Time t) { client_announce(t); }

void Connection::close() {
  if (closed_.exchange(true)) return;
  inbox_.close();
  notifications_.close();
  pending_cv_.notify_all();
  // Unregister from the gate so the worker no longer waits on us. The
  // dispatcher announces through source_ under bound_mutex_ (publish_locked),
  // so the release must hold the same lock or it races a late announce.
  std::lock_guard lock(bound_mutex_);
  source_ = vt::Gate::Source();
}

std::optional<Frame> Connection::next_request() {
  on_processed();
  auto frame = inbox_.pop();
  if (!frame.has_value()) return std::nullopt;
  on_pop(frame->arrival_time);
  return frame;
}

void Connection::done_processing() { on_processed(); }

void Connection::reply(const Frame& request, Bytes payload,
                       vt::Time server_time) {
  // Reply lost on the wire: the caller stays blocked and (with a deadline
  // armed) completes with DEADLINE_EXCEEDED at the modeled deadline. The
  // drop happens before wake_announce — a lost frame must not move bounds.
  if (fault::should_fire(fault::site::kNetReplyDrop)) {
    BF_LOG_WARN("net") << "injected fault: dropping reply for call "
                       << request.correlation << " on " << peer_;
    return;
  }
  Frame frame = make_server_frame(Frame::Kind::kReply, request.method,
                                  request.correlation, std::move(payload),
                                  server_time);
  wake_announce(WaitTag::kReply, frame.correlation, frame.arrival_time);
  {
    std::lock_guard lock(pending_mutex_);
    auto it = pending_replies_.find(frame.correlation);
    if (it != pending_replies_.end()) {
      it->second = std::move(frame);
      pending_cv_.notify_all();
      return;
    }
  }
  BF_LOG_WARN("net") << "dropping reply for unknown call "
                     << frame.correlation << " on " << peer_;
}

Status Connection::notify(proto::Method method, std::uint64_t correlation,
                          Bytes payload, vt::Time server_time) {
  // OpEnqueued is the advisory admission ack (INIT -> FIRST); dropping it
  // must leave the event able to complete via OpComplete alone.
  if (method == proto::Method::kOpEnqueued &&
      fault::should_fire(fault::site::kNetNotifyDropEnqueued)) {
    return Status::Ok();  // modeled as lost in flight, not a send failure
  }
  // Completion lost on the wire: the event FSM never leaves its pending
  // state and a bounded wait must end in TIMED_OUT. Dropped before
  // wake_announce — a lost frame must not move bounds.
  if (method == proto::Method::kOpComplete &&
      fault::should_fire(fault::site::kNetNotifyDropComplete)) {
    BF_LOG_WARN("net") << "injected fault: dropping completion for op "
                       << correlation << " on " << peer_;
    return Status::Ok();
  }
  Frame frame = make_server_frame(Frame::Kind::kNotify, method, correlation,
                                  std::move(payload), server_time);
  // Op completions wake event waiters. The bound must be re-anchored
  // atomically with delivery — if it were left to the receiver's pump
  // thread, the worker could race past and execute a later-stamped tenant's
  // task before this client's next (earlier-stamped) request materializes.
  if (method == proto::Method::kOpComplete) {
    wake_announce(WaitTag::kEvent, correlation, frame.arrival_time);
    if (fault::should_fire(fault::site::kNetNotifyDupComplete)) {
      // Stale duplicate ack: the receiver's event map / state machine must
      // absorb the second copy without corrupting the event.
      notifications_.push(frame);
    }
  }
  if (!notifications_.push(std::move(frame))) {
    return Unavailable("notification stream closed by " + peer_);
  }
  return Status::Ok();
}

Status Connection::notify_batch(std::vector<Completion>& completions) {
  // Stage every frame first — applying the same per-completion fault sites
  // and wake_announce ordering as notify(), in completion order — then
  // deliver the whole batch with one consumer wake. Announcing a later
  // completion before an earlier one is *delivered* is safe: each announce
  // targets the single (tag, id) the client armed, so at most one of them
  // re-anchors the bound and the rest are no-ops, exactly as with N
  // individual notifies.
  //
  // The staging vector is thread-local: one device worker stages at a time
  // per thread, and reusing the vector keeps steady-state batches
  // allocation-free.
  static thread_local std::vector<Frame> staged;
  staged.clear();
  staged.reserve(completions.size() + 1);
  for (Completion& completion : completions) {
    if (completion.method == proto::Method::kOpEnqueued &&
        fault::should_fire(fault::site::kNetNotifyDropEnqueued)) {
      continue;
    }
    if (completion.method == proto::Method::kOpComplete &&
        fault::should_fire(fault::site::kNetNotifyDropComplete)) {
      BF_LOG_WARN("net") << "injected fault: dropping completion for op "
                         << completion.correlation << " on " << peer_;
      continue;
    }
    Frame frame = make_server_frame(Frame::Kind::kNotify, completion.method,
                                    completion.correlation,
                                    std::move(completion.payload),
                                    completion.server_time);
    if (completion.method == proto::Method::kOpComplete) {
      wake_announce(WaitTag::kEvent, completion.correlation,
                    frame.arrival_time);
      if (fault::should_fire(fault::site::kNetNotifyDupComplete)) {
        staged.push_back(frame);
      }
    }
    staged.push_back(std::move(frame));
  }
  completions.clear();
  if (staged.empty()) return Status::Ok();
  const bool delivered =
      notifications_.push_batch(std::make_move_iterator(staged.begin()),
                                std::make_move_iterator(staged.end()));
  staged.clear();
  if (!delivered) {
    return Unavailable("notification stream closed by " + peer_);
  }
  return Status::Ok();
}

// ---- bound arbitration -------------------------------------------------------

void Connection::client_announce(vt::Time t) {
  std::lock_guard lock(bound_mutex_);
  client_bound_ = t;
  wait_tag_ = WaitTag::kNone;
  publish_locked();
}

void Connection::on_pop(vt::Time arrival) {
  std::lock_guard lock(bound_mutex_);
  if (!inflight_arrivals_.empty()) inflight_arrivals_.pop_front();
  processing_ = arrival;
  publish_locked();
}

void Connection::on_processed() {
  std::lock_guard lock(bound_mutex_);
  processing_ = vt::Time::infinite();
  publish_locked();
}

void Connection::publish_locked() {
  vt::Time bound = client_bound_;
  if (!inflight_arrivals_.empty() && inflight_arrivals_.front() < bound) {
    bound = inflight_arrivals_.front();
  }
  if (processing_ < bound) bound = processing_;
  source_.announce(bound);
}

// ---- ServerEndpoint -----------------------------------------------------------

ServerEndpoint::ServerEndpoint(std::string address)
    : address_(std::move(address)) {}

ServerEndpoint::~ServerEndpoint() { shutdown(); }

void ServerEndpoint::set_handler(
    std::function<void(std::shared_ptr<Connection>)> handler) {
  std::lock_guard lock(mutex_);
  handler_ = std::move(handler);
}

Result<std::shared_ptr<Connection>> ServerEndpoint::connect(
    const std::string& peer, TransportCost cost, vt::Cursor& cursor) {
  if (shutdown_.load()) {
    return Unavailable("endpoint " + address_ + " is shut down");
  }
  std::function<void(std::shared_ptr<Connection>)> handler;
  {
    std::lock_guard lock(mutex_);
    handler = handler_;
  }
  if (!handler) {
    return FailedPrecondition("endpoint " + address_ + " has no handler");
  }
  // TCP + gRPC channel setup.
  cursor.advance(vt::Duration::micros(400));
  auto connection = std::make_shared<Connection>(
      this, peer, cost, gate_.register_source(cursor.now()), cursor.now());
  {
    std::lock_guard lock(mutex_);
    connections_.push_back(connection);
  }
  handler(connection);
  return connection;
}

void ServerEndpoint::shutdown() {
  if (shutdown_.exchange(true)) return;
  std::vector<std::weak_ptr<Connection>> connections;
  {
    std::lock_guard lock(mutex_);
    connections = connections_;
  }
  for (auto& weak : connections) {
    if (auto connection = weak.lock()) connection->close();
  }
  gate_.shutdown();
}

std::size_t ServerEndpoint::connection_count() const {
  std::lock_guard lock(mutex_);
  std::size_t count = 0;
  for (const auto& weak : connections_) {
    auto connection = weak.lock();
    if (connection && !connection->closed()) ++count;
  }
  return count;
}

}  // namespace bf::net
