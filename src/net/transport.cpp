#include "net/transport.h"

namespace bf::net {
namespace {

constexpr double kGiBps = 1024.0 * 1024.0 * 1024.0;

// One-way per-message latency of a local gRPC hop (HTTP/2 framing, loopback
// TCP, event-loop handoffs). Calibrated so a 4-message op group costs ~2 ms
// (Fig 4b/4c floor): grpc_control_rtt / 4 per direction, x2 directions.
vt::Duration hop_latency(const sim::NodeProfile& node) {
  return vt::Duration::nanos(node.grpc_control_rtt.ns() / 4);
}

}  // namespace

TransportCost local_grpc(const sim::NodeProfile& node) {
  // Loopback TCP bandwidth ~8 GiB/s; 3 extra data copies (paper §III-B:
  // four copies total versus one for shm).
  return TransportCost(node.serialization,
                       sim::LinkModel(hop_latency(node), 8.0 * kGiBps),
                       node.memcpy_model, /*extra_copies=*/3);
}

TransportCost local_control(const sim::NodeProfile& node) {
  // Control frames only: same fixed hop latency; payloads are tiny but still
  // pay serialization per byte so oversized control messages show up.
  return TransportCost(node.serialization,
                       sim::LinkModel(hop_latency(node), 8.0 * kGiBps),
                       node.memcpy_model, /*extra_copies=*/0);
}

TransportCost remote_grpc(const sim::NodeProfile& sender,
                          const sim::NodeProfile& receiver) {
  // 1 Gb/s ethernet (~119 MiB/s) + switch latency; copies happen on the
  // receiving host.
  const vt::Duration latency =
      hop_latency(sender) + vt::Duration::micros(300);
  return TransportCost(sender.serialization,
                       sim::LinkModel(latency, 119.0 * 1024 * 1024),
                       receiver.memcpy_model, /*extra_copies=*/3);
}

}  // namespace bf::net
