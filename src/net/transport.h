// Transport cost models for the gRPC-analogue fabric.
//
// The paper's measurements (§IV-A) attribute the gRPC data-path penalty to
// protobuf serialization plus three extra data copies versus one for the
// shared-memory path. We charge exactly those components:
//
//   sender:   encode(bytes)                      (advances sender cursor)
//   in-flight: link latency + bytes/bandwidth
//   receiver: decode(bytes) + extra_copies * memcpy(bytes)
//
// Control frames are a few hundred bytes, so they pay essentially the fixed
// per-message latency — the ~2 ms control floor of Figure 4.
#pragma once

#include "sim/costmodel.h"
#include "vt/time.h"

namespace bf::net {

class TransportCost {
 public:
  TransportCost() = default;
  TransportCost(sim::SerializationModel serialization, sim::LinkModel link,
                sim::CopyModel copy, unsigned extra_copies)
      : serialization_(serialization),
        link_(link),
        copy_(copy),
        extra_copies_(extra_copies) {}

  // Charged on the sending thread before the frame departs.
  [[nodiscard]] vt::Duration send_cost(std::size_t bytes) const {
    return serialization_.encode_time(bytes);
  }

  // Wire + receive-side costs; arrival = send_time + deliver_cost.
  [[nodiscard]] vt::Duration deliver_cost(std::size_t bytes) const {
    vt::Duration total = link_.transfer_time(bytes);
    total += serialization_.encode_time(bytes);  // decode ~ encode
    for (unsigned i = 0; i < extra_copies_; ++i) {
      total += copy_.copy_time(bytes);
    }
    return total;
  }

 private:
  sim::SerializationModel serialization_;
  sim::LinkModel link_;
  sim::CopyModel copy_;
  unsigned extra_copies_ = 0;
};

// Local (same-node) gRPC over the container virtual network: the data path
// the paper calls plain "BlastFunction".
TransportCost local_grpc(const sim::NodeProfile& node);

// Local control-plane-only transport used when payloads travel via shared
// memory ("BlastFunction shm"): same message latency, no bulk costs charged
// here (the single copy is charged by bf::shm).
TransportCost local_control(const sim::NodeProfile& node);

// Cross-node gRPC over the 1 Gb/s cluster ethernet.
TransportCost remote_grpc(const sim::NodeProfile& sender,
                          const sim::NodeProfile& receiver);

}  // namespace bf::net
