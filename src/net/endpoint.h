// In-process RPC fabric: server endpoints, bidirectional connections,
// virtual-time stamped frames.
//
// This is the gRPC analogue: unary calls for context/information methods and
// a server->client notification stream for command-queue completions (gRPC
// bidi streaming in the real system). Frames never sleep — real threads
// exchange them immediately — but every frame carries modeled send/arrival
// timestamps computed by the TransportCost model.
//
// Conservative virtual-time protocol. Each connection is one source in the
// server's vt::Gate. Its published bound is the minimum of
//   * the client's own bound (last send, or infinite while blocked),
//   * the arrival stamps of frames still in the server inbox, and
//   * the arrival stamp of the frame the dispatcher is currently processing,
// so the Device Manager worker can never execute past work that is still in
// flight. While the client is blocked, a server reply/notification nudges the
// client bound to its arrival time (lookahead: the client cannot emit again
// before the frame that wakes it lands).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/call_options.h"
#include "common/queue.h"
#include "common/spsc_ring.h"
#include "common/status.h"
#include "net/transport.h"
#include "proto/messages.h"
#include "trace/span.h"
#include "vt/cursor.h"
#include "vt/gate.h"

namespace bf::net {

struct Frame {
  enum class Kind { kRequest, kReply, kNotify };
  Kind kind = Kind::kRequest;
  proto::Method method = proto::Method::kOpenSession;
  std::uint64_t correlation = 0;
  Bytes payload;
  vt::Time send_time;
  vt::Time arrival_time;
  // Request trace context (gRPC-metadata analogue). Carried alongside the
  // payload, NOT serialized: wire_size() ignores it, so tracing never
  // perturbs modeled transport costs.
  trace::SpanContext trace;

  // HTTP/2 + gRPC framing overhead per message.
  static constexpr std::size_t kOverheadBytes = 64;
  [[nodiscard]] std::size_t wire_size() const {
    return payload.size() + kOverheadBytes;
  }
};

class ServerEndpoint;

// Both per-connection frame queues have exactly one consumer (the server
// dispatcher drains the inbox, the client pump drains the notification
// stream), so they ride the lock-light SPSC queue instead of BlockingQueue:
// ring push + sequence bump per frame, futex wake only when the consumer is
// parked, no deque node allocation. Producers (app thread on the inbox;
// dispatcher ack + device worker completions on the stream) serialize on the
// queue's internal producer lock.
using FrameQueue = SpscQueue<Frame, 64>;

// A server->client completion staged by the device worker. Worker threads
// accumulate these per task and deliver them through notify_batch: one
// consumer wake per task instead of one per op (gate wake bounds are still
// anchored per completion at stage time, so virtual time is unchanged).
struct Completion {
  proto::Method method = proto::Method::kOpComplete;
  std::uint64_t correlation = 0;
  Bytes payload;
  vt::Time server_time;
};

// One client<->server connection. The client side is driven by the
// application thread (sends) and the remote library's connection thread
// (notification drain); the server side by a dispatcher thread.
class Connection : public std::enable_shared_from_this<Connection> {
 public:
  Connection(ServerEndpoint* endpoint, std::string peer, TransportCost cost,
             vt::Gate::Source source, vt::Time connect_time);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  [[nodiscard]] const std::string& peer() const { return peer_; }
  [[nodiscard]] const TransportCost& cost() const { return cost_; }

  // ---- Client side ----------------------------------------------------------

  // Unary call: charges encode cost to the cursor, blocks until the reply,
  // advances the cursor to the reply's arrival time.
  Result<Frame> call(proto::Method method, Bytes payload, vt::Cursor& cursor);

  // Unary call with failure handling. A finite options.timeout arms a
  // VT deadline: the call completes with DEADLINE_EXCEEDED instead of
  // blocking forever when the reply lands past the deadline (observed at
  // the reply's arrival stamp) or never lands at all (abandoned after
  // options.wedge_grace of wall time, completed at the deadline stamp; a
  // late reply then hits the unknown-call drop path). options.retry re-sends
  // on retryable codes with capped, seeded-jitter backoff charged to the
  // cursor — only pass a retry policy for idempotent methods
  // (proto::is_idempotent). Default options reproduce the plain overload
  // bit-for-bit. `trace` rides on every attempt's frame as metadata (zero
  // wire cost) so the server can parent its handler span.
  Result<Frame> call(proto::Method method, Bytes payload, vt::Cursor& cursor,
                     const CallOptions& options,
                     const trace::SpanContext& trace = {});

  // One-way async request (command-queue methods). Charges encode cost,
  // stamps and delivers the frame.
  Status send(proto::Method method, std::uint64_t correlation, Bytes payload,
              vt::Cursor& cursor);

  // Server->client notification stream (drained by the connection thread).
  FrameQueue& notifications() { return notifications_; }

  // Gate protocol for blocking waits outside call() (e.g. event waits).
  // The application thread registers the tag it is about to sleep on; the
  // pump thread calls wake_announce when the matching frame lands, which
  // atomically moves the gate bound to the wake time *before* the sleeper
  // can resume — closing the wake race without stalling the worker.
  enum class WaitTag { kNone, kReply, kEvent };
  void prepare_wait(WaitTag tag, std::uint64_t id);
  void wake_announce(WaitTag tag, std::uint64_t id, vt::Time at);
  void announce(vt::Time t);

  // Client-initiated close: wakes the server dispatcher (inbox closed) and
  // unregisters the gate source.
  void close();
  [[nodiscard]] bool closed() const { return closed_.load(); }

  // ---- Server side ----------------------------------------------------------

  // Blocking pop of the next client frame; nullopt when the connection
  // closed and drained. The previously returned frame counts as "being
  // processed" (holds the gate bound) until the next call.
  std::optional<Frame> next_request();

  // Marks the frame most recently returned by next_request as fully
  // processed (its effects are visible to the worker). Called implicitly by
  // the next next_request; call explicitly before long blocking operations.
  void done_processing();

  // Replies to a unary request. server_time is the modeled time at which the
  // reply is emitted.
  void reply(const Frame& request, Bytes payload, vt::Time server_time);

  // Pushes a notification frame (op enqueued / op complete). Returns
  // UNAVAILABLE when the stream is already closed (client gone) so the
  // server can account undeliverable completions instead of silently
  // dropping them.
  Status notify(proto::Method method, std::uint64_t correlation, Bytes payload,
                vt::Time server_time);

  // Delivers a task's worth of staged completions with a single consumer
  // wake. Per-completion semantics (fault sites, wake_announce ordering,
  // frame stamps) are identical to calling notify() N times; only the
  // number of futex wakes changes, which is invisible to virtual time.
  // The batch vector is consumed (cleared) on success so callers can pool
  // it.
  Status notify_batch(std::vector<Completion>& completions);

 private:
  friend class ServerEndpoint;

  // One attempt of the deadline-aware call(); the retry loop lives in the
  // public overload.
  Result<Frame> call_attempt(proto::Method method, Bytes payload,
                             vt::Cursor& cursor, const CallOptions& options,
                             const trace::SpanContext& trace);

  // Stamps a client->server frame: send time from the cursor, in-order
  // arrival (TCP semantics: arrivals on one connection are monotonic).
  Frame make_request(proto::Method method, std::uint64_t correlation,
                     Bytes payload, vt::Cursor& cursor);
  Frame make_server_frame(Frame::Kind kind, proto::Method method,
                          std::uint64_t correlation, Bytes payload,
                          vt::Time server_time);

  // Bound arbitration -------------------------------------------------------
  void client_announce(vt::Time t);
  void on_pop(vt::Time arrival);
  void on_processed();
  void publish_locked();

  ServerEndpoint* endpoint_;
  std::string peer_;
  TransportCost cost_;
  vt::Gate::Source source_;

  FrameQueue inbox_;          // client -> server
  FrameQueue notifications_;  // server -> client stream

  std::mutex pending_mutex_;
  std::condition_variable pending_cv_;
  std::map<std::uint64_t, std::optional<Frame>> pending_replies_;
  std::uint64_t next_call_id_ = 1;

  // Bound state (guarded by bound_mutex_).
  std::mutex bound_mutex_;
  vt::Time client_bound_;
  WaitTag wait_tag_ = WaitTag::kNone;
  std::uint64_t wait_id_ = 0;
  std::deque<vt::Time> inflight_arrivals_;
  vt::Time processing_ = vt::Time::infinite();
  vt::Time last_arrival_;  // per-connection in-order delivery floor
  vt::Time last_send_;

  std::atomic<bool> closed_{false};
};

// A listening service address. The owner (Device Manager, Registry) installs
// a handler that is invoked for every new connection; handlers typically
// spawn a dispatcher thread.
class ServerEndpoint {
 public:
  explicit ServerEndpoint(std::string address);
  ~ServerEndpoint();

  ServerEndpoint(const ServerEndpoint&) = delete;
  ServerEndpoint& operator=(const ServerEndpoint&) = delete;

  [[nodiscard]] const std::string& address() const { return address_; }
  [[nodiscard]] vt::Gate& gate() { return gate_; }

  void set_handler(std::function<void(std::shared_ptr<Connection>)> handler);

  // Client-side connect. The cursor provides the connect timestamp and is
  // charged the connection setup cost.
  Result<std::shared_ptr<Connection>> connect(const std::string& peer,
                                              TransportCost cost,
                                              vt::Cursor& cursor);

  // Closes every connection and shuts the gate down.
  void shutdown();
  [[nodiscard]] bool is_shutdown() const { return shutdown_.load(); }

  [[nodiscard]] std::size_t connection_count() const;

 private:
  std::string address_;
  vt::Gate gate_;
  mutable std::mutex mutex_;
  std::function<void(std::shared_ptr<Connection>)> handler_;
  std::vector<std::weak_ptr<Connection>> connections_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace bf::net
