// Failure-recovery suite (ctest -L recovery; docs/RESILIENCE.md).
//
// Where the fault matrix (fault_matrix_test.cpp) asserts the stack is *safe*
// under injected faults, this suite asserts it *recovers* from them when the
// caller arms failure handling: CallOptions deadlines turn a lost reply into
// DEADLINE_EXCEEDED at a deterministic VT stamp instead of a wedged thread,
// retry-with-backoff absorbs transient faults on idempotent methods, device
// health probes drive unhealthy-board migration, and the gateway's circuit
// breaker sheds load fast-fail while a function has no healthy replica.
//
// Layers covered, bottom-up:
//   1. primitives   — Backoff delay sequences, the event FSM's terminal
//                     states, Scheduler::cancel_session;
//   2. net          — late reply vs wedged server vs dropped-reply retry
//                     against a hand-rolled echo server;
//   3. devmgr       — health() snapshots, the kHealthCheck RPC, idempotent
//                     duplicate OpenSession;
//   4. remote       — a recovery matrix: the PR-1 fault sites re-armed WITH
//                     deadlines/retries, asserting every scenario completes
//                     or fast-fails with an expected ErrorCode, stays inside
//                     a VT watchdog, and is digest-deterministic per seed;
//                     plus event poisoning (FAILED / TIMED_OUT dependents);
//   5. testbed      — probe-driven migration off a dead board and the
//                     gateway breaker opening (HTTP 503) and re-closing.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/call_options.h"
#include "devmgr/device_manager.h"
#include "devmgr/scheduler.h"
#include "fault/injector.h"
#include "net/endpoint.h"
#include "proto/messages.h"
#include "proto/wire.h"
#include "remote/event_state.h"
#include "remote/remote_runtime.h"
#include "shm/namespace.h"
#include "sim/board.h"
#include "testbed/testbed.h"
#include "workloads/sobel.h"

namespace bf {
namespace {

template <typename T>
Bytes encode(const T& message) {
  proto::Writer writer;
  message.encode(writer);
  return writer.take();
}

template <typename T>
Result<T> decode_payload(const net::Frame& frame) {
  proto::Reader reader(ByteSpan{frame.payload});
  return T::decode(reader);
}

// --- 1. primitives -----------------------------------------------------------

TEST(Backoff, DeterministicCappedAndJittered) {
  RetryPolicy policy;
  policy.initial_backoff = vt::Duration::millis(1);
  policy.multiplier = 2.0;
  policy.max_backoff = vt::Duration::millis(8);
  policy.jitter = 0.25;
  policy.jitter_seed = 42;

  Backoff a(policy);
  Backoff b(policy);
  const auto cap_ns = static_cast<double>(policy.max_backoff.ns()) *
                      (1.0 + policy.jitter);
  for (int i = 0; i < 8; ++i) {
    const vt::Duration da = a.next();
    const vt::Duration db = b.next();
    // Same policy (incl. jitter_seed) => bit-identical delay sequence.
    EXPECT_EQ(da.ns(), db.ns()) << "attempt " << i;
    EXPECT_GT(da.ns(), 0);
    EXPECT_LE(static_cast<double>(da.ns()), cap_ns) << "attempt " << i;
  }

  // A different jitter stream diverges (jitter is really applied).
  policy.jitter_seed = 43;
  Backoff c(policy);
  int diverged = 0;
  Backoff a2({.initial_backoff = vt::Duration::millis(1),
              .multiplier = 2.0,
              .max_backoff = vt::Duration::millis(8),
              .jitter = 0.25,
              .jitter_seed = 42});
  for (int i = 0; i < 8; ++i) {
    if (a2.next().ns() != c.next().ns()) ++diverged;
  }
  EXPECT_GT(diverged, 0);
}

TEST(Backoff, NoJitterIsPureExponentialWithCap) {
  RetryPolicy policy;
  policy.initial_backoff = vt::Duration::millis(1);
  policy.multiplier = 2.0;
  policy.max_backoff = vt::Duration::millis(4);
  policy.jitter = 0.0;
  Backoff backoff(policy);
  EXPECT_EQ(backoff.next().ns(), vt::Duration::millis(1).ns());
  EXPECT_EQ(backoff.next().ns(), vt::Duration::millis(2).ns());
  EXPECT_EQ(backoff.next().ns(), vt::Duration::millis(4).ns());
  EXPECT_EQ(backoff.next().ns(), vt::Duration::millis(4).ns());  // capped
}

TEST(EventFsm, FirstTerminalInputWins) {
  using remote::EventFsm;
  using remote::EventInput;
  using remote::EventState;

  {  // A completion racing a client-side timeout cannot resurrect the event.
    EventFsm fsm;
    EXPECT_TRUE(fsm.apply(EventInput::kTimedOut));
    EXPECT_FALSE(fsm.apply(EventInput::kCompleted));
    EXPECT_EQ(fsm.state(), EventState::kTimedOut);
    EXPECT_TRUE(fsm.terminal());
    EXPECT_FALSE(fsm.complete());
  }
  {  // A late failure cannot regress a completed event.
    EventFsm fsm;
    EXPECT_TRUE(fsm.apply(EventInput::kEnqueuedAck));
    EXPECT_TRUE(fsm.apply(EventInput::kCompleted));
    EXPECT_FALSE(fsm.apply(EventInput::kFailed));
    EXPECT_FALSE(fsm.apply(EventInput::kTimedOut));
    EXPECT_EQ(fsm.state(), EventState::kComplete);
  }
  {  // Failure is reachable from every non-terminal state.
    EventFsm fsm;
    EXPECT_TRUE(fsm.apply(EventInput::kFailed));
    EXPECT_EQ(fsm.state(), EventState::kFailed);
    EXPECT_FALSE(fsm.apply(EventInput::kEnqueuedAck));
    EXPECT_FALSE(fsm.apply(EventInput::kBufferStaged));
  }
}

devmgr::Task make_task(std::uint64_t seq, std::uint64_t session,
                       const char* client, std::int64_t ready_ns) {
  devmgr::Task task;
  task.seq = seq;
  task.session_id = session;
  task.client_id = client;
  task.ready = vt::Time::zero() + vt::Duration::nanos(ready_ns);
  devmgr::Operation op;
  op.kind = devmgr::Operation::Kind::kFinish;
  op.op_id = seq;
  task.ops.push_back(op);
  return task;
}

TEST(TaskQueueRecovery, CancelSessionRemovesOnlyThatSession) {
  auto queue = devmgr::make_scheduler({});
  ASSERT_TRUE(queue->push(make_task(1, 10, "a", 100)).ok());
  ASSERT_TRUE(queue->push(make_task(2, 20, "b", 200)).ok());
  ASSERT_TRUE(queue->push(make_task(3, 10, "a", 300)).ok());
  ASSERT_TRUE(queue->push(make_task(4, 30, "c", 400)).ok());

  auto cancelled = queue->cancel_session(10);
  ASSERT_EQ(cancelled.size(), 2u);
  for (const auto& task : cancelled) EXPECT_EQ(task.session_id, 10u);
  EXPECT_EQ(queue->size(), 2u);

  // Cancelling an unknown session is a harmless no-op.
  EXPECT_TRUE(queue->cancel_session(99).empty());
  EXPECT_EQ(queue->size(), 2u);
  queue->close();
}

// --- 2. net: deadlines and retry against a hand-rolled server ----------------

// Minimal unary server: replies to every request after a configurable
// modeled delay, or swallows requests entirely (a wedged/crashed handler).
class EchoServer {
 public:
  explicit EchoServer(vt::Duration reply_delay, bool swallow = false)
      : endpoint_("test://echo"), reply_delay_(reply_delay),
        swallow_(swallow) {
    endpoint_.set_handler([this](std::shared_ptr<net::Connection> conn) {
      std::lock_guard lock(mutex_);
      threads_.emplace_back([this, conn] { serve(std::move(conn)); });
    });
  }

  ~EchoServer() {
    endpoint_.shutdown();
    std::lock_guard lock(mutex_);
    for (auto& thread : threads_) thread.join();
  }

  net::ServerEndpoint& endpoint() { return endpoint_; }

 private:
  void serve(std::shared_ptr<net::Connection> conn) {
    while (auto frame = conn->next_request()) {
      if (swallow_) {
        conn->done_processing();
        continue;
      }
      proto::AckResp resp;
      conn->reply(*frame, encode(resp), frame->arrival_time + reply_delay_);
    }
  }

  net::ServerEndpoint endpoint_;
  vt::Duration reply_delay_;
  bool swallow_;
  std::mutex mutex_;
  std::vector<std::thread> threads_;
};

TEST(NetDeadline, LateReplyCompletesDeadlineExceeded) {
  EchoServer server(vt::Duration::millis(10));
  vt::Cursor cursor;
  auto conn = server.endpoint().connect(
      "client", net::local_control(sim::make_node_b()), cursor);
  ASSERT_TRUE(conn.ok());

  CallOptions options;
  options.timeout = vt::Duration::millis(1);
  const vt::Time before = cursor.now();
  auto reply = conn.value()->call(proto::Method::kGetDeviceInfo, Bytes{},
                                  cursor, options);
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded)
      << reply.status().to_string();
  // The timeout is observed, never silently exceeded on the modeled clock by
  // less than the deadline: the cursor lands at/after the armed deadline.
  EXPECT_GE((cursor.now() - before).ns(), vt::Duration::millis(1).ns());
}

TEST(NetDeadline, WedgedServerAbandonedAtDeadline) {
  EchoServer server(vt::Duration::nanos(0), /*swallow=*/true);
  vt::Cursor cursor;
  auto conn = server.endpoint().connect(
      "client", net::local_control(sim::make_node_b()), cursor);
  ASSERT_TRUE(conn.ok());

  CallOptions options;
  options.timeout = vt::Duration::millis(5);
  options.wedge_grace = std::chrono::milliseconds(100);
  const vt::Time before = cursor.now();
  auto reply = conn.value()->call(proto::Method::kGetDeviceInfo, Bytes{},
                                  cursor, options);
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded)
      << reply.status().to_string();
  EXPECT_GE((cursor.now() - before).ns(), vt::Duration::millis(5).ns());
}

TEST(NetDeadline, DroppedReplyWithoutRetryFailsFast) {
  fault::ScopedInjection inject(/*seed=*/7);
  inject.site(fault::site::kNetReplyDrop, {.budget = 1});

  EchoServer server(vt::Duration::nanos(0));
  vt::Cursor cursor;
  auto conn = server.endpoint().connect(
      "client", net::local_control(sim::make_node_b()), cursor);
  ASSERT_TRUE(conn.ok());

  CallOptions options;  // default retry: single attempt
  options.timeout = vt::Duration::millis(5);
  options.wedge_grace = std::chrono::milliseconds(100);
  auto reply = conn.value()->call(proto::Method::kGetDeviceInfo, Bytes{},
                                  cursor, options);
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded)
      << reply.status().to_string();
  EXPECT_EQ(fault::Injector::instance().fires(fault::site::kNetReplyDrop), 1u);
}

TEST(NetDeadline, RetryRecoversFromDroppedReply) {
  fault::ScopedInjection inject(/*seed=*/7);
  inject.site(fault::site::kNetReplyDrop, {.budget = 1});

  EchoServer server(vt::Duration::nanos(0));
  vt::Cursor cursor;
  auto conn = server.endpoint().connect(
      "client", net::local_control(sim::make_node_b()), cursor);
  ASSERT_TRUE(conn.ok());

  CallOptions options;
  options.timeout = vt::Duration::millis(5);
  options.wedge_grace = std::chrono::milliseconds(100);
  options.retry.max_attempts = 3;  // kGetDeviceInfo is idempotent
  const vt::Time before = cursor.now();
  auto reply = conn.value()->call(proto::Method::kGetDeviceInfo, Bytes{},
                                  cursor, options);
  EXPECT_TRUE(reply.ok()) << reply.status().to_string();
  EXPECT_EQ(fault::Injector::instance().fires(fault::site::kNetReplyDrop), 1u);
  // The failed first attempt + backoff were charged to the caller's clock:
  // at least a full deadline elapsed before the successful attempt.
  EXPECT_GE((cursor.now() - before).ns(), vt::Duration::millis(5).ns());
}

// --- 3. devmgr: health probes + idempotent OpenSession -----------------------

struct ManagerRig {
  ManagerRig() {
    sim::BoardConfig bc;
    bc.id = "fpga-b";
    bc.node = "B";
    bc.host = sim::make_node_b();
    bc.memory_bytes = 128 * kMiB;
    board = std::make_unique<sim::Board>(bc);
    devmgr::DeviceManagerConfig mc;
    mc.id = "devmgr-b";
    mc.record_execution_journal = true;
    mc.gate_stall_grace = std::chrono::milliseconds(5000);
    manager =
        std::make_unique<devmgr::DeviceManager>(mc, board.get(), &node_shm);
  }

  remote::ManagerAddress address(const CallOptions& options = {}) {
    remote::ManagerAddress addr;
    addr.endpoint = &manager->endpoint();
    addr.transport = net::local_control(sim::make_node_b());
    addr.node_shm = &node_shm;
    addr.call_options = options;
    return addr;
  }

  shm::Namespace node_shm;
  std::unique_ptr<sim::Board> board;
  std::unique_ptr<devmgr::DeviceManager> manager;
};

TEST(DevmgrHealth, SnapshotReportsLoadAndShutdown) {
  ManagerRig rig;
  auto healthy = rig.manager->health();
  ASSERT_TRUE(healthy.ok()) << healthy.status().to_string();
  EXPECT_TRUE(healthy.value().accepting);
  EXPECT_EQ(healthy.value().queue_depth, 0u);
  EXPECT_EQ(healthy.value().sessions, 0u);

  rig.manager->shutdown();
  auto dead = rig.manager->health();
  EXPECT_EQ(dead.status().code(), StatusCode::kUnavailable);
}

TEST(DevmgrHealth, HealthCheckRpcAndDuplicateOpenSession) {
  ManagerRig rig;
  vt::Cursor cursor;
  auto conn = rig.manager->endpoint().connect(
      "probe-client", net::local_control(sim::make_node_b()), cursor);
  ASSERT_TRUE(conn.ok());

  proto::OpenSessionReq open;
  open.client_id = "probe-client";
  auto open_reply =
      conn.value()->call(proto::Method::kOpenSession, encode(open), cursor);
  ASSERT_TRUE(open_reply.ok()) << open_reply.status().to_string();
  auto open_resp = decode_payload<proto::OpenSessionResp>(open_reply.value());
  ASSERT_TRUE(open_resp.ok());
  ASSERT_TRUE(open_resp.value().status.to_status().ok());
  const std::uint64_t session_id = open_resp.value().session_id;
  ASSERT_NE(session_id, 0u);

  // Liveness + load probe over the wire.
  auto health_reply =
      conn.value()->call(proto::Method::kHealthCheck, Bytes{}, cursor);
  ASSERT_TRUE(health_reply.ok()) << health_reply.status().to_string();
  auto health = decode_payload<proto::HealthResp>(health_reply.value());
  ASSERT_TRUE(health.ok());
  EXPECT_TRUE(health.value().status.to_status().ok());
  EXPECT_TRUE(health.value().accepting);
  EXPECT_GE(health.value().sessions, 1u);

  // Duplicate OpenSession on the same connection re-acks the existing
  // session (this is what makes OpenSession idempotent, and so retryable).
  auto dup_reply =
      conn.value()->call(proto::Method::kOpenSession, encode(open), cursor);
  ASSERT_TRUE(dup_reply.ok()) << dup_reply.status().to_string();
  auto dup_resp = decode_payload<proto::OpenSessionResp>(dup_reply.value());
  ASSERT_TRUE(dup_resp.ok());
  EXPECT_TRUE(dup_resp.value().status.to_status().ok());
  EXPECT_EQ(dup_resp.value().session_id, session_id);
}

// --- 4. remote: recovery matrix + event poisoning ----------------------------

// Every control-plane call in the matrix runs with a deadline and retries
// armed. The VT deadline must comfortably exceed the worst-case *clean*
// modeled latency (board reconfiguration is the long pole), so a timeout
// always means a lost frame, never a slow-but-correct path.
CallOptions recovery_options() {
  CallOptions options;
  options.timeout = vt::Duration::seconds(10);
  // Generous real-time escape hatch: only a frame that truly never arrives
  // should take it, even under sanitizer slowdowns.
  options.wedge_grace = std::chrono::milliseconds(400);
  options.retry.max_attempts = 3;
  return options;
}

struct RecoveryCell {
  const char* label;
  const char* site;
  fault::Trigger trigger;
};

// The injectable sites of PR 1, re-armed WITH failure handling. after_hits
// offsets push the fault past session setup; budgets bound fault storms so
// retries can win.
const RecoveryCell kRecoveryCells[] = {
    {"conn_loss", fault::site::kNetSendConnLoss,
     {.probability = 1.0, .after_hits = 6, .budget = 1}},
    {"reply_drop", fault::site::kNetReplyDrop, {.budget = 1}},
    {"complete_drop", fault::site::kNetNotifyDropComplete, {.budget = 1}},
    {"enqueued_drop", fault::site::kNetNotifyDropEnqueued,
     {.probability = 0.5}},
    {"task_abort", fault::site::kDevmgrTaskAbort,
     {.probability = 1.0, .after_hits = 1, .budget = 1}},
    {"worker_stall", fault::site::kDevmgrWorkerStall, {.probability = 0.5}},
    {"stage_fail", fault::site::kShmStageFail, {.probability = 0.35}},
};

constexpr int kRecoveryCellCount =
    static_cast<int>(std::size(kRecoveryCells));

// With failure handling armed, a scenario may fail — but only with a code
// that names the failure mode. Anything else (especially kUnimplemented,
// which would mean the duplicate-OpenSession re-ack regressed) is a bug.
bool is_allowed_recovery_code(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kAborted:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kInternal:
    case StatusCode::kResourceExhausted:
    case StatusCode::kCancelled:
    case StatusCode::kNotFound:  // stale handle after a mid-session reconnect
      return true;
    default:
      return false;
  }
}

struct RecoveryDigest {
  std::vector<int> statuses;
  std::vector<std::string> journal;
  std::vector<std::string> fire_log;
  std::int64_t final_vt_ns = 0;

  bool operator==(const RecoveryDigest&) const = default;

  std::string to_string() const {
    std::ostringstream out;
    out << "statuses:";
    for (int code : statuses) out << ' ' << code;
    out << "\nfinal_vt_ns: " << final_vt_ns << "\njournal:";
    for (const auto& entry : journal) out << "\n  " << entry;
    out << "\nfire_log:";
    for (const auto& entry : fire_log) out << "\n  " << entry;
    return out.str();
  }
};

RecoveryDigest run_recovery_scenario(const RecoveryCell& cell,
                                     std::uint64_t seed) {
  fault::ScopedInjection inject(seed);
  inject.site(cell.site, cell.trigger);

  RecoveryDigest digest;
  ManagerRig rig;
  remote::RemoteRuntime runtime({rig.address(recovery_options())});

  workloads::SobelWorkload workload(32, 24);
  ocl::Session session("recovery-app");
  auto context = runtime.create_context("fpga-b", session);
  digest.statuses.push_back(static_cast<int>(context.status().code()));
  if (context.ok()) {
    Status setup = workload.setup(*context.value());
    digest.statuses.push_back(static_cast<int>(setup.code()));
    bool all_ok = setup.ok();
    if (setup.ok()) {
      for (int i = 0; i < 2; ++i) {
        Status request = workload.handle_request(*context.value());
        digest.statuses.push_back(static_cast<int>(request.code()));
        all_ok = all_ok && request.ok();
      }
    }
    if (all_ok) {
      // Integrity: recovery must never paper over corruption.
      EXPECT_EQ(workload.last_output(),
                workloads::sobel_reference(workload.input_frame(), 32, 24))
          << "recovered run produced corrupt output at site " << cell.site;
    }
    workload.teardown();
  }

  // VT watchdog: recovery is bounded. Deadlines + budgeted faults must keep
  // the modeled timeline far below this even on the all-retries path.
  digest.final_vt_ns = (session.now() - vt::Time::zero()).ns();
  EXPECT_LT(digest.final_vt_ns, vt::Duration::seconds(120).ns())
      << "VT watchdog exceeded at site " << cell.site << " seed " << seed;

  for (const auto& record : rig.manager->execution_journal()) {
    std::ostringstream entry;
    entry << record.ready.ns() << '/' << record.client_id << '/' << record.seq
          << (record.ordered ? "" : "/fallback");
    digest.journal.push_back(entry.str());
  }
  digest.fire_log = fault::Injector::instance().fire_log();
  std::sort(digest.fire_log.begin(), digest.fire_log.end());
  return digest;
}

class RecoveryMatrixTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(RecoveryMatrixTest, RecoversOrFailsFastDeterministically) {
  const RecoveryCell& cell = kRecoveryCells[std::get<0>(GetParam())];
  const std::uint64_t seed = std::get<1>(GetParam());

  RecoveryDigest first = run_recovery_scenario(cell, seed);
  RecoveryDigest second = run_recovery_scenario(cell, seed);

  for (int code : first.statuses) {
    EXPECT_TRUE(is_allowed_recovery_code(static_cast<StatusCode>(code)))
        << "site " << cell.site << " seed " << seed
        << " surfaced unexpected status code " << code;
  }
  EXPECT_EQ(first, second)
      << "seed " << seed << " diverged at site " << cell.site
      << "\n--- run 1 ---\n" << first.to_string()
      << "\n--- run 2 ---\n" << second.to_string();
}

// Budgeted single faults with retries armed must end in full success — the
// retry actually absorbs the fault rather than merely renaming the error.
TEST(RecoveryMatrixTest, BudgetedTransientFaultsFullyRecover) {
  for (const char* site :
       {fault::site::kNetReplyDrop.name(), fault::site::kShmGrantDeny.name()}) {
    fault::ScopedInjection inject(/*seed=*/1234);
    inject.site(site, {.budget = 1});

    ManagerRig rig;
    remote::RemoteRuntime runtime({rig.address(recovery_options())});
    ocl::Session session("transient-app");
    auto context = runtime.create_context("fpga-b", session);
    ASSERT_TRUE(context.ok())
        << site << ": " << context.status().to_string();
    workloads::SobelWorkload workload(32, 24);
    ASSERT_TRUE(workload.setup(*context.value()).ok()) << site;
    ASSERT_TRUE(workload.handle_request(*context.value()).ok()) << site;
    EXPECT_EQ(workload.last_output(),
              workloads::sobel_reference(workload.input_frame(), 32, 24));
    workload.teardown();
  }
}

TEST(EventPoisoning, FailedEventPoisonsDependents) {
  fault::ScopedInjection inject(/*seed=*/1);
  // First command-queue op aborts mid-task (program tasks use a different
  // site, so session setup is unaffected).
  inject.site(fault::site::kDevmgrTaskAbort, {.probability = 1.0, .budget = 1});

  ManagerRig rig;
  remote::RemoteRuntime runtime({rig.address(recovery_options())});
  ocl::Session session("poison-app");
  auto context = runtime.create_context("fpga-b", session);
  ASSERT_TRUE(context.ok()) << context.status().to_string();

  auto buffer = context.value()->create_buffer(4096);
  ASSERT_TRUE(buffer.ok());
  auto queue = context.value()->create_queue();
  ASSERT_TRUE(queue.ok());

  std::vector<std::uint8_t> data(4096, 0xAB);
  auto event = queue.value()->enqueue_write(buffer.value(), 0, ByteSpan{data},
                                            /*blocking=*/false);
  ASSERT_TRUE(event.ok()) << event.status().to_string();
  ASSERT_TRUE(queue.value()->flush().ok());

  // The injected mid-task abort surfaces as the event's terminal status.
  Status waited = event.value()->wait();
  EXPECT_EQ(waited.code(), StatusCode::kAborted) << waited.to_string();

  // A dependent op may not silently run after its dependency failed: the
  // poisoned wait list is rejected client-side, before anything is sent.
  std::array<ocl::EventPtr, 1> deps = {event.value()};
  auto dependent = queue.value()->enqueue_write(
      buffer.value(), 0, ByteSpan{data}, /*blocking=*/false,
      ocl::EventWaitList{deps});
  EXPECT_EQ(dependent.status().code(), StatusCode::kFailedPrecondition)
      << dependent.status().to_string();
}

TEST(EventPoisoning, LostCompletionTimesOutAndPoisonsDependents) {
  fault::ScopedInjection inject(/*seed=*/1);
  inject.site(fault::site::kNetNotifyDropComplete, {.budget = 1});

  CallOptions options;
  options.timeout = vt::Duration::millis(50);
  options.wedge_grace = std::chrono::milliseconds(150);

  ManagerRig rig;
  remote::RemoteRuntime runtime({rig.address(options)});
  ocl::Session session("timeout-app");
  auto context = runtime.create_context("fpga-b", session);
  ASSERT_TRUE(context.ok()) << context.status().to_string();

  auto buffer = context.value()->create_buffer(4096);
  ASSERT_TRUE(buffer.ok());
  auto queue = context.value()->create_queue();
  ASSERT_TRUE(queue.ok());

  std::vector<std::uint8_t> data(4096, 0xCD);
  auto event = queue.value()->enqueue_write(buffer.value(), 0, ByteSpan{data},
                                            /*blocking=*/false);
  ASSERT_TRUE(event.ok()) << event.status().to_string();
  ASSERT_TRUE(queue.value()->flush().ok());

  // The completion was dropped on the wire; the bounded wait abandons the
  // event at its modeled deadline instead of wedging the caller forever.
  Status waited = event.value()->wait();
  EXPECT_EQ(waited.code(), StatusCode::kDeadlineExceeded)
      << waited.to_string();

  std::array<ocl::EventPtr, 1> deps = {event.value()};
  auto dependent = queue.value()->enqueue_write(
      buffer.value(), 0, ByteSpan{data}, /*blocking=*/false,
      ocl::EventWaitList{deps});
  EXPECT_EQ(dependent.status().code(), StatusCode::kFailedPrecondition)
      << dependent.status().to_string();
}

// --- 5. testbed: probe-driven migration + circuit breaker --------------------

workloads::WorkloadFactory small_sobel_factory() {
  return [] { return std::make_unique<workloads::SobelWorkload>(64, 48); };
}

TEST(GracefulDegradation, ProbesMigrateOffDeadBoardAndBreakerRecovers) {
  testbed::TestbedOptions options;
  options.gateway.max_invoke_attempts = 2;
  options.gateway.breaker_threshold = 2;
  options.gateway.breaker_cooldown = vt::Duration::seconds(1);
  options.call_options.timeout = vt::Duration::seconds(5);
  options.call_options.wedge_grace = std::chrono::milliseconds(150);
  options.gate_stall_grace = std::chrono::milliseconds(200);
  testbed::Testbed bed(options);

  ASSERT_TRUE(bed.deploy_blastfunction("sobel-r", small_sobel_factory()).ok());
  ASSERT_TRUE(bed.gateway().invoke("sobel-r").ok());

  // Find and kill the board the function landed on.
  auto device = bed.registry().device_of_instance("sobel-r-0");
  ASSERT_TRUE(device.has_value());
  std::string dead_node;
  for (const auto& record : bed.registry().devices()) {
    if (record.id == *device) dead_node = record.node;
  }
  ASSERT_FALSE(dead_node.empty());
  bed.manager(dead_node).shutdown();

  // Requests now fail (bounded retry included) and the breaker opens after
  // breaker_threshold consecutive failures...
  EXPECT_FALSE(bed.gateway().invoke("sobel-r").ok());
  EXPECT_FALSE(bed.gateway().invoke("sobel-r").ok());
  EXPECT_TRUE(bed.gateway().is_circuit_open("sobel-r"));

  // ...after which requests are shed without touching a replica (HTTP 503).
  auto shed = bed.gateway().invoke("sobel-r");
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.status().message().find("HTTP 503"), std::string::npos)
      << shed.status().to_string();

  // The registry's liveness sweep needs miss_threshold consecutive misses
  // to declare the board dead, then migrates its instances
  // create-before-delete to a healthy board.
  EXPECT_TRUE(bed.registry().is_device_healthy(*device));
  for (unsigned i = 0; i < options.policy.health.miss_threshold; ++i) {
    bed.registry().probe_devices();
  }
  EXPECT_FALSE(bed.registry().is_device_healthy(*device));

  auto moved = bed.gateway().instance("sobel-r");
  ASSERT_NE(moved, nullptr);
  auto new_device =
      bed.registry().device_of_instance(moved->pod().spec.name);
  ASSERT_TRUE(new_device.has_value());
  EXPECT_NE(*new_device, *device);

  // Half-open trial: once the cooldown has elapsed on the (fresh) replica's
  // clock, one request is admitted; its success closes the circuit.
  moved->advance_clock_to(vt::Time::zero() + vt::Duration::seconds(60));
  auto recovered = bed.gateway().invoke("sobel-r");
  EXPECT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_FALSE(bed.gateway().is_circuit_open("sobel-r"));

  // The dead board stays out of allocation until a probe succeeds again.
  ASSERT_TRUE(
      bed.deploy_blastfunction("sobel-r2", small_sobel_factory()).ok());
  auto second = bed.registry().device_of_instance("sobel-r2-0");
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(*second, *device);
}

std::string recovery_cell_name(
    const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& info) {
  return std::string(kRecoveryCells[std::get<0>(info.param)].label) +
         "_seed" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Cells, RecoveryMatrixTest,
    ::testing::Combine(::testing::Range(0, kRecoveryCellCount),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{7},
                                         std::uint64_t{1234},
                                         std::uint64_t{987654321})),
    recovery_cell_name);

}  // namespace
}  // namespace bf
