// Fault matrix (the tentpole of the fault-injection harness): a parameterized
// sweep over every (site × fault-kind) cell, driving the Sobel and MM
// workloads through the full remote stack (router → connection → Device
// Manager → board → completion pump) while one named site is armed with a
// seeded deterministic trigger. Each cell asserts the paper's load-bearing
// invariants under that fault:
//
//   1. Ordering  — the Device Manager's worker never executes tasks out of
//                  modeled (ready, client, seq) order (execution journal),
//                  excluding pops explicitly marked as gate fallbacks.
//   2. Liveness  — every request reaches COMPLETE or a terminal error; the
//                  scenario finishes (the ctest timeout is the backstop).
//   3. Integrity — whenever a workload's requests all succeed, its output is
//                  byte-exact against the CPU reference.
//   4. Determinism — two runs with the same seed produce identical digests:
//                  statuses, output hashes, execution journal and fire log.
//
// Cells: 13 sites across 4 subsystems (net / shm / devmgr / remote), fault
// kinds {connection loss, delay, drop, duplicate, denial/failure, stall,
// abort, reorder}. 13 cells × 4 seeds × 2 runs = 104 seeded iterations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "devmgr/device_manager.h"
#include "fault/injector.h"
#include "remote/remote_runtime.h"
#include "shm/namespace.h"
#include "sim/board.h"
#include "workloads/matmul.h"
#include "workloads/sobel.h"

namespace bf {
namespace {

constexpr int kRequestsPerWorkload = 2;

struct Cell {
  const char* label;
  const char* site;
  fault::Trigger trigger;
  // The reorder site probes the live notification queue (a fire only swaps
  // when a second frame is already queued), so its *hit ordinals* depend on
  // real arrival timing by design. Its modeled effects (statuses, journal,
  // output hashes) must still be deterministic; only the fire log is
  // excluded from the run-to-run comparison.
  bool timing_dependent_hits = false;
};

// after_hits offsets are chosen so the fault lands mid-scenario (past session
// setup) rather than on the very first touch; budgets bound storms so every
// cell can still terminate.
const Cell kCells[] = {
    {"net_conn_loss", fault::site::kNetSendConnLoss,
     {.probability = 1.0, .after_hits = 6, .budget = 1}},
    {"net_delay", fault::site::kNetSendDelay, {.probability = 0.4}},
    {"net_drop_enqueued", fault::site::kNetNotifyDropEnqueued,
     {.probability = 0.5}},
    {"net_dup_complete", fault::site::kNetNotifyDupComplete,
     {.probability = 0.5}},
    {"shm_grant_deny", fault::site::kShmGrantDeny, {.budget = 2}},
    {"shm_attach_fail", fault::site::kShmAttachFail, {.budget = 2}},
    {"shm_stage_fail", fault::site::kShmStageFail, {.probability = 0.35}},
    {"devmgr_worker_stall", fault::site::kDevmgrWorkerStall,
     {.probability = 0.5}},
    {"devmgr_task_abort", fault::site::kDevmgrTaskAbort,
     {.probability = 1.0, .after_hits = 1, .budget = 1}},
    {"devmgr_reconfig_abort", fault::site::kDevmgrReconfigAbort,
     {.budget = 1}},
    {"remote_reorder", fault::site::kRemotePumpReorder, {.probability = 0.5},
     /*timing_dependent_hits=*/true},
    {"remote_dup_complete", fault::site::kRemotePumpDupComplete,
     {.probability = 0.5}},
    {"remote_dup_enqueued", fault::site::kRemotePumpDupEnqueued,
     {.probability = 0.5}},
};

constexpr int kCellCount = static_cast<int>(std::size(kCells));

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 1469598103934665603ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

template <typename T>
std::uint64_t hash_vector(const std::vector<T>& v) {
  return fnv1a(v.data(), v.size() * sizeof(T));
}

// Everything observable about one scenario run, serialized for run-to-run
// comparison. Modeled quantities only — no wall-clock leaks in.
struct Digest {
  std::vector<int> statuses;  // status codes, in call order
  std::uint64_t sobel_hash = 0;
  std::uint64_t mm_hash = 0;
  std::vector<std::string> journal;
  std::vector<std::string> fire_log;  // sorted (cross-site order races)

  bool operator==(const Digest&) const = default;

  std::string to_string() const {
    std::ostringstream out;
    out << "statuses:";
    for (int code : statuses) out << ' ' << code;
    out << "\nsobel_hash: " << sobel_hash << "\nmm_hash: " << mm_hash
        << "\njournal:";
    for (const auto& entry : journal) out << "\n  " << entry;
    out << "\nfire_log:";
    for (const auto& entry : fire_log) out << "\n  " << entry;
    return out.str();
  }
};

struct Rig {
  Rig() {
    sim::BoardConfig bc;
    bc.id = "fpga-b";
    bc.node = "B";
    bc.host = sim::make_node_b();
    bc.memory_bytes = 128 * kMiB;
    board = std::make_unique<sim::Board>(bc);
    devmgr::DeviceManagerConfig mc;
    mc.id = "devmgr-b";
    mc.record_execution_journal = true;
    // A fallback pop would weaken the ordering assertion; with sequential
    // closed-loop clients the gate never needs the stall-breaker, so give it
    // a grace long enough that scheduler noise cannot trip it.
    mc.gate_stall_grace = std::chrono::milliseconds(5000);
    manager = std::make_unique<devmgr::DeviceManager>(mc, board.get(),
                                                      &node_shm);
    remote::ManagerAddress address;
    address.endpoint = &manager->endpoint();
    address.transport = net::local_control(bc.host);
    address.node_shm = &node_shm;
    runtime = std::make_unique<remote::RemoteRuntime>(
        std::vector<remote::ManagerAddress>{address});
  }

  shm::Namespace node_shm;
  std::unique_ptr<sim::Board> board;
  std::unique_ptr<devmgr::DeviceManager> manager;
  std::unique_ptr<remote::RemoteRuntime> runtime;
};

// Drives one workload through a fresh context: setup, kRequestsPerWorkload
// requests, integrity check when clean. Records every status code; returns
// true iff all requests succeeded.
template <typename WorkloadT, typename Check>
bool drive_workload(Rig& rig, WorkloadT& workload, const std::string& client,
                    Digest& digest, Check&& check_output) {
  ocl::Session session(client);
  auto context = rig.runtime->create_context("fpga-b", session);
  digest.statuses.push_back(static_cast<int>(context.status().code()));
  if (!context.ok()) return false;

  Status setup = workload.setup(*context.value());
  digest.statuses.push_back(static_cast<int>(setup.code()));
  bool all_ok = setup.ok();
  if (setup.ok()) {
    for (int i = 0; i < kRequestsPerWorkload; ++i) {
      Status request = workload.handle_request(*context.value());
      digest.statuses.push_back(static_cast<int>(request.code()));
      all_ok = all_ok && request.ok();
    }
    if (all_ok) {
      // Integrity: a run that reports success must match the CPU reference.
      // Faults may fail requests, but never silently corrupt one.
      check_output();
    }
  }
  workload.teardown();
  return all_ok;
}

Digest run_scenario(const Cell& cell, std::uint64_t seed) {
  fault::ScopedInjection inject(seed);
  inject.site(cell.site, cell.trigger);

  Digest digest;
  Rig rig;

  workloads::SobelWorkload sobel(64, 48);
  if (drive_workload(rig, sobel, "sobel-app", digest, [&] {
        EXPECT_EQ(sobel.last_output(),
                  workloads::sobel_reference(sobel.input_frame(), 64, 48))
            << "fault corrupted a successful sobel run";
      })) {
    digest.sobel_hash = hash_vector(sobel.last_output());
  }

  workloads::MatMulWorkload mm(16);
  if (drive_workload(rig, mm, "mm-app", digest, [&] {
        const auto expected =
            workloads::matmul_reference(mm.lhs(), mm.rhs(), mm.n());
        ASSERT_EQ(mm.last_output().size(), expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i) {
          EXPECT_NEAR(mm.last_output()[i], expected[i], 1e-4)
              << "fault corrupted a successful mm run at " << i;
        }
      })) {
    digest.mm_hash = hash_vector(mm.last_output());
  }

  // Ordering invariant: within each client, gate-safe pops execute in
  // modeled (ready, seq) order. Ready stamps are per-session virtual clocks,
  // so cross-client stamps are only comparable while both sessions coexist —
  // per-client FIFO is the guarantee that must survive every fault. A pop
  // marked unordered (gate shutdown / stall fallback) voids the guarantee
  // for comparisons across it, so the client's baseline resets there.
  const auto journal = rig.manager->execution_journal();
  std::map<std::string, std::tuple<std::int64_t, std::uint64_t>> baseline;
  for (const auto& record : journal) {
    if (!record.ordered) {
      baseline.erase(record.client_id);
    } else {
      auto key = std::make_tuple(record.ready.ns(), record.seq);
      auto it = baseline.find(record.client_id);
      if (it != baseline.end()) {
        EXPECT_LE(it->second, key)
            << "task (seq " << record.seq << ", client " << record.client_id
            << ") executed out of modeled order";
      }
      baseline[record.client_id] = key;
    }
    std::ostringstream entry;
    entry << record.ready.ns() << '/' << record.client_id << '/' << record.seq
          << (record.ordered ? "" : "/fallback");
    digest.journal.push_back(entry.str());
  }

  if (!cell.timing_dependent_hits) {
    digest.fire_log = fault::Injector::instance().fire_log();
    std::sort(digest.fire_log.begin(), digest.fire_log.end());
  }
  return digest;
}

class FaultMatrixTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(FaultMatrixTest, CellIsSafeAndDeterministic) {
  const Cell& cell = kCells[std::get<0>(GetParam())];
  const std::uint64_t seed = std::get<1>(GetParam());

  Digest first = run_scenario(cell, seed);
  Digest second = run_scenario(cell, seed);

  // Same seed => identical modeled trace, regardless of real scheduling.
  EXPECT_EQ(first, second)
      << "seed " << seed << " diverged at site " << cell.site
      << "\n--- run 1 ---\n" << first.to_string()
      << "\n--- run 2 ---\n" << second.to_string();
}

// Sanity check on the harness itself: with no faults armed, both workloads
// must complete cleanly (so a green matrix cell can't be a harness that
// silently stopped exercising the stack).
TEST(FaultMatrixTest, BaselineWithInjectorDisarmedIsClean) {
  Cell noop{"baseline", "matrix.baseline.unused", {.probability = 0.0}};
  Digest digest = run_scenario(noop, /*seed=*/1);
  for (int code : digest.statuses) {
    EXPECT_EQ(code, static_cast<int>(StatusCode::kOk));
  }
  EXPECT_NE(digest.sobel_hash, 0u);
  EXPECT_NE(digest.mm_hash, 0u);
  EXPECT_TRUE(digest.fire_log.empty());
}

std::string cell_name(
    const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& info) {
  return std::string(kCells[std::get<0>(info.param)].label) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Cells, FaultMatrixTest,
    ::testing::Combine(::testing::Range(0, kCellCount),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{7},
                                         std::uint64_t{1234},
                                         std::uint64_t{987654321})),
    cell_name);

}  // namespace
}  // namespace bf
