// bf::ocl: the OpenCL-style host API surface (types, kernel arg capture,
// wait_all, session clock semantics).
#include <gtest/gtest.h>

#include "native/native_runtime.h"
#include "ocl/runtime.h"
#include "sim/bitstream.h"
#include "sim/board.h"

namespace bf::ocl {
namespace {

TEST(Kernel, ArgCaptureAndGrowth) {
  Kernel kernel(1, "vadd", 2);
  Buffer buffer{7, 1024};
  kernel.set_arg(0, buffer);
  kernel.set_arg(1, std::int64_t{42});
  kernel.set_arg(5, 2.5);  // grows the arg vector
  ASSERT_EQ(kernel.args().size(), 6u);
  EXPECT_EQ(std::get<BufferRef>(kernel.args()[0]).id, 7u);
  EXPECT_EQ(std::get<std::int64_t>(kernel.args()[1]), 42);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(kernel.args()[2]));
  EXPECT_DOUBLE_EQ(std::get<double>(kernel.args()[5]), 2.5);
}

TEST(Kernel, DefaultIsInvalid) {
  Kernel kernel;
  EXPECT_FALSE(kernel.valid());
  Buffer buffer;
  EXPECT_FALSE(buffer.valid());
}

TEST(EventStatusNames, AllDistinct) {
  EXPECT_EQ(to_string(EventStatus::kQueued), "QUEUED");
  EXPECT_EQ(to_string(EventStatus::kSubmitted), "SUBMITTED");
  EXPECT_EQ(to_string(EventStatus::kRunning), "RUNNING");
  EXPECT_EQ(to_string(EventStatus::kComplete), "COMPLETE");
  EXPECT_EQ(to_string(EventStatus::kError), "ERROR");
}

TEST(Session, ClientIdAndClock) {
  Session session("sobel-1-0");
  EXPECT_EQ(session.client_id(), "sobel-1-0");
  EXPECT_EQ(session.now(), vt::Time::zero());
  session.compute(vt::Duration::millis(7));
  EXPECT_EQ(session.now(), vt::Time::millis(7));
}

struct WaitAllFixture : ::testing::Test {
  WaitAllFixture()
      : board([] {
          sim::BoardConfig config;
          config.id = "fpga-t";
          config.node = "B";
          config.host = sim::make_node_b();
          config.memory_bytes = 64 * kMiB;
          return config;
        }()),
        runtime({&board}),
        session("t") {}
  sim::Board board;
  native::NativeRuntime runtime;
  Session session;
};

TEST_F(WaitAllFixture, WaitAllWaitsEveryEvent) {
  auto context = runtime.create_context("fpga-t", session);
  ASSERT_TRUE(context.ok());
  ASSERT_TRUE(context.value()->program(sim::BitstreamLibrary::kVadd).ok());
  auto buffer = context.value()->create_buffer(8 * kMiB);
  ASSERT_TRUE(buffer.ok());
  auto queue = context.value()->create_queue();
  ASSERT_TRUE(queue.ok());
  Bytes data(8 * kMiB);
  std::vector<EventPtr> events;
  for (int i = 0; i < 3; ++i) {
    auto event =
        queue.value()->enqueue_write(buffer.value(), 0, ByteSpan{data}, false);
    ASSERT_TRUE(event.ok());
    events.push_back(event.value());
  }
  ASSERT_TRUE(wait_all(events).ok());
  for (const EventPtr& event : events) {
    EXPECT_EQ(event->status(), EventStatus::kComplete);
    EXPECT_LE(event->completion_time(), session.now());
  }
}

TEST_F(WaitAllFixture, WaitAllToleratesNullEntries) {
  std::vector<EventPtr> events = {nullptr, nullptr};
  EXPECT_TRUE(wait_all(events).ok());
}

TEST_F(WaitAllFixture, SessionClockOrdersIndependentContexts) {
  // Two contexts on the same session share one virtual clock.
  auto c1 = runtime.create_context("fpga-t", session);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c1.value()->program(sim::BitstreamLibrary::kVadd).ok());
  const vt::Time after_program = session.now();
  auto c2 = runtime.create_context("fpga-t", session);
  ASSERT_TRUE(c2.ok());
  EXPECT_GE(session.now(), after_program);
}

}  // namespace
}  // namespace bf::ocl
