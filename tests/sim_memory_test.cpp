// bf::sim::DeviceMemory: modeled DDR allocator with lazy backing store.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "sim/memory.h"

namespace bf::sim {
namespace {

TEST(DeviceMemory, AllocateReleaseAccounting) {
  DeviceMemory memory(1 << 20);
  EXPECT_EQ(memory.capacity(), 1u << 20);
  auto a = memory.allocate(1000);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(memory.used(), 1000u);
  EXPECT_EQ(memory.allocation_count(), 1u);
  ASSERT_TRUE(memory.release(a.value()).ok());
  EXPECT_EQ(memory.used(), 0u);
  EXPECT_EQ(memory.allocation_count(), 0u);
}

TEST(DeviceMemory, ZeroSizeRejected) {
  DeviceMemory memory(1 << 20);
  EXPECT_FALSE(memory.allocate(0).ok());
}

TEST(DeviceMemory, ExhaustionReported) {
  DeviceMemory memory(1 << 10, /*bank_count=*/1);
  auto a = memory.allocate(1 << 10);
  ASSERT_TRUE(a.ok());
  auto b = memory.allocate(1);
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kResourceExhausted);
}

TEST(DeviceMemory, DoubleReleaseFails) {
  DeviceMemory memory(1 << 20);
  auto a = memory.allocate(64);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(memory.release(a.value()).ok());
  EXPECT_FALSE(memory.release(a.value()).ok());
}

TEST(DeviceMemory, WriteReadRoundtrip) {
  DeviceMemory memory(1 << 20);
  auto handle = memory.allocate(256);
  ASSERT_TRUE(handle.ok());
  Bytes data = {10, 20, 30, 40};
  ASSERT_TRUE(memory.write(handle.value(), 100, ByteSpan{data}).ok());
  Bytes out(4);
  ASSERT_TRUE(memory.read(handle.value(), 100, MutableByteSpan{out}).ok());
  EXPECT_EQ(out, data);
}

TEST(DeviceMemory, UnwrittenMemoryReadsZero) {
  DeviceMemory memory(1 << 20);
  auto handle = memory.allocate(64);
  ASSERT_TRUE(handle.ok());
  Bytes out(64, 0xFF);
  ASSERT_TRUE(memory.read(handle.value(), 0, MutableByteSpan{out}).ok());
  for (std::uint8_t byte : out) EXPECT_EQ(byte, 0);
}

TEST(DeviceMemory, PartialWriteThenReadBeyondIsZeroFilled) {
  DeviceMemory memory(1 << 20);
  auto handle = memory.allocate(64);
  ASSERT_TRUE(handle.ok());
  Bytes head = {1, 2};
  ASSERT_TRUE(memory.write(handle.value(), 0, ByteSpan{head}).ok());
  Bytes out(8, 0xFF);
  ASSERT_TRUE(memory.read(handle.value(), 0, MutableByteSpan{out}).ok());
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
  EXPECT_EQ(out[2], 0);
  EXPECT_EQ(out[7], 0);
}

TEST(DeviceMemory, OutOfBoundsRejected) {
  DeviceMemory memory(1 << 20);
  auto handle = memory.allocate(16);
  ASSERT_TRUE(handle.ok());
  Bytes data(8);
  EXPECT_FALSE(memory.write(handle.value(), 12, ByteSpan{data}).ok());
  Bytes out(32);
  EXPECT_FALSE(memory.read(handle.value(), 0, MutableByteSpan{out}).ok());
  EXPECT_FALSE(memory.write(MemHandle{999}, 0, ByteSpan{data}).ok());
}

TEST(DeviceMemory, FreeListCoalescesAcrossReleases) {
  DeviceMemory memory(1 << 12, /*bank_count=*/1);
  // Fill the bank with 4 x 1 KiB, free all, then a full-size allocation
  // must succeed only if adjacent regions coalesced.
  std::vector<MemHandle> handles;
  for (int i = 0; i < 4; ++i) {
    auto handle = memory.allocate(1 << 10);
    ASSERT_TRUE(handle.ok());
    handles.push_back(handle.value());
  }
  EXPECT_FALSE(memory.allocate(1).ok());
  // Release out of order to exercise both coalesce directions.
  ASSERT_TRUE(memory.release(handles[1]).ok());
  ASSERT_TRUE(memory.release(handles[3]).ok());
  ASSERT_TRUE(memory.release(handles[0]).ok());
  ASSERT_TRUE(memory.release(handles[2]).ok());
  auto big = memory.allocate(1 << 12);
  EXPECT_TRUE(big.ok());
}

TEST(DeviceMemory, ResetDropsEverything) {
  DeviceMemory memory(1 << 20);
  auto a = memory.allocate(100);
  auto b = memory.allocate(200);
  ASSERT_TRUE(a.ok() && b.ok());
  memory.reset();
  EXPECT_EQ(memory.used(), 0u);
  Bytes out(10);
  EXPECT_FALSE(memory.read(a.value(), 0, MutableByteSpan{out}).ok());
  EXPECT_TRUE(memory.allocate(1 << 19).ok());
}

TEST(DeviceMemory, AllocationSizeQuery) {
  DeviceMemory memory(1 << 20);
  auto handle = memory.allocate(12345);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(memory.allocation_size(handle.value()).value(), 12345u);
  EXPECT_FALSE(memory.allocation_size(MemHandle{777}).ok());
}

// Property test: random alloc/free/write/read sequences preserve the
// allocator invariants (used-bytes accounting, data integrity, no overlap).
class DeviceMemoryPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DeviceMemoryPropertyTest, RandomOpsKeepInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  DeviceMemory memory(1 << 18);
  struct Live {
    MemHandle handle;
    std::uint64_t size;
    std::uint8_t pattern;
  };
  std::vector<Live> live;
  std::uint64_t expected_used = 0;

  for (int step = 0; step < 400; ++step) {
    const int action = static_cast<int>(rng.next_below(3));
    if (action == 0 || live.empty()) {
      const std::uint64_t size = 1 + rng.next_below(1 << 12);
      auto handle = memory.allocate(size);
      if (handle.ok()) {
        const auto pattern = static_cast<std::uint8_t>(rng.next_below(256));
        Bytes data(size, pattern);
        ASSERT_TRUE(memory.write(handle.value(), 0, ByteSpan{data}).ok());
        live.push_back(Live{handle.value(), size, pattern});
        expected_used += size;
      } else {
        EXPECT_EQ(handle.status().code(), StatusCode::kResourceExhausted);
      }
    } else if (action == 1) {
      const std::size_t index = rng.next_below(live.size());
      Bytes out(live[index].size);
      ASSERT_TRUE(
          memory.read(live[index].handle, 0, MutableByteSpan{out}).ok());
      for (std::uint8_t byte : out) {
        ASSERT_EQ(byte, live[index].pattern) << "step " << step;
      }
    } else {
      const std::size_t index = rng.next_below(live.size());
      ASSERT_TRUE(memory.release(live[index].handle).ok());
      expected_used -= live[index].size;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(index));
    }
    ASSERT_EQ(memory.used(), expected_used);
    ASSERT_EQ(memory.allocation_count(), live.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeviceMemoryPropertyTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace bf::sim
