// bf::metrics: Prometheus-style counters, gauges, histograms, exposition.
#include <gtest/gtest.h>

#include <thread>

#include "metrics/metrics.h"

namespace bf::metrics {
namespace {

TEST(Counter, MonotonicAccumulation) {
  Counter counter;
  counter.increment();
  counter.increment(2.5);
  EXPECT_DOUBLE_EQ(counter.value(), 3.5);
}

TEST(Counter, ThreadSafeIncrements) {
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) counter.increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(counter.value(), 40000.0);
}

TEST(Gauge, SetAndAdd) {
  Gauge gauge;
  gauge.set(10);
  gauge.add(-3);
  EXPECT_DOUBLE_EQ(gauge.value(), 7.0);
}

TEST(Histogram, BucketsAndMoments) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.observe(0.5);
  histogram.observe(5.0);
  histogram.observe(50.0);
  histogram.observe(500.0);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 555.5);
  EXPECT_EQ(histogram.cumulative_buckets(),
            (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST(Histogram, QuantileInterpolation) {
  Histogram histogram({10.0, 20.0, 30.0});
  for (int i = 0; i < 100; ++i) histogram.observe(15.0);  // all in (10,20]
  const double p50 = histogram.quantile(0.5);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 20.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.0), 10.0);
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram histogram({1.0});
  EXPECT_DOUBLE_EQ(histogram.quantile(0.9), 0.0);
}

TEST(Registry, SameSeriesIsShared) {
  Registry registry;
  auto a = registry.counter("requests_total", {{"fn", "sobel-1"}});
  auto b = registry.counter("requests_total", {{"fn", "sobel-1"}});
  auto c = registry.counter("requests_total", {{"fn", "sobel-2"}});
  a->increment();
  EXPECT_DOUBLE_EQ(b->value(), 1.0);
  EXPECT_DOUBLE_EQ(c->value(), 0.0);
  EXPECT_EQ(registry.series_count(), 2u);
}

TEST(Registry, ExposesPrometheusTextFormat) {
  Registry registry;
  registry.counter("bf_requests_total", {{"device", "fpga-b"}})->increment(7);
  registry.gauge("bf_sessions", {})->set(3);
  auto histogram = registry.histogram("bf_latency_ms", {{"fn", "mm-1"}},
                                      std::vector<double>{1.0, 10.0});
  histogram->observe(0.5);
  histogram->observe(5.0);

  const std::string text = registry.expose();
  EXPECT_NE(text.find("bf_requests_total{device=\"fpga-b\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("bf_sessions 3"), std::string::npos);
  EXPECT_NE(text.find("bf_latency_ms_bucket{fn=\"mm-1\",le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("bf_latency_ms_bucket{fn=\"mm-1\",le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("bf_latency_ms_count{fn=\"mm-1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("bf_latency_ms_sum{fn=\"mm-1\"} 5.5"),
            std::string::npos);
}

TEST(Registry, LabelFormatting) {
  EXPECT_EQ(format_labels({}), "");
  EXPECT_EQ(format_labels({{"a", "1"}, {"b", "2"}}), "{a=\"1\",b=\"2\"}");
}

TEST(Registry, DefaultLatencyBucketsAreSorted) {
  const auto buckets = Histogram::default_latency_buckets_ms();
  EXPECT_TRUE(std::is_sorted(buckets.begin(), buckets.end()));
  EXPECT_GE(buckets.size(), 10u);
}

}  // namespace
}  // namespace bf::metrics
