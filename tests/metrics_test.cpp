// bf::metrics: Prometheus-style counters, gauges, histograms, exposition.
#include <gtest/gtest.h>

#include <thread>

#include "metrics/metrics.h"

namespace bf::metrics {
namespace {

TEST(Counter, MonotonicAccumulation) {
  Counter counter;
  counter.increment();
  counter.increment(2.5);
  EXPECT_DOUBLE_EQ(counter.value(), 3.5);
}

TEST(Counter, ThreadSafeIncrements) {
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) counter.increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(counter.value(), 40000.0);
}

TEST(Gauge, SetAndAdd) {
  Gauge gauge;
  gauge.set(10);
  gauge.add(-3);
  EXPECT_DOUBLE_EQ(gauge.value(), 7.0);
}

TEST(Histogram, BucketsAndMoments) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.observe(0.5);
  histogram.observe(5.0);
  histogram.observe(50.0);
  histogram.observe(500.0);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 555.5);
  EXPECT_EQ(histogram.cumulative_buckets(),
            (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST(Histogram, QuantileInterpolation) {
  Histogram histogram({10.0, 20.0, 30.0});
  for (int i = 0; i < 100; ++i) histogram.observe(15.0);  // all in (10,20]
  const double p50 = histogram.quantile(0.5);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 20.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.0), 10.0);
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram histogram({1.0});
  EXPECT_DOUBLE_EQ(histogram.quantile(0.9), 0.0);
}

TEST(Registry, SameSeriesIsShared) {
  Registry registry;
  auto a = registry.counter("requests_total", {{"fn", "sobel-1"}});
  auto b = registry.counter("requests_total", {{"fn", "sobel-1"}});
  auto c = registry.counter("requests_total", {{"fn", "sobel-2"}});
  a->increment();
  EXPECT_DOUBLE_EQ(b->value(), 1.0);
  EXPECT_DOUBLE_EQ(c->value(), 0.0);
  EXPECT_EQ(registry.series_count(), 2u);
}

TEST(Registry, ExposesPrometheusTextFormat) {
  Registry registry;
  registry.counter("bf_requests_total", {{"device", "fpga-b"}})->increment(7);
  registry.gauge("bf_sessions", {})->set(3);
  auto histogram = registry.histogram("bf_latency_ms", {{"fn", "mm-1"}},
                                      std::vector<double>{1.0, 10.0});
  histogram->observe(0.5);
  histogram->observe(5.0);

  const std::string text = registry.expose();
  EXPECT_NE(text.find("bf_requests_total{device=\"fpga-b\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("bf_sessions 3"), std::string::npos);
  EXPECT_NE(text.find("bf_latency_ms_bucket{fn=\"mm-1\",le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("bf_latency_ms_bucket{fn=\"mm-1\",le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("bf_latency_ms_count{fn=\"mm-1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("bf_latency_ms_sum{fn=\"mm-1\"} 5.5"),
            std::string::npos);
}

TEST(Registry, LabelFormatting) {
  EXPECT_EQ(format_labels({}), "");
  EXPECT_EQ(format_labels({{"a", "1"}, {"b", "2"}}), "{a=\"1\",b=\"2\"}");
}

TEST(Registry, DefaultLatencyBucketsAreSorted) {
  const auto buckets = Histogram::default_latency_buckets_ms();
  EXPECT_TRUE(std::is_sorted(buckets.begin(), buckets.end()));
  EXPECT_GE(buckets.size(), 10u);
}

// --- quantile edge cases -----------------------------------------------------

TEST(Histogram, QuantileExtremesOnPopulatedHistogram) {
  Histogram histogram({10.0, 20.0, 30.0});
  for (int i = 0; i < 100; ++i) histogram.observe(15.0);
  // q=0 lands on the first (empty) bucket's upper bound, q=1 walks to the
  // far edge of the populated bucket.
  EXPECT_DOUBLE_EQ(histogram.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 20.0);
}

TEST(Histogram, QuantileOutOfRangeIsAContractViolation) {
  Histogram histogram({10.0});
  histogram.observe(5.0);
  EXPECT_THROW((void)histogram.quantile(-0.01), ContractViolation);
  EXPECT_THROW((void)histogram.quantile(1.01), ContractViolation);
}

TEST(Histogram, SingleBucketInterpolation) {
  Histogram histogram({5.0});
  histogram.observe(3.0);
  // One observation in [0, 5]: linear interpolation within the bucket.
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 2.5);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 5.0);
}

TEST(Histogram, OverflowBucketQuantileExtrapolates) {
  Histogram histogram({5.0});
  histogram.observe(100.0);  // +Inf bucket
  // The open bucket has no upper bound; the estimate doubles the last one.
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 10.0);
}

TEST(Histogram, EmptyQuantileEdges) {
  Histogram histogram({1.0, 2.0});
  EXPECT_DOUBLE_EQ(histogram.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 0.0);
}

// --- exposition escaping and round-trip --------------------------------------

TEST(Registry, LabelValueEscaping) {
  // Backslash, double quote and newline per the Prometheus text format;
  // label *names* are never escaped.
  EXPECT_EQ(format_labels({{"path", "a\\b"}}), "{path=\"a\\\\b\"}");
  EXPECT_EQ(format_labels({{"msg", "say \"hi\""}}),
            "{msg=\"say \\\"hi\\\"\"}");
  EXPECT_EQ(format_labels({{"err", "line1\nline2"}}),
            "{err=\"line1\\nline2\"}");
}

TEST(Registry, ExposeEmitsExemplars) {
  Registry registry;
  auto histogram = registry.histogram("bf_task_span_ms", {},
                                      std::vector<double>{1.0, 10.0});
  histogram->observe(0.5);                      // no exemplar
  histogram->observe(5.0, 0xdeadbeefULL);       // traced observation
  const std::string text = registry.expose();
  EXPECT_NE(text.find("bf_task_span_ms_bucket{le=\"10\"} 2 "
                      "# {trace_id=\"00000000deadbeef\"} 5"),
            std::string::npos)
      << text;
  // The untraced bucket carries no exemplar suffix.
  EXPECT_NE(text.find("bf_task_span_ms_bucket{le=\"1\"} 1\n"),
            std::string::npos)
      << text;
}

TEST(Exposition, RoundTripsThroughParse) {
  Registry registry;
  registry.counter("bf_requests_total", {{"fn", "sobel \"1\""}})
      ->increment(7);
  registry.gauge("bf_sessions")->set(3.5);
  auto histogram =
      registry.histogram("bf_latency_ms", {{"fn", "a\\b\nc"}},
                         std::vector<double>{1.0, 10.0});
  histogram->observe(0.25);
  histogram->observe(4.0, 0x1234ULL);

  auto parsed = parse_exposition(registry.expose());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const std::vector<Sample>& samples = parsed.value();

  auto find = [&samples](const std::string& name,
                         const Labels& labels) -> const Sample* {
    for (const Sample& sample : samples) {
      if (sample.name == name && sample.labels == labels) return &sample;
    }
    return nullptr;
  };
  // Escaped label values parse back to the original bytes.
  const Sample* counter =
      find("bf_requests_total", {{"fn", "sobel \"1\""}});
  ASSERT_NE(counter, nullptr);
  EXPECT_DOUBLE_EQ(counter->value, 7.0);
  const Sample* gauge = find("bf_sessions", {});
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->value, 3.5);
  const Sample* bucket = find("bf_latency_ms_bucket",
                              {{"fn", "a\\b\nc"}, {"le", "10"}});
  ASSERT_NE(bucket, nullptr);
  EXPECT_DOUBLE_EQ(bucket->value, 2.0);
  EXPECT_EQ(bucket->exemplar_trace_id, "0000000000001234");
  EXPECT_DOUBLE_EQ(bucket->exemplar_value, 4.0);
  const Sample* sum = find("bf_latency_ms_sum", {{"fn", "a\\b\nc"}});
  ASSERT_NE(sum, nullptr);
  EXPECT_DOUBLE_EQ(sum->value, 4.25);
}

TEST(Exposition, SkipsCommentsAndRejectsGarbage) {
  auto ok = parse_exposition("# HELP bf_x helps\n# TYPE bf_x counter\n"
                             "bf_x 1\n\n");
  ASSERT_TRUE(ok.ok());
  ASSERT_EQ(ok.value().size(), 1u);
  EXPECT_EQ(ok.value()[0].name, "bf_x");

  EXPECT_EQ(parse_exposition("bf_y{oops} 1\n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(parse_exposition("bf_z notanumber\n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(parse_exposition("loneword\n").status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace bf::metrics
