// bf::sim cost models and node profiles: the calibration layer everything
// else stands on.
#include <gtest/gtest.h>

#include "sim/costmodel.h"

namespace bf::sim {
namespace {

TEST(LinkModel, LatencyPlusBandwidth) {
  LinkModel link(vt::Duration::micros(100), 1e9);  // 1 GB/s
  EXPECT_EQ(link.transfer_time(0).ns(), vt::Duration::micros(100).ns());
  // 1 MB at 1 GB/s = 1 ms + 0.1 ms latency.
  EXPECT_NEAR(link.transfer_time(1'000'000).ms(), 1.1, 1e-6);
}

TEST(LinkModel, ZeroBandwidthMeansLatencyOnly) {
  LinkModel link(vt::Duration::micros(50), 0.0);
  EXPECT_EQ(link.transfer_time(1 << 30).ns(),
            vt::Duration::micros(50).ns());
}

TEST(CopyModel, ProportionalToSize) {
  CopyModel copy(2e9);
  EXPECT_NEAR(copy.copy_time(2'000'000).ms(), 1.0, 1e-6);
  EXPECT_EQ(copy.copy_time(0).ns(), 0);
  CopyModel disabled(0.0);
  EXPECT_EQ(disabled.copy_time(1 << 20).ns(), 0);
}

TEST(SerializationModel, PerMessagePlusPerByte) {
  SerializationModel serialization(vt::Duration::micros(30), 1e9);
  EXPECT_EQ(serialization.encode_time(0).ns(),
            vt::Duration::micros(30).ns());
  EXPECT_NEAR(serialization.encode_time(1'000'000).ms(), 1.03, 1e-6);
}

TEST(NodeProfiles, WorkerNodesAreFasterThanMaster) {
  const NodeProfile a = make_node_a();
  const NodeProfile b = make_node_b();
  const NodeProfile c = make_node_c();
  EXPECT_EQ(a.name, "A");
  EXPECT_EQ(b.name, "B");
  EXPECT_EQ(c.name, "C");
  // Node A: PCIe gen2 (half the gen3 bandwidth) and a slower CPU.
  EXPECT_LT(a.pcie.bytes_per_second(), b.pcie.bytes_per_second());
  EXPECT_GT(a.fork_request_overhead.ns(), b.fork_request_overhead.ns());
  EXPECT_GT(a.host_call_overhead.ns(), b.host_call_overhead.ns());
  EXPECT_GT(a.grpc_control_rtt.ns(), b.grpc_control_rtt.ns());
  // B and C share hardware.
  EXPECT_EQ(b.pcie.bytes_per_second(), c.pcie.bytes_per_second());
}

TEST(NodeProfiles, CalibrationAnchors) {
  const NodeProfile b = make_node_b();
  // Fig 4a anchor: a 2 GiB memcpy takes ~155 ms at the shm copy rate.
  EXPECT_NEAR(b.memcpy_model.copy_time(2ULL << 30).ms(), 155.0, 5.0);
  // Fig 4b anchor: 8 MiB over PCIe gen3 x8 effective ~ 1.3 ms.
  EXPECT_NEAR(b.pcie.transfer_time(8 << 20).ms(), 1.45, 0.2);
  // Control floor: ~2 ms RTT on the local virtual network.
  EXPECT_NEAR(b.grpc_control_rtt.ms(), 1.9, 0.2);
}

class LinkMonotoneTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(LinkMonotoneTest, TransferTimeMonotoneInSize) {
  const auto [latency_us, shift] = GetParam();
  LinkModel link(vt::Duration::micros(latency_us), 6.0 * (1 << 30));
  const std::size_t small = 1ULL << shift;
  EXPECT_LT(link.transfer_time(small).ns(),
            link.transfer_time(small * 2).ns());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LinkMonotoneTest,
    ::testing::Values(std::make_pair(0, 10), std::make_pair(100, 12),
                      std::make_pair(100, 20), std::make_pair(500, 24),
                      std::make_pair(1000, 28)));

}  // namespace
}  // namespace bf::sim
