// Remote OpenCL Library <-> Device Manager integration: the paper's core
// sharing path, including both data planes (gRPC and shared memory) and the
// transparency property (the same host code as the native tests).
#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "devmgr/device_manager.h"
#include "native/native_runtime.h"
#include "remote/remote_runtime.h"
#include "sim/bitstream.h"
#include "sim/board.h"
#include "shm/namespace.h"

namespace bf {
namespace {

struct Rig {
  explicit Rig(bool with_shm) {
    sim::BoardConfig bc;
    bc.id = "fpga-b";
    bc.node = "B";
    bc.host = sim::make_node_b();
    bc.memory_bytes = 512 * kMiB;
    board = std::make_unique<sim::Board>(bc);

    devmgr::DeviceManagerConfig mc;
    mc.id = "devmgr-b";
    mc.allow_shared_memory = with_shm;
    manager = std::make_unique<devmgr::DeviceManager>(
        mc, board.get(), with_shm ? &node_shm : nullptr);

    remote::ManagerAddress address;
    address.endpoint = &manager->endpoint();
    address.transport = with_shm ? net::local_control(bc.host)
                                 : net::local_grpc(bc.host);
    address.node_shm = with_shm ? &node_shm : nullptr;
    address.prefer_shared_memory = with_shm;
    runtime = std::make_unique<remote::RemoteRuntime>(
        std::vector<remote::ManagerAddress>{address});
  }

  shm::Namespace node_shm;
  std::unique_ptr<sim::Board> board;
  std::unique_ptr<devmgr::DeviceManager> manager;
  std::unique_ptr<remote::RemoteRuntime> runtime;
};

// The transparency check: identical host code runs against any
// ocl::Runtime. (This function is also exercised against NativeRuntime.)
std::vector<float> run_vadd(ocl::Runtime& runtime, ocl::Session& session,
                            std::size_t n) {
  auto devices = runtime.devices();
  EXPECT_TRUE(devices.ok()) << devices.status().to_string();
  auto context = runtime.create_context(devices.value()[0].id, session);
  EXPECT_TRUE(context.ok()) << context.status().to_string();
  EXPECT_TRUE(context.value()->program(sim::BitstreamLibrary::kVadd).ok());

  std::vector<float> a(n), b(n), c(n, 0.0F);
  std::iota(a.begin(), a.end(), 0.0F);
  std::iota(b.begin(), b.end(), 1000.0F);

  auto ba = context.value()->create_buffer(n * sizeof(float));
  auto bb = context.value()->create_buffer(n * sizeof(float));
  auto bc = context.value()->create_buffer(n * sizeof(float));
  EXPECT_TRUE(ba.ok() && bb.ok() && bc.ok());
  auto queue = context.value()->create_queue();
  EXPECT_TRUE(queue.ok());

  EXPECT_TRUE(queue.value()
                  ->enqueue_write(ba.value(), 0,
                                  as_bytes(a.data(), n * sizeof(float)), true)
                  .ok());
  EXPECT_TRUE(queue.value()
                  ->enqueue_write(bb.value(), 0,
                                  as_bytes(b.data(), n * sizeof(float)), true)
                  .ok());
  auto kernel = context.value()->create_kernel("vadd");
  EXPECT_TRUE(kernel.ok());
  kernel.value().set_arg(0, ba.value());
  kernel.value().set_arg(1, bb.value());
  kernel.value().set_arg(2, bc.value());
  kernel.value().set_arg(3, static_cast<std::int64_t>(n));
  auto event = queue.value()->enqueue_kernel(kernel.value(), {n, 1, 1});
  EXPECT_TRUE(event.ok());
  EXPECT_TRUE(queue.value()->finish().ok());
  EXPECT_EQ(event.value()->status(), ocl::EventStatus::kComplete);
  EXPECT_TRUE(queue.value()
                  ->enqueue_read(bc.value(), 0,
                                 as_writable_bytes(c.data(),
                                                   n * sizeof(float)),
                                 true)
                  .ok());
  return c;
}

TEST(RemoteRuntime, VaddOverGrpcDataPath) {
  Rig rig(/*with_shm=*/false);
  ocl::Session session("fn-grpc");
  auto c = run_vadd(*rig.runtime, session, 4096);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_FLOAT_EQ(c[i], static_cast<float>(i) + (1000.0F + i));
  }
  EXPECT_GT(rig.manager->tasks_executed(), 0u);
}

TEST(RemoteRuntime, VaddOverSharedMemory) {
  Rig rig(/*with_shm=*/true);
  ocl::Session session("fn-shm");
  auto c = run_vadd(*rig.runtime, session, 4096);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_FLOAT_EQ(c[i], static_cast<float>(i) + (1000.0F + i));
  }
}

TEST(RemoteRuntime, SharedMemorySlotsAreReleased) {
  Rig rig(/*with_shm=*/true);
  ocl::Session session("fn-shm");
  (void)run_vadd(*rig.runtime, session, 1024);
  // run_vadd destroyed its context: the manager's dispatcher (async) unlinks
  // the session's segment, leaving the node namespace empty again.
  for (int i = 0; i < 200 && rig.node_shm.segment_count() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(rig.node_shm.segment_count(), 0u);
}

TEST(RemoteRuntime, SharedMemoryPathIsFasterThanGrpc) {
  Rig grpc(false);
  Rig shm(true);
  ocl::Session s1("fn-a");
  ocl::Session s2("fn-b");
  (void)run_vadd(*grpc.runtime, s1, 1u << 20);  // 4 MiB buffers
  (void)run_vadd(*shm.runtime, s2, 1u << 20);
  EXPECT_LT(s2.now().ns(), s1.now().ns());
}

TEST(RemoteRuntime, DeviceInfoMatchesNative) {
  Rig rig(true);
  auto devices = rig.runtime->devices();
  ASSERT_TRUE(devices.ok());
  ASSERT_EQ(devices.value().size(), 1u);
  EXPECT_EQ(devices.value()[0].id, "fpga-b");
  EXPECT_EQ(devices.value()[0].vendor, "Intel");
  EXPECT_EQ(devices.value()[0].platform, "a10gx_de5a_net");
}

TEST(RemoteRuntime, TwoTenantsShareOneBoard) {
  Rig rig(true);
  constexpr int kCalls = 5;
  constexpr std::size_t kN = 64 * 1024;

  auto tenant = [&](const std::string& id, vt::Time* finish) {
    ocl::Session session(id);
    auto devices = rig.runtime->devices();
    ASSERT_TRUE(devices.ok());
    auto context = rig.runtime->create_context("fpga-b", session);
    ASSERT_TRUE(context.ok());
    ASSERT_TRUE(context.value()->program(sim::BitstreamLibrary::kVadd).ok());
    auto a = context.value()->create_buffer(kN * sizeof(float));
    auto b = context.value()->create_buffer(kN * sizeof(float));
    auto c = context.value()->create_buffer(kN * sizeof(float));
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    auto queue = context.value()->create_queue();
    ASSERT_TRUE(queue.ok());
    std::vector<float> data(kN, 1.5F);
    auto kernel = context.value()->create_kernel("vadd");
    ASSERT_TRUE(kernel.ok());
    for (int call = 0; call < kCalls; ++call) {
      ASSERT_TRUE(queue.value()
                      ->enqueue_write(a.value(), 0,
                                      as_bytes(data.data(),
                                               data.size() * sizeof(float)),
                                      false)
                      .ok());
      ASSERT_TRUE(queue.value()
                      ->enqueue_write(b.value(), 0,
                                      as_bytes(data.data(),
                                               data.size() * sizeof(float)),
                                      false)
                      .ok());
      kernel.value().set_arg(0, a.value());
      kernel.value().set_arg(1, b.value());
      kernel.value().set_arg(2, c.value());
      kernel.value().set_arg(3, static_cast<std::int64_t>(kN));
      ASSERT_TRUE(
          queue.value()->enqueue_kernel(kernel.value(), {kN, 1, 1}).ok());
      std::vector<float> out(kN);
      ASSERT_TRUE(queue.value()
                      ->enqueue_read(c.value(), 0,
                                     as_writable_bytes(out.data(),
                                                       out.size() *
                                                           sizeof(float)),
                                     true)
                      .ok());
      ASSERT_FLOAT_EQ(out[0], 3.0F);
    }
    *finish = session.now();
  };

  vt::Time f1;
  vt::Time f2;
  std::thread t1(tenant, "tenant-1", &f1);
  std::thread t2(tenant, "tenant-2", &f2);
  t1.join();
  t2.join();
  EXPECT_GT(f1.ns(), 0);
  EXPECT_GT(f2.ns(), 0);
  // Each tenant programmed once; the second program call was a no-op.
  EXPECT_EQ(rig.board->reconfiguration_count(), 1u);
  // All 2 * kCalls request groups executed (counted before the completion
  // notifications are delivered).
  EXPECT_GE(rig.manager->tasks_executed(), 2u * kCalls);
}

}  // namespace
}  // namespace bf
