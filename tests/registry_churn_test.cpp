// Churn invariant stress harness for the Registry allocation / migration
// state machine (ctest -L churn; also run under TSan+ASan by
// bench/run_sanitized.sh).
//
// A seeded driver interleaves device register/deregister, pod
// create/delete/replace, probe sweeps, reconfiguration requests and
// fault-injected migration failures over virtual time, and checks global
// invariants after EVERY event (docs/ALLOCATION.md lists them):
//
//   I1  every running pod of a registered function has an assignment;
//   I2  every assignment names a registered device;
//   I3  capacity: the distinct accelerators required by a device's bound
//       tenants fit in its PR regions, and outstanding reservations never
//       exceed the board's raw free regions;
//   I4  instance->device map and device->instances index agree exactly;
//   I5  (quiesce, after two probe sweeps) assignments are exactly the
//       running pods of registered functions — stale bindings were reaped.
//
// I3 is the detector for the pending-region reservation fix (without it two
// reconfigure-allocations can double-book the last free region); I1 is the
// detector for the migration-rollback fix (without it a failed
// create-before-delete replacement leaves a running pod with no assignment).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fault/injector.h"
#include "registry/registry.h"
#include "sim/bitstream.h"

namespace bf::registry {
namespace {

struct FunctionSpec {
  std::string name;
  std::string accelerator;
  const char* bitstream;
};

const std::vector<FunctionSpec>& function_specs() {
  static const std::vector<FunctionSpec> specs = {
      {"fn-sobel", "sobel", sim::BitstreamLibrary::kSobel},
      {"fn-mm", "mm", sim::BitstreamLibrary::kMatMul},
      {"fn-fir", "fir", sim::BitstreamLibrary::kFir},
  };
  return specs;
}

// One full churn run: cluster + boards + managers + registry driven by a
// seeded RNG for `events` steps, invariants checked after every step.
class ChurnDriver {
 public:
  static constexpr std::size_t kInitialDevices = 3;
  static constexpr std::size_t kMaxDevices = 6;

  explicit ChurnDriver(std::uint64_t seed) : rng_(seed), inject_(seed) {
    // Migration failures: every create-before-delete replacement has a
    // 15% chance to abort, exercising the rollback paths.
    inject_.site(fault::site::kClusterReplaceFail, {.probability = 0.15});

    std::vector<cluster::NodeSpec> nodes = {{"A", sim::make_node_a()},
                                            {"B", sim::make_node_b()},
                                            {"C", sim::make_node_c()}};
    cluster_ = std::make_unique<cluster::Cluster>(nodes);
    registry_ = std::make_unique<Registry>(cluster_.get(), AllocationPolicy{},
                                           [this] { return now_; });
    for (const auto& node : nodes) add_device(node.name, node.profile);
    for (const FunctionSpec& fn : function_specs()) {
      DeviceQuery query{"Intel", "a10gx_de5a_net", fn.accelerator,
                        fn.bitstream};
      BF_CHECK(registry_->register_function(fn.name, query).ok());
    }
    registry_->attach_to_cluster();
  }

  void run(std::size_t events) {
    for (std::size_t i = 0; i < events; ++i) {
      now_ = vt::Time::nanos(now_.ns() + 1'000'000 +
                             rng_.next_below(5'000'000));
      step();
      check_invariants("event " + std::to_string(i));
      if (::testing::Test::HasFailure()) {
        dump_state();
        return;  // first violation is the actionable one; stop the run
      }
      if ((i + 1) % 100 == 0) concurrency_window();
      if ((i + 1) % 150 == 0) quiesce("quiesce after event " +
                                      std::to_string(i));
    }
    quiesce("final quiesce");
    if (::testing::Test::HasFailure()) dump_state();
  }

 private:
  // --- device / pod bookkeeping -----------------------------------------------

  void add_device(const std::string& node_name,
                  const sim::NodeProfile& profile) {
    if (!cluster_->find_node(node_name)) {
      BF_CHECK(cluster_->add_node(cluster::NodeSpec{node_name, profile}).ok());
    }
    sim::BoardConfig bc;
    bc.id = "fpga-" + node_name;
    bc.node = node_name;
    bc.host = profile;
    bc.functional = false;
    // Mixed fleet: alternate classic (1 region) and space-sharing boards.
    bc.pr_regions = 1 + static_cast<unsigned>(boards_.size() % 2);
    boards_.push_back(std::make_unique<sim::Board>(bc));
    devmgr::DeviceManagerConfig mc;
    mc.id = "devmgr-" + node_name;
    managers_.push_back(std::make_unique<devmgr::DeviceManager>(
        mc, boards_.back().get(), nullptr));
    DeviceRecord record;
    record.id = boards_.back()->id();
    record.vendor = "Intel";
    record.platform = "a10gx_de5a_net";
    record.node = node_name;
    record.manager_address = managers_.back()->endpoint().address();
    record.manager = managers_.back().get();
    BF_CHECK(registry_->register_device(std::move(record)).ok());
  }

  std::vector<cluster::Pod> registered_pods() const {
    std::vector<cluster::Pod> out;
    for (const cluster::Pod& pod : cluster_->list_pods()) {
      if (is_registered_function(pod.spec.function)) out.push_back(pod);
    }
    return out;
  }

  static bool is_registered_function(const std::string& function) {
    for (const FunctionSpec& fn : function_specs()) {
      if (fn.name == function) return true;
    }
    return false;
  }

  const FunctionSpec& random_function() {
    return function_specs()[rng_.next_below(function_specs().size())];
  }

  // --- events ------------------------------------------------------------------

  void step() {
    switch (rng_.next_below(10)) {
      case 0:
      case 1:
      case 2:
        create_pod();
        break;
      case 3:
        delete_pod();
        break;
      case 4:
        replace_pod();
        break;
      case 5:
        request_reconfiguration();
        break;
      case 6:
        registry_->probe_devices();
        break;
      case 7:
        realize_pending_image();
        break;
      case 8:
        provision_or_deregister_device();
        break;
      case 9:
        ghost_or_unhealthy();
        break;
    }
  }

  void create_pod() {
    const FunctionSpec& fn = random_function();
    cluster::PodSpec spec;
    spec.name = fn.name + "-" + std::to_string(pod_counter_++);
    spec.function = fn.name;
    const std::string name = spec.name;
    auto created = cluster_->create_pod(std::move(spec));
    if (created.ok()) {
      // Admission succeeded: the allocation must already be visible.
      auto device = registry_->device_of_instance(created.value().spec.name);
      ASSERT_TRUE(device.has_value());
      note("create " + name + " -> " + *device);
    } else {
      // !ok is legitimate churn: no compatible/healthy device right now.
      note("create " + name + " rejected: " + created.status().to_string());
    }
  }

  void delete_pod() {
    auto pods = registered_pods();
    if (pods.empty()) return;
    const std::string name =
        pods[rng_.next_below(pods.size())].spec.name;
    ASSERT_TRUE(cluster_->delete_pod(name).ok());
    // The watcher must have unbound the instance synchronously.
    ASSERT_FALSE(registry_->device_of_instance(name).has_value());
    note("delete " + name);
  }

  void replace_pod() {
    auto pods = registered_pods();
    if (pods.empty()) return;
    const std::string name =
        pods[rng_.next_below(pods.size())].spec.name;
    auto replaced = cluster_->replace_pod(name);
    if (replaced.ok()) {
      ASSERT_TRUE(registry_->device_of_instance(replaced.value().spec.name)
                      .has_value());
      ASSERT_FALSE(cluster_->get_pod(name).has_value());
      note("replace " + name + " -> " + replaced.value().spec.name);
    } else {
      // Injected failure (or no capacity): the old pod keeps serving.
      ASSERT_TRUE(cluster_->get_pod(name).has_value());
      note("replace " + name + " failed: " +
           replaced.status().to_string());
    }
  }

  void request_reconfiguration() {
    auto pods = registered_pods();
    if (pods.empty()) return;
    const std::string name =
        pods[rng_.next_below(pods.size())].spec.name;
    if (!registry_->device_of_instance(name).has_value()) return;
    const FunctionSpec& fn = random_function();
    // May fail (migration aborted); the rollback paths are what we stress.
    // On success the REQUESTING instance now needs fn's image, not its
    // function's — record the override so I3 judges demand correctly.
    Status status = registry_->request_reconfiguration(name, fn.bitstream);
    if (status.ok()) {
      overrides_[name] = fn.accelerator;
      note("reconfig " + name + " -> " + fn.accelerator);
    } else {
      note("reconfig " + name + " -> " + fn.accelerator +
           " failed: " + status.to_string());
    }
  }

  // The Device Manager side of a reconfiguration: make a reserved or
  // expected image actually resident on the board, as the first invoke
  // through the gateway would.
  void realize_pending_image() {
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < boards_.size(); ++i) {
      auto sample = registry_->sample_device(boards_[i]->id());
      if (!sample.ok()) continue;  // deregistered
      if (!sample.value().pending_accelerators.empty() ||
          (!sample.value().expected_accelerator.empty() &&
           !boards_[i]->has_kernel(sample.value().expected_accelerator))) {
        candidates.push_back(i);
      }
    }
    if (candidates.empty()) return;
    const std::size_t i = candidates[rng_.next_below(candidates.size())];
    auto sample = registry_->sample_device(boards_[i]->id());
    ASSERT_TRUE(sample.ok());
    const std::string accelerator =
        !sample.value().pending_accelerators.empty()
            ? sample.value()
                  .pending_accelerators[rng_.next_below(
                      sample.value().pending_accelerators.size())]
            : sample.value().expected_accelerator;
    const sim::Bitstream* bitstream = nullptr;
    for (const FunctionSpec& fn : function_specs()) {
      if (fn.accelerator == accelerator) {
        bitstream = sim::BitstreamLibrary::standard().find(fn.bitstream);
      }
    }
    if (bitstream == nullptr) return;  // image outside our function set
    bool wiped = false;
    (void)boards_[i]->ensure_accelerator(*bitstream, now_, &wiped);
    note("realize " + accelerator + " on " + boards_[i]->id() +
         (wiped ? " (wiped)" : ""));
  }

  void provision_or_deregister_device() {
    const std::size_t registered = registry_->devices().size();
    if (registered < kMaxDevices && rng_.next_below(2) == 0) {
      const std::string name = "N" + std::to_string(node_counter_++);
      sim::NodeProfile profile = sim::make_node_b();
      profile.name = name;
      add_device(name, profile);
      note("provision fpga-" + name);
      return;
    }
    // Deregistration: refused while the board serves instances, allowed
    // once it is tenant-free. Never drop below two devices so migrations
    // keep having a destination.
    if (registered <= 2) return;
    auto devices = registry_->devices();
    const DeviceRecord& record =
        devices[rng_.next_below(devices.size())];
    const bool has_tenants =
        !registry_->instances_on_device(record.id).empty();
    Status status = registry_->deregister_device(record.id);
    if (has_tenants) {
      ASSERT_EQ(status.code(), StatusCode::kFailedPrecondition);
      note("deregister " + record.id + " refused (tenants)");
    } else {
      ASSERT_TRUE(status.ok());
      note("deregister " + record.id);
    }
  }

  void ghost_or_unhealthy() {
    if (rng_.next_below(3) != 0) {
      // A binding whose pod was deleted while the registry was detached:
      // allocate with no pod ever created. The two-strike GC must reap it
      // within two probe sweeps (checked at quiesce).
      const FunctionSpec& fn = random_function();
      DeviceQuery query{"Intel", "a10gx_de5a_net", fn.accelerator,
                        fn.bitstream};
      const std::string name = "ghost-" + std::to_string(pod_counter_++);
      auto ghost = registry_->allocate(name, query);
      note("ghost " + name + " (" + fn.accelerator + ") " +
           (ghost.ok() ? "-> " + ghost.value().device_id : "rejected"));
      return;
    }
    // Kill a manager: probe sweeps must mark the board unhealthy and
    // evacuate it (best effort under injected replacement failures).
    if (shutdowns_ >= 2) return;
    std::size_t healthy = 0;
    for (const DeviceRecord& record : registry_->devices()) {
      if (registry_->is_device_healthy(record.id)) ++healthy;
    }
    if (healthy <= 2) return;
    ++shutdowns_;
    const std::size_t victim = rng_.next_below(managers_.size());
    managers_[victim]->shutdown();
    note("shutdown manager of " + boards_[victim]->id());
  }

  // Read-side traffic from other threads while the driver mutates: gives
  // TSan real lock coverage over the registry's shared state.
  void concurrency_window() {
    std::thread reader([this] {
      for (int i = 0; i < 50; ++i) {
        (void)registry_->assignments();
        for (const DeviceRecord& record : registry_->devices()) {
          (void)registry_->sample_device(record.id);
          (void)registry_->is_device_healthy(record.id);
        }
      }
    });
    for (int i = 0; i < 5; ++i) {
      create_pod();
      delete_pod();
    }
    reader.join();
  }

  void note(std::string entry) {
    log_.push_back(std::move(entry));
    if (log_.size() > 40) log_.erase(log_.begin());
  }

  // On a failed invariant: the recent event history plus the full device /
  // assignment view, so a failing seed is diagnosable from the test output.
  void dump_state() {
    std::string out = "recent events:\n";
    for (const std::string& entry : log_) out += "  " + entry + "\n";
    out += "devices:\n";
    for (const DeviceRecord& record : registry_->devices()) {
      auto sample = registry_->sample_device(record.id);
      out += "  " + record.id;
      if (sample.ok()) {
        out += " expected=" + sample.value().expected_accelerator +
               " free=" + std::to_string(sample.value().free_regions) +
               " pending={";
        for (const auto& a : sample.value().pending_accelerators)
          out += a + ",";
        out += "} tenants={";
        for (const auto& inst : registry_->instances_on_device(record.id))
          out += inst + ",";
        out += "}";
      }
      out += "\n";
    }
    ADD_FAILURE() << out;
  }

  // --- invariants ----------------------------------------------------------------

  std::optional<std::string> required_accelerator(
      const std::string& instance) const {
    auto pod = cluster_->get_pod(instance);
    if (!pod.has_value()) return std::nullopt;  // ghost: pending GC
    if (auto it = overrides_.find(instance); it != overrides_.end()) {
      return it->second;  // explicit reconfiguration request won
    }
    auto query = registry_->function_query(pod->spec.function);
    if (!query.has_value()) return std::nullopt;
    return query->accelerator;
  }

  void check_invariants(const std::string& context) {
    const auto assignments = registry_->assignments();
    const auto devices = registry_->devices();
    std::set<std::string> device_ids;
    for (const DeviceRecord& record : devices) device_ids.insert(record.id);

    // I1: every running pod of a registered function is assigned.
    for (const cluster::Pod& pod : registered_pods()) {
      ASSERT_TRUE(assignments.contains(pod.spec.name))
          << context << ": running pod '" << pod.spec.name
          << "' has no device assignment (lost during a failed migration?)";
    }
    // I2: assignments only reference registered devices.
    for (const auto& [instance, device] : assignments) {
      ASSERT_TRUE(device_ids.contains(device))
          << context << ": instance '" << instance
          << "' assigned to unregistered device '" << device << "'";
    }
    // I3 + I4, per device.
    std::size_t indexed = 0;
    for (const DeviceRecord& record : devices) {
      const sim::Board* board = nullptr;
      for (const auto& candidate : boards_) {
        if (candidate->id() == record.id) board = candidate.get();
      }
      ASSERT_NE(board, nullptr) << context;
      std::set<std::string> required;
      for (const std::string& instance :
           registry_->instances_on_device(record.id)) {
        ++indexed;
        // I4 (index -> map).
        ASSERT_TRUE(assignments.contains(instance) &&
                    assignments.at(instance) == record.id)
            << context << ": index lists '" << instance << "' on '"
            << record.id << "' but the assignment map disagrees";
        if (auto accelerator = required_accelerator(instance)) {
          required.insert(*accelerator);
        }
      }
      // I3: tenant demand fits the board's regions (the double-booking
      // detector for the reservation fix).
      ASSERT_LE(required.size(), board->region_count())
          << context << ": device '" << record.id << "' has tenants of "
          << required.size() << " distinct accelerators but only "
          << board->region_count() << " PR region(s)";
      // I3b: outstanding reservations never exceed raw free regions.
      auto sample = registry_->sample_device(record.id);
      ASSERT_TRUE(sample.ok()) << context;
      ASSERT_LE(sample.value().pending_accelerators.size(),
                board->free_region_count())
          << context << ": device '" << record.id
          << "' reserved more regions than the board has free";
    }
    // I4 (map -> index): every assignment appeared exactly once above.
    ASSERT_EQ(indexed, assignments.size())
        << context << ": assignment map and device index diverged";
  }

  void quiesce(const std::string& context) {
    // Two sweeps: the two-strike GC needs consecutive pod-less sightings.
    registry_->probe_devices();
    registry_->probe_devices();
    check_invariants(context);
    // I5: assignments are now exactly the running registered pods.
    const auto assignments = registry_->assignments();
    const auto pods = registered_pods();
    ASSERT_EQ(assignments.size(), pods.size())
        << context << ": stale assignments survived two probe sweeps";
    for (const cluster::Pod& pod : pods) {
      ASSERT_TRUE(assignments.contains(pod.spec.name)) << context;
    }
  }

  bf::Rng rng_;
  fault::ScopedInjection inject_;
  vt::Time now_ = vt::Time::zero();
  std::unique_ptr<cluster::Cluster> cluster_;
  std::vector<std::unique_ptr<sim::Board>> boards_;
  std::vector<std::unique_ptr<devmgr::DeviceManager>> managers_;
  std::unique_ptr<Registry> registry_;
  std::size_t pod_counter_ = 0;
  std::size_t node_counter_ = 3;
  unsigned shutdowns_ = 0;
  // Instance -> accelerator it explicitly reconfigured to (diverging from
  // its function's registered query).
  std::map<std::string, std::string> overrides_;
  // Rolling window of recent events, dumped when an invariant fails.
  std::vector<std::string> log_;
};

class RegistryChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegistryChurn, InvariantsHoldUnderChurn) {
  ChurnDriver driver(GetParam());
  driver.run(/*events=*/600);
  // The run must actually have exercised the failure paths it claims to
  // cover: at least one injected replacement failure fired.
  EXPECT_GE(fault::Injector::instance().fires("cluster.replace.fail"), 1u)
      << "seed " << GetParam()
      << " never hit an injected migration failure; rollback paths untested";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegistryChurn,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace bf::registry
