// bf::trace: chrome-trace export of board occupancy.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "loadgen/loadgen.h"
#include "testbed/testbed.h"
#include "trace/chrome_trace.h"
#include "workloads/sobel.h"

namespace bf::trace {
namespace {

TEST(JsonEscape, HandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(TraceBuilder, EmitsChromeTraceFormat) {
  TraceBuilder builder;
  builder.add(Span{"fpga-A", "sobel-1-0", vt::Time::millis(10),
                   vt::Time::millis(25)});
  builder.add(Span{"fpga-B", "mm-1-0", vt::Time::millis(12),
                   vt::Time::millis(14)});
  const std::string json = builder.to_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sobel-1-0\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10000"), std::string::npos);   // us
  EXPECT_NE(json.find("\"dur\":15000"), std::string::npos);  // us
  // Track metadata rows.
  EXPECT_NE(json.find("\"name\":\"fpga-A\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fpga-B\""), std::string::npos);
  EXPECT_EQ(builder.span_count(), 2u);
}

TEST(TraceBuilder, RejectsInvertedSpan) {
  TraceBuilder builder;
  EXPECT_THROW(builder.add(Span{"t", "n", vt::Time::millis(5),
                                vt::Time::millis(1)}),
               ContractViolation);
}

TEST(TraceBuilder, CapturesRealBoardOccupancy) {
  testbed::Testbed bed;
  auto factory = [] {
    return std::make_unique<workloads::SobelWorkload>(640, 480);
  };
  ASSERT_TRUE(bed.deploy_blastfunction("sobel-1", factory).ok());
  ASSERT_TRUE(bed.deploy_blastfunction("sobel-2", factory).ok());
  std::vector<loadgen::DriveSpec> specs;
  for (int i = 1; i <= 2; ++i) {
    loadgen::DriveSpec spec;
    spec.function = "sobel-" + std::to_string(i);
    spec.target_rps = 20;
    spec.warmup = vt::Duration::seconds(2);
    spec.duration = vt::Duration::seconds(2);
    specs.push_back(spec);
  }
  (void)loadgen::drive_all(bed.gateway(), specs);

  TraceBuilder builder;
  for (const std::string& node : bed.node_names()) {
    builder.add_board_occupancy(bed.manager(node), vt::Time::zero(),
                                vt::Time::seconds(30));
  }
  EXPECT_GT(builder.span_count(), 50u);  // ~4s x 20rq/s x ops
  const std::string json = builder.to_json();
  EXPECT_NE(json.find("sobel-1-0"), std::string::npos);
  EXPECT_NE(json.find("sobel-2-0"), std::string::npos);

  const std::string path = "/tmp/bf_trace_test.json";
  ASSERT_TRUE(builder.write_file(path).ok());
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string contents((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, json);
  std::remove(path.c_str());
}

// Duck-typed stand-ins for DeviceManager/Board: add_board_occupancy only
// needs busy_snapshot() and board().id(), which lets the clipping contract
// be pinned without driving a whole testbed.
struct FakeBusy {
  std::string client_id;
  vt::Time start;
  vt::Time end;
};

struct FakeBoard {
  std::string id_;
  [[nodiscard]] const std::string& id() const { return id_; }
};

struct FakeManager {
  FakeBoard board_{"fpga-fake"};
  std::vector<FakeBusy> intervals;

  [[nodiscard]] const FakeBoard& board() const { return board_; }
  // Mirrors DeviceManager::busy_snapshot: returns the raw (unclipped)
  // intervals overlapping [from, to].
  [[nodiscard]] std::vector<FakeBusy> busy_snapshot(vt::Time from,
                                                    vt::Time to) const {
    std::vector<FakeBusy> out;
    for (const FakeBusy& busy : intervals) {
      if (busy.end > from && busy.start < to) out.push_back(busy);
    }
    return out;
  }
};

// Regression: intervals straddling a window edge used to be exported with
// their raw endpoints, leaking activity outside the requested [from, to]
// window; they must be clipped to the edge instead of dropped or leaked.
TEST(TraceBuilder, ClipsStraddlingIntervalsToWindowEdges) {
  FakeManager manager;
  manager.intervals = {
      {"left", vt::Time::millis(10), vt::Time::millis(50)},    // straddles from
      {"inside", vt::Time::millis(25), vt::Time::millis(35)},  // untouched
      {"right", vt::Time::millis(30), vt::Time::millis(90)},   // straddles to
      {"outside", vt::Time::millis(90), vt::Time::millis(99)},  // excluded
  };
  TraceBuilder builder;
  builder.add_board_occupancy(manager, vt::Time::millis(20),
                              vt::Time::millis(40));
  const std::vector<Span> spans = builder.spans();
  ASSERT_EQ(spans.size(), 3u);
  for (const Span& span : spans) {
    EXPECT_GE(span.start.ns(), vt::Time::millis(20).ns()) << span.name;
    EXPECT_LE(span.end.ns(), vt::Time::millis(40).ns()) << span.name;
  }
  // Sorted by start: left (clipped to 20), inside (25), right (30, clipped
  // end 40).
  EXPECT_EQ(spans[0].name, "left");
  EXPECT_EQ(spans[0].start.ns(), vt::Time::millis(20).ns());
  EXPECT_EQ(spans[0].end.ns(), vt::Time::millis(40).ns());
  EXPECT_EQ(spans[1].name, "inside");
  EXPECT_EQ(spans[1].start.ns(), vt::Time::millis(25).ns());
  EXPECT_EQ(spans[1].end.ns(), vt::Time::millis(35).ns());
  EXPECT_EQ(spans[2].name, "right");
  EXPECT_EQ(spans[2].start.ns(), vt::Time::millis(30).ns());
  EXPECT_EQ(spans[2].end.ns(), vt::Time::millis(40).ns());
}

TEST(TraceBuilder, CriticalPathChargesDeepestSpan) {
  // request [0,100] with gateway [0,10], task [20,80] split into
  // queue-wait [20,30] + execute [30,80]; root keeps [10,20] and [80,100].
  constexpr std::uint64_t kTrace = 7;
  TraceBuilder builder;
  builder.add(Span{"pod", "request", vt::Time::zero(), vt::Time::millis(100),
                   kTrace, 1, 0});
  builder.add(Span{"pod", "gateway", vt::Time::zero(), vt::Time::millis(10),
                   kTrace, 2, 1});
  builder.add(Span{"devmgr", "task", vt::Time::millis(20), vt::Time::millis(80),
                   kTrace, 3, 1});
  builder.add(Span{"devmgr", "queue-wait", vt::Time::millis(20),
                   vt::Time::millis(30), kTrace, 4, 3});
  builder.add(Span{"devmgr", "execute", vt::Time::millis(30),
                   vt::Time::millis(80), kTrace, 5, 3});

  auto path = builder.critical_path(kTrace);
  ASSERT_TRUE(path.ok()) << path.status().to_string();
  EXPECT_EQ(path.value().trace_id, kTrace);
  EXPECT_EQ(path.value().total.ns(), vt::Duration::millis(100).ns());

  ASSERT_EQ(path.value().hops.size(), 4u);  // first-appearance order
  EXPECT_EQ(path.value().hops[0].name, "gateway");
  EXPECT_EQ(path.value().hops[0].self.ns(), vt::Duration::millis(10).ns());
  EXPECT_EQ(path.value().hops[1].name, "request");
  EXPECT_EQ(path.value().hops[1].self.ns(), vt::Duration::millis(30).ns());
  EXPECT_EQ(path.value().hops[2].name, "queue-wait");
  EXPECT_EQ(path.value().hops[2].self.ns(), vt::Duration::millis(10).ns());
  EXPECT_EQ(path.value().hops[3].name, "execute");
  EXPECT_EQ(path.value().hops[3].self.ns(), vt::Duration::millis(50).ns());

  vt::Duration sum = vt::Duration::nanos(0);
  for (const auto& hop : path.value().hops) sum += hop.self;
  EXPECT_EQ(sum.ns(), path.value().total.ns());

  EXPECT_EQ(builder.critical_path(999).status().code(),
            StatusCode::kNotFound);
}

TEST(TraceBuilder, TracedSpansCarryArgsAndFlows) {
  TraceBuilder builder;
  builder.add(Span{"pod", "request", vt::Time::zero(), vt::Time::millis(10),
                   0xabcd, 0x11, 0});
  builder.add(Span{"devmgr", "task", vt::Time::millis(2), vt::Time::millis(8),
                   0xabcd, 0x22, 0x11});
  builder.add(Span{"pod", "plain", vt::Time::millis(8), vt::Time::millis(9)});
  const std::string json = builder.to_json();
  // Ids surface as event args (hex), parent omitted for the root.
  EXPECT_NE(json.find("\"trace\":\"0x000000000000abcd\""), std::string::npos);
  EXPECT_NE(json.find("\"span\":\"0x0000000000000022\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\":\"0x0000000000000011\""), std::string::npos);
  // The cross-track parent link also gets a flow arrow pair.
  EXPECT_NE(json.find("\"cat\":\"flow\",\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"flow\",\"ph\":\"f\""), std::string::npos);
  // Untraced spans carry no args and never participate in flows.
  const std::size_t plain = json.find("\"name\":\"plain\"");
  ASSERT_NE(plain, std::string::npos);
  const std::size_t plain_end = json.find('}', plain);
  EXPECT_EQ(json.substr(plain, plain_end - plain).find("args"),
            std::string::npos);
}

TEST(TraceBuilder, WindowClipsSpans) {
  testbed::Testbed bed;
  auto factory = [] {
    return std::make_unique<workloads::SobelWorkload>(320, 240);
  };
  ASSERT_TRUE(bed.deploy_blastfunction("fn", factory).ok());
  ASSERT_TRUE(bed.gateway().invoke("fn").ok());
  TraceBuilder empty_window;
  for (const std::string& node : bed.node_names()) {
    empty_window.add_board_occupancy(bed.manager(node),
                                     vt::Time::seconds(100),
                                     vt::Time::seconds(200));
  }
  EXPECT_EQ(empty_window.span_count(), 0u);
}

}  // namespace
}  // namespace bf::trace
