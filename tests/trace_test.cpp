// bf::trace: chrome-trace export of board occupancy.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "loadgen/loadgen.h"
#include "testbed/testbed.h"
#include "trace/chrome_trace.h"
#include "workloads/sobel.h"

namespace bf::trace {
namespace {

TEST(JsonEscape, HandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(TraceBuilder, EmitsChromeTraceFormat) {
  TraceBuilder builder;
  builder.add(Span{"fpga-A", "sobel-1-0", vt::Time::millis(10),
                   vt::Time::millis(25)});
  builder.add(Span{"fpga-B", "mm-1-0", vt::Time::millis(12),
                   vt::Time::millis(14)});
  const std::string json = builder.to_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sobel-1-0\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10000"), std::string::npos);   // us
  EXPECT_NE(json.find("\"dur\":15000"), std::string::npos);  // us
  // Track metadata rows.
  EXPECT_NE(json.find("\"name\":\"fpga-A\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fpga-B\""), std::string::npos);
  EXPECT_EQ(builder.span_count(), 2u);
}

TEST(TraceBuilder, RejectsInvertedSpan) {
  TraceBuilder builder;
  EXPECT_THROW(builder.add(Span{"t", "n", vt::Time::millis(5),
                                vt::Time::millis(1)}),
               ContractViolation);
}

TEST(TraceBuilder, CapturesRealBoardOccupancy) {
  testbed::Testbed bed;
  auto factory = [] {
    return std::make_unique<workloads::SobelWorkload>(640, 480);
  };
  ASSERT_TRUE(bed.deploy_blastfunction("sobel-1", factory).ok());
  ASSERT_TRUE(bed.deploy_blastfunction("sobel-2", factory).ok());
  std::vector<loadgen::DriveSpec> specs;
  for (int i = 1; i <= 2; ++i) {
    loadgen::DriveSpec spec;
    spec.function = "sobel-" + std::to_string(i);
    spec.target_rps = 20;
    spec.warmup = vt::Duration::seconds(2);
    spec.duration = vt::Duration::seconds(2);
    specs.push_back(spec);
  }
  (void)loadgen::drive_all(bed.gateway(), specs);

  TraceBuilder builder;
  for (const std::string& node : bed.node_names()) {
    builder.add_board_occupancy(bed.manager(node), vt::Time::zero(),
                                vt::Time::seconds(30));
  }
  EXPECT_GT(builder.span_count(), 50u);  // ~4s x 20rq/s x ops
  const std::string json = builder.to_json();
  EXPECT_NE(json.find("sobel-1-0"), std::string::npos);
  EXPECT_NE(json.find("sobel-2-0"), std::string::npos);

  const std::string path = "/tmp/bf_trace_test.json";
  ASSERT_TRUE(builder.write_file(path).ok());
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string contents((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, json);
  std::remove(path.c_str());
}

TEST(TraceBuilder, WindowClipsSpans) {
  testbed::Testbed bed;
  auto factory = [] {
    return std::make_unique<workloads::SobelWorkload>(320, 240);
  };
  ASSERT_TRUE(bed.deploy_blastfunction("fn", factory).ok());
  ASSERT_TRUE(bed.gateway().invoke("fn").ok());
  TraceBuilder empty_window;
  for (const std::string& node : bed.node_names()) {
    empty_window.add_board_occupancy(bed.manager(node),
                                     vt::Time::seconds(100),
                                     vt::Time::seconds(200));
  }
  EXPECT_EQ(empty_window.span_count(), 0u);
}

}  // namespace
}  // namespace bf::trace
