// bf::fault::Injector unit tests: trigger semantics (probability, warm-up,
// budgets), seed determinism of per-site decision streams, and the disarmed
// fast path.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "fault/injector.h"

namespace bf::fault {
namespace {

// Replays a site's decision stream for `hits` hits under one arming.
std::vector<bool> decisions(std::uint64_t seed, const char* site,
                            Trigger trigger, int hits) {
  ScopedInjection inject(seed);
  Injector::instance().set_trigger(site, trigger);
  std::vector<bool> out;
  out.reserve(static_cast<std::size_t>(hits));
  for (int i = 0; i < hits; ++i) out.push_back(should_fire(site));
  return out;
}

TEST(Injector, DisarmedNeverFires) {
  // No ScopedInjection: the fast path must refuse without touching state.
  EXPECT_FALSE(armed());
  EXPECT_FALSE(should_fire(site::kShmStageFail));
  EXPECT_EQ(Injector::instance().hits(site::kShmStageFail), 0u);
}

TEST(Injector, SiteWithoutTriggerNeverFires) {
  ScopedInjection inject(1);
  // Named sites take the per-site fast path: with no trigger installed the
  // slow path is never entered, so no hits are recorded either.
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(should_fire(site::kShmGrantDeny));
  EXPECT_EQ(Injector::instance().hits(site::kShmGrantDeny), 0u);
  EXPECT_EQ(Injector::instance().fires(site::kShmGrantDeny), 0u);
}

TEST(Injector, DynamicNameStillRecordsHitsWithoutTrigger) {
  // The string-keyed fallback keeps the old contract: armed runs record
  // every hit even when the site has no trigger.
  ScopedInjection inject(1);
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(should_fire("test.dynamic.site"));
  EXPECT_EQ(Injector::instance().hits("test.dynamic.site"), 5u);
}

TEST(Injector, SiteFlagFollowsTriggerInstallAndClear) {
  ScopedInjection inject(1);
  EXPECT_FALSE(site::kShmStageFail.triggered());
  Injector::instance().set_trigger(site::kShmStageFail, {.probability = 1.0});
  EXPECT_TRUE(site::kShmStageFail.triggered());
  EXPECT_TRUE(should_fire(site::kShmStageFail));
  Injector::instance().clear_trigger(site::kShmStageFail);
  EXPECT_FALSE(site::kShmStageFail.triggered());
  EXPECT_FALSE(should_fire(site::kShmStageFail));
  // Only the one hit from the triggered window was recorded.
  EXPECT_EQ(Injector::instance().hits(site::kShmStageFail), 1u);
}

TEST(Injector, DisarmClearsSiteFlags) {
  {
    ScopedInjection inject(1);
    Injector::instance().set_trigger(site::kNetSendDelay, {.probability = 0.0});
    EXPECT_TRUE(site::kNetSendDelay.triggered());
  }
  EXPECT_FALSE(site::kNetSendDelay.triggered());
}

TEST(Injector, CertainTriggerFiresEveryHit) {
  auto fired = decisions(7, site::kNetSendConnLoss, {.probability = 1.0}, 10);
  for (bool f : fired) EXPECT_TRUE(f);
}

TEST(Injector, AfterHitsSkipsWarmup) {
  auto fired = decisions(
      7, site::kNetSendConnLoss,
      {.probability = 1.0, .after_hits = 3}, 6);
  EXPECT_EQ(fired, (std::vector<bool>{false, false, false, true, true, true}));
}

TEST(Injector, SiteBudgetCapsFires) {
  auto fired = decisions(7, site::kDevmgrTaskAbort,
                         {.probability = 1.0, .budget = 2}, 5);
  EXPECT_EQ(fired, (std::vector<bool>{true, true, false, false, false}));
  EXPECT_EQ(Injector::instance().fires(site::kDevmgrTaskAbort), 0u);  // disarmed
}

TEST(Injector, GlobalBudgetCapsAcrossSites) {
  ScopedInjection inject(7);
  inject.site(site::kShmStageFail, {.probability = 1.0})
      .site(site::kShmAttachFail, {.probability = 1.0})
      .global_budget(3);
  int fires = 0;
  for (int i = 0; i < 5; ++i) {
    if (should_fire(site::kShmStageFail)) ++fires;
    if (should_fire(site::kShmAttachFail)) ++fires;
  }
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(Injector::instance().total_fires(), 3u);
}

TEST(Injector, SameSeedSameDecisionStream) {
  Trigger coin{.probability = 0.5};
  auto a = decisions(1234, site::kNetSendDelay, coin, 200);
  auto b = decisions(1234, site::kNetSendDelay, coin, 200);
  EXPECT_EQ(a, b);
  // Not degenerate: a fair coin over 200 hits fires somewhere in (0, 200).
  int fires = 0;
  for (bool f : a) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 200);
}

TEST(Injector, DifferentSeedsDiverge) {
  Trigger coin{.probability = 0.5};
  auto a = decisions(1, site::kNetSendDelay, coin, 200);
  auto b = decisions(2, site::kNetSendDelay, coin, 200);
  EXPECT_NE(a, b);
}

TEST(Injector, SitesHaveIndependentStreams) {
  // The same (seed, ordinal) must not produce correlated decisions across
  // sites — streams are salted by the site name.
  Trigger coin{.probability = 0.5};
  auto a = decisions(42, site::kNetSendDelay, coin, 200);
  auto b = decisions(42, site::kShmStageFail, coin, 200);
  EXPECT_NE(a, b);
}

TEST(Injector, DecisionDependsOnOrdinalNotOnEarlierBudgets) {
  // A budget cap must not shift later draws: hit N's decision is a pure
  // function of (seed, site, N) whether or not earlier fires were allowed.
  Trigger unlimited{.probability = 0.5};
  Trigger capped{.probability = 0.5, .budget = 1};
  auto full = decisions(99, site::kNetNotifyDropEnqueued, unlimited, 100);
  ScopedInjection inject(99);
  Injector::instance().set_trigger(site::kNetNotifyDropEnqueued, capped);
  bool seen_first_fire = false;
  for (int i = 0; i < 100; ++i) {
    bool fired = should_fire(site::kNetNotifyDropEnqueued);
    if (!seen_first_fire) {
      EXPECT_EQ(fired, full[static_cast<std::size_t>(i)]) << "hit " << i;
      seen_first_fire = fired;
    } else {
      EXPECT_FALSE(fired) << "budget of 1 exceeded at hit " << i;
    }
  }
}

TEST(Injector, FireLogRecordsSiteAndOrdinal) {
  ScopedInjection inject(5);
  inject.site(site::kShmGrantDeny, {.probability = 1.0, .after_hits = 1});
  (void)should_fire(site::kShmGrantDeny);  // ordinal 0: warm-up
  (void)should_fire(site::kShmGrantDeny);  // ordinal 1: fires
  auto log = Injector::instance().fire_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], std::string(site::kShmGrantDeny.name()) + ":1");
}

TEST(Injector, RearmResetsCountersAndTriggers) {
  {
    ScopedInjection inject(5);
    inject.site(site::kShmGrantDeny, {.probability = 1.0});
    EXPECT_TRUE(should_fire(site::kShmGrantDeny));
  }
  ScopedInjection inject(5);
  // Trigger (and the per-site arm flag) gone after re-arm; the fast path
  // short-circuits, so the hit is not even recorded.
  EXPECT_FALSE(should_fire(site::kShmGrantDeny));
  EXPECT_EQ(Injector::instance().hits(site::kShmGrantDeny), 0u);
  EXPECT_EQ(Injector::instance().total_fires(), 0u);
}

TEST(Injector, ConcurrentHitsAreSafeAndBudgetHolds) {
  // Hammer one site from several threads: no crash, and the budget is an
  // exact cap even under contention.
  ScopedInjection inject(11);
  inject.site(site::kDevmgrWorkerStall, {.probability = 1.0, .budget = 64});
  std::atomic<int> fires{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        if (should_fire(site::kDevmgrWorkerStall)) fires.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(fires.load(), 64);
  EXPECT_EQ(Injector::instance().hits(site::kDevmgrWorkerStall), 800u);
}

}  // namespace
}  // namespace bf::fault
