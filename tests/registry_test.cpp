// bf::registry: Algorithm 1 allocation, reconfiguration validation and
// migration. Uses real Device Managers on simulated boards.
#include <gtest/gtest.h>

#include <memory>

#include "registry/registry.h"
#include "sim/bitstream.h"

namespace bf::registry {
namespace {

struct Fixture {
  explicit Fixture(AllocationPolicy policy = {}) {
    std::vector<cluster::NodeSpec> nodes = {{"A", sim::make_node_a()},
                                            {"B", sim::make_node_b()},
                                            {"C", sim::make_node_c()}};
    cluster = std::make_unique<cluster::Cluster>(nodes);
    for (const auto& node : nodes) {
      sim::BoardConfig bc;
      bc.id = "fpga-" + node.name;
      bc.node = node.name;
      bc.host = node.profile;
      bc.functional = false;
      boards.push_back(std::make_unique<sim::Board>(bc));
      devmgr::DeviceManagerConfig mc;
      mc.id = "devmgr-" + node.name;
      managers.push_back(std::make_unique<devmgr::DeviceManager>(
          mc, boards.back().get(), nullptr));
    }
    registry = std::make_unique<Registry>(cluster.get(), policy,
                                          [] { return vt::Time::zero(); });
    for (std::size_t i = 0; i < boards.size(); ++i) {
      DeviceRecord record;
      record.id = boards[i]->id();
      record.vendor = "Intel";
      record.platform = "a10gx_de5a_net";
      record.node = nodes[i].name;
      record.manager_address = managers[i]->endpoint().address();
      record.manager = managers[i].get();
      BF_CHECK(registry->register_device(std::move(record)).ok());
    }
    registry->attach_to_cluster();
  }

  DeviceQuery sobel_query() const {
    return DeviceQuery{"Intel", "a10gx_de5a_net", "sobel",
                       sim::BitstreamLibrary::kSobel};
  }
  DeviceQuery mm_query() const {
    return DeviceQuery{"Intel", "a10gx_de5a_net", "mm",
                       sim::BitstreamLibrary::kMatMul};
  }

  // Makes a board actually carry a bitstream.
  void program_board(std::size_t index, const char* bitstream_id) {
    const sim::Bitstream* bitstream =
        sim::BitstreamLibrary::standard().find(bitstream_id);
    BF_CHECK(bitstream != nullptr);
    BF_CHECK(boards[index]->configure(*bitstream, vt::Time::zero()).ok());
  }

  std::unique_ptr<cluster::Cluster> cluster;
  std::vector<std::unique_ptr<sim::Board>> boards;
  std::vector<std::unique_ptr<devmgr::DeviceManager>> managers;
  std::unique_ptr<Registry> registry;
};

TEST(Registry, RegisterDeviceValidation) {
  Fixture fx;
  DeviceRecord bad;
  bad.id = "x";
  EXPECT_FALSE(fx.registry->register_device(bad).ok());  // no manager
  DeviceRecord dup;
  dup.id = fx.boards[0]->id();
  dup.manager = fx.managers[0].get();
  EXPECT_EQ(fx.registry->register_device(dup).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(fx.registry->devices().size(), 3u);
}

TEST(Registry, FunctionLifecycle) {
  Fixture fx;
  ASSERT_TRUE(fx.registry->register_function("sobel-1", fx.sobel_query()).ok());
  EXPECT_FALSE(
      fx.registry->register_function("sobel-1", fx.sobel_query()).ok());
  ASSERT_TRUE(fx.registry->function_query("sobel-1").has_value());
  EXPECT_EQ(fx.registry->function_query("sobel-1")->accelerator, "sobel");
  ASSERT_TRUE(fx.registry->deregister_function("sobel-1").ok());
  EXPECT_FALSE(fx.registry->function_query("sobel-1").has_value());
}

TEST(Registry, AllocateSpreadsByConnectedCount) {
  Fixture fx;
  std::map<std::string, int> per_device;
  for (int i = 0; i < 6; ++i) {
    auto allocation = fx.registry->allocate("inst-" + std::to_string(i),
                                            fx.sobel_query());
    ASSERT_TRUE(allocation.ok());
    ++per_device[allocation.value().device_id];
  }
  EXPECT_EQ(per_device.size(), 3u);
  for (const auto& [device, count] : per_device) EXPECT_EQ(count, 2);
}

TEST(Registry, AllocationForcesHostNode) {
  Fixture fx;
  auto allocation = fx.registry->allocate("inst", fx.sobel_query());
  ASSERT_TRUE(allocation.ok());
  // node must be the node hosting the chosen device
  EXPECT_EQ(allocation.value().node,
            std::string(1, allocation.value().device_id.back()));
}

TEST(Registry, VendorFilterExcludesForeignDevices) {
  Fixture fx;
  DeviceQuery query = fx.sobel_query();
  query.vendor = "Xilinx";
  auto allocation = fx.registry->allocate("inst", query);
  EXPECT_EQ(allocation.status().code(), StatusCode::kNotFound);
}

TEST(Registry, UnconfiguredDeviceTriggersReconfigureFlag) {
  Fixture fx;
  auto allocation = fx.registry->allocate("inst", fx.sobel_query());
  ASSERT_TRUE(allocation.ok());
  EXPECT_TRUE(allocation.value().reconfigure);
  // Second tenant for the same accelerator joins the pending image without a
  // second reconfiguration request.
  auto second = fx.registry->allocate("inst2", fx.sobel_query());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().reconfigure &&
               second.value().device_id == allocation.value().device_id);
}

TEST(Registry, MatchingConfiguredAcceleratorAvoidsReconfiguration) {
  Fixture fx;
  fx.program_board(0, sim::BitstreamLibrary::kSobel);
  // Prefer the already-compatible board: no reconfigure flag.
  auto allocation = fx.registry->allocate("inst", fx.sobel_query());
  ASSERT_TRUE(allocation.ok());
  // With equal metrics the sort is by id; fpga-A is both first and
  // compatible.
  EXPECT_EQ(allocation.value().device_id, "fpga-A");
  EXPECT_FALSE(allocation.value().reconfigure);
}

TEST(Registry, ExcludedDevicesAreSkipped) {
  Fixture fx;
  auto allocation =
      fx.registry->allocate("inst", fx.sobel_query(), {"fpga-A", "fpga-B"});
  ASSERT_TRUE(allocation.ok());
  EXPECT_EQ(allocation.value().device_id, "fpga-C");
}

TEST(Registry, SampleReportsConfiguredAndExpectedAccelerator) {
  Fixture fx;
  fx.program_board(1, sim::BitstreamLibrary::kMatMul);
  auto sample = fx.registry->sample_device("fpga-B");
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample.value().configured_accelerator, "mm");
  EXPECT_EQ(sample.value().expected_accelerator, "mm");
  EXPECT_FALSE(fx.registry->sample_device("fpga-Z").ok());
}

TEST(Registry, AdmissionHookPatchesRegisteredFunctions) {
  Fixture fx;
  ASSERT_TRUE(fx.registry->register_function("sobel-1", fx.sobel_query()).ok());
  cluster::PodSpec spec;
  spec.name = "sobel-1-0";
  spec.function = "sobel-1";
  auto created = fx.cluster->create_pod(std::move(spec));
  ASSERT_TRUE(created.ok());
  EXPECT_TRUE(created.value().spec.env.contains(Registry::kEnvManager));
  EXPECT_TRUE(created.value().spec.env.contains(Registry::kEnvDevice));
  EXPECT_EQ(created.value().spec.env.at(Registry::kEnvBitstream),
            sim::BitstreamLibrary::kSobel);
  ASSERT_EQ(created.value().spec.volumes.size(), 1u);
  EXPECT_EQ(created.value().spec.volumes[0], Registry::kShmVolume);
  EXPECT_EQ(fx.registry->assignment_count(), 1u);
}

TEST(Registry, UnregisteredFunctionsPassThroughUntouched) {
  Fixture fx;
  cluster::PodSpec spec;
  spec.name = "other-0";
  spec.function = "other";
  auto created = fx.cluster->create_pod(std::move(spec));
  ASSERT_TRUE(created.ok());
  EXPECT_TRUE(created.value().spec.env.empty());
  EXPECT_EQ(fx.registry->assignment_count(), 0u);
}

TEST(Registry, DeletionReleasesAssignment) {
  Fixture fx;
  ASSERT_TRUE(fx.registry->register_function("sobel-1", fx.sobel_query()).ok());
  cluster::PodSpec spec;
  spec.name = "sobel-1-0";
  spec.function = "sobel-1";
  ASSERT_TRUE(fx.cluster->create_pod(std::move(spec)).ok());
  EXPECT_EQ(fx.registry->assignment_count(), 1u);
  ASSERT_TRUE(fx.cluster->delete_pod("sobel-1-0").ok());
  EXPECT_EQ(fx.registry->assignment_count(), 0u);
}

TEST(Registry, NewAcceleratorMigratesExistingTenants) {
  Fixture fx;
  ASSERT_TRUE(fx.registry->register_function("sobel-1", fx.sobel_query()).ok());
  ASSERT_TRUE(fx.registry->register_function("sobel-2", fx.sobel_query()).ok());
  ASSERT_TRUE(fx.registry->register_function("mm-1", fx.mm_query()).ok());
  // Two sobel tenants land on two devices (spread).
  for (const char* name : {"sobel-1-0", "sobel-2-0"}) {
    cluster::PodSpec spec;
    spec.name = name;
    spec.function = std::string(name).substr(0, 7);
    ASSERT_TRUE(fx.cluster->create_pod(std::move(spec)).ok());
  }
  const std::size_t pods_before = fx.cluster->pod_count();
  cluster::PodSpec mm_spec;
  mm_spec.name = "mm-1-0";
  mm_spec.function = "mm-1";
  auto created = fx.cluster->create_pod(std::move(mm_spec));
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(fx.cluster->pod_count(), pods_before + 1);
  // MM got a device of its own; every assignment is intact.
  EXPECT_EQ(fx.registry->assignment_count(), 3u);
  auto mm_device = fx.registry->device_of_instance("mm-1-0");
  ASSERT_TRUE(mm_device.has_value());
  EXPECT_EQ(fx.registry->instances_on_device(*mm_device).size(), 1u);
}

TEST(Registry, RequestReconfigurationValidatesCaller) {
  Fixture fx;
  EXPECT_EQ(fx.registry
                ->request_reconfiguration("ghost",
                                          sim::BitstreamLibrary::kMatMul)
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(Registry, RequestReconfigurationNoopWhenAlreadyCompatible) {
  Fixture fx;
  ASSERT_TRUE(fx.registry->register_function("sobel-1", fx.sobel_query()).ok());
  cluster::PodSpec spec;
  spec.name = "sobel-1-0";
  spec.function = "sobel-1";
  ASSERT_TRUE(fx.cluster->create_pod(std::move(spec)).ok());
  EXPECT_TRUE(fx.registry
                  ->request_reconfiguration("sobel-1-0",
                                            sim::BitstreamLibrary::kSobel)
                  .ok());
}

TEST(Registry, RequestReconfigurationMigratesCotenants) {
  Fixture fx;
  AllocationPolicy pack;
  pack.pack_tenants = true;
  Fixture packed(pack);
  ASSERT_TRUE(
      packed.registry->register_function("sobel-1", packed.sobel_query()).ok());
  ASSERT_TRUE(
      packed.registry->register_function("sobel-2", packed.sobel_query()).ok());
  for (const char* name : {"sobel-1-0", "sobel-2-0"}) {
    cluster::PodSpec spec;
    spec.name = name;
    spec.function = std::string(name).substr(0, 7);
    ASSERT_TRUE(packed.cluster->create_pod(std::move(spec)).ok());
  }
  // Packing put both tenants on one device.
  auto d1 = packed.registry->device_of_instance("sobel-1-0");
  auto d2 = packed.registry->device_of_instance("sobel-2-0");
  ASSERT_TRUE(d1.has_value() && d2.has_value());
  ASSERT_EQ(*d1, *d2);
  // sobel-1 requests an MM image: sobel-2 must move off the device.
  ASSERT_TRUE(packed.registry
                  ->request_reconfiguration("sobel-1-0",
                                            sim::BitstreamLibrary::kMatMul)
                  .ok());
  auto moved = packed.registry->device_of_instance("sobel-2-0-r");
  ASSERT_TRUE(moved.has_value());
  EXPECT_NE(*moved, *d1);
}

TEST(Registry, PackPolicyConcentratesTenants) {
  AllocationPolicy policy;
  policy.pack_tenants = true;
  Fixture fx(policy);
  std::map<std::string, int> per_device;
  for (int i = 0; i < 4; ++i) {
    auto allocation = fx.registry->allocate("inst-" + std::to_string(i),
                                            fx.sobel_query());
    ASSERT_TRUE(allocation.ok());
    ++per_device[allocation.value().device_id];
  }
  EXPECT_EQ(per_device.size(), 1u);  // all piled on one device
}

}  // namespace
}  // namespace bf::registry
