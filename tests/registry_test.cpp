// bf::registry: Algorithm 1 allocation, reconfiguration validation and
// migration. Uses real Device Managers on simulated boards.
#include <gtest/gtest.h>

#include <memory>

#include "fault/injector.h"
#include "registry/registry.h"
#include "sim/bitstream.h"

namespace bf::registry {
namespace {

struct Fixture {
  explicit Fixture(AllocationPolicy policy = {}) {
    std::vector<cluster::NodeSpec> nodes = {{"A", sim::make_node_a()},
                                            {"B", sim::make_node_b()},
                                            {"C", sim::make_node_c()}};
    cluster = std::make_unique<cluster::Cluster>(nodes);
    for (const auto& node : nodes) {
      sim::BoardConfig bc;
      bc.id = "fpga-" + node.name;
      bc.node = node.name;
      bc.host = node.profile;
      bc.functional = false;
      boards.push_back(std::make_unique<sim::Board>(bc));
      devmgr::DeviceManagerConfig mc;
      mc.id = "devmgr-" + node.name;
      managers.push_back(std::make_unique<devmgr::DeviceManager>(
          mc, boards.back().get(), nullptr));
    }
    registry = std::make_unique<Registry>(cluster.get(), policy,
                                          [] { return vt::Time::zero(); });
    for (std::size_t i = 0; i < boards.size(); ++i) {
      DeviceRecord record;
      record.id = boards[i]->id();
      record.vendor = "Intel";
      record.platform = "a10gx_de5a_net";
      record.node = nodes[i].name;
      record.manager_address = managers[i]->endpoint().address();
      record.manager = managers[i].get();
      BF_CHECK(registry->register_device(std::move(record)).ok());
    }
    registry->attach_to_cluster();
  }

  DeviceQuery sobel_query() const {
    return DeviceQuery{"Intel", "a10gx_de5a_net", "sobel",
                       sim::BitstreamLibrary::kSobel};
  }
  DeviceQuery mm_query() const {
    return DeviceQuery{"Intel", "a10gx_de5a_net", "mm",
                       sim::BitstreamLibrary::kMatMul};
  }

  // Makes a board actually carry a bitstream.
  void program_board(std::size_t index, const char* bitstream_id) {
    const sim::Bitstream* bitstream =
        sim::BitstreamLibrary::standard().find(bitstream_id);
    BF_CHECK(bitstream != nullptr);
    BF_CHECK(boards[index]->configure(*bitstream, vt::Time::zero()).ok());
  }

  std::unique_ptr<cluster::Cluster> cluster;
  std::vector<std::unique_ptr<sim::Board>> boards;
  std::vector<std::unique_ptr<devmgr::DeviceManager>> managers;
  std::unique_ptr<Registry> registry;
};

TEST(Registry, RegisterDeviceValidation) {
  Fixture fx;
  DeviceRecord bad;
  bad.id = "x";
  EXPECT_FALSE(fx.registry->register_device(bad).ok());  // no manager
  DeviceRecord dup;
  dup.id = fx.boards[0]->id();
  dup.manager = fx.managers[0].get();
  EXPECT_EQ(fx.registry->register_device(dup).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(fx.registry->devices().size(), 3u);
}

TEST(Registry, FunctionLifecycle) {
  Fixture fx;
  ASSERT_TRUE(fx.registry->register_function("sobel-1", fx.sobel_query()).ok());
  EXPECT_FALSE(
      fx.registry->register_function("sobel-1", fx.sobel_query()).ok());
  ASSERT_TRUE(fx.registry->function_query("sobel-1").has_value());
  EXPECT_EQ(fx.registry->function_query("sobel-1")->accelerator, "sobel");
  ASSERT_TRUE(fx.registry->deregister_function("sobel-1").ok());
  EXPECT_FALSE(fx.registry->function_query("sobel-1").has_value());
}

TEST(Registry, AllocateSpreadsByConnectedCount) {
  Fixture fx;
  std::map<std::string, int> per_device;
  for (int i = 0; i < 6; ++i) {
    auto allocation = fx.registry->allocate("inst-" + std::to_string(i),
                                            fx.sobel_query());
    ASSERT_TRUE(allocation.ok());
    ++per_device[allocation.value().device_id];
  }
  EXPECT_EQ(per_device.size(), 3u);
  for (const auto& [device, count] : per_device) EXPECT_EQ(count, 2);
}

TEST(Registry, AllocationForcesHostNode) {
  Fixture fx;
  auto allocation = fx.registry->allocate("inst", fx.sobel_query());
  ASSERT_TRUE(allocation.ok());
  // node must be the node hosting the chosen device
  EXPECT_EQ(allocation.value().node,
            std::string(1, allocation.value().device_id.back()));
}

TEST(Registry, VendorFilterExcludesForeignDevices) {
  Fixture fx;
  DeviceQuery query = fx.sobel_query();
  query.vendor = "Xilinx";
  auto allocation = fx.registry->allocate("inst", query);
  EXPECT_EQ(allocation.status().code(), StatusCode::kNotFound);
}

TEST(Registry, UnconfiguredDeviceTriggersReconfigureFlag) {
  Fixture fx;
  auto allocation = fx.registry->allocate("inst", fx.sobel_query());
  ASSERT_TRUE(allocation.ok());
  EXPECT_TRUE(allocation.value().reconfigure);
  // Second tenant for the same accelerator joins the pending image without a
  // second reconfiguration request.
  auto second = fx.registry->allocate("inst2", fx.sobel_query());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().reconfigure &&
               second.value().device_id == allocation.value().device_id);
}

TEST(Registry, MatchingConfiguredAcceleratorAvoidsReconfiguration) {
  Fixture fx;
  fx.program_board(0, sim::BitstreamLibrary::kSobel);
  // Prefer the already-compatible board: no reconfigure flag.
  auto allocation = fx.registry->allocate("inst", fx.sobel_query());
  ASSERT_TRUE(allocation.ok());
  // With equal metrics the sort is by id; fpga-A is both first and
  // compatible.
  EXPECT_EQ(allocation.value().device_id, "fpga-A");
  EXPECT_FALSE(allocation.value().reconfigure);
}

TEST(Registry, ExcludedDevicesAreSkipped) {
  Fixture fx;
  auto allocation =
      fx.registry->allocate("inst", fx.sobel_query(), {"fpga-A", "fpga-B"});
  ASSERT_TRUE(allocation.ok());
  EXPECT_EQ(allocation.value().device_id, "fpga-C");
}

TEST(Registry, SampleReportsConfiguredAndExpectedAccelerator) {
  Fixture fx;
  fx.program_board(1, sim::BitstreamLibrary::kMatMul);
  auto sample = fx.registry->sample_device("fpga-B");
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample.value().configured_accelerator, "mm");
  EXPECT_EQ(sample.value().expected_accelerator, "mm");
  EXPECT_FALSE(fx.registry->sample_device("fpga-Z").ok());
}

TEST(Registry, AdmissionHookPatchesRegisteredFunctions) {
  Fixture fx;
  ASSERT_TRUE(fx.registry->register_function("sobel-1", fx.sobel_query()).ok());
  cluster::PodSpec spec;
  spec.name = "sobel-1-0";
  spec.function = "sobel-1";
  auto created = fx.cluster->create_pod(std::move(spec));
  ASSERT_TRUE(created.ok());
  EXPECT_TRUE(created.value().spec.env.contains(Registry::kEnvManager));
  EXPECT_TRUE(created.value().spec.env.contains(Registry::kEnvDevice));
  EXPECT_EQ(created.value().spec.env.at(Registry::kEnvBitstream),
            sim::BitstreamLibrary::kSobel);
  ASSERT_EQ(created.value().spec.volumes.size(), 1u);
  EXPECT_EQ(created.value().spec.volumes[0], Registry::kShmVolume);
  EXPECT_EQ(fx.registry->assignment_count(), 1u);
}

TEST(Registry, UnregisteredFunctionsPassThroughUntouched) {
  Fixture fx;
  cluster::PodSpec spec;
  spec.name = "other-0";
  spec.function = "other";
  auto created = fx.cluster->create_pod(std::move(spec));
  ASSERT_TRUE(created.ok());
  EXPECT_TRUE(created.value().spec.env.empty());
  EXPECT_EQ(fx.registry->assignment_count(), 0u);
}

TEST(Registry, DeletionReleasesAssignment) {
  Fixture fx;
  ASSERT_TRUE(fx.registry->register_function("sobel-1", fx.sobel_query()).ok());
  cluster::PodSpec spec;
  spec.name = "sobel-1-0";
  spec.function = "sobel-1";
  ASSERT_TRUE(fx.cluster->create_pod(std::move(spec)).ok());
  EXPECT_EQ(fx.registry->assignment_count(), 1u);
  ASSERT_TRUE(fx.cluster->delete_pod("sobel-1-0").ok());
  EXPECT_EQ(fx.registry->assignment_count(), 0u);
}

TEST(Registry, NewAcceleratorMigratesExistingTenants) {
  Fixture fx;
  ASSERT_TRUE(fx.registry->register_function("sobel-1", fx.sobel_query()).ok());
  ASSERT_TRUE(fx.registry->register_function("sobel-2", fx.sobel_query()).ok());
  ASSERT_TRUE(fx.registry->register_function("mm-1", fx.mm_query()).ok());
  // Two sobel tenants land on two devices (spread).
  for (const char* name : {"sobel-1-0", "sobel-2-0"}) {
    cluster::PodSpec spec;
    spec.name = name;
    spec.function = std::string(name).substr(0, 7);
    ASSERT_TRUE(fx.cluster->create_pod(std::move(spec)).ok());
  }
  const std::size_t pods_before = fx.cluster->pod_count();
  cluster::PodSpec mm_spec;
  mm_spec.name = "mm-1-0";
  mm_spec.function = "mm-1";
  auto created = fx.cluster->create_pod(std::move(mm_spec));
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(fx.cluster->pod_count(), pods_before + 1);
  // MM got a device of its own; every assignment is intact.
  EXPECT_EQ(fx.registry->assignment_count(), 3u);
  auto mm_device = fx.registry->device_of_instance("mm-1-0");
  ASSERT_TRUE(mm_device.has_value());
  EXPECT_EQ(fx.registry->instances_on_device(*mm_device).size(), 1u);
}

TEST(Registry, RequestReconfigurationValidatesCaller) {
  Fixture fx;
  EXPECT_EQ(fx.registry
                ->request_reconfiguration("ghost",
                                          sim::BitstreamLibrary::kMatMul)
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(Registry, RequestReconfigurationNoopWhenAlreadyCompatible) {
  Fixture fx;
  ASSERT_TRUE(fx.registry->register_function("sobel-1", fx.sobel_query()).ok());
  cluster::PodSpec spec;
  spec.name = "sobel-1-0";
  spec.function = "sobel-1";
  ASSERT_TRUE(fx.cluster->create_pod(std::move(spec)).ok());
  EXPECT_TRUE(fx.registry
                  ->request_reconfiguration("sobel-1-0",
                                            sim::BitstreamLibrary::kSobel)
                  .ok());
}

TEST(Registry, RequestReconfigurationMigratesCotenants) {
  Fixture fx;
  AllocationPolicy pack;
  pack.pack_tenants = true;
  Fixture packed(pack);
  ASSERT_TRUE(
      packed.registry->register_function("sobel-1", packed.sobel_query()).ok());
  ASSERT_TRUE(
      packed.registry->register_function("sobel-2", packed.sobel_query()).ok());
  for (const char* name : {"sobel-1-0", "sobel-2-0"}) {
    cluster::PodSpec spec;
    spec.name = name;
    spec.function = std::string(name).substr(0, 7);
    ASSERT_TRUE(packed.cluster->create_pod(std::move(spec)).ok());
  }
  // Packing put both tenants on one device.
  auto d1 = packed.registry->device_of_instance("sobel-1-0");
  auto d2 = packed.registry->device_of_instance("sobel-2-0");
  ASSERT_TRUE(d1.has_value() && d2.has_value());
  ASSERT_EQ(*d1, *d2);
  // sobel-1 requests an MM image: sobel-2 must move off the device.
  ASSERT_TRUE(packed.registry
                  ->request_reconfiguration("sobel-1-0",
                                            sim::BitstreamLibrary::kMatMul)
                  .ok());
  auto moved = packed.registry->device_of_instance("sobel-2-0~2");
  ASSERT_TRUE(moved.has_value());
  EXPECT_NE(*moved, *d1);
}

TEST(Registry, PackPolicyConcentratesTenants) {
  AllocationPolicy policy;
  policy.pack_tenants = true;
  Fixture fx(policy);
  std::map<std::string, int> per_device;
  for (int i = 0; i < 4; ++i) {
    auto allocation = fx.registry->allocate("inst-" + std::to_string(i),
                                            fx.sobel_query());
    ASSERT_TRUE(allocation.ok());
    ++per_device[allocation.value().device_id];
  }
  EXPECT_EQ(per_device.size(), 1u);  // all piled on one device
}

// --- Algorithm 1 ordering edge cases ------------------------------------------------

TEST(Registry, PackTiebreakIsDeterministic) {
  // With every metric equal, pack ordering must fall back to the same
  // deterministic tiebreak (accelerator compatibility, then id) on every
  // run — the first allocation always lands on the lexicographically first
  // device.
  for (int run = 0; run < 3; ++run) {
    AllocationPolicy policy;
    policy.pack_tenants = true;
    Fixture fx(policy);
    auto allocation = fx.registry->allocate("inst", fx.sobel_query());
    ASSERT_TRUE(allocation.ok());
    EXPECT_EQ(allocation.value().device_id, "fpga-A") << "run " << run;
  }
}

TEST(Registry, MetricsOrderFallsToSecondKeyOnEqualUtilization) {
  // All boards idle: the utilization key ties, so kConnectedInstances must
  // decide — a device that already hosts a tenant loses to an empty one.
  Fixture fx;  // default order: utilization, connected
  auto first = fx.registry->allocate("inst-0", fx.sobel_query());
  ASSERT_TRUE(first.ok());
  auto second = fx.registry->allocate("inst-1", fx.sobel_query());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second.value().device_id, first.value().device_id);

  // With utilization as the ONLY key, the tie is broken by accelerator
  // compatibility instead: the pending-sobel device wins for sobel tenants.
  AllocationPolicy util_only;
  util_only.metrics_order = {MetricKey::kUtilization};
  Fixture fu(util_only);
  auto a = fu.registry->allocate("inst-0", fu.sobel_query());
  ASSERT_TRUE(a.ok());
  auto b = fu.registry->allocate("inst-1", fu.sobel_query());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value().device_id, a.value().device_id);
}

TEST(Registry, ExcludingEveryDeviceReturnsNotFound) {
  Fixture fx;
  auto allocation = fx.registry->allocate(
      "inst", fx.sobel_query(), {"fpga-A", "fpga-B", "fpga-C"});
  EXPECT_EQ(allocation.status().code(), StatusCode::kNotFound);
}

TEST(Registry, AllDevicesUnhealthyReturnsNotFound) {
  AllocationPolicy policy;
  policy.health.migrate_on_unhealthy = false;
  Fixture fx(policy);
  for (auto& manager : fx.managers) manager->shutdown();
  for (unsigned i = 0; i < policy.health.miss_threshold; ++i) {
    fx.registry->probe_devices();
  }
  for (const auto& record : fx.registry->devices()) {
    EXPECT_FALSE(fx.registry->is_device_healthy(record.id));
  }
  auto allocation = fx.registry->allocate("inst", fx.sobel_query());
  EXPECT_EQ(allocation.status().code(), StatusCode::kNotFound);
}

// --- Reservation accounting (tentpole) -----------------------------------------------

TEST(Registry, ReservationWithholdsFreeRegionUntilImageLands) {
  Fixture fx;
  ASSERT_TRUE(fx.registry->register_function("sobel-1", fx.sobel_query()).ok());
  cluster::PodSpec spec;
  spec.name = "sobel-1-0";
  spec.function = "sobel-1";
  ASSERT_TRUE(fx.cluster->create_pod(std::move(spec)).ok());
  auto device = fx.registry->device_of_instance("sobel-1-0");
  ASSERT_TRUE(device.has_value());

  // The allocation reserved the board's only PR region for the sobel image:
  // the sample advertises no free region even though the board has not been
  // programmed yet.
  auto sample = fx.registry->sample_device(*device);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample.value().free_regions, 0u);
  ASSERT_EQ(sample.value().pending_accelerators.size(), 1u);
  EXPECT_EQ(sample.value().pending_accelerators[0], "sobel");

  // Once the image is resident the reservation is fulfilled: the region it
  // claimed is the one now occupied, and nothing is double-counted.
  std::size_t index = device->back() - 'A';
  fx.program_board(index, sim::BitstreamLibrary::kSobel);
  sample = fx.registry->sample_device(*device);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample.value().free_regions, 0u);  // region genuinely occupied
  EXPECT_TRUE(sample.value().pending_accelerators.empty());
}

TEST(Registry, ReservedLastRegionForcesMigrationForSecondImage) {
  Fixture fx;
  ASSERT_TRUE(fx.registry->register_function("sobel-1", fx.sobel_query()).ok());
  cluster::PodSpec spec;
  spec.name = "sobel-1-0";
  spec.function = "sobel-1";
  ASSERT_TRUE(fx.cluster->create_pod(std::move(spec)).ok());
  auto device = fx.registry->device_of_instance("sobel-1-0");
  ASSERT_TRUE(device.has_value());

  // An MM tenant constrained to the same device must NOT be able to claim
  // the region already reserved for sobel: the state machine migrates the
  // sobel tenant away instead of double-booking.
  std::vector<std::string> excluded;
  for (const auto& record : fx.registry->devices()) {
    if (record.id != *device) excluded.push_back(record.id);
  }
  auto allocation = fx.registry->allocate("mm-x", fx.mm_query(), excluded);
  ASSERT_TRUE(allocation.ok());
  EXPECT_EQ(allocation.value().device_id, *device);
  EXPECT_TRUE(allocation.value().reconfigure);
  // The sobel tenant was migrated off (create-before-delete replacement).
  EXPECT_FALSE(fx.registry->device_of_instance("sobel-1-0").has_value());
  auto moved = fx.registry->device_of_instance("sobel-1-0~2");
  ASSERT_TRUE(moved.has_value());
  EXPECT_NE(*moved, *device);
  // Exactly one accelerator family per region on the contested board.
  EXPECT_EQ(fx.registry->instances_on_device(*device),
            std::vector<std::string>{"mm-x"});
}

// --- Migration rollback (tentpole) ----------------------------------------------------

TEST(Registry, FailedMigrationRestoresAssignment) {
  AllocationPolicy pack;
  pack.pack_tenants = true;
  Fixture fx(pack);
  ASSERT_TRUE(fx.registry->register_function("sobel-1", fx.sobel_query()).ok());
  ASSERT_TRUE(fx.registry->register_function("sobel-2", fx.sobel_query()).ok());
  for (const char* name : {"sobel-1-0", "sobel-2-0"}) {
    cluster::PodSpec spec;
    spec.name = name;
    spec.function = std::string(name).substr(0, 7);
    ASSERT_TRUE(fx.cluster->create_pod(std::move(spec)).ok());
  }
  auto device = fx.registry->device_of_instance("sobel-1-0");
  ASSERT_TRUE(device.has_value());
  ASSERT_EQ(fx.registry->device_of_instance("sobel-2-0"), device);

  // Every create-before-delete replacement fails while the injection is
  // armed: the migration must roll the co-tenant's assignment back.
  fault::ScopedInjection inject(/*seed=*/11);
  inject.site(fault::site::kClusterReplaceFail, {.probability = 1.0});
  Status reconfigured = fx.registry->request_reconfiguration(
      "sobel-1-0", sim::BitstreamLibrary::kMatMul);
  EXPECT_FALSE(reconfigured.ok());

  // The old pod never stopped serving, so it must still be visible...
  ASSERT_TRUE(fx.cluster->get_pod("sobel-2-0").has_value());
  EXPECT_EQ(fx.registry->device_of_instance("sobel-2-0"), device);
  EXPECT_EQ(fx.registry->assignment_count(), 2u);
  // ...the device's advertised image must be rolled back too...
  auto sample = fx.registry->sample_device(*device);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample.value().expected_accelerator, "sobel");
  // ...and deregistration must still refuse a board with live tenants.
  EXPECT_EQ(fx.registry->deregister_device(*device).code(),
            StatusCode::kFailedPrecondition);
}

TEST(Registry, FailedMigrationFailsAllocationInsteadOfDoubleBooking) {
  Fixture fx;
  ASSERT_TRUE(fx.registry->register_function("sobel-1", fx.sobel_query()).ok());
  cluster::PodSpec spec;
  spec.name = "sobel-1-0";
  spec.function = "sobel-1";
  ASSERT_TRUE(fx.cluster->create_pod(std::move(spec)).ok());
  auto device = fx.registry->device_of_instance("sobel-1-0");
  ASSERT_TRUE(device.has_value());
  std::vector<std::string> excluded;
  for (const auto& record : fx.registry->devices()) {
    if (record.id != *device) excluded.push_back(record.id);
  }

  fault::ScopedInjection inject(/*seed=*/11);
  inject.site(fault::site::kClusterReplaceFail, {.probability = 1.0});
  auto allocation = fx.registry->allocate("mm-x", fx.mm_query(), excluded);
  // The sobel tenant could not be evacuated, so the MM allocation must fail
  // rather than bind a second accelerator family to a one-region board.
  EXPECT_FALSE(allocation.ok());
  EXPECT_EQ(fx.registry->device_of_instance("sobel-1-0"), device);
  EXPECT_FALSE(fx.registry->device_of_instance("mm-x").has_value());
  auto sample = fx.registry->sample_device(*device);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample.value().expected_accelerator, "sobel");
}

// --- Stale-assignment reconcile (probe_devices GC) ------------------------------------

TEST(Registry, ProbeReconcileReapsAssignmentsOfVanishedPods) {
  Fixture fx;
  ASSERT_TRUE(fx.registry->register_function("sobel-1", fx.sobel_query()).ok());
  cluster::PodSpec spec;
  spec.name = "sobel-1-0";
  spec.function = "sobel-1";
  ASSERT_TRUE(fx.cluster->create_pod(std::move(spec)).ok());
  // A binding whose pod was deleted while the registry was detached (no
  // watch event): modeled by allocating an instance that has no pod.
  ASSERT_TRUE(fx.registry->allocate("ghost-0", fx.sobel_query()).ok());
  EXPECT_EQ(fx.registry->assignment_count(), 2u);

  // Two-strike GC: the first sweep only marks the pod-less binding (an
  // admission in flight must survive the sweep it races with)...
  fx.registry->probe_devices();
  EXPECT_EQ(fx.registry->assignment_count(), 2u);
  // ...the second sweep reaps it; the live pod's binding is untouched.
  fx.registry->probe_devices();
  EXPECT_EQ(fx.registry->assignment_count(), 1u);
  EXPECT_TRUE(fx.registry->device_of_instance("sobel-1-0").has_value());
  EXPECT_FALSE(fx.registry->device_of_instance("ghost-0").has_value());
}

TEST(Registry, ReapStaleAssignmentsIsImmediate) {
  Fixture fx;
  ASSERT_TRUE(fx.registry->allocate("ghost-0", fx.sobel_query()).ok());
  ASSERT_TRUE(fx.registry->allocate("ghost-1", fx.sobel_query()).ok());
  EXPECT_EQ(fx.registry->assignment_count(), 2u);
  EXPECT_EQ(fx.registry->reap_stale_assignments(), 2u);
  EXPECT_EQ(fx.registry->assignment_count(), 0u);
  // Every device is tenant-free again: deregistration succeeds.
  EXPECT_TRUE(fx.registry->deregister_device("fpga-A").ok());
}

TEST(Registry, AssignmentsSnapshotMatchesIndex) {
  Fixture fx;
  ASSERT_TRUE(fx.registry->register_function("sobel-1", fx.sobel_query()).ok());
  for (int i = 0; i < 3; ++i) {
    cluster::PodSpec spec;
    spec.name = "sobel-1-" + std::to_string(i);
    spec.function = "sobel-1";
    ASSERT_TRUE(fx.cluster->create_pod(std::move(spec)).ok());
  }
  auto snapshot = fx.registry->assignments();
  EXPECT_EQ(snapshot.size(), fx.registry->assignment_count());
  std::size_t indexed = 0;
  for (const auto& record : fx.registry->devices()) {
    for (const std::string& instance :
         fx.registry->instances_on_device(record.id)) {
      ++indexed;
      ASSERT_TRUE(snapshot.contains(instance));
      EXPECT_EQ(snapshot.at(instance), record.id);
    }
  }
  EXPECT_EQ(indexed, snapshot.size());
}

}  // namespace
}  // namespace bf::registry
