// The C-style OpenCL API shim: classic clXxx-shaped host code running
// against both runtimes without modification — the strongest form of the
// paper's transparency claim.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "devmgr/device_manager.h"
#include "native/native_runtime.h"
#include "ocl/capi.h"
#include "remote/remote_runtime.h"
#include "shm/namespace.h"
#include "sim/bitstream.h"
#include "sim/board.h"

namespace bf::ocl::capi {
namespace {

struct Rig {
  Rig() {
    sim::BoardConfig bc;
    bc.id = "fpga-b";
    bc.node = "B";
    bc.host = sim::make_node_b();
    bc.memory_bytes = 128 * kMiB;
    board = std::make_unique<sim::Board>(bc);
    devmgr::DeviceManagerConfig mc;
    mc.id = "devmgr-b";
    manager = std::make_unique<devmgr::DeviceManager>(mc, board.get(),
                                                      &node_shm);
    remote::ManagerAddress address;
    address.endpoint = &manager->endpoint();
    address.transport = net::local_control(bc.host);
    address.node_shm = &node_shm;
    remote = std::make_unique<remote::RemoteRuntime>(
        std::vector<remote::ManagerAddress>{address});
    native = std::make_unique<native::NativeRuntime>(
        std::vector<sim::Board*>{board.get()});
  }
  ~Rig() { reset_binding_objects(); }

  shm::Namespace node_shm;
  std::unique_ptr<sim::Board> board;
  std::unique_ptr<devmgr::DeviceManager> manager;
  std::unique_ptr<remote::RemoteRuntime> remote;
  std::unique_ptr<native::NativeRuntime> native;
};

// Classic OpenCL host code, written exactly as against the C API.
std::vector<float> run_vadd_c_style(std::size_t n) {
  bfcl_uint num_platforms = 0;
  EXPECT_EQ(bfclGetPlatformIDs(0, nullptr, &num_platforms), BFCL_SUCCESS);
  EXPECT_GE(num_platforms, 1u);
  bfcl_platform_id platform = nullptr;
  EXPECT_EQ(bfclGetPlatformIDs(1, &platform, nullptr), BFCL_SUCCESS);

  bfcl_device_id device = nullptr;
  bfcl_uint num_devices = 0;
  EXPECT_EQ(bfclGetDeviceIDs(platform, 1, &device, &num_devices),
            BFCL_SUCCESS);
  EXPECT_EQ(num_devices, 1u);

  char name[128] = {};
  EXPECT_EQ(bfclGetDeviceInfo(device, BFCL_DEVICE_NAME, sizeof(name), name,
                              nullptr),
            BFCL_SUCCESS);
  EXPECT_NE(std::string(name).find("Terasic"), std::string::npos);

  bfcl_int err = 0;
  bfcl_context context = bfclCreateContext(&device, 1, &err);
  EXPECT_EQ(err, BFCL_SUCCESS);
  EXPECT_EQ(bfclProgramWithBitstream(context, sim::BitstreamLibrary::kVadd),
            BFCL_SUCCESS);

  bfcl_command_queue queue = bfclCreateCommandQueue(context, device, &err);
  EXPECT_EQ(err, BFCL_SUCCESS);

  std::vector<float> a(n), b(n), c(n);
  std::iota(a.begin(), a.end(), 0.0F);
  std::iota(b.begin(), b.end(), 100.0F);
  const std::size_t bytes = n * sizeof(float);

  bfcl_mem mem_a = bfclCreateBuffer(context, bytes, &err);
  EXPECT_EQ(err, BFCL_SUCCESS);
  bfcl_mem mem_b = bfclCreateBuffer(context, bytes, &err);
  bfcl_mem mem_c = bfclCreateBuffer(context, bytes, &err);

  EXPECT_EQ(bfclEnqueueWriteBuffer(queue, mem_a, BFCL_FALSE, 0, bytes,
                                   a.data(), nullptr),
            BFCL_SUCCESS);
  EXPECT_EQ(bfclEnqueueWriteBuffer(queue, mem_b, BFCL_FALSE, 0, bytes,
                                   b.data(), nullptr),
            BFCL_SUCCESS);

  bfcl_kernel kernel = bfclCreateKernel(context, "vadd", &err);
  EXPECT_EQ(err, BFCL_SUCCESS);
  const std::int64_t count = static_cast<std::int64_t>(n);
  EXPECT_EQ(bfclSetKernelArg(kernel, 0, sizeof(bfcl_mem), &mem_a),
            BFCL_SUCCESS);
  EXPECT_EQ(bfclSetKernelArg(kernel, 1, sizeof(bfcl_mem), &mem_b),
            BFCL_SUCCESS);
  EXPECT_EQ(bfclSetKernelArg(kernel, 2, sizeof(bfcl_mem), &mem_c),
            BFCL_SUCCESS);
  EXPECT_EQ(bfclSetKernelArg(kernel, 3, sizeof(count), &count), BFCL_SUCCESS);

  bfcl_event kernel_event = nullptr;
  EXPECT_EQ(
      bfclEnqueueNDRangeKernel(queue, kernel, 1, &n, &kernel_event),
      BFCL_SUCCESS);
  EXPECT_EQ(bfclFlush(queue), BFCL_SUCCESS);
  EXPECT_EQ(bfclWaitForEvents(1, &kernel_event), BFCL_SUCCESS);

  bfcl_int status = BFCL_QUEUED;
  EXPECT_EQ(bfclGetEventInfo(kernel_event,
                             BFCL_EVENT_COMMAND_EXECUTION_STATUS,
                             sizeof(status), &status, nullptr),
            BFCL_SUCCESS);
  EXPECT_EQ(status, BFCL_COMPLETE);

  EXPECT_EQ(bfclEnqueueReadBuffer(queue, mem_c, BFCL_TRUE, 0, bytes,
                                  c.data(), nullptr),
            BFCL_SUCCESS);

  EXPECT_EQ(bfclReleaseEvent(kernel_event), BFCL_SUCCESS);
  EXPECT_EQ(bfclReleaseKernel(kernel), BFCL_SUCCESS);
  EXPECT_EQ(bfclReleaseMemObject(mem_a), BFCL_SUCCESS);
  EXPECT_EQ(bfclReleaseMemObject(mem_b), BFCL_SUCCESS);
  EXPECT_EQ(bfclReleaseMemObject(mem_c), BFCL_SUCCESS);
  EXPECT_EQ(bfclReleaseCommandQueue(queue), BFCL_SUCCESS);
  EXPECT_EQ(bfclReleaseContext(context), BFCL_SUCCESS);
  return c;
}

TEST(CApi, VaddThroughRemoteLibrary) {
  Rig rig;
  Session session("capi-remote");
  bind(rig.remote.get(), &session);
  auto c = run_vadd_c_style(2048);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_FLOAT_EQ(c[i], static_cast<float>(i) + (100.0F + i));
  }
}

TEST(CApi, VaddThroughNativeRuntime) {
  Rig rig;
  Session session("capi-native");
  bind(rig.native.get(), &session);
  auto c = run_vadd_c_style(2048);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_FLOAT_EQ(c[i], static_cast<float>(i) + (100.0F + i));
  }
}

TEST(CApi, ErrorsWithoutBinding) {
  reset_binding_objects();
  bind(nullptr, nullptr);
  bfcl_uint count = 0;
  EXPECT_EQ(bfclGetPlatformIDs(0, nullptr, &count), BFCL_INVALID_PLATFORM);
}

TEST(CApi, InvalidHandlesRejected) {
  Rig rig;
  Session session("capi");
  bind(rig.native.get(), &session);
  EXPECT_EQ(bfclReleaseContext(nullptr), BFCL_INVALID_CONTEXT);
  EXPECT_EQ(bfclFinish(nullptr), BFCL_INVALID_COMMAND_QUEUE);
  EXPECT_EQ(bfclReleaseMemObject(nullptr), BFCL_INVALID_MEM_OBJECT);
  EXPECT_EQ(bfclWaitForEvents(0, nullptr), BFCL_INVALID_VALUE);
  bfcl_uint num_devices = 0;
  EXPECT_EQ(bfclGetDeviceIDs(nullptr, 1, nullptr, &num_devices),
            BFCL_INVALID_PLATFORM);
}

TEST(CApi, UnknownKernelNameMapsToSpecError) {
  Rig rig;
  Session session("capi");
  bind(rig.native.get(), &session);
  bfcl_platform_id platform = nullptr;
  ASSERT_EQ(bfclGetPlatformIDs(1, &platform, nullptr), BFCL_SUCCESS);
  bfcl_device_id device = nullptr;
  ASSERT_EQ(bfclGetDeviceIDs(platform, 1, &device, nullptr), BFCL_SUCCESS);
  bfcl_int err = 0;
  bfcl_context context = bfclCreateContext(&device, 1, &err);
  ASSERT_EQ(err, BFCL_SUCCESS);
  ASSERT_EQ(bfclProgramWithBitstream(context, sim::BitstreamLibrary::kVadd),
            BFCL_SUCCESS);
  bfcl_kernel kernel = bfclCreateKernel(context, "does-not-exist", &err);
  EXPECT_EQ(kernel, nullptr);
  EXPECT_EQ(err, BFCL_INVALID_KERNEL_NAME);
  EXPECT_EQ(bfclProgramWithBitstream(context, "bogus"), BFCL_INVALID_PROGRAM);
  EXPECT_EQ(bfclReleaseContext(context), BFCL_SUCCESS);
}

TEST(CApi, EventRetainRelease) {
  Rig rig;
  Session session("capi");
  bind(rig.native.get(), &session);
  bfcl_platform_id platform = nullptr;
  ASSERT_EQ(bfclGetPlatformIDs(1, &platform, nullptr), BFCL_SUCCESS);
  bfcl_device_id device = nullptr;
  ASSERT_EQ(bfclGetDeviceIDs(platform, 1, &device, nullptr), BFCL_SUCCESS);
  bfcl_int err = 0;
  bfcl_context context = bfclCreateContext(&device, 1, &err);
  ASSERT_EQ(bfclProgramWithBitstream(context, sim::BitstreamLibrary::kVadd),
            BFCL_SUCCESS);
  bfcl_command_queue queue = bfclCreateCommandQueue(context, device, &err);
  bfcl_mem mem = bfclCreateBuffer(context, 1024, &err);
  Bytes data(1024);
  bfcl_event event = nullptr;
  ASSERT_EQ(bfclEnqueueWriteBuffer(queue, mem, BFCL_TRUE, 0, 1024,
                                   data.data(), &event),
            BFCL_SUCCESS);
  ASSERT_EQ(bfclRetainEvent(event), BFCL_SUCCESS);
  EXPECT_EQ(bfclReleaseEvent(event), BFCL_SUCCESS);  // refcount 2 -> 1
  EXPECT_EQ(bfclReleaseEvent(event), BFCL_SUCCESS);  // 1 -> 0, destroyed
  EXPECT_EQ(bfclReleaseEvent(event), BFCL_INVALID_EVENT);
  EXPECT_EQ(bfclReleaseContext(context), BFCL_SUCCESS);
}

}  // namespace
}  // namespace bf::ocl::capi
