// Node autoscaling extension: provisioning under load, decommissioning when
// idle, hysteresis and bounds.
#include <gtest/gtest.h>

#include "loadgen/loadgen.h"
#include "registry/autoscaler.h"
#include "testbed/testbed.h"
#include "workloads/sobel.h"

namespace bf::registry {
namespace {

// The AWS-F1 stand-in: provisions simulated nodes D, E, ... on the testbed.
class TestbedProvisioner final : public NodeProvisioner {
 public:
  explicit TestbedProvisioner(testbed::Testbed* bed) : bed_(bed) {}

  Result<std::string> provision() override {
    const std::string name(1, static_cast<char>('D' + provisioned_++));
    return bed_->provision_node(name);
  }

  Status decommission(const std::string& device_id) override {
    // device ids are "fpga-<node>".
    return bed_->decommission_node(device_id.substr(5));
  }

 private:
  testbed::Testbed* bed_;
  int provisioned_ = 0;
};

workloads::WorkloadFactory sobel_factory() {
  return [] {
    return std::make_unique<workloads::SobelWorkload>(640, 480);
  };
}

TEST(Autoscaler, NoActionAtModerateUtilization) {
  testbed::Testbed bed;
  TestbedProvisioner provisioner(&bed);
  AutoscalerPolicy policy;
  policy.hysteresis = 1;
  Autoscaler autoscaler(&bed.registry(), &provisioner, policy);
  // Fresh cluster: 0 utilization but min_devices already met, and no
  // connected instances... scale-down would fire; bump min_devices to 3
  // (default) so the idle fleet stays.
  EXPECT_EQ(autoscaler.evaluate(), Autoscaler::Action::kNone);
  EXPECT_EQ(bed.registry().devices().size(), 3u);
}

TEST(Autoscaler, ScalesUpUnderSustainedLoad) {
  testbed::Testbed bed;
  TestbedProvisioner provisioner(&bed);
  AutoscalerPolicy policy;
  policy.scale_up_utilization = 0.4;
  policy.hysteresis = 2;
  Autoscaler autoscaler(&bed.registry(), &provisioner, policy);

  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(bed.deploy_blastfunction("fn-" + std::to_string(i),
                                         sobel_factory())
                    .ok());
  }
  // Saturating load on all three boards.
  std::vector<loadgen::DriveSpec> specs;
  for (int i = 1; i <= 3; ++i) {
    loadgen::DriveSpec spec;
    spec.function = "fn-" + std::to_string(i);
    spec.target_rps = 400;
    spec.warmup = vt::Duration::seconds(3);
    spec.duration = vt::Duration::seconds(8);
    specs.push_back(spec);
  }
  (void)loadgen::drive_all(bed.gateway(), specs);

  // The metrics window now shows high utilization: two evaluations
  // (hysteresis) must provision a node.
  EXPECT_EQ(autoscaler.evaluate(), Autoscaler::Action::kNone);
  EXPECT_GT(autoscaler.last_mean_utilization(), 0.4);
  EXPECT_EQ(autoscaler.evaluate(), Autoscaler::Action::kScaleUp);
  EXPECT_EQ(bed.registry().devices().size(), 4u);
  EXPECT_EQ(autoscaler.scale_ups(), 1u);
  // The new node is usable: deploy a function and serve a request.
  ASSERT_TRUE(bed.deploy_blastfunction("fn-new", sobel_factory()).ok());
  EXPECT_TRUE(bed.gateway().invoke("fn-new").ok());
}

TEST(Autoscaler, RespectsMaxDevices) {
  testbed::Testbed bed;
  TestbedProvisioner provisioner(&bed);
  AutoscalerPolicy policy;
  policy.scale_up_utilization = -1.0;  // always "overloaded"
  policy.hysteresis = 1;
  policy.max_devices = 4;
  Autoscaler autoscaler(&bed.registry(), &provisioner, policy);
  EXPECT_EQ(autoscaler.evaluate(), Autoscaler::Action::kScaleUp);
  EXPECT_EQ(bed.registry().devices().size(), 4u);
  // At the cap: no further scale-ups.
  EXPECT_EQ(autoscaler.evaluate(), Autoscaler::Action::kNone);
  EXPECT_EQ(bed.registry().devices().size(), 4u);
}

TEST(Autoscaler, ScalesDownIdleExtraNode) {
  testbed::Testbed bed;
  TestbedProvisioner provisioner(&bed);
  ASSERT_TRUE(bed.provision_node("D").ok());
  ASSERT_EQ(bed.registry().devices().size(), 4u);
  AutoscalerPolicy policy;
  policy.scale_down_utilization = 0.5;  // everything below counts as idle
  policy.hysteresis = 1;
  policy.min_devices = 3;
  Autoscaler autoscaler(&bed.registry(), &provisioner, policy);
  EXPECT_EQ(autoscaler.evaluate(), Autoscaler::Action::kScaleDown);
  EXPECT_EQ(bed.registry().devices().size(), 3u);
  // Back at min_devices: no further scale-down.
  EXPECT_EQ(autoscaler.evaluate(), Autoscaler::Action::kNone);
}

TEST(Autoscaler, NeverDecommissionsDevicesWithTenants) {
  testbed::Testbed bed;
  TestbedProvisioner provisioner(&bed);
  // Occupy every device with a tenant.
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(bed.deploy_blastfunction("fn-" + std::to_string(i),
                                         sobel_factory())
                    .ok());
  }
  AutoscalerPolicy policy;
  policy.scale_down_utilization = 2.0;  // always "idle"
  policy.hysteresis = 1;
  policy.min_devices = 1;
  Autoscaler autoscaler(&bed.registry(), &provisioner, policy);
  // No device is free of tenants: nothing to decommission.
  EXPECT_EQ(autoscaler.evaluate(), Autoscaler::Action::kNone);
  EXPECT_EQ(bed.registry().devices().size(), 3u);
}

TEST(Registry, DeregisterDeviceGuards) {
  testbed::Testbed bed;
  ASSERT_TRUE(bed.deploy_blastfunction("fn", sobel_factory()).ok());
  auto device = bed.registry().device_of_instance("fn-0");
  ASSERT_TRUE(device.has_value());
  EXPECT_EQ(bed.registry().deregister_device(*device).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(bed.registry().deregister_device("ghost").code(),
            StatusCode::kNotFound);
}

TEST(Cluster, NodeJoinAndRemove) {
  testbed::Testbed bed;
  EXPECT_EQ(bed.cluster().nodes().size(), 3u);
  ASSERT_TRUE(bed.provision_node("D").ok());
  EXPECT_EQ(bed.cluster().nodes().size(), 4u);
  EXPECT_EQ(bed.node_names().size(), 4u);
  EXPECT_FALSE(bed.provision_node("D").ok());  // duplicate
  ASSERT_TRUE(bed.decommission_node("D").ok());
  EXPECT_EQ(bed.cluster().nodes().size(), 3u);
}

}  // namespace
}  // namespace bf::registry
