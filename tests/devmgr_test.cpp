// bf::devmgr: session isolation, task semantics, reconfiguration behaviour
// and metrics, exercised through the Remote OpenCL Library.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "devmgr/device_manager.h"
#include "remote/remote_runtime.h"
#include "shm/namespace.h"
#include "sim/bitstream.h"
#include "sim/board.h"

namespace bf::devmgr {
namespace {

struct Rig {
  Rig() {
    sim::BoardConfig bc;
    bc.id = "fpga-b";
    bc.node = "B";
    bc.host = sim::make_node_b();
    bc.memory_bytes = 64 * kMiB;
    board = std::make_unique<sim::Board>(bc);
    DeviceManagerConfig mc;
    mc.id = "devmgr-b";
    // These tests drive two sessions from one thread on purpose; a short
    // grace keeps the idle-producer fallback fast.
    mc.gate_stall_grace = std::chrono::milliseconds(50);
    manager = std::make_unique<DeviceManager>(mc, board.get(), &node_shm);
    remote::ManagerAddress address;
    address.endpoint = &manager->endpoint();
    address.transport = net::local_control(bc.host);
    address.node_shm = &node_shm;
    runtime = std::make_unique<remote::RemoteRuntime>(
        std::vector<remote::ManagerAddress>{address});
  }

  std::unique_ptr<ocl::Context> make_context(ocl::Session& session) {
    auto context = runtime->create_context("fpga-b", session);
    BF_CHECK(context.ok());
    return std::move(context.value());
  }

  shm::Namespace node_shm;
  std::unique_ptr<sim::Board> board;
  std::unique_ptr<DeviceManager> manager;
  std::unique_ptr<remote::RemoteRuntime> runtime;
};

TEST(DeviceManager, SessionsGetIsolatedResourcePools) {
  Rig rig;
  ocl::Session s1("tenant-1");
  ocl::Session s2("tenant-2");
  auto c1 = rig.make_context(s1);
  auto c2 = rig.make_context(s2);
  ASSERT_TRUE(c1->program(sim::BitstreamLibrary::kVadd).ok());
  ASSERT_TRUE(c2->program(sim::BitstreamLibrary::kVadd).ok());
  auto b1 = c1->create_buffer(1024);
  auto b2 = c2->create_buffer(1024);
  ASSERT_TRUE(b1.ok() && b2.ok());
  // Per-session id spaces start at 1 independently: isolation means tenant 2
  // gets its own id 1 and never sees tenant 1's objects.
  EXPECT_EQ(b1.value().id, 1u);
  EXPECT_EQ(b2.value().id, 1u);
  EXPECT_EQ(rig.manager->session_count(), 2u);
  // Releasing tenant-2's buffer does not disturb tenant-1's.
  ASSERT_TRUE(c2->release_buffer(b2.value()).ok());
  auto queue1 = c1->create_queue();
  ASSERT_TRUE(queue1.ok());
  Bytes data(1024, 0x11);
  EXPECT_TRUE(
      queue1.value()->enqueue_write(b1.value(), 0, ByteSpan{data}, true).ok());
}

TEST(DeviceManager, UnknownBufferInTaskYieldsEventError) {
  Rig rig;
  ocl::Session session("t");
  auto context = rig.make_context(session);
  ASSERT_TRUE(context->program(sim::BitstreamLibrary::kVadd).ok());
  auto queue = context->create_queue();
  ASSERT_TRUE(queue.ok());
  ocl::Buffer bogus{999, 64};
  Bytes data(64);
  auto event = queue.value()->enqueue_write(bogus, 0, ByteSpan{data}, false);
  ASSERT_TRUE(event.ok());  // enqueue itself succeeds (async)
  ASSERT_TRUE(queue.value()->flush().ok());
  Status status = event.value()->wait();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(DeviceManager, OutOfMemoryReportedOnCreateBuffer) {
  Rig rig;
  ocl::Session session("t");
  auto context = rig.make_context(session);
  auto too_big = context->create_buffer(1ULL << 40);
  EXPECT_EQ(too_big.status().code(), StatusCode::kResourceExhausted);
}

TEST(DeviceManager, UnknownKernelRejectedAtCreate) {
  Rig rig;
  ocl::Session session("t");
  auto context = rig.make_context(session);
  ASSERT_TRUE(context->program(sim::BitstreamLibrary::kVadd).ok());
  EXPECT_EQ(context->create_kernel("sobel").status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(context->create_kernel("vadd").ok());
}

TEST(DeviceManager, UnknownBitstreamRejected) {
  Rig rig;
  ocl::Session session("t");
  auto context = rig.make_context(session);
  EXPECT_EQ(context->program("not-a-bitstream").code(),
            StatusCode::kNotFound);
}

TEST(DeviceManager, OpsWithoutFlushDoNotExecute) {
  Rig rig;
  ocl::Session session("t");
  auto context = rig.make_context(session);
  ASSERT_TRUE(context->program(sim::BitstreamLibrary::kVadd).ok());
  auto buffer = context->create_buffer(1024);
  ASSERT_TRUE(buffer.ok());
  auto queue = context->create_queue();
  ASSERT_TRUE(queue.ok());
  Bytes data(1024);
  auto event =
      queue.value()->enqueue_write(buffer.value(), 0, ByteSpan{data}, false);
  ASSERT_TRUE(event.ok());
  // Give the manager a real-time moment: nothing should execute.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(rig.manager->tasks_executed(), 0u);
  EXPECT_NE(event.value()->status(), ocl::EventStatus::kComplete);
  // The flush (implied by wait) releases the task.
  ASSERT_TRUE(event.value()->wait().ok());
  EXPECT_EQ(rig.manager->tasks_executed(), 1u);
}

TEST(DeviceManager, FinishNotifiesAfterAllOps) {
  Rig rig;
  ocl::Session session("t");
  auto context = rig.make_context(session);
  ASSERT_TRUE(context->program(sim::BitstreamLibrary::kVadd).ok());
  auto buffer = context->create_buffer(4 * kMiB);
  ASSERT_TRUE(buffer.ok());
  auto queue = context->create_queue();
  ASSERT_TRUE(queue.ok());
  Bytes data(4 * kMiB);
  auto e1 =
      queue.value()->enqueue_write(buffer.value(), 0, ByteSpan{data}, false);
  auto e2 =
      queue.value()->enqueue_write(buffer.value(), 0, ByteSpan{data}, false);
  ASSERT_TRUE(e1.ok() && e2.ok());
  ASSERT_TRUE(queue.value()->finish().ok());
  EXPECT_EQ(e1.value()->status(), ocl::EventStatus::kComplete);
  EXPECT_EQ(e2.value()->status(), ocl::EventStatus::kComplete);
  EXPECT_GE(session.now(), e2.value()->completion_time());
  EXPECT_GE(e2.value()->completion_time(), e1.value()->completion_time());
}

TEST(DeviceManager, ReconfigurationWipesAllTenantsBuffers) {
  Rig rig;
  ocl::Session s1("tenant-1");
  ocl::Session s2("tenant-2");
  auto c1 = rig.make_context(s1);
  auto c2 = rig.make_context(s2);
  ASSERT_TRUE(c1->program(sim::BitstreamLibrary::kVadd).ok());
  auto buffer = c1->create_buffer(1024);
  ASSERT_TRUE(buffer.ok());
  // Tenant 2 loads a different image: DDR is wiped for everyone.
  ASSERT_TRUE(c2->program(sim::BitstreamLibrary::kSobel).ok());
  auto queue = c1->create_queue();
  ASSERT_TRUE(queue.ok());
  Bytes data(1024);
  auto event =
      queue.value()->enqueue_write(buffer.value(), 0, ByteSpan{data}, false);
  ASSERT_TRUE(event.ok());
  ASSERT_TRUE(queue.value()->flush().ok());
  EXPECT_FALSE(event.value()->wait().ok());
  EXPECT_EQ(rig.board->reconfiguration_count(), 2u);
}

TEST(DeviceManager, MultipleQueuesProduceIndependentTasks) {
  Rig rig;
  ocl::Session session("t");
  auto context = rig.make_context(session);
  ASSERT_TRUE(context->program(sim::BitstreamLibrary::kVadd).ok());
  auto buffer = context->create_buffer(1024);
  ASSERT_TRUE(buffer.ok());
  auto q1 = context->create_queue();
  auto q2 = context->create_queue();
  ASSERT_TRUE(q1.ok() && q2.ok());
  Bytes data(1024);
  (void)q1.value()->enqueue_write(buffer.value(), 0, ByteSpan{data}, false);
  (void)q2.value()->enqueue_write(buffer.value(), 0, ByteSpan{data}, false);
  ASSERT_TRUE(q1.value()->finish().ok());
  ASSERT_TRUE(q2.value()->finish().ok());
  // Two queues, two flushes => two tasks (counted before the finish
  // completion is delivered).
  EXPECT_EQ(rig.manager->tasks_executed(), 2u);
}

TEST(DeviceManager, ExportsPrometheusMetrics) {
  Rig rig;
  ocl::Session session("t");
  auto context = rig.make_context(session);
  ASSERT_TRUE(context->program(sim::BitstreamLibrary::kVadd).ok());
  auto buffer = context->create_buffer(1024);
  ASSERT_TRUE(buffer.ok());
  auto queue = context->create_queue();
  ASSERT_TRUE(queue.ok());
  Bytes data(1024);
  ASSERT_TRUE(
      queue.value()->enqueue_write(buffer.value(), 0, ByteSpan{data}, true).ok());
  const std::string text = rig.manager->metrics().expose();
  EXPECT_NE(text.find("bf_devmgr_tasks_total"), std::string::npos);
  EXPECT_NE(text.find("bf_devmgr_ops_total"), std::string::npos);
  EXPECT_NE(text.find("device=\"fpga-b\""), std::string::npos);
  EXPECT_NE(text.find("bf_devmgr_task_span_ms_bucket"), std::string::npos);
}

TEST(DeviceManager, UtilizationAndClientAttribution) {
  Rig rig;
  ocl::Session session("tenant-x");
  auto context = rig.make_context(session);
  ASSERT_TRUE(context->program(sim::BitstreamLibrary::kVadd).ok());
  auto buffer = context->create_buffer(8 * kMiB);
  ASSERT_TRUE(buffer.ok());
  auto queue = context->create_queue();
  ASSERT_TRUE(queue.ok());
  Bytes data(8 * kMiB);
  ASSERT_TRUE(
      queue.value()->enqueue_write(buffer.value(), 0, ByteSpan{data}, true).ok());
  const vt::Time horizon = session.now() + vt::Duration::seconds(1);
  const double utilization =
      rig.manager->utilization(vt::Time::zero(), horizon);
  EXPECT_GT(utilization, 0.0);
  EXPECT_LT(utilization, 1.0);
  const vt::Duration mine = rig.manager->client_busy_between(
      "tenant-x", vt::Time::zero(), horizon);
  EXPECT_GT(mine.ns(), 0);
  EXPECT_EQ(rig.manager
                ->client_busy_between("ghost", vt::Time::zero(), horizon)
                .ns(),
            0);
  // All board busy time belongs to the only tenant.
  EXPECT_EQ(mine.ns(),
            rig.board->busy_between(vt::Time::zero(), horizon).ns());
}

TEST(DeviceManager, SegmentNameIsDeterministic) {
  Rig rig;
  EXPECT_EQ(rig.manager->segment_name(3), "devmgr-b:sess:3");
}

}  // namespace
}  // namespace bf::devmgr
