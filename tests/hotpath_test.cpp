// Hot-path memory discipline (docs/PERFORMANCE.md): the per-request data
// plane must MOVE payloads end-to-end and recycle storage through the arena
// free lists, so a steady-state request stream makes no Bytes deep copies
// and no new Bytes heap allocations after warmup. The tests diff the
// process-wide Bytes instrumentation counters around a measured window.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>

#include "common/arena.h"
#include "common/bytes.h"
#include "devmgr/device_manager.h"
#include "remote/remote_runtime.h"
#include "shm/namespace.h"
#include "shm/segment.h"
#include "sim/bitstream.h"
#include "sim/board.h"

namespace bf {
namespace {

struct Rig {
  explicit Rig(bool with_shm) {
    sim::BoardConfig bc;
    bc.id = "fpga-b";
    bc.node = "B";
    bc.host = sim::make_node_b();
    bc.memory_bytes = 64 * kMiB;
    board = std::make_unique<sim::Board>(bc);
    devmgr::DeviceManagerConfig mc;
    mc.id = "devmgr-b";
    mc.allow_shared_memory = with_shm;
    mc.gate_stall_grace = std::chrono::milliseconds(50);
    manager = std::make_unique<devmgr::DeviceManager>(
        mc, board.get(), with_shm ? &node_shm : nullptr);
    remote::ManagerAddress address;
    address.endpoint = &manager->endpoint();
    address.transport = net::local_control(bc.host);
    address.node_shm = with_shm ? &node_shm : nullptr;
    runtime = std::make_unique<remote::RemoteRuntime>(
        std::vector<remote::ManagerAddress>{address});
  }

  shm::Namespace node_shm;
  std::unique_ptr<sim::Board> board;
  std::unique_ptr<devmgr::DeviceManager> manager;
  std::unique_ptr<remote::RemoteRuntime> runtime;
};

// One request: gRPC-path write -> kernel -> read -> finish, the Fig. 4b
// request shape. `payload` is moved in and handed back refilled so the
// caller's loop cycles one buffer.
void run_request(ocl::CommandQueue& queue, ocl::Kernel& kernel,
                 const ocl::Buffer& in, const ocl::Buffer& out, Bytes payload,
                 Bytes& read_back, Bytes& payload_out) {
  ASSERT_TRUE(
      queue.enqueue_write(in, 0, std::move(payload), /*blocking=*/false).ok());
  ASSERT_TRUE(queue.enqueue_kernel(kernel, ocl::NdRange{}).ok());
  ASSERT_TRUE(queue
                  .enqueue_read(out, 0, MutableByteSpan{read_back},
                                /*blocking=*/false)
                  .ok());
  ASSERT_TRUE(queue.finish().ok());
  // Refill from the arena like a well-behaved client: the buffer moved into
  // enqueue_write was recycled after serialization, so this is a pool hit.
  payload_out = arena::acquire(read_back.size());
  payload_out.resize_for_overwrite(read_back.size());
}

// The copy-counter conformance test: an op's payload travels client ->
// WriteData frame -> dispatcher decode -> Operation::inline_data ->
// board write without a single Bytes deep copy, and after warmup the
// arena recycling loop serves every buffer on the path (frames, decoded
// payloads, read staging) without new Bytes heap allocations.
TEST(HotPathDiscipline, GrpcRequestLoopMovesPayloadAndReusesArena) {
  Rig rig(/*with_shm=*/false);
  ocl::Session session("tenant");
  auto context = rig.runtime->create_context("fpga-b", session);
  ASSERT_TRUE(context.ok());
  ASSERT_TRUE(context.value()->program(sim::BitstreamLibrary::kVadd).ok());
  auto kernel = context.value()->create_kernel("vadd");
  ASSERT_TRUE(kernel.ok());
  constexpr std::size_t kPayload = 256 * 1024;
  auto in = context.value()->create_buffer(kPayload);
  auto out = context.value()->create_buffer(kPayload);
  ASSERT_TRUE(in.ok() && out.ok());
  kernel.value().set_arg(0, in.value());
  kernel.value().set_arg(1, in.value());
  kernel.value().set_arg(2, out.value());
  kernel.value().set_arg(3, std::int64_t{kPayload / 4});
  auto queue = context.value()->create_queue();
  ASSERT_TRUE(queue.ok());

  Bytes payload(kPayload, 0xAB);
  Bytes read_back(kPayload);
  for (int i = 0; i < 16; ++i) {  // warm the arena free lists
    Bytes next;
    run_request(*queue.value(), kernel.value(), in.value(), out.value(),
                std::move(payload), read_back, next);
    payload = std::move(next);
  }

  const std::uint64_t copies_before = Bytes::deep_copy_count();
  const std::uint64_t allocs_before = Bytes::heap_alloc_count();
  constexpr int kMeasured = 32;
  for (int i = 0; i < kMeasured; ++i) {
    Bytes next;
    run_request(*queue.value(), kernel.value(), in.value(), out.value(),
                std::move(payload), read_back, next);
    payload = std::move(next);
  }
  EXPECT_EQ(Bytes::deep_copy_count() - copies_before, 0u)
      << "a Bytes deep copy crept into the per-request path";
  EXPECT_EQ(Bytes::heap_alloc_count() - allocs_before, 0u)
      << "steady-state requests must be served from the arena free lists";
}

// Same request stream over the shared-memory data path: the segment's
// spare cache plus the arena backstop must make the steady state
// allocation-free as well.
TEST(HotPathDiscipline, ShmRequestLoopIsAllocationFreeAfterWarmup) {
  Rig rig(/*with_shm=*/true);
  ocl::Session session("tenant");
  auto context = rig.runtime->create_context("fpga-b", session);
  ASSERT_TRUE(context.ok());
  ASSERT_TRUE(context.value()->program(sim::BitstreamLibrary::kVadd).ok());
  auto kernel = context.value()->create_kernel("vadd");
  ASSERT_TRUE(kernel.ok());
  constexpr std::size_t kPayload = 256 * 1024;
  auto in = context.value()->create_buffer(kPayload);
  auto out = context.value()->create_buffer(kPayload);
  ASSERT_TRUE(in.ok() && out.ok());
  kernel.value().set_arg(0, in.value());
  kernel.value().set_arg(1, in.value());
  kernel.value().set_arg(2, out.value());
  kernel.value().set_arg(3, std::int64_t{kPayload / 4});
  auto queue = context.value()->create_queue();
  ASSERT_TRUE(queue.ok());

  Bytes payload(kPayload, 0xCD);
  Bytes read_back(kPayload);
  for (int i = 0; i < 16; ++i) {
    Bytes next;
    run_request(*queue.value(), kernel.value(), in.value(), out.value(),
                std::move(payload), read_back, next);
    payload = std::move(next);
  }

  const std::uint64_t allocs_before = Bytes::heap_alloc_count();
  for (int i = 0; i < 32; ++i) {
    Bytes next;
    run_request(*queue.value(), kernel.value(), in.value(), out.value(),
                std::move(payload), read_back, next);
    payload = std::move(next);
  }
  EXPECT_EQ(Bytes::heap_alloc_count() - allocs_before, 0u);
}

// Segment-level regression: the stage(Bytes&&) -> fetch_take cycle and the
// allocate -> release read-slot loop both reuse storage (spare cache or
// arena) instead of allocating per iteration.
TEST(HotPathDiscipline, SegmentSteadyStateStageFetchTakeIsAllocationFree) {
  shm::Segment segment(sim::CopyModel(13.0 * 1024 * 1024 * 1024), 64 << 20);
  vt::Cursor cursor;
  Bytes buffer(512 * 1024, 0x5A);
  for (int i = 0; i < 8; ++i) {  // warmup
    auto slot = segment.stage(std::move(buffer), cursor);
    ASSERT_TRUE(slot.ok());
    auto taken = segment.fetch_take(slot.value(), cursor);
    ASSERT_TRUE(taken.ok());
    buffer = std::move(taken.value());
  }
  const std::uint64_t allocs_before = Bytes::heap_alloc_count();
  for (int i = 0; i < 64; ++i) {
    auto slot = segment.stage(std::move(buffer), cursor);
    ASSERT_TRUE(slot.ok());
    auto taken = segment.fetch_take(slot.value(), cursor);
    ASSERT_TRUE(taken.ok());
    buffer = std::move(taken.value());
  }
  EXPECT_EQ(Bytes::heap_alloc_count() - allocs_before, 0u);
}

TEST(HotPathDiscipline, SegmentReadSlotLoopReusesSpares) {
  shm::Segment segment(sim::CopyModel(13.0 * 1024 * 1024 * 1024), 64 << 20);
  vt::Cursor cursor;
  Bytes out(256 * 1024);
  for (int i = 0; i < 8; ++i) {  // warm the spare cache
    auto slot = segment.allocate(out.size());
    ASSERT_TRUE(slot.ok());
    ASSERT_TRUE(segment.fetch(slot.value(), MutableByteSpan{out}, cursor).ok());
  }
  const std::uint64_t allocs_before = Bytes::heap_alloc_count();
  for (int i = 0; i < 64; ++i) {
    auto slot = segment.allocate(out.size());
    ASSERT_TRUE(slot.ok());
    ASSERT_TRUE(segment.fetch(slot.value(), MutableByteSpan{out}, cursor).ok());
  }
  EXPECT_EQ(Bytes::heap_alloc_count() - allocs_before, 0u);
}

}  // namespace
}  // namespace bf
