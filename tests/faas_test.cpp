// bf::faas: gateway, function instances and execution modes.
#include <gtest/gtest.h>

#include "loadgen/loadgen.h"
#include "testbed/testbed.h"
#include "workloads/sobel.h"

namespace bf::faas {
namespace {

workloads::WorkloadFactory sobel_factory() {
  return [] {
    return std::make_unique<workloads::SobelWorkload>(640, 480);
  };
}

TEST(Gateway, DeployCreatesInstances) {
  testbed::Testbed bed;
  ASSERT_TRUE(bed.deploy_blastfunction("fn", sobel_factory(), 2).ok());
  EXPECT_EQ(bed.gateway().instance_count(), 2u);
  EXPECT_EQ(bed.gateway().instances("fn").size(), 2u);
  EXPECT_NE(bed.gateway().instance("fn", 0), nullptr);
  EXPECT_NE(bed.gateway().instance("fn", 1), nullptr);
  EXPECT_EQ(bed.gateway().instance("fn", 2), nullptr);
}

TEST(Gateway, DoubleDeployRejected) {
  testbed::Testbed bed;
  ASSERT_TRUE(bed.deploy_blastfunction("fn", sobel_factory()).ok());
  EXPECT_EQ(bed.deploy_blastfunction("fn", sobel_factory()).code(),
            StatusCode::kAlreadyExists);
}

TEST(Gateway, InvokeUnknownFunctionFails) {
  testbed::Testbed bed;
  EXPECT_EQ(bed.gateway().invoke("ghost").status().code(),
            StatusCode::kNotFound);
}

TEST(Gateway, InvokeServesRequest) {
  testbed::Testbed bed;
  ASSERT_TRUE(bed.deploy_blastfunction("fn", sobel_factory()).ok());
  auto result = bed.gateway().invoke("fn");
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_GT(result.value().latency.ms(), 1.0);
  auto instance = bed.gateway().instance("fn");
  EXPECT_EQ(instance->requests_served(), 1u);
  EXPECT_EQ(instance->errors(), 0u);
}

TEST(Gateway, RemoveDeletesPodsAndInstances) {
  testbed::Testbed bed;
  ASSERT_TRUE(bed.deploy_blastfunction("fn", sobel_factory(), 2).ok());
  ASSERT_TRUE(bed.gateway().remove("fn").ok());
  EXPECT_EQ(bed.gateway().instance_count(), 0u);
  EXPECT_EQ(bed.cluster().pod_count(), 0u);
  EXPECT_FALSE(bed.gateway().remove("fn").ok());
}

TEST(Gateway, ScaleUpAndDown) {
  testbed::Testbed bed;
  ASSERT_TRUE(bed.deploy_blastfunction("fn", sobel_factory(), 1).ok());
  ASSERT_TRUE(bed.gateway().scale("fn", 3).ok());
  EXPECT_EQ(bed.gateway().instances("fn").size(), 3u);
  ASSERT_TRUE(bed.gateway().scale("fn", 1).ok());
  EXPECT_EQ(bed.gateway().instances("fn").size(), 1u);
}

TEST(FunctionInstance, ColdStartOnlyOnFirstInvokePersistent) {
  testbed::Testbed bed;
  ASSERT_TRUE(bed.deploy_blastfunction("fn", sobel_factory()).ok());
  auto instance = bed.gateway().instance("fn");
  EXPECT_TRUE(instance->cold());
  auto first = instance->invoke();
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(instance->cold());
  auto second = instance->invoke();
  ASSERT_TRUE(second.ok());
  // Cold start (programming ~1.6 s) dominates the first request only.
  EXPECT_GT(first.value().latency.ms(), 1000.0);
  EXPECT_LT(second.value().latency.ms(), 30.0);
}

TEST(FunctionInstance, ForkModePaysPerRequestOverhead) {
  testbed::Testbed bed;
  ASSERT_TRUE(bed.deploy_native("warm", sobel_factory(), "B",
                                ExecutionMode::kPersistent)
                  .ok());
  ASSERT_TRUE(bed.deploy_native("forked", sobel_factory(), "C",
                                ExecutionMode::kForkPerRequest)
                  .ok());
  auto warm = bed.gateway().instance("warm");
  auto forked = bed.gateway().instance("forked");
  // Warm both past their cold start / first fork.
  ASSERT_TRUE(warm->invoke().ok());
  ASSERT_TRUE(forked->invoke().ok());
  auto warm_result = warm->invoke();
  auto forked_result = forked->invoke();
  ASSERT_TRUE(warm_result.ok());
  ASSERT_TRUE(forked_result.ok());
  // Fork-per-request pays fork + context attach every time (paper's native
  // Sobel/MM latency penalty).
  EXPECT_GT(forked_result.value().latency.ms(),
            warm_result.value().latency.ms() + 5.0);
}

TEST(FunctionInstance, ClockAdvancesOnlyForward) {
  testbed::Testbed bed;
  ASSERT_TRUE(bed.deploy_blastfunction("fn", sobel_factory()).ok());
  auto instance = bed.gateway().instance("fn");
  instance->advance_clock_to(vt::Time::seconds(5));
  EXPECT_EQ(instance->now(), vt::Time::seconds(5));
  instance->advance_clock_to(vt::Time::seconds(1));
  EXPECT_EQ(instance->now(), vt::Time::seconds(5));
}

TEST(FunctionInstance, MigrationRebindsToNewDevice) {
  testbed::Testbed bed;
  auto factory = sobel_factory();
  ASSERT_TRUE(bed.deploy_blastfunction("fn", factory).ok());
  auto before = bed.gateway().instance("fn");
  ASSERT_TRUE(before->invoke().ok());
  const std::string old_pod = before->pod().spec.name;
  // Simulate a registry-driven migration.
  auto replaced = bed.cluster().replace_pod(old_pod);
  ASSERT_TRUE(replaced.ok());
  auto after = bed.gateway().instance("fn");
  ASSERT_NE(after, nullptr);
  EXPECT_NE(after->pod().spec.name, old_pod);
  // The replacement instance serves requests (fresh cold start included).
  auto result = after->invoke();
  EXPECT_TRUE(result.ok()) << result.status().to_string();
}

}  // namespace
}  // namespace bf::faas
