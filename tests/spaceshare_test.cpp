// Space-sharing extension (paper §V future work): partial-reconfiguration
// regions hosting multiple accelerators on one board.
#include <gtest/gtest.h>

#include "loadgen/loadgen.h"
#include "sim/bitstream.h"
#include "sim/board.h"
#include "testbed/testbed.h"
#include "workloads/matmul.h"
#include "workloads/sobel.h"

namespace bf {
namespace {

sim::BoardConfig shell_board(unsigned regions) {
  sim::BoardConfig config;
  config.id = "fpga-shell";
  config.node = "B";
  config.host = sim::make_node_b();
  config.memory_bytes = 256 * kMiB;
  config.pr_regions = regions;
  return config;
}

const sim::Bitstream& bs(const char* id) {
  return *sim::BitstreamLibrary::standard().find(id);
}

TEST(SpaceSharing, RegionProgrammingIsFasterThanFull) {
  sim::Board board(shell_board(2));
  auto pr = board.configure_region(0, bs(sim::BitstreamLibrary::kSobel),
                                   vt::Time::zero());
  ASSERT_TRUE(pr.ok());
  sim::Board classic(shell_board(1));
  auto full = classic.configure(bs(sim::BitstreamLibrary::kSobel),
                                vt::Time::zero());
  ASSERT_TRUE(full.ok());
  EXPECT_LT(pr.value().duration().ns(), full.value().duration().ns() / 2);
}

TEST(SpaceSharing, TwoAcceleratorsResident) {
  sim::Board board(shell_board(2));
  ASSERT_TRUE(board
                  .configure_region(0, bs(sim::BitstreamLibrary::kSobel),
                                    vt::Time::zero())
                  .ok());
  ASSERT_TRUE(board
                  .configure_region(1, bs(sim::BitstreamLibrary::kMatMul),
                                    vt::Time::zero())
                  .ok());
  EXPECT_TRUE(board.has_kernel("sobel"));
  EXPECT_TRUE(board.has_kernel("mm"));
  EXPECT_EQ(board.resident_accelerators(),
            (std::vector<std::string>{"sobel", "mm"}));
  EXPECT_EQ(board.free_region_count(), 0u);
}

TEST(SpaceSharing, PartialReconfigurationKeepsDdrAndOtherRegion) {
  sim::Board board(shell_board(2));
  ASSERT_TRUE(board
                  .configure_region(0, bs(sim::BitstreamLibrary::kSobel),
                                    vt::Time::zero())
                  .ok());
  auto buffer = board.allocate(1024);
  ASSERT_TRUE(buffer.ok());
  Bytes data = {1, 2, 3, 4};
  ASSERT_TRUE(
      board.write(buffer.value(), 0, ByteSpan{data}, vt::Time::zero()).ok());
  // PR of region 1 must not disturb region 0 or DDR.
  ASSERT_TRUE(board
                  .configure_region(1, bs(sim::BitstreamLibrary::kMatMul),
                                    vt::Time::zero())
                  .ok());
  EXPECT_TRUE(board.has_kernel("sobel"));
  Bytes out(4);
  ASSERT_TRUE(
      board.read(buffer.value(), 0, MutableByteSpan{out}, vt::Time::zero())
          .ok());
  EXPECT_EQ(out, data);
}

TEST(SpaceSharing, FullReconfigureWipesEveryRegion) {
  sim::Board board(shell_board(2));
  ASSERT_TRUE(board
                  .configure_region(0, bs(sim::BitstreamLibrary::kSobel),
                                    vt::Time::zero())
                  .ok());
  ASSERT_TRUE(board
                  .configure_region(1, bs(sim::BitstreamLibrary::kMatMul),
                                    vt::Time::zero())
                  .ok());
  ASSERT_TRUE(
      board.configure(bs(sim::BitstreamLibrary::kVadd), vt::Time::zero())
          .ok());
  EXPECT_TRUE(board.has_kernel("vadd"));
  EXPECT_FALSE(board.has_kernel("sobel"));
  EXPECT_FALSE(board.has_kernel("mm"));
  EXPECT_EQ(board.free_region_count(), 1u);  // region 1 cleared
}

TEST(SpaceSharing, RegionsExecuteConcurrently) {
  sim::BoardConfig timing_only = shell_board(2);
  timing_only.functional = false;  // timing model only; tiny arg buffers
  sim::Board board(timing_only);
  ASSERT_TRUE(board
                  .configure_region(0, bs(sim::BitstreamLibrary::kSobel),
                                    vt::Time::zero())
                  .ok());
  ASSERT_TRUE(board
                  .configure_region(1, bs(sim::BitstreamLibrary::kMatMul),
                                    vt::Time::zero())
                  .ok());
  const vt::Time ready = board.busy_until();

  sim::KernelLaunch sobel;
  sobel.kernel = "sobel";
  auto in = board.allocate(1920 * 1080 * 4);
  auto out = board.allocate(1920 * 1080 * 4);
  sobel.args = {in.value(), out.value(), std::int64_t{1920},
                std::int64_t{1080}};
  sim::KernelLaunch mm;
  mm.kernel = "mm";
  auto a = board.allocate(1024);
  auto b = board.allocate(1024);
  auto c = board.allocate(1024);
  mm.args = {a.value(), b.value(), c.value(), std::int64_t{512}};

  auto sobel_run = board.run_kernel(sobel, ready);
  auto mm_run = board.run_kernel(mm, ready);
  ASSERT_TRUE(sobel_run.ok());
  ASSERT_TRUE(mm_run.ok());
  // Different regions: both start at `ready` — true space sharing.
  EXPECT_EQ(sobel_run.value().start, ready);
  EXPECT_EQ(mm_run.value().start, ready);

  // Classic mode: the second kernel waits for the first.
  sim::BoardConfig classic_config = shell_board(1);
  classic_config.functional = false;
  sim::Board classic(classic_config);
  ASSERT_TRUE(
      classic.configure(bs(sim::BitstreamLibrary::kSobel), vt::Time::zero())
          .ok());
  auto in2 = classic.allocate(1920 * 1080 * 4);
  auto out2 = classic.allocate(1920 * 1080 * 4);
  sim::KernelLaunch sobel2;
  sobel2.kernel = "sobel";
  sobel2.args = {in2.value(), out2.value(), std::int64_t{1920},
                 std::int64_t{1080}};
  const vt::Time ready2 = classic.busy_until();
  auto first = classic.run_kernel(sobel2, ready2);
  auto second = classic.run_kernel(sobel2, ready2);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(second.value().start, first.value().end);
}

TEST(SpaceSharing, EnsureAcceleratorUsesFreeRegionWithoutWipe) {
  sim::Board board(shell_board(2));
  bool wiped = true;
  auto first = board.ensure_accelerator(bs(sim::BitstreamLibrary::kSobel),
                                        vt::Time::zero(), &wiped);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(wiped);
  auto second = board.ensure_accelerator(bs(sim::BitstreamLibrary::kMatMul),
                                         vt::Time::zero(), &wiped);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(wiped);
  EXPECT_EQ(board.resident_accelerators().size(), 2u);
  // Already resident: free no-op.
  auto again = board.ensure_accelerator(bs(sim::BitstreamLibrary::kSobel),
                                        vt::Time::zero(), &wiped);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().duration().ns(), 0);
}

TEST(SpaceSharing, EnsureAcceleratorEvictsWhenFull) {
  sim::Board board(shell_board(2));
  bool wiped = false;
  (void)board.ensure_accelerator(bs(sim::BitstreamLibrary::kSobel),
                                 vt::Time::zero(), &wiped);
  (void)board.ensure_accelerator(bs(sim::BitstreamLibrary::kMatMul),
                                 vt::Time::zero(), &wiped);
  auto third = board.ensure_accelerator(bs(sim::BitstreamLibrary::kAlexNet),
                                        vt::Time::zero(), &wiped);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(wiped);  // PR eviction, DDR intact
  const auto resident = board.resident_accelerators();
  EXPECT_EQ(resident.size(), 2u);
  EXPECT_NE(std::find(resident.begin(), resident.end(), "pipecnn_alexnet"),
            resident.end());
}

TEST(SpaceSharing, ClassicModeRejectsRegionProgramming) {
  sim::Board board(shell_board(1));
  EXPECT_EQ(board
                .configure_region(0, bs(sim::BitstreamLibrary::kSobel),
                                  vt::Time::zero())
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(SpaceSharing, MixedTenantsShareOneBoardThroughTheStack) {
  // With 2 PR regions, sobel and mm can land on the SAME board with no
  // migration — the scenario that needed disjoint boards in classic mode.
  testbed::TestbedOptions options;
  options.pr_regions = 2;
  registry::AllocationPolicy pack;
  pack.pack_tenants = true;  // force them together
  options.policy = pack;
  testbed::Testbed bed(options);
  ASSERT_TRUE(bed.deploy_blastfunction("sobel-1", [] {
                   return std::make_unique<workloads::SobelWorkload>(320,
                                                                     240);
                 }).ok());
  ASSERT_TRUE(bed.deploy_blastfunction("mm-1", [] {
                   return std::make_unique<workloads::MatMulWorkload>(128);
                 }).ok());
  auto sobel_device = bed.registry().device_of_instance("sobel-1-0");
  auto mm_device = bed.registry().device_of_instance("mm-1-0");
  ASSERT_TRUE(sobel_device.has_value() && mm_device.has_value());
  EXPECT_EQ(*sobel_device, *mm_device);  // co-resident!

  // Both serve traffic.
  ASSERT_TRUE(bed.gateway().invoke("sobel-1").ok());
  ASSERT_TRUE(bed.gateway().invoke("mm-1").ok());
  const std::string node = sobel_device->substr(5);
  EXPECT_EQ(bed.board(node).resident_accelerators().size(), 2u);
  // No pod was migrated (still on its first generation).
  for (const cluster::Pod& pod : bed.cluster().list_pods()) {
    EXPECT_EQ(cluster::migration_generation(pod.spec.name), 1u)
        << pod.spec.name;
  }
}

}  // namespace
}  // namespace bf
