// Golden-trace conformance (ctest -L trace).
//
// Runs two paper scenarios — the Fig. 4b Sobel overhead path and a small
// Table II two-tenant sharing mix — with request tracing enabled on a fixed
// seed, and diffs the normalized Perfetto JSON against checked-in goldens
// under tests/golden/. Because every span id is a pure function of (seed,
// stream, sequence, modeled time, structural salt) and TraceBuilder sorts
// on a total order before export, the whole file is byte-identical across
// runs and machines; any diff means the propagation chain, the id
// derivation or the modeled timeline changed.
//
// Legitimate regeneration (intentional model / taxonomy changes):
//
//   ./build/tests/trace_golden_test --bf_update_goldens
//
// then review the diff like any other code change (tests/golden/README.md).
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "loadgen/loadgen.h"
#include "testbed/testbed.h"
#include "trace/chrome_trace.h"
#include "workloads/sobel.h"

namespace bf::trace {
namespace {

bool g_update_goldens = false;

constexpr std::uint64_t kSeed = 42;

// One event per line so golden diffs are reviewable hunk-by-hunk instead of
// one mega-line.
std::string normalize(const std::string& json) {
  std::string out;
  out.reserve(json.size() + json.size() / 16);
  for (std::size_t i = 0; i < json.size(); ++i) {
    out += json[i];
    if (json[i] == ',' && i + 1 < json.size() && json[i + 1] == '{') {
      out += '\n';
    }
  }
  if (!out.empty() && out.back() != '\n') out += '\n';
  return out;
}

std::string golden_path(const std::string& name) {
  return std::string(BF_GOLDEN_DIR) + "/" + name;
}

Result<std::string> read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.good()) return NotFound("cannot open '" + path + "'");
  std::ostringstream contents;
  contents << file.rdbuf();
  return contents.str();
}

void compare_or_update(const std::string& golden_name,
                       const std::string& actual) {
  const std::string path = golden_path(golden_name);
  if (g_update_goldens) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    return;
  }
  auto expected = read_file(path);
  ASSERT_TRUE(expected.ok())
      << expected.status().to_string()
      << " — regenerate with --bf_update_goldens (tests/golden/README.md)";
  // Compare sizes first for a readable failure; a full diff of a trace is
  // best viewed with `diff <(./trace_golden_test ...) golden`.
  EXPECT_EQ(expected.value().size(), actual.size())
      << "trace size drifted from golden " << golden_name;
  EXPECT_TRUE(expected.value() == actual)
      << "trace JSON differs from golden " << golden_name
      << "; if the change is intentional re-run with --bf_update_goldens "
         "and review the diff";
}

struct ScenarioRun {
  std::string json;                       // normalized export
  std::vector<faas::InvokeResult> results;  // per-request gateway reports
  std::vector<CriticalPath> paths;        // critical path per traced request
};

// Fig. 4b: one Sobel BlastFunction, a handful of sequential requests.
ScenarioRun run_fig4b(std::uint64_t seed) {
  ScenarioRun run;
  TraceBuilder builder(seed);
  {
    testbed::TestbedOptions options;
    options.trace = &builder;
    testbed::Testbed bed(options);
    auto factory = [] {
      return std::make_unique<workloads::SobelWorkload>(128, 128);
    };
    EXPECT_TRUE(bed.deploy_blastfunction("sobel", factory).ok());
    for (int i = 0; i < 5; ++i) {
      auto result = bed.gateway().invoke("sobel");
      EXPECT_TRUE(result.ok());
      if (result.ok()) run.results.push_back(result.value());
    }
  }
  for (const faas::InvokeResult& result : run.results) {
    auto path = builder.critical_path(result.trace_id);
    EXPECT_TRUE(path.ok()) << path.status().to_string();
    if (path.ok()) run.paths.push_back(path.value());
  }
  run.json = normalize(builder.to_json());
  return run;
}

// Table II (miniature): two Sobel tenants sharing the cluster, closed-loop.
ScenarioRun run_table2(std::uint64_t seed) {
  ScenarioRun run;
  TraceBuilder builder(seed);
  {
    testbed::TestbedOptions options;
    options.trace = &builder;
    testbed::Testbed bed(options);
    auto factory = [] {
      return std::make_unique<workloads::SobelWorkload>(128, 128);
    };
    std::vector<loadgen::DriveSpec> specs;
    for (int i = 1; i <= 2; ++i) {
      const std::string name = "sobel-" + std::to_string(i);
      EXPECT_TRUE(bed.deploy_blastfunction(name, factory).ok());
      loadgen::DriveSpec spec;
      spec.function = name;
      spec.target_rps = 2;
      // Warmup must cover the ~1.6 s cold-start bitstream programming, or
      // the closed loop's horizon passes before any request completes.
      spec.warmup = vt::Duration::seconds(2);
      spec.duration = vt::Duration::seconds(2);
      specs.push_back(spec);
    }
    const auto results = loadgen::drive_all(bed.gateway(), specs);
    for (const auto& result : results) EXPECT_GT(result.ok, 0u);
  }
  run.json = normalize(builder.to_json());
  return run;
}

TEST(TraceGolden, Fig4bSobelIsByteIdenticalAcrossRuns) {
  const ScenarioRun first = run_fig4b(kSeed);
  const ScenarioRun second = run_fig4b(kSeed);
  ASSERT_FALSE(first.json.empty());
  EXPECT_TRUE(first.json == second.json)
      << "same seed produced different trace JSON across runs";
  // A different seed must re-key the ids (goldens pin one seed, not all).
  const ScenarioRun other = run_fig4b(kSeed + 1);
  EXPECT_FALSE(first.json == other.json);
}

TEST(TraceGolden, Fig4bCriticalPathSumsToGatewayLatency) {
  const ScenarioRun run = run_fig4b(kSeed);
  ASSERT_EQ(run.results.size(), 5u);
  ASSERT_EQ(run.paths.size(), 5u);
  for (std::size_t i = 0; i < run.paths.size(); ++i) {
    const CriticalPath& path = run.paths[i];
    EXPECT_EQ(path.total.ns(), run.results[i].e2e_latency.ns())
        << "request " << i
        << ": critical-path total != gateway-reported e2e latency";
    vt::Duration hop_sum = vt::Duration::nanos(0);
    for (const CriticalPathHop& hop : path.hops) hop_sum += hop.self;
    EXPECT_EQ(hop_sum.ns(), path.total.ns())
        << "request " << i << ": hop self times do not partition the total";
    EXPECT_GE(path.hops.size(), 3u);  // at least gateway/handler/device time
  }
}

TEST(TraceGolden, Fig4bMatchesGolden) {
  compare_or_update("fig4b_sobel.trace.json", run_fig4b(kSeed).json);
}

TEST(TraceGolden, Table2SharingIsByteIdenticalAcrossRuns) {
  const ScenarioRun first = run_table2(kSeed);
  const ScenarioRun second = run_table2(kSeed);
  ASSERT_FALSE(first.json.empty());
  EXPECT_TRUE(first.json == second.json)
      << "same seed produced different trace JSON across concurrent-driver "
         "runs (a span id leaked wall-clock or racy state)";
}

TEST(TraceGolden, Table2MatchesGolden) {
  compare_or_update("table2_sharing.trace.json", run_table2(kSeed).json);
}

}  // namespace
}  // namespace bf::trace

// Custom main: gtest's InitGoogleTest leaves unknown flags in argv, from
// which we pick up the golden-regeneration switch.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--bf_update_goldens") {
      bf::trace::g_update_goldens = true;
    }
  }
  return RUN_ALL_TESTS();
}
