// bf::cluster: the simulated Kubernetes control-plane surface.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.h"

namespace bf::cluster {
namespace {

std::vector<NodeSpec> three_nodes() {
  return {{"A", sim::make_node_a()},
          {"B", sim::make_node_b()},
          {"C", sim::make_node_c()}};
}

PodSpec pod(const std::string& name, const std::string& function) {
  PodSpec spec;
  spec.name = name;
  spec.function = function;
  return spec;
}

TEST(Cluster, CreateGetDelete) {
  Cluster cluster(three_nodes());
  auto created = cluster.create_pod(pod("p1", "fn"));
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created.value().phase, PodPhase::kRunning);
  EXPECT_GT(created.value().uid, 0u);
  ASSERT_TRUE(cluster.get_pod("p1").has_value());
  ASSERT_TRUE(cluster.delete_pod("p1").ok());
  EXPECT_FALSE(cluster.get_pod("p1").has_value());
  EXPECT_FALSE(cluster.delete_pod("p1").ok());
}

TEST(Cluster, NameCollisionRejected) {
  Cluster cluster(three_nodes());
  ASSERT_TRUE(cluster.create_pod(pod("p1", "fn")).ok());
  EXPECT_EQ(cluster.create_pod(pod("p1", "fn")).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(Cluster, EmptyNameRejected) {
  Cluster cluster(three_nodes());
  EXPECT_FALSE(cluster.create_pod(pod("", "fn")).ok());
}

TEST(Cluster, UnknownNodeBindingRejected) {
  Cluster cluster(three_nodes());
  PodSpec spec = pod("p1", "fn");
  spec.node = "Z";
  EXPECT_EQ(cluster.create_pod(std::move(spec)).status().code(),
            StatusCode::kNotFound);
}

TEST(Cluster, DefaultSchedulerRoundRobins) {
  Cluster cluster(three_nodes());
  std::map<std::string, int> per_node;
  for (int i = 0; i < 6; ++i) {
    auto created = cluster.create_pod(pod("p" + std::to_string(i), "fn"));
    ASSERT_TRUE(created.ok());
    ++per_node[created.value().spec.node];
  }
  EXPECT_EQ(per_node["A"], 2);
  EXPECT_EQ(per_node["B"], 2);
  EXPECT_EQ(per_node["C"], 2);
}

TEST(Cluster, AdmissionHookPatchesSpec) {
  Cluster cluster(three_nodes());
  cluster.set_admission_hook([](PodSpec& spec) {
    spec.env["PATCHED"] = "yes";
    spec.node = "C";
    return Status::Ok();
  });
  auto created = cluster.create_pod(pod("p1", "fn"));
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created.value().spec.env.at("PATCHED"), "yes");
  EXPECT_EQ(created.value().spec.node, "C");
}

TEST(Cluster, AdmissionHookCanReject) {
  Cluster cluster(three_nodes());
  cluster.set_admission_hook(
      [](PodSpec&) { return NotFound("no device"); });
  auto created = cluster.create_pod(pod("p1", "fn"));
  EXPECT_FALSE(created.ok());
  EXPECT_EQ(cluster.pod_count(), 0u);
}

TEST(Cluster, WatchersSeeAddAndDelete) {
  Cluster cluster(three_nodes());
  std::vector<std::string> events;
  cluster.add_watcher([&](const WatchEvent& event) {
    events.push_back((event.type == WatchEvent::Type::kAdded ? "+" : "-") +
                     event.pod.spec.name);
  });
  (void)cluster.create_pod(pod("p1", "fn"));
  (void)cluster.delete_pod("p1");
  EXPECT_EQ(events, (std::vector<std::string>{"+p1", "-p1"}));
}

TEST(Cluster, ReplaceCreatesBeforeDeleting) {
  Cluster cluster(three_nodes());
  std::vector<std::string> events;
  cluster.add_watcher([&](const WatchEvent& event) {
    events.push_back((event.type == WatchEvent::Type::kAdded ? "+" : "-") +
                     event.pod.spec.name);
  });
  PodSpec spec = pod("p1", "fn");
  spec.env["OLD"] = "1";
  ASSERT_TRUE(cluster.create_pod(std::move(spec)).ok());
  auto replaced = cluster.replace_pod("p1");
  ASSERT_TRUE(replaced.ok());
  // Create-before-delete order (the paper's migration mechanism).
  EXPECT_EQ(events, (std::vector<std::string>{"+p1", "+p1~2", "-p1"}));
  // Replacement is re-admitted from a clean slate.
  EXPECT_FALSE(replaced.value().spec.env.contains("OLD"));
  EXPECT_EQ(cluster.pod_count(), 1u);
}

TEST(Cluster, ReplaceGenerationCounterStripsPriorSuffix) {
  Cluster cluster(three_nodes());
  ASSERT_TRUE(cluster.create_pod(pod("fn-0", "fn")).ok());
  std::string name = "fn-0";
  // Repeated migrations bump a generation counter instead of growing the
  // name ("fn-0-r-r-r..." regression).
  for (unsigned generation = 2; generation <= 5; ++generation) {
    auto replaced = cluster.replace_pod(name);
    ASSERT_TRUE(replaced.ok());
    name = replaced.value().spec.name;
    EXPECT_EQ(name, "fn-0~" + std::to_string(generation));
    EXPECT_EQ(base_pod_name(name), "fn-0");
    EXPECT_EQ(migration_generation(name), generation);
    // The function stays authoritative for function-level lookups.
    EXPECT_EQ(replaced.value().spec.function, "fn");
    ASSERT_EQ(cluster.pods_of_function("fn").size(), 1u);
  }
  EXPECT_EQ(cluster.pod_count(), 1u);
}

TEST(Cluster, ReplaceSkipsTakenGenerationNames) {
  Cluster cluster(three_nodes());
  ASSERT_TRUE(cluster.create_pod(pod("p1", "fn")).ok());
  ASSERT_TRUE(cluster.replace_pod("p1").ok());  // p1~2
  // The base name is reused, then migrated again: generation 2 is taken, so
  // the replacement skips ahead instead of colliding.
  ASSERT_TRUE(cluster.create_pod(pod("p1", "fn")).ok());
  auto replaced = cluster.replace_pod("p1");
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(replaced.value().spec.name, "p1~3");
}

TEST(Cluster, GenerationNameHelpersParseEdgeCases) {
  EXPECT_EQ(base_pod_name("fn-0"), "fn-0");
  EXPECT_EQ(migration_generation("fn-0"), 1u);
  EXPECT_EQ(base_pod_name("fn-0~12"), "fn-0");
  EXPECT_EQ(migration_generation("fn-0~12"), 12u);
  // Non-numeric or dangling suffixes are part of the base name.
  EXPECT_EQ(base_pod_name("we~ird"), "we~ird");
  EXPECT_EQ(migration_generation("we~ird"), 1u);
  EXPECT_EQ(base_pod_name("trailing~"), "trailing~");
  EXPECT_EQ(migration_generation("trailing~"), 1u);
}

TEST(Cluster, ReplaceRunsAdmissionAgain) {
  Cluster cluster(three_nodes());
  int admissions = 0;
  cluster.set_admission_hook([&](PodSpec&) {
    ++admissions;
    return Status::Ok();
  });
  ASSERT_TRUE(cluster.create_pod(pod("p1", "fn")).ok());
  ASSERT_TRUE(cluster.replace_pod("p1").ok());
  EXPECT_EQ(admissions, 2);
}

TEST(Cluster, ReplaceRefusesNestedReplacementOfSamePod) {
  // A replacement's admission can recurse into the cluster (the registry
  // migrates tenants off a device with replace_pod). If that recursion hits
  // the pod already being replaced, it must be refused: letting it through
  // deletes the old pod while the outer replacement can still fail,
  // breaking "a failed replace keeps the old pod serving".
  Cluster cluster(three_nodes());
  ASSERT_TRUE(cluster.create_pod(pod("p1", "fn")).ok());
  Status nested = Status::Ok();
  cluster.set_admission_hook([&](PodSpec& spec) {
    if (spec.name == "p1~2") {
      nested = cluster.replace_pod("p1").status();
    }
    return Status::Ok();
  });
  auto replaced = cluster.replace_pod("p1");
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(nested.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(cluster.get_pod("p1").has_value());
  EXPECT_TRUE(cluster.get_pod("p1~2").has_value());
}

TEST(Cluster, ReplaceReservesInFlightGenerationName) {
  // After p1 -> p1~2 the base name is reused, so generations of "p1" exist
  // at ~2 and (implicitly) ~1. Replacing the new p1 reserves p1~3 while its
  // admission runs; a nested replacement of p1~2 would also bump to ~3 and
  // must skip the reserved name instead of colliding with the in-flight
  // creation (which would silently overwrite the nested pod's entry).
  Cluster cluster(three_nodes());
  ASSERT_TRUE(cluster.create_pod(pod("p1", "fn")).ok());
  ASSERT_TRUE(cluster.replace_pod("p1").ok());  // -> p1~2
  ASSERT_TRUE(cluster.create_pod(pod("p1", "fn")).ok());
  std::string nested_name;
  cluster.set_admission_hook([&](PodSpec& spec) {
    if (spec.name == "p1~3") {
      auto nested = cluster.replace_pod("p1~2");
      if (nested.ok()) nested_name = nested.value().spec.name;
    }
    return Status::Ok();
  });
  ASSERT_TRUE(cluster.replace_pod("p1").ok());  // ~2 taken -> reserves ~3
  EXPECT_EQ(nested_name, "p1~4");
  EXPECT_TRUE(cluster.get_pod("p1~3").has_value());
  EXPECT_TRUE(cluster.get_pod("p1~4").has_value());
  EXPECT_EQ(cluster.pod_count(), 2u);
}

TEST(Cluster, PodsOfFunctionFilters) {
  Cluster cluster(three_nodes());
  (void)cluster.create_pod(pod("a-0", "a"));
  (void)cluster.create_pod(pod("a-1", "a"));
  (void)cluster.create_pod(pod("b-0", "b"));
  EXPECT_EQ(cluster.pods_of_function("a").size(), 2u);
  EXPECT_EQ(cluster.pods_of_function("b").size(), 1u);
  EXPECT_EQ(cluster.pods_of_function("c").size(), 0u);
  EXPECT_EQ(cluster.list_pods().size(), 3u);
}

TEST(Cluster, FindNode) {
  Cluster cluster(three_nodes());
  ASSERT_NE(cluster.find_node("A"), nullptr);
  EXPECT_EQ(cluster.find_node("A")->profile.name, "A");
  EXPECT_EQ(cluster.find_node("Z"), nullptr);
}

}  // namespace
}  // namespace bf::cluster
