// bf::cluster: the simulated Kubernetes control-plane surface.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.h"

namespace bf::cluster {
namespace {

std::vector<NodeSpec> three_nodes() {
  return {{"A", sim::make_node_a()},
          {"B", sim::make_node_b()},
          {"C", sim::make_node_c()}};
}

PodSpec pod(const std::string& name, const std::string& function) {
  PodSpec spec;
  spec.name = name;
  spec.function = function;
  return spec;
}

TEST(Cluster, CreateGetDelete) {
  Cluster cluster(three_nodes());
  auto created = cluster.create_pod(pod("p1", "fn"));
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created.value().phase, PodPhase::kRunning);
  EXPECT_GT(created.value().uid, 0u);
  ASSERT_TRUE(cluster.get_pod("p1").has_value());
  ASSERT_TRUE(cluster.delete_pod("p1").ok());
  EXPECT_FALSE(cluster.get_pod("p1").has_value());
  EXPECT_FALSE(cluster.delete_pod("p1").ok());
}

TEST(Cluster, NameCollisionRejected) {
  Cluster cluster(three_nodes());
  ASSERT_TRUE(cluster.create_pod(pod("p1", "fn")).ok());
  EXPECT_EQ(cluster.create_pod(pod("p1", "fn")).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(Cluster, EmptyNameRejected) {
  Cluster cluster(three_nodes());
  EXPECT_FALSE(cluster.create_pod(pod("", "fn")).ok());
}

TEST(Cluster, UnknownNodeBindingRejected) {
  Cluster cluster(three_nodes());
  PodSpec spec = pod("p1", "fn");
  spec.node = "Z";
  EXPECT_EQ(cluster.create_pod(std::move(spec)).status().code(),
            StatusCode::kNotFound);
}

TEST(Cluster, DefaultSchedulerRoundRobins) {
  Cluster cluster(three_nodes());
  std::map<std::string, int> per_node;
  for (int i = 0; i < 6; ++i) {
    auto created = cluster.create_pod(pod("p" + std::to_string(i), "fn"));
    ASSERT_TRUE(created.ok());
    ++per_node[created.value().spec.node];
  }
  EXPECT_EQ(per_node["A"], 2);
  EXPECT_EQ(per_node["B"], 2);
  EXPECT_EQ(per_node["C"], 2);
}

TEST(Cluster, AdmissionHookPatchesSpec) {
  Cluster cluster(three_nodes());
  cluster.set_admission_hook([](PodSpec& spec) {
    spec.env["PATCHED"] = "yes";
    spec.node = "C";
    return Status::Ok();
  });
  auto created = cluster.create_pod(pod("p1", "fn"));
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created.value().spec.env.at("PATCHED"), "yes");
  EXPECT_EQ(created.value().spec.node, "C");
}

TEST(Cluster, AdmissionHookCanReject) {
  Cluster cluster(three_nodes());
  cluster.set_admission_hook(
      [](PodSpec&) { return NotFound("no device"); });
  auto created = cluster.create_pod(pod("p1", "fn"));
  EXPECT_FALSE(created.ok());
  EXPECT_EQ(cluster.pod_count(), 0u);
}

TEST(Cluster, WatchersSeeAddAndDelete) {
  Cluster cluster(three_nodes());
  std::vector<std::string> events;
  cluster.add_watcher([&](const WatchEvent& event) {
    events.push_back((event.type == WatchEvent::Type::kAdded ? "+" : "-") +
                     event.pod.spec.name);
  });
  (void)cluster.create_pod(pod("p1", "fn"));
  (void)cluster.delete_pod("p1");
  EXPECT_EQ(events, (std::vector<std::string>{"+p1", "-p1"}));
}

TEST(Cluster, ReplaceCreatesBeforeDeleting) {
  Cluster cluster(three_nodes());
  std::vector<std::string> events;
  cluster.add_watcher([&](const WatchEvent& event) {
    events.push_back((event.type == WatchEvent::Type::kAdded ? "+" : "-") +
                     event.pod.spec.name);
  });
  PodSpec spec = pod("p1", "fn");
  spec.env["OLD"] = "1";
  ASSERT_TRUE(cluster.create_pod(std::move(spec)).ok());
  auto replaced = cluster.replace_pod("p1");
  ASSERT_TRUE(replaced.ok());
  // Create-before-delete order (the paper's migration mechanism).
  EXPECT_EQ(events, (std::vector<std::string>{"+p1", "+p1-r", "-p1"}));
  // Replacement is re-admitted from a clean slate.
  EXPECT_FALSE(replaced.value().spec.env.contains("OLD"));
  EXPECT_EQ(cluster.pod_count(), 1u);
}

TEST(Cluster, ReplaceRunsAdmissionAgain) {
  Cluster cluster(three_nodes());
  int admissions = 0;
  cluster.set_admission_hook([&](PodSpec&) {
    ++admissions;
    return Status::Ok();
  });
  ASSERT_TRUE(cluster.create_pod(pod("p1", "fn")).ok());
  ASSERT_TRUE(cluster.replace_pod("p1").ok());
  EXPECT_EQ(admissions, 2);
}

TEST(Cluster, PodsOfFunctionFilters) {
  Cluster cluster(three_nodes());
  (void)cluster.create_pod(pod("a-0", "a"));
  (void)cluster.create_pod(pod("a-1", "a"));
  (void)cluster.create_pod(pod("b-0", "b"));
  EXPECT_EQ(cluster.pods_of_function("a").size(), 2u);
  EXPECT_EQ(cluster.pods_of_function("b").size(), 1u);
  EXPECT_EQ(cluster.pods_of_function("c").size(), 0u);
  EXPECT_EQ(cluster.list_pods().size(), 3u);
}

TEST(Cluster, FindNode) {
  Cluster cluster(three_nodes());
  ASSERT_NE(cluster.find_node("A"), nullptr);
  EXPECT_EQ(cluster.find_node("A")->profile.name, "A");
  EXPECT_EQ(cluster.find_node("Z"), nullptr);
}

}  // namespace
}  // namespace bf::cluster
