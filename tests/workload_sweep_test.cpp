// Parameterized functional sweeps: the Sobel and MM workloads verified
// against CPU references across a grid of shapes, through the full remote
// path — a property-style check that the data plane never corrupts payloads
// regardless of size, alignment or aspect ratio.
#include <gtest/gtest.h>

#include <memory>

#include "devmgr/device_manager.h"
#include "remote/remote_runtime.h"
#include "shm/namespace.h"
#include "sim/board.h"
#include "workloads/matmul.h"
#include "workloads/sobel.h"

namespace bf::workloads {
namespace {

struct Rig {
  explicit Rig(bool shm_path) {
    sim::BoardConfig bc;
    bc.id = "fpga-b";
    bc.node = "B";
    bc.host = sim::make_node_b();
    bc.memory_bytes = 256 * kMiB;
    bc.functional = true;
    board = std::make_unique<sim::Board>(bc);
    devmgr::DeviceManagerConfig mc;
    mc.id = "devmgr-b";
    mc.allow_shared_memory = shm_path;
    manager = std::make_unique<devmgr::DeviceManager>(
        mc, board.get(), shm_path ? &node_shm : nullptr);
    remote::ManagerAddress address;
    address.endpoint = &manager->endpoint();
    address.transport =
        shm_path ? net::local_control(bc.host) : net::local_grpc(bc.host);
    address.node_shm = shm_path ? &node_shm : nullptr;
    address.prefer_shared_memory = shm_path;
    runtime = std::make_unique<remote::RemoteRuntime>(
        std::vector<remote::ManagerAddress>{address});
  }

  shm::Namespace node_shm;
  std::unique_ptr<sim::Board> board;
  std::unique_ptr<devmgr::DeviceManager> manager;
  std::unique_ptr<remote::RemoteRuntime> runtime;
};

struct SobelCase {
  std::size_t width;
  std::size_t height;
  bool shm;
};

class SobelSweep : public ::testing::TestWithParam<SobelCase> {};

TEST_P(SobelSweep, MatchesReferenceOverBothDataPlanes) {
  const SobelCase param = GetParam();
  Rig rig(param.shm);
  ocl::Session session("sweep");
  auto context = rig.runtime->create_context("fpga-b", session);
  ASSERT_TRUE(context.ok());
  SobelWorkload workload(param.width, param.height);
  ASSERT_TRUE(workload.setup(*context.value()).ok());
  ASSERT_TRUE(workload.handle_request(*context.value()).ok());
  EXPECT_EQ(workload.last_output(),
            sobel_reference(workload.input_frame(), param.width,
                            param.height));
  workload.teardown();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SobelSweep,
    ::testing::Values(SobelCase{3, 3, true}, SobelCase{4, 7, true},
                      SobelCase{31, 17, true}, SobelCase{64, 64, true},
                      SobelCase{127, 33, true}, SobelCase{200, 150, true},
                      SobelCase{3, 3, false}, SobelCase{31, 17, false},
                      SobelCase{64, 64, false}, SobelCase{200, 150, false}),
    [](const ::testing::TestParamInfo<SobelCase>& info) {
      return std::to_string(info.param.width) + "x" +
             std::to_string(info.param.height) +
             (info.param.shm ? "_shm" : "_grpc");
    });

struct MmCase {
  std::size_t n;
  bool shm;
};

class MatMulSweep : public ::testing::TestWithParam<MmCase> {};

TEST_P(MatMulSweep, MatchesReferenceOverBothDataPlanes) {
  const MmCase param = GetParam();
  Rig rig(param.shm);
  ocl::Session session("sweep");
  auto context = rig.runtime->create_context("fpga-b", session);
  ASSERT_TRUE(context.ok());
  MatMulWorkload workload(param.n);
  ASSERT_TRUE(workload.setup(*context.value()).ok());
  ASSERT_TRUE(workload.handle_request(*context.value()).ok());
  const auto expected =
      matmul_reference(workload.lhs(), workload.rhs(), param.n);
  ASSERT_EQ(workload.last_output().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_NEAR(workload.last_output()[i], expected[i], 1e-3)
        << "n=" << param.n << " index=" << i;
  }
  workload.teardown();
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MatMulSweep,
    ::testing::Values(MmCase{1, true}, MmCase{2, true}, MmCase{7, true},
                      MmCase{16, true}, MmCase{33, true}, MmCase{64, true},
                      MmCase{1, false}, MmCase{7, false}, MmCase{33, false}),
    [](const ::testing::TestParamInfo<MmCase>& info) {
      return "n" + std::to_string(info.param.n) +
             (info.param.shm ? "_shm" : "_grpc");
    });

// Offset I/O: partial writes and reads through the remote path land at the
// right place in device memory.
class OffsetSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OffsetSweep, PartialBufferIoRoundtrips) {
  const std::uint64_t offset = GetParam();
  Rig rig(true);
  ocl::Session session("offsets");
  auto context = rig.runtime->create_context("fpga-b", session);
  ASSERT_TRUE(context.ok());
  ASSERT_TRUE(context.value()->program(sim::BitstreamLibrary::kVadd).ok());
  auto buffer = context.value()->create_buffer(4096);
  ASSERT_TRUE(buffer.ok());
  auto queue = context.value()->create_queue();
  ASSERT_TRUE(queue.ok());

  Bytes chunk(256);
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    chunk[i] = static_cast<std::uint8_t>(i ^ offset);
  }
  ASSERT_TRUE(queue.value()
                  ->enqueue_write(buffer.value(), offset, ByteSpan{chunk},
                                  true)
                  .ok());
  Bytes out(256);
  ASSERT_TRUE(queue.value()
                  ->enqueue_read(buffer.value(), offset, MutableByteSpan{out},
                                 true)
                  .ok());
  EXPECT_EQ(out, chunk);
  // Bytes before the chunk are untouched (zero).
  if (offset >= 4) {
    Bytes before(4);
    ASSERT_TRUE(queue.value()
                    ->enqueue_read(buffer.value(), offset - 4,
                                   MutableByteSpan{before}, true)
                    .ok());
    for (std::uint8_t byte : before) EXPECT_EQ(byte, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Offsets, OffsetSweep,
                         ::testing::Values(0, 1, 4, 255, 256, 1024, 3840));

}  // namespace
}  // namespace bf::workloads
