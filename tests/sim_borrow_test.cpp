// sim::DeviceMemory borrow()/borrow_mut(): zero-copy spans over board DDR.
// The functional kernels compute in place through these, so the contract —
// aliasing read()/write(), zeroed never-written regions, invalidation on
// release()/reset() — is load-bearing for every workload result.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/memory.h"

namespace bf::sim {
namespace {

TEST(DeviceMemoryBorrow, BorrowSeesPriorWrites) {
  DeviceMemory memory(1 << 20);
  auto handle = memory.allocate(64);
  ASSERT_TRUE(handle.ok());
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(memory
                  .write(handle.value(), 8,
                         ByteSpan{payload.data(), payload.size()})
                  .ok());

  auto span = memory.borrow(handle.value(), 8, payload.size());
  ASSERT_TRUE(span.ok());
  ASSERT_EQ(span.value().size(), payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(span.value()[i], payload[i]) << "byte " << i;
  }
}

TEST(DeviceMemoryBorrow, BorrowMutWritesAreVisibleToRead) {
  DeviceMemory memory(1 << 20);
  auto handle = memory.allocate(32);
  ASSERT_TRUE(handle.ok());
  auto span = memory.borrow_mut(handle.value(), 4, 8);
  ASSERT_TRUE(span.ok());
  for (std::size_t i = 0; i < 8; ++i) {
    span.value()[i] = static_cast<std::uint8_t>(0xC0 + i);
  }
  std::vector<std::uint8_t> out(32);
  ASSERT_TRUE(
      memory.read(handle.value(), 0, MutableByteSpan{out.data(), out.size()})
          .ok());
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(out[4 + i], 0xC0 + i) << "byte " << i;
  }
  // Bytes around the mutated window stay zero (unwritten DDR reads zero).
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[12], 0u);
}

TEST(DeviceMemoryBorrow, NeverWrittenAllocationBorrowsZeroes) {
  DeviceMemory memory(1 << 20);
  auto handle = memory.allocate(256);
  ASSERT_TRUE(handle.ok());
  // No write() ever touched this allocation: the borrow must still
  // materialize a zero-filled backing store, matching read() semantics.
  auto span = memory.borrow(handle.value(), 0, 256);
  ASSERT_TRUE(span.ok());
  for (std::size_t i = 0; i < span.value().size(); ++i) {
    ASSERT_EQ(span.value()[i], 0u) << "byte " << i;
  }
}

TEST(DeviceMemoryBorrow, SameHandleBorrowsAlias) {
  DeviceMemory memory(1 << 20);
  auto handle = memory.allocate(16);
  ASSERT_TRUE(handle.ok());
  auto mut = memory.borrow_mut(handle.value(), 0, 16);
  ASSERT_TRUE(mut.ok());
  auto ro = memory.borrow(handle.value(), 0, 16);
  ASSERT_TRUE(ro.ok());
  EXPECT_EQ(ro.value().data(), mut.value().data());
  mut.value()[3] = 0x7E;
  EXPECT_EQ(ro.value()[3], 0x7E);
}

TEST(DeviceMemoryBorrow, OutOfBoundsRejected) {
  DeviceMemory memory(1 << 20);
  auto handle = memory.allocate(64);
  ASSERT_TRUE(handle.ok());
  EXPECT_FALSE(memory.borrow(handle.value(), 0, 65).ok());
  EXPECT_FALSE(memory.borrow(handle.value(), 60, 8).ok());
  EXPECT_FALSE(memory.borrow_mut(handle.value(), 64, 1).ok());
  // The full extent is fine.
  EXPECT_TRUE(memory.borrow(handle.value(), 0, 64).ok());
  EXPECT_TRUE(memory.borrow(handle.value(), 64, 0).ok());
}

TEST(DeviceMemoryBorrow, ReleasedHandleRejected) {
  DeviceMemory memory(1 << 20);
  auto handle = memory.allocate(64);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(memory.release(handle.value()).ok());
  EXPECT_FALSE(memory.borrow(handle.value(), 0, 8).ok());
  EXPECT_FALSE(memory.borrow_mut(handle.value(), 0, 8).ok());
}

TEST(DeviceMemoryBorrow, ResetInvalidatesHandles) {
  DeviceMemory memory(1 << 20);
  auto handle = memory.allocate(64);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(memory.borrow(handle.value(), 0, 8).ok());
  memory.reset();  // board reconfiguration wipes DDR
  EXPECT_FALSE(memory.borrow(handle.value(), 0, 8).ok());
  EXPECT_FALSE(memory.borrow_mut(handle.value(), 0, 8).ok());
}

TEST(DeviceMemoryBorrow, UnknownHandleRejected) {
  DeviceMemory memory(1 << 20);
  EXPECT_FALSE(memory.borrow(MemHandle{12345}, 0, 1).ok());
  EXPECT_FALSE(memory.borrow_mut(MemHandle{}, 0, 1).ok());
}

}  // namespace
}  // namespace bf::sim
