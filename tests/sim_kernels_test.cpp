// bf::sim kernels: functional correctness against independent references and
// calibrated timing model properties.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "sim/kernels.h"
#include "workloads/matmul.h"
#include "workloads/sobel.h"

namespace bf::sim {
namespace {

MemHandle alloc(DeviceMemory& memory, std::uint64_t size) {
  auto handle = memory.allocate(size);
  BF_CHECK(handle.ok());
  return handle.value();
}

template <typename T>
void upload(DeviceMemory& memory, MemHandle handle,
            const std::vector<T>& data) {
  BF_CHECK(memory.write(handle, 0,
                        as_bytes(data.data(), data.size() * sizeof(T)))
               .ok());
}

template <typename T>
std::vector<T> download(DeviceMemory& memory, MemHandle handle,
                        std::size_t count) {
  std::vector<T> out(count);
  BF_CHECK(memory.read(handle, 0,
                       as_writable_bytes(out.data(), count * sizeof(T)))
               .ok());
  return out;
}

// ---- registry ------------------------------------------------------------------

TEST(KernelRegistry, ContainsAllPaperKernels) {
  const auto names = KernelRegistry::standard().names();
  const std::vector<std::string> expected = {
      "conv", "fc", "fir", "histogram", "lrn", "mm", "pool", "sobel",
      "vadd"};
  EXPECT_EQ(names, expected);
  EXPECT_EQ(KernelRegistry::standard().find("nope"), nullptr);
}

TEST(KernelModel, ValidateChecksNameAndArity) {
  SobelKernel kernel;
  KernelLaunch launch;
  launch.kernel = "mm";
  EXPECT_FALSE(kernel.validate(launch).ok());
  launch.kernel = "sobel";
  launch.args = {std::int64_t{1}};
  EXPECT_FALSE(kernel.validate(launch).ok());
}

// ---- sobel ---------------------------------------------------------------------

TEST(SobelKernel, MatchesIndependentReference) {
  constexpr std::size_t kW = 37;
  constexpr std::size_t kH = 23;
  DeviceMemory memory(1 << 20);
  Rng rng(11);
  std::vector<std::uint32_t> image(kW * kH);
  for (auto& px : image) px = static_cast<std::uint32_t>(rng.next_below(256));

  MemHandle in = alloc(memory, kW * kH * 4);
  MemHandle out = alloc(memory, kW * kH * 4);
  upload(memory, in, image);

  SobelKernel kernel;
  KernelLaunch launch;
  launch.kernel = "sobel";
  launch.args = {in, out, std::int64_t{kW}, std::int64_t{kH}};
  ASSERT_TRUE(kernel.execute(launch, memory).ok());

  const auto result = download<std::uint32_t>(memory, out, kW * kH);
  const auto reference = workloads::sobel_reference(image, kW, kH);
  EXPECT_EQ(result, reference);
}

TEST(SobelKernel, BordersAreZero) {
  constexpr std::size_t kW = 8;
  constexpr std::size_t kH = 8;
  DeviceMemory memory(1 << 16);
  std::vector<std::uint32_t> image(kW * kH, 200);
  MemHandle in = alloc(memory, kW * kH * 4);
  MemHandle out = alloc(memory, kW * kH * 4);
  upload(memory, in, image);
  SobelKernel kernel;
  KernelLaunch launch;
  launch.kernel = "sobel";
  launch.args = {in, out, std::int64_t{kW}, std::int64_t{kH}};
  ASSERT_TRUE(kernel.execute(launch, memory).ok());
  const auto result = download<std::uint32_t>(memory, out, kW * kH);
  for (std::size_t x = 0; x < kW; ++x) {
    EXPECT_EQ(result[x], 0u);
    EXPECT_EQ(result[(kH - 1) * kW + x], 0u);
  }
  // Uniform interior has zero gradient.
  EXPECT_EQ(result[3 * kW + 3], 0u);
}

TEST(SobelKernel, TimingLinearInPixels) {
  SobelKernel kernel;
  auto time_of = [&](std::int64_t w, std::int64_t h) {
    KernelLaunch launch;
    launch.kernel = "sobel";
    launch.args = {MemHandle{1}, MemHandle{2}, w, h};
    return kernel.execution_time(launch).value();
  };
  const auto small = time_of(100, 100);
  const auto large = time_of(1000, 100);
  // 10x pixels => ~10x kernel time once the launch overhead is removed.
  const double overhead_us = 150.0;
  EXPECT_NEAR((large.us() - overhead_us) / (small.us() - overhead_us), 10.0,
              0.01);
  // Calibration anchor: 1920x1080 ~ 12.6 ms (DESIGN.md: ~6 ns/pixel).
  EXPECT_NEAR(time_of(1920, 1080).ms(), 12.6, 0.3);
}

// ---- mm ------------------------------------------------------------------------

TEST(MatMulKernel, MatchesReferenceGemm) {
  constexpr std::size_t kN = 24;
  DeviceMemory memory(1 << 20);
  Rng rng(3);
  std::vector<float> a(kN * kN);
  std::vector<float> b(kN * kN);
  for (auto& value : a) value = static_cast<float>(rng.next_double(-1, 1));
  for (auto& value : b) value = static_cast<float>(rng.next_double(-1, 1));
  MemHandle ha = alloc(memory, kN * kN * 4);
  MemHandle hb = alloc(memory, kN * kN * 4);
  MemHandle hc = alloc(memory, kN * kN * 4);
  upload(memory, ha, a);
  upload(memory, hb, b);
  MatMulKernel kernel;
  KernelLaunch launch;
  launch.kernel = "mm";
  launch.args = {ha, hb, hc, std::int64_t{kN}};
  ASSERT_TRUE(kernel.execute(launch, memory).ok());
  const auto c = download<float>(memory, hc, kN * kN);
  const auto reference = workloads::matmul_reference(a, b, kN);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], reference[i], 1e-4) << "index " << i;
  }
}

TEST(MatMulKernel, IdentityMatrix) {
  constexpr std::size_t kN = 16;
  DeviceMemory memory(1 << 20);
  std::vector<float> a(kN * kN, 0.0F);
  for (std::size_t i = 0; i < kN; ++i) a[i * kN + i] = 1.0F;
  std::vector<float> b(kN * kN);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<float>(i) * 0.25F;
  }
  MemHandle ha = alloc(memory, kN * kN * 4);
  MemHandle hb = alloc(memory, kN * kN * 4);
  MemHandle hc = alloc(memory, kN * kN * 4);
  upload(memory, ha, a);
  upload(memory, hb, b);
  MatMulKernel kernel;
  KernelLaunch launch;
  launch.kernel = "mm";
  launch.args = {ha, hb, hc, std::int64_t{kN}};
  ASSERT_TRUE(kernel.execute(launch, memory).ok());
  EXPECT_EQ(download<float>(memory, hc, kN * kN), b);
}

TEST(MatMulKernel, TimingCubicAndAnchored) {
  MatMulKernel kernel;
  auto time_of = [&](std::int64_t n) {
    KernelLaunch launch;
    launch.kernel = "mm";
    launch.args = {MemHandle{1}, MemHandle{2}, MemHandle{3}, n};
    return kernel.execution_time(launch).value();
  };
  // Paper anchor (Fig 4c): N=4096 kernel ~3.57 s.
  EXPECT_NEAR(time_of(4096).sec(), 3.58, 0.05);
  EXPECT_NEAR(time_of(2048).sec() * 8, time_of(4096).sec(), 0.01);
}

// ---- conv / pool / lrn ------------------------------------------------------------

TEST(ConvKernel, HandComputedExample) {
  // 1 input channel 3x3, one 2x2 filter, stride 1, no pad, no relu.
  DeviceMemory memory(1 << 16);
  std::vector<float> input = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> weights = {1, 0, 0, 1};  // identity-ish 2x2
  std::vector<float> bias = {0.5F};
  MemHandle hin = alloc(memory, input.size() * 4);
  MemHandle hw = alloc(memory, weights.size() * 4);
  MemHandle hb = alloc(memory, bias.size() * 4);
  MemHandle hout = alloc(memory, 4 * 4);
  upload(memory, hin, input);
  upload(memory, hw, weights);
  upload(memory, hb, bias);
  ConvKernel kernel;
  KernelLaunch launch;
  launch.kernel = "conv";
  launch.args = {hin,
                 hw,
                 hb,
                 hout,
                 std::int64_t{1},  // in_c
                 std::int64_t{3},  // in_h
                 std::int64_t{3},  // in_w
                 std::int64_t{1},  // out_c
                 std::int64_t{2},  // out_h
                 std::int64_t{2},  // out_w
                 std::int64_t{2},  // k
                 std::int64_t{1},  // stride
                 std::int64_t{0},  // pad
                 std::int64_t{0}}; // relu
  ASSERT_TRUE(kernel.execute(launch, memory).ok());
  const auto out = download<float>(memory, hout, 4);
  // out(y,x) = in(y,x)*1 + in(y+1,x+1)*1 + 0.5
  EXPECT_FLOAT_EQ(out[0], 1 + 5 + 0.5F);
  EXPECT_FLOAT_EQ(out[1], 2 + 6 + 0.5F);
  EXPECT_FLOAT_EQ(out[2], 4 + 8 + 0.5F);
  EXPECT_FLOAT_EQ(out[3], 5 + 9 + 0.5F);
}

TEST(ConvKernel, ReluClampsNegatives) {
  DeviceMemory memory(1 << 16);
  std::vector<float> input = {1.0F};
  std::vector<float> weights = {-2.0F};
  std::vector<float> bias = {0.0F};
  MemHandle hin = alloc(memory, 4);
  MemHandle hw = alloc(memory, 4);
  MemHandle hb = alloc(memory, 4);
  MemHandle hout = alloc(memory, 4);
  upload(memory, hin, input);
  upload(memory, hw, weights);
  upload(memory, hb, bias);
  ConvKernel kernel;
  KernelLaunch launch;
  launch.kernel = "conv";
  launch.args = {hin, hw, hb, hout,
                 std::int64_t{1}, std::int64_t{1}, std::int64_t{1},
                 std::int64_t{1}, std::int64_t{1}, std::int64_t{1},
                 std::int64_t{1}, std::int64_t{1}, std::int64_t{0},
                 std::int64_t{1}};
  ASSERT_TRUE(kernel.execute(launch, memory).ok());
  EXPECT_FLOAT_EQ(download<float>(memory, hout, 1)[0], 0.0F);
}

TEST(PoolKernel, MaxPooling2x2) {
  DeviceMemory memory(1 << 16);
  std::vector<float> input = {1, 5, 2, 6,  //
                              3, 4, 8, 7,  //
                              9, 0, 1, 2,  //
                              3, 4, 5, 6};
  MemHandle hin = alloc(memory, input.size() * 4);
  MemHandle hout = alloc(memory, 4 * 4);
  upload(memory, hin, input);
  PoolKernel kernel;
  KernelLaunch launch;
  launch.kernel = "pool";
  launch.args = {hin, hout,
                 std::int64_t{1},  // c
                 std::int64_t{4}, std::int64_t{4},   // in
                 std::int64_t{2}, std::int64_t{2},   // out
                 std::int64_t{2}, std::int64_t{2}};  // k, stride
  ASSERT_TRUE(kernel.execute(launch, memory).ok());
  const auto out = download<float>(memory, hout, 4);
  EXPECT_FLOAT_EQ(out[0], 5);
  EXPECT_FLOAT_EQ(out[1], 8);
  EXPECT_FLOAT_EQ(out[2], 9);
  EXPECT_FLOAT_EQ(out[3], 6);
}

TEST(LrnKernel, NormalizesAcrossChannels) {
  DeviceMemory memory(1 << 16);
  // 4 channels, 1x1 spatial.
  std::vector<float> input = {1.0F, 2.0F, 3.0F, 4.0F};
  MemHandle hin = alloc(memory, input.size() * 4);
  MemHandle hout = alloc(memory, input.size() * 4);
  upload(memory, hin, input);
  LrnKernel kernel;
  KernelLaunch launch;
  launch.kernel = "lrn";
  launch.args = {hin, hout, std::int64_t{4}, std::int64_t{1},
                 std::int64_t{1}};
  ASSERT_TRUE(kernel.execute(launch, memory).ok());
  const auto out = download<float>(memory, hout, 4);
  // AlexNet LRN: out = in * (2 + 1e-4 * sum_sq/5)^-0.75; with these tiny
  // magnitudes the scale is ~2^-0.75.
  const float approx_scale = std::pow(2.0F, -0.75F);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(out[c], input[c] * approx_scale, 0.01F) << "channel " << c;
    EXPECT_LT(out[c], input[c]);  // normalization shrinks
  }
}

// ---- vadd + argument errors --------------------------------------------------------

TEST(VaddKernel, AddsVectors) {
  DeviceMemory memory(1 << 16);
  std::vector<float> a = {1, 2, 3};
  std::vector<float> b = {10, 20, 30};
  MemHandle ha = alloc(memory, 12);
  MemHandle hb = alloc(memory, 12);
  MemHandle hc = alloc(memory, 12);
  upload(memory, ha, a);
  upload(memory, hb, b);
  VaddKernel kernel;
  KernelLaunch launch;
  launch.kernel = "vadd";
  launch.args = {ha, hb, hc, std::int64_t{3}};
  ASSERT_TRUE(kernel.execute(launch, memory).ok());
  EXPECT_EQ(download<float>(memory, hc, 3), (std::vector<float>{11, 22, 33}));
}

TEST(Kernels, ScalarWhereBufferExpectedFails) {
  DeviceMemory memory(1 << 16);
  VaddKernel kernel;
  KernelLaunch launch;
  launch.kernel = "vadd";
  launch.args = {std::int64_t{1}, std::int64_t{2}, std::int64_t{3},
                 std::int64_t{4}};
  EXPECT_FALSE(kernel.execute(launch, memory).ok());
}

TEST(Kernels, NonPositiveDimensionsRejectedInTiming) {
  SobelKernel sobel;
  KernelLaunch launch;
  launch.kernel = "sobel";
  launch.args = {MemHandle{1}, MemHandle{2}, std::int64_t{0},
                 std::int64_t{10}};
  EXPECT_FALSE(sobel.execution_time(launch).ok());

  MatMulKernel mm;
  KernelLaunch mm_launch;
  mm_launch.kernel = "mm";
  mm_launch.args = {MemHandle{1}, MemHandle{2}, MemHandle{3},
                    std::int64_t{-4}};
  EXPECT_FALSE(mm.execution_time(mm_launch).ok());
}

// Property: execution time is monotone in problem size for every kernel
// with a size parameter.
class TimingMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(TimingMonotoneTest, SobelMonotoneInWidth) {
  SobelKernel kernel;
  const std::int64_t w = 16LL << GetParam();
  auto time_at = [&](std::int64_t width) {
    KernelLaunch launch;
    launch.kernel = "sobel";
    launch.args = {MemHandle{1}, MemHandle{2}, width, std::int64_t{64}};
    return kernel.execution_time(launch).value();
  };
  EXPECT_LT(time_at(w).ns(), time_at(w * 2).ns());
}

INSTANTIATE_TEST_SUITE_P(Sizes, TimingMonotoneTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace bf::sim
