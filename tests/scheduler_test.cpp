// bf::devmgr::Scheduler: the pluggable central queue behind the Device
// Manager, exercised directly (unit level) through make_scheduler.
//
// The FifoScheduler section is the golden behavior contract inherited from
// the historical TaskQueue: every ordering, gating, close and drain property
// the old queue guaranteed must hold byte-identically for the default
// policy. The remaining sections cover the three new policies: weighted
// fair queueing share proportionality, EDF deadline ordering, and batching
// coalescing/ordering/cancel semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "devmgr/scheduler.h"

namespace bf::devmgr {
namespace {

Task make_task(std::uint64_t seq, const std::string& client, vt::Time ready) {
  Task task;
  task.seq = seq;
  task.client_id = client;
  task.ready = ready;
  Operation op;
  op.kind = Operation::Kind::kFinish;
  op.op_id = seq;
  task.ops.push_back(op);
  return task;
}

Task make_batchable(std::uint64_t seq, const std::string& client,
                    vt::Time ready, const std::string& key,
                    std::uint64_t session_id = 0) {
  Task task = make_task(seq, client, ready);
  task.session_id = session_id;
  task.batchable = true;
  task.batch_key = key;
  task.ops[0].kind = Operation::Kind::kKernel;
  return task;
}

std::unique_ptr<Scheduler> make_fifo() { return make_scheduler({}); }

// Convenience for tests where the pop cannot block: asserts a task came out.
Task pop_one(Scheduler& queue, vt::Gate& gate) {
  PopResult result = queue.pop_next_safe(gate);
  EXPECT_TRUE(result.task.has_value());
  return std::move(*result.task);
}

// ---- FifoScheduler: the TaskQueue golden behavior contract -------------------

TEST(FifoScheduler, PopsInReadyOrderNotPushOrder) {
  auto queue = make_fifo();
  vt::Gate gate;  // no sources: always safe
  ASSERT_TRUE(queue->push(make_task(1, "b", vt::Time::millis(30))).ok());
  ASSERT_TRUE(queue->push(make_task(2, "a", vt::Time::millis(10))).ok());
  ASSERT_TRUE(queue->push(make_task(3, "c", vt::Time::millis(20))).ok());
  EXPECT_EQ(pop_one(*queue, gate).ready, vt::Time::millis(10));
  EXPECT_EQ(pop_one(*queue, gate).ready, vt::Time::millis(20));
  EXPECT_EQ(pop_one(*queue, gate).ready, vt::Time::millis(30));
}

TEST(FifoScheduler, EqualStampsBreakTiesByClientThenSeq) {
  auto queue = make_fifo();
  vt::Gate gate;
  ASSERT_TRUE(queue->push(make_task(5, "zeta", vt::Time::millis(10))).ok());
  ASSERT_TRUE(queue->push(make_task(9, "alpha", vt::Time::millis(10))).ok());
  ASSERT_TRUE(queue->push(make_task(7, "alpha", vt::Time::millis(10))).ok());
  Task first = pop_one(*queue, gate);
  Task second = pop_one(*queue, gate);
  Task third = pop_one(*queue, gate);
  EXPECT_EQ(first.client_id, "alpha");
  EXPECT_EQ(first.seq, 7u);
  EXPECT_EQ(second.client_id, "alpha");
  EXPECT_EQ(second.seq, 9u);
  EXPECT_EQ(third.client_id, "zeta");
}

TEST(FifoScheduler, SafePopsReportStrictOrder) {
  auto queue = make_fifo();
  vt::Gate gate;
  ASSERT_TRUE(queue->push(make_task(1, "a", vt::Time::millis(1))).ok());
  PopResult result = queue->pop_next_safe(gate);
  ASSERT_TRUE(result.task.has_value());
  EXPECT_TRUE(result.strict_order);
  EXPECT_EQ(result.reason, PopReason::kSafe);
  EXPECT_TRUE(result.batch.empty());  // only kBatching ever fills this
}

TEST(FifoScheduler, PopWaitsForGateSafety) {
  auto queue = make_fifo();
  vt::Gate gate;
  auto source = gate.register_source(vt::Time::millis(1));
  ASSERT_TRUE(queue->push(make_task(1, "a", vt::Time::millis(100))).ok());
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    PopResult result = queue->pop_next_safe(gate);
    EXPECT_TRUE(result.task.has_value());
    popped = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(popped.load());  // source bound below the task stamp
  source.announce(vt::Time::millis(200));
  consumer.join();
  EXPECT_TRUE(popped.load());
}

TEST(FifoScheduler, EarlierTaskArrivingDuringWaitIsServedFirst) {
  auto queue = make_fifo();
  vt::Gate gate;
  auto source = gate.register_source(vt::Time::millis(1));
  ASSERT_TRUE(queue->push(make_task(1, "late", vt::Time::millis(100))).ok());
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(queue->push(make_task(2, "early", vt::Time::millis(50))).ok());
    source.announce(vt::Time::millis(300));
  });
  PopResult first = queue->pop_next_safe(gate);
  producer.join();
  ASSERT_TRUE(first.task.has_value());
  EXPECT_EQ(first.task->client_id, "early");
  EXPECT_EQ(pop_one(*queue, gate).client_id, "late");
}

TEST(FifoScheduler, CloseDrainsWaiters) {
  auto queue = make_fifo();
  vt::Gate gate;
  std::thread consumer([&] {
    PopResult result = queue->pop_next_safe(gate);
    EXPECT_FALSE(result.task.has_value());
    EXPECT_EQ(result.reason, PopReason::kClosedDrained);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue->close();
  consumer.join();
  // Pushes after close are rejected with a deterministic status.
  Status rejected = queue->push(make_task(1, "a", vt::Time::millis(1)));
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_EQ(queue->size(), 0u);
}

TEST(FifoScheduler, PushAfterCloseAlwaysRejected) {
  auto queue = make_fifo();
  queue->close();
  for (int i = 0; i < 10; ++i) {
    Status status = queue->push(make_task(static_cast<std::uint64_t>(i), "a",
                                          vt::Time::millis(i)));
    EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(queue->size(), 0u);
}

TEST(FifoScheduler, ConcurrentCloseAndPushNeverLosesAcceptedTasks) {
  // A push racing close() must either be accepted (and then drainable) or
  // rejected with kUnavailable — never silently dropped.
  for (int round = 0; round < 20; ++round) {
    auto queue = make_fifo();
    vt::Gate gate;
    gate.shutdown();  // pops drain without gating
    std::atomic<int> accepted{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < 50; ++i) {
          Status status = queue->push(
              make_task(static_cast<std::uint64_t>(p * 50 + i),
                        "client-" + std::to_string(p), vt::Time::millis(i)));
          if (status.ok()) {
            accepted.fetch_add(1);
          } else {
            EXPECT_EQ(status.code(), StatusCode::kUnavailable);
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
    queue->close();
    for (auto& producer : producers) producer.join();
    int drained = 0;
    while (queue->pop_next_safe(gate).task.has_value()) ++drained;
    EXPECT_EQ(drained, accepted.load());
    // After close has been observed by every producer, rejection is sticky.
    EXPECT_EQ(queue->push(make_task(999, "late", vt::Time::zero())).code(),
              StatusCode::kUnavailable);
  }
}

TEST(FifoScheduler, GateShutdownStillDrainsTasks) {
  // ProgramWaiter holders must not be stranded at shutdown.
  auto queue = make_fifo();
  vt::Gate gate;
  ASSERT_TRUE(queue->push(make_task(1, "a", vt::Time::millis(10))).ok());
  gate.shutdown();
  PopResult result = queue->pop_next_safe(gate);
  ASSERT_TRUE(result.task.has_value());
  EXPECT_EQ(result.task->seq, 1u);
  EXPECT_FALSE(result.strict_order);
  EXPECT_EQ(result.reason, PopReason::kShutdownDrain);
}

TEST(FifoScheduler, StressManyProducersOrderPreserved) {
  auto queue = make_fifo();
  vt::Gate gate;
  constexpr int kPerProducer = 200;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(
            queue
                ->push(make_task(
                    static_cast<std::uint64_t>(p * kPerProducer + i),
                    "client-" + std::to_string(p),
                    vt::Time::millis(1 + (i * 7 + p * 3) % 1000)))
                .ok());
      }
    });
  }
  for (auto& producer : producers) producer.join();
  vt::Time last = vt::Time::zero();
  int count = 0;
  while (queue->size() > 0) {
    Task task = pop_one(*queue, gate);
    EXPECT_GE(task.ready, last);
    last = task.ready;
    ++count;
  }
  EXPECT_EQ(count, 4 * kPerProducer);
}

TEST(ProgramWaiter, DeliversStatusAndTime) {
  ProgramWaiter waiter;
  std::thread completer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    waiter.complete(NotFound("nope"), vt::Time::millis(42));
  });
  auto [status, end] = waiter.wait();
  completer.join();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(end, vt::Time::millis(42));
}

// ---- WfqScheduler: per-tenant weighted fair queueing -------------------------

TEST(WfqScheduler, SharesTrackWeightsUnderBacklog) {
  // Two backlogged tenants with weights 3:1: with unit task cost, tenant a's
  // k-th task carries finish tag k/3 and tenant b's carries k, so any prefix
  // of the drain serves them 3:1 (exactly, ties broken by client id).
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kWeightedFair;
  config.weights = {{"a", 3.0}, {"b", 1.0}};
  auto queue = make_scheduler(config);
  vt::Gate gate;
  std::uint64_t seq = 0;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(queue->push(make_task(seq++, "a", vt::Time::millis(1))).ok());
    ASSERT_TRUE(queue->push(make_task(seq++, "b", vt::Time::millis(1))).ok());
  }
  int served_a = 0;
  int served_b = 0;
  for (int i = 0; i < 40; ++i) {
    Task task = pop_one(*queue, gate);
    (task.client_id == "a" ? served_a : served_b)++;
  }
  EXPECT_EQ(served_a, 30);
  EXPECT_EQ(served_b, 10);
}

TEST(WfqScheduler, UnweightedClientsFallBackToDefaultWeight) {
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kWeightedFair;
  config.default_weight = 1.0;
  auto queue = make_scheduler(config);
  vt::Gate gate;
  std::uint64_t seq = 0;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(queue->push(make_task(seq++, "x", vt::Time::millis(1))).ok());
    ASSERT_TRUE(queue->push(make_task(seq++, "y", vt::Time::millis(1))).ok());
  }
  // Equal weights: the drain alternates in balanced 1:1 shares.
  int served_x = 0;
  for (int i = 0; i < 30; ++i) {
    served_x += pop_one(*queue, gate).client_id == "x" ? 1 : 0;
  }
  EXPECT_EQ(served_x, 15);
}

TEST(WfqScheduler, IdleClientReentersAtVirtualNowWithoutCredit) {
  // Client b stays idle while a drains 12 tasks; when b finally submits it
  // must compete from the current virtual time, not replay the idle period
  // as banked credit and starve a.
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kWeightedFair;
  auto queue = make_scheduler(config);
  vt::Gate gate;
  std::uint64_t seq = 0;
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(queue->push(make_task(seq++, "a", vt::Time::millis(1))).ok());
  }
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(pop_one(*queue, gate).client_id, "a");
  }
  // Now interleave fresh backlogs: b gets no catch-up burst.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(queue->push(make_task(seq++, "a", vt::Time::millis(2))).ok());
    ASSERT_TRUE(queue->push(make_task(seq++, "b", vt::Time::millis(2))).ok());
  }
  int lead_b = 0;
  int max_lead_b = 0;
  for (int i = 0; i < 16; ++i) {
    lead_b += pop_one(*queue, gate).client_id == "b" ? 1 : -1;
    max_lead_b = lead_b > max_lead_b ? lead_b : max_lead_b;
  }
  EXPECT_LE(max_lead_b, 1);  // never more than one pop ahead of a
}

// ---- EdfScheduler: earliest-deadline-first -----------------------------------

TEST(EdfScheduler, NeverInvertsTwoDeadlinedTasks) {
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kDeadline;
  auto queue = make_scheduler(config);
  vt::Gate gate;
  // Arrival (ready) order is a-then-b, but b's deadline is tighter.
  Task a = make_task(1, "a", vt::Time::millis(10));
  a.deadline = vt::Time::millis(500);
  Task b = make_task(2, "b", vt::Time::millis(20));
  b.deadline = vt::Time::millis(100);
  ASSERT_TRUE(queue->push(a).ok());
  ASSERT_TRUE(queue->push(b).ok());
  EXPECT_EQ(pop_one(*queue, gate).client_id, "b");
  EXPECT_EQ(pop_one(*queue, gate).client_id, "a");
}

TEST(EdfScheduler, DrainIsDeadlineSorted) {
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kDeadline;
  auto queue = make_scheduler(config);
  vt::Gate gate;
  // A scrambled push order over distinct deadlines; ready stamps deliberately
  // anti-correlated with deadlines so FIFO order would be the exact inverse.
  const int deadlines_ms[] = {70, 20, 90, 10, 50, 40, 80, 30, 100, 60};
  std::uint64_t seq = 0;
  for (int deadline_ms : deadlines_ms) {
    Task task = make_task(seq++, "c", vt::Time::millis(110 - deadline_ms));
    task.deadline = vt::Time::millis(deadline_ms);
    ASSERT_TRUE(queue->push(task).ok());
  }
  vt::Time last = vt::Time::zero();
  for (std::size_t i = 0; i < std::size(deadlines_ms); ++i) {
    Task task = pop_one(*queue, gate);
    EXPECT_GE(task.deadline, last);
    last = task.deadline;
  }
}

TEST(EdfScheduler, UndeadlinedTasksSortBehindByReadyStamp) {
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kDeadline;
  auto queue = make_scheduler(config);
  vt::Gate gate;
  // Two no-deadline tasks (infinite) and one deadlined task pushed last: the
  // deadlined task jumps ahead; the rest fall back to ready-stamp order.
  ASSERT_TRUE(queue->push(make_task(1, "a", vt::Time::millis(30))).ok());
  ASSERT_TRUE(queue->push(make_task(2, "a", vt::Time::millis(10))).ok());
  Task urgent = make_task(3, "b", vt::Time::millis(40));
  urgent.deadline = vt::Time::millis(60);
  ASSERT_TRUE(queue->push(urgent).ok());
  EXPECT_EQ(pop_one(*queue, gate).seq, 3u);
  EXPECT_EQ(pop_one(*queue, gate).seq, 2u);
  EXPECT_EQ(pop_one(*queue, gate).seq, 1u);
}

// ---- BatchingScheduler: same-kernel coalescing -------------------------------

TEST(BatchingScheduler, CoalescesSameKernelLaunchesUpToMaxBatch) {
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kBatching;
  config.max_batch = 4;
  auto queue = make_scheduler(config);
  vt::Gate gate;
  for (std::uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(queue
                    ->push(make_batchable(i, "c" + std::to_string(i),
                                          vt::Time::millis(1 + i), "mm"))
                    .ok());
  }
  PopResult first = queue->pop_next_safe(gate);
  ASSERT_TRUE(first.task.has_value());
  EXPECT_EQ(first.task->seq, 0u);
  ASSERT_EQ(first.batch.size(), 3u);  // head + 3 == max_batch
  EXPECT_EQ(first.batch[0].seq, 1u);
  EXPECT_EQ(first.batch[1].seq, 2u);
  EXPECT_EQ(first.batch[2].seq, 3u);
  PopResult second = queue->pop_next_safe(gate);
  ASSERT_TRUE(second.task.has_value());
  EXPECT_EQ(second.task->seq, 4u);
  ASSERT_EQ(second.batch.size(), 1u);
  EXPECT_EQ(second.batch[0].seq, 5u);
  EXPECT_EQ(queue->size(), 0u);
}

TEST(BatchingScheduler, WindowBoundsCoalescing) {
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kBatching;
  config.batch_window = vt::Duration::millis(10);
  auto queue = make_scheduler(config);
  vt::Gate gate;
  ASSERT_TRUE(
      queue->push(make_batchable(1, "a", vt::Time::millis(1), "mm")).ok());
  // 12 ms behind the head: outside the window, waits for its own pass.
  ASSERT_TRUE(
      queue->push(make_batchable(2, "b", vt::Time::millis(13), "mm")).ok());
  PopResult first = queue->pop_next_safe(gate);
  EXPECT_TRUE(first.batch.empty());
  PopResult second = queue->pop_next_safe(gate);
  ASSERT_TRUE(second.task.has_value());
  EXPECT_EQ(second.task->seq, 2u);
}

TEST(BatchingScheduler, DifferentKernelsNeverCoalesce) {
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kBatching;
  auto queue = make_scheduler(config);
  vt::Gate gate;
  ASSERT_TRUE(
      queue->push(make_batchable(1, "a", vt::Time::millis(1), "mm")).ok());
  ASSERT_TRUE(
      queue->push(make_batchable(2, "b", vt::Time::millis(2), "sobel")).ok());
  PopResult first = queue->pop_next_safe(gate);
  EXPECT_TRUE(first.batch.empty());
  EXPECT_EQ(pop_one(*queue, gate).batch_key, "sobel");
}

TEST(BatchingScheduler, ProgramTaskIsABatchBarrier) {
  // Nothing coalesces across a reconfiguration: the kernel behind the
  // program task may not even exist on the new bitstream.
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kBatching;
  auto queue = make_scheduler(config);
  vt::Gate gate;
  ASSERT_TRUE(
      queue->push(make_batchable(1, "a", vt::Time::millis(1), "mm")).ok());
  Task program;
  program.seq = 2;
  program.client_id = "a";
  program.ready = vt::Time::millis(2);
  program.is_program = true;
  program.bitstream_id = "bits-2";
  ASSERT_TRUE(queue->push(program).ok());
  ASSERT_TRUE(
      queue->push(make_batchable(3, "b", vt::Time::millis(3), "mm")).ok());
  PopResult first = queue->pop_next_safe(gate);
  ASSERT_TRUE(first.task.has_value());
  EXPECT_EQ(first.task->seq, 1u);
  EXPECT_TRUE(first.batch.empty());  // barrier stopped the scan
  EXPECT_TRUE(pop_one(*queue, gate).is_program);
  EXPECT_EQ(pop_one(*queue, gate).seq, 3u);
}

TEST(BatchingScheduler, SkippedClientBlocksItsLaterTasks) {
  // Client b's first queued task is incompatible (different kernel); pulling
  // b's *later* compatible task into the head's batch would complete it
  // before the earlier one — per-client completion order must hold.
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kBatching;
  auto queue = make_scheduler(config);
  vt::Gate gate;
  ASSERT_TRUE(
      queue->push(make_batchable(1, "a", vt::Time::millis(1), "mm")).ok());
  ASSERT_TRUE(
      queue->push(make_batchable(2, "b", vt::Time::millis(2), "sobel")).ok());
  ASSERT_TRUE(
      queue->push(make_batchable(3, "b", vt::Time::millis(3), "mm")).ok());
  // A third client's compatible task is still free to join.
  ASSERT_TRUE(
      queue->push(make_batchable(4, "c", vt::Time::millis(4), "mm")).ok());
  PopResult first = queue->pop_next_safe(gate);
  ASSERT_TRUE(first.task.has_value());
  EXPECT_EQ(first.task->seq, 1u);
  ASSERT_EQ(first.batch.size(), 1u);
  EXPECT_EQ(first.batch[0].seq, 4u);  // c joined; b seq 3 stayed blocked
  EXPECT_EQ(pop_one(*queue, gate).seq, 2u);
  EXPECT_EQ(pop_one(*queue, gate).seq, 3u);
}

TEST(BatchingScheduler, PerClientCompletionOrderHoldsAcrossDrain) {
  // Seeded-ish mixed workload: every client's tasks must leave the scheduler
  // (head or batch position) in seq order, whatever the batching decisions.
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kBatching;
  config.max_batch = 3;
  auto queue = make_scheduler(config);
  vt::Gate gate;
  std::uint64_t seq = 0;
  for (int wave = 0; wave < 10; ++wave) {
    for (const char* client : {"a", "b", "c"}) {
      const bool compatible = (wave + client[0]) % 3 != 0;
      Task task = make_batchable(seq, client,
                                 vt::Time::millis(1 + wave),
                                 compatible ? "mm" : "sobel");
      task.seq = seq++;
      ASSERT_TRUE(queue->push(task).ok());
    }
  }
  std::map<std::string, std::uint64_t> last_seq;
  int drained = 0;
  while (queue->size() > 0) {
    PopResult result = queue->pop_next_safe(gate);
    ASSERT_TRUE(result.task.has_value());
    std::vector<const Task*> completed{&*result.task};
    for (const Task& companion : result.batch) completed.push_back(&companion);
    for (const Task* task : completed) {
      auto it = last_seq.find(task->client_id);
      if (it != last_seq.end()) {
        EXPECT_LT(it->second, task->seq)
            << "client " << task->client_id << " completion order inverted";
      }
      last_seq[task->client_id] = task->seq;
      ++drained;
    }
  }
  EXPECT_EQ(drained, 30);
}

TEST(BatchingScheduler, CancelSessionRemovesQueuedCompanions) {
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kBatching;
  auto queue = make_scheduler(config);
  vt::Gate gate;
  ASSERT_TRUE(
      queue->push(make_batchable(1, "a", vt::Time::millis(1), "mm", 7)).ok());
  ASSERT_TRUE(
      queue->push(make_batchable(2, "b", vt::Time::millis(2), "mm", 9)).ok());
  ASSERT_TRUE(
      queue->push(make_batchable(3, "b", vt::Time::millis(3), "mm", 9)).ok());
  std::vector<Task> cancelled = queue->cancel_session(9);
  ASSERT_EQ(cancelled.size(), 2u);
  EXPECT_EQ(cancelled[0].seq, 2u);
  EXPECT_EQ(cancelled[1].seq, 3u);
  // The surviving session's task pops alone: cancelled tasks never appear in
  // a later batch.
  PopResult result = queue->pop_next_safe(gate);
  ASSERT_TRUE(result.task.has_value());
  EXPECT_EQ(result.task->session_id, 7u);
  EXPECT_TRUE(result.batch.empty());
  EXPECT_EQ(queue->size(), 0u);
}

TEST(BatchingScheduler, ShutdownDrainStillBatchesAndKeepsClientOrder) {
  // The injected-fault/shutdown drain path goes through the same take hook:
  // batches stay well-formed (head + companions, per-client seq order) even
  // when the pop is marked best-effort.
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kBatching;
  auto queue = make_scheduler(config);
  vt::Gate gate;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(
        queue->push(make_batchable(i, "a", vt::Time::millis(i), "mm")).ok());
  }
  gate.shutdown();  // the fault path every injected devmgr fault ends in
  PopResult result = queue->pop_next_safe(gate);
  ASSERT_TRUE(result.task.has_value());
  EXPECT_FALSE(result.strict_order);
  EXPECT_EQ(result.reason, PopReason::kShutdownDrain);
  EXPECT_EQ(result.task->seq, 1u);
  ASSERT_EQ(result.batch.size(), 2u);
  EXPECT_EQ(result.batch[0].seq, 2u);
  EXPECT_EQ(result.batch[1].seq, 3u);
}

TEST(SchedulerFactory, PolicyNamesRoundTrip) {
  EXPECT_EQ(make_scheduler({})->name(), "fifo");
  SchedulerConfig config;
  config.policy = SchedulerPolicy::kWeightedFair;
  EXPECT_EQ(make_scheduler(config)->name(), "wfq");
  config.policy = SchedulerPolicy::kDeadline;
  EXPECT_EQ(make_scheduler(config)->name(), "edf");
  config.policy = SchedulerPolicy::kBatching;
  EXPECT_EQ(make_scheduler(config)->name(), "batch");
  EXPECT_EQ(to_string(SchedulerPolicy::kFifo), "fifo");
  EXPECT_EQ(to_string(SchedulerPolicy::kBatching), "batch");
}

}  // namespace
}  // namespace bf::devmgr
